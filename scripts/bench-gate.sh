#!/bin/sh
# bench-gate.sh — CI perf-regression gate for the concurrent runtime.
#
# Re-runs BenchmarkRuntimeThroughput (pinned GOMAXPROCS, smoke
# benchtime) and compares the procs/sec of every workers=N
# sub-benchmark against the committed baseline BENCH_runtime.json.
# Fails if any worker count regresses by more than the allowed
# percentage. The fresh measurement is written to bench-current.json
# (uploaded as a CI artifact) so a failing run can be inspected.
#
# Usage: scripts/bench-gate.sh [max-regression-pct] [benchtime]
#   max-regression-pct  allowed procs/sec drop, default 25
#   benchtime           go test -benchtime, default 3x
#
# The measurement is pinned to the GOMAXPROCS recorded in the baseline
# (bench-json.sh writes it), so the comparison replays the baseline's
# scheduler setup. Absolute speed differences between the baseline
# host and the CI runner are absorbed only by the generous threshold;
# refresh the baseline with `make bench` when the runtime legitimately
# changes speed.
set -eu

MAXPCT="${1:-25}"
BENCHTIME="${2:-3x}"
BASELINE="${BASELINE:-BENCH_runtime.json}"
OUT="${OUT:-bench-current.json}"

if [ ! -f "$BASELINE" ]; then
	echo "bench-gate: baseline $BASELINE not found" >&2
	exit 1
fi

GOMAXPROCS=$(awk '/"gomaxprocs":/ { v = $2; sub(/,.*/, "", v); print v }' "$BASELINE")
GOMAXPROCS="${GOMAXPROCS:-$(nproc)}"
export GOMAXPROCS

echo "bench-gate: GOMAXPROCS=$GOMAXPROCS benchtime=$BENCHTIME threshold=${MAXPCT}%"
scripts/bench-json.sh "$BENCHTIME" > "$OUT"
echo "bench-gate: wrote $OUT"

# Extract {workers, procs_per_sec} pairs from the result JSON (emitted
# by bench-json.sh, one result object per line).
pairs() {
	awk '/"workers":/ {
		w = $0; sub(/.*"workers": */, "", w); sub(/,.*/, "", w)
		p = $0; sub(/.*"procs_per_sec": */, "", p); sub(/[},].*/, "", p)
		print w, p
	}' "$1"
}

pairs "$BASELINE" > /tmp/bench-base.$$
pairs "$OUT" > /tmp/bench-cur.$$
trap 'rm -f /tmp/bench-base.$$ /tmp/bench-cur.$$' EXIT

fail=0
while read -r w base; do
	cur=$(awk -v w="$w" '$1 == w { print $2 }' /tmp/bench-cur.$$)
	if [ -z "$cur" ]; then
		echo "bench-gate: FAIL workers=$w missing from current run" >&2
		fail=1
		continue
	fi
	ok=$(awk -v b="$base" -v c="$cur" -v m="$MAXPCT" \
		'BEGIN { print (c >= b * (1 - m / 100)) ? 1 : 0 }')
	drop=$(awk -v b="$base" -v c="$cur" \
		'BEGIN { printf "%+.1f", (c - b) / b * 100 }')
	if [ "$ok" = 1 ]; then
		echo "bench-gate: ok   workers=$w baseline=$base current=$cur (${drop}%)"
	else
		echo "bench-gate: FAIL workers=$w baseline=$base current=$cur (${drop}%, limit -${MAXPCT}%)" >&2
		fail=1
	fi
done < /tmp/bench-base.$$

if [ "$fail" != 0 ]; then
	echo "bench-gate: throughput regression beyond ${MAXPCT}% — see $OUT" >&2
	exit 1
fi
echo "bench-gate: all worker counts within ${MAXPCT}% of baseline"
