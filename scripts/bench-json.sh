#!/bin/sh
# bench-json.sh — run BenchmarkRuntimeThroughput and render the result
# as a small JSON baseline (committed as BENCH_runtime.json). Reads the
# standard `go test -bench` text output and extracts, per workers=N
# sub-benchmark, the ns/op and the reported procs/sec metric.
#
# Usage: scripts/bench-json.sh [benchtime] > BENCH_runtime.json
set -eu

BENCHTIME="${1:-5x}"

# Pin GOMAXPROCS (default: all cores) and record it in the JSON so a
# later comparison (scripts/bench-gate.sh) can replay the same setting.
GOMAXPROCS="${GOMAXPROCS:-$(nproc)}"
export GOMAXPROCS

go test -run '^$' -bench BenchmarkRuntimeThroughput -benchtime "$BENCHTIME" \
	./internal/runtime |
	awk -v benchtime="$BENCHTIME" -v gomaxprocs="$GOMAXPROCS" '
	/^goos:/   { goos = $2 }
	/^goarch:/ { goarch = $2 }
	/^BenchmarkRuntimeThroughput\// {
		split($1, parts, "=")
		sub(/-[0-9]+$/, "", parts[2])
		n = ++count
		workers[n] = parts[2]
		nsop[n] = $3
		procs[n] = $5
	}
	END {
		if (count == 0) { print "no benchmark output" > "/dev/stderr"; exit 1 }
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkRuntimeThroughput\",\n"
		printf "  \"goos\": \"%s\",\n", goos
		printf "  \"goarch\": \"%s\",\n", goarch
		printf "  \"gomaxprocs\": %s,\n", gomaxprocs
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"results\": [\n"
		for (i = 1; i <= count; i++) {
			printf "    {\"workers\": %s, \"ns_per_op\": %s, \"procs_per_sec\": %s}%s\n", \
				workers[i], nsop[i], procs[i], (i < count ? "," : "")
		}
		printf "  ]\n"
		printf "}\n"
	}'
