#!/bin/sh
# bench-recovery.sh — run the recovery-time-vs-log-length sweep
# (`tpsim benchrec`) and emit its JSON (committed as
# BENCH_recovery.json). The sweep recovers the same crashed run over a
# full 1k/10k/100k-record log and over a checkpointed, compacted one;
# the checkpointed replay length must stay bounded by the live tail.
#
# Usage: scripts/bench-recovery.sh [-quick] > BENCH_recovery.json
set -eu

go run ./cmd/tpsim benchrec "$@"
