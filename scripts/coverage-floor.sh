#!/usr/bin/env bash
# Fail when statement coverage of a recovery-critical package drops
# below the floor. Usage: coverage-floor.sh [floor-percent]
set -euo pipefail

FLOOR="${1:-75}"
PKGS=(
  ./internal/wal
  ./internal/scheduler
  ./internal/fault
  ./internal/chaos
  ./internal/twopc
  ./internal/runtime
  ./internal/store
  ./internal/federation
  ./internal/serve
)

fail=0
for pkg in "${PKGS[@]}"; do
  out=$(go test -count=1 -cover "$pkg" | tail -1)
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' || true)
  if [ -z "$pct" ]; then
    echo "NO COVERAGE REPORTED: $out" >&2
    fail=1
    continue
  fi
  ok=$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN { print (p >= f) ? 1 : 0 }')
  if [ "$ok" = "1" ]; then
    echo "ok   $pkg ${pct}% (floor ${FLOOR}%)"
  else
    echo "FAIL $pkg ${pct}% is below the ${FLOOR}% floor" >&2
    fail=1
  fi
done
exit $fail
