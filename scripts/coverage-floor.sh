#!/usr/bin/env bash
# Fail when statement coverage of a recovery-critical package drops
# below the floor. Usage: coverage-floor.sh [floor-percent]
#
# A package entry may carry its own floor as path:floor, overriding the
# global default — packages whose batteries earn higher coverage are
# pinned there so a regression can't hide under the global floor.
set -euo pipefail

FLOOR="${1:-75}"
PKGS=(
  ./internal/wal
  ./internal/scheduler
  ./internal/fault
  ./internal/chaos
  ./internal/twopc
  ./internal/runtime
  ./internal/store
  ./internal/federation:83
  ./internal/serve
)

fail=0
for entry in "${PKGS[@]}"; do
  pkg="${entry%%:*}"
  floor="$FLOOR"
  if [[ "$entry" == *:* ]]; then
    floor="${entry##*:}"
  fi
  out=$(go test -count=1 -cover "$pkg" | tail -1)
  pct=$(echo "$out" | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*' || true)
  if [ -z "$pct" ]; then
    echo "NO COVERAGE REPORTED: $out" >&2
    fail=1
    continue
  fi
  ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')
  if [ "$ok" = "1" ]; then
    echo "ok   $pkg ${pct}% (floor ${floor}%)"
  else
    echo "FAIL $pkg ${pct}% is below the ${floor}% floor" >&2
    fail=1
  fi
done
exit $fail
