// Package transproc is a transactional process management library: an
// implementation of Schuldt, Alonso and Schek, "Concurrency Control and
// Recovery in Transactional Process Management" (PODS 1999).
//
// It provides:
//
//   - the transactional process model: activities with termination
//     guarantees (compensatable / pivot / retriable), precedence and
//     preference orders, guaranteed termination (generalized atomicity);
//   - the unified theory of concurrency control and recovery for
//     processes: process schedules, completed schedules, reducibility
//     (RED), prefix-reducibility (PRED), serializability and
//     process-recoverability checking;
//   - a process scheduler executing processes against simulated
//     transactional subsystems while maintaining PRED online — with
//     deferred 2PC commits of non-compensatable activities (Lemma 1),
//     globally reverse-ordered compensation (Lemma 2), compensation
//     before conflicting retriables (Lemma 3), quasi-commit
//     exploitation (Example 10), optional cascading aborts, write-ahead
//     logging and crash recovery via the group abort (Definition 8);
//   - baseline schedulers (serial, conservative locking, CC-only) and a
//     workload generator for quantitative comparison;
//   - the weak/strong order executor of Section 3.6 (composite systems).
//
// # Quick start
//
//	sub := transproc.NewSubsystem("hotel", 1)
//	sub.MustRegister(transproc.ServiceSpec{
//	    Name: "book", Kind: transproc.Compensatable, Subsystem: "hotel",
//	    Compensation: "book⁻¹", WriteSet: []string{"rooms"},
//	})
//	fed := transproc.NewFederation()
//	fed.MustAdd(sub)
//
//	trip := transproc.NewProcess("Trip").
//	    Add(1, "book", transproc.Compensatable).
//	    MustBuild()
//
//	eng, _ := transproc.NewEngine(fed, transproc.Config{Mode: transproc.PRED})
//	res, _ := eng.Run([]*transproc.Process{trip})
//	ok, _, _, _ := res.Schedule.PRED() // true
package transproc

import (
	"transproc/internal/activity"
	"transproc/internal/composite"
	"transproc/internal/conflict"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/spec"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// Activity kinds (termination guarantees of the flex transaction model,
// Definitions 2-4 of the paper).
const (
	// Compensatable activities have a compensating activity a⁻¹ such
	// that ⟨a a⁻¹⟩ is effect-free.
	Compensatable = activity.Compensatable
	// Pivot activities are neither compensatable nor retriable; their
	// commit is the point of no return ("quasi commit").
	Pivot = activity.Pivot
	// Retriable activities are guaranteed to commit after finitely many
	// invocations.
	Retriable = activity.Retriable
)

// Kind is the termination guarantee of an activity.
type Kind = activity.Kind

// ServiceSpec describes a service offered by a transactional subsystem.
type ServiceSpec = activity.Spec

// Registry is the set Â of services provided by all subsystems.
type Registry = activity.Registry

// NewRegistry returns an empty service registry.
func NewRegistry() *Registry { return activity.NewRegistry() }

// ConflictTable is the commutativity-based conflict relation
// (Definition 6) with perfect commutativity.
type ConflictTable = conflict.Table

// NewConflictTable returns an empty conflict table.
func NewConflictTable() *ConflictTable { return conflict.NewTable() }

// Process is an immutable process definition P = (A, ≪, ◁)
// (Definition 5).
type Process = process.Process

// ProcessID identifies a process.
type ProcessID = process.ID

// ProcessBuilder assembles a Process.
type ProcessBuilder = process.Builder

// NewProcess returns a builder for a process with the given id.
func NewProcess(id ProcessID) *ProcessBuilder { return process.NewBuilder(id) }

// Instance is the mutable execution state of one process, including its
// recovery mode (B-REC / F-REC) and completion C(P).
type Instance = process.Instance

// NewInstance returns a fresh instance of a process.
func NewInstance(p *Process) *Instance { return process.NewInstance(p) }

// ValidateGuaranteedTermination verifies the guaranteed-termination
// property by exhaustive failure exploration.
func ValidateGuaranteedTermination(p *Process) error {
	return process.ValidateGuaranteedTermination(p)
}

// IsWellFormedFlex structurally checks the well-formed flex structure
// grammar on chain-shaped processes.
func IsWellFormedFlex(p *Process) (bool, string) { return process.IsWellFormedFlex(p) }

// Executions enumerates all terminal executions of a process under
// every failure scenario (Figure 3 of the paper).
func Executions(p *Process) ([]process.Execution, error) { return process.Executions(p) }

// Schedule is a process schedule S = (P_S, A_S, ≪_S) (Definition 7),
// offering Serializable, Completed, Reduce, RED, PRED and
// ProcessRecoverable.
type Schedule = schedule.Schedule

// NewSchedule returns an empty schedule over the given processes.
func NewSchedule(table *ConflictTable, procs ...*Process) (*Schedule, error) {
	return schedule.New(table, procs...)
}

// Subsystem is a simulated transactional resource manager.
type Subsystem = subsystem.Subsystem

// NewSubsystem returns an empty subsystem with a deterministic seed.
func NewSubsystem(name string, seed int64) *Subsystem { return subsystem.New(name, seed) }

// Federation is the set of subsystems a process scheduler coordinates.
type Federation = subsystem.Federation

// NewFederation returns an empty federation.
func NewFederation() *Federation { return subsystem.NewFederation() }

// Scheduler modes.
const (
	// PRED is the paper's protocol, avoidance flavour.
	PRED = scheduler.PRED
	// PREDCascade additionally permits cascading aborts (Figure 7).
	PREDCascade = scheduler.PREDCascade
	// Serial runs one process at a time.
	Serial = scheduler.Serial
	// Conservative uses process-level conservative locking.
	Conservative = scheduler.Conservative
	// CCOnly orders conflicts but ignores recovery (the insufficient
	// baseline of Section 2.2).
	CCOnly = scheduler.CCOnly
)

// Mode selects a scheduling policy.
type Mode = scheduler.Mode

// Config parameterizes an engine.
type Config = scheduler.Config

// Engine executes processes against a federation.
type Engine = scheduler.Engine

// Job is a process with an arrival time.
type Job = scheduler.Job

// Result is the outcome of an engine run.
type Result = scheduler.Result

// Metrics aggregates run counters.
type Metrics = scheduler.Metrics

// NewEngine creates a scheduler engine over the federation.
func NewEngine(fed *Federation, cfg Config) (*Engine, error) { return scheduler.New(fed, cfg) }

// Recover performs crash recovery from a write-ahead log: it resolves
// in-doubt transactions and executes the group abort of all active
// processes (Definition 8.2b).
func Recover(fed *Federation, log WAL, defs []*Process) (*scheduler.RecoveryReport, error) {
	return scheduler.Recover(fed, log, defs)
}

// RecoveryReport summarizes crash recovery.
type RecoveryReport = scheduler.RecoveryReport

// WAL is the scheduler's write-ahead log interface.
type WAL = wal.Log

// NewMemWAL returns an in-memory write-ahead log.
func NewMemWAL() WAL { return wal.NewMemLog() }

// OpenFileWAL opens a file-backed write-ahead log.
func OpenFileWAL(path string, syncEvery bool) (WAL, error) { return wal.OpenFile(path, syncEvery) }

// WorkloadProfile parameterizes synthetic workload generation.
type WorkloadProfile = workload.Profile

// Workload is a generated federation plus jobs.
type Workload = workload.Workload

// DefaultWorkloadProfile returns a moderate baseline profile.
func DefaultWorkloadProfile(seed int64) WorkloadProfile { return workload.DefaultProfile(seed) }

// GenerateWorkload builds the federation and processes of a profile.
func GenerateWorkload(p WorkloadProfile) (*Workload, error) { return workload.Generate(p) }

// Compose builds a sequential composition of subprocesses: each
// subprocess's exits precede the next one's entries (the subprocess
// extension named as future work in the paper's conclusion). The
// result is validated for guaranteed termination.
func Compose(id ProcessID, subs ...*Process) (*Process, error) {
	return process.Compose(id, subs...)
}

// EffectiveKind classifies a process by the termination guarantee it
// offers when used as a subprocess: "c" (fully compensatable), "p"
// (contains non-compensatable activities) or "r" (all retriable).
func EffectiveKind(p *Process) string { return process.EffectiveKind(p) }

// LoadSpec parses a declarative JSON definition of subsystems and
// processes (see package transproc/internal/spec for the format) and
// materializes the federation and jobs.
func LoadSpec(data []byte) (*Federation, []Job, error) { return spec.Load(data) }

// Weak/strong order execution (Section 3.6).
type (
	// CompositeTxn is one local transaction for the weak/strong order
	// executor.
	CompositeTxn = composite.Txn
	// CompositeOrder is a pairwise order constraint.
	CompositeOrder = composite.Order
	// CompositeStats reports one executor run.
	CompositeStats = composite.Stats
)

// CompareOrders runs a batch under both the strong and the weak order
// and returns (strong, weak) stats.
func CompareOrders(txns []CompositeTxn, orders []CompositeOrder, parallelism int, seed int64) (*CompositeStats, *CompositeStats, error) {
	return composite.Compare(txns, orders, parallelism, seed)
}
