// Command benchmark generates a synthetic workload, compares all
// scheduler modes on it, and renders a per-process timeline of the PRED
// scheduler's run — a quick visual of the parallelism the paper's
// protocol extracts while preserving prefix-reducibility.
package main

import (
	"fmt"
	"log"
	"os"

	"transproc"
	"transproc/internal/scheduler"
	"transproc/internal/sim"
)

func main() {
	profile := transproc.DefaultWorkloadProfile(42)
	profile.Processes = 12
	profile.ConflictProb = 0.4
	profile.PermFailureProb = 0.08

	table, err := sim.CompareSchedulers(profile, sim.AllModes())
	if err != nil {
		log.Fatal(err)
	}
	table.Render(os.Stdout)

	res, err := sim.RunMode(profile, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPRED scheduler timeline (= active, C committed, A aborted):")
	fmt.Print(sim.Gantt(res, 64))

	ok, _, _, err := res.Schedule.PRED()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule events: %d, prefix-reducible: %v\n", res.Schedule.Len(), ok)
}
