// Command quickstart shows the minimal end-to-end use of transproc:
// define a subsystem, a process with guaranteed termination, run it
// under the PRED scheduler, and check the produced schedule.
package main

import (
	"fmt"
	"log"

	"transproc"
)

func main() {
	// A transactional subsystem offering three services: a compensatable
	// reservation, a pivot payment, and a retriable notification.
	shop := transproc.NewSubsystem("shop", 1)
	shop.MustRegister(transproc.ServiceSpec{
		Name: "reserve", Kind: transproc.Compensatable, Subsystem: "shop",
		Compensation: "reserve⁻¹", WriteSet: []string{"stock"}, Cost: 2,
	})
	shop.MustRegister(transproc.ServiceSpec{
		Name: "pay", Kind: transproc.Pivot, Subsystem: "shop",
		WriteSet: []string{"ledger"}, Cost: 3,
	})
	shop.MustRegister(transproc.ServiceSpec{
		Name: "notify", Kind: transproc.Retriable, Subsystem: "shop",
		WriteSet: []string{"outbox"}, Cost: 1,
	})
	fed := transproc.NewFederation()
	fed.MustAdd(shop)

	// An order process: reserve ≪ pay ≪ notify. Reserve is undoable
	// until the payment (the pivot) commits; afterwards the process is
	// forward-recoverable and notify is guaranteed to finish.
	order := transproc.NewProcess("Order").
		Add(1, "reserve", transproc.Compensatable).
		Add(2, "pay", transproc.Pivot).
		Add(3, "notify", transproc.Retriable).
		Seq(1, 2).Seq(2, 3).
		MustBuild()

	if err := transproc.ValidateGuaranteedTermination(order); err != nil {
		log.Fatalf("process rejected: %v", err)
	}

	eng, err := transproc.NewEngine(fed, transproc.Config{Mode: transproc.PRED})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run([]*transproc.Process{order})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("schedule:", res.Schedule)
	ok, _, _, err := res.Schedule.PRED()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prefix-reducible:", ok)
	fmt.Printf("stock=%d ledger=%d outbox=%d (virtual makespan %d)\n",
		shop.Get("stock"), shop.Get("ledger"), shop.Get("outbox"), res.Metrics.Makespan)

	// Now make the pivot fail: the process backward-recovers and leaves
	// no effects — the guaranteed-termination generalization of
	// atomicity.
	shop2 := transproc.NewSubsystem("shop", 1)
	shop2.MustRegister(transproc.ServiceSpec{
		Name: "reserve", Kind: transproc.Compensatable, Subsystem: "shop",
		Compensation: "reserve⁻¹", WriteSet: []string{"stock"}, Cost: 2,
	})
	shop2.MustRegister(transproc.ServiceSpec{
		Name: "pay", Kind: transproc.Pivot, Subsystem: "shop",
		WriteSet: []string{"ledger"}, Cost: 3,
	})
	shop2.MustRegister(transproc.ServiceSpec{
		Name: "notify", Kind: transproc.Retriable, Subsystem: "shop",
		WriteSet: []string{"outbox"}, Cost: 1,
	})
	fed2 := transproc.NewFederation()
	fed2.MustAdd(shop2)
	shop2.ForceFail("pay", 1)

	eng2, _ := transproc.NewEngine(fed2, transproc.Config{Mode: transproc.PRED})
	res2, err := eng2.Run([]*transproc.Process{order})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith failing payment:", res2.Schedule)
	fmt.Printf("aborted=%v stock=%d ledger=%d (all effects undone)\n",
		res2.Outcomes["Order"].Aborted, shop2.Get("stock"), shop2.Get("ledger"))
}
