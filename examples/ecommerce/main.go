// Command ecommerce runs a small order-fulfilment workload with crash
// recovery: several order processes execute concurrently, the scheduler
// "crashes" mid-flight, and recovery resolves the in-doubt two-phase
// commits and completes every active process per the group abort of
// Definition 8 — backward-recoverable orders are compensated, forward-
// recoverable orders are driven to completion.
package main

import (
	"errors"
	"fmt"
	"log"

	"transproc"
	"transproc/internal/scheduler"
)

func buildFederation(seed int64) *transproc.Federation {
	fed := transproc.NewFederation()

	inv := transproc.NewSubsystem("inventory", seed)
	inv.MustRegister(transproc.ServiceSpec{
		Name: "reserve", Kind: transproc.Compensatable, Subsystem: "inventory",
		Compensation: "reserve⁻¹", WriteSet: []string{"reserved"}, Cost: 2,
	})
	fed.MustAdd(inv)

	pay := transproc.NewSubsystem("payments", seed+1)
	pay.MustRegister(transproc.ServiceSpec{
		Name: "charge", Kind: transproc.Pivot, Subsystem: "payments",
		WriteSet: []string{"charges"}, Cost: 3,
	})
	fed.MustAdd(pay)

	ship := transproc.NewSubsystem("shipping", seed+2)
	ship.MustRegister(transproc.ServiceSpec{
		Name: "ship", Kind: transproc.Retriable, Subsystem: "shipping",
		WriteSet: []string{"shipments"}, Cost: 2, FailureProb: 0.1,
	})
	ship.MustRegister(transproc.ServiceSpec{
		Name: "email", Kind: transproc.Retriable, Subsystem: "shipping",
		WriteSet: []string{"emails"}, Cost: 1,
	})
	fed.MustAdd(ship)

	return fed
}

func order(id transproc.ProcessID) *transproc.Process {
	return transproc.NewProcess(id).
		Add(1, "reserve", transproc.Compensatable).
		Add(2, "charge", transproc.Pivot).
		Add(3, "ship", transproc.Retriable).
		Add(4, "email", transproc.Retriable).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).
		MustBuild()
}

func main() {
	fed := buildFederation(23)
	logw := transproc.NewMemWAL()

	procs := []*transproc.Process{
		order("O1"), order("O2"), order("O3"), order("O4"),
	}
	eng, err := transproc.NewEngine(fed, transproc.Config{
		Mode: transproc.PRED, Log: logw, CrashAfterEvents: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(procs)
	switch {
	case err == nil:
		fmt.Println("run finished before the crash point")
	case errors.Is(err, scheduler.ErrCrashed):
		fmt.Println("scheduler crashed after 6 completions (injected)")
	default:
		log.Fatal(err)
	}
	fmt.Println("partial schedule:", res.Schedule)
	fmt.Println("in-doubt transactions before recovery:", fed.InDoubt())

	report, err := transproc.Recover(fed, logw, procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: backward=%v forward=%v terminated=%v 2pc(commit=%d abort=%d) compensations=%d forwardInvokes=%d\n",
		report.BackwardRecovered, report.ForwardRecovered, report.AlreadyTerminated,
		report.Resolved2PCCommitted, report.Resolved2PCAborted,
		report.Compensations, report.ForwardInvocations)
	fmt.Println("in-doubt transactions after recovery:", len(fed.InDoubt()))

	inv, _ := fed.Subsystem("inventory")
	pay, _ := fed.Subsystem("payments")
	ship, _ := fed.Subsystem("shipping")
	fmt.Printf("state: reserved=%d charges=%d shipments=%d emails=%d\n",
		inv.Get("reserved"), pay.Get("charges"), ship.Get("shipments"), ship.Get("emails"))
	fmt.Println("invariant: reserved == charges (every surviving reservation was paid and will ship)")
	if inv.Get("reserved") != pay.Get("charges") {
		log.Fatal("INCONSISTENT STATE after recovery")
	}
}
