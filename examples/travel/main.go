// Command travel implements the classic flex-transaction trip booking:
// book a flight and a hotel (compensatable), pay (pivot), then issue
// tickets and vouchers (retriable) — with a cheaper fallback hotel as an
// alternative execution path. Several concurrent trips compete for the
// same inventory; the PRED scheduler interleaves them correctly even
// when bookings fail.
package main

import (
	"fmt"
	"log"

	"transproc"
)

func buildFederation(seed int64) *transproc.Federation {
	fed := transproc.NewFederation()

	air := transproc.NewSubsystem("airline", seed)
	air.MustRegister(transproc.ServiceSpec{
		Name: "bookFlight", Kind: transproc.Compensatable, Subsystem: "airline",
		Compensation: "bookFlight⁻¹", WriteSet: []string{"seats"}, Cost: 3,
	})
	air.MustRegister(transproc.ServiceSpec{
		Name: "issueTicket", Kind: transproc.Retriable, Subsystem: "airline",
		WriteSet: []string{"tickets"}, Cost: 1, FailureProb: 0.2,
	})
	fed.MustAdd(air)

	hotels := transproc.NewSubsystem("hotels", seed+1)
	hotels.MustRegister(transproc.ServiceSpec{
		Name: "bookGrand", Kind: transproc.Compensatable, Subsystem: "hotels",
		Compensation: "bookGrand⁻¹", WriteSet: []string{"grandRooms"}, Cost: 3,
	})
	hotels.MustRegister(transproc.ServiceSpec{
		Name: "bookBudget", Kind: transproc.Compensatable, Subsystem: "hotels",
		Compensation: "bookBudget⁻¹", WriteSet: []string{"budgetRooms"}, Cost: 2,
	})
	hotels.MustRegister(transproc.ServiceSpec{
		Name: "voucher", Kind: transproc.Retriable, Subsystem: "hotels",
		WriteSet: []string{"vouchers"}, Cost: 1,
	})
	fed.MustAdd(hotels)

	bank := transproc.NewSubsystem("bank", seed+2)
	bank.MustRegister(transproc.ServiceSpec{
		Name: "charge", Kind: transproc.Pivot, Subsystem: "bank",
		WriteSet: []string{"ledger"}, Cost: 4,
	})
	fed.MustAdd(bank)

	return fed
}

// trip builds a process:
//
//	bookFlight ≪ (bookGrand ◁ bookBudget), each booking followed by its
//	own charge ≪ issueTicket ≪ voucher continuation.
//
// Alternative execution paths are disjoint branches (each alternative is
// a complete continuation in the flex transaction model), so the
// fallback branch repeats the charge/ticket/voucher activities with its
// own local ids. If booking the Grand fails, the budget branch runs; if
// a charge (the pivot) fails, everything is compensated (backward
// recovery).
func trip(id transproc.ProcessID) *transproc.Process {
	return transproc.NewProcess(id).
		Add(1, "bookFlight", transproc.Compensatable).
		Add(2, "bookGrand", transproc.Compensatable).
		Add(3, "bookBudget", transproc.Compensatable).
		Add(4, "charge", transproc.Pivot).
		Add(5, "issueTicket", transproc.Retriable).
		Add(6, "voucher", transproc.Retriable).
		Add(7, "charge", transproc.Pivot).
		Add(8, "issueTicket", transproc.Retriable).
		Add(9, "voucher", transproc.Retriable).
		Chain(1, 2, 3). // preferred Grand, fallback Budget
		Seq(2, 4).Seq(4, 5).Seq(5, 6).
		Seq(3, 7).Seq(7, 8).Seq(8, 9).
		MustBuild()
}

func main() {
	fed := buildFederation(7)
	hotels, _ := fed.Subsystem("hotels")
	// The Grand has one last room: the second booking attempt fails.
	hotels.ForceFail("bookGrand", 1)

	// The preferred branch of trip T2 will fail at bookGrand... but the
	// failure could hit any trip depending on interleaving; what is
	// guaranteed is that every trip terminates: preferred path, fallback
	// path, or effect-free abort.
	eng, err := transproc.NewEngine(fed, transproc.Config{Mode: transproc.PREDCascade})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run([]*transproc.Process{trip("T1"), trip("T2"), trip("T3")})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("schedule:", res.Schedule)
	ok, _, _, _ := res.Schedule.PRED()
	fmt.Println("prefix-reducible:", ok)
	for _, id := range []transproc.ProcessID{"T1", "T2", "T3"} {
		out := res.Outcomes[id]
		fmt.Printf("%s: committed=%v aborted=%v\n", id, out.Committed, out.Aborted)
	}
	fmt.Printf("grandRooms=%d budgetRooms=%d seats=%d ledger=%d tickets=%d vouchers=%d\n",
		hotels.Get("grandRooms"), hotels.Get("budgetRooms"),
		mustSub(fed, "airline").Get("seats"), mustSub(fed, "bank").Get("ledger"),
		mustSub(fed, "airline").Get("tickets"), hotels.Get("vouchers"))
	fmt.Printf("metrics: makespan=%d retries=%d compensations=%d deferrals=%d\n",
		res.Metrics.Makespan, res.Metrics.Retries, res.Metrics.Compensations, res.Metrics.Deferrals)
}

func mustSub(fed *transproc.Federation, name string) *transproc.Subsystem {
	s, ok := fed.Subsystem(name)
	if !ok {
		log.Fatalf("missing subsystem %s", name)
	}
	return s
}
