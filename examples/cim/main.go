// Command cim reproduces the paper's motivating scenario (Section 2,
// Figure 1): a construction process and a production process in a
// computer-integrated-manufacturing environment, coordinated over eight
// subsystems. It contrasts the recovery-oblivious CC-only scheduler —
// which produces parts against a bill of materials that is later
// compensated away when the test fails — with the PRED scheduler, which
// defers the production activity until the construction process commits.
package main

import (
	"fmt"
	"log"

	"transproc"
)

// Service names.
const (
	svcDesign   = "design"
	svcEnterBOM = "enterBOM"
	svcTest     = "test"
	svcTechDoc  = "techdoc"
	svcDocCAD   = "docCAD"
	svcReadBOM  = "readBOM"
	svcOrderMat = "orderMat"
	svcSchedule = "scheduleP"
	svcProduce  = "produce"
	svcUpdateDB = "updatePDB"
)

func buildFederation(seed int64) *transproc.Federation {
	fed := transproc.NewFederation()
	add := func(name string, specs ...transproc.ServiceSpec) {
		sub := transproc.NewSubsystem(name, seed)
		for _, s := range specs {
			s.Subsystem = name
			sub.MustRegister(s)
		}
		fed.MustAdd(sub)
		seed++
	}
	add("cad", transproc.ServiceSpec{
		Name: svcDesign, Kind: transproc.Compensatable, Compensation: svcDesign + "⁻¹",
		WriteSet: []string{"drawing"}, Cost: 8,
	})
	add("pdm",
		transproc.ServiceSpec{
			Name: svcEnterBOM, Kind: transproc.Compensatable, Compensation: svcEnterBOM + "⁻¹",
			WriteSet: []string{"bom"}, Cost: 2,
		},
		transproc.ServiceSpec{
			Name: svcReadBOM, Kind: transproc.Compensatable, Compensation: svcReadBOM + "⁻¹",
			ReadSet: []string{"bom"}, WriteSet: []string{"bomCopy"}, Cost: 1,
		})
	add("testdb", transproc.ServiceSpec{
		Name: svcTest, Kind: transproc.Pivot, WriteSet: []string{"testResult"}, Cost: 4,
	})
	add("docs",
		transproc.ServiceSpec{Name: svcTechDoc, Kind: transproc.Retriable, WriteSet: []string{"techdoc"}, Cost: 2},
		transproc.ServiceSpec{Name: svcDocCAD, Kind: transproc.Retriable, WriteSet: []string{"caddoc"}, Cost: 2})
	add("biz", transproc.ServiceSpec{
		Name: svcOrderMat, Kind: transproc.Compensatable, Compensation: svcOrderMat + "⁻¹",
		WriteSet: []string{"orders"}, Cost: 2,
	})
	add("progs", transproc.ServiceSpec{
		Name: svcSchedule, Kind: transproc.Compensatable, Compensation: svcSchedule + "⁻¹",
		WriteSet: []string{"plan"}, Cost: 2,
	})
	add("floor", transproc.ServiceSpec{
		Name: svcProduce, Kind: transproc.Pivot, WriteSet: []string{"parts"}, Cost: 6,
	})
	add("pdb", transproc.ServiceSpec{
		Name: svcUpdateDB, Kind: transproc.Retriable, WriteSet: []string{"productdb"}, Cost: 1,
	})
	return fed
}

func construction() *transproc.Process {
	// design ≪ enterBOM ≪ test ≪ techdoc, with the alternative of
	// documenting the drawing for reuse if the test fails (the PDM
	// entry is then compensated) — Section 2.1.
	return transproc.NewProcess("Construction").
		Add(1, svcDesign, transproc.Compensatable).
		Add(2, svcEnterBOM, transproc.Compensatable).
		Add(3, svcTest, transproc.Pivot).
		Add(4, svcTechDoc, transproc.Retriable).
		Add(5, svcDocCAD, transproc.Retriable).
		Chain(1, 2, 5).
		Seq(2, 3).
		Seq(3, 4).
		MustBuild()
}

func production() *transproc.Process {
	return transproc.NewProcess("Production").
		Add(1, svcReadBOM, transproc.Compensatable).
		Add(2, svcOrderMat, transproc.Compensatable).
		Add(3, svcSchedule, transproc.Compensatable).
		Add(4, svcProduce, transproc.Pivot).
		Add(5, svcUpdateDB, transproc.Retriable).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).Seq(4, 5).
		MustBuild()
}

func run(mode transproc.Mode, failTest bool) {
	fed := buildFederation(11)
	if failTest {
		testdb, _ := fed.Subsystem("testdb")
		testdb.ForceFail(svcTest, 1)
	}
	eng, err := transproc.NewEngine(fed, transproc.Config{Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	// Production arrives once the BOM exists but before the test
	// concludes — the parallelization of Figure 1.
	res, err := eng.RunJobs([]transproc.Job{
		{Proc: construction()},
		{Proc: production(), Arrival: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	pdm, _ := fed.Subsystem("pdm")
	floor, _ := fed.Subsystem("floor")
	pred, _, _, _ := res.Schedule.PRED()
	fmt.Printf("\n--- %v (test fails: %v) ---\n", mode, failTest)
	fmt.Println("schedule:", res.Schedule)
	fmt.Printf("bom=%d bomCopy=%d parts=%d  PRED=%v\n",
		pdm.Get("bom"), pdm.Get("bomCopy"), floor.Get("parts"), pred)
	// The anomaly of Section 2.2: production read the BOM *before* the
	// construction process compensated it away, and parts were produced
	// from that invalidated data.
	readAt, compAt, producedAt := -1, -1, -1
	for i, e := range res.Schedule.Events() {
		switch {
		case e.Service == svcReadBOM && !e.Inverse:
			readAt = i
		case e.Service == svcEnterBOM+"⁻¹":
			compAt = i
		case e.Service == svcProduce:
			producedAt = i
		}
	}
	if readAt >= 0 && compAt > readAt && producedAt > readAt {
		fmt.Println("!! ANOMALY: production consumed a BOM that was later compensated away (Section 2.2)")
	}
	if failTest && !pred {
		fmt.Println("   the schedule violates PRED — the formal criterion classifies it as incorrect (Section 3.5)")
	}
}

func main() {
	fmt.Println("CIM scenario (paper Section 2, Figure 1)")
	run(transproc.CCOnly, true)
	run(transproc.PRED, true)
	run(transproc.PRED, false)
}
