module transproc

go 1.22
