module transproc

go 1.23.0

toolchain go1.24.0
