// Benchmarks regenerating the reproduction's experiments (see
// EXPERIMENTS.md for the experiment index). The paper itself reports no
// empirical tables, so the benchmark harness covers (a) the figure- and
// example-level artifacts as micro-benchmarks of the theory machinery,
// and (b) the quantitative scheduler experiments B1-B4 with custom
// metrics (virtual makespan, committed processes, throughput) reported
// through testing.B.
//
// Run with:
//
//	go test -bench=. -benchmem
package transproc_test

import (
	"fmt"
	"testing"

	"transproc"
	"transproc/internal/composite"
	"transproc/internal/metrics"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// --- Theory micro-benchmarks (figures & examples) -------------------------

// BenchmarkE1_ValidExecutions enumerates P1's executions (Figure 3).
func BenchmarkE1_ValidExecutions(b *testing.B) {
	p1 := paper.P1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := process.Executions(p1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_GuaranteedTermination runs the exhaustive validator on P1.
func BenchmarkE1_GuaranteedTermination(b *testing.B) {
	p1 := paper.P1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := process.ValidateGuaranteedTermination(p1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Completion computes C(P1) in F-REC (Example 2).
func BenchmarkE2_Completion(b *testing.B) {
	in := process.NewInstance(paper.P1())
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	in.MarkCommitted(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Completion(); err != nil {
			b.Fatal(err)
		}
	}
}

func fig4aSchedule() *schedule.Schedule {
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	return s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P2", 1), schedule.Ok("P2", 2),
		schedule.Ok("P2", 3), schedule.Ok("P1", 2), schedule.Ok("P1", 3),
		schedule.Ok("P2", 4),
	)
}

// BenchmarkE3_Serializability checks the Figure 4(a) serialization graph.
func BenchmarkE3_Serializability(b *testing.B) {
	s := fig4aSchedule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Serializable() {
			b.Fatal("must be serializable")
		}
	}
}

// BenchmarkE4_CompletedSchedule builds S̃_t2 (Example 5).
func BenchmarkE4_CompletedSchedule(b *testing.B) {
	s := fig4aSchedule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Completed(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_Reduction reduces S̃_t2 (Example 6).
func BenchmarkE6_Reduction(b *testing.B) {
	s := fig4aSchedule()
	comp, err := s.Completed()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if red := comp.Reduce(); !red.Serial {
			b.Fatal("must reduce to serial")
		}
	}
}

// BenchmarkE8_PREDCheck runs the full prefix-reducibility check on the
// Figure 4(a) schedule (which fails at prefix 4, Example 8).
func BenchmarkE8_PREDCheck(b *testing.B) {
	s := fig4aSchedule()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, at, _, err := s.PRED()
		if err != nil {
			b.Fatal(err)
		}
		if ok || at != 4 {
			b.Fatal("expected failure at prefix 4")
		}
	}
}

// BenchmarkPREDCheckLarge measures the checker on a scheduler-produced
// workload schedule (hundreds of events).
func BenchmarkPREDCheckLarge(b *testing.B) {
	p := workload.DefaultProfile(7)
	p.Processes = 12
	p.ConflictProb = 0.4
	w := workload.MustGenerate(p)
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		b.Fatal(err)
	}
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Schedule.Len()), "events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, _, err := res.Schedule.PRED()
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// --- B1: scheduler comparison ----------------------------------------------

func benchProfile(conflict, fail float64) workload.Profile {
	p := workload.DefaultProfile(42)
	p.Processes = 24
	if testing.Short() {
		p.Processes = 8
	}
	p.ConflictProb = conflict
	p.PermFailureProb = fail
	return p
}

func runScheduler(b *testing.B, mode scheduler.Mode, p workload.Profile) {
	b.Helper()
	var last *scheduler.Result
	for i := 0; i < b.N; i++ {
		w := workload.MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.RunJobs(w.Jobs)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.Metrics.Makespan), "vticks")
		b.ReportMetric(float64(last.Metrics.CommittedProcs), "committed")
		b.ReportMetric(last.Metrics.Throughput(), "proc/ktick")
	}
}

// BenchmarkSchedulers compares all scheduler modes on the same workload
// (experiment B1). The custom metrics carry the paper-level result: the
// PRED scheduler's virtual makespan beats serial and conservative
// locking while preserving correctness; CC-only is fast but unsafe.
func BenchmarkSchedulers(b *testing.B) {
	for _, mode := range []scheduler.Mode{
		scheduler.Serial, scheduler.Conservative, scheduler.CCOnly,
		scheduler.PRED, scheduler.PREDCascade,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			runScheduler(b, mode, benchProfile(0.4, 0.08))
		})
	}
}

// BenchmarkConflictSweep sweeps the conflict probability for the PRED
// and serial schedulers (experiment B1, crossover axis).
func BenchmarkConflictSweep(b *testing.B) {
	for _, c := range []float64{0.0, 0.2, 0.4, 0.6, 0.8} {
		for _, mode := range []scheduler.Mode{scheduler.Serial, scheduler.PRED} {
			b.Run(fmt.Sprintf("c%.1f/%s", c, mode), func(b *testing.B) {
				runScheduler(b, mode, benchProfile(c, 0.08))
			})
		}
	}
}

// BenchmarkFailureSweep sweeps the permanent failure probability
// (experiment B1, recovery axis).
func BenchmarkFailureSweep(b *testing.B) {
	for _, f := range []float64{0.0, 0.1, 0.2, 0.3} {
		b.Run(fmt.Sprintf("f%.1f/pred", f), func(b *testing.B) {
			runScheduler(b, scheduler.PRED, benchProfile(0.4, f))
		})
	}
}

// --- B2/B3: deferred-commit (quasi-commit) ablation ------------------------

// BenchmarkQuasiCommitAblation compares executing non-compensatable
// activities into the prepared state (deferred 2PC commit, the paper's
// prescription) against blocking them outright.
func BenchmarkQuasiCommitAblation(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  scheduler.Config
	}{
		{"defer-2pc", scheduler.Config{Mode: scheduler.PRED}},
		{"block-pivots", scheduler.Config{Mode: scheduler.PRED, BlockPivots: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := benchProfile(0.5, 0.0)
			var last *scheduler.Result
			for i := 0; i < b.N; i++ {
				w := workload.MustGenerate(p)
				eng, err := scheduler.New(w.Fed, v.cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.RunJobs(w.Jobs)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Metrics.Makespan), "vticks")
			b.ReportMetric(float64(last.Metrics.Deferrals), "deferrals")
		})
	}
}

// BenchmarkDeferredCommitAblation is the cascade-mode variant of B3.
func BenchmarkDeferredCommitAblation(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  scheduler.Config
	}{
		{"cascade-defer", scheduler.Config{Mode: scheduler.PREDCascade}},
		{"cascade-block", scheduler.Config{Mode: scheduler.PREDCascade, BlockPivots: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			runScheduler(b, v.cfg.Mode, benchProfile(0.5, 0.0))
		})
	}
}

// --- E12: weak vs strong order (Section 3.6) -------------------------------

// BenchmarkE12_WeakOrder measures the composite executor under both
// orders on a conflict chain (experiment E12): the reported vticks make
// the parallelism gain of the weak order visible.
func BenchmarkE12_WeakOrder(b *testing.B) {
	mk := func(n int) ([]composite.Txn, []composite.Order) {
		txns := make([]composite.Txn, n)
		var orders []composite.Order
		for i := range txns {
			txns[i] = composite.Txn{ID: fmt.Sprintf("t%03d", i), Cost: 10}
			if i > 0 {
				orders = append(orders, composite.Order{
					Before: fmt.Sprintf("t%03d", i-1), After: fmt.Sprintf("t%03d", i),
				})
			}
		}
		return txns, orders
	}
	for _, mode := range []composite.Mode{composite.Strong, composite.Weak} {
		b.Run(mode.String(), func(b *testing.B) {
			txns, orders := mk(16)
			var last *composite.Stats
			for i := 0; i < b.N; i++ {
				st, err := composite.NewExecutor(mode, 0, 7).Run(append([]composite.Txn(nil), txns...), orders)
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(float64(last.Makespan), "vticks")
		})
	}
}

// BenchmarkWeakOrderEngine compares the engine with and without the
// Section-3.6 weak order under contention.
func BenchmarkWeakOrderEngine(b *testing.B) {
	for _, v := range []struct {
		name string
		weak bool
	}{
		{"strong", false},
		{"weak", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := benchProfile(0.6, 0.05)
			var last *scheduler.Result
			for i := 0; i < b.N; i++ {
				w := workload.MustGenerate(p)
				eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED, WeakOrder: v.weak})
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.RunJobs(w.Jobs)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Metrics.Makespan), "vticks")
			b.ReportMetric(float64(last.Metrics.LockWaits), "lockWaits")
			b.ReportMetric(float64(last.Metrics.WeakDeps), "weakDeps")
		})
	}
}

// --- B4: crash recovery -----------------------------------------------------

// BenchmarkCrashRecovery measures full crash recovery (WAL analysis,
// 2PC resolution, group abort) after a mid-run crash.
func BenchmarkCrashRecovery(b *testing.B) {
	p := benchProfile(0.4, 0.05)
	p.Processes = 12
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := workload.MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade, CrashAfterEvents: 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunJobs(w.Jobs); err == nil {
			b.Fatal("expected crash")
		}
		defs := make([]*transproc.Process, 0, len(w.Jobs))
		for _, j := range w.Jobs {
			defs = append(defs, j.Proc)
		}
		b.StartTimer()
		if _, err := scheduler.Recover(w.Fed, eng.Log(), defs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineInstrumentation measures the cost of the observability
// layer on the full scheduler: "noop" runs with no registry (the
// default nil no-op sink — its per-call overhead must be a nil check
// and nothing else), "instrumented" with a live registry recording
// counters, histograms and the decision trace.
func BenchmarkEngineInstrumentation(b *testing.B) {
	for _, v := range []struct {
		name string
		reg  func() *metrics.Registry
	}{
		{"noop", func() *metrics.Registry { return nil }},
		{"instrumented", metrics.New},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := benchProfile(0.4, 0.08)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := workload.MustGenerate(p)
				eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade, Metrics: v.reg()})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.RunJobs(w.Jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppend measures write-ahead log throughput (in-memory).
func BenchmarkWALAppend(b *testing.B) {
	log := wal.NewMemLog()
	rec := wal.Record{Type: wal.RecDispatch, Proc: "P1", Local: 3, Service: "svc"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALFileAppend measures the file-backed log without fsync.
func BenchmarkWALFileAppend(b *testing.B) {
	log, err := wal.OpenFile(b.TempDir()+"/bench.wal", false)
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	rec := wal.Record{Type: wal.RecDispatch, Proc: "P1", Local: 3, Service: "svc"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
