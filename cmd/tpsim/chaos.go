package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"transproc/internal/chaos"
)

// runChaos implements "tpsim chaos": the unreliable-subsystem chaos
// battery as a command, for CI jobs and for reproducing a failing seed
// outside the test harness.
//
//	tpsim chaos [-seeds N] [-first S] [-seed K] [-json]
//
// -seeds runs the scenarios of seeds [first, first+N); -seed runs a
// single scenario verbosely. -json dumps the summary as JSON. The exit
// status is non-zero when any scenario violates a resilience or
// recovery guarantee; every failure message embeds the seed that
// reproduces it.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seeds := fs.Int64("seeds", 200, "number of chaos seeds to run")
	first := fs.Int64("first", 0, "first seed of the battery")
	one := fs.Int64("seed", -1, "run only this seed (verbose reproduction)")
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *one >= 0 {
		sc := chaos.ScenarioFor(*one)
		fmt.Printf("seed %d: class=%s engine=%s mode=%v plan=%+v policy=%+v breaker=%+v crashAfterWAL=%d\n",
			sc.Seed, sc.Class, sc.Engine, sc.Mode, sc.Plan, sc.Policy, sc.Breaker, sc.CrashAfterWAL)
		if err := chaos.RunScenario(sc); err != nil {
			return err
		}
		fmt.Println("scenario passed: all resilience guarantees hold")
		return nil
	}

	progress, stop := seedTrap("tpsim chaos -seed=")
	sum := chaos.RunChaosProgress(*first, *seeds, progress)
	stop()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("chaos: %d scenarios (seeds %d..%d)\n",
			sum.Scenarios, *first, *first+*seeds-1)
		classes := make([]string, 0, len(sum.ByClass))
		for class := range sum.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("  %-24s %d\n", class, sum.ByClass[class])
		}
		for _, f := range sum.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
	}
	if n := len(sum.Failures); n > 0 {
		return fmt.Errorf("%d of %d scenarios violated a resilience guarantee (reproduce with: tpsim chaos -seed=N)", n, sum.Scenarios)
	}
	return nil
}
