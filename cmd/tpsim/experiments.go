package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/paper"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/sim"
	"transproc/internal/workload"
)

// e1 reproduces Figure 2 and Figure 3: process P1's structure and its
// valid executions.
func e1() error {
	p1 := paper.P1()
	fmt.Println("  P1 =", p1)
	fmt.Println("  precedence: a11 ≪ a12 ≪ (a13 ≪ a14 | a15 ≪ a16), preference (a12≪a13) ◁ (a12≪a15)")
	sd, ok := p1.StateDetermining()
	if err := verdict(ok && sd == 2, "state-determining activity s_{1_0} = a12 (the first pivot)"); err != nil {
		return err
	}
	wf, why := process.IsWellFormedFlex(p1)
	if err := verdict(wf, "P1 has well-formed flex structure (%s)", why); err != nil {
		return err
	}
	if err := verdict(process.ValidateGuaranteedTermination(p1) == nil,
		"guaranteed termination verified by exhaustive failure exploration"); err != nil {
		return err
	}
	execs, err := process.Executions(p1)
	if err != nil {
		return err
	}
	fmt.Println("  terminal executions (Figure 3 shows the four that reach a12):")
	reachPivot := 0
	for _, e := range execs {
		fmt.Println("   ", e)
		if strings.Contains(e.String(), "a2") {
			reachPivot++
		}
	}
	return verdict(reachPivot == 4, "four valid executions reach the pivot (Figure 3)")
}

// e2 reproduces Example 2: the completion C(P1) in both recovery modes.
func e2() error {
	p1 := paper.P1()
	in := process.NewInstance(p1)
	in.MarkCommitted(1)
	steps, err := in.Completion()
	if err != nil {
		return err
	}
	fmt.Printf("  after a11: mode=%v, C(P1)=%v\n", in.Mode(), steps)
	if err := verdict(in.Mode() == process.BREC && len(steps) == 1 && steps[0].Service == "a11⁻¹",
		"B-REC completion is {a11⁻¹} (Example 2)"); err != nil {
		return err
	}
	in.MarkCommitted(2)
	in.MarkCommitted(3)
	steps, err = in.Completion()
	if err != nil {
		return err
	}
	fmt.Printf("  after a13: mode=%v, C(P1)=%v\n", in.Mode(), steps)
	want := len(steps) == 3 && steps[0].Service == "a13⁻¹" && steps[1].Service == "a15" && steps[2].Service == "a16"
	return verdict(in.Mode() == process.FREC && want,
		"F-REC completion is {a13⁻¹ ≪ a15 ≪ a16} (Example 2)")
}

func fig4a() *schedule.Schedule {
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	return s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P2", 1), schedule.Ok("P2", 2),
		schedule.Ok("P2", 3), schedule.Ok("P1", 2), schedule.Ok("P1", 3),
		schedule.Ok("P2", 4),
	)
}

// e3 reproduces Examples 3 and 4 (Figure 4).
func e3() error {
	sb := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	sb.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P2", 1), schedule.Ok("P2", 2),
		schedule.Ok("P2", 3), schedule.Ok("P2", 4), schedule.Ok("P1", 2),
		schedule.Ok("P1", 3),
	)
	fmt.Println("  S'_t2 (Fig 4b) =", sb)
	if err := verdict(!sb.Serializable(), "S'_t2 is NOT serializable (cycle P1→P2→P1, Example 3)"); err != nil {
		return err
	}
	sa := fig4a()
	fmt.Println("  S_t2  (Fig 4a) =", sa)
	return verdict(sa.Serializable(), "S_t2 is serializable (Example 4)")
}

// e4 reproduces Examples 5 and 6 (Figures 5-6).
func e4() error {
	s := fig4a()
	comp, err := s.Completed()
	if err != nil {
		return err
	}
	fmt.Println("  S̃_t2 =", comp)
	if err := verdict(comp.Serializable(), "completed schedule S̃_t2 is serializable (Example 5)"); err != nil {
		return err
	}
	red := comp.Reduce()
	fmt.Println("  reduction:", red.Describe())
	if err := verdict(red.RemovedPairs == 1, "exactly the pair (a13, a13⁻¹) is removed (Example 6)"); err != nil {
		return err
	}
	ok, _, err := s.RED()
	if err != nil {
		return err
	}
	return verdict(ok, "S_t2 is reducible: RED holds (Example 6)")
}

// e5 reproduces Examples 7 and 9 (Figure 7).
func e5() error {
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P2())
	s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P2", 1), schedule.Ok("P2", 2),
		schedule.Ok("P1", 2), schedule.Ok("P1", 3), schedule.Ok("P1", 4),
		schedule.C("P1"),
		schedule.Ok("P2", 3), schedule.Ok("P2", 4), schedule.Ok("P2", 5),
		schedule.C("P2"),
	)
	fmt.Println("  S'' =", s)
	okRED, _, err := s.RED()
	if err != nil {
		return err
	}
	if err := verdict(okRED, "S'' is RED (Example 7)"); err != nil {
		return err
	}
	okPRED, _, _, err := s.PRED()
	if err != nil {
		return err
	}
	return verdict(okPRED, "every prefix of S'' is reducible: PRED holds (Example 9)")
}

// e6 reproduces Example 8 (Figure 8): the prefix S_t1 of S_t2 is not
// reducible.
func e6() error {
	s := fig4a()
	ok, at, red, err := s.PRED()
	if err != nil {
		return err
	}
	if err := verdict(!ok && at == 4, "S_t2 is NOT prefix-reducible; shortest bad prefix is S_t1 = first 4 events (Example 8)"); err != nil {
		return err
	}
	pre := s.Prefix(at)
	comp, err := pre.Completed()
	if err != nil {
		return err
	}
	fmt.Println("  S̃_t1 =", comp)
	fmt.Println("  reduction:", red.Describe())
	return verdict(!comp.Serializable(),
		"S̃_t1 keeps the cycle a11 ≪ a21 ≪ a11⁻¹ — compensation of a21 is not available (Figure 8)")
}

// e7 reproduces Example 10 (Figure 9): the quasi-commit of a12.
func e7() error {
	s := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P3())
	s.MustPlay(
		schedule.Ok("P1", 1), schedule.Ok("P1", 2),
		schedule.Ok("P3", 1), schedule.Ok("P3", 2),
		schedule.Ok("P1", 3), schedule.Ok("P1", 4), schedule.C("P1"),
		schedule.Ok("P3", 3), schedule.C("P3"),
	)
	fmt.Println("  S* =", s)
	ok, _, _, err := s.PRED()
	if err != nil {
		return err
	}
	if err := verdict(ok, "a31 may conflict a11 once P1 is F-REC: compensation of a11 can no longer appear (Example 10)"); err != nil {
		return err
	}
	// Contrast: the same conflict while P1 is still B-REC, with P3 then
	// passing its own pivot, violates PRED (Lemma 1).
	bad := schedule.MustNew(paper.Conflicts(), paper.P1(), paper.P3())
	bad.MustPlay(schedule.Ok("P1", 1), schedule.Ok("P3", 1), schedule.Ok("P3", 2))
	okBad, _, _, err := bad.PRED()
	if err != nil {
		return err
	}
	return verdict(!okBad, "contrast: P3's pivot before C_1 while P1 is B-REC violates PRED (Lemma 1.1)")
}

// e8 runs the CIM scenario (Figure 1) under CC-only and PRED.
func e8() error {
	run := func(mode scheduler.Mode) (*scheduler.Result, int64, int64, int64, error) {
		fed := paper.CIMFederation(11)
		testdb, _ := fed.Subsystem("testdb")
		testdb.ForceFail(paper.SvcTest, 1)
		eng, err := scheduler.New(fed, scheduler.Config{Mode: mode})
		if err != nil {
			return nil, 0, 0, 0, err
		}
		res, err := eng.RunJobs([]scheduler.Job{
			{Proc: paper.CIMConstruction("Pc")},
			{Proc: paper.CIMProduction("Pp"), Arrival: 11},
		})
		if err != nil {
			return nil, 0, 0, 0, err
		}
		pdm, _ := fed.Subsystem("pdm")
		floor, _ := fed.Subsystem("floor")
		return res, pdm.Get("bom"), pdm.Get("bomCopy"), floor.Get("parts"), nil
	}
	resCC, bom, copyv, parts, err := run(scheduler.CCOnly)
	if err != nil {
		return err
	}
	fmt.Println("  cc-only:", resCC.Schedule)
	okCC, _, _, err := resCC.Schedule.PRED()
	if err != nil {
		return err
	}
	if err := verdict(!okCC && bom == 0 && parts == 1 && copyv == 1,
		"CC-only: parts produced from an invalidated BOM; schedule not PRED (Section 2.2)"); err != nil {
		return err
	}
	resP, _, _, _, err := run(scheduler.PRED)
	if err != nil {
		return err
	}
	fmt.Println("  pred:   ", resP.Schedule)
	okP, _, _, err := resP.Schedule.PRED()
	if err != nil {
		return err
	}
	return verdict(okP, "PRED: the production activity is deferred; the schedule is PRED (Section 3.5)")
}

// e9 samples random schedules and verifies the strict form of
// Theorem 1 on the PRED ones.
func e9() error {
	services := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	nPRED, checked := 0, 0
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tab := conflict.NewTable()
		for i := 0; i < len(services); i++ {
			for j := i; j < len(services); j++ {
				if rng.Float64() < 0.3 {
					tab.AddConflict(services[i], services[j])
				}
			}
		}
		procs := []*process.Process{
			workload.RandomWellFormed(rng, "P1", services),
			workload.RandomWellFormed(rng, "P2", services),
		}
		s := workload.RandomSchedule(rng, tab, procs, 30)
		checked++
		pred, _, _, err := s.PRED()
		if err != nil || !pred {
			continue
		}
		nPRED++
		if !s.EffectiveSerializable() {
			return fmt.Errorf("counterexample: PRED schedule not serializable: %s", s)
		}
		if ok, vs := s.ProcessRecoverable(); !ok {
			for _, v := range vs {
				if s.ViolationMaterialized(v) {
					return fmt.Errorf("counterexample: materialized Proc-REC violation in PRED schedule: %s", s)
				}
			}
		}
	}
	fmt.Printf("  %d random schedules, %d PRED\n", checked, nPRED)
	return verdict(nPRED >= 20,
		"every PRED schedule was serializable with no materialized Proc-REC violation (Theorem 1)")
}

// e10 verifies the lemma-level behaviour of the live scheduler.
func e10() error {
	fed := paper.Federation(3)
	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PREDCascade})
	if err != nil {
		return err
	}
	res, err := eng.Run([]*process.Process{paper.P1(), paper.P2(), paper.P3()})
	if err != nil {
		return err
	}
	fmt.Println("  schedule:", res.Schedule)
	fmt.Printf("  deferrals=%d 2pc=%d compensations=%d\n",
		res.Metrics.Deferrals, res.Metrics.TwoPCCommits, res.Metrics.Compensations)
	ok, _, _, err := res.Schedule.PRED()
	if err != nil {
		return err
	}
	if err := verdict(ok, "the scheduler's output is PRED"); err != nil {
		return err
	}
	// Lemma 2: compensations in the schedule appear in reverse order of
	// their bases (vacuously true when no compensation ran).
	evs := res.Schedule.Events()
	basePos := map[string]int{}
	for i, e := range evs {
		if e.Type == schedule.Invoke && !e.Inverse {
			basePos[fmt.Sprintf("%s/%d", e.Proc, e.Local)] = i
		}
	}
	lemma2 := true
	var lastInvPos, lastBase = -1, 1 << 30
	for i, e := range evs {
		if e.Type == schedule.Invoke && e.Inverse {
			bp := basePos[fmt.Sprintf("%s/%d", e.Proc, e.Local)]
			if lastInvPos >= 0 && bp > lastBase {
				// Later compensation with a later base is fine only if
				// they do not conflict; conflicting ones must reverse.
				if res.Schedule.Table.Conflicts(e.Service, evs[lastInvPos].Service) {
					lemma2 = false
				}
			}
			lastInvPos, lastBase = i, bp
		}
	}
	return verdict(lemma2, "conflicting compensations appear in reverse order of their bases (Lemma 2)")
}

// e11 demonstrates Section 3.5's negative result: no SOT-like criterion
// (using only S, without the completed schedule) exists, because
// completions introduce conflicts that are invisible in S.
func e11() error {
	// Two schedules with IDENTICAL visible event sequences ⟨x y⟩ over
	// processes of identical shape, where even the conflicts among the
	// visible events are identical (x and y commute in both). They
	// differ only in whether the processes' *future* forward-recovery
	// activities conflict with the other process's executed pivot —
	// information that lives in the completions, not in S. The PRED
	// verdicts differ, so no SOT-like criterion relying only on S can
	// exist (Section 3.5).
	mk := func(crossConflicts bool) (*schedule.Schedule, error) {
		tab := conflict.NewTable()
		tab.AddConflict("x", "g") // P2's future tail g conflicts executed x
		if crossConflicts {
			tab.AddConflict("y", "f") // and P1's future tail f conflicts executed y
		}
		p1 := process.NewBuilder("P1").
			Add(1, "x", activity.Pivot).
			Add(2, "f", activity.Retriable).
			Seq(1, 2).MustBuild()
		p2 := process.NewBuilder("P2").
			Add(1, "y", activity.Pivot).
			Add(2, "g", activity.Retriable).
			Seq(1, 2).MustBuild()
		s, err := schedule.New(tab, p1, p2)
		if err != nil {
			return nil, err
		}
		if err := s.Invoke("P1", 1); err != nil {
			return nil, err
		}
		if err := s.Invoke("P2", 1); err != nil {
			return nil, err
		}
		return s, nil
	}
	sa, err := mk(false)
	if err != nil {
		return err
	}
	sb, err := mk(true)
	if err != nil {
		return err
	}
	fmt.Println("  S_a =", sa, " S_b =", sb, " (identical visible events; x and y commute in both)")
	okA, _, _, err := sa.PRED()
	if err != nil {
		return err
	}
	okB, _, _, err := sb.PRED()
	if err != nil {
		return err
	}
	fmt.Printf("  PRED(S_a)=%v PRED(S_b)=%v\n", okA, okB)
	return verdict(okA && !okB,
		"identical schedules, different verdicts: the completions introduce the deciding conflicts; S̃ must always be considered (Section 3.5)")
}

// e12 compares weak vs strong order (Section 3.6): first standalone
// inside one subsystem, then integrated into the scheduler engine.
func e12() error {
	t, err := sim.WeakOrderSweep([]int{2, 4, 8, 16, 32}, 10, 0.1, 7)
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	p := workload.DefaultProfile(42)
	p.Processes = 24
	p.ConflictProb = 0.6
	t2, err := sim.WeakOrderEngineAblation(p)
	if err != nil {
		return err
	}
	fmt.Println()
	t2.Render(os.Stdout)
	return verdict(true, "weak order increases parallelism of conflicting activities (Section 3.6)")
}

// e13 sweeps the transport outage rate through the resilience layer
// (flaky transport + typed retries + circuit breakers) and checks that
// guaranteed termination survives an unreliable network: at every rate
// each process must still reach commit or abort, with the retry and
// breaker work the sweep reports as its price.
func e13() error {
	p := workload.DefaultProfile(42)
	p.Processes = 16
	p.ConflictProb = 0.3
	p.PermFailureProb = 0
	t, err := sim.ResilienceSweep(p, []float64{0, 0.10, 0.25, 0.40, 0.55})
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	for _, r := range t.Rows {
		parts := strings.SplitN(r[5], "/", 2)
		if len(parts) != 2 || parts[0] != parts[1] {
			return fmt.Errorf("outage rate %s: only %s processes terminated", r[0], r[5])
		}
	}
	return verdict(true, "every process reaches a terminal state at every outage rate (guaranteed termination under unreliable subsystems)")
}

func b1() error {
	p := workload.DefaultProfile(42)
	p.Processes = 24
	p.ConflictProb = 0.4
	p.PermFailureProb = 0.08
	t, err := sim.CompareSchedulers(p, sim.AllModes())
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	t2, err := sim.ConflictSweep(p, []float64{0.0, 0.2, 0.4, 0.6, 0.8}, sim.AllModes())
	if err != nil {
		return err
	}
	fmt.Println()
	t2.Render(os.Stdout)
	t3, err := sim.FailureSweep(p, []float64{0.0, 0.1, 0.2, 0.3}, []scheduler.Mode{scheduler.PRED, scheduler.PREDCascade, scheduler.CCOnly})
	if err != nil {
		return err
	}
	fmt.Println()
	t3.Render(os.Stdout)
	return nil
}

func b2() error {
	p := workload.DefaultProfile(42)
	p.Processes = 24
	p.ConflictProb = 0.5
	t, err := sim.QuasiCommitAblation(p)
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	return nil
}

func b5() error {
	p := workload.DefaultProfile(42)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.Subsystems = 2
	p.ServicesPerSubsystem = 3
	t, err := sim.FaultMatrix(p, scheduler.PREDCascade)
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	for _, r := range t.Rows {
		if r[5] != "true" || r[6] != "true" {
			return fmt.Errorf("fault on %s violated an invariant", r[0])
		}
	}
	return verdict(true, "every single-service fault keeps PRED and subsystem consistency")
}

func b4() error {
	p := workload.DefaultProfile(42)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0.05
	t, err := sim.CrashRecoverySweep(p, []int{5, 15, 30, 60})
	if err != nil {
		return err
	}
	t.Render(os.Stdout)
	return nil
}
