package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"transproc/internal/fault"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/store"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// recoveryFixture builds a file-backed log carrying roughly size
// records of terminated history (a clean template run cloned under
// renamed process ids), arms a crashed live run on top of it, and
// reports what recovery had to do. withCkpt takes a fuzzy checkpoint
// and compacts the log before the live run — the history then enters
// recovery only as the checkpoint summary instead of replayed records.
type recoveryStats struct {
	HistoryRecords int     `json:"historyRecords"`
	TotalRecords   int     `json:"totalRecords"`
	ReplayRecords  int     `json:"replayRecords"`
	LiveTail       int     `json:"liveTail"`
	RecoverMillis  float64 `json:"recoverMillis"`
	InDoubt        int     `json:"inDoubt"`
	NonTerminal    int     `json:"nonTerminal"`
	// Durable-variant extras: what the composed page recovery did.
	RestoredInDoubt int `json:"restoredInDoubt,omitempty"`
	RedoItems       int `json:"redoItems,omitempty"`
	UndoItems       int `json:"undoItems,omitempty"`
	FlushedPages    int `json:"flushedPages,omitempty"`
}

// benchSeed fixes the synthetic-history workload; the template run and
// the crashed live run are both derived from it deterministically.
const benchSeed = 21

func benchProfile() workload.Profile {
	p := workload.DefaultProfile(benchSeed)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0
	return p
}

// cloneRecord renames a template record into clone k's namespace; the
// log assigns fresh LSNs on append. Transaction ids are shifted into a
// per-clone range so historic txs can never collide with the live
// run's (the durable recovery pass tracks in-doubt txs by raw id).
func cloneRecord(r wal.Record, k int) wal.Record {
	if r.Proc != "" {
		r.Proc = fmt.Sprintf("%s~%d", r.Proc, k)
	}
	if r.Tx != 0 {
		r.Tx += int64(k+1) * 1_000_000
	}
	return r
}

// attachBenchStores opens (or reopens) one heap file per subsystem
// under dir and attaches it; sync is the WAL barrier.
func attachBenchStores(fed *subsystem.Federation, size int, withCkpt bool, dir string, sync func() error) error {
	for _, sub := range fed.Subsystems() {
		path := filepath.Join(dir, fmt.Sprintf("bench-%d-%v-%s.pages", size, withCkpt, sub.Name()))
		sst, err := store.OpenFile(path, store.Options{Barrier: sync})
		if err != nil {
			return fmt.Errorf("opening store %s: %w", path, err)
		}
		if err := sub.AttachStore(sst); err != nil {
			return fmt.Errorf("attaching store %s: %w", path, err)
		}
	}
	return nil
}

// recoveryFixture is one benchmark datapoint. durable backs the live
// federation with file-backed heap stores, simulates the crash by
// dropping every unflushed page, and recovers pages and scheduler
// state together via RecoverDurable on a fresh federation.
func recoveryFixture(size int, withCkpt, durable bool, dir string) (recoveryStats, error) {
	var st recoveryStats

	// Template: one clean run of the workload on an in-memory log.
	wt := workload.MustGenerate(benchProfile())
	tlog := wal.NewMemLog()
	eng, err := scheduler.New(wt.Fed, scheduler.Config{Mode: scheduler.PRED, Log: tlog, MaxRestarts: 16})
	if err != nil {
		return st, err
	}
	if _, err := eng.RunJobs(wt.Jobs); err != nil {
		return st, fmt.Errorf("template run: %w", err)
	}
	tmpl, err := tlog.Records()
	if err != nil {
		return st, err
	}
	if len(tmpl) == 0 {
		return st, fmt.Errorf("template run produced no records")
	}

	// History: the template cloned until roughly size records sit in the
	// file, every clone under renamed (terminated) process ids.
	path := filepath.Join(dir, fmt.Sprintf("bench-%d-%v-%v.log", size, withCkpt, durable))
	flog, err := wal.OpenFile(path, false)
	if err != nil {
		return st, err
	}
	defer flog.Close()
	clones := size / len(tmpl)
	if clones < 1 {
		clones = 1
	}
	var histLSN int64
	for k := 0; k < clones; k++ {
		for _, r := range tmpl {
			lsn, err := flog.Append(cloneRecord(r, k))
			if err != nil {
				return st, fmt.Errorf("cloning history: %w", err)
			}
			histLSN = lsn
		}
	}
	st.HistoryRecords = clones * len(tmpl)

	// Fresh federation for the live run (same services, clean state).
	w := workload.MustGenerate(benchProfile())
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	table, err := w.Fed.ConflictTable()
	if err != nil {
		return st, err
	}

	if withCkpt {
		if _, err := wal.TakeCheckpoint(flog, table.Conflicts, nil, nil); err != nil {
			return st, fmt.Errorf("checkpoint: %w", err)
		}
		if err := flog.Compact(nil); err != nil {
			return st, fmt.Errorf("compact: %w", err)
		}
	}
	if durable {
		if err := attachBenchStores(w.Fed, size, withCkpt, dir, flog.Sync); err != nil {
			return st, err
		}
	}

	// Crashed live run on top of the history.
	fw := fault.WrapWAL(flog, 60)
	live, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PRED, Log: fw, MaxRestarts: 16})
	if err != nil {
		return st, err
	}
	if _, err := live.RunJobs(w.Jobs); !errors.Is(err, scheduler.ErrCrashed) {
		return st, fmt.Errorf("live run: want ErrCrashed, got %v", err)
	}

	// Reopen across the crash and time recovery. A durable crash also
	// drops every unflushed heap page and hands recovery a factory-fresh
	// federation: pages + log are all that survive.
	if err := flog.Close(); err != nil {
		return st, err
	}
	if durable {
		for _, sub := range w.Fed.Subsystems() {
			if sst := sub.DurableStore(); sst != nil {
				sst.Abandon()
			}
		}
		w = workload.MustGenerate(benchProfile())
		defs = defs[:0]
		for _, j := range w.Jobs {
			defs = append(defs, j.Proc)
		}
	}
	rlog, err := wal.OpenFile(path, false)
	if err != nil {
		return st, err
	}
	defer rlog.Close()
	if durable {
		if err := attachBenchStores(w.Fed, size, withCkpt, dir, rlog.Sync); err != nil {
			return st, err
		}
	}
	recs, err := rlog.Records()
	if err != nil {
		return st, err
	}
	exp := wal.Expand(recs)
	st.TotalRecords = len(recs)
	st.ReplayRecords = len(exp.Records)
	// The live tail is everything the crashed run appended after the
	// synthetic history (and, in the checkpointed variant, after the
	// checkpoint — it is taken between the two).
	for _, r := range recs {
		if r.Type != wal.RecCheckpoint && r.LSN > histLSN {
			st.LiveTail++
		}
	}

	startT := time.Now()
	if durable {
		rep, err := scheduler.RecoverDurable(w.Fed, rlog, defs, nil)
		if err != nil {
			return st, fmt.Errorf("durable recovery: %w", err)
		}
		st.RestoredInDoubt = rep.RestoredInDoubt
		st.RedoItems = rep.RedoItems
		st.UndoItems = rep.UndoItems
		st.FlushedPages = rep.FlushedPages
	} else if _, err := scheduler.Recover(w.Fed, rlog, defs); err != nil {
		return st, fmt.Errorf("recovery: %w", err)
	}
	st.RecoverMillis = float64(time.Since(startT).Microseconds()) / 1000
	if durable {
		// Storage-level post-conditions: no torn page, no stale intent,
		// pages byte-equal to the sequential oracle.
		if err := fault.CheckDurableStores(w.Fed); err != nil {
			return st, fmt.Errorf("durable recovery check: %w", err)
		}
	}

	// Sanity on the recovered state: every live process terminal, no
	// in-doubt transactions.
	after, err := rlog.Records()
	if err != nil {
		return st, err
	}
	images, err := wal.Analyze(wal.Expand(after).Records)
	if err != nil && err != wal.ErrNoLog {
		return st, err
	}
	for _, img := range images {
		if !img.Terminated {
			st.NonTerminal++
		}
	}
	st.InDoubt = len(w.Fed.InDoubt())
	return st, nil
}

// benchRecovery implements "tpsim benchrec": the recovery-time vs
// log-length sweep behind BENCH_recovery.json. For each history size
// the same crashed run is recovered twice — over the full log and over
// a checkpointed, compacted one — so the cost of replaying history is
// isolated from the cost of finishing the crashed processes.
func benchRecovery(args []string) error {
	sizes := []int{1000, 10000, 100000}
	if len(args) > 0 && args[0] == "-quick" {
		sizes = []int{500, 2000, 8000}
	}
	dir, err := os.MkdirTemp("", "tpsim-benchrec")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	type point struct {
		Size    int           `json:"size"`
		Full    recoveryStats `json:"full"`
		Ckpt    recoveryStats `json:"ckpt"`
		Durable recoveryStats `json:"durable"`
	}
	out := struct {
		Name   string  `json:"name"`
		Points []point `json:"points"`
	}{Name: "recovery-vs-log-length"}

	for _, size := range sizes {
		full, err := recoveryFixture(size, false, false, dir)
		if err != nil {
			return fmt.Errorf("size %d full: %w", size, err)
		}
		ckpt, err := recoveryFixture(size, true, false, dir)
		if err != nil {
			return fmt.Errorf("size %d ckpt: %w", size, err)
		}
		durable, err := recoveryFixture(size, false, true, dir)
		if err != nil {
			return fmt.Errorf("size %d durable: %w", size, err)
		}
		fmt.Fprintf(os.Stderr, "size %6d: full replay=%6d in %8.1fms | ckpt replay=%4d in %8.1fms | durable replay=%6d in %8.1fms (%d redo, %d pages)\n",
			size, full.ReplayRecords, full.RecoverMillis, ckpt.ReplayRecords, ckpt.RecoverMillis,
			durable.ReplayRecords, durable.RecoverMillis, durable.RedoItems, durable.FlushedPages)
		out.Points = append(out.Points, point{Size: size, Full: full, Ckpt: ckpt, Durable: durable})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// e14 checks the bounded-time recovery claim deterministically: with a
// checkpoint and compaction, the records recovery replays after a crash
// are bounded by the live tail regardless of how much terminated
// history the log accumulated, while full-log recovery replays all of
// it; both paths still finish every process and resolve every in-doubt
// transaction.
func e14() error {
	dir, err := os.MkdirTemp("", "tpsim-e14")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	sizes := []int{500, 2000, 8000}
	var ckptReplays []int
	var errs []error
	for _, size := range sizes {
		full, err := recoveryFixture(size, false, false, dir)
		if err != nil {
			return fmt.Errorf("size %d full: %w", size, err)
		}
		ckpt, err := recoveryFixture(size, true, false, dir)
		if err != nil {
			return fmt.Errorf("size %d ckpt: %w", size, err)
		}
		durable, err := recoveryFixture(size, false, true, dir)
		if err != nil {
			return fmt.Errorf("size %d durable: %w", size, err)
		}
		fmt.Printf("  history ≈%d records: full replays %d (%.1fms), checkpointed replays %d (%.1fms), durable replays %d (%.1fms, %d redo items onto %d pages)\n",
			size, full.ReplayRecords, full.RecoverMillis, ckpt.ReplayRecords, ckpt.RecoverMillis,
			durable.ReplayRecords, durable.RecoverMillis, durable.RedoItems, durable.FlushedPages)
		errs = append(errs,
			verdict(full.ReplayRecords == full.HistoryRecords+full.LiveTail,
				"full-log recovery replays history + tail (%d = %d + %d)",
				full.ReplayRecords, full.HistoryRecords, full.LiveTail),
			verdict(ckpt.ReplayRecords == ckpt.LiveTail,
				"checkpointed recovery replays only the live tail (%d records)", ckpt.ReplayRecords),
			verdict(full.NonTerminal == 0 && full.InDoubt == 0,
				"full-log recovery terminates every process, no in-doubt left"),
			verdict(ckpt.NonTerminal == 0 && ckpt.InDoubt == 0,
				"checkpointed recovery terminates every process, no in-doubt left"),
			// The durable fixture's CheckDurableStores already enforced
			// torn-page-freedom and oracle byte-equality; assert the
			// composed recovery also finished the scheduler side and
			// actually redid work into pages.
			verdict(durable.NonTerminal == 0 && durable.InDoubt == 0,
				"durable recovery terminates every process, no in-doubt left"),
			verdict(durable.RedoItems > 0 && durable.FlushedPages > 0,
				"durable recovery redid subsystem state into heap pages (%d items, %d pages)",
				durable.RedoItems, durable.FlushedPages),
		)
		ckptReplays = append(ckptReplays, ckpt.ReplayRecords)
	}
	spread := ckptReplays[len(ckptReplays)-1] - ckptReplays[0]
	if spread < 0 {
		spread = -spread
	}
	errs = append(errs, verdict(spread <= 8,
		"checkpointed replay length is independent of history size (spread %d across %v)", spread, ckptReplays))
	return firstErr(errs...)
}
