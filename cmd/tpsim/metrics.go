package main

import (
	"fmt"
	"os"
	"strings"

	"transproc/internal/chaos"
	"transproc/internal/metrics"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// extractMetricsFlag strips -metrics[=text|json] (one or two dashes)
// from the argument list. It returns the requested format ("" when the
// flag is absent, "text" for the bare flag) and the remaining arguments.
func extractMetricsFlag(args []string) (format string, rest []string, err error) {
	for _, a := range args {
		name, value, hasValue := a, "", false
		if i := strings.IndexByte(a, '='); i >= 0 {
			name, value, hasValue = a[:i], a[i+1:], true
		}
		if name != "-metrics" && name != "--metrics" {
			rest = append(rest, a)
			continue
		}
		if !hasValue {
			value = "text"
		}
		if value != "text" && value != "json" {
			return "", nil, fmt.Errorf("invalid -metrics format %q (text|json)", value)
		}
		format = value
	}
	return format, rest, nil
}

// extractRuntimeFlag strips -runtime[=sequential|concurrent] (one or
// two dashes) from the argument list. It returns the selected engine
// ("" when absent, which means sequential) and the remaining arguments.
func extractRuntimeFlag(args []string) (engine string, rest []string, err error) {
	for _, a := range args {
		name, value, hasValue := a, "", false
		if i := strings.IndexByte(a, '='); i >= 0 {
			name, value, hasValue = a[:i], a[i+1:], true
		}
		if name != "-runtime" && name != "--runtime" {
			rest = append(rest, a)
			continue
		}
		if !hasValue {
			value = "concurrent"
		}
		if value != "sequential" && value != "concurrent" {
			return "", nil, fmt.Errorf("invalid -runtime engine %q (sequential|concurrent)", value)
		}
		engine = value
	}
	return engine, rest, nil
}

// dumpSnapshot writes the registry's snapshot to stdout in the
// requested format. The text report includes the last 20 decision-trace
// events as a readable tail.
func dumpSnapshot(reg *metrics.Registry, format string) error {
	if format == "json" {
		return reg.Snapshot().WriteJSON(os.Stdout)
	}
	reg.Snapshot().WriteText(os.Stdout, 20)
	return nil
}

// metricsDemo (bare "tpsim -metrics") runs a fault-injected workload
// under the instrumented PRED-cascade scheduler — behind a mildly flaky
// chaos transport so the resilience counters (retries, idempotent
// replays, breaker transitions, retry-latency histograms) show up
// alongside the scheduler's — and dumps the full observability
// snapshot: lifecycle counters, deferred-commit and compensation
// totals, per-service latency histograms, WAL totals and the tail of
// the decision trace.
func metricsDemo(format string) error {
	p := workload.DefaultProfile(7)
	p.PermFailureProb = 0.15
	w, err := workload.Generate(p)
	if err != nil {
		return err
	}
	reg := metrics.New()
	plan := chaos.Plan{Seed: p.Seed, PTransient: 0.12, PTimeout: 0.05, PDuplicate: 0.05, PSlow: 0.08}
	layer := chaos.NewLayer(w.Fed, plan, chaos.RetryPolicy{}, chaos.BreakerConfig{}, reg)
	eng, err := scheduler.New(w.Fed, scheduler.Config{
		Mode: scheduler.PREDCascade, Metrics: reg, Resilience: layer,
	})
	if err != nil {
		return err
	}
	if _, err := eng.RunJobs(w.Jobs); err != nil {
		return err
	}
	if format == "text" {
		fmt.Printf("instrumented demo run: %d processes, conflict=%.2f, permFail=%.2f, seed=%d (mode pred-cascade, chaos transport)\n\n",
			p.Processes, p.ConflictProb, p.PermFailureProb, p.Seed)
	}
	return dumpSnapshot(reg, format)
}
