package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"transproc/internal/fault"
	"transproc/internal/federation"
	"transproc/internal/process"
	"transproc/internal/scheduler/policy"
	"transproc/internal/workload"
)

// runFed implements "tpsim fed": a multi-node federated run as a
// command.
//
//	tpsim fed [-nodes N] [-procs P] [-seed S] [-mode pred|pred-cascade]
//	          [-lease D] [-heartbeat D]
//	tpsim fed -torture [-seeds N] [-first S] [-fedseed K] [-json]
//	tpsim fed -hubtorture [-seeds N] [-first S] [-hubseed K] [-json]
//	tpsim fed -bench [-procs P] [-seed S] [-reps R] [-json]
//	tpsim fed -benchhub [-procs P] [-seed S] [-reps R] [-json]
//
// The default form partitions a seeded workload across N scheduler
// nodes (hub + localhost TCP), runs it, stitches the per-node WALs by
// hub stamp and verifies the combined schedule is prefix-reducible.
// -lease/-heartbeat enable lease-based membership: nodes heartbeat the
// hub and silent nodes are declared dead by lease expiry instead of an
// explicit death report.
// -torture runs the federation-torture battery (node kills mid-2PC,
// partition windows, crash + re-join; see internal/federation).
// -hubtorture runs the hub-kill battery (hub killed mid-dispatch and
// inside the 2PC window, hub+node double faults, lease-expiry
// re-assignment), each seed judged by CheckRecovered at every reopen
// and over the final stitched multi-incarnation history.
// -bench sweeps 1, 2 and 4 nodes over the identical workload and
// reports throughput — the measurement behind BENCH_fed.json (E16).
// -benchhub measures hub-kill MTTR (detection + journal reopen +
// recovery + node reattach) per node count — BENCH_fed_hub.json (E18).
func runFed(args []string) error {
	fs := flag.NewFlagSet("fed", flag.ContinueOnError)
	nodes := fs.Int("nodes", 2, "scheduler node count")
	procs := fs.Int("procs", 24, "process count")
	seed := fs.Int64("seed", 1, "workload seed")
	mode := fs.String("mode", "pred", "scheduling mode: pred or pred-cascade")
	lease := fs.Duration("lease", 0, "lease TTL for membership (0 = explicit death reports)")
	heartbeat := fs.Duration("heartbeat", 0, "node heartbeat interval (default lease/4 when -lease is set)")
	torture := fs.Bool("torture", false, "run the federation-torture battery")
	hubTorture := fs.Bool("hubtorture", false, "run the hub-kill torture battery")
	seeds := fs.Int64("seeds", 200, "torture: number of seeds")
	first := fs.Int64("first", 0, "torture: first seed")
	one := fs.Int64("fedseed", -1, "torture: run only this seed (verbose reproduction)")
	oneHub := fs.Int64("hubseed", -1, "hubtorture: run only this seed (verbose reproduction)")
	bench := fs.Bool("bench", false, "sweep node counts and report throughput")
	benchHub := fs.Bool("benchhub", false, "measure hub-kill MTTR per node count")
	reps := fs.Int("reps", 3, "bench: repetitions per node count")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *torture {
		return runFedTortureCmd(*first, *seeds, *one, *asJSON)
	}
	if *hubTorture {
		return runHubTortureCmd(*first, *seeds, *oneHub, *asJSON)
	}
	if *bench {
		return runFedBench(*procs, *seed, *reps, *asJSON)
	}
	if *benchHub {
		return runFedBenchHub(*procs, *seed, *reps, *asJSON)
	}

	m := policy.PRED
	switch *mode {
	case "pred":
	case "pred-cascade":
		m = policy.PREDCascade
	default:
		return fmt.Errorf("unknown mode %q (pred, pred-cascade)", *mode)
	}
	res, elapsed, err := fedRunLease(*procs, *seed, *nodes, m, *lease, *heartbeat)
	if err != nil {
		return err
	}
	committed, aborted := 0, 0
	for _, o := range res.Outcomes {
		if o.Committed {
			committed++
		} else if o.Aborted {
			aborted++
		}
	}
	fmt.Printf("fed: %d processes over %d nodes (%s): %d committed, %d aborted incarnations, stitched schedule PRED ✓\n",
		*procs, *nodes, elapsed.Round(time.Millisecond), committed, aborted)
	return nil
}

// fedRun executes one federated workload and verifies the stitched
// schedule, returning the run result and wall-clock duration.
func fedRun(procs int, seed int64, nodes int, mode policy.Mode) (*federation.RunResult, time.Duration, error) {
	return fedRunLease(procs, seed, nodes, mode, 0, 0)
}

// fedRunLease is fedRun with lease-based membership enabled when
// lease > 0 (heartbeat defaults to lease/4).
func fedRunLease(procs int, seed int64, nodes int, mode policy.Mode, lease, heartbeat time.Duration) (*federation.RunResult, time.Duration, error) {
	p := workload.DefaultProfile(seed)
	p.Processes = procs
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.05
	w, err := workload.Generate(p)
	if err != nil {
		return nil, 0, err
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	if lease > 0 && heartbeat <= 0 {
		heartbeat = lease / 4
	}
	c, err := federation.NewCluster(w.Fed, defs, federation.Config{
		Nodes: nodes, Mode: mode, MaxRestarts: 8,
		LeaseTTL: lease, HeartbeatEvery: heartbeat,
	})
	if err != nil {
		return nil, 0, err
	}
	defer c.Close()
	start := time.Now()
	res := c.Run()
	elapsed := time.Since(start)
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return nil, 0, fmt.Errorf("node %d: %w", i, nerr)
		}
	}
	recs, err := c.Stitched()
	if err != nil {
		return nil, 0, err
	}
	table, err := w.Fed.ConflictTable()
	if err != nil {
		return nil, 0, err
	}
	sched, err := fault.ScheduleFromWAL(table, defs, recs, len(recs))
	if err != nil {
		return nil, 0, err
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("stitched schedule not prefix-reducible (prefix %d)", at)
	}
	if doubt := w.Fed.InDoubt(); len(doubt) > 0 {
		return nil, 0, fmt.Errorf("in-doubt transactions after run: %v", doubt)
	}
	return res, elapsed, nil
}

func runFedTortureCmd(first, seeds, one int64, asJSON bool) error {
	if one >= 0 {
		sc := federation.FedScenarioFor(one)
		fmt.Printf("seed %d: class=%s mode=%v nodes=%d crash={node %d, %q, count %d} wire=%+v\n",
			sc.Seed, sc.Class, sc.Mode, sc.Nodes, sc.CrashNode, sc.CrashPoint, sc.CrashCount, sc.Wire)
		alt, err := federation.RunFedScenario(sc)
		if err != nil {
			return err
		}
		fmt.Printf("scenario passed (alternatives fired: %v)\n", alt)
		return nil
	}
	progress, stop := seedTrap("tpsim fed -torture -fedseed=")
	sum := federation.RunFedTortureProgress(first, seeds, progress)
	stop()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("fed torture: %d scenarios (seeds %d..%d), alternatives fired in %d\n",
			sum.Scenarios, first, first+seeds-1, sum.AltFires)
		classes := make([]string, 0, len(sum.ByClass))
		for class := range sum.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("  %-24s %d\n", class, sum.ByClass[class])
		}
		for _, f := range sum.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
	}
	if n := len(sum.Failures); n > 0 {
		return fmt.Errorf("%d of %d scenarios violated a recovery guarantee (reproduce with: tpsim fed -torture -fedseed=N)", n, sum.Scenarios)
	}
	return nil
}

func runHubTortureCmd(first, seeds, one int64, asJSON bool) error {
	if one >= 0 {
		sc := federation.HubScenarioFor(one)
		fmt.Printf("seed %d: class=%s mode=%v nodes=%d hub={%q, count %d} crash={node %d, %q, count %d} lease=%s wire=%+v\n",
			sc.Seed, sc.Class, sc.Mode, sc.Nodes, sc.HubPoint, sc.HubCount,
			sc.CrashNode, sc.CrashPoint, sc.CrashCount, sc.LeaseTTL, sc.Wire)
		st, err := federation.RunHubScenario(sc)
		if err != nil {
			return err
		}
		fmt.Printf("scenario passed: %d kills ridden out by %d reopens (%d adoptions, %d lease expiries, %d reattaches)\n",
			st.Kills, st.Reopens, st.Adoptions, st.LeaseExpiries, st.Reattached)
		return nil
	}
	progress, stop := seedTrap("tpsim fed -hubtorture -hubseed=")
	sum := federation.RunHubTortureProgress(first, seeds, progress)
	stop()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("hub torture: %d scenarios (seeds %d..%d): %d kills, %d reopens, %d adoptions, %d lease expiries, %d reattaches\n",
			sum.Scenarios, first, first+seeds-1, sum.Kills, sum.Reopens,
			sum.Adoptions, sum.LeaseExpiries, sum.Reattached)
		classes := make([]string, 0, len(sum.ByClass))
		for class := range sum.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("  %-24s %d\n", class, sum.ByClass[class])
		}
		for _, f := range sum.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
	}
	if n := len(sum.Failures); n > 0 {
		return fmt.Errorf("%d of %d scenarios violated a recovery guarantee (reproduce with: tpsim fed -hubtorture -hubseed=N)", n, sum.Scenarios)
	}
	return nil
}

// fedBenchPoint is one row of BENCH_fed.json.
type fedBenchPoint struct {
	Nodes       int     `json:"nodes"`
	Processes   int     `json:"processes"`
	Reps        int     `json:"reps"`
	MeanMillis  float64 `json:"meanMillis"`
	ProcsPerSec float64 `json:"procsPerSec"`
}

// hubBenchPoint is one row of BENCH_fed_hub.json: hub-kill MTTR at one
// node count. MTTR spans the monitor's death detection, the journal +
// stitched-WAL reopen (recovery of every in-doubt transaction), and the
// rebind that lets nodes reattach; the workload rides through the
// outage, so TotalMillis also shows the end-to-end cost of the bounce.
type hubBenchPoint struct {
	Nodes          int     `json:"nodes"`
	Processes      int     `json:"processes"`
	Reps           int     `json:"reps"`
	Kills          int     `json:"kills"`
	MeanMTTRMillis float64 `json:"meanMTTRMillis"`
	MaxMTTRMillis  float64 `json:"maxMTTRMillis"`
	Reattached     int     `json:"reattached"`
	MeanRunMillis  float64 `json:"meanRunMillis"`
}

// runFedBenchHub sweeps node counts, arming one hub kill -9 per run in
// the dispatch window, and measures mean time to recovery: the span
// from the monitor detecting the dead hub to the reopened hub bound and
// accepting reattaches. Lease-based membership is on (the production
// configuration) so detection latency is part of the measurement.
func runFedBenchHub(procs int, seed int64, reps int, asJSON bool) error {
	var points []hubBenchPoint
	for _, nodes := range []int{2, 3, 4} {
		pt := hubBenchPoint{Nodes: nodes, Processes: procs, Reps: reps}
		var mttrTotal, runTotal time.Duration
		var maxMTTR time.Duration
		for r := 0; r < reps; r++ {
			mttr, elapsed, reattached, kills, err := fedHubBenchRun(procs, seed+int64(r), nodes)
			if err != nil {
				return fmt.Errorf("nodes=%d rep=%d: %w", nodes, r, err)
			}
			pt.Kills += kills
			pt.Reattached += reattached
			mttrTotal += mttr
			runTotal += elapsed
			if mttr > maxMTTR {
				maxMTTR = mttr
			}
		}
		if pt.Kills > 0 {
			pt.MeanMTTRMillis = float64(mttrTotal.Microseconds()) / 1000.0 / float64(pt.Kills)
		}
		pt.MaxMTTRMillis = float64(maxMTTR.Microseconds()) / 1000.0
		pt.MeanRunMillis = float64(runTotal.Microseconds()) / 1000.0 / float64(reps)
		points = append(points, pt)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	}
	fmt.Println("nodes  kills  meanMTTR(ms)  maxMTTR(ms)  reattached  run(ms)")
	for _, p := range points {
		fmt.Printf("%5d  %5d  %12.1f  %11.1f  %10d  %7.1f\n",
			p.Nodes, p.Kills, p.MeanMTTRMillis, p.MaxMTTRMillis, p.Reattached, p.MeanRunMillis)
	}
	return nil
}

// fedHubBenchRun is one MTTR sample: a federated workload with a hub
// kill armed mid-run, timed from OnHubDown to OnHubUp.
func fedHubBenchRun(procs int, seed int64, nodes int) (mttr, elapsed time.Duration, reattached, kills int, err error) {
	p := workload.DefaultProfile(seed)
	p.Processes = procs
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.05
	w, err := workload.Generate(p)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	var mu sync.Mutex
	var down time.Time
	var downtime time.Duration
	c, err := federation.NewCluster(w.Fed, defs, federation.Config{
		Nodes: nodes, Mode: policy.PRED, MaxRestarts: 8,
		LeaseTTL: 200 * time.Millisecond, HeartbeatEvery: 20 * time.Millisecond,
		HubKill: federation.CrashSpec{Point: fault.PointHubDispatch, Count: 3},
		OnHubDown: func() {
			mu.Lock()
			down = time.Now()
			mu.Unlock()
		},
		OnHubUp: func() {
			mu.Lock()
			if !down.IsZero() {
				downtime += time.Since(down)
				down = time.Time{}
			}
			mu.Unlock()
		},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer c.Close()
	start := time.Now()
	res := c.Run()
	elapsed = time.Since(start)
	if res.HubErr != nil {
		return 0, 0, 0, 0, fmt.Errorf("hub reopen: %w", res.HubErr)
	}
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return 0, 0, 0, 0, fmt.Errorf("node %d: %w", i, nerr)
		}
	}
	mu.Lock()
	mttr = downtime
	mu.Unlock()
	return mttr, elapsed, res.Reattached, res.HubRestarts, nil
}

func runFedBench(procs int, seed int64, reps int, asJSON bool) error {
	var points []fedBenchPoint
	for _, nodes := range []int{1, 2, 4} {
		var total time.Duration
		for r := 0; r < reps; r++ {
			_, elapsed, err := fedRun(procs, seed+int64(r), nodes, policy.PRED)
			if err != nil {
				return fmt.Errorf("nodes=%d rep=%d: %w", nodes, r, err)
			}
			total += elapsed
		}
		mean := total / time.Duration(reps)
		points = append(points, fedBenchPoint{
			Nodes: nodes, Processes: procs, Reps: reps,
			MeanMillis:  float64(mean.Microseconds()) / 1000.0,
			ProcsPerSec: float64(procs) / mean.Seconds(),
		})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	}
	fmt.Println("nodes  mean(ms)  procs/sec")
	for _, p := range points {
		fmt.Printf("%5d  %8.1f  %9.1f\n", p.Nodes, p.MeanMillis, p.ProcsPerSec)
	}
	return nil
}
