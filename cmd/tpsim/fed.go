package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"transproc/internal/fault"
	"transproc/internal/federation"
	"transproc/internal/process"
	"transproc/internal/scheduler/policy"
	"transproc/internal/workload"
)

// runFed implements "tpsim fed": a multi-node federated run as a
// command.
//
//	tpsim fed [-nodes N] [-procs P] [-seed S] [-mode pred|pred-cascade]
//	tpsim fed -torture [-seeds N] [-first S] [-fedseed K] [-json]
//	tpsim fed -bench [-procs P] [-seed S] [-reps R] [-json]
//
// The default form partitions a seeded workload across N scheduler
// nodes (hub + localhost TCP), runs it, stitches the per-node WALs by
// hub stamp and verifies the combined schedule is prefix-reducible.
// -torture runs the federation-torture battery (node kills mid-2PC,
// partition windows, crash + re-join; see internal/federation).
// -bench sweeps 1, 2 and 4 nodes over the identical workload and
// reports throughput — the measurement behind BENCH_fed.json (E16).
func runFed(args []string) error {
	fs := flag.NewFlagSet("fed", flag.ContinueOnError)
	nodes := fs.Int("nodes", 2, "scheduler node count")
	procs := fs.Int("procs", 24, "process count")
	seed := fs.Int64("seed", 1, "workload seed")
	mode := fs.String("mode", "pred", "scheduling mode: pred or pred-cascade")
	torture := fs.Bool("torture", false, "run the federation-torture battery")
	seeds := fs.Int64("seeds", 200, "torture: number of seeds")
	first := fs.Int64("first", 0, "torture: first seed")
	one := fs.Int64("fedseed", -1, "torture: run only this seed (verbose reproduction)")
	bench := fs.Bool("bench", false, "sweep node counts and report throughput")
	reps := fs.Int("reps", 3, "bench: repetitions per node count")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *torture {
		return runFedTortureCmd(*first, *seeds, *one, *asJSON)
	}
	if *bench {
		return runFedBench(*procs, *seed, *reps, *asJSON)
	}

	m := policy.PRED
	switch *mode {
	case "pred":
	case "pred-cascade":
		m = policy.PREDCascade
	default:
		return fmt.Errorf("unknown mode %q (pred, pred-cascade)", *mode)
	}
	res, elapsed, err := fedRun(*procs, *seed, *nodes, m)
	if err != nil {
		return err
	}
	committed, aborted := 0, 0
	for _, o := range res.Outcomes {
		if o.Committed {
			committed++
		} else if o.Aborted {
			aborted++
		}
	}
	fmt.Printf("fed: %d processes over %d nodes (%s): %d committed, %d aborted incarnations, stitched schedule PRED ✓\n",
		*procs, *nodes, elapsed.Round(time.Millisecond), committed, aborted)
	return nil
}

// fedRun executes one federated workload and verifies the stitched
// schedule, returning the run result and wall-clock duration.
func fedRun(procs int, seed int64, nodes int, mode policy.Mode) (*federation.RunResult, time.Duration, error) {
	p := workload.DefaultProfile(seed)
	p.Processes = procs
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.05
	w, err := workload.Generate(p)
	if err != nil {
		return nil, 0, err
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	c, err := federation.NewCluster(w.Fed, defs, federation.Config{Nodes: nodes, Mode: mode, MaxRestarts: 8})
	if err != nil {
		return nil, 0, err
	}
	defer c.Close()
	start := time.Now()
	res := c.Run()
	elapsed := time.Since(start)
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return nil, 0, fmt.Errorf("node %d: %w", i, nerr)
		}
	}
	recs, err := c.Stitched()
	if err != nil {
		return nil, 0, err
	}
	table, err := w.Fed.ConflictTable()
	if err != nil {
		return nil, 0, err
	}
	sched, err := fault.ScheduleFromWAL(table, defs, recs, len(recs))
	if err != nil {
		return nil, 0, err
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("stitched schedule not prefix-reducible (prefix %d)", at)
	}
	if doubt := w.Fed.InDoubt(); len(doubt) > 0 {
		return nil, 0, fmt.Errorf("in-doubt transactions after run: %v", doubt)
	}
	return res, elapsed, nil
}

func runFedTortureCmd(first, seeds, one int64, asJSON bool) error {
	if one >= 0 {
		sc := federation.FedScenarioFor(one)
		fmt.Printf("seed %d: class=%s mode=%v nodes=%d crash={node %d, %q, count %d} wire=%+v\n",
			sc.Seed, sc.Class, sc.Mode, sc.Nodes, sc.CrashNode, sc.CrashPoint, sc.CrashCount, sc.Wire)
		alt, err := federation.RunFedScenario(sc)
		if err != nil {
			return err
		}
		fmt.Printf("scenario passed (alternatives fired: %v)\n", alt)
		return nil
	}
	progress, stop := seedTrap("tpsim fed -torture -fedseed=")
	sum := federation.RunFedTortureProgress(first, seeds, progress)
	stop()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("fed torture: %d scenarios (seeds %d..%d), alternatives fired in %d\n",
			sum.Scenarios, first, first+seeds-1, sum.AltFires)
		classes := make([]string, 0, len(sum.ByClass))
		for class := range sum.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("  %-24s %d\n", class, sum.ByClass[class])
		}
		for _, f := range sum.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
	}
	if n := len(sum.Failures); n > 0 {
		return fmt.Errorf("%d of %d scenarios violated a recovery guarantee (reproduce with: tpsim fed -torture -fedseed=N)", n, sum.Scenarios)
	}
	return nil
}

// fedBenchPoint is one row of BENCH_fed.json.
type fedBenchPoint struct {
	Nodes       int     `json:"nodes"`
	Processes   int     `json:"processes"`
	Reps        int     `json:"reps"`
	MeanMillis  float64 `json:"meanMillis"`
	ProcsPerSec float64 `json:"procsPerSec"`
}

func runFedBench(procs int, seed int64, reps int, asJSON bool) error {
	var points []fedBenchPoint
	for _, nodes := range []int{1, 2, 4} {
		var total time.Duration
		for r := 0; r < reps; r++ {
			_, elapsed, err := fedRun(procs, seed+int64(r), nodes, policy.PRED)
			if err != nil {
				return fmt.Errorf("nodes=%d rep=%d: %w", nodes, r, err)
			}
			total += elapsed
		}
		mean := total / time.Duration(reps)
		points = append(points, fedBenchPoint{
			Nodes: nodes, Processes: procs, Reps: reps,
			MeanMillis:  float64(mean.Microseconds()) / 1000.0,
			ProcsPerSec: float64(procs) / mean.Seconds(),
		})
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	}
	fmt.Println("nodes  mean(ms)  procs/sec")
	for _, p := range points {
		fmt.Printf("%5d  %8.1f  %9.1f\n", p.Nodes, p.MeanMillis, p.ProcsPerSec)
	}
	return nil
}
