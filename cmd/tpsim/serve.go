package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"transproc/internal/scheduler"
	"transproc/internal/serve"
	"transproc/internal/spec"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// runServe implements "tpsim serve": the long-running ingestion service
// and its two seeded harnesses.
//
//	tpsim serve [-addr :8080] [-dir serve-data] [-world spec.json]
//	            [-mode pred|pred-cascade] [-fed N] [-lease D] [-heartbeat D]
//	            [-queue N] [-batch N] [-tick D] [-drain D] [-ckpt N]
//	            [-compact] [-nosync] [-rate R] [-burst B] [-retries N]
//	tpsim serve -torture [-seeds N] [-first S] [-seed K] [-json]
//	tpsim serve -bench [-clients 1,4,16] [-dur D] [-json]
//
// The default form opens (or re-opens, recovering) the data directory,
// builds the subsystem federation from -world (a spec file whose
// "subsystems" section declares the services; its "processes" section
// is ignored — processes arrive over HTTP) or from a built-in demo
// world, and serves the ingestion API until SIGINT/SIGTERM triggers a
// graceful drain. -fed N routes batches through an N-node federation
// cluster instead of the in-process runtime.
//
// -torture runs the serve crash battery (internal/serve): seeded
// kill -9 scenarios over real HTTP, each judged by fault.CheckRecovered
// after restart; interrupting the run prints the in-flight reproducing
// seed. -bench runs the saturation load harness behind BENCH_serve.json.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dir := fs.String("dir", "serve-data", "data directory (wal.log + intake.journal)")
	world := fs.String("world", "", "spec file declaring the subsystem federation (default: built-in demo world)")
	mode := fs.String("mode", "pred", "scheduling mode: pred or pred-cascade")
	fed := fs.Int("fed", 0, "route batches through an N-node federation cluster (0 = in-process runtime)")
	lease := fs.Duration("lease", 0, "federation: lease TTL for hub membership (0 = explicit death reports; /readyz degrades while the hub is unreachable)")
	heartbeat := fs.Duration("heartbeat", 0, "federation: node heartbeat interval (default lease/4 when -lease is set)")
	queue := fs.Int("queue", 64, "admission queue depth (shed with 429 beyond it)")
	batch := fs.Int("batch", 8, "max submissions per runner micro-batch")
	tick := fs.Duration("tick", 0, "real duration of one virtual service cost unit")
	drain := fs.Duration("drain", 10*time.Second, "graceful-drain deadline before parking queued work")
	ckpt := fs.Int("ckpt", 0, "fuzzy WAL checkpoint every N force-log appends (0 = only at drain)")
	compact := fs.Bool("compact", false, "compact the WAL after each checkpoint")
	nosync := fs.Bool("nosync", false, "disable per-append WAL fsync (testing only)")
	rate := fs.Float64("rate", 0, "per-tenant sustained admission rate (submissions/sec; 0 = unlimited)")
	burst := fs.Int("burst", 0, "per-tenant token-bucket burst (default 8 when -rate is set)")
	retries := fs.Int("retries", 0, "per-tenant retry budget for restarts and re-runs (default 64)")
	torture := fs.Bool("torture", false, "run the serve crash-torture battery")
	seeds := fs.Int64("seeds", 200, "torture: number of seeds")
	first := fs.Int64("first", 0, "torture: first seed")
	one := fs.Int64("seed", -1, "torture: run only this seed (verbose reproduction)")
	bench := fs.Bool("bench", false, "run the saturation load harness (BENCH_serve.json)")
	clients := fs.String("clients", "1,4,16", "bench: comma-separated client counts")
	dur := fs.Duration("dur", 2*time.Second, "bench: load duration per client count")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *torture {
		return runServeTorture(*first, *seeds, *one, *asJSON)
	}
	if *bench {
		return runServeBench(*clients, *dur, *asJSON)
	}

	m := scheduler.PRED
	switch *mode {
	case "pred":
	case "pred-cascade":
		m = scheduler.PREDCascade
	default:
		return fmt.Errorf("unknown mode %q (pred, pred-cascade)", *mode)
	}

	fedr, err := serveWorldFromFlag(*world)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	if *lease > 0 && *heartbeat <= 0 {
		*heartbeat = *lease / 4
	}
	cfg := serve.Config{
		Dir: *dir, Mode: m, FedNodes: *fed,
		FedLeaseTTL: *lease, FedHeartbeat: *heartbeat,
		QueueDepth: *queue, BatchMax: *batch, Tick: *tick,
		DrainTimeout: *drain, CheckpointEvery: *ckpt,
		CompactOnCheckpoint: *compact, NoSync: *nosync,
		Tenant: serve.TenantConfig{Rate: *rate, Burst: *burst, RetryBudget: *retries},
	}
	s, err := serve.Open(fedr, cfg)
	if err != nil {
		return err
	}
	if rep := s.RecoveryReport(); rep != nil {
		fresh, reruns := s.Resumed()
		fmt.Printf("serve: recovered %s: %d parked submissions resumed, %d crash-interrupted re-run\n",
			*dir, fresh, reruns)
	}
	bound, err := s.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("serve: listening on %s (dir=%s mode=%s queue=%d batch=%d", bound, *dir, *mode, *queue, *batch)
	if *fed > 0 {
		fmt.Printf(" fed=%d nodes", *fed)
	}
	fmt.Println(")")
	fmt.Printf("serve: try: curl -s localhost%s/healthz\n", portOf(bound))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("serve: %v: draining (deadline %s; second signal force-quits)\n", got, *drain)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "serve: force quit")
		os.Exit(1)
	}()
	rep, err := s.Drain(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("serve: drained in %s: %d finished, %d parked for restart\n",
		rep.Elapsed.Round(time.Millisecond), rep.Finished, rep.Parked)
	return nil
}

// portOf extracts ":port" from a bound address for the quickstart line.
func portOf(addr string) string {
	if i := bytes.LastIndexByte([]byte(addr), ':'); i >= 0 {
		return addr[i:]
	}
	return addr
}

// serveWorldFromFlag builds the server's subsystem federation: from the
// subsystems section of a spec file, or the built-in demo world (a
// compensatable booking, a pivot charge and retriable confirmations
// across two subsystems — the world of the README quickstart).
func serveWorldFromFlag(path string) (*subsystem.Federation, error) {
	if path == "" {
		return spec.BuildFederation([]spec.SubsystemSpec{
			{Name: "hotel", Seed: 1, Services: []spec.ServiceSpec{
				{Name: "book", Kind: "compensatable", Writes: []string{"rooms"}, Cost: 1},
				{Name: "confirm", Kind: "retriable", Writes: []string{"mail"}, Cost: 1},
			}},
			{Name: "pay", Seed: 2, Services: []spec.ServiceSpec{
				{Name: "charge", Kind: "pivot", Writes: []string{"ledger"}, Cost: 1},
				{Name: "refund", Kind: "retriable", Writes: []string{"ledger"}, Cost: 1},
			}},
		})
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := spec.Parse(data)
	if err != nil {
		return nil, err
	}
	return spec.BuildFederation(f.Subsystems)
}

func runServeTorture(first, seeds, one int64, asJSON bool) error {
	root, err := os.MkdirTemp("", "tpsim-serve-torture")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	if one >= 0 {
		sc := serve.ScenarioFor(one)
		fmt.Printf("seed %d: class=%s mode=%v procs=%d tenants=%d ckptEvery=%d compact=%v group=%+v plan=%+v rerunBudget=%d\n",
			sc.Seed, sc.Class, sc.Mode, sc.Procs, sc.Tenants, sc.CheckpointEvery,
			sc.CompactOnCheckpoint, sc.GroupCommit, sc.Plan, sc.RerunBudget)
		if err := serve.RunScenario(sc, filepath.Join(root, "seed")); err != nil {
			return err
		}
		fmt.Println("scenario passed: all recovery guarantees hold")
		return nil
	}

	progress, stop := seedTrap("tpsim serve -torture -seed=")
	sum := serve.RunBattery(first, seeds, func(seed int64) string {
		return filepath.Join(root, fmt.Sprintf("s%d", seed))
	}, progress)
	stop()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("serve torture: %d scenarios (seeds %d..%d)\n",
			sum.Scenarios, first, first+seeds-1)
		classes := make([]string, 0, len(sum.ByClass))
		for class := range sum.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("  %-24s %d\n", class, sum.ByClass[class])
		}
		for _, f := range sum.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
	}
	if n := len(sum.Failures); n > 0 {
		return fmt.Errorf("%d of %d scenarios violated a recovery guarantee (reproduce with: tpsim serve -torture -seed=N)", n, sum.Scenarios)
	}
	return nil
}

// serveBenchPoint is one row of BENCH_serve.json: a closed-loop load
// run at a fixed client count against a deliberately small admission
// window (queue 8, in-flight window 4, 200µs service ticks), so the
// 16-client point saturates and the shed rate is a real measurement.
type serveBenchPoint struct {
	Clients        int     `json:"clients"`
	Accepted       int     `json:"accepted"`
	Shed           int     `json:"shed"`
	ReqPerSec      float64 `json:"reqPerSec"`
	P50AdmitMicros float64 `json:"p50AdmitMicros"`
	P99AdmitMicros float64 `json:"p99AdmitMicros"`
	ShedRate       float64 `json:"shedRate"`
}

// serveBenchResult is the committed BENCH_serve.json document.
type serveBenchResult struct {
	Benchmark  string            `json:"benchmark"`
	QueueDepth int               `json:"queueDepth"`
	BatchMax   int               `json:"batchMax"`
	TickMicros int               `json:"tickMicros"`
	DurMillis  int64             `json:"durMillis"`
	Results    []serveBenchPoint `json:"results"`
}

func runServeBench(clientList string, dur time.Duration, asJSON bool) error {
	var counts []int
	for _, f := range bytes.Split([]byte(clientList), []byte(",")) {
		var n int
		if _, err := fmt.Sscanf(string(bytes.TrimSpace(f)), "%d", &n); err != nil || n <= 0 {
			return fmt.Errorf("bad -clients value %q", clientList)
		}
		counts = append(counts, n)
	}
	const (
		queueDepth = 8
		batchMax   = 4
		tick       = 200 * time.Microsecond
	)
	out := serveBenchResult{
		Benchmark: "serve-load", QueueDepth: queueDepth, BatchMax: batchMax,
		TickMicros: int(tick / time.Microsecond), DurMillis: dur.Milliseconds(),
	}
	for _, c := range counts {
		pt, err := serveBenchRun(c, queueDepth, batchMax, tick, dur)
		if err != nil {
			return fmt.Errorf("clients=%d: %w", c, err)
		}
		out.Results = append(out.Results, pt)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Println("clients  req/sec  p50(µs)  p99(µs)  shed%")
	for _, p := range out.Results {
		fmt.Printf("%7d  %7.0f  %7.0f  %7.0f  %5.1f\n",
			p.Clients, p.ReqPerSec, p.P50AdmitMicros, p.P99AdmitMicros, 100*p.ShedRate)
	}
	return nil
}

// serveBenchRun drives one closed-loop load point: c clients each
// submitting a 3-activity booking process over real HTTP and waiting
// for it to settle before the next, measuring client-observed admission
// latency (POST to 202) and the 429 shed rate. The loop is closed on
// completion, so shedding is a pure function of concurrency vs the
// admission window: one client never sheds, sixteen against a queue of
// eight must. Group commit (batch 16) keeps the force-log discipline
// honest without paying one fsync per record.
func serveBenchRun(c, queueDepth, batchMax int, tick, dur time.Duration) (serveBenchPoint, error) {
	var pt serveBenchPoint
	dir, err := os.MkdirTemp("", "tpsim-serve-bench")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)
	fedr, err := serveWorldFromFlag("")
	if err != nil {
		return pt, err
	}
	s, err := serve.Open(fedr, serve.Config{
		Dir: dir, QueueDepth: queueDepth, BatchMax: batchMax, Tick: tick,
		BatchWait:   500 * time.Microsecond,
		GroupCommit: wal.GroupCommit{MaxBatch: 16},
	})
	if err != nil {
		return pt, err
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	url := "http://" + addr + "/v1/processes"

	var (
		mu        sync.Mutex
		latencies []time.Duration
		accepted  int
		shed      int
	)
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			httpc := &http.Client{Timeout: 5 * time.Second}
			for n := 0; time.Now().Before(deadline); n++ {
				body, _ := json.Marshal(serve.SubmitRequest{
					Tenant: "bench",
					Proc: spec.ProcessSpec{
						ID: fmt.Sprintf("c%d-n%d", client, n),
						Activities: []spec.ActivitySpec{
							{Local: 1, Service: "book"},
							{Local: 2, Service: "charge"},
							{Local: 3, Service: "confirm"},
						},
						Seq: [][2]int{{1, 2}, {2, 3}},
					},
				})
				t0 := time.Now()
				resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				lat := time.Since(t0)
				var ack serve.SubmitResponse
				json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted++
					latencies = append(latencies, lat)
				case http.StatusTooManyRequests:
					shed++
				}
				mu.Unlock()
				if resp.StatusCode != http.StatusAccepted {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				// Close the loop on completion: poll until terminal.
				for time.Now().Before(deadline) {
					st, err := httpc.Get("http://" + addr + ack.Status)
					if err != nil {
						return
					}
					var status serve.Status
					json.NewDecoder(st.Body).Decode(&status)
					st.Body.Close()
					if status.Final {
						break
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(i)
	}
	wg.Wait()
	s.WaitIdle(30 * time.Second)
	if _, err := s.Drain(context.Background()); err != nil {
		return pt, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i].Nanoseconds()) / 1e3
	}
	pt = serveBenchPoint{
		Clients: c, Accepted: accepted, Shed: shed,
		ReqPerSec:      float64(accepted) / dur.Seconds(),
		P50AdmitMicros: quantile(0.50),
		P99AdmitMicros: quantile(0.99),
	}
	if accepted+shed > 0 {
		pt.ShedRate = float64(shed) / float64(accepted+shed)
	}
	return pt, nil
}
