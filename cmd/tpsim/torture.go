package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"transproc/internal/fault"
)

// runTorture implements "tpsim torture": the crash-torture battery as a
// command, for CI jobs and for reproducing a failing seed outside the
// test harness.
//
//	tpsim torture [-seeds N] [-first S] [-seed K] [-ckpt N] [-compact] [-durable] [-json]
//
// -seeds runs the scenarios of seeds [first, first+N); -seed runs a
// single scenario verbosely. -ckpt forces fuzzy checkpoints every N
// force-log appends onto every scenario that doesn't already
// checkpoint, and -compact compacts the log after each; together they
// re-run the whole battery with checkpointing live under every crash
// class. -durable backs every scenario's subsystems with file-backed
// heap stores, so each crash also kills and recovers durable pages
// (the four store-* classes do this regardless of the flag). -json
// dumps the summary as JSON. The exit status is non-zero when any
// scenario violates a recovery guarantee; every failure message embeds
// the seed that reproduces it.
func runTorture(args []string) error {
	fs := flag.NewFlagSet("torture", flag.ContinueOnError)
	seeds := fs.Int64("seeds", 200, "number of torture seeds to run")
	first := fs.Int64("first", 0, "first seed of the battery")
	one := fs.Int64("seed", -1, "run only this seed (verbose reproduction)")
	ckpt := fs.Int("ckpt", 0, "force checkpoints every N appends onto every scenario")
	compact := fs.Bool("compact", false, "compact the log after each checkpoint")
	durable := fs.Bool("durable", false, "back every scenario's subsystems with file-backed heap stores")
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := fault.TortureOpts{CheckpointEvery: *ckpt, Compact: *compact, Durable: *durable}

	dir, err := os.MkdirTemp("", "tpsim-torture")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	if *one >= 0 {
		sc := fault.ScenarioFor(*one)
		opts.Apply(&sc)
		fmt.Printf("seed %d: class=%s engine=%s mode=%v ckptEvery=%d compact=%v plan=%+v\n",
			sc.Seed, sc.Class, sc.Engine, sc.Mode, sc.CheckpointEvery, sc.CompactOnCheckpoint, sc.Plan)
		if err := fault.RunScenario(sc, dir); err != nil {
			return err
		}
		fmt.Println("scenario passed: all recovery guarantees hold")
		return nil
	}

	progress, stop := seedTrap("tpsim torture -seed=")
	opts.Progress = progress
	sum := fault.RunTortureOpts(*first, *seeds, dir, opts)
	stop()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("torture: %d scenarios (seeds %d..%d), %d armed, %d unarmed\n",
			sum.Scenarios, *first, *first+*seeds-1, sum.Crashed, sum.Clean)
		classes := make([]string, 0, len(sum.ByClass))
		for class := range sum.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("  %-24s %d\n", class, sum.ByClass[class])
		}
		for _, f := range sum.Failures {
			fmt.Printf("  FAIL %s\n", f)
		}
	}
	if n := len(sum.Failures); n > 0 {
		return fmt.Errorf("%d of %d scenarios violated a recovery guarantee (reproduce with: tpsim torture -seed=N)", n, sum.Scenarios)
	}
	return nil
}
