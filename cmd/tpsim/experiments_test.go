package main

import "testing"

// TestExperimentsPass runs every paper experiment; each returns nil only
// when all of its verdict checks hold, so this test pins the complete
// reproduction (the benchmark tables b1/b2/b4 are exercised too — they
// fail on any scheduler error).
func TestExperimentsPass(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		{"e1", e1}, {"e2", e2}, {"e3", e3}, {"e4", e4}, {"e5", e5},
		{"e6", e6}, {"e7", e7}, {"e8", e8}, {"e9", e9}, {"e10", e10},
		{"e11", e11}, {"e12", e12}, {"e13", e13},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBenchTablesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("bench tables are slow")
	}
	for _, c := range []struct {
		name string
		run  func() error
	}{
		{"b1", b1}, {"b2", b2}, {"b4", b4}, {"b5", b5},
	} {
		t.Run(c.name, func(t *testing.T) {
			if err := c.run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
