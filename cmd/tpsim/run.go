package main

import (
	"fmt"
	"os"

	"transproc/internal/metrics"
	"transproc/internal/scheduler"
	"transproc/internal/sim"
	"transproc/internal/spec"
)

// runSpecFile loads a declarative JSON definition and executes it under
// the requested mode (default pred), printing the schedule, a
// per-process timeline and the correctness verdicts. A non-empty
// metricsFormat ("text" or "json") attaches an observability registry
// and dumps its snapshot after the run.
func runSpecFile(path string, modeName string, metricsFormat string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fed, jobs, err := spec.Load(data)
	if err != nil {
		return err
	}
	mode, err := parseMode(modeName)
	if err != nil {
		return err
	}
	var reg *metrics.Registry
	if metricsFormat != "" {
		reg = metrics.New()
	}
	eng, err := scheduler.New(fed, scheduler.Config{Mode: mode, Metrics: reg})
	if err != nil {
		return err
	}
	res, err := eng.RunJobs(jobs)
	if err != nil {
		return err
	}
	fmt.Printf("mode: %v\n", mode)
	fmt.Println("schedule:", res.Schedule)
	fmt.Print(sim.Gantt(res, 64))
	m := res.Metrics
	fmt.Printf("makespan=%d committed=%d aborted=%d compensations=%d deferrals=%d 2pc=%d\n",
		m.Makespan, m.CommittedProcs, m.AbortedProcs, m.Compensations, m.Deferrals, m.TwoPCCommits)
	ok, at, _, err := res.Schedule.PRED()
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("prefix-reducible: true")
	} else {
		fmt.Printf("prefix-reducible: FALSE (shortest bad prefix: %d)\n", at)
	}
	srl := res.Schedule.EffectiveSerializable()
	fmt.Println("serializable (committed projection):", srl)
	if n := len(fed.InDoubt()); n > 0 {
		fmt.Printf("WARNING: %d in-doubt transactions remain\n", n)
	}
	if reg != nil {
		fmt.Println()
		return dumpSnapshot(reg, metricsFormat)
	}
	return nil
}

func parseMode(s string) (scheduler.Mode, error) {
	switch s {
	case "", "pred":
		return scheduler.PRED, nil
	case "pred-cascade":
		return scheduler.PREDCascade, nil
	case "serial":
		return scheduler.Serial, nil
	case "conservative":
		return scheduler.Conservative, nil
	case "cc-only":
		return scheduler.CCOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (pred|pred-cascade|serial|conservative|cc-only)", s)
	}
}
