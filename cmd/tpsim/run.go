package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"transproc/internal/metrics"
	"transproc/internal/runtime"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/sim"
	"transproc/internal/spec"
	"transproc/internal/wal"
)

// runSpecFile loads a declarative JSON definition and executes it under
// the requested mode (default pred), printing the schedule, a
// per-process timeline and the correctness verdicts. A non-empty
// metricsFormat ("text" or "json") attaches an observability registry
// and dumps its snapshot after the run. engine selects the execution
// engine: the sequential discrete-event scheduler (default) or the
// concurrent goroutine-per-process runtime.
func runSpecFile(path string, modeName string, metricsFormat string, engine string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fed, jobs, err := spec.Load(data)
	if err != nil {
		return err
	}
	mode, err := parseMode(modeName)
	if err != nil {
		return err
	}
	var reg *metrics.Registry
	if metricsFormat != "" {
		reg = metrics.New()
	}

	var sched *schedule.Schedule
	var m scheduler.Metrics
	if engine == "concurrent" {
		rt, err := runtime.New(fed, runtime.Config{
			Mode: mode, Metrics: reg, Tick: time.Millisecond,
			GroupCommit: wal.GroupCommit{MaxBatch: 16},
		})
		if err != nil {
			return err
		}
		res, err := rt.Run(context.Background(), jobs)
		if err != nil {
			return err
		}
		sched, m = res.Schedule, res.Metrics
		fmt.Printf("mode: %v (concurrent runtime, %v elapsed)\n", mode, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("shards: %d scheduling groups over %d conflict components\n",
			res.ShardGroups, res.ConflictShards)
		fmt.Println("schedule:", sched)
	} else {
		eng, err := scheduler.New(fed, scheduler.Config{Mode: mode, Metrics: reg})
		if err != nil {
			return err
		}
		res, err := eng.RunJobs(jobs)
		if err != nil {
			return err
		}
		sched, m = res.Schedule, res.Metrics
		fmt.Printf("mode: %v\n", mode)
		fmt.Println("schedule:", sched)
		fmt.Print(sim.Gantt(res, 64))
	}
	fmt.Printf("makespan=%d committed=%d aborted=%d compensations=%d deferrals=%d 2pc=%d\n",
		m.Makespan, m.CommittedProcs, m.AbortedProcs, m.Compensations, m.Deferrals, m.TwoPCCommits)
	ok, at, _, err := sched.PRED()
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("prefix-reducible: true")
	} else {
		fmt.Printf("prefix-reducible: FALSE (shortest bad prefix: %d)\n", at)
	}
	srl := sched.EffectiveSerializable()
	fmt.Println("serializable (committed projection):", srl)
	if n := len(fed.InDoubt()); n > 0 {
		fmt.Printf("WARNING: %d in-doubt transactions remain\n", n)
	}
	if reg != nil {
		fmt.Println()
		return dumpSnapshot(reg, metricsFormat)
	}
	return nil
}

func parseMode(s string) (scheduler.Mode, error) {
	switch s {
	case "", "pred":
		return scheduler.PRED, nil
	case "pred-cascade":
		return scheduler.PREDCascade, nil
	case "serial":
		return scheduler.Serial, nil
	case "conservative":
		return scheduler.Conservative, nil
	case "cc-only":
		return scheduler.CCOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (pred|pred-cascade|serial|conservative|cc-only)", s)
	}
}
