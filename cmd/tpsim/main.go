// Command tpsim regenerates every experiment of the reproduction: the
// paper's figures and examples (E1-E12) as checked artifacts, and the
// quantitative benchmarks (B1-B4) of the scheduler protocols.
//
// Usage:
//
//	tpsim [experiment ...]
//	tpsim -metrics[=text|json]
//	tpsim run [-metrics[=text|json]] [-runtime=concurrent] <spec.json> [mode]
//	tpsim torture [-seeds N] [-first S] [-seed K] [-ckpt N] [-compact] [-json]
//	tpsim chaos [-seeds N] [-first S] [-seed K] [-json]
//	tpsim fed [-nodes N] [-procs P] [-seed S] [-mode M] [-torture|-bench] [-json]
//	tpsim serve [-addr A] [-dir D] [-world spec.json] [-fed N] [-torture|-bench] [-json]
//	tpsim benchrec [-quick]
//
// where experiment is one of e1..e14, b1, b2, b4, b5, or "all" (default),
// and mode is pred (default), pred-cascade, serial, conservative or
// cc-only. "run" executes a declarative process definition (see
// internal/spec for the format and examples/specs for samples);
// -runtime=concurrent executes it on the goroutine-per-process runtime
// (internal/runtime) instead of the sequential discrete-event engine.
// "torture" runs the deterministic crash-torture battery (internal/fault)
// and exits non-zero when any seeded scenario violates a recovery
// guarantee; -ckpt/-compact force fuzzy checkpointing (and compaction)
// onto every scenario. "benchrec" emits the recovery-time-vs-log-length
// sweep behind BENCH_recovery.json: the same crashed run recovered over
// a full log and over a checkpointed, compacted one.
// "chaos" runs the unreliable-subsystem chaos battery
// (internal/chaos) — flaky transport, typed retries, circuit breakers,
// ◁-path failover — and exits non-zero on any resilience violation.
// "fed" partitions a workload across N scheduler nodes over localhost
// TCP (internal/federation) and verifies the stitched cross-node
// schedule; -torture runs the federation-torture battery and -bench
// the node-count throughput sweep behind BENCH_fed.json.
// "serve" runs the long-running ingestion service (internal/serve):
// an HTTP API that admits declarative processes into the concurrent
// runtime (or a federation cluster with -fed) with admission control,
// per-tenant budgets, graceful drain on SIGTERM and crash-safe restart
// over its data directory; -torture runs the serve crash battery and
// -bench the saturation load harness behind BENCH_serve.json. The
// battery subcommands (torture, chaos, fed -torture, serve -torture)
// all trap SIGINT/SIGTERM and print the seed that reproduces the
// scenario that was in flight.
//
// -metrics attaches an observability registry to the run and dumps its
// snapshot (counters, histograms, per-service latencies, WAL totals and
// the decision-trace tail) after execution; bare "tpsim -metrics" runs
// a fault-injected demo workload under the instrumented scheduler.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	name  string
	title string
	run   func() error
}

func main() {
	exps := []experiment{
		{"e1", "Figure 2/3, Example 1: process P1 and its valid executions", e1},
		{"e2", "Example 2: completion C(P1) in B-REC and F-REC", e2},
		{"e3", "Figure 4, Examples 3-4: serializable vs non-serializable execution", e3},
		{"e4", "Figures 5-6, Examples 5-6: completed schedule and reduction", e4},
		{"e5", "Figure 7, Examples 7/9: prefix-reducible execution", e5},
		{"e6", "Figure 8, Example 8: non-PRED prefix", e6},
		{"e7", "Figure 9, Example 10: quasi-commit interleaving", e7},
		{"e8", "Figure 1, Section 2: CIM scenario under CC-only vs PRED", e8},
		{"e9", "Theorem 1 property check on random schedules", e9},
		{"e10", "Lemmas 1-3 checks on scheduler executions", e10},
		{"e11", "Section 3.5: no SOT-like criterion for processes", e11},
		{"e12", "Section 3.6: weak vs strong order", e12},
		{"e13", "Resilience sweep: termination under increasing outage rate", e13},
		{"e14", "Bounded-time recovery: checkpoint + compaction vs full replay", e14},
		{"b1", "B1: scheduler comparison and conflict sweep", b1},
		{"b2", "B2/B3: deferred-commit ablation", b2},
		{"b4", "B4: crash recovery sweep", b4},
		{"b5", "B5: single-service fault-injection matrix", b5},
	}
	byName := make(map[string]experiment, len(exps))
	var names []string
	for _, e := range exps {
		byName[e.name] = e
		names = append(names, e.name)
	}
	sort.Strings(names)

	metricsFormat, args, err := extractMetricsFlag(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engine, args, err := extractRuntimeFlag(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(args) >= 1 && args[0] == "torture" {
		if err := runTorture(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "torture failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) >= 1 && args[0] == "benchrec" {
		if err := benchRecovery(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "benchrec failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) >= 1 && args[0] == "chaos" {
		if err := runChaos(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "chaos failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) >= 1 && args[0] == "fed" {
		if err := runFed(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "fed failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) >= 1 && args[0] == "serve" {
		if err := runServe(args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "serve failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) >= 2 && args[0] == "run" {
		mode := ""
		if len(args) >= 3 {
			mode = args[2]
		}
		if err := runSpecFile(args[1], mode, metricsFormat, engine); err != nil {
			fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 0 && metricsFormat != "" {
		if err := metricsDemo(metricsFormat); err != nil {
			fmt.Fprintf(os.Stderr, "metrics demo failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = make([]string, 0, len(exps))
		for _, e := range exps {
			args = append(args, e.name)
		}
	}
	failed := 0
	for _, name := range args {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (available: %s, all)\n", name, strings.Join(names, ", "))
			os.Exit(2)
		}
		fmt.Printf("\n════ %s — %s ════\n", strings.ToUpper(e.name), e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.name, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// verdict prints a ✓/✗ line and returns an error on failure.
func verdict(ok bool, format string, args ...any) error {
	mark := "✓"
	if !ok {
		mark = "✗"
	}
	fmt.Printf("  %s %s\n", mark, fmt.Sprintf(format, args...))
	if !ok {
		return fmt.Errorf("check failed: %s", fmt.Sprintf(format, args...))
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
