package main

import (
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// seedTrap installs a SIGINT/SIGTERM handler for a seeded battery run.
// The returned progress hook records the scenario currently in flight;
// on a signal the handler prints that seed and the exact command that
// reproduces it, then exits 130 — so an interrupted nightly job (or an
// impatient ^C) never loses the pointer into the battery. stop
// uninstalls the handler; call it once the battery returns normally.
func seedTrap(repro string) (progress func(seed int64, class string), stop func()) {
	var seed atomic.Int64
	seed.Store(-1)
	var class atomic.Value
	class.Store("")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			if s := seed.Load(); s >= 0 {
				fmt.Fprintf(os.Stderr, "\n%v: interrupted at seed %d (class %s); reproduce with: %s%d\n",
					sig, s, class.Load(), repro, s)
			} else {
				fmt.Fprintf(os.Stderr, "\n%v: interrupted before the first scenario\n", sig)
			}
			os.Exit(130)
		case <-done:
		}
	}()
	return func(s int64, c string) {
			class.Store(c)
			seed.Store(s)
		}, func() {
			signal.Stop(ch)
			close(done)
		}
}
