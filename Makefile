# Reproduction of "Concurrency Control and Recovery in Transactional
# Process Management" (Schuldt, Alonso, Schek — PODS 1999).

GO ?= go

.PHONY: build test test-short race diff bench fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The differential battery: >= 50 seeded workloads through both the
# sequential engine and the concurrent runtime under the race detector.
diff:
	GOMAXPROCS=4 $(GO) test -race -run 'TestDifferential' ./internal/runtime -v

# Regenerate the committed throughput baseline.
bench:
	scripts/bench-json.sh 5x > BENCH_runtime.json
	@cat BENCH_runtime.json

# Short native-fuzzing smoke (CI runs 30s per target).
fuzz-smoke:
	$(GO) test -fuzz FuzzProcessValidate -fuzztime 30s ./internal/process
	$(GO) test -fuzz FuzzScheduleReduce -fuzztime 30s ./internal/schedule

ci: build test race diff
