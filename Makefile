# Reproduction of "Concurrency Control and Recovery in Transactional
# Process Management" (Schuldt, Alonso, Schek — PODS 1999).

GO ?= go

.PHONY: build test test-short race diff torture chaos fed serve coverage-floor bench bench-recovery bench-fed bench-serve fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The differential battery: >= 50 seeded workloads through both the
# sequential engine and the concurrent runtime under the race detector.
diff:
	GOMAXPROCS=4 $(GO) test -race -run 'TestDifferential' ./internal/runtime -v

# The crash-torture battery: 200 deterministic crash/recover scenarios
# under the race detector — as seeded, with fuzzy checkpointing and
# compaction forced onto every scenario, and with file-backed durable
# subsystem stores forced onto every scenario. Reproduce one failure
# with `go test ./internal/fault -run TortureBattery -torture.seed=N
# [-torture.ckpt] [-torture.durable] -v`.
torture:
	$(GO) test -race -v ./internal/fault -run TestTortureBattery -torture.count=200
	$(GO) test -race -v ./internal/fault -run TestTortureBattery -torture.count=200 -torture.ckpt
	$(GO) test -race -v ./internal/fault -run TestTortureBattery -torture.count=200 -torture.durable
	$(GO) test -race -run TestRuntimeKillRecover ./internal/runtime
	$(GO) test -race -run TestCheckpointConcurrentWithAppends ./internal/runtime

# The chaos battery: 200 deterministic unreliable-subsystem scenarios
# (flaky transport, retries, breakers, ◁ failover) under the race
# detector. Reproduce one failure with
# `go test ./internal/chaos -run TestChaosBattery -chaos.seed=N -v`.
chaos:
	GOMAXPROCS=4 $(GO) test -race -v ./internal/chaos -run TestChaosBattery -chaos.count=200

# The federation batteries: the cross-node differential battery (60
# seeded workloads partitioned over 2–4 scheduler nodes vs the
# single-node sequential oracle) and the 200-scenario federation
# torture battery (node kills mid-2PC, partition windows during
# cross-node resolution, crash + re-join) under the race detector.
# Reproduce one failure with
# `go test ./internal/federation -run FedTortureBattery -fed.seed=N -v`.
fed:
	GOMAXPROCS=4 $(GO) test -race -run 'TestFedDifferential' -v ./internal/federation
	GOMAXPROCS=4 $(GO) test -race -v ./internal/federation -run TestFedTortureBattery -fed.count=200

# The serve crash battery: 200 deterministic ingestion-service
# scenarios (crash between WAL ack and HTTP ack, kill -9 mid-drain,
# double crashes, overload shedding, budget exhaustion) against the
# real HTTP server, under the race detector. Reproduce one failure
# with `tpsim serve -torture -seed=N`.
serve:
	GOMAXPROCS=4 $(GO) test -race -v ./internal/serve
	$(GO) run -race ./cmd/tpsim serve -torture -seeds 200

# Coverage floor for the recovery-critical packages.
coverage-floor:
	scripts/coverage-floor.sh 75

# Regenerate the committed throughput baseline.
bench:
	scripts/bench-json.sh 5x > BENCH_runtime.json
	@cat BENCH_runtime.json

# Regenerate the committed recovery-time-vs-log-length baseline.
bench-recovery:
	scripts/bench-recovery.sh > BENCH_recovery.json
	@cat BENCH_recovery.json

# Regenerate the committed federation node-count throughput sweep.
bench-fed:
	$(GO) run ./cmd/tpsim fed -bench -json > BENCH_fed.json
	@cat BENCH_fed.json

# Regenerate the committed ingestion-service saturation sweep.
bench-serve:
	$(GO) run ./cmd/tpsim serve -bench -json > BENCH_serve.json
	@cat BENCH_serve.json

# Short native-fuzzing smoke (CI runs 30s per target).
fuzz-smoke:
	$(GO) test -fuzz FuzzProcessValidate -fuzztime 30s ./internal/process
	$(GO) test -fuzz FuzzScheduleReduce -fuzztime 30s ./internal/schedule
	$(GO) test -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal
	$(GO) test -fuzz FuzzCheckpointDecode -fuzztime 30s ./internal/wal
	$(GO) test -fuzz FuzzHeapPageDecode -fuzztime 30s -run '^$$' ./internal/store
	$(GO) test -fuzz FuzzFreeSpaceMap -fuzztime 30s -run '^$$' ./internal/store
	$(GO) test -fuzz FuzzWireDecode -fuzztime 30s -run '^$$' ./internal/federation

ci: build test race diff torture chaos fed serve coverage-floor
