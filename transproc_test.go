package transproc_test

import (
	"testing"

	"transproc"
)

// TestQuickstartFlow exercises the public façade end to end: define
// subsystems and a process, run it under the PRED scheduler, check the
// schedule and the subsystem state.
func TestQuickstartFlow(t *testing.T) {
	shop := transproc.NewSubsystem("shop", 1)
	shop.MustRegister(transproc.ServiceSpec{
		Name: "reserve", Kind: transproc.Compensatable, Subsystem: "shop",
		Compensation: "reserve⁻¹", WriteSet: []string{"stock"},
	})
	shop.MustRegister(transproc.ServiceSpec{
		Name: "pay", Kind: transproc.Pivot, Subsystem: "shop", WriteSet: []string{"ledger"},
	})
	shop.MustRegister(transproc.ServiceSpec{
		Name: "notify", Kind: transproc.Retriable, Subsystem: "shop", WriteSet: []string{"outbox"},
	})
	fed := transproc.NewFederation()
	fed.MustAdd(shop)

	order := transproc.NewProcess("Order").
		Add(1, "reserve", transproc.Compensatable).
		Add(2, "pay", transproc.Pivot).
		Add(3, "notify", transproc.Retriable).
		Seq(1, 2).Seq(2, 3).
		MustBuild()

	if err := transproc.ValidateGuaranteedTermination(order); err != nil {
		t.Fatal(err)
	}
	if ok, why := transproc.IsWellFormedFlex(order); !ok {
		t.Fatalf("order is well formed: %s", why)
	}
	execs, err := transproc.Executions(order)
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) == 0 {
		t.Fatal("expected enumerable executions")
	}

	eng, err := transproc.NewEngine(fed, transproc.Config{Mode: transproc.PRED})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run([]*transproc.Process{order})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcomes["Order"].Committed {
		t.Fatal("order must commit")
	}
	ok, _, _, err := res.Schedule.PRED()
	if err != nil || !ok {
		t.Fatalf("PRED = %v, %v", ok, err)
	}
	if shop.Get("stock") != 1 || shop.Get("ledger") != 1 || shop.Get("outbox") != 1 {
		t.Fatal("effects missing")
	}
}

// TestFacadeScheduleTheory exercises the schedule-theory API via the
// façade.
func TestFacadeScheduleTheory(t *testing.T) {
	tab := transproc.NewConflictTable()
	tab.AddConflict("x", "y")
	p1 := transproc.NewProcess("P1").Add(1, "x", transproc.Compensatable).MustBuild()
	p2 := transproc.NewProcess("P2").Add(1, "y", transproc.Compensatable).MustBuild()
	s, err := transproc.NewSchedule(tab, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Invoke("P1", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Invoke("P2", 1); err != nil {
		t.Fatal(err)
	}
	if !s.Serializable() {
		t.Fatal("two events cannot form a cycle")
	}
	ok, _, _, err := s.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("both-compensatable prefix must be PRED")
	}
}

// TestFacadeWorkloadAndRecovery runs a generated workload through crash
// and recovery using only the façade (plus a WAL).
func TestFacadeWorkloadAndRecovery(t *testing.T) {
	w, err := transproc.GenerateWorkload(transproc.DefaultWorkloadProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	log := transproc.NewMemWAL()
	eng, err := transproc.NewEngine(w.Fed, transproc.Config{
		Mode: transproc.PREDCascade, Log: log, CrashAfterEvents: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]*transproc.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	if _, err := eng.RunJobs(w.Jobs); err == nil {
		t.Skip("run finished before the crash point")
	}
	report, err := transproc.Recover(w.Fed, log, defs)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Fed.InDoubt()) != 0 {
		t.Fatal("in-doubt transactions remain after recovery")
	}
	_ = report
}

// TestFacadeCompositeOrders exercises the Section-3.6 API.
func TestFacadeCompositeOrders(t *testing.T) {
	txns := []transproc.CompositeTxn{{ID: "a", Cost: 5}, {ID: "b", Cost: 5}}
	orders := []transproc.CompositeOrder{{Before: "a", After: "b"}}
	strong, weak, err := transproc.CompareOrders(txns, orders, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Makespan > strong.Makespan {
		t.Fatalf("weak (%d) must not exceed strong (%d)", weak.Makespan, strong.Makespan)
	}
}

// TestFacadeSpecAndCompose exercises the declarative definitions and
// subprocess composition through the façade.
func TestFacadeSpecAndCompose(t *testing.T) {
	doc := []byte(`{
	  "subsystems": [
	    {"name": "s", "seed": 1, "services": [
	      {"name": "c1", "kind": "compensatable", "writes": ["a"]},
	      {"name": "p1", "kind": "pivot", "writes": ["b"]},
	      {"name": "r1", "kind": "retriable", "writes": ["c"]}
	    ]}
	  ],
	  "processes": [
	    {"id": "P",
	     "activities": [{"local": 1, "service": "c1"},
	                    {"local": 2, "service": "p1"},
	                    {"local": 3, "service": "r1"}],
	     "seq": [[1, 2], [2, 3]]}
	  ]
	}`)
	fed, jobs, err := transproc.LoadSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transproc.NewEngine(fed, transproc.Config{Mode: transproc.PRED})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcomes["P"].Committed {
		t.Fatal("P must commit")
	}

	// Composition: all-compensatable stage before the loaded process's
	// definition shape.
	stage1 := transproc.NewProcess("S1").Add(1, "c1", transproc.Compensatable).MustBuild()
	stage2 := transproc.NewProcess("S2").
		Add(1, "p1", transproc.Pivot).
		Add(2, "r1", transproc.Retriable).
		Seq(1, 2).MustBuild()
	if transproc.EffectiveKind(stage1) != "c" || transproc.EffectiveKind(stage2) != "p" {
		t.Fatal("effective kinds wrong")
	}
	combined, err := transproc.Compose("Pipeline", stage1, stage2)
	if err != nil {
		t.Fatal(err)
	}
	fed2, _, err := transproc.LoadSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	eng2, _ := transproc.NewEngine(fed2, transproc.Config{Mode: transproc.PRED})
	res2, err := eng2.Run([]*transproc.Process{combined})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Outcomes["Pipeline"].Committed {
		t.Fatal("pipeline must commit")
	}
}

// TestFacadeWeakOrder runs a workload with the Section-3.6 weak order
// enabled via the façade config.
func TestFacadeWeakOrder(t *testing.T) {
	w, err := transproc.GenerateWorkload(transproc.DefaultWorkloadProfile(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transproc.NewEngine(w.Fed, transproc.Config{Mode: transproc.PRED, WeakOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, _, err := res.Schedule.PRED()
	if err != nil || !ok {
		t.Fatalf("PRED = %v, %v", ok, err)
	}
}
