package transproc_test

import (
	"fmt"

	"transproc"
)

// Example demonstrates the minimal end-to-end flow: a subsystem, a
// process with guaranteed termination, the PRED scheduler, and the
// prefix-reducibility check on the observed schedule.
func Example() {
	shop := transproc.NewSubsystem("shop", 1)
	shop.MustRegister(transproc.ServiceSpec{
		Name: "reserve", Kind: transproc.Compensatable, Subsystem: "shop",
		Compensation: "reserve⁻¹", WriteSet: []string{"stock"},
	})
	shop.MustRegister(transproc.ServiceSpec{
		Name: "pay", Kind: transproc.Pivot, Subsystem: "shop", WriteSet: []string{"ledger"},
	})
	shop.MustRegister(transproc.ServiceSpec{
		Name: "notify", Kind: transproc.Retriable, Subsystem: "shop", WriteSet: []string{"outbox"},
	})
	fed := transproc.NewFederation()
	fed.MustAdd(shop)

	order := transproc.NewProcess("Order").
		Add(1, "reserve", transproc.Compensatable).
		Add(2, "pay", transproc.Pivot).
		Add(3, "notify", transproc.Retriable).
		Seq(1, 2).Seq(2, 3).
		MustBuild()

	eng, _ := transproc.NewEngine(fed, transproc.Config{Mode: transproc.PRED})
	res, _ := eng.Run([]*transproc.Process{order})
	ok, _, _, _ := res.Schedule.PRED()
	fmt.Println(res.Schedule)
	fmt.Println("prefix-reducible:", ok)
	// Output:
	// ⟨a_{Order_1}^c a_{Order_2}^p a_{Order_3}^r C_Order⟩
	// prefix-reducible: true
}

// ExampleExecutions enumerates every terminal execution of a process
// under all failure scenarios — the paper's Figure 3 for a simple
// reserve/pay/notify pipeline.
func ExampleExecutions() {
	order := transproc.NewProcess("O").
		Add(1, "reserve", transproc.Compensatable).
		Add(2, "pay", transproc.Pivot).
		Add(3, "notify", transproc.Retriable).
		Seq(1, 2).Seq(2, 3).
		MustBuild()
	execs, _ := transproc.Executions(order)
	for _, e := range execs {
		fmt.Println(e)
	}
	// Output:
	// ⟨a1 a2 a3⟩C
	// ⟨a1 a2✗ a1⁻¹⟩A
	// ⟨a1✗⟩A
}

// ExampleValidateGuaranteedTermination shows the validator rejecting a
// process whose pivot is followed by a compensatable activity without
// an alternative — such a failure could be recovered neither backward
// nor forward.
func ExampleValidateGuaranteedTermination() {
	bad := transproc.NewProcess("Bad").
		Add(1, "pay", transproc.Pivot).
		Add(2, "reserve", transproc.Compensatable).
		Seq(1, 2).
		MustBuild()
	err := transproc.ValidateGuaranteedTermination(bad)
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExampleNewSchedule checks the paper's Example 3: a cyclic conflict
// pattern between two processes is not serializable.
func ExampleNewSchedule() {
	tab := transproc.NewConflictTable()
	tab.AddConflict("a", "b")
	tab.AddConflict("c", "d")
	p1 := transproc.NewProcess("P1").
		Add(1, "a", transproc.Compensatable).
		Add(2, "d", transproc.Compensatable).
		Seq(1, 2).MustBuild()
	p2 := transproc.NewProcess("P2").
		Add(1, "b", transproc.Compensatable).
		Add(2, "c", transproc.Compensatable).
		Seq(1, 2).MustBuild()
	s, _ := transproc.NewSchedule(tab, p1, p2)
	s.Invoke("P1", 1) // a
	s.Invoke("P2", 1) // b: edge P1 → P2
	s.Invoke("P2", 2) // c
	s.Invoke("P1", 2) // d: edge P2 → P1 — cycle
	fmt.Println("serializable:", s.Serializable())
	// Output:
	// serializable: false
}

// ExampleCompose builds a pipeline from two subprocesses (the paper's
// future-work extension).
func ExampleCompose() {
	booking := transproc.NewProcess("Book").
		Add(1, "reserve", transproc.Compensatable).
		MustBuild()
	payment := transproc.NewProcess("Pay").
		Add(1, "charge", transproc.Pivot).
		Add(2, "receipt", transproc.Retriable).
		Seq(1, 2).MustBuild()
	p, err := transproc.Compose("Trip", booking, payment)
	fmt.Println(err, p.Len(), transproc.EffectiveKind(p))
	// Output:
	// <nil> 3 p
}
