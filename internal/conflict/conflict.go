// Package conflict implements the commutativity-based conflict relation of
// Definition 6 of the paper, with the perfect-commutativity assumption of
// Section 3.2: if two activities conflict, then so do all combinations of
// the activities and their compensating activities; if they commute, all
// combinations commute.
//
// The formal definition of commutativity quantifies over return values in
// all contexts, which is not decidable from the outside; as in the WISE
// system, the relation is therefore *declared*: either directly via
// AddConflict, or derived from declared read/write sets of services.
package conflict

import (
	"fmt"
	"sort"
	"sync"

	"transproc/internal/activity"
)

// Table is a symmetric conflict relation over services. Conflicts are
// stored on *base* service names: a compensating activity a⁻¹ is mapped to
// its base activity a before lookup, which realizes perfect commutativity
// by construction. Table is safe for concurrent use.
type Table struct {
	mu sync.RWMutex
	// base resolves a service name to its base name (identity for
	// non-compensation services).
	base map[string]string
	// pairs holds unordered conflicting base-name pairs, keyed as
	// canonical "a\x00b" with a <= b.
	pairs map[[2]string]bool
	// selfConflict marks base services that conflict with themselves
	// (two invocations of the same service by different processes).
	selfConflict map[string]bool
}

// NewTable returns an empty conflict table.
func NewTable() *Table {
	return &Table{
		base:         make(map[string]string),
		pairs:        make(map[[2]string]bool),
		selfConflict: make(map[string]bool),
	}
}

// FromRegistry returns a table whose base-name mapping is initialized from
// the registry (compensations map to their compensatable owners) and whose
// conflicts are derived from declared read/write sets: two distinct
// services conflict if one writes a data item the other reads or writes.
// A service conflicts with itself if it writes any item.
func FromRegistry(reg *activity.Registry) *Table {
	t := NewTable()
	names := reg.Names()
	sort.Strings(names)
	for _, n := range names {
		t.base[n] = reg.BaseOf(n)
	}
	type rw struct {
		r, w map[string]bool
	}
	sets := make(map[string]rw, len(names))
	for _, n := range names {
		spec, _ := reg.Lookup(n)
		if t.base[n] != n {
			continue // compensations inherit the base's sets
		}
		e := rw{r: make(map[string]bool), w: make(map[string]bool)}
		for _, item := range spec.ReadSet {
			e.r[item] = true
		}
		for _, item := range spec.WriteSet {
			e.w[item] = true
		}
		sets[n] = e
	}
	bases := make([]string, 0, len(sets))
	for b := range sets {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for i, a := range bases {
		if spec, _ := reg.Lookup(a); len(sets[a].w) > 0 && (spec == nil || !spec.Commutative) {
			t.selfConflict[a] = true
		}
		for _, b := range bases[i+1:] {
			if rwConflict(sets[a].r, sets[a].w, sets[b].r, sets[b].w) {
				t.addPairLocked(a, b)
			}
		}
	}
	return t
}

func rwConflict(ra, wa, rb, wb map[string]bool) bool {
	for item := range wa {
		if rb[item] || wb[item] {
			return true
		}
	}
	for item := range wb {
		if ra[item] {
			return true
		}
	}
	return false
}

// MapBase declares that service name has the given base name. It is used
// to teach the table about compensating services created outside a
// registry. Mapping a name to itself is allowed and is the default.
func (t *Table) MapBase(name, base string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.base[name] = base
}

// AddConflict declares that services a and b do not commute. Adding a
// conflict between a service and itself marks it self-conflicting. The
// names are resolved to base names first, so declaring a conflict with a
// compensating activity is equivalent to declaring it with its base.
func (t *Table) AddConflict(a, b string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, b = t.resolveLocked(a), t.resolveLocked(b)
	if a == b {
		t.selfConflict[a] = true
		return
	}
	t.addPairLocked(a, b)
}

func (t *Table) addPairLocked(a, b string) {
	if a > b {
		a, b = b, a
	}
	t.pairs[[2]string{a, b}] = true
}

func (t *Table) resolveLocked(name string) string {
	if b, ok := t.base[name]; ok && b != "" {
		return b
	}
	return name
}

// Base returns the base name the table uses for a service.
func (t *Table) Base(name string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.resolveLocked(name)
}

// Conflicts reports whether the two services do not commute. By perfect
// commutativity the answer is invariant under replacing either argument
// with its compensating activity.
func (t *Table) Conflicts(a, b string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, b = t.resolveLocked(a), t.resolveLocked(b)
	if a == b {
		return t.selfConflict[a]
	}
	if a > b {
		a, b = b, a
	}
	return t.pairs[[2]string{a, b}]
}

// Commute is the complement of Conflicts (Definition 6).
func (t *Table) Commute(a, b string) bool { return !t.Conflicts(a, b) }

// ConflictingWith returns the sorted base names of all services in
// universe that conflict with the given service.
func (t *Table) ConflictingWith(name string, universe []string) []string {
	var out []string
	for _, u := range universe {
		if t.Conflicts(name, u) {
			out = append(out, t.Base(u))
		}
	}
	sort.Strings(out)
	return dedupSorted(out)
}

// Pairs returns the declared conflicting base pairs in canonical sorted
// order, including self-conflicts as (a, a). It is intended for display
// and testing.
func (t *Table) Pairs() [][2]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][2]string, 0, len(t.pairs)+len(t.selfConflict))
	for p := range t.pairs {
		out = append(out, p)
	}
	for s := range t.selfConflict {
		out = append(out, [2]string{s, s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns an independent copy of the table.
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := NewTable()
	for k, v := range t.base {
		c.base[k] = v
	}
	for k, v := range t.pairs {
		c.pairs[k] = v
	}
	for k, v := range t.selfConflict {
		c.selfConflict[k] = v
	}
	return c
}

// String renders the conflict pairs, e.g. "{a~b, c~c}".
func (t *Table) String() string {
	pairs := t.Pairs()
	s := "{"
	for i, p := range pairs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s~%s", p[0], p[1])
	}
	return s + "}"
}

func dedupSorted(in []string) []string {
	if len(in) == 0 {
		return in
	}
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
