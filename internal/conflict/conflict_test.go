package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"transproc/internal/activity"
)

func TestAddConflictSymmetric(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.AddConflict("a", "b")
	if !tab.Conflicts("a", "b") || !tab.Conflicts("b", "a") {
		t.Fatal("conflict relation must be symmetric")
	}
	if tab.Conflicts("a", "c") {
		t.Fatal("undeclared pair must commute")
	}
	if !tab.Commute("a", "c") {
		t.Fatal("Commute must be the complement of Conflicts")
	}
}

func TestSelfConflict(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	if tab.Conflicts("w", "w") {
		t.Fatal("services commute with themselves by default")
	}
	tab.AddConflict("w", "w")
	if !tab.Conflicts("w", "w") {
		t.Fatal("declared self-conflict not honoured")
	}
}

func TestPerfectCommutativityViaBase(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.MapBase("a⁻¹", "a")
	tab.MapBase("b⁻¹", "b")
	tab.AddConflict("a", "b")
	// Section 3.2: if a and b conflict, then all combinations with the
	// compensating activities conflict too.
	combos := [][2]string{
		{"a", "b"}, {"a⁻¹", "b"}, {"a", "b⁻¹"}, {"a⁻¹", "b⁻¹"},
	}
	for _, c := range combos {
		if !tab.Conflicts(c[0], c[1]) {
			t.Errorf("perfect commutativity violated: %s vs %s should conflict", c[0], c[1])
		}
	}
}

func TestPerfectCommutativityCommutingSide(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.MapBase("a⁻¹", "a")
	tab.MapBase("c⁻¹", "c")
	tab.AddConflict("a", "b")
	for _, pair := range [][2]string{{"a", "c"}, {"a⁻¹", "c"}, {"a", "c⁻¹"}, {"a⁻¹", "c⁻¹"}} {
		if tab.Conflicts(pair[0], pair[1]) {
			t.Errorf("commuting pair %v reported as conflicting", pair)
		}
	}
}

func TestAddConflictOnInverseName(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.MapBase("a⁻¹", "a")
	tab.AddConflict("a⁻¹", "b") // declared on the inverse
	if !tab.Conflicts("a", "b") {
		t.Fatal("conflict declared via inverse must reach the base")
	}
}

func TestBase(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.MapBase("undo", "do")
	if tab.Base("undo") != "do" || tab.Base("do") != "do" || tab.Base("x") != "x" {
		t.Fatal("Base resolution wrong")
	}
}

func TestConflictingWith(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.AddConflict("a", "b")
	tab.AddConflict("a", "c")
	got := tab.ConflictingWith("a", []string{"b", "c", "d", "b"})
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("ConflictingWith = %v, want [b c]", got)
	}
}

func TestPairsAndString(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.AddConflict("b", "a")
	tab.AddConflict("c", "c")
	pairs := tab.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("Pairs = %v", pairs)
	}
	if pairs[0] != [2]string{"a", "b"} || pairs[1] != [2]string{"c", "c"} {
		t.Fatalf("Pairs order = %v", pairs)
	}
	if got := tab.String(); got != "{a~b, c~c}" {
		t.Fatalf("String = %q", got)
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.MapBase("u", "a")
	tab.AddConflict("a", "b")
	cp := tab.Clone()
	cp.AddConflict("x", "y")
	if tab.Conflicts("x", "y") {
		t.Fatal("clone is not independent")
	}
	if !cp.Conflicts("u", "b") {
		t.Fatal("clone lost base mapping")
	}
}

func TestFromRegistryDerivedConflicts(t *testing.T) {
	t.Parallel()
	reg := activity.NewRegistry()
	reg.MustRegister(activity.Spec{
		Name: "writeX", Kind: activity.Compensatable, Subsystem: "s",
		Compensation: "unwriteX", WriteSet: []string{"x"},
	})
	reg.MustRegister(activity.Spec{Name: "unwriteX", Kind: activity.Compensation, Subsystem: "s"})
	reg.MustRegister(activity.Spec{Name: "readX", Kind: activity.Retriable, Subsystem: "s", ReadSet: []string{"x"}})
	reg.MustRegister(activity.Spec{Name: "readY", Kind: activity.Retriable, Subsystem: "s", ReadSet: []string{"y"}})
	reg.MustRegister(activity.Spec{Name: "writeY", Kind: activity.Pivot, Subsystem: "s", WriteSet: []string{"y"}})

	tab := FromRegistry(reg)
	if !tab.Conflicts("writeX", "readX") {
		t.Error("write/read on same item must conflict")
	}
	if tab.Conflicts("writeX", "readY") {
		t.Error("disjoint items must commute")
	}
	if !tab.Conflicts("writeY", "readY") {
		t.Error("writeY/readY must conflict")
	}
	if !tab.Conflicts("readX", "unwriteX") {
		t.Error("perfect commutativity: the compensation of writeX conflicts with readX")
	}
	if tab.Conflicts("readX", "readX") {
		t.Error("pure readers must not self-conflict")
	}
	if !tab.Conflicts("writeX", "writeX") {
		t.Error("writers self-conflict")
	}
}

func TestFromRegistryReadersCommute(t *testing.T) {
	t.Parallel()
	reg := activity.NewRegistry()
	reg.MustRegister(activity.Spec{Name: "r1", Kind: activity.Retriable, Subsystem: "s", ReadSet: []string{"x"}})
	reg.MustRegister(activity.Spec{Name: "r2", Kind: activity.Retriable, Subsystem: "s", ReadSet: []string{"x"}})
	tab := FromRegistry(reg)
	if tab.Conflicts("r1", "r2") {
		t.Fatal("two readers of the same item commute")
	}
}

// Property: Conflicts is symmetric and invariant under base substitution
// for random tables.
func TestConflictProperties(t *testing.T) {
	t.Parallel()
	names := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable()
		for _, n := range names {
			tab.MapBase(n+"⁻¹", n)
		}
		for i := 0; i < 5; i++ {
			x := names[rng.Intn(len(names))]
			y := names[rng.Intn(len(names))]
			tab.AddConflict(x, y)
		}
		for _, x := range names {
			for _, y := range names {
				if tab.Conflicts(x, y) != tab.Conflicts(y, x) {
					return false
				}
				if tab.Conflicts(x, y) != tab.Conflicts(x+"⁻¹", y+"⁻¹") {
					return false
				}
				if tab.Conflicts(x, y) != tab.Conflicts(x+"⁻¹", y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCommutativeServicesDoNotSelfConflict(t *testing.T) {
	t.Parallel()
	reg := activity.NewRegistry()
	reg.MustRegister(activity.Spec{
		Name: "incr", Kind: activity.Retriable, Subsystem: "s",
		WriteSet: []string{"counter"}, Commutative: true,
	})
	reg.MustRegister(activity.Spec{
		Name: "set", Kind: activity.Retriable, Subsystem: "s",
		WriteSet: []string{"counter"},
	})
	tab := FromRegistry(reg)
	if tab.Conflicts("incr", "incr") {
		t.Fatal("commutative writers must not self-conflict (increments commute)")
	}
	if !tab.Conflicts("set", "set") {
		t.Fatal("non-commutative writers self-conflict")
	}
	if !tab.Conflicts("incr", "set") {
		t.Fatal("distinct services on the same item still conflict")
	}
}
