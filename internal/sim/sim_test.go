package sim

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

func testProfile() workload.Profile {
	p := workload.DefaultProfile(5)
	p.Processes = 8
	p.ConflictProb = 0.4
	p.PermFailureProb = 0.08
	return p
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"demo", "long-column", "333"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestCompareSchedulers(t *testing.T) {
	tab, err := CompareSchedulers(testProfile(), AllModes())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(AllModes()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Headline result: PRED-family modes must never report PRED=false,
	// and serial must be the slowest or tied.
	makespan := map[string]int{}
	for _, r := range tab.Rows {
		makespan[r[0]], _ = strconv.Atoi(r[1])
		if r[0] == "pred" || r[0] == "pred-cascade" || r[0] == "serial" || r[0] == "conservative" {
			if r[len(r)-1] != "true" {
				t.Fatalf("mode %s reported PRED=%s", r[0], r[len(r)-1])
			}
		}
	}
	if makespan["pred"] > makespan["serial"] {
		t.Fatalf("pred (%d) slower than serial (%d)", makespan["pred"], makespan["serial"])
	}
}

func TestConflictSweep(t *testing.T) {
	tab, err := ConflictSweep(testProfile(), []float64{0.1, 0.6}, []scheduler.Mode{scheduler.Serial, scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Rows[0]) != 3 {
		t.Fatalf("table shape wrong: %+v", tab.Rows)
	}
}

func TestFailureSweep(t *testing.T) {
	tab, err := FailureSweep(testProfile(), []float64{0.0, 0.2}, []scheduler.Mode{scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// With zero failures there are no compensations.
	if tab.Rows[0][2] != "0" {
		t.Fatalf("compensations at failure 0 = %s", tab.Rows[0][2])
	}
}

func TestQuasiCommitAblation(t *testing.T) {
	tab, err := QuasiCommitAblation(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestWeakOrderSweep(t *testing.T) {
	tab, err := WeakOrderSweep([]int{2, 8}, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Longer chains gain more from the weak order.
	if !strings.HasSuffix(tab.Rows[1][3], "x") {
		t.Fatalf("speedup cell = %q", tab.Rows[1][3])
	}
}

func TestCrashRecoverySweep(t *testing.T) {
	tab, err := CrashRecoverySweep(testProfile(), []int{3, 10, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// All crash rows must end with zero in-doubt transactions.
	for _, r := range tab.Rows {
		if r[len(r)-1] != "0" {
			t.Fatalf("in-doubt transactions remain: %v", r)
		}
	}
}

func TestRunModeError(t *testing.T) {
	bad := testProfile()
	bad.Processes = 0
	if _, err := RunMode(bad, scheduler.Config{Mode: scheduler.PRED}); err == nil {
		t.Fatal("invalid profile must error")
	}
}

func TestGantt(t *testing.T) {
	res, err := RunMode(testProfile(), scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(res, 40)
	if !strings.Contains(out, "W1") || !strings.Contains(out, "=") {
		t.Fatalf("gantt output:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < len(res.Outcomes) {
		t.Fatalf("expected one row per process, got %d lines", lines)
	}
	// Degenerate width falls back.
	if out2 := Gantt(res, 1); !strings.Contains(out2, "|") {
		t.Fatal("fallback width broken")
	}
}

func TestFaultMatrix(t *testing.T) {
	p := testProfile()
	p.Processes = 6
	p.PermFailureProb = 0
	p.Subsystems = 2
	p.ServicesPerSubsystem = 2
	tab, err := FaultMatrix(p, scheduler.PREDCascade)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 2 subsystems × 2 services × (comp+pivot)
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[5] != "true" {
			t.Fatalf("fault on %s broke PRED", r[0])
		}
		if r[6] != "true" {
			t.Fatalf("fault on %s left inconsistent state", r[0])
		}
	}
}
