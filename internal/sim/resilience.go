package sim

import (
	"fmt"

	"transproc/internal/chaos"
	"transproc/internal/metrics"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// ResilienceSweep runs the same workload through the chaos layer at
// increasing transport-outage rates (experiment E13): every invocation
// independently fails to reach its subsystem with probability rate (a
// quarter of those as ambiguous timeouts), and the typed retry policy,
// circuit breakers and ◁-path recovery must keep every process
// terminating. The table reports the throughput cost of unreliability
// and the resilience work spent: transport retries, lost replies
// recovered through the idempotency table, breaker trips, fast-failed
// calls and exhausted per-process retry budgets.
func ResilienceSweep(p workload.Profile, rates []float64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E13 resilience sweep (procs=%d, conflict=%.2f, seed=%d, mode pred-cascade)",
			p.Processes, p.ConflictProb, p.Seed),
		Columns: []string{"outageRate", "makespan", "throughput", "committed", "aborted",
			"terminated", "retries", "recovered", "breakerTrips", "fastFails", "budgetStops"},
	}
	for _, rate := range rates {
		w, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		reg := metrics.New()
		plan := chaos.Plan{Seed: p.Seed, PTransient: rate * 0.75, PTimeout: rate * 0.25}
		layer := chaos.NewLayer(w.Fed, plan, chaos.RetryPolicy{}, chaos.BreakerConfig{}, reg)
		eng, err := scheduler.New(w.Fed, scheduler.Config{
			Mode: scheduler.PREDCascade, Metrics: reg, Resilience: layer,
		})
		if err != nil {
			return nil, err
		}
		res, err := eng.RunJobs(w.Jobs)
		if err != nil {
			return nil, fmt.Errorf("sim: resilience rate %.2f: %w", rate, err)
		}
		terminated := 0
		for _, o := range res.Outcomes {
			if o.Committed || o.Aborted {
				terminated++
			}
		}
		m := res.Metrics
		ls := layer.Stats()
		bt := layer.Breakers().Transitions()
		t.AddRow(fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%d", m.Makespan),
			fmt.Sprintf("%.2f", m.Throughput()),
			fmt.Sprintf("%d", m.CommittedProcs),
			fmt.Sprintf("%d", m.AbortedProcs),
			fmt.Sprintf("%d/%d", terminated, len(res.Outcomes)),
			fmt.Sprintf("%d", ls.Retries),
			fmt.Sprintf("%d", ls.RepliesRecovered),
			fmt.Sprintf("%d", bt.Opened+bt.Reopens),
			fmt.Sprintf("%d", ls.FastFails),
			fmt.Sprintf("%d", ls.BudgetExhausted))
	}
	return t, nil
}
