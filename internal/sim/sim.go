// Package sim is the experiment harness: it runs scheduler comparisons,
// parameter sweeps and ablations over generated workloads and renders
// the resulting tables. The benchmark harness (bench_test.go) and the
// tpsim command both drive their experiments through this package so
// that reported numbers come from one code path.
package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"transproc/internal/composite"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	var head strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&head, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(head.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(head.String(), " "))))
	for _, r := range t.Rows {
		var line strings.Builder
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&line, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
}

// AllModes lists the scheduler modes in comparison order.
func AllModes() []scheduler.Mode {
	return []scheduler.Mode{
		scheduler.Serial, scheduler.Conservative, scheduler.CCOnly,
		scheduler.PRED, scheduler.PREDCascade,
	}
}

// RunMode regenerates the workload of the profile and executes it under
// the given configuration.
func RunMode(p workload.Profile, cfg scheduler.Config) (*scheduler.Result, error) {
	w, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	eng, err := scheduler.New(w.Fed, cfg)
	if err != nil {
		return nil, err
	}
	return eng.RunJobs(w.Jobs)
}

// CompareSchedulers runs the same workload under every mode (experiment
// B1): who wins on makespan/throughput, at what cost in compensations,
// deferrals, cascades and restarts. Each run carries its own metrics
// registry; the derived columns report the deferred-commit rate (share
// of successful activity commits that went through Lemma-1 deferral),
// the compensation rate (compensations per terminated process) and the
// mean time a finished process spent blocked on its deferred 2PC commit.
func CompareSchedulers(p workload.Profile, modes []scheduler.Mode) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("B1 scheduler comparison (procs=%d, conflict=%.2f, permFail=%.2f, seed=%d)",
			p.Processes, p.ConflictProb, p.PermFailureProb, p.Seed),
		Columns: []string{"mode", "makespan", "throughput", "committed", "aborted",
			"compens", "defer", "deferRate", "compRate", "meanBlocked",
			"2pc", "cascades", "restarts", "retries", "policyWaits", "lockWaits", "PRED"},
	}
	for _, mode := range modes {
		reg := metrics.New()
		res, err := RunMode(p, scheduler.Config{Mode: mode, Metrics: reg})
		if err != nil {
			return nil, fmt.Errorf("sim: mode %v: %w", mode, err)
		}
		m := res.Metrics
		deferRate := 0.0
		if commits := reg.Counter(metrics.CommitsImmediate) + reg.Counter(metrics.CommitsDeferred); commits > 0 {
			deferRate = float64(reg.Counter(metrics.CommitsDeferred)) / float64(commits)
		}
		compRate := 0.0
		if done := m.CommittedProcs + m.AbortedProcs; done > 0 {
			compRate = float64(reg.Counter(metrics.CompensationsIssued)) / float64(done)
		}
		meanBlocked := reg.Hist(metrics.HistProcBlocked).Mean
		pred := "-"
		if mode != scheduler.CCOnly {
			ok, _, _, err := res.Schedule.PRED()
			if err != nil {
				return nil, err
			}
			pred = fmt.Sprintf("%v", ok)
		} else {
			ok, _, _, err := res.Schedule.PRED()
			if err == nil {
				pred = fmt.Sprintf("%v", ok)
			}
		}
		t.AddRow(mode.String(),
			fmt.Sprintf("%d", m.Makespan),
			fmt.Sprintf("%.2f", m.Throughput()),
			fmt.Sprintf("%d", m.CommittedProcs),
			fmt.Sprintf("%d", m.AbortedProcs),
			fmt.Sprintf("%d", m.Compensations),
			fmt.Sprintf("%d", m.Deferrals),
			fmt.Sprintf("%.2f", deferRate),
			fmt.Sprintf("%.2f", compRate),
			fmt.Sprintf("%.1f", meanBlocked),
			fmt.Sprintf("%d", m.TwoPCCommits),
			fmt.Sprintf("%d", m.Cascades),
			fmt.Sprintf("%d", m.Restarts),
			fmt.Sprintf("%d", reg.Counter(metrics.TransportRetries)),
			fmt.Sprintf("%d", m.PolicyWaits),
			fmt.Sprintf("%d", m.LockWaits),
			pred)
	}
	return t, nil
}

// ConflictSweep sweeps the conflict probability for each mode and
// reports makespan (experiment B1's x-axis: where do the protocols
// cross over as contention rises).
func ConflictSweep(p workload.Profile, conflicts []float64, modes []scheduler.Mode) (*Table, error) {
	cols := []string{"conflictProb"}
	for _, m := range modes {
		cols = append(cols, m.String())
	}
	t := &Table{
		Title:   fmt.Sprintf("B1 makespan vs conflict rate (procs=%d, permFail=%.2f, seed=%d)", p.Processes, p.PermFailureProb, p.Seed),
		Columns: cols,
	}
	for _, c := range conflicts {
		row := []string{fmt.Sprintf("%.2f", c)}
		for _, mode := range modes {
			pc := p
			pc.ConflictProb = c
			res, err := RunMode(pc, scheduler.Config{Mode: mode})
			if err != nil {
				return nil, fmt.Errorf("sim: conflict %.2f mode %v: %w", c, mode, err)
			}
			row = append(row, fmt.Sprintf("%d", res.Metrics.Makespan))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FailureSweep sweeps the permanent-failure probability and reports how
// many processes each mode still commits plus the recovery work spent.
func FailureSweep(p workload.Profile, failures []float64, modes []scheduler.Mode) (*Table, error) {
	cols := []string{"permFail"}
	for _, m := range modes {
		cols = append(cols, m.String()+":ok", m.String()+":comp")
	}
	t := &Table{
		Title:   fmt.Sprintf("B1 commits & compensations vs failure rate (procs=%d, conflict=%.2f)", p.Processes, p.ConflictProb),
		Columns: cols,
	}
	for _, f := range failures {
		row := []string{fmt.Sprintf("%.2f", f)}
		for _, mode := range modes {
			pf := p
			pf.PermFailureProb = f
			res, err := RunMode(pf, scheduler.Config{Mode: mode})
			if err != nil {
				return nil, fmt.Errorf("sim: failure %.2f mode %v: %w", f, mode, err)
			}
			row = append(row,
				fmt.Sprintf("%d", res.Metrics.CommittedProcs),
				fmt.Sprintf("%d", res.Metrics.Compensations))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// QuasiCommitAblation compares the PRED scheduler with and without the
// deferred-commit execution of non-compensatable activities
// (experiments B2/B3): BlockPivots makes pivots wait instead of
// executing into the prepared state.
func QuasiCommitAblation(p workload.Profile) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("B2/B3 deferred-commit ablation (procs=%d, conflict=%.2f, seed=%d)", p.Processes, p.ConflictProb, p.Seed),
		Columns: []string{"variant", "makespan", "throughput", "deferrals", "2pc", "policyWaits"},
	}
	for _, v := range []struct {
		name string
		cfg  scheduler.Config
	}{
		{"pred (defer via 2PC)", scheduler.Config{Mode: scheduler.PRED}},
		{"pred (block pivots)", scheduler.Config{Mode: scheduler.PRED, BlockPivots: true}},
		{"pred-cascade (defer)", scheduler.Config{Mode: scheduler.PREDCascade}},
		{"pred-cascade (block)", scheduler.Config{Mode: scheduler.PREDCascade, BlockPivots: true}},
	} {
		res, err := RunMode(p, v.cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", v.name, err)
		}
		m := res.Metrics
		t.AddRow(v.name,
			fmt.Sprintf("%d", m.Makespan),
			fmt.Sprintf("%.2f", m.Throughput()),
			fmt.Sprintf("%d", m.Deferrals),
			fmt.Sprintf("%d", m.TwoPCCommits),
			fmt.Sprintf("%d", m.PolicyWaits))
	}
	return t, nil
}

// WeakOrderEngineAblation runs the same workload with and without the
// engine-level weak order (Section 3.6 integrated into the scheduler):
// conflicting local transactions overlap inside subsystems; commit-order
// serializability and the restart cascade handle correctness.
func WeakOrderEngineAblation(p workload.Profile) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("E12b engine weak-order ablation (procs=%d, conflict=%.2f, seed=%d)", p.Processes, p.ConflictProb, p.Seed),
		Columns: []string{"variant", "makespan", "throughput", "lockWaits", "weakDeps", "orderWaits", "weakRestarts"},
	}
	for _, v := range []struct {
		name string
		cfg  scheduler.Config
	}{
		{"pred strong order", scheduler.Config{Mode: scheduler.PRED}},
		{"pred weak order", scheduler.Config{Mode: scheduler.PRED, WeakOrder: true}},
		{"pred-cascade strong", scheduler.Config{Mode: scheduler.PREDCascade}},
		{"pred-cascade weak", scheduler.Config{Mode: scheduler.PREDCascade, WeakOrder: true}},
	} {
		res, err := RunMode(p, v.cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", v.name, err)
		}
		m := res.Metrics
		t.AddRow(v.name,
			fmt.Sprintf("%d", m.Makespan),
			fmt.Sprintf("%.2f", m.Throughput()),
			fmt.Sprintf("%d", m.LockWaits),
			fmt.Sprintf("%d", m.WeakDeps),
			fmt.Sprintf("%d", m.WeakOrderWaits),
			fmt.Sprintf("%d", m.WeakRestarts))
	}
	return t, nil
}

// WeakOrderSweep compares strong vs weak order inside a subsystem
// (experiment E12, Section 3.6) across chain lengths of conflicting
// transactions.
func WeakOrderSweep(lengths []int, cost int64, abortProb float64, seed int64) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("E12 weak vs strong order (cost=%d, abortProb=%.2f)", cost, abortProb),
		Columns: []string{"chainLen", "strong", "weak", "speedup", "weakAborts", "cascadeRestarts"},
	}
	for _, n := range lengths {
		txns := make([]composite.Txn, n)
		var orders []composite.Order
		for i := range txns {
			txns[i] = composite.Txn{ID: fmt.Sprintf("t%03d", i), Cost: cost, AbortProb: abortProb, MaxAborts: 2}
			if i > 0 {
				orders = append(orders, composite.Order{
					Before: fmt.Sprintf("t%03d", i-1), After: fmt.Sprintf("t%03d", i),
				})
			}
		}
		strong, weak, err := composite.Compare(txns, orders, 0, seed)
		if err != nil {
			return nil, err
		}
		speedup := float64(strong.Makespan) / float64(weak.Makespan)
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", strong.Makespan),
			fmt.Sprintf("%d", weak.Makespan),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d", weak.Aborts),
			fmt.Sprintf("%d", weak.CascadeRestarts))
	}
	return t, nil
}

// FaultMatrix force-fails every compensatable and pivot service of a
// generated workload, one at a time, and reports the outcome of each
// run: how many processes committed/aborted, how many compensations
// ran, and whether the schedule stayed prefix-reducible and the
// subsystem state consistent (no in-doubt transactions, no negative
// items). It is a systematic fault-injection campaign over the failure
// surface.
func FaultMatrix(p workload.Profile, mode scheduler.Mode) (*Table, error) {
	base, err := workload.Generate(p)
	if err != nil {
		return nil, err
	}
	services := append(append([]string(nil), base.Pool.Compensatable...), base.Pool.Pivot...)
	t := &Table{
		Title:   fmt.Sprintf("fault matrix (%v, procs=%d, conflict=%.2f, seed=%d)", mode, p.Processes, p.ConflictProb, p.Seed),
		Columns: []string{"failedService", "committed", "aborted", "compens", "restarts", "PRED", "consistent"},
	}
	for _, svc := range services {
		w, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		if sub, ok := w.Fed.Owner(svc); ok {
			sub.ForceFail(svc, 1)
		}
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: mode})
		if err != nil {
			return nil, err
		}
		res, err := eng.RunJobs(w.Jobs)
		if err != nil {
			return nil, fmt.Errorf("sim: fault matrix %s: %w", svc, err)
		}
		ok, _, _, err := res.Schedule.PRED()
		if err != nil {
			return nil, err
		}
		consistent := len(w.Fed.InDoubt()) == 0
		for _, v := range w.Fed.Snapshot() {
			if v < 0 {
				consistent = false
			}
		}
		m := res.Metrics
		t.AddRow(svc,
			fmt.Sprintf("%d", m.CommittedProcs),
			fmt.Sprintf("%d", m.AbortedProcs),
			fmt.Sprintf("%d", m.Compensations),
			fmt.Sprintf("%d", m.Restarts),
			fmt.Sprintf("%v", ok),
			fmt.Sprintf("%v", consistent))
	}
	return t, nil
}

// Gantt renders a per-process timeline of a run over virtual time: one
// row per process with its active interval, outcome and restart count.
func Gantt(res *scheduler.Result, width int) string {
	if width < 20 {
		width = 60
	}
	span := res.Metrics.Makespan
	if span <= 0 {
		span = 1
	}
	ids := make([]string, 0, len(res.Outcomes))
	for id := range res.Outcomes {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time 0..%d (one column ≈ %.1f ticks)\n", span, float64(span)/float64(width))
	for _, id := range ids {
		o := res.Outcomes[process.ID(id)]
		start := int(o.Start * int64(width) / span)
		end := int(o.End * int64(width) / span)
		if end >= width {
			end = width - 1
		}
		if end < start {
			end = start
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for i := start; i <= end; i++ {
			row[i] = '='
		}
		mark := "C"
		if o.Aborted {
			mark = "A"
		}
		fmt.Fprintf(&b, "%-10s |%s| %s", id, string(row), mark)
		if o.Restarts > 0 {
			fmt.Fprintf(&b, " (restart %d)", o.Restarts)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CrashRecoverySweep crashes the scheduler after varying numbers of
// completions and reports recovery outcomes (experiment B4).
func CrashRecoverySweep(p workload.Profile, crashPoints []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("B4 crash recovery (procs=%d, conflict=%.2f, seed=%d)", p.Processes, p.ConflictProb, p.Seed),
		Columns: []string{"crashAfter", "backward", "forward", "terminated", "2pcCommit", "2pcAbort", "compens", "forwardInvokes", "inDoubtLeft"},
	}
	for _, k := range crashPoints {
		w, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade, CrashAfterEvents: k})
		if err != nil {
			return nil, err
		}
		_, runErr := eng.RunJobs(w.Jobs)
		if runErr == nil {
			t.AddRow(fmt.Sprintf("%d", k), "-", "-", "run finished before crash", "-", "-", "-", "-", "0")
			continue
		}
		defs := make([]*process.Process, 0, len(w.Jobs))
		for _, j := range w.Jobs {
			defs = append(defs, j.Proc)
		}
		report, err := scheduler.Recover(w.Fed, eng.Log(), defs)
		if err != nil {
			return nil, fmt.Errorf("sim: recovery after %d events: %w", k, err)
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", len(report.BackwardRecovered)),
			fmt.Sprintf("%d", len(report.ForwardRecovered)),
			fmt.Sprintf("%d", len(report.AlreadyTerminated)),
			fmt.Sprintf("%d", report.Resolved2PCCommitted),
			fmt.Sprintf("%d", report.Resolved2PCAborted),
			fmt.Sprintf("%d", report.Compensations),
			fmt.Sprintf("%d", report.ForwardInvocations),
			fmt.Sprintf("%d", len(w.Fed.InDoubt())))
	}
	return t, nil
}
