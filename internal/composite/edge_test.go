package composite

import (
	"strings"
	"testing"
)

func TestModeString(t *testing.T) {
	if Strong.String() != "strong" || Weak.String() != "weak" {
		t.Fatal("mode labels wrong")
	}
}

func TestSingleTransaction(t *testing.T) {
	for _, m := range []Mode{Strong, Weak} {
		st, err := NewExecutor(m, 0, 1).Run([]Txn{{ID: "only", Cost: 7}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Makespan != 7 || len(st.CommitOrder) != 1 {
			t.Fatalf("%v: %+v", m, st)
		}
	}
}

func TestZeroCostNormalized(t *testing.T) {
	st, err := NewExecutor(Strong, 0, 1).Run([]Txn{{ID: "z"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 1 {
		t.Fatalf("zero cost must normalize to 1, makespan %d", st.Makespan)
	}
}

func TestDiamondOrders(t *testing.T) {
	// a before both b and c; both before d. Weak mode pipelines; the
	// commit order must still respect the constraints.
	txns := []Txn{{ID: "a", Cost: 4}, {ID: "b", Cost: 4}, {ID: "c", Cost: 4}, {ID: "d", Cost: 4}}
	orders := []Order{
		{Before: "a", After: "b"}, {Before: "a", After: "c"},
		{Before: "b", After: "d"}, {Before: "c", After: "d"},
	}
	st, err := NewExecutor(Weak, 0, 1).Run(txns, orders)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range st.CommitOrder {
		pos[id] = i
	}
	for _, o := range orders {
		if pos[o.Before] > pos[o.After] {
			t.Fatalf("commit order violates %v: %v", o, st.CommitOrder)
		}
	}
	if st.Makespan >= 16 {
		t.Fatalf("weak diamond should overlap: makespan %d", st.Makespan)
	}
}

func TestRepeatedAbortsEventuallyCommit(t *testing.T) {
	txns := []Txn{{ID: "a", Cost: 3, AbortProb: 1.0, MaxAborts: 5}}
	st, err := NewExecutor(Weak, 0, 2).Run(txns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborts != 5 {
		t.Fatalf("aborts = %d, want 5", st.Aborts)
	}
	if st.Makespan != 18 { // 6 attempts × 3
		t.Fatalf("makespan = %d", st.Makespan)
	}
}

func TestStatsCommitOrderComplete(t *testing.T) {
	txns := []Txn{{ID: "x", Cost: 1}, {ID: "y", Cost: 1}, {ID: "z", Cost: 1}}
	st, err := NewExecutor(Strong, 1, 3).Run(txns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(st.CommitOrder, ",") != "x,y,z" {
		t.Fatalf("commit order = %v", st.CommitOrder)
	}
	if st.Makespan != 3 {
		t.Fatalf("one slot serializes: makespan %d", st.Makespan)
	}
}
