// Package composite implements Section 3.6 of the paper: increasing
// parallelism between conflicting activities with the *weak order* of
// the composite systems theory [ABFS97, AFPS99].
//
// The process scheduler's output feeds hierarchical lower-level
// schedulers — the transactional subsystems. Under the *strong* order an
// activity is invoked only after the previous conflicting one has
// terminated. Under the *weak* order both can execute in parallel as
// long as the overall effect is the same as the strong order; the
// subsystem guarantees this with commit-order serializability [BBG89]:
// the commit order of conflicting local transactions is forced to equal
// the weak order.
//
// The package simulates one subsystem executing a batch of local
// transactions with declared pairwise (weak) order constraints between
// conflicting transactions, and measures the makespan under both
// regimes. It also models the re-invocation treatment the paper
// describes: when a retriable activity's local transaction T_ik aborts
// after partial execution, a weakly-ordered T_jl that ran in parallel
// must abort and restart too — without raising an exception of P_j.
package composite

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Txn is one local transaction to execute in the subsystem.
type Txn struct {
	ID   string
	Cost int64
	// Retriable transactions may abort transiently and are re-invoked.
	AbortProb float64
	// MaxAborts bounds injected aborts (so runs terminate).
	MaxAborts int
}

// Order is a pairwise constraint: Before must appear to execute before
// After — strongly (no overlap) or weakly (overlap allowed, commit order
// enforced).
type Order struct {
	Before, After string
}

// Mode selects the ordering regime.
type Mode int

const (
	// Strong executes conflicting transactions without overlap.
	Strong Mode = iota
	// Weak overlaps conflicting transactions and enforces the order at
	// commit time (commit order serializability).
	Weak
)

// String returns the mode label.
func (m Mode) String() string {
	if m == Strong {
		return "strong"
	}
	return "weak"
}

// Stats reports one simulation run.
type Stats struct {
	Makespan int64
	// Aborts counts injected transient aborts.
	Aborts int
	// CascadeRestarts counts restarts of transactions forced by the
	// abort of a weakly-preceding transaction they overlapped with.
	CascadeRestarts int
	CommitOrder     []string
}

// Executor simulates one subsystem with a fixed parallelism degree.
type Executor struct {
	Parallelism int
	Mode        Mode
	rng         *rand.Rand
}

// NewExecutor returns an executor. Parallelism < 1 means unbounded.
func NewExecutor(mode Mode, parallelism int, seed int64) *Executor {
	return &Executor{Parallelism: parallelism, Mode: mode, rng: rand.New(rand.NewSource(seed))}
}

type runEvent struct {
	at  int64
	seq int
	id  string
}

type runHeap []runEvent

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(runEvent)) }
func (h *runHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Run executes the batch under the executor's mode and returns stats.
// Orders must be acyclic.
func (ex *Executor) Run(txns []Txn, orders []Order) (*Stats, error) {
	byID := make(map[string]*Txn, len(txns))
	for i := range txns {
		t := &txns[i]
		if t.Cost < 1 {
			t.Cost = 1
		}
		if _, dup := byID[t.ID]; dup {
			return nil, fmt.Errorf("composite: duplicate transaction %q", t.ID)
		}
		byID[t.ID] = t
	}
	preds := make(map[string][]string)
	succs := make(map[string][]string)
	for _, o := range orders {
		if byID[o.Before] == nil || byID[o.After] == nil {
			return nil, fmt.Errorf("composite: order references unknown transaction (%q, %q)", o.Before, o.After)
		}
		preds[o.After] = append(preds[o.After], o.Before)
		succs[o.Before] = append(succs[o.Before], o.After)
	}
	if cyclic(byID, succs) {
		return nil, fmt.Errorf("composite: order constraints contain a cycle")
	}

	st := &Stats{}
	var clock int64
	seq := 0
	committed := make(map[string]bool, len(txns))
	started := make(map[string]int64)  // execution start time (latest attempt)
	finished := make(map[string]int64) // execution end time (awaiting commit)
	abortsLeft := make(map[string]int, len(txns))
	for _, t := range txns {
		abortsLeft[t.ID] = t.MaxAborts
	}
	running := runHeap{}
	slots := ex.Parallelism
	if slots < 1 {
		slots = len(txns)
	}
	inFlight := 0

	canStart := func(id string) bool {
		if _, done := committed[id]; done {
			return false
		}
		if _, executing := started[id]; executing {
			return false
		}
		if _, waiting := finished[id]; waiting {
			return false
		}
		for _, p := range preds[id] {
			switch ex.Mode {
			case Strong:
				if !committed[p] {
					return false
				}
			case Weak:
				// Overlap allowed: the predecessor only needs to have
				// started (the subsystem interleaves them and enforces
				// the commit order).
				if !committed[p] {
					if _, ok := started[p]; !ok {
						if _, ok := finished[p]; !ok {
							return false
						}
					}
				}
			}
		}
		return true
	}

	// commitReady commits transactions whose execution finished and
	// whose predecessors committed (commit order serializability).
	commitReady := func() {
		for changed := true; changed; {
			changed = false
			var ready []string
			for id := range finished {
				ok := true
				for _, p := range preds[id] {
					if !committed[p] {
						ok = false
						break
					}
				}
				if ok {
					ready = append(ready, id)
				}
			}
			sort.Strings(ready)
			for _, id := range ready {
				committed[id] = true
				delete(finished, id)
				st.CommitOrder = append(st.CommitOrder, id)
				changed = true
			}
		}
	}

	for len(committed) < len(txns) {
		launched := false
		var ids []string
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if inFlight >= slots {
				break
			}
			if canStart(id) {
				started[id] = clock
				seq++
				heap.Push(&running, runEvent{at: clock + byID[id].Cost, seq: seq, id: id})
				inFlight++
				launched = true
			}
		}
		if len(running) == 0 {
			if launched {
				continue
			}
			commitReady()
			if len(committed) < len(txns) && len(running) == 0 {
				return nil, fmt.Errorf("composite: stuck with %d of %d committed", len(committed), len(txns))
			}
			continue
		}
		ev := heap.Pop(&running).(runEvent)
		inFlight--
		clock = ev.at
		t := byID[ev.id]
		delete(started, ev.id)
		// Transient abort?
		if abortsLeft[ev.id] > 0 && t.AbortProb > 0 && ex.rng.Float64() < t.AbortProb {
			abortsLeft[ev.id]--
			st.Aborts++
			// Weak order: parallel weakly-following transactions that
			// overlapped with the aborted one must restart too (their
			// interleaved reads are invalid); this is not a failure of
			// their process — they are simply re-invoked (Section 3.6).
			if ex.Mode == Weak {
				for _, s := range succs[ev.id] {
					if _, executing := started[s]; executing {
						// Cancel and restart.
						for i := range running {
							if running[i].id == s {
								heap.Remove(&running, i)
								inFlight--
								break
							}
						}
						delete(started, s)
						st.CascadeRestarts++
					} else if _, waiting := finished[s]; waiting {
						delete(finished, s)
						st.CascadeRestarts++
					}
				}
			}
			continue // re-invoked on the next round
		}
		finished[ev.id] = clock
		commitReady()
	}
	st.Makespan = clock
	return st, nil
}

func cyclic(byID map[string]*Txn, succs map[string][]string) bool {
	color := make(map[string]int, len(byID))
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = 1
		for _, m := range succs[n] {
			switch color[m] {
			case 1:
				return true
			case 0:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = 2
		return false
	}
	for id := range byID {
		if color[id] == 0 && visit(id) {
			return true
		}
	}
	return false
}

// Compare runs the same batch under both orders with the same seed and
// returns (strong, weak) stats — the experiment of Section 3.6: the weak
// order increases parallelism of conflicting activities.
func Compare(txns []Txn, orders []Order, parallelism int, seed int64) (*Stats, *Stats, error) {
	strong, err := NewExecutor(Strong, parallelism, seed).Run(append([]Txn(nil), txns...), orders)
	if err != nil {
		return nil, nil, err
	}
	weak, err := NewExecutor(Weak, parallelism, seed).Run(append([]Txn(nil), txns...), orders)
	if err != nil {
		return nil, nil, err
	}
	return strong, weak, nil
}
