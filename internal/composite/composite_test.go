package composite

import (
	"fmt"
	"testing"
)

func chainTxns(n int, cost int64) ([]Txn, []Order) {
	txns := make([]Txn, n)
	var orders []Order
	for i := range txns {
		txns[i] = Txn{ID: fmt.Sprintf("t%02d", i), Cost: cost}
		if i > 0 {
			orders = append(orders, Order{Before: fmt.Sprintf("t%02d", i-1), After: fmt.Sprintf("t%02d", i)})
		}
	}
	return txns, orders
}

func TestStrongOrderSerializesChain(t *testing.T) {
	txns, orders := chainTxns(5, 10)
	st, err := NewExecutor(Strong, 0, 1).Run(txns, orders)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 50 {
		t.Fatalf("strong chain makespan = %d, want 50", st.Makespan)
	}
	for i, id := range st.CommitOrder {
		if id != fmt.Sprintf("t%02d", i) {
			t.Fatalf("commit order broken: %v", st.CommitOrder)
		}
	}
}

func TestWeakOrderOverlapsChain(t *testing.T) {
	txns, orders := chainTxns(5, 10)
	st, err := NewExecutor(Weak, 0, 1).Run(txns, orders)
	if err != nil {
		t.Fatal(err)
	}
	// All overlap (a transaction may start once its predecessor
	// started); a cascade of start delays of zero means makespan ≈ one
	// transaction's cost.
	if st.Makespan >= 50 {
		t.Fatalf("weak order gained no parallelism: makespan %d", st.Makespan)
	}
	// Commit order must still follow the weak order.
	for i, id := range st.CommitOrder {
		if id != fmt.Sprintf("t%02d", i) {
			t.Fatalf("commit order broken: %v", st.CommitOrder)
		}
	}
}

func TestCompareWeakBeatsStrong(t *testing.T) {
	txns, orders := chainTxns(8, 7)
	strong, weak, err := Compare(txns, orders, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Makespan >= strong.Makespan {
		t.Fatalf("weak (%d) must beat strong (%d) on a conflict chain", weak.Makespan, strong.Makespan)
	}
}

func TestIndependentTxnsSameUnderBothModes(t *testing.T) {
	txns := []Txn{{ID: "a", Cost: 5}, {ID: "b", Cost: 5}, {ID: "c", Cost: 5}}
	strong, weak, err := Compare(txns, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strong.Makespan != 5 || weak.Makespan != 5 {
		t.Fatalf("independent transactions should fully overlap: strong %d, weak %d", strong.Makespan, weak.Makespan)
	}
}

func TestParallelismLimit(t *testing.T) {
	txns := []Txn{{ID: "a", Cost: 5}, {ID: "b", Cost: 5}, {ID: "c", Cost: 5}, {ID: "d", Cost: 5}}
	st, err := NewExecutor(Weak, 2, 1).Run(txns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 10 {
		t.Fatalf("with 2 slots, 4 transactions of cost 5 take 10, got %d", st.Makespan)
	}
}

func TestRetriableAbortRestartsWeakFollowers(t *testing.T) {
	// t0 aborts once; t1 weakly follows and overlaps; it must restart
	// without being treated as its own failure.
	txns := []Txn{
		{ID: "t0", Cost: 10, AbortProb: 1.0, MaxAborts: 1},
		{ID: "t1", Cost: 10},
	}
	orders := []Order{{Before: "t0", After: "t1"}}
	st, err := NewExecutor(Weak, 0, 7).Run(txns, orders)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborts != 1 {
		t.Fatalf("aborts = %d, want 1", st.Aborts)
	}
	if st.CascadeRestarts != 1 {
		t.Fatalf("cascade restarts = %d, want 1 (Section 3.6)", st.CascadeRestarts)
	}
	if len(st.CommitOrder) != 2 || st.CommitOrder[0] != "t0" {
		t.Fatalf("commit order = %v", st.CommitOrder)
	}
}

func TestStrongModeNoCascades(t *testing.T) {
	txns := []Txn{
		{ID: "t0", Cost: 10, AbortProb: 1.0, MaxAborts: 1},
		{ID: "t1", Cost: 10},
	}
	orders := []Order{{Before: "t0", After: "t1"}}
	st, err := NewExecutor(Strong, 0, 7).Run(txns, orders)
	if err != nil {
		t.Fatal(err)
	}
	if st.CascadeRestarts != 0 {
		t.Fatal("strong order never overlaps, so no cascading restarts")
	}
	if st.Makespan != 30 { // 10 (aborted) + 10 (retry) + 10 (t1)
		t.Fatalf("makespan = %d, want 30", st.Makespan)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewExecutor(Weak, 0, 1).Run(
		[]Txn{{ID: "a"}, {ID: "a"}}, nil); err == nil {
		t.Fatal("duplicate ids must be rejected")
	}
	if _, err := NewExecutor(Weak, 0, 1).Run(
		[]Txn{{ID: "a"}}, []Order{{Before: "a", After: "zz"}}); err == nil {
		t.Fatal("unknown order target must be rejected")
	}
	if _, err := NewExecutor(Weak, 0, 1).Run(
		[]Txn{{ID: "a"}, {ID: "b"}},
		[]Order{{Before: "a", After: "b"}, {Before: "b", After: "a"}}); err == nil {
		t.Fatal("cyclic orders must be rejected")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	txns := []Txn{
		{ID: "t0", Cost: 4, AbortProb: 0.5, MaxAborts: 3},
		{ID: "t1", Cost: 6, AbortProb: 0.5, MaxAborts: 3},
		{ID: "t2", Cost: 5},
	}
	orders := []Order{{Before: "t0", After: "t2"}}
	a, err := NewExecutor(Weak, 0, 99).Run(append([]Txn(nil), txns...), orders)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(Weak, 0, 99).Run(append([]Txn(nil), txns...), orders)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Aborts != b.Aborts {
		t.Fatal("same seed must reproduce the run")
	}
}
