package federation

import (
	"flag"
	"testing"
)

var (
	fedSeed  = flag.Int64("fed.seed", -1, "run only this federation-torture seed (reproduce a failure)")
	fedFirst = flag.Int64("fed.first", 0, "first federation-torture seed of the battery")
	fedCount = flag.Int64("fed.count", 200, "number of federation-torture seeds to run")
)

// TestFedTortureBattery runs the federation-torture battery: for each
// seed a deterministic workload is partitioned across 2-3 scheduler
// nodes and driven under a seeded transport fault plan — a node killed
// mid-2PC, a partition window cutting a node off during cross-node
// resolution, or a node crash in the dispatch window followed by
// composed recovery and a re-join session. The stitched per-node WALs
// are recovered as one global history and checked against every
// recovery guarantee (fault.CheckRecovered). A failure names the
// single seed that reproduces it:
//
//	go test ./internal/federation -run FedTortureBattery -fed.seed=N -v
func TestFedTortureBattery(t *testing.T) {
	if *fedSeed >= 0 {
		sc := FedScenarioFor(*fedSeed)
		t.Logf("seed %d: class=%s mode=%v nodes=%d crash={node %d, %q, count %d} wire=%+v",
			sc.Seed, sc.Class, sc.Mode, sc.Nodes, sc.CrashNode, sc.CrashPoint, sc.CrashCount, sc.Wire)
		alt, err := RunFedScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("alternatives fired: %v", alt)
		return
	}
	first, count := *fedFirst, *fedCount
	if testing.Short() && count > 30 {
		count = 30
	}
	altFires := 0
	byClass := make(map[string]int)
	for seed := first; seed < first+count; seed++ {
		sc := FedScenarioFor(seed)
		byClass[sc.Class]++
		alt, err := RunFedScenario(sc)
		if alt {
			altFires++
		}
		if err != nil {
			t.Errorf("federation torture scenario failed (reproduce: go test ./internal/federation -run FedTortureBattery -fed.seed=%d -v): %v",
				seed, err)
		}
	}
	for _, class := range []string{"fed-kill-mid-2pc", "fed-partition-resolve", "fed-crash-rejoin"} {
		if byClass[class] == 0 {
			t.Errorf("battery never exercised class %s", class)
		}
	}
	// The partition/kill classes must leave room for forward recovery:
	// across the battery, some origin with a permanently failing service
	// has to commit through a ◁ alternative on a surviving node.
	if altFires == 0 {
		t.Error("no scenario committed a failed origin through an alternative path")
	}
	t.Logf("federation torture battery: %d scenarios, %d with alternatives fired, classes: %v",
		count, altFires, byClass)
}
