package federation

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func journalFixture() []JEntry {
	return []JEntry{
		{Kind: jEpoch, Node: 3},
		{Kind: jLease, Stamp: 512},
		{Kind: jAssign, Node: 1, Origin: "W1", Proc: "W1", Arrival: 0},
		{Kind: jAssign, Node: 2, Origin: "W2", Proc: "W2", Arrival: 1},
		{Kind: jLease, Stamp: 1024},
		// Re-assignment after a lease expiry: the later row wins.
		{Kind: jAssign, Node: 1, Origin: "W2", Proc: "W2+r1", Arrival: 1},
	}
}

// TestFileJournalRoundTrip pins the on-disk format: append, replay,
// close, reopen, replay again — byte-identical entries every time.
func TestFileJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hub.journal")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	want := journalFixture()
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenFileJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, err = j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestFileJournalTornTail pins crash tolerance: a partial last record
// (kill -9 mid-write) replays as the intact prefix, silently, at every
// truncation point.
func TestFileJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hub.journal")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	want := journalFixture()
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Find the last record's start so every cut lands inside it.
	last := len(full)
	for cut := last - 1; cut > last-40 && cut > 0; cut -= 7 {
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tj, err := OpenFileJournal(torn, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tj.Entries()
		tj.Close()
		if err != nil {
			t.Fatalf("cut at %d/%d: %v", cut, last, err)
		}
		if len(got) >= len(want) {
			t.Fatalf("cut at %d/%d replayed %d entries, want a strict prefix of %d", cut, last, len(got), len(want))
		}
		if !reflect.DeepEqual(got, want[:len(got)]) {
			t.Fatalf("cut at %d/%d: prefix mismatch", cut, last)
		}
	}
}

// TestFileJournalInteriorCorruption pins the loud-failure contract: a
// flipped byte before the tail is ErrJournalCorrupt, never a silent
// skip — the journal is the hub's force-log, a hole in the middle
// means the recovery inputs can't be trusted.
func TestFileJournalInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hub.journal")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range journalFixture() {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF // inside the first record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cj, err := OpenFileJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cj.Close()
	if _, err := cj.Entries(); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("interior corruption: got %v, want ErrJournalCorrupt", err)
	}
}

// TestFoldJournal pins the latest-wins fold the reopening hub seeds
// itself with.
func TestFoldJournal(t *testing.T) {
	st := FoldJournal(journalFixture())
	if st.Epoch != 3 {
		t.Errorf("epoch %d, want 3", st.Epoch)
	}
	if st.LeaseFloor != 1024 {
		t.Errorf("lease floor %d, want the highest journaled floor 1024", st.LeaseFloor)
	}
	if got := st.Owners["W1"]; got.Node != 1 || got.Proc != "W1" {
		t.Errorf("W1 owner %+v", got)
	}
	if got := st.Owners["W2"]; got.Node != 1 || got.Proc != "W2+r1" || got.Arrival != 1 {
		t.Errorf("W2 owner %+v, want the re-assignment row to win", got)
	}
}
