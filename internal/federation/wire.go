// Package federation splits the transactional process manager across
// scheduler nodes connected by a real wire: N nodes each own a
// partition of the processes and drive their execution, while one hub —
// the paper's transactional coordination agent — owns the federation of
// subsystems, the shared PRED policy state, and a global stamp counter.
//
// Every scheduling decision a node needs (dispatch admissibility,
// Lemma 1-3 gates, commit-immediately vs defer, stall victims) is one
// RPC into the hub's serial section; the response carries the stamps
// under which the node force-logs the corresponding records into its
// per-node WAL. Stitching the per-node logs by stamp yields one global
// history that the existing single-node machinery consumes unchanged:
// wal.Analyze, scheduler.Recover and fault.CheckRecovered — that reuse
// is the recovery composition.
//
// The wire is a hand-rolled length-prefixed binary codec over localhost
// TCP (dependency-free). The transport fault model is internal/chaos:
// per-attempt fates (drops, executed-but-reply-lost timeouts, duplicate
// delivery) and partition windows are deterministic per seed. The hub
// dedups requests by (node, request id), so retries and duplicates are
// exactly-once; crash consistency of the node-side logging protocol
// reduces every loss window to a rule recovery already implements
// (orphan presumed abort, redo-commit, presumed commit after decision).
package federation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType enumerates the federation RPCs. Requests and responses share
// the Frame shape; responses use MsgResponse.
type MsgType uint8

const (
	// MsgHello introduces a node to the hub.
	MsgHello MsgType = iota + 1
	// MsgAdmit admits a process (or restart incarnation) into the
	// cluster-wide policy view and returns the RecStart stamp.
	MsgAdmit
	// MsgDispatch asks the hub to policy-check and prepare a frontier
	// activity at its subsystem; returns the transaction and the stamp
	// for the node's "prepared" outcome record.
	MsgDispatch
	// MsgCommitLocal resolves a prepared frontier activity: commit
	// immediately (compensatable, or no active conflicting predecessor)
	// or defer under Lemma 1.
	MsgCommitLocal
	// MsgStepDispatch policy-checks and prepares a recovery step
	// (compensation or forward invocation) per Lemmas 2 and 3.
	MsgStepDispatch
	// MsgStepCommit commits a prepared recovery-step transaction after
	// the node force-logged it (redo-commit crash window).
	MsgStepCommit
	// MsgAbortTx rolls back a prepared transaction (abandoned branch or
	// abort-completion leftovers) and erases its tentative event.
	MsgAbortTx
	// MsgAbortBegin transitions a process into backward recovery.
	MsgAbortBegin
	// MsgCommitClear is the Lemma-1 gate for a process's deferred 2PC
	// commit; on success it returns the RecDecision stamp.
	MsgCommitClear
	// MsgResolve commits one prepared 2PC participant and finalizes its
	// tentative event at the resolve stamp.
	MsgResolve
	// MsgTerminate emits a process's terminal transition.
	MsgTerminate
	// MsgFailed reports an invocation failure the transport could not
	// mask (or the node observed); the hub runs the permanent-failure
	// or transient-retry block and returns the plan shape.
	MsgFailed
	// MsgCancel resolves an ambiguous dispatch after transport-retry
	// exhaustion: it replays the cached response if the request ever
	// executed, or certifies that it never ran.
	MsgCancel
	// MsgIdle reports node quiescence for cluster-wide stall detection;
	// the response may carry a victim designation.
	MsgIdle
	// MsgHeartbeat refreshes the node's membership lease without doing
	// any scheduling work; the response carries the hub's epoch so a
	// restarted hub is detected even on an otherwise idle node.
	MsgHeartbeat
	// MsgReattach asks a freshly reconnected node for the recovered fate
	// of one of its in-flight processes: already settled (committed or
	// aborted by hub recovery) and, for aborted origins with restarts
	// remaining, the incarnation id under which the node may resubmit.
	MsgReattach
	// MsgResponse is the type of every hub response.
	MsgResponse

	msgTypeMax = MsgResponse
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgAdmit:
		return "admit"
	case MsgDispatch:
		return "dispatch"
	case MsgCommitLocal:
		return "commit-local"
	case MsgStepDispatch:
		return "step-dispatch"
	case MsgStepCommit:
		return "step-commit"
	case MsgAbortTx:
		return "abort-tx"
	case MsgAbortBegin:
		return "abort-begin"
	case MsgCommitClear:
		return "commit-clear"
	case MsgResolve:
		return "resolve"
	case MsgTerminate:
		return "terminate"
	case MsgFailed:
		return "failed"
	case MsgCancel:
		return "cancel"
	case MsgIdle:
		return "idle"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgReattach:
		return "reattach"
	case MsgResponse:
		return "response"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Status is the hub's verdict in a response frame.
type Status uint8

const (
	// StOK: the operation executed; stamps/transaction fields are set.
	StOK Status = iota + 1
	// StPolicyWait: the policy denied the dispatch; retry later.
	StPolicyWait
	// StLockWait: subsystem locks denied the invocation; retry later.
	StLockWait
	// StFailedTransient: the invocation failed and the activity is
	// retriable — the node re-invokes.
	StFailedTransient
	// StFailedPermanent: a definitive failure (Definition 4); the node
	// adopts the failure plan (◁ alternative or backward recovery).
	StFailedPermanent
	// StDeferred: the prepared commit is deferred under Lemma 1.
	StDeferred
	// StNotClear: the Lemma-1 gate still sees an active conflicting
	// predecessor; the 2PC commit waits.
	StNotClear
	// StVictim: the process was designated a stall victim; the node
	// must abort (and may restart) it.
	StVictim
	// StPark: the process's remaining recovery steps are blocked by a
	// dead node's zombie events and can only run after the crash cycle;
	// the node stops driving it (without a terminate record) and the
	// composed recovery finishes its group abort in correct global
	// order.
	StPark
	// StStale: the frame carries an epoch from a hub incarnation that no
	// longer exists (or comes from a node whose lease expired); the node
	// must re-hello and re-attach before retrying.
	StStale
	// StAdopt: an idle response carrying an orphaned process the node
	// should adopt (Origin/Proc/Stamp2 describe the new incarnation).
	StAdopt
	// StError: the hub rejected the request; Err carries the reason.
	StError

	statusMax = StError
)

// Frame is the single wire message shape; each MsgType populates the
// subset of fields it needs. Keeping one struct makes the codec — and
// its fuzz target — total over every message type.
type Frame struct {
	Type   MsgType
	Status Status
	Kind   uint8 // activity.Kind on dispatch-class messages
	Flag   bool
	Flag2  bool
	Node   uint32
	Epoch  uint32 // hub incarnation the sender believes in; 0 = unknown (hello)
	Req    uint64
	Local  int32
	Extra  int32 // restarts on MsgAdmit; step kind on step messages
	Tx     int64
	Stamp  int64
	Stamp2 int64
	Gen    int64 // progress generation (MsgIdle), original request id (MsgCancel)

	Proc      string
	Origin    string
	Service   string
	Subsystem string
	Victim    string
	Err       string
}

// Codec limits: a frame is rejected when its payload exceeds MaxFrame
// or any string exceeds MaxString. The limits bound decoder allocation
// under malformed (or hostile) input.
const (
	MaxFrame  = 1 << 16
	MaxString = 4096
)

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("federation: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("federation: truncated frame")
	ErrTrailing      = errors.New("federation: trailing bytes after frame")
	ErrBadType       = errors.New("federation: unknown message type")
	ErrBadStatus     = errors.New("federation: unknown status")
	ErrBadString     = errors.New("federation: string field exceeds MaxString")
)

// fixedHeader is the byte count of the fixed-width portion of a payload.
const fixedHeader = 1 + 1 + 1 + 1 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 8 + 8

// EncodePayload serializes a frame payload (without the length prefix).
func EncodePayload(f *Frame) []byte {
	n := fixedHeader
	for _, s := range []string{f.Proc, f.Origin, f.Service, f.Subsystem, f.Victim, f.Err} {
		n += 2 + len(s)
	}
	b := make([]byte, 0, n)
	var flags uint8
	if f.Flag {
		flags |= 1
	}
	if f.Flag2 {
		flags |= 2
	}
	b = append(b, uint8(f.Type), uint8(f.Status), f.Kind, flags)
	b = binary.LittleEndian.AppendUint32(b, f.Node)
	b = binary.LittleEndian.AppendUint32(b, f.Epoch)
	b = binary.LittleEndian.AppendUint64(b, f.Req)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Local))
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Extra))
	b = binary.LittleEndian.AppendUint64(b, uint64(f.Tx))
	b = binary.LittleEndian.AppendUint64(b, uint64(f.Stamp))
	b = binary.LittleEndian.AppendUint64(b, uint64(f.Stamp2))
	b = binary.LittleEndian.AppendUint64(b, uint64(f.Gen))
	for _, s := range []string{f.Proc, f.Origin, f.Service, f.Subsystem, f.Victim, f.Err} {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	return b
}

// DecodePayload parses a frame payload. Malformed input returns an
// error, never panics, and never allocates more than the input length
// plus MaxFrame.
func DecodePayload(b []byte) (*Frame, error) {
	if len(b) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if len(b) < fixedHeader {
		return nil, ErrTruncated
	}
	f := &Frame{
		Type:   MsgType(b[0]),
		Status: Status(b[1]),
		Kind:   b[2],
	}
	if f.Type < MsgHello || f.Type > msgTypeMax {
		return nil, ErrBadType
	}
	if f.Status > statusMax {
		return nil, ErrBadStatus
	}
	flags := b[3]
	if flags > 3 {
		return nil, fmt.Errorf("federation: invalid flag bits %#x", flags)
	}
	f.Flag = flags&1 != 0
	f.Flag2 = flags&2 != 0
	f.Node = binary.LittleEndian.Uint32(b[4:])
	f.Epoch = binary.LittleEndian.Uint32(b[8:])
	f.Req = binary.LittleEndian.Uint64(b[12:])
	f.Local = int32(binary.LittleEndian.Uint32(b[20:]))
	f.Extra = int32(binary.LittleEndian.Uint32(b[24:]))
	f.Tx = int64(binary.LittleEndian.Uint64(b[28:]))
	f.Stamp = int64(binary.LittleEndian.Uint64(b[36:]))
	f.Stamp2 = int64(binary.LittleEndian.Uint64(b[44:]))
	f.Gen = int64(binary.LittleEndian.Uint64(b[52:]))
	rest := b[fixedHeader:]
	for _, dst := range []*string{&f.Proc, &f.Origin, &f.Service, &f.Subsystem, &f.Victim, &f.Err} {
		if len(rest) < 2 {
			return nil, ErrTruncated
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if n > MaxString {
			return nil, ErrBadString
		}
		if len(rest) < n {
			return nil, ErrTruncated
		}
		*dst = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return f, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, f *Frame) error {
	payload := EncodePayload(f)
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return DecodePayload(payload)
}
