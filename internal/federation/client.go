package federation

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"transproc/internal/chaos"
	"transproc/internal/metrics"
)

// ErrVoided is returned by an invocation-class call whose transport
// retry budget ran out and whose Cancel certified the request never
// executed at the hub — the node takes the invocation-failure path.
var ErrVoided = errors.New("federation: request voided after transport retry exhaustion")

// ErrHubRestart is returned when the hub bounces a frame with StStale:
// the hub incarnation the client believed in is gone (restart after a
// kill, or the node's own lease expired and it was declared dead). The
// node must re-hello — which teaches the client the new epoch — and
// re-attach its in-flight processes before retrying anything.
var ErrHubRestart = errors.New("federation: hub incarnation changed (stale epoch); re-attach required")

// backoffTick converts the chaos retry engine's virtual ticks into real
// reconnect-sleep time. At the default policy (base 2, cap 64) the
// per-retry sleep ranges ~100µs–6.4ms — long enough to ride out a hub
// reopen (close, recover, rebind) without a busy spin, short enough to
// keep torture runs fast.
const backoffTick = 100 * time.Microsecond

// Client is a node's connection to the hub with the chaos transport
// fault model applied deterministically per delivery attempt: drops and
// partition-window attempts are not sent; an executed-but-lost reply is
// read and discarded (the retry under the same request id hits the
// hub's dedup table); a duplicate is sent twice and both replies are
// read. The wire itself is reliable TCP — unreliability is simulated,
// which is what makes it deterministic and seedable.
type Client struct {
	node uint32
	name string
	addr string
	plan chaos.Plan
	reg  *metrics.Registry

	conn net.Conn
	rd   *bufio.Reader

	req     uint64 // request-id counter
	attempt int64  // delivery-attempt counter (drives fates and outages)

	// dispatchBudget bounds transport attempts of invocation-class RPCs
	// (Dispatch, StepDispatch) before the Cancel flow; controlBudget
	// bounds everything else and must outlast any partition window
	// (windows are finite attempt counts, so control RPCs always land).
	dispatchBudget int
	controlBudget  int

	// epoch is the hub incarnation learned from the last hello; every
	// frame is stamped with it, so a restarted hub bounces the client
	// (StStale → ErrHubRestart) until the node re-hellos.
	epoch uint32
	// reconnect bounds consecutive hard I/O failures per attempt loop;
	// between failures the client sleeps on the chaos retry engine's
	// seeded exponential-backoff schedule instead of hammering the
	// listener, which is what lets it ride out a hub restart.
	reconnect int
	retry     chaos.RetryPolicy
}

// NewClient prepares a client; the connection is dialed lazily.
// reconnectAttempts bounds consecutive connection failures before a
// call is abandoned (0 = default 256, sized to outlast a hub reopen
// under the seeded backoff schedule).
func NewClient(node uint32, name, addr string, plan chaos.Plan, dispatchBudget, controlBudget, reconnectAttempts int, reg *metrics.Registry) *Client {
	if dispatchBudget <= 0 {
		dispatchBudget = 4096
	}
	if controlBudget <= 0 {
		controlBudget = 1 << 20
	}
	if reconnectAttempts <= 0 {
		reconnectAttempts = 256
	}
	return &Client{
		node: node, name: name, addr: addr, plan: plan, reg: reg,
		dispatchBudget: dispatchBudget, controlBudget: controlBudget,
		reconnect: reconnectAttempts,
	}
}

// Epoch reports the hub incarnation the client last learned.
func (c *Client) Epoch() uint32 { return c.epoch }

// backoffSleep sleeps before reconnect attempt k (1-based) using the
// seeded jittered schedule, so a whole cluster's redial storm after a
// hub kill is deterministic under the test seed yet de-synchronized
// across nodes (jitter is keyed by the node name).
func (c *Client) backoffSleep(k int) {
	ticks := c.retry.Backoff(c.plan, c.name, "hub-reconnect", k)
	time.Sleep(time.Duration(ticks) * backoffTick)
}

func (c *Client) dial() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.rd = bufio.NewReader(conn)
	return nil
}

func (c *Client) redial() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.rd = nil
	}
}

// Close severs the connection.
func (c *Client) Close() {
	c.redial()
}

// roundTrip sends one frame and reads one response, redialing on I/O
// errors. The response must echo the request id.
func (c *Client) roundTrip(f *Frame) (*Frame, error) {
	if err := c.dial(); err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, f); err != nil {
		c.redial()
		return nil, err
	}
	resp, err := ReadFrame(c.rd)
	if err != nil {
		c.redial()
		return nil, err
	}
	if resp.Req != f.Req {
		c.redial()
		return nil, fmt.Errorf("federation: response for request %d, expected %d", resp.Req, f.Req)
	}
	return resp, nil
}

// Call performs one RPC under the fault model. invocation marks the
// dispatch-class calls that may be voided; control calls retry until
// they land.
func (c *Client) Call(f *Frame, invocation bool) (*Frame, error) {
	f.Node = c.node
	f.Epoch = c.epoch
	c.req++
	f.Req = c.req
	budget := c.controlBudget
	if invocation {
		budget = c.dispatchBudget
	}
	resp, err := c.attemptLoop(f, budget)
	if err == nil {
		if f.Type == MsgHello {
			c.epoch = resp.Epoch // a hello adopts the current incarnation
		}
		if resp.Status == StStale {
			return resp, ErrHubRestart
		}
		return resp, nil
	}
	if !invocation {
		return nil, fmt.Errorf("federation: control RPC %v exhausted its budget: %w", f.Type, err)
	}
	// Fetch-or-void: ask the hub what became of the original request.
	cancel := &Frame{Type: MsgCancel, Node: c.node, Proc: f.Proc, Gen: int64(f.Req), Epoch: c.epoch}
	c.req++
	cancel.Req = c.req
	cresp, cerr := c.attemptLoop(cancel, c.controlBudget)
	if cerr != nil {
		return nil, fmt.Errorf("federation: cancel of request %d failed: %w", f.Req, cerr)
	}
	if cresp.Status == StStale {
		return cresp, ErrHubRestart
	}
	if cresp.Flag2 {
		return cresp, nil // the original executed; this is its response
	}
	return nil, ErrVoided
}

// errBudget marks budget exhaustion internally (distinct from hard I/O
// failure so the Cancel flow only runs when the hub is reachable).
var errBudget = errors.New("retry budget exhausted")

func (c *Client) attemptLoop(f *Frame, budget int) (*Frame, error) {
	var lastErr error
	consecutiveIO := 0
	for try := 0; try < budget; try++ {
		c.attempt++
		if c.plan.WireOutage(c.name, c.attempt) {
			c.reg.Inc(metrics.FedWireDrops)
			c.reg.Inc(metrics.FedRPCRetries)
			continue
		}
		switch c.plan.WireFateAt(c.name, c.attempt) {
		case chaos.WireDrop:
			c.reg.Inc(metrics.FedWireDrops)
			c.reg.Inc(metrics.FedRPCRetries)
			continue
		case chaos.WireExecLostReply:
			// Delivered and executed, reply lost: read and discard, then
			// retry under the same request id — the hub's dedup table
			// replays the cached response.
			if _, err := c.roundTrip(f); err != nil {
				lastErr = err
				consecutiveIO++
				if consecutiveIO > c.reconnect {
					return nil, lastErr
				}
				c.backoffSleep(consecutiveIO)
				continue
			}
			consecutiveIO = 0
			c.reg.Inc(metrics.FedRPCRetries)
			continue
		case chaos.WireDuplicate:
			c.reg.Inc(metrics.FedWireDuplicates)
			if err := c.dial(); err != nil {
				lastErr = err
				consecutiveIO++
				if consecutiveIO > c.reconnect {
					return nil, lastErr
				}
				c.backoffSleep(consecutiveIO)
				continue
			}
			if err := WriteFrame(c.conn, f); err != nil {
				c.redial()
				lastErr = err
				continue
			}
			first, err := c.roundTrip(f)
			if err != nil {
				lastErr = err
				continue
			}
			_ = first // both deliveries answered identically (dedup)
			resp, err := ReadFrame(c.rd)
			if err != nil {
				c.redial()
				lastErr = err
				continue
			}
			if resp.Req != f.Req {
				c.redial()
				lastErr = fmt.Errorf("federation: duplicate response for request %d, expected %d", resp.Req, f.Req)
				continue
			}
			return resp, nil
		default:
			resp, err := c.roundTrip(f)
			if err != nil {
				lastErr = err
				consecutiveIO++
				if consecutiveIO > c.reconnect {
					return nil, lastErr
				}
				c.backoffSleep(consecutiveIO)
				continue
			}
			return resp, nil
		}
	}
	if lastErr == nil {
		lastErr = errBudget
	}
	return nil, lastErr
}
