package federation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The hub journal persists the handful of facts only the hub knows and
// that the stitched per-node WALs cannot reconstruct:
//
//   - stamp leases: before the hub issues a stamp past the journaled
//     floor it force-logs a new floor one chunk ahead, so a restarted
//     hub resumes the counter strictly above every stamp it may ever
//     have handed out — issued-but-unacked stamps are never reissued
//     and plain stamp sorting of the stitched history stays total;
//   - the ownership table: which node owns which process origin (and
//     its submission arrival / restart suffix), so a reopened hub can
//     re-assign orphans of nodes that never come back;
//   - the epoch: a monotone hub-incarnation counter bumped on every
//     reopen; frames from a previous epoch bounce with StStale.
//
// Everything else (policy events, phases, 2PC decisions) is rebuilt
// from the stitched WALs by scheduler.Recover — see recover.go.

// Journal entry kinds.
const (
	jLease  uint8 = 1 // Stamp = new lease floor
	jAssign uint8 = 2 // Node/Origin/Proc/Arrival: ownership row
	jEpoch  uint8 = 3 // Node = epoch
)

// JEntry is one hub-journal record.
type JEntry struct {
	Kind    uint8
	Node    uint32 // owner node (jAssign) or epoch (jEpoch)
	Stamp   int64  // lease floor (jLease)
	Arrival int64  // submission arrival order (jAssign)
	Origin  string // process origin id (jAssign)
	Proc    string // incarnation id (jAssign)
}

// HubJournal is the hub's force-logged side channel. Append must be
// durable when it returns (force semantics); Entries replays the
// intact prefix after a crash.
type HubJournal interface {
	Append(e JEntry) error
	Entries() ([]JEntry, error)
	Close() error
}

// MemJournal is the in-memory journal used by tests and by clusters
// whose hub-crash model snapshots the journal at kill time.
type MemJournal struct {
	mu      sync.Mutex
	entries []JEntry
}

// NewMemJournal returns an empty in-memory journal.
func NewMemJournal() *MemJournal { return &MemJournal{} }

// Append records the entry.
func (j *MemJournal) Append(e JEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, e)
	return nil
}

// Entries returns a copy of the journal.
func (j *MemJournal) Entries() ([]JEntry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JEntry, len(j.entries))
	copy(out, j.entries)
	return out, nil
}

// Close is a no-op.
func (j *MemJournal) Close() error { return nil }

// FileJournal force-logs entries to an append-only file, fsyncing each
// append. The on-disk format is length-prefixed CRC-framed records; a
// torn tail (partial last record from a crash mid-write) is tolerated
// on replay, a corrupt interior record is not.
type FileJournal struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
}

// ErrJournalCorrupt reports a CRC mismatch before the journal tail.
var ErrJournalCorrupt = errors.New("federation: hub journal corrupt")

// OpenFileJournal opens (creating if needed) an append-only journal
// file. When noSync is true fsync is skipped (test speed).
func OpenFileJournal(path string, noSync bool) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileJournal{f: f, sync: !noSync}, nil
}

// encodeJEntry serializes one record body (without prefix or CRC).
func encodeJEntry(e JEntry) []byte {
	b := make([]byte, 0, 32+len(e.Origin)+len(e.Proc))
	b = append(b, e.Kind)
	b = binary.LittleEndian.AppendUint32(b, e.Node)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Stamp))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Arrival))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Origin)))
	b = append(b, e.Origin...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Proc)))
	b = append(b, e.Proc...)
	return b
}

// decodeJEntry parses one record body.
func decodeJEntry(b []byte) (JEntry, error) {
	var e JEntry
	if len(b) < 21 {
		return e, ErrTruncated
	}
	e.Kind = b[0]
	e.Node = binary.LittleEndian.Uint32(b[1:])
	e.Stamp = int64(binary.LittleEndian.Uint64(b[5:]))
	e.Arrival = int64(binary.LittleEndian.Uint64(b[13:]))
	rest := b[21:]
	for _, dst := range []*string{&e.Origin, &e.Proc} {
		if len(rest) < 2 {
			return e, ErrTruncated
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return e, ErrTruncated
		}
		*dst = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return e, ErrTrailing
	}
	return e, nil
}

// Append force-logs one entry: length prefix, CRC32 of the body, body,
// then fsync.
func (j *FileJournal) Append(e JEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	body := encodeJEntry(e)
	rec := make([]byte, 0, 8+len(body))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	rec = append(rec, body...)
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

// Entries replays the journal from the start, stopping silently at a
// torn tail and failing loudly on interior corruption.
func (j *FileJournal) Entries() ([]JEntry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return nil, err
	}
	var out []JEntry
	for off := 0; off < len(data); {
		if len(data)-off < 8 {
			break // torn tail: prefix cut mid-header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxFrame {
			return nil, fmt.Errorf("%w: record length %d at offset %d", ErrJournalCorrupt, n, off)
		}
		if len(data)-off-8 < n {
			break // torn tail: body cut short
		}
		body := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(body) != sum {
			if off+8+n == len(data) {
				break // torn tail: last record half-written
			}
			return nil, fmt.Errorf("%w: bad CRC at offset %d", ErrJournalCorrupt, off)
		}
		e, err := decodeJEntry(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
		}
		out = append(out, e)
		off += 8 + n
	}
	return out, nil
}

// Close closes the underlying file.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// JournalState is the fold of a journal replay: the facts a reopening
// hub seeds itself with before consuming the stitched WALs.
type JournalState struct {
	Epoch      uint32
	LeaseFloor int64
	// Owners maps origin → its journaled assignment (latest row wins;
	// re-assignment after lease expiry appends a new row).
	Owners map[string]JAssign
}

// JAssign is one folded ownership row.
type JAssign struct {
	Node    uint32
	Proc    string // latest incarnation id
	Arrival int64
}

// FoldJournal replays entries into the latest-wins state.
func FoldJournal(entries []JEntry) JournalState {
	st := JournalState{Owners: make(map[string]JAssign)}
	for _, e := range entries {
		switch e.Kind {
		case jLease:
			if e.Stamp > st.LeaseFloor {
				st.LeaseFloor = e.Stamp
			}
		case jAssign:
			st.Owners[e.Origin] = JAssign{Node: e.Node, Proc: e.Proc, Arrival: e.Arrival}
		case jEpoch:
			if e.Node > st.Epoch {
				st.Epoch = e.Node
			}
		}
	}
	return st
}
