package federation

import (
	"fmt"
	"sort"
	"sync"

	"transproc/internal/chaos"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// CrashSpec arms a crash point on one node's fault injector.
type CrashSpec struct {
	Node  int    // node index
	Point string // crash point name (fed:dispatch, twopc:after-decision, ...)
	Count int    // 1-based hit count (0 = first)
}

// Config configures a cluster run.
type Config struct {
	// Nodes is the scheduler-node count; processes are partitioned
	// round-robin by arrival rank.
	Nodes int
	Mode  policy.Mode
	// MaxRestarts per origin process; MaxStalls bounds cluster-wide
	// victim designations.
	MaxRestarts int
	MaxStalls   int
	Metrics     *metrics.Registry
	// Wire is the transport fault plan, shared by all nodes (fates are
	// keyed by node name, so nodes see independent streams).
	Wire chaos.Plan
	// Crash arms a node-side crash point.
	Crash CrashSpec
	// NodeWAL supplies per-node logs (default: fresh MemLogs).
	NodeWAL        func(node int) wal.Log
	DispatchBudget int
	ControlBudget  int
}

// RunResult is the aggregate of a cluster run.
type RunResult struct {
	// Outcomes by incarnation id across all nodes.
	Outcomes map[process.ID]*scheduler.Outcome
	// NodeErrs holds per-node driver errors (nil entries for clean exits).
	NodeErrs []error
	// Crashed flags nodes stopped by an injected crash point.
	Crashed []bool
}

// Cluster wires a hub, its TCP server and N scheduler nodes over one
// subsystem federation.
type Cluster struct {
	cfg    Config
	fed    *subsystem.Federation
	defs   []*process.Process
	hub    *Hub
	server *Server
	nodes  []*Node
	logs   []wal.Log
}

// NewCluster partitions the process definitions round-robin across
// cfg.Nodes scheduler nodes (arrival rank = definition index, matching
// the sequential oracle's admission order) and starts the hub server.
func NewCluster(fed *subsystem.Federation, defs []*process.Process, cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Mode == 0 {
		cfg.Mode = policy.PRED
	}
	hub, err := NewHub(fed, defs, HubConfig{Mode: cfg.Mode, MaxStalls: cfg.MaxStalls, Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	server, err := Serve(hub)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fed: fed, defs: defs, hub: hub, server: server}
	jobs := make([][]NodeJob, cfg.Nodes)
	for i, def := range defs {
		n := i % cfg.Nodes
		jobs[n] = append(jobs[n], NodeJob{Def: def, Arrival: i})
	}
	for i := 0; i < cfg.Nodes; i++ {
		var log wal.Log
		if cfg.NodeWAL != nil {
			log = cfg.NodeWAL(i)
		} else {
			log = wal.NewMemLog()
		}
		c.logs = append(c.logs, log)
		var inject func(string)
		if cfg.Crash.Point != "" && cfg.Crash.Node == i {
			inj := fault.NewInjector(fault.Plan{CrashAtPoint: cfg.Crash.Point, CrashAtCount: cfg.Crash.Count})
			inject = inj.Point
		}
		c.nodes = append(c.nodes, NewNode(NodeConfig{
			ID:   uint32(i + 1),
			Name: fmt.Sprintf("node%d", i),
			Addr: server.Addr(),
			WAL:  log, Jobs: jobs[i],
			MaxRestarts:    cfg.MaxRestarts,
			Wire:           cfg.Wire,
			DispatchBudget: cfg.DispatchBudget, ControlBudget: cfg.ControlBudget,
			Inject:  inject,
			Metrics: cfg.Metrics,
		}))
	}
	return c, nil
}

// Hub exposes the hub (diagnostics).
func (c *Cluster) Hub() *Hub { return c.hub }

// NodeLog returns node i's WAL.
func (c *Cluster) NodeLog(i int) wal.Log { return c.logs[i] }

// Run drives all nodes concurrently to completion. A node stopped by a
// crash point is declared dead at the hub (NodeDown), and the survivors
// keep draining — blocked ones through victim aborts — so the run
// always terminates.
func (c *Cluster) Run() *RunResult {
	res := &RunResult{
		Outcomes: make(map[process.ID]*scheduler.Outcome),
		NodeErrs: make([]error, len(c.nodes)),
		Crashed:  make([]bool, len(c.nodes)),
	}
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			err := n.Run()
			if n.Crashed {
				res.Crashed[i] = true
				c.hub.NodeDown(uint32(i + 1))
				return
			}
			res.NodeErrs[i] = err
		}(i, n)
	}
	wg.Wait()
	for _, n := range c.nodes {
		for id, out := range n.Outcomes {
			res.Outcomes[id] = out
		}
	}
	return res
}

// Close shuts the server down.
func (c *Cluster) Close() { c.server.Close() }

// Stitched merges the per-node WALs into one global history by sorting
// on the hub-issued stamps (stable, so a node's same-stamp records —
// which cannot exist — would keep their local order). Records appended
// by a later recovery pass carry stamp zero and land at the front;
// callers stitch before recovering.
func (c *Cluster) Stitched() ([]wal.Record, error) {
	var all []wal.Record
	for _, log := range c.logs {
		recs, err := log.Records()
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Stamp < all[j].Stamp })
	return all, nil
}

// StitchedLog materializes the stitched history into a fresh MemLog and
// returns it with the record count (the pre-recovery boundary for
// fault.CheckRecovered).
func (c *Cluster) StitchedLog() (*wal.MemLog, int, error) {
	recs, err := c.Stitched()
	if err != nil {
		return nil, 0, err
	}
	log := wal.NewMemLog()
	for _, r := range recs {
		r.LSN = 0
		if _, err := log.Append(r); err != nil {
			return nil, 0, err
		}
	}
	return log, len(recs), nil
}

// Recover runs the single-node crash recovery over the stitched global
// history and the surviving federation state — the composed recovery:
// per-node logs merge into one history the existing machinery consumes
// unchanged.
func (c *Cluster) Recover() (*wal.MemLog, int, *scheduler.RecoveryReport, error) {
	log, pre, err := c.StitchedLog()
	if err != nil {
		return nil, 0, nil, err
	}
	report, err := scheduler.Recover(c.fed, log, c.defs)
	return log, pre, report, err
}
