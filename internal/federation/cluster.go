package federation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"transproc/internal/chaos"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// CrashSpec arms a crash point on one node's fault injector.
type CrashSpec struct {
	Node  int    // node index
	Point string // crash point name (fed:dispatch, twopc:after-decision, ...)
	Count int    // 1-based hit count (0 = first)
}

// Config configures a cluster run.
type Config struct {
	// Nodes is the scheduler-node count; processes are partitioned
	// round-robin by arrival rank.
	Nodes int
	Mode  policy.Mode
	// MaxRestarts per origin process; MaxStalls bounds cluster-wide
	// victim designations.
	MaxRestarts int
	MaxStalls   int
	Metrics     *metrics.Registry
	// Wire is the transport fault plan, shared by all nodes (fates are
	// keyed by node name, so nodes see independent streams).
	Wire chaos.Plan
	// Crash arms a node-side crash point.
	Crash CrashSpec
	// HubKill arms a hub-side crash point (hub:dispatch, hub:decision,
	// hub:resolve — Node is ignored). When it fires, the hub dies
	// mid-handler (kill -9 semantics: no response, in-memory state
	// lost), the cluster monitor reopens a new incarnation from the
	// stitched WALs plus the hub journal, rebinds the same address, and
	// the nodes ride through via stale-epoch bounces and re-attachment.
	HubKill CrashSpec
	// HubJournal is the hub's force-logged side channel (default: a
	// fresh MemJournal).
	HubJournal HubJournal
	// LeaseTTL enables lease-based membership: a node silent for this
	// long is declared dead and its safe orphans re-homed. Zero
	// disables.
	LeaseTTL time.Duration
	// HeartbeatEvery makes nodes refresh their lease while otherwise
	// silent. Zero disables.
	HeartbeatEvery time.Duration
	// ReconnectAttempts bounds a client's consecutive connection
	// failures (0 = default 256) — must outlast a hub reopen.
	ReconnectAttempts int
	// OnReopen, if set, judges every hub reopen at its boundary (e.g.
	// fault.CheckRecovered over the reopen's stitched history). An error
	// fails the run.
	OnReopen func(*ReopenReport) error
	// OnHubDown / OnHubUp observe the hub availability window (the serve
	// layer degrades its readiness probe between them).
	OnHubDown func()
	OnHubUp   func()
	// NodeWAL supplies per-node logs (default: fresh MemLogs).
	NodeWAL        func(node int) wal.Log
	DispatchBudget int
	ControlBudget  int
}

// RunResult is the aggregate of a cluster run.
type RunResult struct {
	// Outcomes by incarnation id across all nodes.
	Outcomes map[process.ID]*scheduler.Outcome
	// NodeErrs holds per-node driver errors (nil entries for clean exits).
	NodeErrs []error
	// Crashed flags nodes stopped by an injected crash point.
	Crashed []bool
	// HubRestarts counts hub kill→reopen cycles ridden out.
	HubRestarts int
	// HubErr reports a failed reopen (or a failed OnReopen judge).
	HubErr error
	// Reattached sums the nodes' hub-restart recovery rounds.
	Reattached int
}

// Cluster wires a hub, its TCP server and N scheduler nodes over one
// subsystem federation.
type Cluster struct {
	cfg    Config
	fed    *subsystem.Federation
	defs   []*process.Process
	nodes  []*Node
	hubCfg HubConfig

	// mu guards the hub/server/log fields the reopen cycle swaps while
	// node goroutines are still running.
	mu          sync.Mutex
	hub         *Hub
	server      *Server
	logs        []wal.Log
	hubRestarts int
	hubErr      error
}

// NewCluster partitions the process definitions round-robin across
// cfg.Nodes scheduler nodes (arrival rank = definition index, matching
// the sequential oracle's admission order) and starts the hub server.
func NewCluster(fed *subsystem.Federation, defs []*process.Process, cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Mode == 0 {
		cfg.Mode = policy.PRED
	}
	if cfg.HubJournal == nil {
		cfg.HubJournal = NewMemJournal()
	}
	hubCfg := HubConfig{
		Mode: cfg.Mode, MaxStalls: cfg.MaxStalls, Metrics: cfg.Metrics,
		Journal: cfg.HubJournal, LeaseTTL: cfg.LeaseTTL,
	}
	var hubInject func(string)
	if cfg.HubKill.Point != "" {
		inj := fault.NewInjector(fault.Plan{CrashAtPoint: cfg.HubKill.Point, CrashAtCount: cfg.HubKill.Count})
		hubInject = inj.Point
	}
	firstCfg := hubCfg
	firstCfg.Inject = hubInject // only the first incarnation is armed
	hub, err := NewHub(fed, defs, firstCfg)
	if err != nil {
		return nil, err
	}
	server, err := Serve(hub)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fed: fed, defs: defs, hub: hub, server: server, hubCfg: hubCfg}
	defsByID := make(map[string]*process.Process, len(defs))
	for _, d := range defs {
		defsByID[string(d.ID)] = d
	}
	jobs := make([][]NodeJob, cfg.Nodes)
	for i, def := range defs {
		n := i % cfg.Nodes
		jobs[n] = append(jobs[n], NodeJob{Def: def, Arrival: i})
	}
	for i := 0; i < cfg.Nodes; i++ {
		var log wal.Log
		if cfg.NodeWAL != nil {
			log = cfg.NodeWAL(i)
		} else {
			log = wal.NewMemLog()
		}
		c.logs = append(c.logs, log)
		var inject func(string)
		if cfg.Crash.Point != "" && cfg.Crash.Node == i {
			inj := fault.NewInjector(fault.Plan{CrashAtPoint: cfg.Crash.Point, CrashAtCount: cfg.Crash.Count})
			inject = inj.Point
		}
		c.nodes = append(c.nodes, NewNode(NodeConfig{
			ID:   uint32(i + 1),
			Name: fmt.Sprintf("node%d", i),
			Addr: server.Addr(),
			WAL:  log, Jobs: jobs[i],
			MaxRestarts:    cfg.MaxRestarts,
			Wire:           cfg.Wire,
			DispatchBudget: cfg.DispatchBudget, ControlBudget: cfg.ControlBudget,
			Inject:            inject,
			Metrics:           cfg.Metrics,
			Defs:              defsByID,
			HeartbeatEvery:    cfg.HeartbeatEvery,
			ReconnectAttempts: cfg.ReconnectAttempts,
		}))
	}
	return c, nil
}

// Hub exposes the current hub incarnation (diagnostics).
func (c *Cluster) Hub() *Hub {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hub
}

// NodeLog returns node i's WAL.
func (c *Cluster) NodeLog(i int) wal.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logs[i]
}

// Run drives all nodes concurrently to completion. A node stopped by a
// crash point is declared dead at the hub (NodeDown), and the survivors
// keep draining — blocked ones through victim aborts — so the run
// always terminates. A monitor goroutine watches for a hub kill and
// runs the reopen cycle (close server → recover from stitched WALs +
// journal → rebind the same address); with LeaseTTL set it also sweeps
// membership leases.
func (c *Cluster) Run() *RunResult {
	res := &RunResult{
		Outcomes: make(map[process.ID]*scheduler.Outcome),
		NodeErrs: make([]error, len(c.nodes)),
		Crashed:  make([]bool, len(c.nodes)),
	}
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go c.monitor(stop, &monWG)
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			err := n.Run()
			if n.Crashed {
				res.Crashed[i] = true
				// With leases enabled, lease expiry IS the death
				// detector: the hub notices the silence on its own.
				// Without leases the driver declares the death, as a
				// deployment's supervisor would.
				if c.cfg.LeaseTTL <= 0 {
					c.Hub().NodeDown(uint32(i + 1))
				}
				return
			}
			res.NodeErrs[i] = err
		}(i, n)
	}
	wg.Wait()
	close(stop)
	monWG.Wait()
	for _, n := range c.nodes {
		for id, out := range n.Outcomes {
			res.Outcomes[id] = out
		}
		res.Reattached += n.Reattached
	}
	c.mu.Lock()
	res.HubRestarts = c.hubRestarts
	res.HubErr = c.hubErr
	c.mu.Unlock()
	return res
}

// monitor rides shotgun on a run: it reopens the hub when a kill point
// fires and periodically sweeps membership leases.
func (c *Cluster) monitor(stop chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	var sweep <-chan time.Time
	if c.cfg.LeaseTTL > 0 {
		t := time.NewTicker(c.cfg.LeaseTTL / 2)
		defer t.Stop()
		sweep = t.C
	}
	for {
		h := c.Hub()
		select {
		case <-stop:
			return
		case <-sweep:
			c.Hub().ExpireLeases()
		case <-h.KilledCh():
			if err := c.reopen(); err != nil {
				c.mu.Lock()
				c.hubErr = err
				c.mu.Unlock()
				return
			}
		}
	}
}

// reopen is the hub restart cycle after a kill: sever every client
// (in-flight handlers drain under Server.Close), give the nodes a
// moment to land force-logs for responses already on the wire (both
// sides of that race are legal crash windows — the reopen's recovery
// resolves either), rebuild the hub from the stitched WALs plus the
// journal, file the re-stamped recovery tail as one more log for future
// stitches, and rebind the dead incarnation's address.
func (c *Cluster) reopen() error {
	if c.cfg.OnHubDown != nil {
		c.cfg.OnHubDown()
	}
	c.mu.Lock()
	srv := c.server
	logs := append([]wal.Log(nil), c.logs...)
	c.mu.Unlock()
	addr := srv.Addr()
	srv.Close()
	time.Sleep(5 * time.Millisecond)
	hub, rep, err := ReopenHub(c.fed, c.defs, logs, c.hubCfg)
	if err != nil {
		return err
	}
	if c.cfg.OnReopen != nil {
		if err := c.cfg.OnReopen(rep); err != nil {
			return err
		}
	}
	tailLog := wal.NewMemLog()
	for _, r := range rep.Tail {
		r.LSN = 0
		if _, err := tailLog.Append(r); err != nil {
			return err
		}
	}
	// Rebind the same address; the dead listener can take a moment to
	// release it.
	var server *Server
	for i := 0; ; i++ {
		server, err = ServeAddr(hub, addr)
		if err == nil {
			break
		}
		if i >= 200 {
			return fmt.Errorf("federation: reopen rebind %s: %w", addr, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.mu.Lock()
	c.hub = hub
	c.server = server
	c.logs = append(c.logs, tailLog)
	c.hubRestarts++
	c.mu.Unlock()
	if c.cfg.OnHubUp != nil {
		c.cfg.OnHubUp()
	}
	return nil
}

// Close shuts the server down.
func (c *Cluster) Close() {
	c.mu.Lock()
	srv := c.server
	c.mu.Unlock()
	srv.Close()
}

// Stitched merges the per-node WALs (plus any reopen recovery tails)
// into one global history by sorting on the hub-issued stamps (stable,
// so a node's same-stamp records — which cannot exist — would keep
// their local order). Records appended by a later recovery pass carry
// stamp zero and land at the front; callers stitch before recovering.
func (c *Cluster) Stitched() ([]wal.Record, error) {
	c.mu.Lock()
	logs := append([]wal.Log(nil), c.logs...)
	c.mu.Unlock()
	var all []wal.Record
	for _, log := range logs {
		recs, err := log.Records()
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Stamp < all[j].Stamp })
	return all, nil
}

// StitchedLog materializes the stitched history into a fresh MemLog and
// returns it with the record count (the pre-recovery boundary for
// fault.CheckRecovered).
func (c *Cluster) StitchedLog() (*wal.MemLog, int, error) {
	recs, err := c.Stitched()
	if err != nil {
		return nil, 0, err
	}
	log := wal.NewMemLog()
	for _, r := range recs {
		r.LSN = 0
		if _, err := log.Append(r); err != nil {
			return nil, 0, err
		}
	}
	return log, len(recs), nil
}

// Recover runs the single-node crash recovery over the stitched global
// history and the surviving federation state — the composed recovery:
// per-node logs merge into one history the existing machinery consumes
// unchanged.
func (c *Cluster) Recover() (*wal.MemLog, int, *scheduler.RecoveryReport, error) {
	log, pre, err := c.StitchedLog()
	if err != nil {
		return nil, 0, nil, err
	}
	report, err := scheduler.Recover(c.fed, log, c.defs)
	return log, pre, report, err
}
