package federation_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/chaos"
	"transproc/internal/fault"
	"transproc/internal/federation"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/workload"
)

// failRule deterministically fails one service for one origin process;
// the subsystem keys the rule by origin, so it persists across
// restarts, making each origin's terminal fate interleaving-free.
type failRule struct {
	origin  string
	service string
}

// chooseRules picks, for roughly a third of the processes, one
// compensatable or pivot service to permanently fail (mirroring the
// runtime differential battery's rule generator).
func chooseRules(w *workload.Workload, seed int64) []failRule {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	var rules []failRule
	for _, j := range w.Jobs {
		if rng.Float64() >= 0.35 {
			continue
		}
		var candidates []string
		for _, svc := range scheduler.Footprint(j.Proc) {
			spec, ok := w.Fed.Spec(svc)
			if ok && (spec.Kind == activity.Compensatable || spec.Kind == activity.Pivot) {
				candidates = append(candidates, svc)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rules = append(rules, failRule{
			origin:  string(j.Proc.ID),
			service: candidates[rng.Intn(len(candidates))],
		})
	}
	return rules
}

func injectRules(t *testing.T, fed *subsystem.Federation, rules []failRule) {
	t.Helper()
	for _, r := range rules {
		sub, ok := fed.Owner(r.service)
		if !ok {
			t.Fatalf("no owner for service %s", r.service)
		}
		sub.FailService(r.origin, r.service)
	}
}

// fedProfile mirrors the runtime differential profile: deterministic
// failures only, injected per (origin, service), so outcomes do not
// depend on the interleaving.
func fedProfile(seed int64) workload.Profile {
	p := workload.DefaultProfile(seed)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0
	return p
}

func defsOf(w *workload.Workload) []*process.Process {
	defs := make([]*process.Process, len(w.Jobs))
	for i, j := range w.Jobs {
		defs[i] = j.Proc
	}
	return defs
}

// checkStitched asserts the stitched cross-node history is globally
// prefix-reducible and leaves no transaction in doubt.
func checkStitched(t *testing.T, c *federation.Cluster, fed *subsystem.Federation, defs []*process.Process) {
	t.Helper()
	recs, err := c.Stitched()
	if err != nil {
		t.Fatalf("stitching WALs: %v", err)
	}
	table, err := fed.ConflictTable()
	if err != nil {
		t.Fatalf("conflict table: %v", err)
	}
	sched, err := fault.ScheduleFromWAL(table, defs, recs, len(recs))
	if err != nil {
		t.Fatalf("reconstructing stitched schedule: %v", err)
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		t.Fatalf("PRED: %v", err)
	}
	if !ok {
		t.Fatalf("stitched schedule not prefix-reducible (prefix %d):\n%s", at, sched)
	}
	if doubt := fed.InDoubt(); len(doubt) > 0 {
		t.Fatalf("in-doubt transactions after run: %v", doubt)
	}
}

// TestClusterBasic drives a two-node cluster over a failure-free
// workload: every process must commit and the stitched schedule must be
// prefix-reducible.
func TestClusterBasic(t *testing.T) {
	w := workload.MustGenerate(fedProfile(1))
	defs := defsOf(w)
	c, err := federation.NewCluster(w.Fed, defs, federation.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.Run()
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			t.Fatalf("node %d: %v", i, nerr)
		}
	}
	if len(res.Outcomes) != len(defs) {
		t.Fatalf("got %d outcomes, want %d", len(res.Outcomes), len(defs))
	}
	for id, out := range res.Outcomes {
		if !out.Committed {
			t.Errorf("process %s did not commit: %+v", id, out)
		}
	}
	checkStitched(t, c, w.Fed, defs)
}

// TestClusterFailures injects deterministic permanent failures and
// checks every origin still reaches a terminal fate across 1, 2 and 4
// nodes, with the stitched history PRED each time.
func TestClusterFailures(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes%d", nodes), func(t *testing.T) {
			t.Parallel()
			w := workload.MustGenerate(fedProfile(3))
			defs := defsOf(w)
			injectRules(t, w.Fed, chooseRules(w, 3))
			c, err := federation.NewCluster(w.Fed, defs, federation.Config{Nodes: nodes, MaxRestarts: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			res := c.Run()
			for i, nerr := range res.NodeErrs {
				if nerr != nil {
					t.Fatalf("node %d: %v", i, nerr)
				}
			}
			seen := make(map[string]bool)
			for id, out := range res.Outcomes {
				origin := string(id)
				if i := strings.IndexByte(origin, '+'); i >= 0 {
					origin = origin[:i]
				}
				if out.Committed || out.Aborted {
					seen[origin] = true
				}
			}
			if len(seen) != len(defs) {
				t.Fatalf("only %d/%d origins reached a terminal fate", len(seen), len(defs))
			}
			checkStitched(t, c, w.Fed, defs)
		})
	}
}

// TestClusterCascadeMode exercises PREDCascade across node boundaries.
func TestClusterCascadeMode(t *testing.T) {
	w := workload.MustGenerate(fedProfile(5))
	defs := defsOf(w)
	injectRules(t, w.Fed, chooseRules(w, 5))
	c, err := federation.NewCluster(w.Fed, defs, federation.Config{Nodes: 2, Mode: policy.PREDCascade, MaxRestarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.Run()
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			t.Fatalf("node %d: %v", i, nerr)
		}
	}
	checkStitched(t, c, w.Fed, defs)
}

// TestClusterDedup runs with a wire plan that duplicates and loses
// replies: the hub's dedup table must absorb both, with outcomes and
// PRED intact. Drops and duplicates must actually have occurred.
func TestClusterDedup(t *testing.T) {
	reg := metrics.New()
	w := workload.MustGenerate(fedProfile(7))
	defs := defsOf(w)
	plan := chaos.Plan{
		Seed:       7,
		PTransient: 0.05, // lost request
		PTimeout:   0.10, // lost reply; half executed anyway (dedup path)
		PDuplicate: 0.10,
	}
	c, err := federation.NewCluster(w.Fed, defs, federation.Config{
		Nodes: 2, Metrics: reg, Wire: plan,
		DispatchBudget: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.Run()
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			t.Fatalf("node %d: %v", i, nerr)
		}
	}
	for id, out := range res.Outcomes {
		if !out.Committed {
			t.Errorf("process %s did not commit under wire chaos: %+v", id, out)
		}
	}
	checkStitched(t, c, w.Fed, defs)
	if reg.Counter(metrics.FedWireDrops) == 0 {
		t.Error("wire plan produced no drops")
	}
	if reg.Counter(metrics.FedWireDuplicates) == 0 {
		t.Error("wire plan produced no duplicates")
	}
	if reg.Counter(metrics.FedDedupReplays) == 0 {
		t.Error("lost replies produced no dedup replays")
	}
}
