package federation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// ReopenReport is the result of a hub reopen: the stitched history the
// recovery pass consumed and extended, the pre-crash boundary, the
// recovery report, and the re-stamped recovery tail.
type ReopenReport struct {
	// Log is the stitched pre-crash history with the recovery-appended
	// tail (tail records carry stamp zero here, exactly as a single-node
	// recovery pass leaves them — fault.CheckRecovered consumes it with
	// Pre as the boundary).
	Log *wal.MemLog
	// Pre is the pre-crash record count.
	Pre int
	// Report is the composed recovery's report.
	Report *scheduler.RecoveryReport
	// Tail holds copies of the recovery-appended records re-stamped with
	// fresh post-reopen stamps, so a later stitch across the whole
	// multi-incarnation run sorts them after every pre-crash record and
	// before every new-session record. The cluster files them as one
	// more log in its stitch set.
	Tail []wal.Record
}

// ReopenHub rebuilds a coordination hub after kill -9 of the previous
// incarnation, from what survived: the nodes' force-logged WALs, the
// subsystem federation (its own durable state), and the hub journal.
// The reopen is stop-the-world — it runs the composed crash recovery
// over the stitched history, which settles EVERY non-terminal process
// (in-doubt 2PC resolved by presumed abort/commit, group aborts
// compensated in reverse global order, orphaned subsystem transactions
// aborted), so the new incarnation starts with an empty policy state
// that the recovered history provably does not constrain. Nodes then
// re-hello and learn each in-flight process's settled fate through
// MsgReattach.
//
// The journal contributes the three facts the WALs cannot: the stamp
// lease floor (the counter resumes above every stamp the dead hub may
// have issued, acked or not), the epoch (bumped, so stale frames
// bounce), and the ownership table (diagnostics; re-attachment is
// driven by the nodes). A nil journal falls back to the highest
// stitched stamp — safe only when no issued-but-unacked stamp can
// exist, i.e. outside torture runs.
func ReopenHub(fed *subsystem.Federation, defs []*process.Process, logs []wal.Log, cfg HubConfig) (*Hub, *ReopenReport, error) {
	var jst JournalState
	if cfg.Journal != nil {
		entries, err := cfg.Journal.Entries()
		if err != nil {
			return nil, nil, fmt.Errorf("federation: reopen journal replay: %w", err)
		}
		jst = FoldJournal(entries)
	}

	// Stitch the per-node WALs into the single global history the
	// existing recovery machinery consumes unchanged.
	var all []wal.Record
	for _, l := range logs {
		recs, err := l.Records()
		if err != nil {
			return nil, nil, fmt.Errorf("federation: reopen stitch: %w", err)
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Stamp < all[j].Stamp })
	log := wal.NewMemLog()
	var maxStamp int64
	for _, r := range all {
		r.LSN = 0
		if _, err := log.Append(r); err != nil {
			return nil, nil, err
		}
		if r.Stamp > maxStamp {
			maxStamp = r.Stamp
		}
	}
	pre := len(all)

	report, err := scheduler.Recover(fed, log, defs)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: reopen recovery: %w", err)
	}

	// New incarnation: epoch bumped (journaled first, so a second crash
	// cannot resurrect this epoch either), stamp counter resumed above
	// everything the dead hub may have handed out.
	cfg.Epoch = jst.Epoch + 1
	h, err := NewHub(fed, defs, cfg)
	if err != nil {
		return nil, nil, err
	}
	h.stamp = maxStamp
	if jst.LeaseFloor > h.stamp {
		h.stamp = jst.LeaseFloor
	}
	h.leaseFloor = jst.LeaseFloor
	if h.journal != nil {
		if err := h.journal.Append(JEntry{Kind: jEpoch, Node: cfg.Epoch}); err != nil {
			return nil, nil, fmt.Errorf("federation: reopen epoch journal: %w", err)
		}
	}

	// Re-stamp the recovery tail into the new incarnation's stamp space:
	// the full-run stitched order becomes [pre-crash | recovery tail |
	// new session], which is exactly the order the composed final
	// recovery (and the judges) must see the effects in.
	recs, err := log.Records()
	if err != nil {
		return nil, nil, err
	}
	tail := make([]wal.Record, len(recs)-pre)
	copy(tail, recs[pre:])
	for i := range tail {
		tail[i].Stamp = h.next()
	}

	// Recovered fates (every process in the history is terminal now) and
	// the restart-suffix floor, so post-reopen grants never collide with
	// pre-crash incarnation ids.
	img, err := wal.Analyze(recs)
	if err != nil {
		return nil, nil, err
	}
	h.fates = make(map[process.ID]bool, len(img))
	for name, im := range img {
		id := process.ID(name)
		h.fates[id] = im.Terminated && im.TerminatedCommitted
		if s := restartSuffix(name); s > 0 {
			origin := string(scheduler.Origin(id))
			if s > h.maxSuffix[origin] {
				h.maxSuffix[origin] = s
			}
		}
	}
	// The group abort's terminate records all read as abort completions,
	// but a forward-recovered (F-REC) process completed PAST its pivot —
	// its forward work stands, so its fate is committed. Getting this
	// wrong would grant the origin a restart and double-execute a
	// committed process.
	for _, id := range report.ForwardRecovered {
		h.fates[id] = true
	}
	h.reopened = true
	h.reg.Inc(metrics.FedHubReopens)

	return h, &ReopenReport{Log: log, Pre: pre, Report: report, Tail: tail}, nil
}

// restartSuffix parses the numeric suffix of a restart incarnation id
// ("p3+r2" → 2); zero for an original incarnation.
func restartSuffix(id string) int {
	i := strings.LastIndex(id, "+r")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+2:])
	if err != nil {
		return 0
	}
	return n
}
