package federation

import (
	"fmt"
	"testing"
	"time"

	"transproc/internal/process"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/workload"
)

// unitWorld builds a small failure-free world for direct Hub.Handle
// tests.
func unitWorld(t *testing.T) (*subsystem.Federation, []*process.Process) {
	t.Helper()
	p := workload.DefaultProfile(11)
	p.Processes = 6
	p.PermFailureProb = 0
	p.TransientFailureProb = 0
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]*process.Process, len(w.Jobs))
	for i, j := range w.Jobs {
		defs[i] = j.Proc
	}
	return w.Fed, defs
}

func unitHub(t *testing.T, cfg HubConfig) (*Hub, []*process.Process) {
	t.Helper()
	fed, defs := unitWorld(t)
	if cfg.Mode != policy.PRED && cfg.Mode != policy.PREDCascade {
		cfg.Mode = policy.PRED
	}
	h, err := NewHub(fed, defs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, defs
}

// hubCaller issues frames against a hub with fresh request ids, the way
// one connected node would.
type hubCaller struct {
	h    *Hub
	node uint32
	req  uint64
}

func (c *hubCaller) call(f *Frame) *Frame {
	f.Node = c.node
	f.Epoch = c.h.Epoch()
	c.req++
	f.Req = c.req<<8 | uint64(c.node)
	return c.h.Handle(f)
}

func (c *hubCaller) hello() *Frame {
	return c.h.Handle(&Frame{Type: MsgHello, Node: c.node, Origin: fmt.Sprintf("n%d", c.node)})
}

// TestHubStaleFrameBounces pins the incarnation and membership gates:
// a frame carrying a previous hub epoch bounces StStale, as does any
// non-hello frame from a dead node; MsgHello alone bypasses both and
// revives a dead node.
func TestHubStaleFrameBounces(t *testing.T) {
	h, _ := unitHub(t, HubConfig{Epoch: 7})
	c := &hubCaller{h: h, node: 1}
	if got := c.hello(); got.Status != StOK {
		t.Fatalf("hello: %+v", got)
	}

	// Previous-epoch frame: stale, and NOT cached (the retry after
	// re-hello must not be wedged behind a poisoned dedup entry).
	stale := &Frame{Type: MsgHeartbeat, Node: 1, Epoch: 6, Req: 9999}
	if got := h.Handle(stale); got.Status != StStale {
		t.Fatalf("old-epoch frame: got %v, want StStale", got.Status)
	}
	if got := h.Handle(&Frame{Type: MsgHeartbeat, Node: 1, Epoch: 7, Req: 9999}); got.Status != StOK {
		t.Fatalf("same id at the current epoch after a stale bounce: got %v, want StOK", got.Status)
	}

	// Unknown node (never helloed): hard error, not a silent grant.
	if got := h.Handle(&Frame{Type: MsgHeartbeat, Node: 2, Epoch: 7, Req: 1}); got.Status != StError {
		t.Fatalf("frame from unknown node: got %v, want StError", got.Status)
	}

	// Dead node: every non-hello frame bounces stale until a re-hello
	// revives the membership.
	h.NodeDown(1)
	if got := c.call(&Frame{Type: MsgHeartbeat}); got.Status != StStale {
		t.Fatalf("frame from dead node: got %v, want StStale", got.Status)
	}
	if got := c.hello(); got.Status != StOK {
		t.Fatalf("reviving hello: %+v", got)
	}
	if got := c.call(&Frame{Type: MsgHeartbeat}); got.Status != StOK {
		t.Fatalf("frame after revival: got %v, want StOK", got.Status)
	}
}

// TestHubAdmitReplayCarriesFate pins the idempotent-admit contract: a
// replayed admit of a known incarnation (a lost response re-asked
// outside the dedup window) answers Flag2 without a second start stamp,
// and once the incarnation is terminal the replay carries its fate so
// the returning node files it instead of driving a dead incarnation.
func TestHubAdmitReplayCarriesFate(t *testing.T) {
	h, defs := unitHub(t, HubConfig{})
	c := &hubCaller{h: h, node: 1}
	c.hello()

	committed, aborted := string(defs[0].ID), string(defs[1].ID)
	for _, origin := range []string{committed, aborted} {
		first := c.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin})
		if first.Status != StOK || first.Flag2 || first.Stamp == 0 {
			t.Fatalf("first admit of %s: %+v", origin, first)
		}
		replay := c.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin})
		if replay.Status != StOK || !replay.Flag2 {
			t.Fatalf("live replay of %s: %+v", origin, replay)
		}
		if replay.Extra != ReattachUnknown {
			t.Fatalf("live replay of %s carries fate %d, want none", origin, replay.Extra)
		}
	}

	if got := c.call(&Frame{Type: MsgTerminate, Proc: committed, Flag: true}); got.Status != StOK {
		t.Fatalf("terminate: %+v", got)
	}
	if got := c.call(&Frame{Type: MsgTerminate, Proc: aborted, Flag: false}); got.Status != StOK {
		t.Fatalf("terminate: %+v", got)
	}

	if got := c.call(&Frame{Type: MsgAdmit, Proc: committed, Origin: committed}); !got.Flag2 || got.Extra != ReattachCommitted {
		t.Errorf("replayed admit of a committed incarnation: %+v, want Flag2 + ReattachCommitted", got)
	}
	if got := c.call(&Frame{Type: MsgAdmit, Proc: aborted, Origin: aborted}); !got.Flag2 || got.Extra != ReattachAborted {
		t.Errorf("replayed admit of an aborted incarnation: %+v, want Flag2 + ReattachAborted", got)
	}
}

// TestHubReattachFates walks a node's post-reconnect fate query through
// every answer: unknown, live, committed, aborted (with and without a
// restart grant), and parked-as-zombie.
func TestHubReattachFates(t *testing.T) {
	h, defs := unitHub(t, HubConfig{})
	c1 := &hubCaller{h: h, node: 1}
	c2 := &hubCaller{h: h, node: 2}
	c1.hello()
	c2.hello()

	if got := c1.call(&Frame{Type: MsgReattach, Proc: "never-admitted"}); got.Extra != ReattachUnknown {
		t.Fatalf("unknown incarnation: fate %d, want ReattachUnknown", got.Extra)
	}

	origin := string(defs[0].ID)
	c1.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin})
	if got := c1.call(&Frame{Type: MsgReattach, Proc: origin}); got.Extra != ReattachLive {
		t.Fatalf("running incarnation: fate %d, want ReattachLive", got.Extra)
	}

	c1.call(&Frame{Type: MsgTerminate, Proc: origin, Flag: true})
	if got := c1.call(&Frame{Type: MsgReattach, Proc: origin}); got.Extra != ReattachCommitted {
		t.Fatalf("committed incarnation: fate %d, want ReattachCommitted", got.Extra)
	}

	// A zombie (owner died with committed history) must answer Parked:
	// the node stops driving it and recovery finishes it.
	zorigin := string(defs[1].ID)
	c1.call(&Frame{Type: MsgAdmit, Proc: zorigin, Origin: zorigin})
	h.byID[process.ID(zorigin)].committedEvents = 1 // not a safe orphan
	h.NodeDown(1)
	if got := c2.call(&Frame{Type: MsgReattach, Proc: zorigin}); got.Extra != ReattachParked {
		t.Fatalf("zombie incarnation: fate %d, want ReattachParked", got.Extra)
	}
}

// TestHubRestartGrantSingleLineage pins the at-most-one-live-incarnation
// rule: an aborted origin gets exactly one outstanding restart grant —
// further requests are refused until the granted incarnation is
// admitted (or otherwise retired), because a forked lineage would
// double-execute the process.
func TestHubRestartGrantSingleLineage(t *testing.T) {
	h, defs := unitHub(t, HubConfig{})
	c1 := &hubCaller{h: h, node: 1}
	c2 := &hubCaller{h: h, node: 2}
	c1.hello()
	c2.hello()

	origin := string(defs[0].ID)
	c1.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin})
	c1.call(&Frame{Type: MsgTerminate, Proc: origin, Flag: false})

	// Fate query without a restart request: no grant.
	if got := c1.call(&Frame{Type: MsgReattach, Proc: origin}); got.Extra != ReattachAborted || got.Flag {
		t.Fatalf("fate-only reattach: %+v, want ReattachAborted without a grant", got)
	}

	grant := c1.call(&Frame{Type: MsgReattach, Proc: origin, Flag: true})
	wantID := origin + "+r1"
	if !grant.Flag || grant.Victim != wantID || grant.Stamp2 != 1 {
		t.Fatalf("first restart request: %+v, want grant of %s", grant, wantID)
	}

	// The grant is un-admitted: a second requester (say the origin's
	// old owner bouncing back through another reconnect) must NOT fork
	// the lineage.
	if got := c2.call(&Frame{Type: MsgReattach, Proc: origin, Flag: true}); got.Flag {
		t.Fatalf("second restart request while one grant is pending: %+v, want no grant", got)
	}

	// Admitting the granted incarnation clears the pending marker; once
	// it aborts too, the next request is granted the next suffix.
	if got := c2.call(&Frame{Type: MsgAdmit, Proc: wantID, Origin: origin, Extra: 1}); got.Status != StOK {
		t.Fatalf("admit of granted incarnation: %+v", got)
	}
	if got := c1.call(&Frame{Type: MsgReattach, Proc: origin, Flag: true}); got.Flag {
		t.Fatalf("restart request while %s is live: %+v, want no grant", wantID, got)
	}
	c2.call(&Frame{Type: MsgTerminate, Proc: wantID, Flag: false})
	if got := c1.call(&Frame{Type: MsgReattach, Proc: origin, Flag: true}); !got.Flag || got.Victim != origin+"+r2" {
		t.Fatalf("restart request after %s aborted: %+v, want grant of %s+r2", wantID, got, origin)
	}
}

// TestHubParkedBounces pins the StPark contract: a parked process's
// racing dispatch and terminate RPCs bounce with StPark naming the
// process, and a dispatch for a retired incarnation is a hard error.
func TestHubParkedBounces(t *testing.T) {
	h, defs := unitHub(t, HubConfig{})
	c := &hubCaller{h: h, node: 1}
	c.hello()

	origin := string(defs[0].ID)
	c.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin})
	h.byID[process.ID(origin)].phase = hubParked

	if got := c.call(&Frame{Type: MsgDispatch, Proc: origin, Local: 1}); got.Status != StPark || got.Victim != origin {
		t.Errorf("dispatch against a parked process: %+v, want StPark naming it", got)
	}
	if got := c.call(&Frame{Type: MsgTerminate, Proc: origin, Flag: false}); got.Status != StPark || got.Victim != origin {
		t.Errorf("terminate against a parked process: %+v, want StPark naming it", got)
	}

	done := string(defs[1].ID)
	c.call(&Frame{Type: MsgAdmit, Proc: done, Origin: done})
	c.call(&Frame{Type: MsgTerminate, Proc: done, Flag: true})
	if got := c.call(&Frame{Type: MsgDispatch, Proc: done, Local: 1}); got.Status != StError {
		t.Errorf("dispatch against a retired incarnation: %+v, want StError", got)
	}
	if got := c.call(&Frame{Type: MsgDispatch, Proc: "ghost", Local: 1}); got.Status != StError {
		t.Errorf("dispatch for an unknown process: %+v, want StError", got)
	}
}

// TestHubCancelFetchOrVoid pins the ambiguous-timeout protocol: a
// cancel for an executed request replays its cached response (Flag2
// set); a cancel for a never-executed request voids the id so a
// straggling delivery can never execute later.
func TestHubCancelFetchOrVoid(t *testing.T) {
	h, _ := unitHub(t, HubConfig{})
	c := &hubCaller{h: h, node: 1}
	c.hello()

	// Executed request → fetch path.
	exec := &Frame{Type: MsgHeartbeat}
	if got := c.call(exec); got.Status != StOK {
		t.Fatalf("heartbeat: %+v", got)
	}
	fetch := c.call(&Frame{Type: MsgCancel, Gen: int64(exec.Req)})
	if fetch.Status != StOK || !fetch.Flag2 {
		t.Fatalf("cancel of an executed request: %+v, want cached replay (Flag2)", fetch)
	}

	// Never-executed request → void path.
	const ghost = uint64(0xDEAD)
	void := c.call(&Frame{Type: MsgCancel, Gen: int64(ghost)})
	if void.Status != StOK || void.Flag2 {
		t.Fatalf("cancel of an unseen request: %+v, want voided (no Flag2)", void)
	}
	straggler := h.Handle(&Frame{Type: MsgHeartbeat, Node: 1, Epoch: h.Epoch(), Req: ghost})
	if straggler.Status != StError || straggler.Err != "voided" {
		t.Fatalf("straggling delivery of a voided request: %+v, want the void marker", straggler)
	}
}

// TestHubLeaseExpiry drives the silence-based death detector with a
// pinned clock: a node that stops heartbeating past the TTL is expired,
// its safe orphan is retired and re-offered to the survivor, and a
// revived owner learns the retirement through its admit replay — the
// exact path that once forked a lineage.
func TestHubLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	h, defs := unitHub(t, HubConfig{
		LeaseTTL: 100 * time.Millisecond,
		Now:      func() time.Time { return now },
	})
	c1 := &hubCaller{h: h, node: 1}
	c2 := &hubCaller{h: h, node: 2}
	c1.hello()
	c2.hello()

	origin := string(defs[0].ID)
	if got := c2.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin}); got.Status != StOK {
		t.Fatalf("admit: %+v", got)
	}

	// Node 1 keeps heartbeating; node 2 goes silent.
	now = now.Add(60 * time.Millisecond)
	c1.call(&Frame{Type: MsgHeartbeat})
	now = now.Add(60 * time.Millisecond)
	h.ExpireLeases()

	if got := c1.call(&Frame{Type: MsgHeartbeat}); got.Status != StOK {
		t.Errorf("heartbeating node expired: %+v", got)
	}
	if got := c2.call(&Frame{Type: MsgHeartbeat}); got.Status != StStale {
		t.Errorf("silent node not expired: %+v, want StStale", got)
	}

	// The zero-committed-events orphan was retired for re-homing: an
	// adoption offer is queued on the survivor and its origin is marked
	// pending, so no reattach can fork the lineage meanwhile.
	if n := len(h.nodes[1].adopts); n != 1 {
		t.Fatalf("survivor holds %d adoption offers, want 1", n)
	}
	if offer := h.nodes[1].adopts[0]; string(offer.origin) != origin || offer.suffix != 1 {
		t.Fatalf("adoption offer %+v, want origin %s at suffix 1", offer, origin)
	}
	if !h.pending[origin] {
		t.Error("re-homed origin not marked pending")
	}
	if got := c1.call(&Frame{Type: MsgReattach, Proc: origin, Flag: true}); got.Flag {
		t.Errorf("restart granted while the adoption offer is outstanding: %+v", got)
	}

	// The silent owner comes back: hello revives it, and the admit
	// replay of its retired incarnation carries the abort fate instead
	// of letting it drive a dead incarnation.
	if got := c2.hello(); got.Status != StOK {
		t.Fatalf("reviving hello: %+v", got)
	}
	replay := c2.call(&Frame{Type: MsgAdmit, Proc: origin, Origin: origin})
	if !replay.Flag2 || replay.Extra != ReattachAborted {
		t.Fatalf("revived owner's admit replay: %+v, want Flag2 + ReattachAborted", replay)
	}
}
