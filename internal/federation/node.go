package federation

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"transproc/internal/chaos"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/wal"
)

// NodeJob is a process owned by a node, with its global arrival rank.
type NodeJob struct {
	Def     *process.Process
	Arrival int
}

// NodeConfig configures one scheduler node.
type NodeConfig struct {
	ID   uint32
	Name string
	Addr string
	// WAL is the node's private log; records carry hub-issued stamps so
	// the stitcher can merge the per-node logs into one global history.
	WAL  wal.Log
	Jobs []NodeJob
	// MaxRestarts bounds restart incarnations per origin process.
	MaxRestarts int
	// Wire is the transport fault plan (applied per delivery attempt).
	Wire           chaos.Plan
	DispatchBudget int
	ControlBudget  int
	// Inject fires named crash points (fed:dispatch, fed:after-prepared,
	// twopc:after-decision, twopc:mid-resolve); a fault plan panics
	// through it with a crash sentinel the node recovers.
	Inject  func(string)
	Metrics *metrics.Registry
	// Defs maps origin id → definition for every process in the cluster,
	// not just this node's jobs — needed to admit adopted orphans of a
	// dead peer. Nil restricts adoption to origins in Jobs.
	Defs map[string]*process.Process
	// HeartbeatEvery sends a lease-refreshing heartbeat when the driver
	// is sleeping (its RPCs refresh the lease implicitly otherwise);
	// zero disables heartbeats.
	HeartbeatEvery time.Duration
	// ReconnectAttempts bounds consecutive connection failures per RPC
	// (0 = default), each preceded by a seeded backoff sleep — the knob
	// that must outlast a hub reopen.
	ReconnectAttempts int
}

// nodeProc is the node-side state of one process incarnation — the
// counterpart of the engine's procRT, driven by RPC responses instead
// of completion events.
type nodeProc struct {
	id      process.ID
	origin  process.ID
	def     *process.Process
	inst    *process.Instance
	arrival int

	admitted bool
	backoff  int // driver rounds to wait before (re-)admission

	state        hubPhase
	recovery     []process.Step
	abortPending bool
	restartable  bool
	restarts     int
	prepared     map[int]preparedRemote
}

// preparedRemote is the node's record of a Lemma-1 deferred local
// transaction (the hub holds the live subsystem handle).
type preparedRemote struct {
	tx        int64
	subsystem string
	service   string
}

// Node drives its owned processes against the hub. Each process is
// advanced single-threaded; an RPC either advances the mirror state on
// both sides or leaves both unchanged.
type Node struct {
	cfg   NodeConfig
	cli   *Client
	log   wal.Log
	reg   *metrics.Registry
	procs []*nodeProc
	gen   int64 // latest progress generation seen in a response
	defs  map[string]*process.Process
	beat  time.Time // last heartbeat send

	// Outcomes by incarnation id, as the engine reports them.
	Outcomes map[process.ID]*scheduler.Outcome
	// Crashed is set when an injected crash point stopped the node.
	Crashed bool
	// Reattached counts hub-restart (or lease-exile) recovery rounds the
	// node performed.
	Reattached int
}

// NewNode builds a node; Run connects and drives it.
func NewNode(cfg NodeConfig) *Node {
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 8
	}
	return &Node{
		cfg:      cfg,
		log:      cfg.WAL,
		reg:      cfg.Metrics,
		Outcomes: make(map[process.ID]*scheduler.Outcome),
	}
}

func (n *Node) inject(point string) {
	if n.cfg.Inject != nil {
		n.cfg.Inject(point)
	}
}

// force appends a stamped record to the node's WAL.
func (n *Node) force(rec wal.Record, stamp int64) {
	rec.Stamp = stamp
	if _, err := n.log.Append(rec); err != nil {
		panic(fmt.Sprintf("federation: node %s wal append: %v", n.cfg.Name, err))
	}
}

// call wraps the client, tracking the progress generation.
func (n *Node) call(f *Frame, invocation bool) (*Frame, error) {
	resp, err := n.cli.Call(f, invocation)
	if resp != nil && resp.Gen > n.gen {
		n.gen = resp.Gen
	}
	if err == nil && resp.Status == StError {
		return resp, fmt.Errorf("federation: hub rejected %v for %s: %s", f.Type, f.Proc, resp.Err)
	}
	return resp, err
}

// Run drives the node until all owned work is terminal (or a crash
// point fires — the node then stops with Crashed set, its WAL and the
// hub's subsystem state surviving for stitched recovery). A hub restart
// surfacing as ErrHubRestart from any RPC triggers the re-attach flow
// (re-hello, per-process fate query) and the driver resumes.
func (n *Node) Run() (err error) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if _, ok := fault.AsCrash(v); ok {
			n.Crashed = true
			n.cli.Close()
			return
		}
		panic(v)
	}()
	n.cli = NewClient(n.cfg.ID, n.cfg.Name, n.cfg.Addr, n.cfg.Wire,
		n.cfg.DispatchBudget, n.cfg.ControlBudget, n.cfg.ReconnectAttempts, n.reg)
	defer n.cli.Close()
	if _, err := n.call(&Frame{Type: MsgHello, Origin: n.cfg.Name}, false); err != nil {
		return err
	}
	jobs := append([]NodeJob(nil), n.cfg.Jobs...)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	n.defs = make(map[string]*process.Process, len(n.cfg.Defs)+len(jobs))
	for id, d := range n.cfg.Defs {
		n.defs[id] = d
	}
	for _, j := range jobs {
		n.defs[string(j.Def.ID)] = j.Def
		n.procs = append(n.procs, &nodeProc{
			id: j.Def.ID, origin: j.Def.ID, def: j.Def,
			inst: process.NewInstance(j.Def), arrival: j.Arrival,
			prepared: make(map[int]preparedRemote),
		})
	}
	n.beat = time.Now()

	for {
		done, err := n.roundOnce()
		if errors.Is(err, ErrHubRestart) {
			if rerr := n.reattach(); rerr != nil && !errors.Is(rerr, ErrHubRestart) {
				return rerr
			}
			// A reattach cut short by another hub death retries on the
			// next round — the next RPC bounces stale again.
			continue
		}
		if err != nil || done {
			return err
		}
	}
}

// roundOnce is one driver round; done reports clean completion (all
// owned work terminal and the hub acknowledged the final idle).
func (n *Node) roundOnce() (bool, error) {
	progress := false
	pendingRestart := false
	allDone := true
	for _, p := range n.procs {
		if p.state == hubDone {
			continue
		}
		allDone = false
		if !p.admitted {
			if p.backoff > 0 {
				p.backoff--
				pendingRestart = true
				continue
			}
			if err := n.admit(p); err != nil {
				return false, err
			}
			progress = true
			continue
		}
		ok, err := n.driveProc(p)
		if err != nil {
			return false, err
		}
		if ok {
			progress = true
		}
	}
	if allDone {
		resp, err := n.call(&Frame{Type: MsgIdle, Flag: true}, false)
		if err != nil {
			return false, err
		}
		// The final idle can still carry queued work: an adoption offer
		// un-finishes the node; stray designations for already-terminal
		// processes are absorbed.
		switch {
		case resp.Status == StAdopt && resp.Victim != "":
			n.adopt(resp)
		case resp.Status == StVictim && resp.Victim != "":
			n.markVictim(process.ID(resp.Victim))
		case resp.Status == StPark && resp.Victim != "":
			n.markParked(process.ID(resp.Victim))
		default:
			return true, nil
		}
		return false, nil
	}
	if progress {
		return false, nil
	}
	if pendingRestart {
		// Never report idle with a restart pending: the hub would
		// count this node as quiescent and designate a victim against
		// work that is about to re-enter.
		return false, n.idleSleep()
	}
	resp, err := n.call(&Frame{Type: MsgIdle, Gen: n.gen}, false)
	if err != nil {
		return false, err
	}
	switch {
	case resp.Status == StVictim && resp.Victim != "":
		n.markVictim(process.ID(resp.Victim))
	case resp.Status == StPark && resp.Victim != "":
		n.markParked(process.ID(resp.Victim))
	case resp.Status == StAdopt && resp.Victim != "":
		n.adopt(resp)
	default:
		return false, n.idleSleep()
	}
	return false, nil
}

// idleSleep naps between unproductive rounds, sending a lease-refresh
// heartbeat when one is due (driver RPCs refresh the lease implicitly,
// so heartbeats only matter while the node is otherwise silent).
func (n *Node) idleSleep() error {
	if n.cfg.HeartbeatEvery > 0 && time.Since(n.beat) >= n.cfg.HeartbeatEvery {
		n.beat = time.Now()
		if _, err := n.call(&Frame{Type: MsgHeartbeat}, false); err != nil {
			return err
		}
	}
	time.Sleep(100 * time.Microsecond)
	return nil
}

// adopt admits a fresh incarnation of a dead peer's orphaned origin,
// granted by the hub through an idle poll (StAdopt).
func (n *Node) adopt(resp *Frame) {
	def := n.defs[resp.Origin]
	if def == nil {
		return // unknown origin: the offer is consumed, recovery settles it
	}
	newID := process.ID(resp.Victim)
	for _, p := range n.procs {
		if p.id == newID {
			return // duplicate delivery (lost response replayed)
		}
	}
	n.procs = append(n.procs, &nodeProc{
		id: newID, origin: process.ID(resp.Origin), def: def.WithID(newID),
		inst: process.NewInstance(def.WithID(newID)), arrival: int(resp.Stamp2),
		restarts: int(resp.Extra),
		prepared: make(map[int]preparedRemote),
	})
}

// reattach is the hub-restart recovery flow: re-hello (adopting the new
// epoch), then ask the hub for the recovered fate of every in-flight
// process and settle the local mirror accordingly. Fates come from the
// reopen's composed recovery pass, so this resolves every in-doubt
// transition — a process the node last saw mid-2PC comes back either
// committed (decision was logged; recovery redid the resolution) or
// aborted (no decision; presumed abort), never in between.
func (n *Node) reattach() error {
	if _, err := n.call(&Frame{Type: MsgHello, Origin: n.cfg.Name}, false); err != nil {
		return err
	}
	n.Reattached++
	for _, p := range n.procs {
		if p.state == hubDone {
			continue
		}
		// Not-yet-admitted procs are queried too: a pending adopted
		// incarnation may have been re-homed to another survivor while
		// this node's lease was expired, in which case the hub retired
		// it and admitting it now would drive a dead incarnation. A
		// never-admitted original simply comes back Unknown and the
		// reset below is a no-op for it.
		resp, err := n.call(&Frame{
			Type: MsgReattach, Proc: string(p.id),
			Flag: p.restarts < n.cfg.MaxRestarts,
		}, false)
		if err != nil {
			return err
		}
		switch resp.Extra {
		case ReattachCommitted:
			// Terminated committed; the terminate record already exists
			// (pre-crash or in the recovery tail) — log nothing.
			p.state = hubDone
			out := n.outcome(p)
			out.Committed = true
			out.Aborted = false
			out.Restarts = p.restarts
		case ReattachAborted:
			p.state = hubDone
			out := n.outcome(p)
			out.Committed = false
			out.Aborted = true
			out.Restarts = p.restarts
			if resp.Flag && resp.Victim != "" {
				// Hub-granted restart incarnation (suffix chosen hub-side
				// so it never collides across owners or incarnations).
				newID := process.ID(resp.Victim)
				n.procs = append(n.procs, &nodeProc{
					id: newID, origin: p.origin, def: p.def.WithID(newID),
					inst: process.NewInstance(p.def.WithID(newID)), arrival: p.arrival,
					restarts: int(resp.Stamp2), backoff: 4,
					prepared: make(map[int]preparedRemote),
				})
			}
		case ReattachParked:
			p.state = hubDone
			p.restartable = false
			out := n.outcome(p)
			out.Aborted = true
			out.Restarts = p.restarts
		case ReattachLive:
			// Still tracked live (the hub never actually died from this
			// node's perspective — e.g. a revived membership): keep going.
		case ReattachUnknown:
			// No WAL record exists for this incarnation (the admit reply
			// was lost before RecStart was forced), so recovery cannot
			// have settled it and re-admitting the same id is safe.
			p.admitted = false
			p.abortPending = false
			p.state = hubRunning
			p.recovery = nil
			p.inst = process.NewInstance(p.def)
			p.prepared = make(map[int]preparedRemote)
		default:
			return fmt.Errorf("federation: unknown reattach fate %d for %s", resp.Extra, p.id)
		}
	}
	return nil
}

func (n *Node) markVictim(id process.ID) {
	for _, p := range n.procs {
		if p.id == id && p.admitted && p.state == hubRunning && !p.abortPending {
			p.abortPending = true
			p.restartable = true
		}
	}
}

// markParked stops driving a process whose remaining recovery steps
// are blocked behind a dead node's zombie events: no terminate record
// is logged, so the composed recovery sees the process non-terminal
// and finishes its group abort in correct global order.
func (n *Node) markParked(id process.ID) {
	for _, p := range n.procs {
		if p.id == id && p.admitted && p.state != hubDone {
			p.state = hubDone
			p.restartable = false // recovery finishes it; no fresh incarnation
			out := n.Outcomes[p.id]
			out.Aborted = true
			out.Restarts = p.restarts
		}
	}
}

// outcome returns the Outcome slot for p, creating it for a proc that
// was never admitted (its slot is otherwise made on admit).
func (n *Node) outcome(p *nodeProc) *scheduler.Outcome {
	if n.Outcomes[p.id] == nil {
		n.Outcomes[p.id] = &scheduler.Outcome{Restarts: p.restarts}
	}
	return n.Outcomes[p.id]
}

func (n *Node) admit(p *nodeProc) error {
	resp, err := n.call(&Frame{
		Type: MsgAdmit, Proc: string(p.id), Origin: string(p.origin),
		Local: int32(p.arrival), Extra: int32(p.restarts),
	}, false)
	if err != nil {
		return err
	}
	if !resp.Flag2 {
		// Flag2 marks an idempotent replay of a known incarnation (a lost
		// admit response re-asked across a reconnect): RecStart was
		// already forced at the original stamp, never twice.
		n.force(wal.Record{Type: wal.RecStart, Proc: string(p.id)}, resp.Stamp)
	} else if resp.Extra == ReattachCommitted || resp.Extra == ReattachAborted {
		// The replayed incarnation was settled while this node was out
		// (re-homed after a lease expiry, or finished by another owner):
		// file the fate instead of driving a dead incarnation.
		p.state = hubDone
		out := n.outcome(p)
		out.Committed = resp.Extra == ReattachCommitted
		out.Aborted = resp.Extra == ReattachAborted
		out.Restarts = p.restarts
		return nil
	}
	p.admitted = true
	if n.Outcomes[p.id] == nil {
		n.Outcomes[p.id] = &scheduler.Outcome{Restarts: p.restarts}
	}
	return nil
}

// driveProc advances one process by at most one transition, mirroring
// the engine's dispatchProc order: recovery steps drain first, then a
// pending abort begins, an aborting process finishes, a done process
// tries its 2PC commit-and-terminate, and otherwise frontier activities
// dispatch (with a deferred-commit poll when nothing else moves).
func (n *Node) driveProc(p *nodeProc) (bool, error) {
	if len(p.recovery) > 0 {
		return n.driveStep(p)
	}
	if p.abortPending && p.state != hubAborting {
		return true, n.beginAbort(p)
	}
	if p.state == hubAborting {
		return true, n.finishAbort(p)
	}
	if p.inst.Done() {
		return n.tryFinish(p)
	}
	progress := false
	for _, local := range p.inst.Frontier() {
		if !n.predsCommitted(p, local) {
			continue
		}
		ok, err := n.dispatchFrontier(p, local)
		if err != nil {
			return false, err
		}
		if ok {
			progress = true
		}
		if p.abortPending || len(p.recovery) > 0 {
			return progress, nil // the failure plan or a designation took over
		}
	}
	if !progress && len(p.prepared) > 0 {
		// Deferred-commit poll: the engine unblocks these sets inside
		// commitDeferredIfPossible when a predecessor terminates; here
		// the owning node polls the same Lemma-1 gate.
		return n.pollDeferred(p)
	}
	return progress, nil
}

func (n *Node) predsCommitted(p *nodeProc, local int) bool {
	for _, h := range p.def.Preds(local) {
		if p.inst.Status(h) != process.Committed {
			return false
		}
	}
	return true
}

func (n *Node) dispatchFrontier(p *nodeProc, local int) (bool, error) {
	a := p.def.Activity(local)
	n.inject(fault.PointFedDispatch)
	resp, err := n.call(&Frame{
		Type: MsgDispatch, Proc: string(p.id), Local: int32(local), Kind: uint8(a.Kind),
	}, true)
	if errors.Is(err, ErrVoided) {
		// The transport gave up and the hub certified the dispatch never
		// ran: surface it as an invocation failure (the engine's
		// unmaskable-transport-failure path).
		resp, err = n.call(&Frame{
			Type: MsgFailed, Proc: string(p.id), Local: int32(local),
		}, false)
	}
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StPolicyWait, StLockWait:
		return false, nil
	case StPark:
		n.markParked(p.id)
		return true, nil
	case StVictim:
		p.abortPending = true
		p.restartable = true
		return true, nil
	case StFailedTransient:
		n.force(wal.Record{
			Type: wal.RecOutcome, Proc: string(p.id), Local: local,
			Service: a.Service, Outcome: "aborted",
		}, resp.Stamp)
		return true, nil
	case StFailedPermanent:
		return true, n.permanentFailure(p, local, a.Service, resp)
	case StOK:
		n.force(wal.Record{
			Type: wal.RecOutcome, Proc: string(p.id), Local: local, Service: resp.Service,
			Subsystem: resp.Subsystem, Tx: resp.Tx, Outcome: "prepared",
		}, resp.Stamp)
		n.inject(fault.PointFedAfterPrepared)
		cresp, err := n.call(&Frame{Type: MsgCommitLocal, Proc: string(p.id), Local: int32(local)}, false)
		if err != nil {
			return false, err
		}
		switch cresp.Status {
		case StOK:
			n.force(wal.Record{
				Type: wal.RecResolved, Proc: string(p.id), Local: local, Service: cresp.Service,
				Subsystem: cresp.Subsystem, Tx: cresp.Tx, Commit: true,
			}, cresp.Stamp)
			if err := p.inst.MarkCommitted(local); err != nil {
				return false, err
			}
		case StDeferred:
			if err := p.inst.MarkPrepared(local); err != nil {
				return false, err
			}
			p.prepared[local] = preparedRemote{tx: resp.Tx, subsystem: resp.Subsystem, service: resp.Service}
		default:
			return false, fmt.Errorf("federation: unexpected commit-local status %v for %s/%d", cresp.Status, p.id, local)
		}
		return true, nil
	}
	return false, fmt.Errorf("federation: unexpected dispatch status %v for %s/%d", resp.Status, p.id, local)
}

// permanentFailure mirrors the engine's handlePermanentFailure using
// the plan the node's own instance computes (identical to the hub's).
func (n *Node) permanentFailure(p *nodeProc, local int, service string, resp *Frame) error {
	n.force(wal.Record{Type: wal.RecFailed, Proc: string(p.id), Local: local, Service: service}, resp.Stamp)
	plan, err := p.inst.MarkFailed(local)
	if err != nil {
		return err
	}
	if resp.Flag2 {
		// A pending abort (designated hub-side, not yet delivered)
		// supersedes the plan.
		p.abortPending = true
		p.restartable = true
		return nil
	}
	if plan.Abort != resp.Flag {
		return fmt.Errorf("federation: failure plan mismatch for %s/%d (node abort=%v, hub abort=%v)",
			p.id, local, plan.Abort, resp.Flag)
	}
	if plan.Abort {
		p.restartable = false
		p.state = hubAborting
		p.recovery = plan.Steps
		n.force(wal.Record{Type: wal.RecAbortBegin, Proc: string(p.id)}, resp.Stamp2)
	} else {
		p.recovery = plan.Steps
	}
	return nil
}

func (n *Node) beginAbort(p *nodeProc) error {
	steps, err := p.inst.Abort()
	if err != nil {
		return err
	}
	resp, err := n.call(&Frame{Type: MsgAbortBegin, Proc: string(p.id)}, false)
	if err != nil {
		return err
	}
	n.force(wal.Record{Type: wal.RecAbortBegin, Proc: string(p.id)}, resp.Stamp)
	p.abortPending = false
	p.state = hubAborting
	p.recovery = steps
	return nil
}

func (n *Node) driveStep(p *nodeProc) (bool, error) {
	st := p.recovery[0]
	switch st.Kind {
	case process.StepAbortPrepared:
		resp, err := n.call(&Frame{
			Type: MsgAbortTx, Proc: string(p.id), Local: int32(st.Local), Service: st.Service, Flag: true,
		}, false)
		if err != nil {
			return false, err
		}
		if resp.Flag {
			n.force(wal.Record{
				Type: wal.RecResolved, Proc: string(p.id), Local: st.Local, Service: resp.Service,
				Subsystem: resp.Subsystem, Tx: resp.Tx, Commit: false,
			}, resp.Stamp)
		}
		p.recovery = p.recovery[1:]
		delete(p.prepared, st.Local)
		_ = p.inst.ApplyStep(st)
		return true, nil
	case process.StepCompensate, process.StepInvoke:
		resp, err := n.call(&Frame{
			Type: MsgStepDispatch, Proc: string(p.id), Local: int32(st.Local),
			Service: st.Service, Extra: int32(st.Kind),
		}, true)
		if errors.Is(err, ErrVoided) {
			return false, nil // certified never-ran: retry next round
		}
		if err != nil {
			return false, err
		}
		switch resp.Status {
		case StPolicyWait, StLockWait, StFailedTransient:
			return false, nil
		case StPark:
			// The hub parked this process while the dispatch was in
			// flight: stop driving it, log nothing more — post-run
			// recovery replans and executes the remaining steps.
			n.markParked(p.id)
			return true, nil
		case StOK:
		default:
			return false, fmt.Errorf("federation: unexpected step-dispatch status %v for %s/%d", resp.Status, p.id, st.Local)
		}
		rec := wal.Record{
			Type: wal.RecCompensate, Proc: string(p.id), Local: st.Local, Service: st.Service,
			Subsystem: resp.Subsystem, Tx: resp.Tx,
		}
		if st.Kind == process.StepInvoke {
			rec = wal.Record{
				Type: wal.RecOutcome, Proc: string(p.id), Local: st.Local, Service: st.Service,
				Subsystem: resp.Subsystem, Tx: resp.Tx, Outcome: "committed",
			}
		}
		n.force(rec, resp.Stamp)
		cresp, err := n.call(&Frame{
			Type: MsgStepCommit, Proc: string(p.id), Local: int32(st.Local),
			Service: st.Service, Extra: int32(st.Kind), Kind: resp.Kind, Tx: resp.Tx,
		}, false)
		if err != nil {
			return false, err
		}
		if cresp.Status != StOK {
			return false, fmt.Errorf("federation: unexpected step-commit status %v for %s/%d", cresp.Status, p.id, st.Local)
		}
		if len(p.recovery) > 0 && p.recovery[0] == st {
			p.recovery = p.recovery[1:]
		}
		if err := p.inst.ApplyStep(st); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, fmt.Errorf("federation: unknown step kind %v", st.Kind)
}

func (n *Node) finishAbort(p *nodeProc) error {
	locals := make([]int, 0, len(p.prepared))
	for l := range p.prepared {
		locals = append(locals, l)
	}
	sort.Ints(locals)
	for _, l := range locals {
		resp, err := n.call(&Frame{
			Type: MsgAbortTx, Proc: string(p.id), Local: int32(l), Flag: false,
		}, false)
		if err != nil {
			return err
		}
		if resp.Flag {
			n.force(wal.Record{
				Type: wal.RecResolved, Proc: string(p.id), Local: l, Service: resp.Service,
				Subsystem: resp.Subsystem, Tx: resp.Tx, Commit: false,
			}, resp.Stamp)
		}
		delete(p.prepared, l)
	}
	if err := n.terminate(p, false); err != nil {
		return err
	}
	if p.restartable && p.restarts < n.cfg.MaxRestarts {
		n.restart(p)
	}
	return nil
}

func (n *Node) terminate(p *nodeProc, committed bool) error {
	resp, err := n.call(&Frame{Type: MsgTerminate, Proc: string(p.id), Flag: committed}, false)
	if err != nil {
		return err
	}
	if resp.Status == StPark {
		// Parked while the terminate was in flight: no terminate record
		// may be logged (recovery must see the process non-terminal and
		// finish its completion), and finishAbort must not restart it.
		n.markParked(p.id)
		return nil
	}
	n.force(wal.Record{Type: wal.RecTerminate, Proc: string(p.id), Committed: committed}, resp.Stamp)
	p.state = hubDone
	out := n.Outcomes[p.id]
	out.Committed = committed
	out.Aborted = !committed
	p.inst.MarkTerminated(committed)
	return nil
}

func (n *Node) restart(p *nodeProc) {
	newID := process.ID(fmt.Sprintf("%s+r%d", p.origin, p.restarts+1))
	backoff := 4 << (p.restarts + 1)
	if backoff > 128 {
		backoff = 128
	}
	n.procs = append(n.procs, &nodeProc{
		id: newID, origin: p.origin, def: p.def.WithID(newID),
		inst: process.NewInstance(p.def.WithID(newID)), arrival: p.arrival,
		restarts: p.restarts + 1, backoff: backoff,
		prepared: make(map[int]preparedRemote),
	})
}

// tryFinish mirrors the engine: gate on Lemma 1 via the hub, then log
// the decision, resolve every prepared participant in ascending local
// order, and terminate committed.
func (n *Node) tryFinish(p *nodeProc) (bool, error) {
	resp, err := n.call(&Frame{Type: MsgCommitClear, Proc: string(p.id)}, false)
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StNotClear:
		return false, nil
	case StVictim:
		p.abortPending = true
		p.restartable = true
		return true, nil
	case StOK:
	default:
		return false, fmt.Errorf("federation: unexpected commit-clear status %v for %s", resp.Status, p.id)
	}
	if err := n.resolvePrepared(p, resp.Stamp); err != nil {
		return false, err
	}
	return true, n.terminate(p, true)
}

// pollDeferred is the mid-process deferred-commit poll for a running
// process whose prepared set blocks its successors.
func (n *Node) pollDeferred(p *nodeProc) (bool, error) {
	resp, err := n.call(&Frame{Type: MsgCommitClear, Proc: string(p.id)}, false)
	if err != nil {
		return false, err
	}
	switch resp.Status {
	case StNotClear:
		return false, nil
	case StVictim:
		p.abortPending = true
		p.restartable = true
		return true, nil
	case StOK:
		if err := n.resolvePrepared(p, resp.Stamp); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, fmt.Errorf("federation: unexpected commit-clear status %v for %s", resp.Status, p.id)
}

func (n *Node) resolvePrepared(p *nodeProc, decisionStamp int64) error {
	locals := make([]int, 0, len(p.prepared))
	for l := range p.prepared {
		if p.inst.Status(l) == process.Prepared {
			locals = append(locals, l)
		}
	}
	sort.Ints(locals)
	if len(locals) == 0 {
		return nil
	}
	n.force(wal.Record{Type: wal.RecDecision, Proc: string(p.id)}, decisionStamp)
	n.inject(fault.PointAfterDecision)
	for i, l := range locals {
		resp, err := n.call(&Frame{Type: MsgResolve, Proc: string(p.id), Local: int32(l)}, false)
		if err != nil {
			return err
		}
		if resp.Status != StOK {
			return fmt.Errorf("federation: unexpected resolve status %v for %s/%d", resp.Status, p.id, l)
		}
		n.force(wal.Record{
			Type: wal.RecResolved, Proc: string(p.id), Local: l, Service: resp.Service,
			Subsystem: resp.Subsystem, Tx: resp.Tx, Commit: true,
		}, resp.Stamp)
		if err := p.inst.MarkCommitted(l); err != nil {
			return err
		}
		delete(p.prepared, l)
		if i == 0 {
			n.inject(fault.PointMidResolve)
		}
	}
	return nil
}
