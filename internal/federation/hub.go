package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
)

// HubConfig configures the coordination hub.
type HubConfig struct {
	// Mode is the scheduling policy; the federation supports PRED and
	// PREDCascade (the modes whose decisions are per-event and therefore
	// liftable behind RPCs; Serial/Conservative admission gating would
	// serialize the cluster anyway).
	Mode policy.Mode
	// MaxStalls bounds cluster-wide victim designations.
	MaxStalls int
	// Metrics is the optional observability registry.
	Metrics *metrics.Registry
	// Journal force-logs the few facts only the hub knows and that
	// stitched-WAL recovery cannot rebuild: stamp leases (so a
	// reopened hub never reissues an issued-but-unacked stamp), the
	// epoch, and the ownership table. Nil disables journaling.
	Journal HubJournal
	// LeaseTTL expires a node's membership lease when no frame from it
	// arrives for this long; zero disables lease expiry (nodes then die
	// only through an explicit NodeDown).
	LeaseTTL time.Duration
	// Inject fires named hub crash points (hub:dispatch, hub:decision,
	// hub:resolve). A fault plan panics through it with a crash
	// sentinel that Handle converts into a dead hub: the in-flight
	// request — and every later one — gets no response, modeling
	// kill -9 of the coordination agent.
	Inject func(string)
	// Epoch seeds the hub incarnation number; ReopenHub bumps it so
	// frames from the previous incarnation bounce with StStale.
	Epoch uint32
	// Now is the lease clock (default time.Now); tests pin it.
	Now func() time.Time
}

// leaseChunk is how far past the journaled floor the hub extends its
// stamp lease per force-log: one journal fsync amortizes over this many
// stamps, and a reopened hub's counter jumps at most this far ahead.
const leaseChunk = 512

// hubPhase mirrors the engine's procState.
type hubPhase int

const (
	hubRunning hubPhase = iota
	hubAborting
	hubDone
	// hubParked is Done for the policy view but distinguishable for the
	// dispatch handlers: a parked process's remaining completion steps
	// run only during post-run recovery — after every live event in the
	// stitched log — so the hub must bounce the owner's racing RPCs
	// (StPark) and hold conflicting live work behind the parked
	// footprint, or admitted work would order before steps that replay
	// after it and invert the forced serialization order.
	hubParked
)

// hubTx is a subsystem transaction the hub tracks on behalf of a node.
type hubTx struct {
	sub     *subsystem.Subsystem
	tx      subsystem.TxID
	service string
}

// hubProc is the hub-side mirror of one process incarnation. The hub
// applies the same deterministic instance transitions as the owning
// node, in the order of the node's RPCs — each node drives its
// processes single-threaded, so per-process operations are serial and
// the two instances stay in lockstep.
type hubProc struct {
	id      process.ID
	origin  process.ID
	node    uint32
	arrival int

	def  *process.Process
	inst *process.Instance

	phase           hubPhase
	running         map[int]string // local -> service (frontier in flight)
	inflight        map[int]hubTx  // local -> prepared tx awaiting CommitLocal
	prepared        map[int]hubTx  // Lemma-1 deferred transactions
	recovery        []process.Step
	recoveryBusy    bool
	recoveryBusySvc string
	stepTx          hubTx // in-flight recovery-step transaction
	abortPending    bool
	decided         bool // 2PC commit decision granted (point of no return)
	// committedEvents counts the process's committed (non-tentative)
	// policy events — the adoption gate: an orphan with zero committed
	// events has nothing recovery must compensate, so its origin can be
	// re-assigned to a survivor immediately instead of waiting for the
	// post-run composed recovery.
	committedEvents int
	// zombie marks a process whose owner died (crash or lease expiry).
	// It stays excluded from victim designation and liveness checks
	// even if the owner later revives: its subsystem residue was
	// settled at death and only recovery (or adoption) finishes it.
	zombie bool
	// fate is the terminal outcome once phase is hubDone (true =
	// committed), served to re-attaching owners that lost the response.
	fate bool
}

// hubNode is the hub's view of one scheduler node.
type hubNode struct {
	name    string
	dead    bool
	done    bool  // reported all owned work terminal
	idleGen int64 // progress generation of the last idle report
	victims []process.ID
	parks   []process.ID
	adopts  []adoptOffer
}

// adoptOffer is a queued re-assignment of an orphaned origin to a
// surviving node, delivered through its idle polls as StAdopt.
type adoptOffer struct {
	origin  process.ID
	id      process.ID // the fresh incarnation the survivor admits
	arrival int
	suffix  int // restart-suffix number of the fresh incarnation
}

// Hub is the coordination agent: it owns the subsystem federation, the
// single policy state, the global stamp counter and the process
// mirrors. Every handler runs under one mutex — the serial section that
// makes cross-node decisions total-ordered; the stamps it hands out
// place the nodes' WAL records into that order.
type Hub struct {
	mu    sync.Mutex
	fed   *subsystem.Federation
	table *conflict.Table
	pol   *policy.State
	cfg   HubConfig
	reg   *metrics.Registry

	defs  map[string]*process.Process // by origin id
	order []process.ID                // admission order
	byID  map[process.ID]*hubProc

	nodes map[uint32]*hubNode
	dedup map[uint32]map[uint64]*Frame

	stamp  int64 // global sequence; doubles as the progress generation
	stalls int

	// Crash-safety state (see journal.go and recover.go).
	epoch      uint32
	journal    HubJournal
	leaseFloor int64 // stamps < leaseFloor are journaled as issuable
	killed     bool
	killedCh   chan struct{}
	lastSeen   map[uint32]time.Time
	maxSuffix  map[string]int // origin -> highest restart suffix seen
	// pending marks origins with an outstanding restart incarnation the
	// hub handed out (adoption offer or reattach grant) that no node has
	// admitted yet. Such an origin is live even though byID has no
	// running incarnation — granting a second restart for it would fork
	// the lineage and double-execute the process.
	pending map[string]bool
	// fates is set by ReopenHub: the recovered terminal fate of every
	// pre-crash incarnation (true = committed), served to re-attaching
	// nodes. reopened distinguishes "no fate" answers.
	fates    map[process.ID]bool
	reopened bool
}

// NewHub builds the hub over a federation and the process definitions
// (by origin id; restart incarnations derive from them).
func NewHub(fed *subsystem.Federation, defs []*process.Process, cfg HubConfig) (*Hub, error) {
	if cfg.Mode != policy.PRED && cfg.Mode != policy.PREDCascade {
		return nil, fmt.Errorf("federation: unsupported mode %v (PRED and PREDCascade only)", cfg.Mode)
	}
	table, err := fed.ConflictTable()
	if err != nil {
		return nil, err
	}
	if cfg.MaxStalls <= 0 {
		cfg.MaxStalls = 4096
	}
	h := &Hub{
		fed:       fed,
		table:     table,
		pol:       policy.New(table, policy.Config{Mode: cfg.Mode}),
		cfg:       cfg,
		reg:       cfg.Metrics,
		defs:      make(map[string]*process.Process, len(defs)),
		byID:      make(map[process.ID]*hubProc),
		nodes:     make(map[uint32]*hubNode),
		dedup:     make(map[uint32]map[uint64]*Frame),
		epoch:     cfg.Epoch,
		journal:   cfg.Journal,
		killedCh:  make(chan struct{}),
		lastSeen:  make(map[uint32]time.Time),
		maxSuffix: make(map[string]int),
		pending:   make(map[string]bool),
	}
	if cfg.Metrics != nil {
		fed.SetMetrics(cfg.Metrics)
	}
	for _, p := range defs {
		h.defs[string(p.ID)] = p
	}
	return h, nil
}

// next issues the next global stamp inside the serial section. With a
// journal attached it enforces the stamp lease: before issuing past the
// journaled floor, a new floor one chunk ahead is force-logged — so a
// reopened hub resuming at the floor can never reissue a stamp this
// incarnation handed out, acked or not, and plain stamp sorting of the
// stitched history stays total across hub incarnations.
func (h *Hub) next() int64 {
	if h.journal != nil && h.stamp >= h.leaseFloor {
		nf := h.stamp + leaseChunk
		if err := h.journal.Append(JEntry{Kind: jLease, Stamp: nf}); err != nil {
			panic(fmt.Sprintf("federation: hub journal append: %v", err))
		}
		h.leaseFloor = nf
	}
	h.stamp++
	return h.stamp
}

// clock is the lease clock.
func (h *Hub) clock() time.Time {
	if h.cfg.Now != nil {
		return h.cfg.Now()
	}
	return time.Now()
}

// injectPoint fires a named hub crash point when an injector is armed.
func (h *Hub) injectPoint(p string) {
	if h.cfg.Inject != nil {
		h.cfg.Inject(p)
	}
}

// Killed reports whether a hub crash point fired.
func (h *Hub) Killed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.killed
}

// KilledCh closes when a hub crash point fires; the cluster monitor
// uses it to trigger the reopen cycle.
func (h *Hub) KilledCh() <-chan struct{} { return h.killedCh }

// Epoch reports the hub incarnation number.
func (h *Hub) Epoch() uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// hubView adapts the mirrors to the policy's View.
type hubView struct{ h *Hub }

func (v hubView) Procs() []process.ID { return v.h.order }

func (v hubView) Phase(id process.ID) policy.Phase {
	hp := v.h.byID[id]
	if hp == nil {
		return policy.Done
	}
	switch hp.phase {
	case hubRunning:
		return policy.Running
	case hubAborting:
		return policy.Aborting
	default:
		return policy.Done
	}
}

func (v hubView) Arrival(id process.ID) int {
	if hp := v.h.byID[id]; hp != nil {
		return hp.arrival
	}
	return 0
}

func (v hubView) Instance(id process.ID) *process.Instance {
	if hp := v.h.byID[id]; hp != nil {
		return hp.inst
	}
	return nil
}

func (v hubView) RecoverySteps(id process.ID) []process.Step {
	if hp := v.h.byID[id]; hp != nil {
		return hp.recovery
	}
	return nil
}

func (v hubView) InFlight(id process.ID) []string {
	hp := v.h.byID[id]
	if hp == nil {
		return nil
	}
	out := make([]string, 0, len(hp.running)+1)
	for _, svc := range hp.running {
		out = append(out, svc)
	}
	if hp.recoveryBusy && hp.recoveryBusySvc != "" {
		out = append(out, hp.recoveryBusySvc)
	}
	return out
}

func (h *Hub) view() policy.View { return hubView{h} }

// resp builds a response frame, carrying the current progress
// generation so idle nodes can tell stale quiescence from real, and the
// hub epoch so clients track the incarnation they are speaking to.
func (h *Hub) resp(st Status) *Frame {
	return &Frame{Type: MsgResponse, Status: st, Gen: h.stamp, Epoch: h.epoch}
}

func (h *Hub) errf(format string, args ...any) *Frame {
	f := h.resp(StError)
	f.Err = fmt.Sprintf(format, args...)
	return f
}

// Handle executes one request inside the serial section. Responses to
// non-idempotent requests are cached by (node, request id): a retry
// after an ambiguous timeout, or a duplicated delivery, replays the
// cached response instead of re-executing — RPCs are exactly-once.
//
// A hub crash point firing inside a handler kills the hub: the panic is
// converted into a nil response (the server drops the connection
// without answering — the in-flight request's effects are lost with the
// hub's memory, exactly like kill -9 mid-handler) and every later
// request also gets nil until the cluster reopens a fresh incarnation.
func (h *Hub) Handle(req *Frame) (out *Frame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.killed {
		return nil
	}
	defer func() {
		if v := recover(); v != nil {
			if _, ok := fault.AsCrash(v); !ok {
				panic(v)
			}
			h.killed = true
			close(h.killedCh)
			h.reg.Inc(metrics.FedHubKills)
			out = nil
		}
	}()
	h.reg.Inc(metrics.FedRPCs)

	if req.Type == MsgHello {
		return h.handleHello(req)
	}
	// Stale-incarnation gate: a frame carrying a previous hub's epoch,
	// or arriving from a node whose membership lease expired, bounces
	// with StStale — uncached, so once the node re-hellos and
	// re-attaches, a retry of the same request id is not wedged behind
	// a poisoned dedup entry.
	if req.Epoch != h.epoch {
		h.reg.Inc(metrics.FedStaleBounces)
		return h.resp(StStale)
	}
	cache := h.dedup[req.Node]
	if cache == nil {
		return h.errf("unknown node %d (no hello)", req.Node)
	}
	if n := h.nodes[req.Node]; n != nil {
		if n.dead {
			h.reg.Inc(metrics.FedStaleBounces)
			return h.resp(StStale)
		}
		h.lastSeen[req.Node] = h.clock() // every frame refreshes the lease
	}
	if req.Type == MsgCancel {
		return h.handleCancel(req, cache)
	}
	if prior, ok := cache[req.Req]; ok {
		h.reg.Inc(metrics.FedDedupReplays)
		cp := *prior
		return &cp
	}
	switch req.Type {
	case MsgAdmit:
		out = h.handleAdmit(req)
	case MsgDispatch:
		out = h.handleDispatch(req)
	case MsgCommitLocal:
		out = h.handleCommitLocal(req)
	case MsgStepDispatch:
		out = h.handleStepDispatch(req)
	case MsgStepCommit:
		out = h.handleStepCommit(req)
	case MsgAbortTx:
		out = h.handleAbortTx(req)
	case MsgAbortBegin:
		out = h.handleAbortBegin(req)
	case MsgCommitClear:
		out = h.handleCommitClear(req)
	case MsgResolve:
		out = h.handleResolve(req)
	case MsgTerminate:
		out = h.handleTerminate(req)
	case MsgFailed:
		out = h.handleFailed(req)
	case MsgIdle:
		out = h.handleIdle(req)
	case MsgHeartbeat:
		h.reg.Inc(metrics.FedHeartbeats)
		out = h.resp(StOK) // the lease refresh above is the payload
	case MsgReattach:
		out = h.handleReattach(req)
	default:
		out = h.errf("unhandled message type %v", req.Type)
	}
	out.Gen = h.stamp
	cache[req.Req] = out
	cp := *out
	return &cp
}

func (h *Hub) handleHello(req *Frame) *Frame {
	if h.nodes[req.Node] == nil {
		h.nodes[req.Node] = &hubNode{name: req.Origin, idleGen: -1}
		h.dedup[req.Node] = make(map[uint64]*Frame)
	} else if h.nodes[req.Node].dead {
		// A lease-expired (or declared-dead) node re-attaching: revive
		// its membership. Its pre-death processes stay zombies — the
		// node learns their settled fates through MsgReattach.
		h.nodes[req.Node].dead = false
		h.nodes[req.Node].done = false
		h.nodes[req.Node].idleGen = -1
	}
	h.lastSeen[req.Node] = h.clock()
	return h.resp(StOK)
}

// handleCancel is the fetch-or-void protocol: after exhausting its
// transport retry budget on an invocation-class RPC, the node asks what
// became of the original request (Gen carries its id). If any delivery
// executed, the cached response is replayed (Flag2 set); otherwise the
// request id is voided — a marker response is cached under it so a
// straggling delivery can never execute it later — and the node takes
// the invocation-failure path.
func (h *Hub) handleCancel(req *Frame, cache map[uint64]*Frame) *Frame {
	orig := uint64(req.Gen)
	if prior, ok := cache[orig]; ok && prior.Err != "voided" {
		cp := *prior
		cp.Flag2 = true
		return &cp
	}
	void := h.resp(StError)
	void.Err = "voided"
	cache[orig] = void
	out := h.resp(StOK)
	out.Flag2 = false
	return out
}

func (h *Hub) handleAdmit(req *Frame) *Frame {
	id := process.ID(req.Proc)
	if h.byID[id] != nil {
		// Replayed admit of a known incarnation (a lost response whose
		// retry missed the dedup table, e.g. across a revival): answer
		// idempotently with Stamp 0 and Flag2 set — the node must not
		// force a second RecStart record.
		out := h.resp(StOK)
		out.Flag2 = true
		if hp := h.byID[id]; hp.phase == hubDone {
			// The incarnation was settled while the admitting node was
			// out (retired for re-homing, or terminated by a previous
			// owner). Carry the fate so the node files it as done instead
			// of driving a dead incarnation.
			if hp.fate {
				out.Extra = ReattachCommitted
			} else {
				out.Extra = ReattachAborted
			}
		}
		return out
	}
	def := h.defs[req.Origin]
	if def == nil {
		return h.errf("unknown origin %q", req.Origin)
	}
	if string(def.ID) != req.Proc {
		def = def.WithID(id)
	}
	hp := &hubProc{
		id: id, origin: process.ID(req.Origin), node: req.Node,
		arrival: int(req.Local), def: def, inst: process.NewInstance(def),
		running:  make(map[int]string),
		inflight: make(map[int]hubTx),
		prepared: make(map[int]hubTx),
	}
	h.order = append(h.order, id)
	h.byID[id] = hp
	delete(h.pending, req.Origin)
	if s := int(req.Extra); s > h.maxSuffix[req.Origin] {
		h.maxSuffix[req.Origin] = s
	}
	if h.journal != nil {
		// Ownership row: lets a reopened hub (or an operator) answer
		// "who owned this origin, at which incarnation" without the
		// stitched WALs.
		if err := h.journal.Append(JEntry{
			Kind: jAssign, Node: req.Node, Origin: req.Origin,
			Proc: req.Proc, Arrival: int64(req.Local),
		}); err != nil {
			panic(fmt.Sprintf("federation: hub journal append: %v", err))
		}
	}
	h.pol.Bump()
	out := h.resp(StOK)
	out.Stamp = h.next() // for the node's RecStart record
	return out
}

// handleDispatch policy-checks and prepares a frontier activity. On
// success the node must force-log the prepared outcome at the returned
// stamp BEFORE asking for CommitLocal: a crash after the subsystem
// prepare but before that record is the orphan window recovery resolves
// by presumed abort, and a committed effect without a log record would
// be unrepairable.
func (h *Hub) handleDispatch(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("dispatch for unknown process %s", req.Proc)
	}
	if hp.phase == hubParked {
		out := h.resp(StPark)
		out.Victim = string(hp.id)
		return out
	}
	if hp.phase != hubRunning {
		return h.errf("dispatch for %s in phase %d", hp.id, hp.phase)
	}
	if hp.abortPending {
		return h.resp(StVictim)
	}
	local := int(req.Local)
	a := hp.def.Activity(local)
	if a == nil {
		return h.errf("dispatch for unknown activity %s/%d", hp.id, local)
	}
	if ok, _ := h.pol.MayDispatch(h.view(), hp.id, a); !ok {
		return h.resp(StPolicyWait)
	}
	if h.parkedConflict(hp.id, a.Service) {
		return h.resp(StPolicyWait)
	}
	res, err := h.fed.Invoke(string(hp.origin), a.Service, subsystem.Prepare)
	switch {
	case errors.Is(err, subsystem.ErrLocked):
		return h.resp(StLockWait)
	case subsystem.IsInvocationFailure(err):
		return h.invocationFailed(hp, local, a.Service, a.Kind)
	case err != nil:
		return h.errf("invoke %s/%s: %v", hp.id, a.Service, err)
	}
	sub, _ := h.fed.Owner(a.Service)
	hp.running[local] = a.Service
	hp.inflight[local] = hubTx{sub: sub, tx: res.Tx, service: a.Service}
	h.pol.Bump()
	out := h.resp(StOK)
	out.Tx = int64(res.Tx)
	out.Subsystem = sub.Name()
	out.Service = a.Service
	out.Stamp = h.next() // for the node's "prepared" outcome record
	// Kill window: the subsystem transaction is prepared and the stamp
	// issued, but the response dies with the hub — the node never logs
	// the prepared outcome, leaving an orphan the reopen's recovery
	// presumes aborted.
	h.injectPoint(fault.PointHubDispatch)
	return out
}

// invocationFailed mirrors the engine's failed-completion block: a
// retriable activity re-invokes (the node logs the aborted outcome at
// the stamp); anything else is a definitive failure (Definition 4).
func (h *Hub) invocationFailed(hp *hubProc, local int, service string, kind activity.Kind) *Frame {
	if kind.GuaranteedToCommit() {
		out := h.resp(StFailedTransient)
		out.Stamp = h.next() // for the node's "aborted" outcome record
		return out
	}
	// Permanent failure: FailedInvoke event, then the instance's failure
	// plan — ◁ alternative / forward recovery, or backward recovery.
	// The node computes the identical plan from its own mirror instance;
	// the response only carries stamps and which block ran.
	stampFail := h.next() // for the node's RecFailed record
	h.pol.AppendEvent(&policy.Event{
		Seq: stampFail, Proc: hp.id, Local: local, Service: service, Kind: kind,
		Typ: schedule.FailedInvoke,
	})
	plan, err := hp.inst.MarkFailed(local)
	if err != nil {
		return h.errf("mark failed %s/%d: %v", hp.id, local, err)
	}
	out := h.resp(StFailedPermanent)
	out.Stamp = stampFail
	if hp.abortPending {
		// A pending abort supersedes the failure's local plan.
		out.Flag2 = true
		h.pol.Bump()
		return out
	}
	if plan.Abort {
		hp.phase = hubAborting
		hp.recovery = plan.Steps
		out.Flag = true
		out.Stamp2 = h.next() // for the node's RecAbortBegin record
		h.pol.AppendEvent(&policy.Event{Seq: out.Stamp2, Proc: hp.id, Typ: schedule.AbortBegin})
		h.cascadeDependents(hp)
	} else {
		hp.recovery = plan.Steps
	}
	h.pol.Bump()
	return out
}

// cascadeDependents mirrors the engine's cascading aborts (PREDCascade).
// Victims may be owned by other nodes; they learn through StVictim on
// their next dispatch-class RPC or an idle poll.
func (h *Hub) cascadeDependents(hp *hubProc) {
	for _, id := range h.pol.CascadeVictims(h.view(), hp.id, hp.recovery) {
		q := h.byID[id]
		if q == nil || q.phase != hubRunning || q.abortPending || q.decided {
			continue
		}
		q.abortPending = true
		h.queueVictim(q)
	}
}

// queueVictim records a designation for delivery through the owner's
// idle polls (dispatch-class RPCs deliver it redundantly).
func (h *Hub) queueVictim(hp *hubProc) {
	if n := h.nodes[hp.node]; n != nil && !n.dead {
		n.victims = append(n.victims, hp.id)
	}
}

// handleCommitLocal resolves a prepared frontier activity after the
// node force-logged it: commit immediately when the activity is
// compensatable or the process has no active conflicting predecessor,
// else defer under Lemma 1 (the transaction stays prepared, its event
// tentative).
func (h *Hub) handleCommitLocal(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("commit-local for unknown process %s", req.Proc)
	}
	local := int(req.Local)
	ptx, ok := hp.inflight[local]
	if !ok {
		return h.errf("commit-local for %s/%d with no in-flight transaction", hp.id, local)
	}
	a := hp.def.Activity(local)
	delete(hp.running, local)
	delete(hp.inflight, local)
	h.pol.Bump()
	if a.Kind == activity.Compensatable || !h.pol.HasActiveConflictPred(h.view(), hp.id) {
		if err := ptx.sub.CommitPrepared(ptx.tx); err != nil {
			return h.errf("commit %s/%s: %v", hp.id, ptx.service, err)
		}
		stamp := h.next() // for the node's RecResolved(commit) record
		if err := hp.inst.MarkCommitted(local); err != nil {
			return h.errf("%v", err)
		}
		hp.committedEvents++
		h.pol.AppendEvent(&policy.Event{
			Seq: stamp, Proc: hp.id, Local: local, Service: ptx.service, Kind: a.Kind,
			Typ: schedule.Invoke,
		})
		out := h.resp(StOK)
		out.Stamp = stamp
		out.Tx = int64(ptx.tx)
		out.Subsystem = ptx.sub.Name()
		out.Service = ptx.service
		return out
	}
	if err := hp.inst.MarkPrepared(local); err != nil {
		return h.errf("%v", err)
	}
	hp.prepared[local] = ptx
	h.pol.AppendEvent(&policy.Event{
		Seq: h.next(), Proc: hp.id, Local: local, Service: ptx.service, Kind: a.Kind,
		Typ: schedule.Invoke, Tentative: true,
	})
	return h.resp(StDeferred)
}

// handleStepDispatch gates and prepares a recovery step (Lemmas 2 and 3
// plus the forced-order and defer-to-aborting guards, exactly the
// engine's dispatchRecoveryStep). Step invocation failures are always
// transient: the node re-invokes, no record is written.
func (h *Hub) handleStepDispatch(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("step-dispatch for unknown process %s", req.Proc)
	}
	if hp.phase == hubParked {
		// The park raced an in-flight (or next-round retried) dispatch
		// from the owner: the process was parked between the node's last
		// observation and this RPC. Granting here would execute a step
		// the composed recovery also replans.
		out := h.resp(StPark)
		out.Victim = string(hp.id)
		return out
	}
	if h.parkedConflict(hp.id, req.Service) {
		return h.resp(StPolicyWait)
	}
	st := process.Step{Kind: process.StepKind(req.Extra), Local: int(req.Local), Service: req.Service}
	var kind activity.Kind
	switch st.Kind {
	case process.StepCompensate:
		if !h.pol.Lemma2Clear(h.view(), hp.id, st) {
			return h.resp(StPolicyWait)
		}
		kind = activity.Compensation
	case process.StepInvoke:
		if !h.pol.Lemma3Clear(h.view(), hp.id, st) {
			return h.resp(StPolicyWait)
		}
		if !h.pol.Lemma1ClearForward(h.view(), hp.id, st) {
			return h.resp(StPolicyWait)
		}
		if !h.pol.StepForcedClear(h.view(), hp.id, st) {
			return h.resp(StPolicyWait)
		}
		if _, deferred := h.pol.DeferToAborting(h.view(), hp.id, st); deferred {
			return h.resp(StPolicyWait)
		}
		kind = hp.def.Activity(st.Local).Kind
	default:
		return h.errf("step-dispatch with kind %v", st.Kind)
	}
	res, err := h.fed.Invoke(string(hp.origin), st.Service, subsystem.Prepare)
	switch {
	case errors.Is(err, subsystem.ErrLocked):
		return h.resp(StLockWait)
	case subsystem.IsInvocationFailure(err):
		return h.resp(StFailedTransient)
	case err != nil:
		return h.errf("invoke step %s/%s: %v", hp.id, st.Service, err)
	}
	sub, _ := h.fed.Owner(st.Service)
	hp.recoveryBusy = true
	hp.recoveryBusySvc = st.Service
	hp.stepTx = hubTx{sub: sub, tx: res.Tx, service: st.Service}
	h.pol.Bump()
	out := h.resp(StOK)
	out.Tx = int64(res.Tx)
	out.Subsystem = sub.Name()
	out.Kind = uint8(kind)
	out.Stamp = h.next() // for the node's RecCompensate / committed-outcome record
	return out
}

// handleStepCommit commits the prepared step transaction after the node
// force-logged it (the log-then-commit order whose crash window lands
// on recovery's redo rule).
func (h *Hub) handleStepCommit(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("step-commit for unknown process %s", req.Proc)
	}
	if !hp.recoveryBusy {
		return h.errf("step-commit for %s with no step in flight", hp.id)
	}
	st := process.Step{Kind: process.StepKind(req.Extra), Local: int(req.Local), Service: req.Service}
	ptx := hp.stepTx
	hp.recoveryBusy = false
	hp.recoveryBusySvc = ""
	hp.stepTx = hubTx{}
	h.pol.Bump()
	if err := ptx.sub.CommitPrepared(ptx.tx); err != nil {
		return h.errf("commit step %s/%s: %v", hp.id, st.Service, err)
	}
	if len(hp.recovery) > 0 && hp.recovery[0] == st {
		hp.recovery = hp.recovery[1:]
	}
	hp.committedEvents++
	switch st.Kind {
	case process.StepCompensate:
		h.pol.MarkCompensated(hp.id, st.Local)
		h.pol.AppendEvent(&policy.Event{
			Seq: h.next(), Proc: hp.id, Local: st.Local, Service: st.Service,
			Kind: activity.Compensation, Typ: schedule.Invoke, Inverse: true,
		})
	case process.StepInvoke:
		h.pol.AppendEvent(&policy.Event{
			Seq: h.next(), Proc: hp.id, Local: st.Local, Service: st.Service,
			Kind: activity.Kind(req.Kind), Typ: schedule.Invoke,
		})
	}
	if err := hp.inst.ApplyStep(st); err != nil {
		return h.errf("%v", err)
	}
	return h.resp(StOK)
}

// handleAbortTx rolls back one prepared transaction: the
// StepAbortPrepared resolution of an abandoned branch (Flag set — the
// mirror step is applied) or an abort-completion leftover. The node
// logs the abort resolution at the stamp when Flag is set in the
// response.
func (h *Hub) handleAbortTx(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("abort-tx for unknown process %s", req.Proc)
	}
	local := int(req.Local)
	st := process.Step{Kind: process.StepAbortPrepared, Local: local, Service: req.Service}
	if req.Flag && len(hp.recovery) > 0 && hp.recovery[0].Kind == process.StepAbortPrepared && hp.recovery[0].Local == local {
		hp.recovery = hp.recovery[1:]
	}
	out := h.resp(StOK)
	if ptx, ok := hp.prepared[local]; ok {
		if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
			out.Flag = true
			out.Tx = int64(ptx.tx)
			out.Subsystem = ptx.sub.Name()
			out.Service = ptx.service
			out.Stamp = h.next() // for the node's RecResolved(abort) record
		}
		delete(hp.prepared, local)
	}
	h.pol.EraseTentative(hp.id, local)
	if req.Flag {
		_ = hp.inst.ApplyStep(st)
	}
	h.pol.Bump()
	return out
}

// handleAbortBegin starts backward recovery: both mirrors compute the
// identical completion C(P_i) from their instances.
func (h *Hub) handleAbortBegin(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("abort-begin for unknown process %s", req.Proc)
	}
	steps, err := hp.inst.Abort()
	if err != nil {
		return h.errf("abort %s: %v", hp.id, err)
	}
	hp.abortPending = false
	hp.phase = hubAborting
	hp.recovery = steps
	out := h.resp(StOK)
	out.Stamp = h.next() // for the node's RecAbortBegin record
	h.pol.AppendEvent(&policy.Event{Seq: out.Stamp, Proc: hp.id, Typ: schedule.AbortBegin})
	h.cascadeDependents(hp)
	h.pol.Bump()
	return out
}

// handleCommitClear is the Lemma-1 gate for the 2PC commit of a
// process's prepared set. Granting is stable: active conflicting
// predecessor sets only shrink (new events of other processes order
// after ours; tentative events only finalize to later positions or
// erase), so a granted decision cannot be invalidated — the grant marks
// the process decided, excluding it from victim designation, and the
// node force-logs RecDecision at the stamp before resolving.
func (h *Hub) handleCommitClear(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("commit-clear for unknown process %s", req.Proc)
	}
	if hp.abortPending {
		return h.resp(StVictim)
	}
	// The Lemma-1 gate only guards a deferred prepared set — a process
	// with nothing prepared terminates unconditionally, exactly like the
	// engine's tryFinish (otherwise a zombie predecessor could block a
	// fully committed process forever).
	if len(hp.prepared) == 0 {
		return h.resp(StOK)
	}
	if h.pol.HasActiveConflictPred(h.view(), hp.id) {
		return h.resp(StNotClear)
	}
	out := h.resp(StOK)
	if hp.inst.Done() {
		hp.decided = true
	}
	out.Flag = true
	out.Stamp = h.next() // for the node's RecDecision record
	// Kill window: the decision is granted hub-side but the stamp dies
	// with the hub before the node can log RecDecision — the reopen's
	// recovery sees only an undecided prepared set and presumes abort,
	// reconciling any already-settled participant through TxFate.
	h.injectPoint(fault.PointHubDecision)
	return out
}

// handleResolve commits one prepared 2PC participant; the tentative
// event finalizes at the resolve stamp (its locks were held throughout,
// so the move is conflict-safe — same argument as FinalizeTentative in
// the engine).
func (h *Hub) handleResolve(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("resolve for unknown process %s", req.Proc)
	}
	local := int(req.Local)
	ptx, ok := hp.prepared[local]
	if !ok {
		return h.errf("resolve for %s/%d with no prepared transaction", hp.id, local)
	}
	if err := ptx.sub.CommitPrepared(ptx.tx); err != nil {
		return h.errf("resolve %s/%s: %v", hp.id, ptx.service, err)
	}
	stamp := h.next() // for the node's RecResolved(commit) record
	if err := hp.inst.MarkCommitted(local); err != nil {
		return h.errf("%v", err)
	}
	h.pol.FinalizeTentative(hp.id, local, stamp)
	delete(hp.prepared, local)
	hp.committedEvents++
	h.pol.Bump()
	out := h.resp(StOK)
	out.Stamp = stamp
	out.Tx = int64(ptx.tx)
	out.Subsystem = ptx.sub.Name()
	out.Service = ptx.service
	// Kill window: the participant is committed at its subsystem but
	// the node never logs RecResolved — with RecDecision already
	// logged, the reopen's recovery presumes commit and redoes the
	// resolution idempotently through the subsystem's TxFate.
	h.injectPoint(fault.PointHubResolve)
	return out
}

// handleTerminate emits the terminal transition. The engine's
// commitDeferredIfPossible has no hub-side equivalent — blocked nodes
// poll CommitClear and observe the unblocking themselves.
func (h *Hub) handleTerminate(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("terminate for unknown process %s", req.Proc)
	}
	if hp.phase == hubParked {
		// A quiescence sweep on another node's idle poll parked this
		// process while its terminate was in flight. Parked processes
		// must not log a terminate record — recovery finishes them.
		out := h.resp(StPark)
		out.Victim = string(hp.id)
		return out
	}
	hp.phase = hubDone
	hp.fate = req.Flag
	out := h.resp(StOK)
	out.Stamp = h.next() // for the node's RecTerminate record
	h.pol.AppendEvent(&policy.Event{Seq: out.Stamp, Proc: hp.id, Typ: schedule.Terminate, Committed: req.Flag})
	hp.inst.MarkTerminated(req.Flag)
	h.pol.Bump()
	return out
}

// handleFailed is the node-reported invocation failure: the transport
// voided a dispatch after retry exhaustion (Cancel certified it never
// ran), which the engine treats as an invocation failure the resilience
// layer could not mask.
func (h *Hub) handleFailed(req *Frame) *Frame {
	hp := h.byID[process.ID(req.Proc)]
	if hp == nil {
		return h.errf("failed-report for unknown process %s", req.Proc)
	}
	a := hp.def.Activity(int(req.Local))
	if a == nil {
		return h.errf("failed-report for unknown activity %s/%d", hp.id, req.Local)
	}
	return h.invocationFailed(hp, int(req.Local), a.Service, a.Kind)
}

// Reattach fates, carried in the response Extra field. After a hub
// restart (or a node's own lease-expiry exile) the node asks, per
// in-flight process, what the hub's recovered view says became of it.
const (
	// ReattachUnknown: the hub has never heard of the incarnation — the
	// admit response was lost before the node could force RecStart, so
	// no WAL record exists and re-admitting the same id is safe (had any
	// record existed, recovery would have terminated it and a fate would
	// be known).
	ReattachUnknown int32 = iota
	// ReattachCommitted: the incarnation terminated committed. The node
	// marks it done WITHOUT logging — the terminate record already
	// exists (pre-crash or in the recovery tail).
	ReattachCommitted
	// ReattachAborted: the incarnation terminated aborted (or recovery
	// will abort it). If the node asked for a restart (Flag) and the
	// origin is not already live elsewhere, the response carries a fresh
	// incarnation grant: Flag set, Victim = new id, Stamp2 = suffix.
	ReattachAborted
	// ReattachParked: the incarnation is a zombie or parked — the node
	// must stop driving it and log nothing; post-run composed recovery
	// finishes it.
	ReattachParked
	// ReattachLive: the hub still tracks the incarnation as running —
	// the node keeps driving it (the dedup table absorbs any replays).
	ReattachLive
)

// handleReattach answers a node's post-reconnect fate query for one
// in-flight process incarnation (see the Reattach* codes).
func (h *Hub) handleReattach(req *Frame) *Frame {
	h.reg.Inc(metrics.FedReattaches)
	id := process.ID(req.Proc)
	out := h.resp(StOK)
	if hp := h.byID[id]; hp != nil {
		switch {
		case hp.phase == hubDone && hp.fate:
			out.Extra = ReattachCommitted
		case hp.phase == hubDone:
			out.Extra = ReattachAborted
			h.maybeGrantRestart(req, hp.origin, out)
		case hp.phase == hubParked || hp.zombie:
			out.Extra = ReattachParked
		default:
			out.Extra = ReattachLive
		}
		return out
	}
	if fate, ok := h.fates[id]; ok {
		// Recovered fate from the reopen's composed recovery pass.
		if fate {
			out.Extra = ReattachCommitted
		} else {
			out.Extra = ReattachAborted
			h.maybeGrantRestart(req, scheduler.Origin(id), out)
		}
		return out
	}
	out.Extra = ReattachUnknown
	return out
}

// maybeGrantRestart attaches a fresh-incarnation grant to an
// aborted-fate reattach response when the node asked for one (Flag) and
// no other incarnation of the origin is live — adoption or an earlier
// reattach may already have re-homed it, and two live incarnations of
// one origin would double-execute the process.
func (h *Hub) maybeGrantRestart(req *Frame, origin process.ID, out *Frame) {
	if !req.Flag {
		return
	}
	if h.pending[string(origin)] {
		// An un-admitted restart incarnation (adoption offer or earlier
		// grant) is already out for this origin — it counts as live even
		// though byID can't see it yet.
		return
	}
	for _, oid := range h.order {
		if q := h.byID[oid]; q.origin == origin && q.phase != hubDone {
			return
		}
	}
	suffix := h.maxSuffix[string(origin)] + 1
	h.maxSuffix[string(origin)] = suffix
	h.pending[string(origin)] = true
	out.Flag = true
	out.Victim = fmt.Sprintf("%s+r%d", origin, suffix)
	out.Stamp2 = int64(suffix)
}

// handleIdle is cluster-wide stall detection. A node reports the
// progress generation (Gen) of its latest response when a full driver
// round made no progress; Flag marks the node as finished (all owned
// work terminal). When every live node is idle at the current
// generation, the hub designates a victim exactly like the engine's
// resolveStall — the abort breaks the cross-node wait cycle.
func (h *Hub) handleIdle(req *Frame) *Frame {
	n := h.nodes[req.Node]
	if n == nil {
		return h.errf("idle from unknown node %d", req.Node)
	}
	// Deliver a queued victim or park designation first.
	for len(n.victims) > 0 {
		id := n.victims[0]
		n.victims = n.victims[1:]
		if hp := h.byID[id]; hp != nil && hp.abortPending && hp.phase == hubRunning {
			out := h.resp(StVictim)
			out.Victim = string(id)
			return out
		}
	}
	if len(n.parks) > 0 {
		id := n.parks[0]
		n.parks = n.parks[1:]
		out := h.resp(StPark)
		out.Victim = string(id)
		return out
	}
	if len(n.adopts) > 0 {
		of := n.adopts[0]
		n.adopts = n.adopts[1:]
		out := h.resp(StAdopt)
		out.Origin = string(of.origin)
		out.Victim = string(of.id)
		out.Stamp2 = int64(of.arrival)
		out.Extra = int32(of.suffix)
		return out
	}
	if req.Flag {
		n.done = true
		return h.resp(StOK)
	}
	// Idle polls double as the lease sweep: a partitioned node cannot
	// refresh its lease, and the quiescent survivors polling here are
	// exactly the moment its expiry unblocks them (zombify + adopt).
	h.expireLocked()
	if req.Gen < h.stamp {
		return h.resp(StOK) // stale: progress happened since, re-poll
	}
	n.idleGen = req.Gen
	for _, other := range h.nodes {
		if other.dead || other.done {
			continue
		}
		if other.idleGen != h.stamp {
			return h.resp(StOK)
		}
	}
	// Cluster-wide quiescence: designate a victim.
	h.stalls++
	if h.stalls > h.cfg.MaxStalls {
		return h.errf("stalled with active processes and no progress (%d designations)", h.stalls)
	}
	victim := h.designateVictim()
	if victim == nil {
		return h.parkBlocked(req)
	}
	victim.abortPending = true
	h.reg.Inc(metrics.FedVictims)
	h.next() // progress bump: every idle mark is now stale
	if victim.node == req.Node {
		out := h.resp(StVictim)
		out.Victim = string(victim.id)
		return out
	}
	h.queueVictim(victim)
	return h.resp(StOK)
}

// parkBlocked handles quiescence with no designatable victim. With a
// dead node in the cluster this is the zombie-blocked case: surviving
// aborting processes whose next recovery step the Lemma-2/Lemma-3
// gates hold behind a zombie's uncompensated events — events only the
// post-run composed recovery will compensate. Parking hands exactly
// that contract to the node: stop driving the process, log no
// terminate record, and let recovery finish its group abort in correct
// global reverse order (it rebuilds the instance from the stitched
// WALs and re-plans the remaining steps). The parked process's
// subsystem residue is settled like a dead node's undecided work —
// aborted, which is what recovery will presume from its unresolved log
// records — and its policy events stay active so conflicting survivors
// still cannot commit past work that recovery will compensate.
// Without a dead node a nil victim means the stall logic itself is
// broken, which stays a hard error.
func (h *Hub) parkBlocked(req *Frame) *Frame {
	anyDead := false
	for _, n := range h.nodes {
		if n.dead {
			anyDead = true
			break
		}
	}
	if !anyDead {
		// A revived node clears its dead flag but leaves its pre-death
		// processes as zombies, which block survivors just the same.
		for _, id := range h.order {
			if hp := h.byID[id]; hp.zombie && hp.phase != hubDone {
				anyDead = true
				break
			}
		}
	}
	if !anyDead {
		return h.errf("unresolvable stall")
	}
	var own *hubProc
	parked := 0
	for _, id := range h.order {
		hp := h.byID[id]
		n := h.nodes[hp.node]
		if n == nil || n.dead || hp.zombie || hp.phase != hubAborting ||
			len(hp.running) > 0 || hp.recoveryBusy {
			continue
		}
		for local, ptx := range hp.prepared {
			_ = ptx.sub.AbortPrepared(ptx.tx)
			delete(hp.prepared, local)
		}
		hp.phase = hubParked
		parked++
		if hp.node == req.Node && own == nil {
			own = hp
		} else {
			n.parks = append(n.parks, hp.id)
		}
	}
	if parked == 0 {
		return h.errf("unresolvable stall\n%s", h.dumpLocked())
	}
	h.pol.Bump()
	h.next() // progress bump: every idle mark is now stale
	if own != nil {
		out := h.resp(StPark)
		out.Victim = string(own.id)
		return out
	}
	return h.resp(StOK)
}

// parkedConflict reports whether a service conflicts with any parked
// process's remaining forward/compensation steps. Those steps execute
// only during post-run composed recovery — after every live event in
// the stitched log — so conflicting live work admitted now would be
// ordered before them, inverting the serialization order the forced
// gates promised while the process was still live. Blocked survivors
// quiesce and feed the victim/park cascade until recovery owns all the
// remaining conflicting work. StepAbortPrepared entries are skipped:
// parkBlocked already rolled the prepared transactions back.
func (h *Hub) parkedConflict(id process.ID, svc string) bool {
	for _, qid := range h.order {
		q := h.byID[qid]
		if q.phase != hubParked || q.id == id {
			continue
		}
		for _, st := range q.recovery {
			if st.Kind == process.StepAbortPrepared {
				continue
			}
			if h.table.Conflicts(st.Service, svc) {
				return true
			}
		}
	}
	return false
}

// designateVictim mirrors the engine's resolveStall over live-owned
// processes: the youngest-arrival running process with no in-flight
// work, falling back to a finished process blocked on its deferred 2PC
// commit. Dead nodes' processes are zombies — they stay policy-active
// (their uncommitted work must block conflicting survivors until
// recovery compensates it) but are never designated.
func (h *Hub) designateVictim() *hubProc {
	live := func(hp *hubProc) bool {
		n := h.nodes[hp.node]
		// A zombie stays undesignatable even after its owner revives:
		// its residue was settled at death and belongs to recovery.
		return n != nil && !n.dead && !hp.zombie
	}
	var victim *hubProc
	for _, id := range h.order {
		hp := h.byID[id]
		if !live(hp) || hp.phase != hubRunning || len(hp.running) > 0 ||
			hp.recoveryBusy || hp.abortPending || hp.decided || hp.inst.Done() {
			continue
		}
		if victim == nil || hp.arrival > victim.arrival {
			victim = hp
		}
	}
	if victim != nil {
		return victim
	}
	for _, id := range h.order {
		hp := h.byID[id]
		if !live(hp) || hp.phase != hubRunning || len(hp.running) > 0 ||
			hp.recoveryBusy || hp.abortPending || hp.decided {
			continue
		}
		if hp.inst.Done() && len(hp.prepared) > 0 && h.pol.HasActiveConflictPred(h.view(), hp.id) {
			if victim == nil || hp.arrival > victim.arrival {
				victim = hp
			}
		}
	}
	return victim
}

// NodeDown declares a scheduler node dead. Its processes become
// zombies: they keep their policy events (conflicting survivors must
// not commit past work that recovery will compensate) and are excluded
// from stall accounting and victim designation. Their subsystem
// transactions are settled the way recovery will see them, releasing
// locks so surviving compensations cannot deadlock on a corpse:
//
//   - decided processes (RecDecision granted): prepared participants
//     COMMIT — recovery presumes commit after a logged decision, and if
//     the record never made it the presumed abort reconciles through
//     the subsystem's journaled fate (TxFate wins);
//   - everything else (in-flight prepares, Lemma-1 deferred sets):
//     ABORT — the node's log shows at most an unresolved prepare, which
//     recovery presumes aborted; again TxFate reconciles.
//
// In-flight recovery-step transactions are left alone: the node may
// have force-logged the step outcome, which recovery must redo-COMMIT,
// and the hub cannot know — the defined federation crash points never
// fall in that window.
func (h *Hub) NodeDown(node uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.killed {
		return // the corpse of a killed hub reacts to nothing
	}
	if h.nodeDownLocked(node) {
		h.adoptOrphans(node)
	}
}

// nodeDownLocked zombifies and settles a node's processes; reports
// whether the node transitioned to dead.
func (h *Hub) nodeDownLocked(node uint32) bool {
	n := h.nodes[node]
	if n == nil || n.dead {
		return false
	}
	n.dead = true
	h.reg.Inc(metrics.FedNodeDeaths)
	for _, id := range h.order {
		hp := h.byID[id]
		if hp.node != node || hp.phase == hubDone {
			continue
		}
		hp.zombie = true
		if hp.phase == hubParked {
			continue // parked residue was already settled by parkBlocked
		}
		if hp.decided {
			for local, ptx := range hp.prepared {
				if err := ptx.sub.CommitPrepared(ptx.tx); err == nil {
					_ = hp.inst.MarkCommitted(local)
				}
			}
			continue
		}
		for local, ptx := range hp.inflight {
			_ = ptx.sub.AbortPrepared(ptx.tx)
			delete(hp.inflight, local)
			delete(hp.running, local)
		}
		for _, ptx := range hp.prepared {
			_ = ptx.sub.AbortPrepared(ptx.tx)
		}
	}
	h.pol.Bump()
	return true
}

// ExpireLeases runs one lease sweep: every live, unfinished node whose
// last frame is older than LeaseTTL is declared dead (zombify + settle,
// exactly NodeDown) and its adoptable orphans are re-homed. The cluster
// calls this from a sweeper; idle polls piggyback it so a quiescent
// cluster blocked on a partitioned node unblocks without outside help.
func (h *Hub) ExpireLeases() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expireLocked()
}

func (h *Hub) expireLocked() {
	if h.cfg.LeaseTTL <= 0 || h.killed {
		return
	}
	now := h.clock()
	for id, n := range h.nodes {
		if n.dead || n.done {
			continue
		}
		seen, ok := h.lastSeen[id]
		if !ok || now.Sub(seen) <= h.cfg.LeaseTTL {
			continue
		}
		h.reg.Inc(metrics.FedLeaseExpiries)
		if h.nodeDownLocked(id) {
			h.adoptOrphans(id)
		}
	}
}

// adoptOrphans re-homes a dead node's safe orphans: running,
// undecided processes with zero committed policy events. Such a
// process has nothing the composed recovery must compensate (its
// in-flight and deferred subsystem transactions were just aborted by
// nodeDownLocked), so its origin can restart on a survivor immediately
// instead of blocking until post-run recovery. Anything with committed
// events stays a plain zombie — its events must keep blocking
// conflicting survivors until recovery compensates them (the paper's
// zombie rule), and re-executing the origin before that would reorder
// committed work.
func (h *Hub) adoptOrphans(node uint32) {
	var survivors []uint32
	for id, n := range h.nodes {
		if id != node && !n.dead && !n.done {
			survivors = append(survivors, id)
		}
	}
	if len(survivors) == 0 {
		return // no one to adopt; recovery settles the zombies
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	adopted := 0
	for _, id := range h.order {
		hp := h.byID[id]
		if hp.node != node || hp.phase != hubRunning || hp.decided ||
			hp.recoveryBusy || len(hp.recovery) > 0 || hp.committedEvents > 0 {
			continue
		}
		// Erase the tentative events of the (already aborted) Lemma-1
		// deferred set and retire the incarnation; recovery will
		// abort-terminate it from its RecStart record.
		for local := range hp.prepared {
			h.pol.EraseTentative(hp.id, local)
			delete(hp.prepared, local)
		}
		hp.phase = hubDone
		hp.fate = false
		suffix := h.maxSuffix[string(hp.origin)] + 1
		h.maxSuffix[string(hp.origin)] = suffix
		h.pending[string(hp.origin)] = true
		newID := process.ID(fmt.Sprintf("%s+r%d", hp.origin, suffix))
		dst := survivors[adopted%len(survivors)]
		h.nodes[dst].adopts = append(h.nodes[dst].adopts, adoptOffer{
			origin: hp.origin, id: newID, arrival: hp.arrival, suffix: suffix,
		})
		// The done report, if the survivor already filed one, is stale:
		// it has work again and must resume polling.
		h.nodes[dst].done = false
		adopted++
		h.reg.Inc(metrics.FedAdoptions)
	}
	if adopted > 0 {
		h.pol.Bump()
		h.next() // progress bump: idle marks predate the new work
	}
}

// Stalls reports how many victim designations the hub performed.
func (h *Hub) Stalls() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stalls
}

// Stamp reports the current global stamp (for diagnostics).
func (h *Hub) Stamp() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stamp
}

// DumpState renders hub state for stall diagnostics.
func (h *Hub) DumpState() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dumpLocked()
}

func (h *Hub) dumpLocked() string {
	s := fmt.Sprintf("stamp=%d stalls=%d\n", h.stamp, h.stalls)
	ids := make([]string, 0, len(h.byID))
	for id := range h.byID {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		hp := h.byID[process.ID(id)]
		if hp.phase == hubDone {
			continue
		}
		s += fmt.Sprintf("  %s node=%d phase=%d done=%v running=%d recovery=%d busy=%v abortPending=%v prepared=%d decided=%v\n",
			hp.id, hp.node, hp.phase, hp.inst.Done(), len(hp.running), len(hp.recovery),
			hp.recoveryBusy, hp.abortPending, len(hp.prepared), hp.decided)
	}
	return s
}
