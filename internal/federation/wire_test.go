package federation

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// allMsgTypes enumerates every defined message type.
func allMsgTypes() []MsgType {
	var ts []MsgType
	for t := MsgHello; t <= msgTypeMax; t++ {
		ts = append(ts, t)
	}
	return ts
}

// allStatuses enumerates every defined status plus the zero value
// (request frames carry status 0).
func allStatuses() []Status {
	ss := []Status{0}
	for s := StOK; s <= statusMax; s++ {
		ss = append(ss, s)
	}
	return ss
}

func randString(rng *rand.Rand, max int) string {
	n := rng.Intn(max + 1)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte(rng.Intn(256)))
	}
	return b.String()
}

func randFrame(rng *rand.Rand) *Frame {
	types := allMsgTypes()
	statuses := allStatuses()
	extremes := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, math.MaxInt32, math.MinInt32}
	i64 := func() int64 {
		if rng.Intn(3) == 0 {
			return extremes[rng.Intn(len(extremes))]
		}
		return rng.Int63() - rng.Int63()
	}
	return &Frame{
		Type:   types[rng.Intn(len(types))],
		Status: statuses[rng.Intn(len(statuses))],
		Kind:   uint8(rng.Intn(256)),
		Flag:   rng.Intn(2) == 0,
		Flag2:  rng.Intn(2) == 0,
		Node:   rng.Uint32(),
		Epoch:  rng.Uint32(),
		Req:    rng.Uint64(),
		Local:  int32(rng.Uint32()),
		Extra:  int32(rng.Uint32()),
		Tx:     i64(), Stamp: i64(), Stamp2: i64(), Gen: i64(),
		Proc: randString(rng, 64), Origin: randString(rng, 64),
		Service: randString(rng, 64), Subsystem: randString(rng, 64),
		Victim: randString(rng, 64), Err: randString(rng, 128),
	}
}

// TestWireRoundTrip is the codec property test: for every message
// type — including the zero-value frame of the type and a frame with
// every string at MaxString and extreme integer values — and for a
// large randomized sample, encode→decode must reproduce the frame
// exactly, both at the payload layer and through the length-prefixed
// stream layer.
func TestWireRoundTrip(t *testing.T) {
	check := func(t *testing.T, f *Frame) {
		t.Helper()
		got, err := DecodePayload(EncodePayload(f))
		if err != nil {
			t.Fatalf("decode of encoded frame %+v: %v", f, err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("payload round-trip mismatch:\nin:  %+v\nout: %+v", f, got)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err = ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read of written frame: %v", err)
		}
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("stream round-trip mismatch:\nin:  %+v\nout: %+v", f, got)
		}
		if buf.Len() != 0 {
			t.Fatalf("ReadFrame left %d bytes unread", buf.Len())
		}
	}

	maxStr := strings.Repeat("x", MaxString)
	for _, typ := range allMsgTypes() {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			// Zero value of the type.
			check(t, &Frame{Type: typ})
			// Every status.
			for _, st := range allStatuses() {
				check(t, &Frame{Type: typ, Status: st})
			}
			// Max-size strings and extreme integers.
			check(t, &Frame{
				Type: typ, Status: statusMax, Kind: 255, Flag: true, Flag2: true,
				Node: math.MaxUint32, Epoch: math.MaxUint32, Req: math.MaxUint64,
				Local: math.MinInt32, Extra: math.MaxInt32,
				Tx: math.MinInt64, Stamp: math.MaxInt64, Stamp2: -1, Gen: math.MinInt64,
				Proc: maxStr, Origin: maxStr, Service: maxStr,
				Subsystem: maxStr, Victim: maxStr, Err: maxStr,
			})
		})
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		check(t, randFrame(rng))
	}
}

// TestWireRejectsMalformed pins the decoder's error contract on the
// malformed classes the fuzz target explores.
func TestWireRejectsMalformed(t *testing.T) {
	valid := EncodePayload(&Frame{Type: MsgDispatch, Proc: "W1", Service: "svc"})

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short-header", valid[:fixedHeader-1], ErrTruncated},
		{"bad-type-zero", append([]byte{0}, valid[1:]...), ErrBadType},
		{"bad-type-high", append([]byte{255}, valid[1:]...), ErrBadType},
		{"bad-status", append([]byte{valid[0], 255}, valid[2:]...), ErrBadStatus},
		{"truncated-string", valid[:len(valid)-1], ErrTruncated},
		{"trailing", append(append([]byte{}, valid...), 0), ErrTrailing},
		{"oversize", make([]byte, MaxFrame+1), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		if _, err := DecodePayload(tc.b); err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Flag bits beyond the defined two are rejected.
	bad := append([]byte{}, valid...)
	bad[3] = 4
	if _, err := DecodePayload(bad); err == nil {
		t.Error("invalid flag bits accepted")
	}

	// A string length claiming more than MaxString is rejected even
	// when the payload is big enough to hold it.
	long := &Frame{Type: MsgHello}
	enc := EncodePayload(long)
	enc[fixedHeader] = 0xFF // Proc length low byte
	enc[fixedHeader+1] = 0xFF
	if _, err := DecodePayload(append(enc, make([]byte, 70000)...)); err != ErrFrameTooLarge {
		// Oversize total wins first; shrink to stay under MaxFrame.
		padded := append(enc, make([]byte, MaxFrame-len(enc)-10)...)
		if _, err := DecodePayload(padded); err != ErrBadString {
			t.Errorf("oversize string length: got %v, want %v", err, ErrBadString)
		}
	}
}
