package federation

import (
	"net"
	"sync"
)

// Server exposes a hub over localhost TCP: one length-prefixed frame
// in, one frame out, per connection, sequentially — the TCP stream
// gives per-connection FIFO, the hub's mutex gives the global serial
// order.
type Server struct {
	hub *Hub
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server for the hub on an ephemeral localhost port.
func Serve(hub *Hub) (*Server, error) {
	return ServeAddr(hub, "127.0.0.1:0")
}

// ServeAddr starts a server on a specific address — a reopened hub
// rebinds the dead incarnation's address so clients' redial loops find
// the new incarnation without reconfiguration.
func ServeAddr(hub *Hub, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{hub: hub, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address for clients.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return // malformed frame or closed peer: drop the connection
		}
		resp := s.hub.Handle(req)
		if resp == nil {
			// The hub is dead (an injected crash point fired): drop the
			// connection without answering — the client sees exactly what
			// kill -9 of the coordination agent looks like.
			return
		}
		resp.Req = req.Req
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting, severs every connection and waits for the
// connection handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
