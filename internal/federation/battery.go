package federation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"transproc/internal/activity"
	"transproc/internal/chaos"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// FedScenario is one fully determined federation-torture case: a
// seeded workload partitioned across nodes, a transport fault plan and
// an optional node-crash point. FedScenarioFor(seed) is a pure
// function, so a failing seed reproduces the exact scenario anywhere.
type FedScenario struct {
	Seed  int64
	Class string
	Mode  policy.Mode
	Nodes int
	// CrashNode/CrashPoint/CrashCount arm a crash-point injector on one
	// node (fed:dispatch, fed:after-prepared, twopc:after-decision,
	// twopc:mid-resolve).
	CrashNode  int
	CrashPoint string
	CrashCount int
	// Wire is the transport fault plan (drops, ambiguous timeouts,
	// duplicates, partition windows).
	Wire chaos.Plan
	// DispatchBudget caps transport retries of invocation RPCs; a
	// partition window longer than the budget voids the dispatch and
	// forces the node onto the failure path.
	DispatchBudget int
	// Rejoin runs a second cluster session over the recovered
	// federation after the crash cycle.
	Rejoin bool
}

// FedScenarioFor derives the deterministic scenario of a seed. Three
// classes cycle by seed: a node killed mid-2PC (after the decision
// record or between participant commits), a partition window cutting a
// node off during cross-node resolution (sometimes long enough to void
// dispatches), and a node crash in the dispatch window followed by
// recovery plus a re-join session. Every class runs under background
// wire chaos.
func FedScenarioFor(seed int64) FedScenario {
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
	sc := FedScenario{
		Seed:  seed,
		Mode:  policy.PRED,
		Nodes: 2 + rng.Intn(2),
		Wire: chaos.Plan{
			Seed:       seed,
			PTransient: 0.02,
			PTimeout:   0.04,
			PDuplicate: 0.04,
		},
	}
	if rng.Intn(3) == 0 {
		sc.Mode = policy.PREDCascade
	}
	switch seed % 3 {
	case 0:
		// Kill a node between its 2PC decision record and the
		// participant commits: the hub and the stitched log disagree
		// about how far resolution got, and recovery must finish the
		// commit under presumed-commit (the decision is logged).
		sc.Class = "fed-kill-mid-2pc"
		sc.CrashNode = rng.Intn(sc.Nodes)
		sc.CrashPoint = fault.PointAfterDecision
		if rng.Intn(2) == 0 {
			sc.CrashPoint = fault.PointMidResolve
		}
		sc.CrashCount = 1 + rng.Intn(2)
	case 1:
		// Partition one node for a window of delivery attempts while
		// cross-node conflicts are in flight. The window is measured in
		// attempts, so it deterministically heals; a third of the seeds
		// shrink the dispatch budget below the window so dispatches void
		// and the node takes the invocation-failure path instead.
		sc.Class = "fed-partition-resolve"
		node := rng.Intn(sc.Nodes)
		from := int64(20 + rng.Intn(200))
		width := int64(150 + rng.Intn(700))
		if rng.Intn(3) == 0 {
			sc.DispatchBudget = 256
			width = 2048
		}
		sc.Wire.Outages = []chaos.Outage{{
			Subsystem: fmt.Sprintf("node%d", node),
			From:      from, To: from + width,
		}}
	default:
		// Crash a node in the dispatch window (before the RPC, or after
		// force-logging "prepared" but before the local commit — the
		// orphan window), recover the stitched history, then re-join:
		// a fresh cluster session runs new work over the recovered
		// federation.
		sc.Class = "fed-crash-rejoin"
		sc.CrashNode = rng.Intn(sc.Nodes)
		sc.CrashPoint = fault.PointFedDispatch
		if rng.Intn(2) == 0 {
			sc.CrashPoint = fault.PointFedAfterPrepared
		}
		sc.CrashCount = 1 + rng.Intn(25)
		sc.Rejoin = true
	}
	return sc
}

// fedTortureProfile is the workload a scenario runs: the differential
// profile plus transient retriable failures.
func fedTortureProfile(seed int64) workload.Profile {
	p := workload.DefaultProfile(seed)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.10
	return p
}

// fedChooseFailures picks deterministic permanent failures for roughly
// a third of the processes (compensatable or pivot forward services
// only), exactly like the crash-torture battery.
func fedChooseFailures(w *workload.Workload, seed int64) []fault.SubsystemFail {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	var rules []fault.SubsystemFail
	for _, j := range w.Jobs {
		if rng.Float64() >= 0.35 {
			continue
		}
		var candidates []string
		for _, svc := range scheduler.Footprint(j.Proc) {
			spec, ok := w.Fed.Spec(svc)
			if ok && (spec.Kind == activity.Compensatable || spec.Kind == activity.Pivot) {
				candidates = append(candidates, svc)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rules = append(rules, fault.SubsystemFail{
			Proc:    string(j.Proc.ID),
			Service: candidates[rng.Intn(len(candidates))],
		})
	}
	return rules
}

func fedTortureWorld(sc FedScenario) (*subsystem.Federation, []*process.Process, []fault.SubsystemFail, error) {
	w, err := workload.Generate(fedTortureProfile(sc.Seed))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("seed %d: generating workload: %w", sc.Seed, err)
	}
	rules := fedChooseFailures(w, sc.Seed)
	for _, r := range rules {
		sub, ok := w.Fed.Owner(r.Service)
		if !ok {
			return nil, nil, nil, fmt.Errorf("seed %d: no owner for failed service %s", sc.Seed, r.Service)
		}
		sub.FailService(r.Proc, r.Service)
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	return w.Fed, defs, rules, nil
}

// RunFedScenario executes one scenario end to end: cluster run (a
// crashed node is declared dead and the survivors drain), stitched
// composed recovery, CheckRecovered over the global history, and — for
// re-join scenarios — a second cluster session over the recovered
// federation. altFired reports whether some origin with a permanently
// failing service still committed, i.e. a ◁ alternative carried it
// forward on a surviving node.
func RunFedScenario(sc FedScenario) (altFired bool, err error) {
	fed, defs, rules, err := fedTortureWorld(sc)
	if err != nil {
		return false, err
	}
	reg := metrics.New()
	cfg := Config{
		Nodes: sc.Nodes, Mode: sc.Mode, MaxRestarts: 8,
		Metrics: reg, Wire: sc.Wire, DispatchBudget: sc.DispatchBudget,
	}
	if sc.CrashPoint != "" {
		cfg.Crash = CrashSpec{Node: sc.CrashNode, Point: sc.CrashPoint, Count: sc.CrashCount}
	}
	c, err := NewCluster(fed, defs, cfg)
	if err != nil {
		return false, fmt.Errorf("seed %d (%s): %w", sc.Seed, sc.Class, err)
	}
	defer c.Close()
	res := c.Run()
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return false, fmt.Errorf("seed %d (%s): node %d: %w", sc.Seed, sc.Class, i, nerr)
		}
	}
	if len(sc.Wire.Outages) > 0 && reg.Counter(metrics.FedWireDrops) == 0 {
		return false, fmt.Errorf("seed %d (%s): partition window never dropped an attempt", sc.Seed, sc.Class)
	}

	// Composed recovery over the stitched per-node WALs, then the full
	// recovery invariant suite on the global history.
	log, pre, _, err := c.Recover()
	if err != nil {
		return false, fmt.Errorf("seed %d (%s): recovery: %w", sc.Seed, sc.Class, err)
	}
	if err := fault.CheckRecovered(fault.CheckInput{
		Fed: fed, Log: log, Defs: defs, PreCrashRecords: pre, PreCrashFull: pre,
	}); err != nil {
		return false, fmt.Errorf("seed %d (%s): %w", sc.Seed, sc.Class, err)
	}

	altFired = altsFired(res, rules, c)

	if sc.Rejoin {
		if err := runRejoin(fed, defs, sc); err != nil {
			return altFired, err
		}
	}
	return altFired, nil
}

// altsFired reports whether an origin with a permanent failure rule
// both failed an activity (a RecFailed record exists) and still
// committed — only a ◁ alternative path can do that.
func altsFired(res *RunResult, rules []fault.SubsystemFail, c *Cluster) bool {
	recs, err := c.Stitched()
	if err != nil {
		return false
	}
	failed := make(map[string]bool)
	for _, r := range recs {
		if r.Type == wal.RecFailed {
			origin := r.Proc
			if i := strings.IndexByte(origin, '+'); i >= 0 {
				origin = origin[:i]
			}
			failed[origin] = true
		}
	}
	committed := make(map[string]bool)
	for id, out := range res.Outcomes {
		origin := string(id)
		if i := strings.IndexByte(origin, '+'); i >= 0 {
			origin = origin[:i]
		}
		if out.Committed {
			committed[origin] = true
		}
	}
	for _, r := range rules {
		if failed[r.Proc] && committed[r.Proc] {
			return true
		}
	}
	return false
}

// runRejoin starts a fresh cluster session over the recovered
// federation — the crashed node re-joins with new work — and asserts
// the session completes with a prefix-reducible schedule and no
// residue of the first session blocking it.
func runRejoin(fed *subsystem.Federation, defs []*process.Process, sc FedScenario) error {
	redefs := make([]*process.Process, len(defs))
	for i, def := range defs {
		redefs[i] = def.WithID(def.ID + "-rj")
	}
	c, err := NewCluster(fed, redefs, Config{
		Nodes: sc.Nodes, Mode: sc.Mode, MaxRestarts: 8, Wire: chaos.Plan{Seed: sc.Seed + 1},
	})
	if err != nil {
		return fmt.Errorf("seed %d (%s): rejoin: %w", sc.Seed, sc.Class, err)
	}
	defer c.Close()
	res := c.Run()
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return fmt.Errorf("seed %d (%s): rejoin node %d: %w", sc.Seed, sc.Class, i, nerr)
		}
	}
	if len(res.Outcomes) < len(redefs) {
		return fmt.Errorf("seed %d (%s): rejoin: %d outcomes for %d processes", sc.Seed, sc.Class, len(res.Outcomes), len(redefs))
	}
	for id, out := range res.Outcomes {
		if !out.Committed && !out.Aborted {
			return fmt.Errorf("seed %d (%s): rejoin process %s not terminal", sc.Seed, sc.Class, id)
		}
	}
	recs, err := c.Stitched()
	if err != nil {
		return fmt.Errorf("seed %d (%s): rejoin stitch: %w", sc.Seed, sc.Class, err)
	}
	table, err := fed.ConflictTable()
	if err != nil {
		return fmt.Errorf("seed %d (%s): rejoin conflict table: %w", sc.Seed, sc.Class, err)
	}
	sched, err := fault.ScheduleFromWAL(table, redefs, recs, len(recs))
	if err != nil {
		return fmt.Errorf("seed %d (%s): rejoin schedule: %w", sc.Seed, sc.Class, err)
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		return fmt.Errorf("seed %d (%s): rejoin PRED: %w", sc.Seed, sc.Class, err)
	}
	if !ok {
		return fmt.Errorf("seed %d (%s): rejoin schedule not prefix-reducible (prefix %d)", sc.Seed, sc.Class, at)
	}
	if doubt := fed.InDoubt(); len(doubt) > 0 {
		return fmt.Errorf("seed %d (%s): rejoin left in-doubt transactions: %v", sc.Seed, sc.Class, doubt)
	}
	return nil
}

// FedSummary aggregates a federation-torture batch.
type FedSummary struct {
	Scenarios int            `json:"scenarios"`
	AltFires  int            `json:"altFires"`
	Failures  []string       `json:"failures,omitempty"`
	ByClass   map[string]int `json:"byClass"`
}

// RunFedTorture runs the scenarios of seeds [first, first+n) and
// collects a summary; every failure message embeds the reproducing
// seed.
func RunFedTorture(first, n int64) FedSummary {
	return RunFedTortureProgress(first, n, nil)
}

// RunFedTortureProgress is RunFedTorture with a per-seed progress hook,
// called before each scenario runs; the CLI uses it to report the
// in-flight reproducing seed when the battery is interrupted.
func RunFedTortureProgress(first, n int64, progress func(seed int64, class string)) FedSummary {
	sum := FedSummary{ByClass: make(map[string]int)}
	for seed := first; seed < first+n; seed++ {
		sc := FedScenarioFor(seed)
		if progress != nil {
			progress(seed, sc.Class)
		}
		sum.Scenarios++
		sum.ByClass[sc.Class]++
		alt, err := RunFedScenario(sc)
		if alt {
			sum.AltFires++
		}
		if err != nil {
			sum.Failures = append(sum.Failures, err.Error())
		}
	}
	return sum
}
