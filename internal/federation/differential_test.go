package federation_test

import (
	"fmt"
	"sync"
	"testing"

	"transproc/internal/chaos"
	"transproc/internal/federation"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/workload"
)

// The cross-node differential battery validates the federation against
// the sequential engine as an oracle. Both sides share the policy layer
// and deterministic per-(origin, service) failure rules, so each
// origin's terminal fate is a pure function of the workload — any
// divergence is a federation bug. Per seed:
//
//  1. the combined schedule reconstructed from all node WALs (stitched
//     by hub stamp) is prefix-reducible, and
//  2. per-origin terminal outcomes equal the sequential oracle's.
//
// Half the seeds add wire chaos (drops, duplicates, ambiguous
// timeouts) with a dispatch budget large enough that no request is
// ever voided: a voided dispatch would surface as an invocation
// failure the oracle never saw, legitimately diverging the fates.
const fedDiffSeeds = 60

func foldOutcomes(out map[process.ID]*scheduler.Outcome) map[string]bool {
	m := make(map[string]bool)
	for id, o := range out {
		origin := string(id)
		for i := 0; i < len(origin); i++ {
			if origin[i] == '+' {
				origin = origin[:i]
				break
			}
		}
		if o.Committed {
			m[origin] = true
		} else if _, seen := m[origin]; !seen {
			m[origin] = false
		}
	}
	return m
}

func runFedDifferential(t *testing.T, seed int64, mode policy.Mode, nodes int, wire bool) (committed, aborted int) {
	t.Helper()
	p := fedProfile(seed)

	// Two identically generated workload copies: the oracle and the
	// cluster must not share mutable subsystem state.
	oracleW := workload.MustGenerate(p)
	fedW := workload.MustGenerate(p)
	rules := chooseRules(oracleW, seed)
	injectRules(t, oracleW.Fed, rules)
	injectRules(t, fedW.Fed, rules)

	schedMode := scheduler.PRED
	if mode == policy.PREDCascade {
		schedMode = scheduler.PREDCascade
	}
	eng, err := scheduler.New(oracleW.Fed, scheduler.Config{Mode: schedMode, MaxRestarts: 64})
	if err != nil {
		t.Fatal(err)
	}
	oracleRes, err := eng.RunJobs(oracleW.Jobs)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}

	cfg := federation.Config{Nodes: nodes, Mode: mode, MaxRestarts: 64}
	if wire {
		cfg.Wire = chaos.Plan{Seed: seed, PTransient: 0.03, PTimeout: 0.06, PDuplicate: 0.06}
		cfg.DispatchBudget = 1 << 16
	}
	defs := defsOf(fedW)
	c, err := federation.NewCluster(fedW.Fed, defs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := c.Run()
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			t.Fatalf("node %d: %v", i, nerr)
		}
	}

	// 1. The stitched cross-node schedule is prefix-reducible and no
	// transaction is left in doubt.
	checkStitched(t, c, fedW.Fed, defs)

	// 2. Terminal per-origin outcomes match the sequential oracle.
	want := foldOutcomes(oracleRes.Outcomes)
	got := foldOutcomes(res.Outcomes)
	if len(want) != len(got) {
		t.Fatalf("origin sets differ: oracle %d, federation %d", len(want), len(got))
	}
	for origin, w := range want {
		g, okG := got[origin]
		if !okG {
			t.Fatalf("origin %s missing from federation outcomes", origin)
		}
		if g != w {
			t.Fatalf("origin %s: oracle committed=%v, federation committed=%v\nrules: %v\nhub:\n%s",
				origin, w, g, rules, c.Hub().DumpState())
		}
		if g {
			committed++
		} else {
			aborted++
		}
	}
	return committed, aborted
}

// TestFedDifferentialPRED runs the full battery of seeded workloads
// through the sequential oracle and a multi-node cluster under PRED.
func TestFedDifferentialPRED(t *testing.T) {
	seeds := int64(fedDiffSeeds)
	if testing.Short() {
		seeds = 12
	}
	var committed, aborted int
	var mu sync.Mutex
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			nodes := 2 + int(seed%3) // 2..4 nodes
			wire := seed%2 == 0      // half the seeds add transport chaos
			c, a := runFedDifferential(t, seed, policy.PRED, nodes, wire)
			mu.Lock()
			committed += c
			aborted += a
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		// Both terminal fates must occur across the battery, otherwise
		// the differential compares trivial all-commit runs.
		if committed == 0 || aborted == 0 {
			t.Errorf("degenerate battery: %d committed, %d aborted origins", committed, aborted)
		}
	})
}

// TestFedDifferentialCascade cross-checks a slice of the battery under
// PREDCascade, whose cascading aborts restart through different paths.
func TestFedDifferentialCascade(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runFedDifferential(t, seed, policy.PREDCascade, 2+int(seed%2), seed%2 == 1)
		})
	}
}
