package federation

import (
	"flag"
	"testing"
)

var (
	hubSeed  = flag.Int64("hub.seed", -1, "run only this hub-torture seed (reproduce a failure)")
	hubFirst = flag.Int64("hub.first", 0, "first hub-torture seed of the battery")
	hubCount = flag.Int64("hub.count", 60, "number of hub-torture seeds to run")
)

// TestHubTortureBattery runs the hub-kill torture battery: for each
// seed a deterministic workload is partitioned across 2-3 scheduler
// nodes and the coordination hub is killed -9 at a seeded point
// (mid-dispatch, inside the 2PC window, or alongside a dying node), or
// a node crashes under lease-based membership and only lease expiry
// may detect it. Every hub reopen is judged by fault.CheckRecovered at
// its boundary, and the final composed recovery over the full
// multi-incarnation stitched history is judged again. A failure names
// the single seed that reproduces it:
//
//	go test ./internal/federation -run HubTortureBattery -hub.seed=N -v
func TestHubTortureBattery(t *testing.T) {
	if *hubSeed >= 0 {
		sc := HubScenarioFor(*hubSeed)
		t.Logf("seed %d: class=%s mode=%v nodes=%d hub={%q, count %d} crash={node %d, %q, count %d} lease=%v wire=%+v",
			sc.Seed, sc.Class, sc.Mode, sc.Nodes, sc.HubPoint, sc.HubCount,
			sc.CrashNode, sc.CrashPoint, sc.CrashCount, sc.LeaseTTL, sc.Wire)
		st, err := RunHubScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("stats: %+v", st)
		return
	}
	first, count := *hubFirst, *hubCount
	if testing.Short() && count > 16 {
		count = 16
	}
	var total HubStats
	byClass := make(map[string]int)
	for seed := first; seed < first+count; seed++ {
		sc := HubScenarioFor(seed)
		byClass[sc.Class]++
		st, err := RunHubScenario(sc)
		total.Kills += st.Kills
		total.Reopens += st.Reopens
		total.Adoptions += st.Adoptions
		total.LeaseExpiries += st.LeaseExpiries
		total.Reattached += st.Reattached
		if err != nil {
			t.Errorf("hub torture scenario failed (reproduce: go test ./internal/federation -run HubTortureBattery -hub.seed=%d -v): %v",
				seed, err)
		}
	}
	for _, class := range []string{"hub-kill-mid-dispatch", "hub-kill-2pc-window", "hub-kill-double-fault", "fed-lease-expiry"} {
		if byClass[class] == 0 {
			t.Errorf("battery never exercised class %s", class)
		}
	}
	// The battery as a whole must actually exercise the rare paths: hubs
	// die and get reopened, dead nodes' leases expire, and survivors
	// re-attach across restarts.
	if total.Kills == 0 || total.Reopens == 0 {
		t.Errorf("no hub kill was ridden out (kills %d, reopens %d)", total.Kills, total.Reopens)
	}
	if total.LeaseExpiries == 0 {
		t.Error("no lease ever expired across the battery")
	}
	if total.Reattached == 0 {
		t.Error("no node ever re-attached across a hub restart")
	}
	t.Logf("hub torture battery: %d scenarios, stats %+v, classes: %v", count, total, byClass)
}
