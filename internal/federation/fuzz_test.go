package federation

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireDecode fuzzes the frame decoder: arbitrary bytes must either
// decode into a frame or return an error — never panic — and every
// successful decode must re-encode to the identical bytes (the codec
// is canonical: one frame, one byte string).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: one well-formed frame per message type, plus the
	// malformed classes the decoder distinguishes.
	for t := MsgHello; t <= msgTypeMax; t++ {
		f.Add(EncodePayload(&Frame{Type: t}))
	}
	full := EncodePayload(&Frame{
		Type: MsgDispatch, Status: StOK, Kind: 2, Flag: true, Flag2: true,
		Node: 3, Req: 99, Local: 4, Extra: -1, Tx: 1 << 40, Stamp: -7,
		Stamp2: 1, Gen: 123, Proc: "W1+r2", Origin: "W1", Service: "rm0/c1",
		Subsystem: "rm0", Victim: "W2", Err: "boom",
	})
	f.Add(full)
	f.Add(full[:len(full)-3]) // truncated string
	f.Add(full[:fixedHeader]) // strings missing entirely
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(append(append([]byte{}, full...), 1, 2, 3)) // trailing bytes
	bad := append([]byte{}, full...)
	bad[0] = 200 // unknown type
	f.Add(bad)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodePayload(b)
		if err != nil {
			if fr != nil {
				t.Fatalf("error %v returned a non-nil frame", err)
			}
			return
		}
		re := EncodePayload(fr)
		if !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not canonical:\nin:  %x\nout: %x", b, re)
		}
		fr2, err := DecodePayload(re)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-decode mismatch:\n%+v\n%+v", fr, fr2)
		}
	})
}
