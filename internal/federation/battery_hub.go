// The hub-kill torture battery: seeded scenarios that kill -9 the
// coordination hub at its force-log and 2PC points (sometimes while a
// scheduler node is dying too), let the cluster monitor reopen a new
// incarnation from the stitched per-node WALs plus the hub journal, and
// judge every reopen — and the final composed recovery — with
// fault.CheckRecovered over the global history. A fourth class crashes
// a node under lease-based membership and requires the hub to detect
// the death by lease expiry alone and re-home the safe orphans. Every
// failure message embeds the reproducing seed.
package federation

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"transproc/internal/chaos"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/scheduler/policy"
)

// HubScenario is one fully determined hub-torture case. HubScenarioFor
// is a pure function of the seed, so a failing seed reproduces the
// exact same scenario anywhere. The seed space is independent of
// FedScenarioFor's — adding this battery shifts no existing seeds.
type HubScenario struct {
	Seed  int64
	Class string
	Mode  policy.Mode
	Nodes int
	// HubPoint/HubCount arm the hub-side kill (hub:dispatch,
	// hub:decision, hub:resolve) on the first incarnation.
	HubPoint string
	HubCount int
	// CrashNode/CrashPoint/CrashCount arm a node-side crash for the
	// double-fault and lease-expiry classes.
	CrashNode  int
	CrashPoint string
	CrashCount int
	// LeaseTTL/HeartbeatEvery enable lease-based membership; with
	// LeaseTTL set the cluster never declares a crashed node dead on
	// the hub — lease expiry must detect the silence.
	LeaseTTL       time.Duration
	HeartbeatEvery time.Duration
	// Wire is the background transport fault plan.
	Wire chaos.Plan
}

// HubScenarioFor derives the deterministic scenario of a seed. Four
// classes cycle by seed: the hub killed in the dispatch window (before
// the node's force-log lands), the hub killed inside the 2PC window
// (between the decision stamp and the resolve), a double fault where a
// node dies mid-2PC and the hub is killed in the same run, and a node
// crash under lease-based membership where expiry — not an explicit
// death declaration — must trigger the re-assignment. Every class runs
// under background wire chaos.
func HubScenarioFor(seed int64) HubScenario {
	rng := rand.New(rand.NewSource(seed*2862933555777941757 + 7046029254386353087))
	sc := HubScenario{
		Seed:  seed,
		Mode:  policy.PRED,
		Nodes: 2 + rng.Intn(2),
		Wire: chaos.Plan{
			Seed:       seed,
			PTransient: 0.02,
			PTimeout:   0.04,
			PDuplicate: 0.04,
		},
	}
	if rng.Intn(3) == 0 {
		sc.Mode = policy.PREDCascade
	}
	switch seed % 4 {
	case 0:
		// Kill the hub inside a dispatch admission: the stamp may be
		// issued and journaled under the lease but the node's force-log
		// for it may or may not have landed — both sides of that race
		// are legal crash windows the reopen's recovery must resolve.
		sc.Class = "hub-kill-mid-dispatch"
		sc.HubPoint = fault.PointHubDispatch
		sc.HubCount = 1 + rng.Intn(30)
	case 1:
		// Kill the hub between a 2PC decision stamp and the resolve
		// fan-out: the in-doubt transactions must settle exactly as
		// scheduler.Recover's presumed-commit/-abort rules dictate.
		sc.Class = "hub-kill-2pc-window"
		sc.HubPoint = fault.PointHubDecision
		if rng.Intn(2) == 0 {
			sc.HubPoint = fault.PointHubResolve
		}
		sc.HubCount = 1 + rng.Intn(3)
	case 2:
		// Double fault: a node dies mid-2PC and the hub is killed in
		// the same run. Whichever order the points fire in, the reopen
		// plus the final composed recovery must leave no residue.
		sc.Class = "hub-kill-double-fault"
		sc.HubPoint = fault.PointHubDispatch
		sc.HubCount = 5 + rng.Intn(20)
		sc.CrashNode = rng.Intn(sc.Nodes)
		sc.CrashPoint = fault.PointAfterDecision
		if rng.Intn(2) == 0 {
			sc.CrashPoint = fault.PointFedAfterPrepared
		}
		sc.CrashCount = 1 + rng.Intn(2)
	default:
		// Lease expiry as the death detector: the node crashes early
		// and nobody tells the hub — its lease must lapse, its safe
		// orphans re-home to survivors, and its prepared transactions
		// settle under the zombie rules. Half the seeds add a partition
		// window on a survivor for extra reconnect churn.
		sc.Class = "fed-lease-expiry"
		sc.CrashNode = rng.Intn(sc.Nodes)
		sc.CrashPoint = fault.PointFedDispatch
		if rng.Intn(2) == 0 {
			sc.CrashPoint = fault.PointFedAfterPrepared
		}
		sc.CrashCount = 1 + rng.Intn(3)
		sc.LeaseTTL = 20 * time.Millisecond
		sc.HeartbeatEvery = 5 * time.Millisecond
		if rng.Intn(2) == 0 {
			other := (sc.CrashNode + 1) % sc.Nodes
			from := int64(20 + rng.Intn(200))
			sc.Wire.Outages = []chaos.Outage{{
				Subsystem: fmt.Sprintf("node%d", other),
				From:      from, To: from + int64(150+rng.Intn(400)),
			}}
		}
	}
	return sc
}

// HubStats are the per-scenario fault-path counters the summary
// aggregates (how often each rare path actually fired).
type HubStats struct {
	Kills         int
	Reopens       int
	Adoptions     int
	LeaseExpiries int
	Reattached    int
}

// RunHubScenario executes one scenario end to end: cluster run with the
// hub kill armed (the monitor reopens every killed incarnation and the
// OnReopen judge runs CheckRecovered at each reopen boundary), then the
// final composed recovery over the full stitched multi-incarnation
// history, judged again by CheckRecovered, with no in-doubt subsystem
// transactions left behind.
func RunHubScenario(sc HubScenario) (HubStats, error) {
	var st HubStats
	fail := func(format string, args ...any) error {
		return fmt.Errorf("seed %d (%s): %s", sc.Seed, sc.Class, fmt.Sprintf(format, args...))
	}
	fed, defs, _, err := fedTortureWorld(FedScenario{Seed: sc.Seed, Class: sc.Class})
	if err != nil {
		return st, err
	}
	reg := metrics.New()
	// Every reopen is a crash epoch of the full run; its boundary in the
	// final stitched history is where the re-stamped recovery tail
	// starts (the first tail stamp exceeds every stamp the dead
	// incarnation could have issued, so the stitch puts the whole
	// pre-crash history before it).
	var bmu sync.Mutex
	var boundStamps []int64
	cfg := Config{
		Nodes: sc.Nodes, Mode: sc.Mode, MaxRestarts: 8,
		Metrics: reg, Wire: sc.Wire,
		LeaseTTL: sc.LeaseTTL, HeartbeatEvery: sc.HeartbeatEvery,
		OnReopen: func(rep *ReopenReport) error {
			bmu.Lock()
			if len(rep.Tail) > 0 {
				boundStamps = append(boundStamps, rep.Tail[0].Stamp)
			}
			bmu.Unlock()
			return fault.CheckRecovered(fault.CheckInput{
				Fed: fed, Log: rep.Log, Defs: defs,
				PreCrashRecords: rep.Pre, PreCrashFull: rep.Pre,
			})
		},
	}
	if sc.HubPoint != "" {
		cfg.HubKill = CrashSpec{Point: sc.HubPoint, Count: sc.HubCount}
	}
	if sc.CrashPoint != "" {
		cfg.Crash = CrashSpec{Node: sc.CrashNode, Point: sc.CrashPoint, Count: sc.CrashCount}
	}
	c, err := NewCluster(fed, defs, cfg)
	if err != nil {
		return st, fail("%v", err)
	}
	defer c.Close()
	res := c.Run()
	st = HubStats{
		Kills:         int(reg.Counter(metrics.FedHubKills)),
		Reopens:       res.HubRestarts,
		Adoptions:     int(reg.Counter(metrics.FedAdoptions)),
		LeaseExpiries: int(reg.Counter(metrics.FedLeaseExpiries)),
		Reattached:    res.Reattached,
	}
	if res.HubErr != nil {
		return st, fail("hub reopen: %v", res.HubErr)
	}
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return st, fail("node %d: %v", i, nerr)
		}
	}
	// The kill counts are soft (a high count can outlive the run, and
	// hub:resolve only fires on cross-node 2PC), but a kill that DID
	// fire must have been ridden out by a reopen.
	if st.Kills > 0 && st.Reopens == 0 {
		return st, fail("hub killed %d times but never reopened", st.Kills)
	}
	if sc.Class == "fed-lease-expiry" && crashedAny(res) {
		if st.LeaseExpiries == 0 {
			// The survivors drained before the dead node's lease lapsed,
			// so the in-run sweeps never caught it. Let the TTL elapse
			// and sweep once more — the exact path the monitor runs
			// mid-flight — so every seed exercises silence-based death
			// detection (the hub was never told about the crash).
			time.Sleep(sc.LeaseTTL + sc.LeaseTTL/2)
			c.Hub().ExpireLeases()
			st.LeaseExpiries = int(reg.Counter(metrics.FedLeaseExpiries))
		}
		if st.LeaseExpiries == 0 {
			return st, fail("crashed node's lease never expired (expiry is the only death detector here)")
		}
	}

	// Final composed recovery over the full multi-incarnation stitched
	// history (pre-crash records, every reopen's re-stamped recovery
	// tail, and the post-reopen session, in stamp order). Each reopen
	// boundary is handed to the judge as an earlier crash epoch — the
	// reopen's recovery records are crash aborts there, not forward
	// work (the stitched MemLog numbers LSNs by position, so a stamp
	// boundary maps directly to an LSN boundary).
	log, pre, _, err := c.Recover()
	if err != nil {
		return st, fail("recovery: %v", err)
	}
	recs, err := log.Records()
	if err != nil {
		return st, fail("reading stitched log: %v", err)
	}
	bmu.Lock()
	var prior []int64
	for _, s := range boundStamps {
		var lsn int64
		for i := 0; i < pre && i < len(recs); i++ {
			if recs[i].Stamp < s {
				lsn = recs[i].LSN
			}
		}
		if lsn > 0 {
			prior = append(prior, lsn)
		}
	}
	bmu.Unlock()
	if err := fault.CheckRecovered(fault.CheckInput{
		Fed: fed, Log: log, Defs: defs, PreCrashRecords: pre, PreCrashFull: pre,
		PriorCrashLSNs: prior,
	}); err != nil {
		return st, fail("%v", err)
	}
	if doubt := fed.InDoubt(); len(doubt) > 0 {
		return st, fail("in-doubt transactions left after final recovery: %v", doubt)
	}
	return st, nil
}

// crashedAny reports whether any node's armed crash point fired.
func crashedAny(res *RunResult) bool {
	for _, c := range res.Crashed {
		if c {
			return true
		}
	}
	return false
}

// HubSummary aggregates a hub-torture batch.
type HubSummary struct {
	Scenarios     int            `json:"scenarios"`
	Kills         int            `json:"kills"`
	Reopens       int            `json:"reopens"`
	Adoptions     int            `json:"adoptions"`
	LeaseExpiries int            `json:"leaseExpiries"`
	Reattached    int            `json:"reattached"`
	Failures      []string       `json:"failures,omitempty"`
	ByClass       map[string]int `json:"byClass"`
}

// RunHubTorture runs the scenarios of seeds [first, first+n); every
// failure message embeds the reproducing seed.
func RunHubTorture(first, n int64) HubSummary {
	return RunHubTortureProgress(first, n, nil)
}

// RunHubTortureProgress is RunHubTorture with a per-seed progress hook,
// called before each scenario runs; the CLI uses it to report the
// in-flight reproducing seed when the battery is interrupted.
func RunHubTortureProgress(first, n int64, progress func(seed int64, class string)) HubSummary {
	sum := HubSummary{ByClass: make(map[string]int)}
	for seed := first; seed < first+n; seed++ {
		sc := HubScenarioFor(seed)
		if progress != nil {
			progress(seed, sc.Class)
		}
		sum.Scenarios++
		sum.ByClass[sc.Class]++
		st, err := RunHubScenario(sc)
		sum.Kills += st.Kills
		sum.Reopens += st.Reopens
		sum.Adoptions += st.Adoptions
		sum.LeaseExpiries += st.LeaseExpiries
		sum.Reattached += st.Reattached
		if err != nil {
			sum.Failures = append(sum.Failures, err.Error())
		}
	}
	return sum
}
