package runtime_test

import (
	"context"
	"testing"
	"time"

	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// TestRuntimeZeroFailure runs a failure-free contended workload through
// the concurrent runtime: every process must commit and the observed
// schedule must be prefix-reducible.
func TestRuntimeZeroFailure(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 8; seed++ {
		p := workload.DefaultProfile(seed)
		p.Processes = 10
		p.ConflictProb = 0.5
		p.PermFailureProb = 0
		p.TransientFailureProb = 0
		w := workload.MustGenerate(p)
		rt, err := runtime.New(w.Fed, runtime.Config{Mode: scheduler.PRED})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(context.Background(), w.Jobs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Metrics.CommittedProcs < p.Processes {
			t.Fatalf("seed %d: %d of %d processes committed", seed, res.Metrics.CommittedProcs, p.Processes)
		}
		ok, at, _, err := res.Schedule.PRED()
		if err != nil {
			t.Fatalf("seed %d: PRED check: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: non-PRED schedule (prefix %d):\n%s", seed, at, res.Schedule)
		}
	}
}

// TestRuntimeModes exercises every supported mode on one workload and
// checks full termination plus the PRED invariant for the PRED family.
func TestRuntimeModes(t *testing.T) {
	t.Parallel()
	modes := []scheduler.Mode{
		scheduler.PRED, scheduler.PREDCascade, scheduler.Serial,
		scheduler.Conservative, scheduler.CCOnly,
	}
	for _, mode := range modes {
		for seed := int64(1); seed <= 4; seed++ {
			p := workload.DefaultProfile(seed)
			p.Processes = 8
			p.PermFailureProb = 0.1
			w := workload.MustGenerate(p)
			rt, err := runtime.New(w.Fed, runtime.Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			res, err := rt.Run(context.Background(), w.Jobs)
			if err != nil {
				t.Fatalf("mode %v seed %d: %v", mode, seed, err)
			}
			if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
				t.Fatalf("mode %v seed %d: only %d of %d processes terminated", mode, seed, got, p.Processes)
			}
			if mode == scheduler.CCOnly {
				continue
			}
			ok, at, _, err := res.Schedule.PRED()
			if err != nil {
				t.Fatalf("mode %v seed %d: PRED check: %v", mode, seed, err)
			}
			if !ok {
				t.Fatalf("mode %v seed %d: non-PRED schedule (prefix %d):\n%s", mode, seed, at, res.Schedule)
			}
		}
	}
}

// TestRuntimeEffectConsistency checks end-to-end effect integrity after
// concurrent runs with failures: no in-doubt transactions survive and no
// data item goes negative (a compensation never applies without its
// base).
func TestRuntimeEffectConsistency(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 8; seed++ {
		p := workload.DefaultProfile(seed)
		p.Processes = 10
		p.ConflictProb = 0.5
		p.PermFailureProb = 0.15
		w := workload.MustGenerate(p)
		rt, err := runtime.New(w.Fed, runtime.Config{Mode: scheduler.PRED})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(context.Background(), w.Jobs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("seed %d: %d in-doubt transactions after completion", seed, n)
		}
		for item, v := range w.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("seed %d: item %s went negative (%d)", seed, item, v)
			}
		}
	}
}

// TestRuntimeAdmissionCap verifies the Workers admission limit: with a
// cap of 1 the runtime degenerates to serial execution and still
// terminates everything.
func TestRuntimeAdmissionCap(t *testing.T) {
	t.Parallel()
	p := workload.DefaultProfile(7)
	p.Processes = 6
	w := workload.MustGenerate(p)
	rt, err := runtime.New(w.Fed, runtime.Config{Mode: scheduler.PRED, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(context.Background(), w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
		t.Fatalf("only %d of %d processes terminated", got, p.Processes)
	}
	ok, _, _, err := res.Schedule.PRED()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("non-PRED schedule under Workers=1:\n%s", res.Schedule)
	}
}

// TestRuntimeCancellation verifies context-based cancellation: a run
// with real service time stops promptly and reports the context error.
func TestRuntimeCancellation(t *testing.T) {
	t.Parallel()
	p := workload.DefaultProfile(3)
	p.Processes = 12
	p.MinCost, p.MaxCost = 8, 16
	w := workload.MustGenerate(p)
	rt, err := runtime.New(w.Fed, runtime.Config{Mode: scheduler.PRED, Tick: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = rt.Run(ctx, w.Jobs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	if runErr != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", runErr)
	}
}
