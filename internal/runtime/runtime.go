// Package runtime is the concurrent execution engine for transactional
// process management: one goroutine per process drives invocations
// against the (already internally locked) subsystems, while every
// scheduling decision — conflict-predecessor checks, Lemma-1 commit
// deferral, Lemma-2/3 recovery ordering, forced-order acyclicity — is
// taken inside a serial section shared with the pure policy layer
// (internal/scheduler/policy).
//
// The sequential discrete-event engine (internal/scheduler) remains the
// reference oracle: both engines share the identical decision code, so
// a schedule the runtime produces differs from the oracle's only in
// interleaving, never in admissibility. The differential test in this
// package asserts exactly that: every concurrently observed schedule is
// PRED and per-process terminal outcomes match the oracle.
//
// Concurrency structure (sharded):
//
//   - Processes are partitioned into *groups* — the connected
//     components of the job set over the conflict shards of the service
//     partition (policy.Partition). Two processes whose footprints hit
//     disjoint shard sets can never conflict, never block on each
//     other's item locks (a lock-blocking pair always conflicts, hence
//     shares a shard) and never gate each other's Lemma decisions, so
//     each group runs under its own mutex with its own policy.State
//     and the groups proceed fully in parallel.
//   - All group states share one frozen policy.Universe (immutable
//     after construction, safe for concurrent reads) and one global
//     atomic sequence counter, so the per-group histories merge into a
//     single observed schedule ordered by Seq.
//   - Admission control (worker cap, Serial/Conservative policies),
//     completion counting for restart backoff and the crash/error state
//     are global, guarded by a separate admission mutex. Lock order is
//     group mutex -> admission mutex; the admission mutex is a leaf.
//   - Subsystem work (Invoke + simulated service time) runs outside the
//     group lock; the in-flight invocation is registered first so
//     concurrent decisions see it as a survivor in the forced-order
//     graph. Lock ordering is group.mu -> subsystem.mu.
//   - Each group's condition variable is broadcast after every state
//     mutation of that group; blocked workers re-evaluate their gates.
//     Two stall breakers run per group: a precise park-time wait-for
//     analysis that victim-aborts a member of a closed wait cycle
//     immediately (without waiting for the rest of the group to go
//     idle), and the quiescence detector of the sequential engine as a
//     backstop for waits with incomplete edge information (item locks,
//     recovery-step gates), declared only when every live worker of the
//     group has re-evaluated at the current progress generation with
//     nothing in flight.
package runtime

import (
	"context"
	"errors"
	"fmt"
	gort "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"transproc/internal/activity"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/twopc"
	"transproc/internal/wal"
)

// Config parameterizes a runtime run.
type Config struct {
	// Mode selects the scheduling policy. The runtime supports PRED,
	// PREDCascade, Serial, Conservative and CCOnly; the weak order of
	// the sequential engine is not implemented here.
	Mode scheduler.Mode
	// Log is the write-ahead log; defaults to an in-memory log.
	Log wal.Log
	// Workers caps the number of concurrently admitted processes
	// (admission control). 0 means unlimited.
	Workers int
	// Tick is the real duration of one virtual cost unit of service
	// time. 0 means services complete without sleeping (maximum
	// interleaving pressure, minimum wall clock).
	Tick time.Duration
	// MaxRestarts bounds per-process restarts (default 8).
	MaxRestarts int
	// MaxStalls bounds stall-resolution victim aborts (default 256).
	MaxStalls int
	// Metrics is the observability registry; nil is a no-op sink.
	Metrics *metrics.Registry
	// Inject, when non-nil, is called at named crash points — the
	// dispatch gate ("runtime:dispatch") and, via the 2PC coordinator,
	// "twopc:after-decision" / "twopc:mid-resolve". A fault plan
	// (internal/fault) may panic through it with a crash sentinel; the
	// runtime recovers the sentinel, stops issuing work and WAL appends,
	// and Run returns scheduler.ErrCrashed with the partial result,
	// leaving log and subsystem state for scheduler.Recover. No-op when
	// nil.
	Inject func(point string)
	// CheckpointEvery, when positive, takes a fuzzy checkpoint
	// (wal.TakeCheckpoint) after every that many runtime force-log
	// appends. The checkpointer runs inside the appending group's
	// serial section while other groups keep appending — exactly the
	// fuzzy-checkpoint window the recovery path must tolerate. 0
	// disables.
	CheckpointEvery int
	// CheckpointLimit caps the checkpoints of one run (0 = unlimited).
	CheckpointLimit int
	// CompactOnCheckpoint rewrites the log as checkpoint + tail after
	// each checkpoint when the log supports it (wal.Compactor).
	CompactOnCheckpoint bool
	// GroupCommit, when enabled (MaxBatch > 0), wraps the log in a
	// batching appender (wal.GroupAppender): concurrent appends are
	// coalesced into one buffered write + fsync, acknowledged only
	// after the shared fsync. Checkpointing, compaction and the 2PC
	// coordinator all run through the same appender, so the log stays
	// one logical append stream.
	GroupCommit wal.GroupCommit
	// Resilience, when non-nil, routes activity invocations through a
	// resilience layer (internal/chaos) exactly as in the sequential
	// engine (scheduler.Config.Resilience): typed retries, breakers and
	// flaky transport at the invocation boundary; 2PC resolution and
	// recovery stay on the direct path.
	Resilience subsystem.ResilientInvoker
}

func (c Config) withDefaults() Config {
	if c.Log == nil {
		c.Log = wal.NewMemLog()
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
	if c.MaxStalls == 0 {
		c.MaxStalls = 256
	}
	return c
}

// Result is the outcome of a concurrent run.
type Result struct {
	// Schedule is the observed process schedule (completion order under
	// the serial sections, merged by global sequence); check it with
	// PRED(), Serializable() and ProcessRecoverable().
	Schedule *schedule.Schedule
	Metrics  scheduler.Metrics
	Outcomes map[process.ID]*scheduler.Outcome
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// ShardGroups is the number of disjoint scheduling groups the run
	// partitioned its processes into — each ran under its own serial
	// section (1 means every process shared one lock).
	ShardGroups int
	// ConflictShards is the number of connected components of the
	// federation's conflict relation, the service-side upper bound on
	// ShardGroups.
	ConflictShards int
}

type procState int

const (
	psRunning procState = iota
	psAborting
	psDone
)

type preparedTx struct {
	sub     *subsystem.Subsystem
	tx      subsystem.TxID
	service string
}

// procRT is the runtime of one process; its fields are guarded by the
// owning group's mutex (the owning worker mutates them only under it).
type procRT struct {
	id           process.ID
	def          *process.Process
	inst         *process.Instance
	state        procState
	arrival      int
	origin       process.ID
	restarts     int
	recovery     []process.Step
	recoveryBusy bool
	busySvc      string
	abortPending bool
	restartable  bool
	prepared     map[int]preparedTx
	running      map[int]string // in-flight invocation: local -> service
	keySeq       int            // idempotency-key counter (resilient invocations)
	start        time.Time
	adm          *admEntry

	// Stall machinery: lastEval is the group progress generation at
	// which this process last found nothing to do; parked marks it
	// blocked in cond.Wait; waitAlts, when non-nil, is the complete
	// wait-for disjunction recorded at the last sWait — the process can
	// proceed iff for SOME alternative ALL listed blockers acted
	// (terminated or released their locks). nil means the wait has
	// edges the policy cannot name and only the quiescence backstop may
	// break it. lockProbes lists the services found item-lock-blocked
	// during the last evaluation; extLock marks that at least one of
	// those locks is held by a process of ANOTHER group (commutative
	// services share items without conflicting, so lock waits may cross
	// the conflict partition) — such parks are registered globally and
	// woken by cross-group lock releases.
	lastEval   int64
	parked     bool
	waitAlts   [][]process.ID
	lockProbes []string
	extLock    bool
}

// waitEntry is one parked process's wait-for disjunction in the global
// wait graph, guarded by the admission mutex. The victim-selection
// fields (arrival, abortable) are snapshotted at park time so the
// detector never touches another group's procRT. An entry is trusted
// only while gen matches its group's progress generation — a woken but
// not yet rescheduled process is never mistaken for stuck.
type waitEntry struct {
	id        process.ID
	alts      [][]process.ID
	g         *shardGroup
	gen       int64
	arrival   int
	abortable bool
}

// admEntry is the admission-control view of one admitted incarnation,
// guarded by the admission mutex.
type admEntry struct {
	def  *process.Process
	fp   []string
	done bool
}

// shardGroup is one sharded serial section: the processes of one
// connected component of the conflict partition, their policy state and
// the group-local stall machinery. All fields below mu are guarded by
// it.
type shardGroup struct {
	r      *Runtime
	idx    int
	shards []int // conflict shards covered (diagnostics)

	mu       sync.Mutex
	cond     *sync.Cond
	pol      *policy.State
	procs    []*procRT // admitted, admission order (includes done)
	byID     map[process.ID]*procRT
	live     int // workers currently driving a process of this group
	inFlight int // workers outside the lock doing subsystem work
	waiting  int // workers blocked on cond (diagnostics)

	// Quiescence detection, per group: progress increments on every
	// state change that could unblock a member; upToDate counts live
	// members whose lastEval equals the current generation. A stall is
	// declared only when every live member re-evaluated at the current
	// generation with nothing in flight. progress is atomic because the
	// global deadlock detector reads other groups' generations without
	// their mutex.
	progress atomic.Int64
	upToDate int

	metrics  scheduler.Metrics
	outcomes map[process.ID]*scheduler.Outcome
	allProcs []*process.Process
}

// Runtime executes processes concurrently, one goroutine each.
type Runtime struct {
	cfg   Config
	fed   *subsystem.Federation
	log   wal.Log
	coord *twopc.Coordinator
	reg   *metrics.Registry
	uni   *policy.Universe
	part  *policy.Partition

	groups []*shardGroup // built at Run start, immutable afterwards

	seq      atomic.Int64 // global event sequence across all groups
	stopped  atomic.Bool  // run crashed or failed; workers drain
	canceled atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once

	// Admission state (worker cap, Serial/Conservative policy, restart
	// backoff). gmu is a leaf: taken under group mutexes, never the
	// other way around.
	gmu         sync.Mutex
	gcond       *sync.Cond
	err         error
	active      int // admitted and not done, across all groups
	completions int64
	victims     int
	admitted    []*admEntry

	// Global wait graph (also under gmu): waits holds the registered
	// wait-for disjunction of every parked process whose edges are
	// complete; pendingVictims carries victim designations to processes
	// parked in other groups (consumed on wake-up); liveByOrigin maps a
	// subsystem lock holder (origin id) to its live incarnation;
	// extWaiters counts parked processes blocked on another group's
	// item locks — lock releases nudge the wake-all supervisor only
	// while it is non-zero.
	waits          map[process.ID]*waitEntry
	pendingVictims map[process.ID]bool
	liveByOrigin   map[process.ID]process.ID
	extWaiters     int
	nudge          chan struct{}

	start time.Time

	// Checkpointing state (Config.CheckpointEvery); ckptMu is a leaf.
	ckptMu      sync.Mutex
	ckptAppends int
	ckptTaken   int
	ckptBusy    bool
}

// New creates a runtime over the federation.
func New(fed *subsystem.Federation, cfg Config) (*Runtime, error) {
	table, err := fed.ConflictTable()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.GroupCommit.Enabled() {
		cfg.Log = wal.NewGroupAppender(cfg.Log, cfg.GroupCommit, cfg.Inject)
	}
	r := &Runtime{
		cfg:   cfg,
		fed:   fed,
		log:   cfg.Log,
		coord: twopc.New(cfg.Log),
		reg:   cfg.Metrics,
		// The frozen universe covers every routable service (activity
		// services and auto-registered compensations); ValidateJobs
		// rejects anything outside it before a run starts.
		uni:            policy.NewUniverse(table, fed.Services()),
		part:           policy.NewPartition(table),
		stopCh:         make(chan struct{}),
		waits:          make(map[process.ID]*waitEntry),
		pendingVictims: make(map[process.ID]bool),
		liveByOrigin:   make(map[process.ID]process.ID),
		nudge:          make(chan struct{}, 1),
	}
	r.gcond = sync.NewCond(&r.gmu)
	if r.reg != nil {
		r.coord.Metrics = r.reg
		fed.SetMetrics(r.reg)
		if il, ok := r.log.(wal.Instrumented); ok {
			il.SetMetrics(r.reg)
		}
	}
	r.coord.Inject = cfg.Inject
	return r, nil
}

// fail records the first run-terminating error and stops the run; safe
// to call from any goroutine, with or without a group mutex held.
func (r *Runtime) fail(err error) {
	r.gmu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.gmu.Unlock()
	r.stop()
}

// stop flips the run into draining mode and triggers the wake-all
// supervisor (broadcasting other groups' condition variables directly
// here could deadlock: the caller may hold its own group's mutex).
func (r *Runtime) stop() {
	r.stopped.Store(true)
	r.stopOnce.Do(func() { close(r.stopCh) })
}

// wakeAll wakes every blocked worker. Broadcasts happen under the
// respective mutex so a worker between its stop-check and cond.Wait
// cannot miss the wake-up. Called only from supervisor goroutines that
// hold no locks.
func (r *Runtime) wakeAll() {
	for _, g := range r.groups {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	r.gmu.Lock()
	r.gcond.Broadcast()
	r.gmu.Unlock()
}

// nudgeRelease wakes cross-group lock waiters after item locks were
// released (prepared transactions committed or rolled back). The
// releaser may hold its own group's mutex, so the wake-up goes through
// the nudge supervisor; the extWaiters gate keeps the common case (no
// cross-group waiter) free of wake-all storms. The gate cannot miss a
// waiter: parking re-probes the lock under gmu after incrementing
// extWaiters, so a release that observes extWaiters == 0 here happened
// before that re-probe and the parker saw the lock free.
func (r *Runtime) nudgeRelease() {
	r.gmu.Lock()
	ext := r.extWaiters > 0
	r.gmu.Unlock()
	if ext {
		select {
		case r.nudge <- struct{}{}:
		default:
		}
	}
}

// incarnation resolves a subsystem lock holder (an origin id) to its
// currently live incarnation, if any.
func (r *Runtime) incarnation(origin process.ID) (process.ID, bool) {
	r.gmu.Lock()
	id, ok := r.liveByOrigin[origin]
	r.gmu.Unlock()
	return id, ok
}

// guard runs f, converting an injected-crash sentinel panic into the
// run-terminating error every worker observes; ok is false when the
// crash tripped. Callers hold their group mutex — the panic must not
// unwind past the critical section, so it is caught right here.
// Non-sentinel panics propagate.
func (r *Runtime) guard(f func()) (ok bool) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		crash, isCrash := v.(interface{ InjectedCrash() string })
		if !isCrash {
			panic(v)
		}
		r.fail(fmt.Errorf("%w (injected at %s)", scheduler.ErrCrashed, crash.InjectedCrash()))
	}()
	f()
	return true
}

// append force-logs a record unless the run already crashed; false
// means the record did not reach the log (the caller must not apply
// the state change the record announces).
func (r *Runtime) append(rec wal.Record) bool {
	if r.stopped.Load() {
		return false
	}
	return r.guard(func() {
		r.log.Append(rec)
		r.maybeCheckpoint()
	})
}

// maybeCheckpoint takes a fuzzy checkpoint (and optionally compacts)
// once CheckpointEvery appends accumulated across all groups. The
// counter handshake runs under the leaf ckptMu; the checkpoint itself
// runs with only the calling group's mutex held, so other groups keep
// appending into the fuzzy window (Expand tolerates the post-horizon
// tail). Called from inside the append guard: an injected crash
// sentinel unwinds into guard's recover like any other force-log
// crash. A failed (non-crash) attempt is dropped — checkpointing never
// fails the run.
func (r *Runtime) maybeCheckpoint() {
	if r.cfg.CheckpointEvery <= 0 {
		return
	}
	r.ckptMu.Lock()
	r.ckptAppends++
	due := !r.ckptBusy && r.ckptAppends >= r.cfg.CheckpointEvery &&
		(r.cfg.CheckpointLimit <= 0 || r.ckptTaken < r.cfg.CheckpointLimit)
	if due {
		r.ckptBusy = true
		r.ckptAppends = 0
	}
	r.ckptMu.Unlock()
	if !due {
		return
	}
	defer func() {
		r.ckptMu.Lock()
		r.ckptBusy = false
		r.ckptMu.Unlock()
	}()
	if _, err := wal.TakeCheckpoint(r.log, r.uni.Conflicts, r.cfg.Inject, r.reg); err != nil {
		return
	}
	// Durable subsystems flush their pages at every checkpoint (the
	// store's write-ahead barrier forces the log first). Errors are
	// dropped like a failed checkpoint — the WAL stays authoritative.
	if r.fed.Durable() {
		r.fed.FlushStores()
	}
	r.ckptMu.Lock()
	r.ckptTaken++
	r.ckptMu.Unlock()
	if r.cfg.CompactOnCheckpoint {
		if c, ok := r.log.(wal.Compactor); ok {
			c.Compact(r.cfg.Inject)
		}
	}
}

// inject fires a named crash point; false when it tripped the crash.
func (r *Runtime) inject(point string) bool {
	if r.cfg.Inject == nil {
		return true
	}
	if r.stopped.Load() {
		return false
	}
	return r.guard(func() { r.cfg.Inject(point) })
}

func policyMode(m scheduler.Mode) policy.Mode {
	switch m {
	case scheduler.PRED:
		return policy.PRED
	case scheduler.PREDCascade:
		return policy.PREDCascade
	case scheduler.Serial:
		return policy.Serial
	case scheduler.Conservative:
		return policy.Conservative
	default:
		return policy.CCOnly
	}
}

// buildGroups partitions the jobs into shard groups: union-find over
// job indices, joining two jobs whenever their footprints share a
// conflict shard. Jobs with conflict-free footprints get singleton
// groups. Restart incarnations keep their footprint, so a process
// stays in its group across restarts. Returns the per-job group.
func (r *Runtime) buildGroups(jobs []scheduler.Job) []*shardGroup {
	parent := make([]int, len(jobs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	shardOwner := make(map[int]int)
	var buf []int
	for i, j := range jobs {
		buf = r.part.ShardSet(scheduler.Footprint(j.Proc), buf[:0])
		for _, s := range buf {
			if o, ok := shardOwner[s]; ok {
				union(i, o)
			} else {
				shardOwner[s] = i
			}
		}
	}
	byRoot := make(map[int]*shardGroup)
	jobGroup := make([]*shardGroup, len(jobs))
	for i := range jobs {
		root := find(i)
		g := byRoot[root]
		if g == nil {
			g = &shardGroup{
				r:        r,
				idx:      len(r.groups),
				pol:      policy.NewShard(r.uni, policy.Config{Mode: policyMode(r.cfg.Mode)}),
				byID:     make(map[process.ID]*procRT),
				outcomes: make(map[process.ID]*scheduler.Outcome),
			}
			g.cond = sync.NewCond(&g.mu)
			byRoot[root] = g
			r.groups = append(r.groups, g)
		}
		jobGroup[i] = g
	}
	for s, o := range shardOwner {
		g := byRoot[find(o)]
		g.shards = append(g.shards, s)
	}
	for _, g := range r.groups {
		sort.Ints(g.shards)
	}
	return jobGroup
}

// Run executes the jobs to completion. Arrival times are in ticks
// (real delay Arrival*Tick before the process contends for admission).
// The context cancels the run: in-flight service time finishes, no new
// work starts, and ctx.Err() is returned.
func (r *Runtime) Run(ctx context.Context, jobs []scheduler.Job) (*Result, error) {
	if err := scheduler.ValidateJobs(r.fed, jobs); err != nil {
		return nil, err
	}
	r.start = time.Now()
	jobGroup := r.buildGroups(jobs)

	// Supervisors: wake every blocked worker on cancellation or crash.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			r.canceled.Store(true)
			r.wakeAll()
		case <-watchDone:
		}
	}()
	go func() {
		select {
		case <-r.stopCh:
			r.wakeAll()
		case <-watchDone:
		}
	}()
	// Nudge supervisor: cross-group lock releases and victim
	// designations cannot broadcast a foreign group's condition variable
	// from under their own group mutex (lock order), so they poke this
	// goroutine, which holds no locks and may wake everyone.
	go func() {
		for {
			select {
			case <-r.nudge:
				r.wakeAll()
			case <-watchDone:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(g *shardGroup, idx int, job scheduler.Job) {
			defer wg.Done()
			r.worker(g, idx, job)
		}(jobGroup[i], i, j)
	}
	wg.Wait()
	close(watchDone)

	elapsed := time.Since(r.start)
	var m scheduler.Metrics
	outcomes := make(map[process.ID]*scheduler.Outcome)
	var allProcs []*process.Process
	states := make([]*policy.State, 0, len(r.groups))
	for _, g := range r.groups {
		g.mu.Lock()
		addMetrics(&m, &g.metrics)
		for id, o := range g.outcomes {
			outcomes[id] = o
		}
		allProcs = append(allProcs, g.allProcs...)
		states = append(states, g.pol)
		g.mu.Unlock()
	}
	if r.cfg.Tick > 0 {
		m.Makespan = int64(elapsed / r.cfg.Tick)
	} else {
		m.Makespan = elapsed.Nanoseconds()
	}
	res := &Result{
		Schedule:       policy.MergeSchedules(r.uni.Table(), allProcs, states),
		Metrics:        m,
		Outcomes:       outcomes,
		Elapsed:        elapsed,
		ShardGroups:    len(r.groups),
		ConflictShards: r.part.Shards(),
	}
	r.gmu.Lock()
	err := r.err
	r.gmu.Unlock()
	if err != nil {
		return res, err
	}
	if r.canceled.Load() {
		return res, ctx.Err()
	}
	return res, nil
}

// addMetrics accumulates one group's counters into the run total.
func addMetrics(dst, src *scheduler.Metrics) {
	dst.Invocations += src.Invocations
	dst.Retries += src.Retries
	dst.Compensations += src.Compensations
	dst.Rollbacks += src.Rollbacks
	dst.Deferrals += src.Deferrals
	dst.TwoPCCommits += src.TwoPCCommits
	dst.LockWaits += src.LockWaits
	dst.PolicyWaits += src.PolicyWaits
	dst.Cascades += src.Cascades
	dst.WeakDeps += src.WeakDeps
	dst.WeakOrderWaits += src.WeakOrderWaits
	dst.WeakRestarts += src.WeakRestarts
	dst.Restarts += src.Restarts
	dst.VictimAborts += src.VictimAborts
	dst.CommittedProcs += src.CommittedProcs
	dst.AbortedProcs += src.AbortedProcs
}

// bump advances the group's progress generation after a state change
// that may unblock other members, and wakes them to re-evaluate.
// Called with g.mu held.
func (g *shardGroup) bump() {
	g.progress.Add(1)
	g.upToDate = 0
	g.cond.Broadcast()
}

// sleepTicks simulates service time. Kernel timer granularity is on
// the order of a millisecond, which would inflate every
// sub-millisecond service time several-fold and make throughput
// numbers measure timer resolution instead of scheduling — short
// waits therefore yield-spin on the monotonic clock, which keeps the
// wait accurate while still ceding the CPU to runnable workers.
func (r *Runtime) sleepTicks(n int64) {
	if r.cfg.Tick <= 0 || n <= 0 {
		return
	}
	d := time.Duration(n) * r.cfg.Tick
	if d >= 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		gort.Gosched()
	}
}

func (r *Runtime) cost(service string) int64 {
	spec, ok := r.fed.Spec(service)
	if !ok || spec.Cost < 1 {
		return 1
	}
	return int64(spec.Cost)
}

// worker drives one process (including its restarts) to termination.
func (r *Runtime) worker(g *shardGroup, idx int, job scheduler.Job) {
	if job.Arrival > 0 {
		r.sleepTicks(job.Arrival)
	}
	def := job.Proc
	restarts := 0
	for {
		rt := r.admit(g, def, idx, scheduler.Origin(job.Proc.ID), restarts)
		if rt == nil {
			break // run is over (error or canceled)
		}
		if !g.drive(rt) {
			break
		}
		// Restart under a derived id after exponential backoff. Backoff
		// is measured in system progress, not wall time: the contention
		// that caused the abort must drain first, so re-entry waits for
		// exponentially many invocation completions by other processes
		// (or for the system to go idle). A wall-clock sleep would be
		// no backoff at all under Tick=0 — the deadlock would re-form
		// instantly with the same opponents and the same victim.
		restarts = rt.restarts + 1
		newID := process.ID(fmt.Sprintf("%s+r%d", job.Proc.ID, restarts))
		def = rt.def.WithID(newID)
		if !r.backoff(int64(4 << restarts)) {
			break
		}
	}
}

// backoff blocks until `n` further invocations completed or no other
// process is active; false when the run ended first.
func (r *Runtime) backoff(n int64) bool {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	target := r.completions + n
	for r.completions < target && r.active > 0 {
		if r.stopped.Load() || r.canceled.Load() {
			return false
		}
		r.gcond.Wait()
	}
	return !r.stopped.Load() && !r.canceled.Load()
}

// admit blocks until the admission policy lets the process in, then
// registers it with its group; nil when the run ended first.
func (r *Runtime) admit(g *shardGroup, def *process.Process, idx int, origin process.ID, restarts int) *procRT {
	ent := &admEntry{def: def, fp: scheduler.Footprint(def)}
	r.gmu.Lock()
	for {
		if r.stopped.Load() || r.canceled.Load() {
			r.gmu.Unlock()
			return nil
		}
		if r.mayStartLocked(ent.fp) {
			break
		}
		r.gcond.Wait()
	}
	r.active++
	r.admitted = append(r.admitted, ent)
	// Subsystems identify lock holders by origin id (incarnations share
	// locks); map it to this incarnation for wait-for edges.
	r.liveByOrigin[origin] = def.ID
	r.gmu.Unlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	rt := &procRT{
		id:       def.ID,
		def:      def,
		inst:     process.NewInstance(def),
		arrival:  idx,
		origin:   origin,
		restarts: restarts,
		prepared: make(map[int]preparedTx),
		running:  make(map[int]string),
		start:    time.Now(),
		adm:      ent,
		lastEval: -1,
	}
	g.procs = append(g.procs, rt)
	g.byID[rt.id] = rt
	g.allProcs = append(g.allProcs, def)
	g.outcomes[rt.id] = &scheduler.Outcome{Restarts: restarts, Start: r.ticksSince(rt.start)}
	g.live++
	r.append(wal.Record{Type: wal.RecStart, Proc: string(rt.id)})
	r.reg.Inc(metrics.ProcsAdmitted)
	if restarts > 0 {
		g.metrics.Restarts++
		r.reg.Inc(metrics.ProcsRestarted)
	}
	g.pol.Bump()
	g.bump()
	return rt
}

// ticksSince converts a wall-clock instant into virtual ticks since the
// run started (0 when Tick is unset).
func (r *Runtime) ticksSince(t time.Time) int64 {
	if r.cfg.Tick <= 0 {
		return 0
	}
	return int64(t.Sub(r.start) / r.cfg.Tick)
}

// mayStartLocked implements admission control: the worker cap plus the
// Serial / Conservative admission policies (per-activity decisions for
// those modes are vacuous — admission is the policy). Called with gmu
// held.
func (r *Runtime) mayStartLocked(fp []string) bool {
	if r.cfg.Workers > 0 && r.active >= r.cfg.Workers {
		return false
	}
	switch r.cfg.Mode {
	case scheduler.Serial:
		return r.active == 0
	case scheduler.Conservative:
		for _, ent := range r.admitted {
			if ent.done {
				continue
			}
			for _, s1 := range fp {
				for _, s2 := range ent.fp {
					if r.uni.Conflicts(s1, s2) {
						return false
					}
				}
			}
		}
		return true
	default:
		return true
	}
}

// wait blocks the process's worker on the group condition variable
// until some state changes. Three stall breakers guard the park:
//
//   - When the wait carries complete edge information (rt.waitAlts),
//     the park is registered in the GLOBAL wait graph and a precise
//     wait-for analysis fires immediately once a closed set of parked
//     processes waits only on itself — no quiescence needed, so victim
//     aborts overlap with unrelated in-flight work. The graph is
//     global because item-lock waits cross the conflict partition:
//     commutative services share data items without conflicting, so a
//     lock holder may live in another group.
//   - The quiescence backstop of the sequential engine: a stall is
//     declared only once every live member of the group re-evaluated
//     its gates at the current progress generation and found nothing
//     to do, with nothing in flight. Merely counting parked workers
//     would race against workers that were signaled but not yet
//     rescheduled. The backstop is suppressed while a member with
//     complete edges waits on another group (its wake-up legitimately
//     comes from outside; aborting a local victim would be spurious).
//   - Cross-group lock waits additionally re-probe their locks under
//     gmu after incrementing extWaiters, closing the race against a
//     holder that released between the step() probe and the park (the
//     holder's nudgeRelease is then guaranteed to see extWaiters > 0).
//
// Returns false when the run is over. Called with g.mu held.
func (g *shardGroup) wait(rt *procRT) bool {
	r := g.r
	if r.stopped.Load() || r.canceled.Load() {
		return false
	}
	if p := g.progress.Load(); rt.lastEval != p {
		rt.lastEval = p
		g.upToDate++
	}

	registered := false
	extCounted := false
	if rt.waitAlts != nil || rt.extLock {
		r.gmu.Lock()
		// A victim designation from another group's detector may
		// already be waiting for us.
		if r.pendingVictims[rt.id] {
			delete(r.pendingVictims, rt.id)
			r.gmu.Unlock()
			g.consumeVictim(rt)
			return true
		}
		if rt.extLock {
			r.extWaiters++
			extCounted = true
			for _, svc := range rt.lockProbes {
				if r.fed.Lockable(string(rt.origin), svc) {
					// Released between probe and park: re-evaluate.
					r.extWaiters--
					r.gmu.Unlock()
					return true
				}
			}
		}
		if rt.waitAlts != nil {
			e := &waitEntry{
				id: rt.id, alts: rt.waitAlts, g: g, gen: rt.lastEval,
				arrival: rt.arrival, abortable: rt.state == psRunning && !rt.abortPending,
			}
			r.waits[rt.id] = e
			registered = true
			if v := r.detectDeadlockLocked(e); v != nil {
				if v.g == g {
					victim := g.byID[v.id]
					delete(r.waits, rt.id)
					if extCounted {
						r.extWaiters--
					}
					r.gmu.Unlock()
					g.consumeVictim(victim)
					return true
				}
				// Foreign victim: deliver the designation through the
				// nudge supervisor (its group cond cannot be broadcast
				// from here) and park — its abort unblocks us.
				r.pendingVictims[v.id] = true
				select {
				case r.nudge <- struct{}{}:
				default:
				}
			}
		}
		r.gmu.Unlock()
	}

	if g.upToDate >= g.live && g.inFlight == 0 && !g.actionableAbortPending() && !g.crossGroupWait() {
		// Genuine stall: every gate was re-checked this generation and
		// no member's wake-up can come from another group.
		g.deregister(rt, registered, extCounted)
		victim := g.resolveStall()
		if victim == nil {
			r.fail(fmt.Errorf("runtime: unresolvable stall (mode %v, group %d)\n%s", r.cfg.Mode, g.idx, g.stallDump()))
			return false
		}
		g.bump()
		return true
	}

	rt.parked = true
	g.waiting++
	g.cond.Wait()
	g.waiting--
	rt.parked = false
	if registered || extCounted {
		r.gmu.Lock()
		if registered {
			delete(r.waits, rt.id)
		}
		if extCounted {
			r.extWaiters--
		}
		pv := r.pendingVictims[rt.id]
		if pv {
			delete(r.pendingVictims, rt.id)
		}
		r.gmu.Unlock()
		if pv {
			g.consumeVictim(rt)
		}
	}
	return !r.stopped.Load() && !r.canceled.Load()
}

// deregister undoes wait()'s global registration on a no-park exit.
// Called with g.mu held.
func (g *shardGroup) deregister(rt *procRT, registered, extCounted bool) {
	if !registered && !extCounted {
		return
	}
	r := g.r
	r.gmu.Lock()
	if registered {
		delete(r.waits, rt.id)
	}
	if extCounted {
		r.extWaiters--
	}
	r.gmu.Unlock()
}

// consumeVictim applies a victim designation to one of the group's own
// processes. The MaxStalls budget was consumed at designation time; a
// designation that arrives after the process already started aborting
// (or terminated) is dropped. Called with g.mu held.
func (g *shardGroup) consumeVictim(rt *procRT) {
	if rt == nil || rt.state != psRunning || rt.abortPending {
		return
	}
	rt.abortPending = true
	rt.restartable = true
	g.metrics.VictimAborts++
	g.r.reg.Inc(metrics.VictimAborts)
	g.bump()
}

// crossGroupWait reports whether some live member's registered wait has
// a blocker outside this group (an item-lock holder reachable only
// through a cross-group release). Only members with complete edge
// information count: they are visible to the global detector, so
// suppressing the local backstop for them cannot hide a deadlock.
// Called with g.mu held.
func (g *shardGroup) crossGroupWait() bool {
	for _, rt := range g.procs {
		if rt.state != psDone && rt.extLock && rt.waitAlts != nil {
			return true
		}
	}
	return false
}

// detectDeadlockLocked checks, at the moment e's process is about to
// park with complete wait-for information, whether it belongs to a set
// of parked processes (across ALL groups) that waits only on itself:
// every member, in each of its wait alternatives, waits on at least one
// other member. A blocker's edges disappear only when the blocker acts
// (terminates, commits or rolls back prepared transactions, becomes
// quasi-safe) — which a parked process never does — so such a set can
// never be unblocked from outside and one member must be victim-aborted
// (the youngest abortable one, mirroring the sequential engine).
// Entries are trusted only if their process re-evaluated its gates at
// its group's current progress generation, so a signaled-but-not-
// rescheduled process is never mistaken for stuck. Called with gmu
// held; returns the chosen victim's entry (nil: no closed set, no
// abortable member, or MaxStalls exhausted). The victims budget is
// consumed here.
func (r *Runtime) detectDeadlockLocked(self *waitEntry) *waitEntry {
	stuck := make(map[process.ID]*waitEntry, len(r.waits))
	for id, e := range r.waits {
		if e == self || e.gen == e.g.progress.Load() {
			stuck[id] = e
		}
	}
	if len(stuck) < 2 || stuck[self.id] != self {
		return nil
	}
	blockerStuck := func(alt []process.ID) bool {
		for _, id := range alt {
			if stuck[id] != nil {
				return true
			}
		}
		return false
	}
	// Greatest fixpoint: drop anyone with an escape alternative (an
	// alternative none of whose blockers is in the set — those blockers
	// can still act on their own).
	for changed := true; changed; {
		changed = false
		for id, e := range stuck {
			escapes := false
			for _, alt := range e.alts {
				if !blockerStuck(alt) {
					escapes = true
					break
				}
			}
			if escapes {
				delete(stuck, id)
				changed = true
			}
		}
	}
	if stuck[self.id] == nil {
		return nil
	}
	var victim *waitEntry
	for _, e := range stuck {
		if !e.abortable {
			continue
		}
		if victim == nil || e.arrival > victim.arrival {
			victim = e
		}
	}
	if victim == nil || r.victims >= r.cfg.MaxStalls {
		return nil
	}
	r.victims++
	return victim
}

// actionableAbortPending reports whether some process holds an
// unconsumed abort request its worker can act on immediately (no queued
// recovery steps that could be gated). While one exists, declaring a
// new stall would be spurious: the woken workers merely re-blocked
// before that victim's worker consumed the flag. An abortPending
// process with gated recovery steps does NOT suppress stall handling —
// waiting on it could deadlock, so another victim may be taken
// (bounded by MaxStalls, as in the sequential engine).
func (g *shardGroup) actionableAbortPending() bool {
	for _, rt := range g.procs {
		if rt.state != psDone && rt.abortPending && len(rt.recovery) == 0 && !rt.recoveryBusy && len(rt.running) == 0 {
			return true
		}
	}
	return false
}

// resolveStall aborts the youngest runnable process (it restarts); a
// done process blocked on its deferred 2PC commit is the fallback
// victim, mirroring the sequential engine.
func (g *shardGroup) resolveStall() *procRT {
	r := g.r
	r.gmu.Lock()
	exhausted := r.victims >= r.cfg.MaxStalls
	r.gmu.Unlock()
	if exhausted {
		return nil
	}
	var victim *procRT
	for _, rt := range g.procs {
		if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
			continue
		}
		if rt.inst.Done() {
			continue
		}
		if victim == nil || rt.arrival > victim.arrival {
			victim = rt
		}
	}
	if victim == nil {
		for _, rt := range g.procs {
			if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
				continue
			}
			if rt.inst.Done() && len(rt.prepared) > 0 && g.pol.HasActiveConflictPred(g.view(), rt.id) {
				if victim == nil || rt.arrival > victim.arrival {
					victim = rt
				}
			}
		}
	}
	if victim == nil {
		return nil
	}
	r.gmu.Lock()
	r.victims++
	r.gmu.Unlock()
	g.metrics.VictimAborts++
	r.reg.Inc(metrics.VictimAborts)
	victim.restartable = true
	victim.abortPending = true
	return victim
}

// stepKind is the action the serial section hands a worker.
type stepKind int

const (
	sWait   stepKind = iota // nothing dispatchable; block
	sAgain                  // progressed under the lock; re-evaluate
	sInvoke                 // perform the prepared invocation outside the lock
	sDone                   // process terminated
)

type workItem struct {
	local   int
	service string
	kind    activity.Kind
	isStep  bool
	step    process.Step
}

// drive runs one admitted process to termination. Returns true when the
// process aborted restartably and should re-enter.
func (g *shardGroup) drive(rt *procRT) (restart bool) {
	g.mu.Lock()
	restart = g.driveLocked(rt)
	g.live--
	g.bump()
	g.mu.Unlock()
	return restart
}

func (g *shardGroup) driveLocked(rt *procRT) (restart bool) {
	r := g.r
	for {
		if r.stopped.Load() || r.canceled.Load() {
			return false
		}
		kind, item := g.step(rt)
		switch kind {
		case sAgain:
			g.bump()
			continue
		case sDone:
			return rt.restartable && rt.restarts < r.cfg.MaxRestarts
		case sWait:
			if !g.wait(rt) {
				return false
			}
			continue
		}
		// sInvoke: the in-flight registration (running / recoveryBusy)
		// happened in step(); do the subsystem work unlocked.
		g.inFlight++
		var key string
		if r.cfg.Resilience != nil {
			// Key allocated under the lock: fresh per logical invocation
			// and per incarnation (rt.id carries the restart suffix).
			key = fmt.Sprintf("%s#%d", rt.id, rt.keySeq)
			rt.keySeq++
		}
		g.mu.Unlock()
		var res *subsystem.Result
		var err error
		var extraLat int64
		if r.cfg.Resilience != nil {
			res, extraLat, err = r.cfg.Resilience.InvokeResilient(
				string(rt.origin), item.service, item.kind, subsystem.Prepare, key)
		} else {
			res, err = r.fed.Invoke(string(rt.origin), item.service, subsystem.Prepare)
		}
		locked := errors.Is(err, subsystem.ErrLocked)
		failed := subsystem.IsInvocationFailure(err)
		if err != nil && !locked && !failed {
			panic(fmt.Sprintf("runtime: invoke %s/%s: %v", rt.id, item.service, err))
		}
		if !locked {
			r.sleepTicks(r.cost(item.service) + extraLat)
		}
		g.mu.Lock()
		g.inFlight--
		if r.stopped.Load() {
			// The run crashed while this invocation was in flight: do
			// not commit, log or apply its outcome. A prepared local
			// transaction stays in doubt with no prepared record — the
			// orphan recovery rule presumes it aborted.
			g.unregister(rt, item)
			return false
		}
		if locked {
			// Lost the probe/acquire race: a conflicting local
			// transaction grabbed the item locks between step()'s probe
			// and the Invoke. Undo the registration and re-evaluate —
			// the next step() re-probes and parks with the holder's
			// identity as a wait-for edge.
			g.unregister(rt, item)
			g.metrics.Invocations++
			g.metrics.LockWaits++
			r.reg.Inc(metrics.InvokeLockBlocked)
			g.bump()
			continue
		}
		g.complete(rt, item, res, failed)
		g.bump()
	}
}

func (g *shardGroup) unregister(rt *procRT, item workItem) {
	if item.isStep {
		rt.recoveryBusy = false
		rt.busySvc = ""
	} else {
		delete(rt.running, item.local)
	}
	g.pol.Bump()
}

// step is the serial-section decision: what should this worker do next?
// Called with g.mu held. Every sWait return records the wait-for edge
// information of the park in rt.waitAlts (nil when the policy cannot
// name the blockers).
func (g *shardGroup) step(rt *procRT) (stepKind, workItem) {
	r := g.r
	rt.waitAlts = nil
	rt.extLock = false
	rt.lockProbes = rt.lockProbes[:0]
	v := g.view()
	// Recovery steps drain strictly sequentially, before a pending
	// abort is honoured.
	if len(rt.recovery) > 0 {
		st := rt.recovery[0]
		switch st.Kind {
		case process.StepAbortPrepared:
			rt.recovery = rt.recovery[1:]
			if ptx, ok := rt.prepared[st.Local]; ok {
				if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
					g.metrics.Rollbacks++
					r.reg.Inc(metrics.DeferredRolledBack)
					r.append(wal.Record{
						Type: wal.RecResolved, Proc: string(rt.id), Local: st.Local,
						Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
					})
				}
				delete(rt.prepared, st.Local)
			}
			g.pol.EraseTentative(rt.id, st.Local)
			_ = rt.inst.ApplyStep(st)
			g.pol.Bump()
			r.nudgeRelease()
			return sAgain, workItem{}
		case process.StepCompensate:
			if r.cfg.Mode != scheduler.CCOnly && !g.pol.Lemma2Clear(v, rt.id, st) {
				g.metrics.PolicyWaits++
				return sWait, workItem{}
			}
			if holder, free := r.fed.LockBlocker(string(rt.origin), st.Service); !free {
				g.lockWait(rt, holder, st.Service)
				return sWait, workItem{}
			}
			return g.register(rt, workItem{local: st.Local, service: st.Service, kind: activity.Compensation, isStep: true, step: st})
		case process.StepInvoke:
			if r.cfg.Mode != scheduler.CCOnly {
				if !g.pol.Lemma3Clear(v, rt.id, st) || !g.pol.Lemma1ClearForward(v, rt.id, st) ||
					!g.pol.StepForcedClear(v, rt.id, st) {
					g.metrics.PolicyWaits++
					return sWait, workItem{}
				}
				if _, defer2 := g.pol.DeferToAborting(v, rt.id, st); defer2 {
					g.metrics.PolicyWaits++
					return sWait, workItem{}
				}
			}
			if holder, free := r.fed.LockBlocker(string(rt.origin), st.Service); !free {
				g.lockWait(rt, holder, st.Service)
				return sWait, workItem{}
			}
			a := rt.def.Activity(st.Local)
			return g.register(rt, workItem{local: st.Local, service: st.Service, kind: a.Kind, isStep: true, step: st})
		}
		return sWait, workItem{}
	}
	if rt.abortPending && rt.state != psAborting {
		steps, err := rt.inst.Abort()
		if err != nil {
			r.fail(fmt.Errorf("runtime: abort %s: %w", rt.id, err))
			return sDone, workItem{}
		}
		rt.abortPending = false
		rt.state = psAborting
		rt.recovery = steps
		r.append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
		r.reg.Inc(metrics.BackwardRecoveries)
		g.pol.AppendEvent(&policy.Event{Seq: r.seq.Add(1), Proc: rt.id, Typ: schedule.AbortBegin})
		g.cascadeDependents(rt)
		return sAgain, workItem{}
	}
	if rt.state == psAborting {
		// Completion drained: roll back leftovers and terminate.
		for l, ptx := range rt.prepared {
			if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
				g.metrics.Rollbacks++
				r.reg.Inc(metrics.DeferredRolledBack)
				r.append(wal.Record{
					Type: wal.RecResolved, Proc: string(rt.id), Local: l,
					Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
				})
			}
			g.pol.EraseTentative(rt.id, l)
			delete(rt.prepared, l)
		}
		g.terminate(rt, false)
		return sDone, workItem{}
	}
	if rt.inst.Done() {
		if len(rt.prepared) > 0 {
			if g.pol.HasActiveConflictPred(v, rt.id) {
				// Lemma 1: hold the 2PC commit. The wait resolves only
				// when every active conflict predecessor terminated —
				// one AND-alternative for the deadlock detector.
				rt.waitAlts = [][]process.ID{g.pol.ActiveConflictPreds(v, rt.id)}
				return sWait, workItem{}
			}
			if !g.commitPreparedSet(rt) {
				return sWait, workItem{}
			}
		}
		g.terminate(rt, true)
		return sDone, workItem{}
	}
	// Mid-process deferred commits (Lemma 1): successors of a prepared
	// activity stay off the frontier until the prepared set commits, so
	// a process wedges behind its own deferral unless it is resolved
	// here the moment the last active conflict predecessor terminates
	// (the concurrent analog of the sequential engine's
	// commitDeferredIfPossible). While predecessors are still active,
	// the deferral contributes one AND-alternative to the wait-for
	// disjunction below — parallel branches may keep executing.
	var deferAlt []process.ID
	if midProcessPrepared(rt) {
		if g.pol.HasActiveConflictPred(v, rt.id) {
			deferAlt = g.pol.ActiveConflictPreds(v, rt.id)
		} else {
			if !g.commitPreparedSet(rt) {
				return sWait, workItem{} // injected crash mid-2PC
			}
			return sAgain, workItem{} // successors joined the frontier
		}
	}
	// Regular forward execution. The single worker linearizes parallel
	// branches: pick the first dispatchable frontier activity.
	var blocked [][]process.ID
	complete := true
	for _, local := range rt.inst.Frontier() {
		a := rt.def.Activity(local)
		if !predsCommitted(rt, local) {
			complete = false
			continue
		}
		if ok, _ := g.pol.MayDispatch(v, rt.id, a); !ok {
			g.metrics.PolicyWaits++
			r.reg.Inc(metrics.InvokePolicyBlocked)
			if bs := g.pol.DispatchBlockers(v, rt.id, a); len(bs) > 0 {
				blocked = append(blocked, bs)
			} else {
				complete = false // denial without pred-wait semantics
			}
			continue
		}
		// Probe the subsystem's item locks under the serial section: a
		// held lock means parking here, not an invocation attempt whose
		// ErrLocked bounce would wake (and be woken by) other blocked
		// workers in an endless retry storm. The holder — possibly in
		// another group, since commutative services share items without
		// conflicting — becomes a wait-for edge.
		if holder, free := r.fed.LockBlocker(string(rt.origin), a.Service); !free {
			rt.lockProbes = append(rt.lockProbes, a.Service)
			if cur, ok := r.incarnation(process.ID(holder)); ok {
				blocked = append(blocked, []process.ID{cur})
				if g.byID[cur] == nil {
					rt.extLock = true
				}
			} else {
				complete = false // holder unknown (terminating); re-probe on wake
			}
			continue
		}
		return g.register(rt, workItem{local: local, service: a.Service, kind: a.Kind})
	}
	// The park's wait-for information is complete only when EVERY
	// frontier alternative was denied by a named blocker set (conflict
	// predecessors or an item-lock holder); any alternative blocked on
	// own prepared work or non-pred rules falls back to the quiescence
	// detector. extLock outlives incompleteness: the park still gets
	// cross-group nudge wake-ups and the gmu re-probe either way.
	if deferAlt != nil {
		blocked = append(blocked, deferAlt)
	}
	if complete && len(blocked) > 0 {
		rt.waitAlts = blocked
	}
	return sWait, workItem{}
}

// midProcessPrepared reports whether a non-done process holds a
// prepared (deferred-commit) local whose successors are off the
// frontier waiting for it.
func midProcessPrepared(rt *procRT) bool {
	for l := range rt.prepared {
		if rt.inst.Status(l) == process.Prepared {
			return true
		}
	}
	return false
}

// lockWait records the wait-for edge of an item-lock-blocked recovery
// step: the single pending step is the only alternative, its lock
// holder the only blocker. Called with g.mu held.
func (g *shardGroup) lockWait(rt *procRT, holder, service string) {
	rt.lockProbes = append(rt.lockProbes, service)
	cur, ok := g.r.incarnation(process.ID(holder))
	if !ok {
		return // holder unknown (terminating); quiescence backstop only
	}
	rt.waitAlts = [][]process.ID{{cur}}
	if g.byID[cur] == nil {
		rt.extLock = true
	}
}

// register records the invocation as in flight (visible to concurrent
// forced-order decisions) and hands it to the worker.
func (g *shardGroup) register(rt *procRT, item workItem) (stepKind, workItem) {
	r := g.r
	if !r.inject("runtime:dispatch") {
		return sAgain, workItem{} // crash tripped; drive's loop head exits
	}
	if item.isStep {
		rt.recoveryBusy = true
		rt.busySvc = item.service
	} else {
		rt.running[item.local] = item.service
	}
	g.pol.Bump()
	if !r.append(wal.Record{Type: wal.RecDispatch, Proc: string(rt.id), Local: item.local, Service: item.service}) {
		g.unregister(rt, item)
		return sAgain, workItem{}
	}
	r.reg.Inc(metrics.InvokeDispatched)
	return sInvoke, item
}

func predsCommitted(rt *procRT, local int) bool {
	for _, h := range rt.def.Preds(local) {
		if rt.inst.Status(h) != process.Committed {
			return false
		}
	}
	return true
}

// complete handles a finished invocation under the lock.
func (g *shardGroup) complete(rt *procRT, item workItem, res *subsystem.Result, failed bool) {
	r := g.r
	g.metrics.Invocations++
	r.noteCompletion()
	g.unregister(rt, item)
	r.reg.ObserveService(item.service, r.cost(item.service))
	if item.isStep {
		g.completeStep(rt, item, res, failed)
		return
	}
	if failed {
		if item.kind.GuaranteedToCommit() {
			g.metrics.Retries++
			r.reg.Inc(metrics.RetriesTransient)
			r.append(wal.Record{Type: wal.RecOutcome, Proc: string(rt.id), Local: item.local, Service: item.service, Outcome: "aborted"})
			return
		}
		g.permanentFailure(rt, item)
		return
	}
	if !r.append(wal.Record{
		Type: wal.RecOutcome, Proc: string(rt.id), Local: item.local, Service: item.service,
		Subsystem: r.subsystemOf(item.service), Tx: int64(res.Tx), Outcome: "prepared",
	}) {
		return // crashed: the transaction stays in doubt for recovery
	}
	sub, _ := r.fed.Owner(item.service)
	seq := r.seq.Add(1)
	if g.commitImmediately(rt, item.kind) {
		if err := sub.CommitPrepared(res.Tx); err != nil {
			r.fail(fmt.Errorf("runtime: commit %s/%s: %w", rt.id, item.service, err))
			return
		}
		r.append(wal.Record{
			Type: wal.RecResolved, Proc: string(rt.id), Local: item.local,
			Service: item.service, Subsystem: sub.Name(), Tx: int64(res.Tx), Commit: true,
		})
		if err := rt.inst.MarkCommitted(item.local); err != nil {
			r.fail(fmt.Errorf("runtime: %w", err))
			return
		}
		g.pol.AppendEvent(&policy.Event{
			Seq: seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind, Typ: schedule.Invoke,
		})
		r.reg.Inc(metrics.CommitsImmediate)
		r.nudgeRelease()
	} else {
		g.metrics.Deferrals++
		r.reg.Inc(metrics.CommitsDeferred)
		if err := rt.inst.MarkPrepared(item.local); err != nil {
			r.fail(fmt.Errorf("runtime: %w", err))
			return
		}
		rt.prepared[item.local] = preparedTx{sub: sub, tx: res.Tx, service: item.service}
		g.pol.AppendEvent(&policy.Event{
			Seq: seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind,
			Typ: schedule.Invoke, Tentative: true,
		})
	}
}

// noteCompletion counts one finished invocation and wakes backoff
// waiters; the admission mutex is a leaf under any group mutex.
func (r *Runtime) noteCompletion() {
	r.gmu.Lock()
	r.completions++
	r.gcond.Broadcast()
	r.gmu.Unlock()
}

func (g *shardGroup) commitImmediately(rt *procRT, kind activity.Kind) bool {
	if kind == activity.Compensatable {
		return true
	}
	switch g.r.cfg.Mode {
	case scheduler.CCOnly, scheduler.Serial, scheduler.Conservative:
		return true
	default:
		return !g.pol.HasActiveConflictPred(g.view(), rt.id)
	}
}

func (r *Runtime) subsystemOf(service string) string {
	if sub, ok := r.fed.Owner(service); ok {
		return sub.Name()
	}
	return ""
}

// permanentFailure reacts to the definitive failure of a compensatable
// or pivot activity.
func (g *shardGroup) permanentFailure(rt *procRT, item workItem) {
	r := g.r
	r.append(wal.Record{Type: wal.RecFailed, Proc: string(rt.id), Local: item.local, Service: item.service})
	g.pol.AppendEvent(&policy.Event{
		Seq: r.seq.Add(1), Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind, Typ: schedule.FailedInvoke,
	})
	plan, err := rt.inst.MarkFailed(item.local)
	if err != nil {
		r.fail(fmt.Errorf("runtime: %w", err))
		return
	}
	if rt.abortPending {
		return // the queued abort supersedes the local plan
	}
	if plan.Abort {
		rt.restartable = false
		rt.state = psAborting
		rt.recovery = plan.Steps
		r.append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
		r.reg.Inc(metrics.BackwardRecoveries)
		g.pol.AppendEvent(&policy.Event{Seq: r.seq.Add(1), Proc: rt.id, Typ: schedule.AbortBegin})
		g.cascadeDependents(rt)
		return
	}
	rt.recovery = plan.Steps
	r.reg.Inc(metrics.ForwardRecoveries)
}

// cascadeDependents marks conflicting dependents of an unwinding
// process for cascading abort (PREDCascade mode only). Dependents
// always conflict with the unwinding process, so they live in the same
// group.
func (g *shardGroup) cascadeDependents(rt *procRT) {
	for _, id := range g.pol.CascadeVictims(g.view(), rt.id, rt.recovery) {
		q := g.byID[id]
		if q == nil || q.state != psRunning || q.abortPending {
			continue
		}
		g.metrics.Cascades++
		g.r.reg.Inc(metrics.CascadeAborts)
		q.abortPending = true
		q.restartable = true
	}
}

// completeStep handles a finished recovery-step invocation.
func (g *shardGroup) completeStep(rt *procRT, item workItem, res *subsystem.Result, failed bool) {
	r := g.r
	if failed {
		// Compensations and forward-recovery steps are retriable.
		g.metrics.Retries++
		r.reg.Inc(metrics.RetriesTransient)
		return
	}
	// Log the step outcome (with subsystem and transaction id), then
	// commit: a crash between the two is repaired by recovery's redo
	// rule (ProcImage.RedoCommit), a crash before the log write leaves
	// an orphan that recovery presumes aborted and re-executes.
	sub, _ := r.fed.Owner(item.service)
	var logged bool
	switch item.step.Kind {
	case process.StepCompensate:
		logged = r.append(wal.Record{
			Type: wal.RecCompensate, Proc: string(rt.id), Local: item.local, Service: item.service,
			Subsystem: sub.Name(), Tx: int64(res.Tx),
		})
	case process.StepInvoke:
		logged = r.append(wal.Record{
			Type: wal.RecOutcome, Proc: string(rt.id), Local: item.local, Service: item.service,
			Subsystem: sub.Name(), Tx: int64(res.Tx), Outcome: "committed",
		})
	}
	if !logged {
		return // crashed: the step never happened as far as the log knows
	}
	if err := sub.CommitPrepared(res.Tx); err != nil {
		r.fail(fmt.Errorf("runtime: commit step %s/%s: %w", rt.id, item.service, err))
		return
	}
	if len(rt.recovery) > 0 && rt.recovery[0] == item.step {
		rt.recovery = rt.recovery[1:]
	}
	seq := r.seq.Add(1)
	switch item.step.Kind {
	case process.StepCompensate:
		g.metrics.Compensations++
		r.reg.Inc(metrics.CompensationsIssued)
		g.pol.MarkCompensated(rt.id, item.local)
		g.pol.AppendEvent(&policy.Event{
			Seq: seq, Proc: rt.id, Local: item.local, Service: item.service,
			Kind: activity.Compensation, Typ: schedule.Invoke, Inverse: true,
		})
	case process.StepInvoke:
		g.pol.AppendEvent(&policy.Event{
			Seq: seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind, Typ: schedule.Invoke,
		})
	}
	if err := rt.inst.ApplyStep(item.step); err != nil {
		r.fail(fmt.Errorf("runtime: %w", err))
		return
	}
	r.nudgeRelease()
}

// commitPreparedSet performs the atomic 2PC commit of the prepared set
// once Lemma 1 released it. Called with g.mu held (lock order
// g.mu -> subsystem.mu).
func (g *shardGroup) commitPreparedSet(rt *procRT) bool {
	r := g.r
	locals := make([]int, 0, len(rt.prepared))
	for l := range rt.prepared {
		if rt.inst.Status(l) == process.Prepared {
			locals = append(locals, l)
		}
	}
	sort.Ints(locals)
	if len(locals) == 0 {
		return true
	}
	parts := make([]twopc.Participant, 0, len(locals))
	for _, l := range locals {
		ptx := rt.prepared[l]
		parts = append(parts, twopc.Participant{
			Sub: ptx.sub, Tx: ptx.tx, Proc: string(rt.id), Local: l, Service: ptx.service,
		})
	}
	var cerr error
	if !r.guard(func() { cerr = r.coord.CommitAll(string(rt.id), parts) }) {
		return false // injected crash mid-2PC; recovery finishes the job
	}
	if cerr != nil {
		r.fail(fmt.Errorf("runtime: 2PC commit of %s: %w", rt.id, cerr))
		return false
	}
	for _, l := range locals {
		g.metrics.TwoPCCommits++
		r.reg.Inc(metrics.DeferredCommitted2PC)
		if err := rt.inst.MarkCommitted(l); err != nil {
			r.fail(fmt.Errorf("runtime: %w", err))
			return false
		}
		g.pol.FinalizeTentative(rt.id, l, r.seq.Add(1))
		delete(rt.prepared, l)
	}
	g.pol.Bump()
	return true
}

// terminate emits the terminal event. Called with g.mu held.
func (g *shardGroup) terminate(rt *procRT, committed bool) {
	r := g.r
	rt.state = psDone
	out := g.outcomes[rt.id]
	out.End = r.ticksSince(time.Now())
	out.Committed = committed
	out.Aborted = !committed
	if committed {
		g.metrics.CommittedProcs++
		r.reg.Inc(metrics.ProcsCommitted)
	} else {
		g.metrics.AbortedProcs++
		r.reg.Inc(metrics.ProcsAborted)
	}
	r.reg.Observe(metrics.HistProcDuration, r.ticksSince(time.Now())-out.Start)
	r.append(wal.Record{Type: wal.RecTerminate, Proc: string(rt.id), Committed: committed})
	g.pol.AppendEvent(&policy.Event{Seq: r.seq.Add(1), Proc: rt.id, Typ: schedule.Terminate, Committed: committed})
	rt.inst.MarkTerminated(committed)
	r.gmu.Lock()
	r.active--
	rt.adm.done = true
	if r.liveByOrigin[rt.origin] == rt.id {
		delete(r.liveByOrigin, rt.origin)
	}
	r.gcond.Broadcast()
	r.gmu.Unlock()
	// Termination released whatever this process still held (2PC commit
	// or rollback of its prepared set happened on the way here); waiters
	// in other groups only learn about it through a nudge.
	r.nudgeRelease()
}

// view adapts the group's process table to the policy View.
type rtView struct{ g *shardGroup }

func (g *shardGroup) view() policy.View { return rtView{g} }

func (v rtView) Procs() []process.ID {
	out := make([]process.ID, len(v.g.procs))
	for i, rt := range v.g.procs {
		out[i] = rt.id
	}
	return out
}

func (v rtView) Phase(id process.ID) policy.Phase {
	rt := v.g.byID[id]
	if rt == nil {
		return policy.Done
	}
	switch rt.state {
	case psRunning:
		return policy.Running
	case psAborting:
		return policy.Aborting
	default:
		return policy.Done
	}
}

func (v rtView) Arrival(id process.ID) int {
	if rt := v.g.byID[id]; rt != nil {
		return rt.arrival
	}
	return 0
}

func (v rtView) Instance(id process.ID) *process.Instance {
	if rt := v.g.byID[id]; rt != nil {
		return rt.inst
	}
	return nil
}

func (v rtView) RecoverySteps(id process.ID) []process.Step {
	if rt := v.g.byID[id]; rt != nil {
		return rt.recovery
	}
	return nil
}

func (v rtView) InFlight(id process.ID) []string {
	rt := v.g.byID[id]
	if rt == nil {
		return nil
	}
	out := make([]string, 0, len(rt.running)+1)
	for _, svc := range rt.running {
		out = append(out, svc)
	}
	if rt.recoveryBusy && rt.busySvc != "" {
		out = append(out, rt.busySvc)
	}
	return out
}

// stallDump renders the group state for stall diagnostics.
func (g *shardGroup) stallDump() string {
	r := g.r
	r.gmu.Lock()
	victims := r.victims
	active := r.active
	r.gmu.Unlock()
	s := fmt.Sprintf("group=%d shards=%v live=%d active=%d inFlight=%d waiting=%d victims=%d progress=%d\n",
		g.idx, g.shards, g.live, active, g.inFlight, g.waiting, victims, g.progress.Load())
	for _, rt := range g.procs {
		if rt.state == psDone {
			continue
		}
		s += fmt.Sprintf("  %s state=%d mode=%v done=%v running=%d recovery=%d busy=%v abortPending=%v prepared=%d frontier=%v\n",
			rt.id, rt.state, rt.inst.Mode(), rt.inst.Done(), len(rt.running), len(rt.recovery), rt.recoveryBusy, rt.abortPending, len(rt.prepared), rt.inst.Frontier())
	}
	for _, k := range g.pol.EdgeList() {
		s += fmt.Sprintf("  edge %s->%s\n", k[0], k[1])
	}
	r.gmu.Lock()
	for id, e := range r.waits {
		s += fmt.Sprintf("  wait %s alts=%v fresh=%v\n", id, e.alts, e.gen == e.g.progress.Load())
	}
	r.gmu.Unlock()
	return s
}
