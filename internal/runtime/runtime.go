// Package runtime is the concurrent execution engine for transactional
// process management: one goroutine per process drives invocations
// against the (already internally locked) subsystems, while every
// scheduling decision — conflict-predecessor checks, Lemma-1 commit
// deferral, Lemma-2/3 recovery ordering, forced-order acyclicity — is
// taken inside a small serial section shared with the pure policy layer
// (internal/scheduler/policy).
//
// The sequential discrete-event engine (internal/scheduler) remains the
// reference oracle: both engines share the identical decision code, so
// a schedule the runtime produces differs from the oracle's only in
// interleaving, never in admissibility. The differential test in this
// package asserts exactly that: every concurrently observed schedule is
// PRED and per-process terminal outcomes match the oracle.
//
// Concurrency structure:
//
//   - r.mu guards the policy state, the per-process runtimes and the
//     event history; decisions and completion bookkeeping run under it.
//   - Subsystem work (Invoke + simulated service time) runs outside the
//     lock; the in-flight invocation is registered first so concurrent
//     decisions see it as a survivor in the forced-order graph.
//   - Lock ordering is r.mu -> subsystem.mu only; the subsystems' own
//     mutexes are the per-service conflict shards.
//   - r.cond is broadcast after every state mutation; blocked workers
//     re-evaluate their gates. Each mutation advances a progress
//     generation; a global stall is declared only when every live
//     worker has re-evaluated at the current generation with nothing
//     in flight, and is broken by aborting the youngest runnable
//     process, which restarts with progress-based exponential backoff.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"transproc/internal/activity"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/subsystem"
	"transproc/internal/twopc"
	"transproc/internal/wal"
)

// Config parameterizes a runtime run.
type Config struct {
	// Mode selects the scheduling policy. The runtime supports PRED,
	// PREDCascade, Serial, Conservative and CCOnly; the weak order of
	// the sequential engine is not implemented here.
	Mode scheduler.Mode
	// Log is the write-ahead log; defaults to an in-memory log.
	Log wal.Log
	// Workers caps the number of concurrently admitted processes
	// (admission control). 0 means unlimited.
	Workers int
	// Tick is the real duration of one virtual cost unit of service
	// time. 0 means services complete without sleeping (maximum
	// interleaving pressure, minimum wall clock).
	Tick time.Duration
	// MaxRestarts bounds per-process restarts (default 8).
	MaxRestarts int
	// MaxStalls bounds stall-resolution victim aborts (default 256).
	MaxStalls int
	// Metrics is the observability registry; nil is a no-op sink.
	Metrics *metrics.Registry
	// Inject, when non-nil, is called at named crash points — the
	// dispatch gate ("runtime:dispatch") and, via the 2PC coordinator,
	// "twopc:after-decision" / "twopc:mid-resolve". A fault plan
	// (internal/fault) may panic through it with a crash sentinel; the
	// runtime recovers the sentinel, stops issuing work and WAL appends,
	// and Run returns scheduler.ErrCrashed with the partial result,
	// leaving log and subsystem state for scheduler.Recover. No-op when
	// nil.
	Inject func(point string)
	// CheckpointEvery, when positive, takes a fuzzy checkpoint
	// (wal.TakeCheckpoint) after every that many runtime force-log
	// appends, under the runtime mutex — live appends from other
	// workers queue behind it, which is exactly the fuzzy-checkpoint
	// window the recovery path must tolerate. 0 disables.
	CheckpointEvery int
	// CheckpointLimit caps the checkpoints of one run (0 = unlimited).
	CheckpointLimit int
	// CompactOnCheckpoint rewrites the log as checkpoint + tail after
	// each checkpoint when the log supports it (wal.Compactor).
	CompactOnCheckpoint bool
	// Resilience, when non-nil, routes activity invocations through a
	// resilience layer (internal/chaos) exactly as in the sequential
	// engine (scheduler.Config.Resilience): typed retries, breakers and
	// flaky transport at the invocation boundary; 2PC resolution and
	// recovery stay on the direct path.
	Resilience subsystem.ResilientInvoker
}

func (c Config) withDefaults() Config {
	if c.Log == nil {
		c.Log = wal.NewMemLog()
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
	if c.MaxStalls == 0 {
		c.MaxStalls = 256
	}
	return c
}

// Result is the outcome of a concurrent run.
type Result struct {
	// Schedule is the observed process schedule (completion order under
	// the serial section); check it with PRED(), Serializable() and
	// ProcessRecoverable().
	Schedule *schedule.Schedule
	Metrics  scheduler.Metrics
	Outcomes map[process.ID]*scheduler.Outcome
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

type procState int

const (
	psRunning procState = iota
	psAborting
	psDone
)

type preparedTx struct {
	sub     *subsystem.Subsystem
	tx      subsystem.TxID
	service string
}

// procRT is the runtime of one process; its fields are guarded by the
// runtime mutex (the owning worker mutates them only under it).
type procRT struct {
	id           process.ID
	def          *process.Process
	inst         *process.Instance
	state        procState
	arrival      int
	origin       process.ID
	restarts     int
	recovery     []process.Step
	recoveryBusy bool
	busySvc      string
	abortPending bool
	restartable  bool
	prepared     map[int]preparedTx
	running      map[int]string // in-flight invocation: local -> service
	keySeq       int            // idempotency-key counter (resilient invocations)
	start        time.Time
}

// Runtime executes processes concurrently, one goroutine each.
type Runtime struct {
	cfg   Config
	fed   *subsystem.Federation
	pol   *policy.State
	log   wal.Log
	coord *twopc.Coordinator
	reg   *metrics.Registry

	mu          sync.Mutex
	cond        *sync.Cond
	seq         int64
	completions int64     // finished invocations (backoff progress gauge)
	procs       []*procRT // admitted, admission order (includes done)
	byID        map[process.ID]*procRT
	active      int // admitted and not done
	live        int // workers whose goroutine still participates
	inFlight    int // workers outside the lock doing subsystem work
	waiting     int // workers blocked on cond (diagnostics)
	victims     int
	err         error
	canceled    bool

	// Quiescence detection. progress increments on every state change
	// that could unblock a worker; lastEval[wid] records the progress
	// generation at which worker wid last evaluated its gates and found
	// nothing to do; upToDate counts workers whose lastEval equals the
	// current generation. A global stall is declared only when every
	// live worker has re-evaluated at the current generation with
	// nothing in flight — merely being parked in cond.Wait is not
	// enough, since a worker may be signaled but not yet rescheduled.
	progress int64
	lastEval []int64
	upToDate int

	metrics  scheduler.Metrics
	outcomes map[process.ID]*scheduler.Outcome
	allProcs []*process.Process
	start    time.Time

	// Checkpointing state (Config.CheckpointEvery), guarded by mu.
	ckptAppends int
	ckptTaken   int
	ckptBusy    bool
}

// New creates a runtime over the federation.
func New(fed *subsystem.Federation, cfg Config) (*Runtime, error) {
	table, err := fed.ConflictTable()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &Runtime{
		cfg:      cfg,
		fed:      fed,
		pol:      policy.New(table, policy.Config{Mode: policyMode(cfg.Mode)}),
		log:      cfg.Log,
		coord:    twopc.New(cfg.Log),
		reg:      cfg.Metrics,
		byID:     make(map[process.ID]*procRT),
		outcomes: make(map[process.ID]*scheduler.Outcome),
	}
	r.cond = sync.NewCond(&r.mu)
	if r.reg != nil {
		r.coord.Metrics = r.reg
		fed.SetMetrics(r.reg)
		if il, ok := r.log.(wal.Instrumented); ok {
			il.SetMetrics(r.reg)
		}
	}
	r.coord.Inject = cfg.Inject
	return r, nil
}

// guard runs f, converting an injected-crash sentinel panic into the
// run-terminating error every worker observes; ok is false when the
// crash tripped. Called with r.mu held — the panic must not unwind
// past the critical section, so it is caught right here and the
// workers are woken to drain. Non-sentinel panics propagate.
func (r *Runtime) guard(f func()) (ok bool) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		crash, isCrash := v.(interface{ InjectedCrash() string })
		if !isCrash {
			panic(v)
		}
		if r.err == nil {
			r.err = fmt.Errorf("%w (injected at %s)", scheduler.ErrCrashed, crash.InjectedCrash())
		}
		r.cond.Broadcast()
	}()
	f()
	return true
}

// append force-logs a record unless the run already crashed; false
// means the record did not reach the log (the caller must not apply
// the state change the record announces).
func (r *Runtime) append(rec wal.Record) bool {
	if r.err != nil {
		return false
	}
	return r.guard(func() {
		r.log.Append(rec)
		r.maybeCheckpointLocked()
	})
}

// maybeCheckpointLocked takes a fuzzy checkpoint (and optionally
// compacts) once CheckpointEvery appends accumulated. Called with
// r.mu held from inside the append guard: an injected crash sentinel
// unwinds into guard's recover like any other force-log crash. A
// failed (non-crash) attempt is dropped — checkpointing never fails
// the run.
func (r *Runtime) maybeCheckpointLocked() {
	if r.cfg.CheckpointEvery <= 0 || r.ckptBusy {
		return
	}
	r.ckptAppends++
	if r.ckptAppends < r.cfg.CheckpointEvery {
		return
	}
	if r.cfg.CheckpointLimit > 0 && r.ckptTaken >= r.cfg.CheckpointLimit {
		return
	}
	r.ckptBusy = true
	defer func() { r.ckptBusy = false }()
	if _, err := wal.TakeCheckpoint(r.log, r.pol.Conflicts, r.cfg.Inject, r.reg); err != nil {
		return
	}
	r.ckptAppends = 0
	r.ckptTaken++
	if r.cfg.CompactOnCheckpoint {
		if c, ok := r.log.(wal.Compactor); ok {
			c.Compact(r.cfg.Inject)
		}
	}
}

// inject fires a named crash point; false when it tripped the crash.
func (r *Runtime) inject(point string) bool {
	if r.cfg.Inject == nil {
		return true
	}
	if r.err != nil {
		return false
	}
	return r.guard(func() { r.cfg.Inject(point) })
}

func policyMode(m scheduler.Mode) policy.Mode {
	switch m {
	case scheduler.PRED:
		return policy.PRED
	case scheduler.PREDCascade:
		return policy.PREDCascade
	case scheduler.Serial:
		return policy.Serial
	case scheduler.Conservative:
		return policy.Conservative
	default:
		return policy.CCOnly
	}
}

// Run executes the jobs to completion. Arrival times are in ticks
// (real delay Arrival*Tick before the process contends for admission).
// The context cancels the run: in-flight service time finishes, no new
// work starts, and ctx.Err() is returned.
func (r *Runtime) Run(ctx context.Context, jobs []scheduler.Job) (*Result, error) {
	if err := scheduler.ValidateJobs(r.fed, jobs); err != nil {
		return nil, err
	}
	r.start = time.Now()
	r.live = len(jobs)
	r.lastEval = make([]int64, len(jobs))
	for i := range r.lastEval {
		r.lastEval[i] = -1
	}

	// Cancellation watcher: wakes every blocked worker.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			r.mu.Lock()
			r.canceled = true
			r.cond.Broadcast()
			r.mu.Unlock()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(idx int, job scheduler.Job) {
			defer wg.Done()
			r.worker(idx, job)
		}(i, j)
	}
	wg.Wait()
	close(watchDone)

	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := time.Since(r.start)
	if r.cfg.Tick > 0 {
		r.metrics.Makespan = int64(elapsed / r.cfg.Tick)
	} else {
		r.metrics.Makespan = elapsed.Nanoseconds()
	}
	res := &Result{
		Schedule: r.pol.BuildSchedule(r.allProcs),
		Metrics:  r.metrics,
		Outcomes: r.outcomes,
		Elapsed:  elapsed,
	}
	if r.err != nil {
		return res, r.err
	}
	if r.canceled {
		return res, ctx.Err()
	}
	return res, nil
}

// bump advances the progress generation after a state change that may
// unblock other workers, and wakes everyone to re-evaluate. Called with
// r.mu held.
func (r *Runtime) bump() {
	r.progress++
	r.upToDate = 0
	r.cond.Broadcast()
}

// sleepTicks simulates service time.
func (r *Runtime) sleepTicks(n int64) {
	if r.cfg.Tick > 0 && n > 0 {
		time.Sleep(time.Duration(n) * r.cfg.Tick)
	}
}

func (r *Runtime) cost(service string) int64 {
	spec, ok := r.fed.Spec(service)
	if !ok || spec.Cost < 1 {
		return 1
	}
	return int64(spec.Cost)
}

// worker drives one process (including its restarts) to termination.
func (r *Runtime) worker(idx int, job scheduler.Job) {
	if job.Arrival > 0 {
		r.sleepTicks(job.Arrival)
	}
	def := job.Proc
	restarts := 0
	for {
		rt := r.admit(def, idx, job.Proc.ID, restarts)
		if rt == nil {
			break // run is over (error or canceled)
		}
		again := r.drive(rt)
		if !again {
			break
		}
		// Restart under a derived id after exponential backoff. Backoff
		// is measured in system progress, not wall time: the contention
		// that caused the abort must drain first, so re-entry waits for
		// exponentially many invocation completions by other processes
		// (or for the system to go idle). A wall-clock sleep would be
		// no backoff at all under Tick=0 — the deadlock would re-form
		// instantly with the same opponents and the same victim.
		restarts = rt.restarts + 1
		newID := process.ID(fmt.Sprintf("%s+r%d", rt.origin, restarts))
		def = rt.def.WithID(newID)
		if !r.backoff(idx, int64(4<<restarts)) {
			break
		}
	}
	r.mu.Lock()
	r.live--
	r.bump()
	r.mu.Unlock()
}

// backoff blocks until `n` further invocations completed or no other
// process is active; false when the run ended first.
func (r *Runtime) backoff(wid int, n int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	target := r.completions + n
	for r.completions < target && r.active > 0 {
		if !r.wait(wid, nil) {
			return false
		}
	}
	return r.err == nil && !r.canceled
}

// admit blocks until the admission policy lets the process in, then
// registers it; nil when the run ended first.
func (r *Runtime) admit(def *process.Process, idx int, origin process.ID, restarts int) *procRT {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !r.mayStart(def) {
		if !r.wait(idx, nil) {
			return nil
		}
	}
	rt := &procRT{
		id:       def.ID,
		def:      def,
		inst:     process.NewInstance(def),
		arrival:  idx,
		origin:   origin,
		restarts: restarts,
		prepared: make(map[int]preparedTx),
		running:  make(map[int]string),
		start:    time.Now(),
	}
	r.procs = append(r.procs, rt)
	r.byID[rt.id] = rt
	r.allProcs = append(r.allProcs, def)
	r.outcomes[rt.id] = &scheduler.Outcome{Restarts: restarts, Start: r.ticksSince(r.start)}
	r.active++
	r.append(wal.Record{Type: wal.RecStart, Proc: string(rt.id)})
	r.reg.Inc(metrics.ProcsAdmitted)
	if restarts > 0 {
		r.metrics.Restarts++
		r.reg.Inc(metrics.ProcsRestarted)
	}
	r.pol.Bump()
	r.bump()
	return rt
}

// ticksSince converts a wall-clock instant into virtual ticks since the
// run started (0 when Tick is unset).
func (r *Runtime) ticksSince(t time.Time) int64 {
	if r.cfg.Tick <= 0 {
		return 0
	}
	return int64(t.Sub(r.start) / r.cfg.Tick)
}

// mayStart implements admission control: the worker cap plus the
// Serial / Conservative admission policies (per-activity decisions for
// those modes are vacuous — admission is the policy).
func (r *Runtime) mayStart(def *process.Process) bool {
	if r.cfg.Workers > 0 && r.active >= r.cfg.Workers {
		return false
	}
	switch r.cfg.Mode {
	case scheduler.Serial:
		return r.active == 0
	case scheduler.Conservative:
		mine := scheduler.Footprint(def)
		for _, o := range r.procs {
			if o.state == psDone {
				continue
			}
			for _, s1 := range mine {
				for _, s2 := range scheduler.Footprint(o.def) {
					if r.pol.Conflicts(s1, s2) {
						return false
					}
				}
			}
		}
		return true
	default:
		return true
	}
}

// wait blocks worker wid on the condition variable until some state
// changes. A global stall is declared only once every live worker has
// re-evaluated its gates at the current progress generation and found
// nothing to do, with nothing in flight — merely counting parked
// workers would race against workers that were signaled but not yet
// rescheduled, victimizing (or failing) a process whose gates already
// cleared. Stalls are broken by victim abort. Returns false when the
// run is over. Called with r.mu held; self is the caller's process
// (nil during admission and backoff).
func (r *Runtime) wait(wid int, self *procRT) bool {
	if r.err != nil || r.canceled {
		return false
	}
	if r.lastEval[wid] != r.progress {
		r.lastEval[wid] = r.progress
		r.upToDate++
	}
	if r.upToDate >= r.live && r.inFlight == 0 && !r.actionableAbortPending() {
		// Genuine stall: every gate was re-checked this generation.
		victim := r.resolveStall()
		if victim == nil {
			r.err = fmt.Errorf("runtime: unresolvable stall (mode %v)\n%s", r.cfg.Mode, r.stallDump())
			r.cond.Broadcast()
			return false
		}
		// The victim's abortPending flag is a state change: start a new
		// generation so the stall detector re-arms only after everyone
		// re-evaluated, and wake the victim's worker. Return without
		// parking — our own broadcast precedes the Wait, so parking here
		// could sleep through the only wake-up (e.g. when the victim's
		// pending recovery is gated and it parks right back without
		// bumping); re-evaluating our gates instead re-enters wait at
		// the new generation.
		r.bump()
		return true
	}
	r.waiting++
	r.cond.Wait()
	r.waiting--
	return r.err == nil && !r.canceled
}

// actionableAbortPending reports whether some process holds an
// unconsumed abort request its worker can act on immediately (no queued
// recovery steps that could be gated). While one exists, declaring a
// new stall would be spurious: the woken workers merely re-blocked
// before that victim's worker consumed the flag. An abortPending
// process with gated recovery steps does NOT suppress stall handling —
// waiting on it could deadlock, so another victim may be taken
// (bounded by MaxStalls, as in the sequential engine).
func (r *Runtime) actionableAbortPending() bool {
	for _, rt := range r.procs {
		if rt.state != psDone && rt.abortPending && len(rt.recovery) == 0 && !rt.recoveryBusy && len(rt.running) == 0 {
			return true
		}
	}
	return false
}

// resolveStall aborts the youngest runnable process (it restarts); a
// done process blocked on its deferred 2PC commit is the fallback
// victim, mirroring the sequential engine.
func (r *Runtime) resolveStall() *procRT {
	if r.victims >= r.cfg.MaxStalls {
		return nil
	}
	var victim *procRT
	for _, rt := range r.procs {
		if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
			continue
		}
		if rt.inst.Done() {
			continue
		}
		if victim == nil || rt.arrival > victim.arrival {
			victim = rt
		}
	}
	if victim == nil {
		for _, rt := range r.procs {
			if rt.state != psRunning || len(rt.running) > 0 || rt.recoveryBusy || rt.abortPending {
				continue
			}
			if rt.inst.Done() && len(rt.prepared) > 0 && r.pol.HasActiveConflictPred(r.view(), rt.id) {
				if victim == nil || rt.arrival > victim.arrival {
					victim = rt
				}
			}
		}
	}
	if victim == nil {
		return nil
	}
	r.victims++
	r.metrics.VictimAborts++
	r.reg.Inc(metrics.VictimAborts)
	victim.restartable = true
	victim.abortPending = true
	return victim
}

// stepKind is the action the serial section hands a worker.
type stepKind int

const (
	sWait   stepKind = iota // nothing dispatchable; block
	sAgain                  // progressed under the lock; re-evaluate
	sInvoke                 // perform the prepared invocation outside the lock
	sDone                   // process terminated
)

type workItem struct {
	local   int
	service string
	kind    activity.Kind
	isStep  bool
	step    process.Step
}

// drive runs one admitted process to termination. Returns true when the
// process aborted restartably and should re-enter.
func (r *Runtime) drive(rt *procRT) (restart bool) {
	r.mu.Lock()
	for {
		if r.err != nil || r.canceled {
			break
		}
		kind, item := r.step(rt)
		switch kind {
		case sAgain:
			r.bump()
			continue
		case sDone:
			restart = rt.restartable && rt.restarts < r.cfg.MaxRestarts
			r.bump()
			r.mu.Unlock()
			return restart
		case sWait:
			if !r.wait(rt.arrival, rt) {
				r.mu.Unlock()
				return false
			}
			continue
		}
		// sInvoke: the in-flight registration (running / recoveryBusy)
		// happened in step(); do the subsystem work unlocked.
		r.inFlight++
		var key string
		if r.cfg.Resilience != nil {
			// Key allocated under the lock: fresh per logical invocation
			// and per incarnation (rt.id carries the restart suffix).
			key = fmt.Sprintf("%s#%d", rt.id, rt.keySeq)
			rt.keySeq++
		}
		r.mu.Unlock()
		var res *subsystem.Result
		var err error
		var extraLat int64
		if r.cfg.Resilience != nil {
			res, extraLat, err = r.cfg.Resilience.InvokeResilient(
				string(rt.origin), item.service, item.kind, subsystem.Prepare, key)
		} else {
			res, err = r.fed.Invoke(string(rt.origin), item.service, subsystem.Prepare)
		}
		locked := errors.Is(err, subsystem.ErrLocked)
		failed := subsystem.IsInvocationFailure(err)
		if err != nil && !locked && !failed {
			panic(fmt.Sprintf("runtime: invoke %s/%s: %v", rt.id, item.service, err))
		}
		if !locked {
			r.sleepTicks(r.cost(item.service) + extraLat)
		}
		r.mu.Lock()
		r.inFlight--
		if r.err != nil {
			// The run crashed while this invocation was in flight: do
			// not commit, log or apply its outcome. A prepared local
			// transaction stays in doubt with no prepared record — the
			// orphan recovery rule presumes it aborted.
			r.unregister(rt, item)
			break
		}
		if locked {
			// A conflicting local transaction holds the subsystem lock;
			// undo the registration and wait for its resolution.
			r.unregister(rt, item)
			r.metrics.Invocations++
			r.metrics.LockWaits++
			r.reg.Inc(metrics.InvokeLockBlocked)
			r.bump()
			if !r.wait(rt.arrival, rt) {
				r.mu.Unlock()
				return false
			}
			continue
		}
		r.complete(rt, item, res, failed)
		r.bump()
	}
	r.mu.Unlock()
	return false
}

func (r *Runtime) unregister(rt *procRT, item workItem) {
	if item.isStep {
		rt.recoveryBusy = false
		rt.busySvc = ""
	} else {
		delete(rt.running, item.local)
	}
	r.pol.Bump()
}

// step is the serial-section decision: what should this worker do next?
// Called with r.mu held.
func (r *Runtime) step(rt *procRT) (stepKind, workItem) {
	v := r.view()
	// Recovery steps drain strictly sequentially, before a pending
	// abort is honoured.
	if len(rt.recovery) > 0 {
		st := rt.recovery[0]
		switch st.Kind {
		case process.StepAbortPrepared:
			rt.recovery = rt.recovery[1:]
			if ptx, ok := rt.prepared[st.Local]; ok {
				if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
					r.metrics.Rollbacks++
					r.reg.Inc(metrics.DeferredRolledBack)
					r.append(wal.Record{
						Type: wal.RecResolved, Proc: string(rt.id), Local: st.Local,
						Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
					})
				}
				delete(rt.prepared, st.Local)
			}
			r.pol.EraseTentative(rt.id, st.Local)
			_ = rt.inst.ApplyStep(st)
			r.pol.Bump()
			return sAgain, workItem{}
		case process.StepCompensate:
			if r.cfg.Mode != scheduler.CCOnly && !r.pol.Lemma2Clear(v, rt.id, st) {
				r.metrics.PolicyWaits++
				return sWait, workItem{}
			}
			if !r.fed.Lockable(string(rt.origin), st.Service) {
				return sWait, workItem{}
			}
			return r.register(rt, workItem{local: st.Local, service: st.Service, kind: activity.Compensation, isStep: true, step: st})
		case process.StepInvoke:
			if r.cfg.Mode != scheduler.CCOnly {
				if !r.pol.Lemma3Clear(v, rt.id, st) || !r.pol.Lemma1ClearForward(v, rt.id, st) ||
					!r.pol.StepForcedClear(v, rt.id, st) {
					r.metrics.PolicyWaits++
					return sWait, workItem{}
				}
				if _, defer2 := r.pol.DeferToAborting(v, rt.id, st); defer2 {
					r.metrics.PolicyWaits++
					return sWait, workItem{}
				}
			}
			if !r.fed.Lockable(string(rt.origin), st.Service) {
				return sWait, workItem{}
			}
			a := rt.def.Activity(st.Local)
			return r.register(rt, workItem{local: st.Local, service: st.Service, kind: a.Kind, isStep: true, step: st})
		}
		return sWait, workItem{}
	}
	if rt.abortPending && rt.state != psAborting {
		steps, err := rt.inst.Abort()
		if err != nil {
			r.err = fmt.Errorf("runtime: abort %s: %w", rt.id, err)
			return sDone, workItem{}
		}
		rt.abortPending = false
		rt.state = psAborting
		rt.recovery = steps
		r.append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
		r.reg.Inc(metrics.BackwardRecoveries)
		r.seq++
		r.pol.AppendEvent(&policy.Event{Seq: r.seq, Proc: rt.id, Typ: schedule.AbortBegin})
		r.cascadeDependents(rt)
		return sAgain, workItem{}
	}
	if rt.state == psAborting {
		// Completion drained: roll back leftovers and terminate.
		for l, ptx := range rt.prepared {
			if err := ptx.sub.AbortPrepared(ptx.tx); err == nil {
				r.metrics.Rollbacks++
				r.reg.Inc(metrics.DeferredRolledBack)
				r.append(wal.Record{
					Type: wal.RecResolved, Proc: string(rt.id), Local: l,
					Service: ptx.service, Subsystem: ptx.sub.Name(), Tx: int64(ptx.tx), Commit: false,
				})
			}
			r.pol.EraseTentative(rt.id, l)
			delete(rt.prepared, l)
		}
		r.terminate(rt, false)
		return sDone, workItem{}
	}
	if rt.inst.Done() {
		if len(rt.prepared) > 0 {
			if r.pol.HasActiveConflictPred(v, rt.id) {
				return sWait, workItem{} // Lemma 1: hold the 2PC commit
			}
			if !r.commitPreparedSet(rt) {
				return sWait, workItem{}
			}
		}
		r.terminate(rt, true)
		return sDone, workItem{}
	}
	// Regular forward execution. The single worker linearizes parallel
	// branches: pick the first dispatchable frontier activity.
	for _, local := range rt.inst.Frontier() {
		a := rt.def.Activity(local)
		if !r.predsCommitted(rt, local) {
			continue
		}
		if ok, _ := r.pol.MayDispatch(v, rt.id, a); !ok {
			r.metrics.PolicyWaits++
			r.reg.Inc(metrics.InvokePolicyBlocked)
			continue
		}
		// Probe the subsystem's item locks under the serial section: a
		// held lock means parking here, not an invocation attempt whose
		// ErrLocked bounce would wake (and be woken by) other blocked
		// workers in an endless retry storm. Lock releases always come
		// with a progress bump, so parked workers re-probe in time.
		if !r.fed.Lockable(string(rt.origin), a.Service) {
			continue
		}
		return r.register(rt, workItem{local: local, service: a.Service, kind: a.Kind})
	}
	return sWait, workItem{}
}

// register records the invocation as in flight (visible to concurrent
// forced-order decisions) and hands it to the worker.
func (r *Runtime) register(rt *procRT, item workItem) (stepKind, workItem) {
	if !r.inject("runtime:dispatch") {
		return sAgain, workItem{} // crash tripped; drive's loop head exits
	}
	if item.isStep {
		rt.recoveryBusy = true
		rt.busySvc = item.service
	} else {
		rt.running[item.local] = item.service
	}
	r.pol.Bump()
	if !r.append(wal.Record{Type: wal.RecDispatch, Proc: string(rt.id), Local: item.local, Service: item.service}) {
		r.unregister(rt, item)
		return sAgain, workItem{}
	}
	r.reg.Inc(metrics.InvokeDispatched)
	return sInvoke, item
}

func (r *Runtime) predsCommitted(rt *procRT, local int) bool {
	for _, h := range rt.def.Preds(local) {
		if rt.inst.Status(h) != process.Committed {
			return false
		}
	}
	return true
}

// complete handles a finished invocation under the lock.
func (r *Runtime) complete(rt *procRT, item workItem, res *subsystem.Result, failed bool) {
	r.metrics.Invocations++
	r.completions++
	r.unregister(rt, item)
	r.reg.ObserveService(item.service, r.cost(item.service))
	if item.isStep {
		r.completeStep(rt, item, res, failed)
		return
	}
	if failed {
		if item.kind.GuaranteedToCommit() {
			r.metrics.Retries++
			r.reg.Inc(metrics.RetriesTransient)
			r.append(wal.Record{Type: wal.RecOutcome, Proc: string(rt.id), Local: item.local, Service: item.service, Outcome: "aborted"})
			return
		}
		r.permanentFailure(rt, item)
		return
	}
	if !r.append(wal.Record{
		Type: wal.RecOutcome, Proc: string(rt.id), Local: item.local, Service: item.service,
		Subsystem: r.subsystemOf(item.service), Tx: int64(res.Tx), Outcome: "prepared",
	}) {
		return // crashed: the transaction stays in doubt for recovery
	}
	sub, _ := r.fed.Owner(item.service)
	r.seq++
	if r.commitImmediately(rt, item.kind) {
		if err := sub.CommitPrepared(res.Tx); err != nil {
			r.err = fmt.Errorf("runtime: commit %s/%s: %w", rt.id, item.service, err)
			return
		}
		r.append(wal.Record{
			Type: wal.RecResolved, Proc: string(rt.id), Local: item.local,
			Service: item.service, Subsystem: sub.Name(), Tx: int64(res.Tx), Commit: true,
		})
		if err := rt.inst.MarkCommitted(item.local); err != nil {
			r.err = fmt.Errorf("runtime: %w", err)
			return
		}
		r.pol.AppendEvent(&policy.Event{
			Seq: r.seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind, Typ: schedule.Invoke,
		})
		r.reg.Inc(metrics.CommitsImmediate)
	} else {
		r.metrics.Deferrals++
		r.reg.Inc(metrics.CommitsDeferred)
		if err := rt.inst.MarkPrepared(item.local); err != nil {
			r.err = fmt.Errorf("runtime: %w", err)
			return
		}
		rt.prepared[item.local] = preparedTx{sub: sub, tx: res.Tx, service: item.service}
		r.pol.AppendEvent(&policy.Event{
			Seq: r.seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind,
			Typ: schedule.Invoke, Tentative: true,
		})
	}
}

func (r *Runtime) commitImmediately(rt *procRT, kind activity.Kind) bool {
	if kind == activity.Compensatable {
		return true
	}
	switch r.cfg.Mode {
	case scheduler.CCOnly, scheduler.Serial, scheduler.Conservative:
		return true
	default:
		return !r.pol.HasActiveConflictPred(r.view(), rt.id)
	}
}

func (r *Runtime) subsystemOf(service string) string {
	if sub, ok := r.fed.Owner(service); ok {
		return sub.Name()
	}
	return ""
}

// permanentFailure reacts to the definitive failure of a compensatable
// or pivot activity.
func (r *Runtime) permanentFailure(rt *procRT, item workItem) {
	r.append(wal.Record{Type: wal.RecFailed, Proc: string(rt.id), Local: item.local, Service: item.service})
	r.seq++
	r.pol.AppendEvent(&policy.Event{
		Seq: r.seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind, Typ: schedule.FailedInvoke,
	})
	plan, err := rt.inst.MarkFailed(item.local)
	if err != nil {
		r.err = fmt.Errorf("runtime: %w", err)
		return
	}
	if rt.abortPending {
		return // the queued abort supersedes the local plan
	}
	if plan.Abort {
		rt.restartable = false
		rt.state = psAborting
		rt.recovery = plan.Steps
		r.append(wal.Record{Type: wal.RecAbortBegin, Proc: string(rt.id)})
		r.reg.Inc(metrics.BackwardRecoveries)
		r.seq++
		r.pol.AppendEvent(&policy.Event{Seq: r.seq, Proc: rt.id, Typ: schedule.AbortBegin})
		r.cascadeDependents(rt)
		return
	}
	rt.recovery = plan.Steps
	r.reg.Inc(metrics.ForwardRecoveries)
}

// cascadeDependents marks conflicting dependents of an unwinding
// process for cascading abort (PREDCascade mode only).
func (r *Runtime) cascadeDependents(rt *procRT) {
	for _, id := range r.pol.CascadeVictims(r.view(), rt.id, rt.recovery) {
		q := r.byID[id]
		if q == nil || q.state != psRunning || q.abortPending {
			continue
		}
		r.metrics.Cascades++
		r.reg.Inc(metrics.CascadeAborts)
		q.abortPending = true
		q.restartable = true
	}
}

// completeStep handles a finished recovery-step invocation.
func (r *Runtime) completeStep(rt *procRT, item workItem, res *subsystem.Result, failed bool) {
	if failed {
		// Compensations and forward-recovery steps are retriable.
		r.metrics.Retries++
		r.reg.Inc(metrics.RetriesTransient)
		return
	}
	// Log the step outcome (with subsystem and transaction id), then
	// commit: a crash between the two is repaired by recovery's redo
	// rule (ProcImage.RedoCommit), a crash before the log write leaves
	// an orphan that recovery presumes aborted and re-executes.
	sub, _ := r.fed.Owner(item.service)
	var logged bool
	switch item.step.Kind {
	case process.StepCompensate:
		logged = r.append(wal.Record{
			Type: wal.RecCompensate, Proc: string(rt.id), Local: item.local, Service: item.service,
			Subsystem: sub.Name(), Tx: int64(res.Tx),
		})
	case process.StepInvoke:
		logged = r.append(wal.Record{
			Type: wal.RecOutcome, Proc: string(rt.id), Local: item.local, Service: item.service,
			Subsystem: sub.Name(), Tx: int64(res.Tx), Outcome: "committed",
		})
	}
	if !logged {
		return // crashed: the step never happened as far as the log knows
	}
	if err := sub.CommitPrepared(res.Tx); err != nil {
		r.err = fmt.Errorf("runtime: commit step %s/%s: %w", rt.id, item.service, err)
		return
	}
	if len(rt.recovery) > 0 && rt.recovery[0] == item.step {
		rt.recovery = rt.recovery[1:]
	}
	r.seq++
	switch item.step.Kind {
	case process.StepCompensate:
		r.metrics.Compensations++
		r.reg.Inc(metrics.CompensationsIssued)
		r.pol.MarkCompensated(rt.id, item.local)
		r.pol.AppendEvent(&policy.Event{
			Seq: r.seq, Proc: rt.id, Local: item.local, Service: item.service,
			Kind: activity.Compensation, Typ: schedule.Invoke, Inverse: true,
		})
	case process.StepInvoke:
		r.pol.AppendEvent(&policy.Event{
			Seq: r.seq, Proc: rt.id, Local: item.local, Service: item.service, Kind: item.kind, Typ: schedule.Invoke,
		})
	}
	if err := rt.inst.ApplyStep(item.step); err != nil {
		r.err = fmt.Errorf("runtime: %w", err)
	}
}

// commitPreparedSet performs the atomic 2PC commit of the prepared set
// once Lemma 1 released it. Called with r.mu held (lock order
// r.mu -> subsystem.mu).
func (r *Runtime) commitPreparedSet(rt *procRT) bool {
	locals := make([]int, 0, len(rt.prepared))
	for l := range rt.prepared {
		if rt.inst.Status(l) == process.Prepared {
			locals = append(locals, l)
		}
	}
	sort.Ints(locals)
	if len(locals) == 0 {
		return true
	}
	parts := make([]twopc.Participant, 0, len(locals))
	for _, l := range locals {
		ptx := rt.prepared[l]
		parts = append(parts, twopc.Participant{
			Sub: ptx.sub, Tx: ptx.tx, Proc: string(rt.id), Local: l, Service: ptx.service,
		})
	}
	var cerr error
	if !r.guard(func() { cerr = r.coord.CommitAll(string(rt.id), parts) }) {
		return false // injected crash mid-2PC; recovery finishes the job
	}
	if cerr != nil {
		r.err = fmt.Errorf("runtime: 2PC commit of %s: %w", rt.id, cerr)
		return false
	}
	for _, l := range locals {
		r.metrics.TwoPCCommits++
		r.reg.Inc(metrics.DeferredCommitted2PC)
		if err := rt.inst.MarkCommitted(l); err != nil {
			r.err = fmt.Errorf("runtime: %w", err)
			return false
		}
		r.seq++
		r.pol.FinalizeTentative(rt.id, l, r.seq)
		delete(rt.prepared, l)
	}
	r.pol.Bump()
	return true
}

// terminate emits the terminal event. Called with r.mu held.
func (r *Runtime) terminate(rt *procRT, committed bool) {
	rt.state = psDone
	r.active--
	out := r.outcomes[rt.id]
	out.End = r.ticksSince(time.Now())
	out.Committed = committed
	out.Aborted = !committed
	if committed {
		r.metrics.CommittedProcs++
		r.reg.Inc(metrics.ProcsCommitted)
	} else {
		r.metrics.AbortedProcs++
		r.reg.Inc(metrics.ProcsAborted)
	}
	r.reg.Observe(metrics.HistProcDuration, r.ticksSince(time.Now())-out.Start)
	r.append(wal.Record{Type: wal.RecTerminate, Proc: string(rt.id), Committed: committed})
	r.seq++
	r.pol.AppendEvent(&policy.Event{Seq: r.seq, Proc: rt.id, Typ: schedule.Terminate, Committed: committed})
	rt.inst.MarkTerminated(committed)
}

// view adapts the runtime's process table to the policy View.
type rtView struct{ r *Runtime }

func (r *Runtime) view() policy.View { return rtView{r} }

func (v rtView) Procs() []process.ID {
	out := make([]process.ID, len(v.r.procs))
	for i, rt := range v.r.procs {
		out[i] = rt.id
	}
	return out
}

func (v rtView) Phase(id process.ID) policy.Phase {
	rt := v.r.byID[id]
	if rt == nil {
		return policy.Done
	}
	switch rt.state {
	case psRunning:
		return policy.Running
	case psAborting:
		return policy.Aborting
	default:
		return policy.Done
	}
}

func (v rtView) Arrival(id process.ID) int {
	if rt := v.r.byID[id]; rt != nil {
		return rt.arrival
	}
	return 0
}

func (v rtView) Instance(id process.ID) *process.Instance {
	if rt := v.r.byID[id]; rt != nil {
		return rt.inst
	}
	return nil
}

func (v rtView) RecoverySteps(id process.ID) []process.Step {
	if rt := v.r.byID[id]; rt != nil {
		return rt.recovery
	}
	return nil
}

func (v rtView) InFlight(id process.ID) []string {
	rt := v.r.byID[id]
	if rt == nil {
		return nil
	}
	out := make([]string, 0, len(rt.running)+1)
	for _, svc := range rt.running {
		out = append(out, svc)
	}
	if rt.recoveryBusy && rt.busySvc != "" {
		out = append(out, rt.busySvc)
	}
	return out
}

// stallDump renders the runtime state for stall diagnostics.
func (r *Runtime) stallDump() string {
	s := fmt.Sprintf("live=%d active=%d inFlight=%d waiting=%d victims=%d progress=%d\n", r.live, r.active, r.inFlight, r.waiting, r.victims, r.progress)
	for _, rt := range r.procs {
		if rt.state == psDone {
			continue
		}
		s += fmt.Sprintf("  %s state=%d mode=%v done=%v running=%d recovery=%d busy=%v abortPending=%v prepared=%d frontier=%v\n",
			rt.id, rt.state, rt.inst.Mode(), rt.inst.Done(), len(rt.running), len(rt.recovery), rt.recoveryBusy, rt.abortPending, len(rt.prepared), rt.inst.Frontier())
		if len(rt.recovery) > 0 {
			st := rt.recovery[0]
			s += fmt.Sprintf("    next step: %v\n", st)
			if st.Kind == process.StepInvoke {
				s += fmt.Sprintf("    gates: lemma3=%v lemma1fwd=%v forced=%v newEdges=%v\n",
					r.pol.Lemma3Clear(r.view(), rt.id, st), r.pol.Lemma1ClearForward(r.view(), rt.id, st),
					r.pol.StepForcedClear(r.view(), rt.id, st), r.pol.ForcedEdgesFor(r.view(), rt.id, st.Service, true))
			}
			if st.Kind == process.StepCompensate {
				s += fmt.Sprintf("    gates: lemma2=%v\n", r.pol.Lemma2Clear(r.view(), rt.id, st))
			}
		}
	}
	for _, k := range r.pol.EdgeList() {
		s += fmt.Sprintf("  edge %s->%s\n", k[0], k[1])
	}
	return s
}
