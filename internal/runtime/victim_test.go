package runtime_test

import (
	"context"
	"testing"
	"time"

	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// TestRuntimeCCOnlyVictimResolution drives the concurrent runtime's
// stall detection and victim-abort machinery, which the PRED modes make
// unreachable (semantic item locks plus potential-edge avoidance leave
// no wedge to break — see TestRuntimeHighContentionNoVictims). The
// CCOnly baseline has no avoidance: conflicting executions interleave
// until an executed serialization edge would close a cycle, the denial
// wedges the processes, and the deadlock detector (or the quiescence
// backstop) must pick victims so the run still terminates.
func TestRuntimeCCOnlyVictimResolution(t *testing.T) {
	t.Parallel()
	victims := int64(0)
	for seed := int64(1); seed <= 3; seed++ {
		// Zero failure probabilities and a real tick: every abort below
		// is a victim abort, and activity durations overlap enough for
		// crossed serialization edges to actually form (with Tick 0,
		// invocations are instantaneous and wedges rarely build).
		p := workload.DefaultProfile(seed)
		p.Processes = 16
		p.ConflictProb = 0.9
		p.ParallelProb = 0.5
		p.PermFailureProb = 0
		p.TransientFailureProb = 0
		w := workload.MustGenerate(p)
		rt, err := runtime.New(w.Fed, runtime.Config{
			Mode: scheduler.CCOnly, Workers: 16, MaxRestarts: 64,
			Tick: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(context.Background(), w.Jobs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Metrics.CommittedProcs < p.Processes {
			t.Fatalf("seed %d: %d of %d origins committed", seed, res.Metrics.CommittedProcs, p.Processes)
		}
		victims += res.Metrics.VictimAborts
		for item, v := range w.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("seed %d: %s negative (%d)", seed, item, v)
			}
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("seed %d: %d in-doubt transactions remain", seed, n)
		}
	}
	if victims == 0 {
		t.Fatal("CCOnly contention must wedge at least one process across the seeds (seed drift?)")
	}
}

// TestRuntimeHighContentionNoVictims pins the concurrent-runtime side
// of the zero-victim invariant (the sequential-engine side lives in the
// scheduler package): under PRED, Definition-6 semantic item locks and
// the forced-order graph's potential edges prevent every wedge, so even
// extreme contention terminates with no victim aborts. The deferred
// mid-process 2PC commits this workload provokes must all drain —
// prepared sets held back by Lemma 1 commit once their conflict
// predecessors terminate.
func TestRuntimeHighContentionNoVictims(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 3; seed++ {
		p := workload.DefaultProfile(seed)
		p.Processes = 16
		p.ConflictProb = 0.9
		p.ParallelProb = 0.5
		p.PermFailureProb = 0
		p.TransientFailureProb = 0
		w := workload.MustGenerate(p)
		rt, err := runtime.New(w.Fed, runtime.Config{
			Mode: scheduler.PRED, Workers: 16, Tick: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(context.Background(), w.Jobs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Metrics.VictimAborts != 0 {
			t.Fatalf("seed %d: %d victim aborts; semantic locking + avoidance should prevent all wedges",
				seed, res.Metrics.VictimAborts)
		}
		if res.Metrics.CommittedProcs < p.Processes {
			t.Fatalf("seed %d: %d of %d processes committed", seed, res.Metrics.CommittedProcs, p.Processes)
		}
		ok, at, _, err := res.Schedule.PRED()
		if err != nil {
			t.Fatalf("seed %d: PRED check: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: non-PRED schedule (prefix %d):\n%s", seed, at, res.Schedule)
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("seed %d: %d in-doubt transactions remain", seed, n)
		}
	}
}

// TestRuntimeDeferredCommitDrain mixes contention, parallel branches
// and permanent failures under a real tick so completions overlap:
// Lemma-1 defers 2PC commits mid-process (a prepared activity whose
// successors wait off-frontier), and those prepared sets must drain —
// committing once the conflict predecessors terminate — rather than
// wedge the process. Backward recoveries run concurrently with the
// deferrals, and the result must stay PRED and effect-consistent.
func TestRuntimeDeferredCommitDrain(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 8; seed++ {
		p := workload.DefaultProfile(seed)
		p.Processes = 24
		p.ConflictProb = 0.5
		p.ParallelProb = 0.5
		p.PermFailureProb = 0.15
		w := workload.MustGenerate(p)
		rt, err := runtime.New(w.Fed, runtime.Config{
			Mode: scheduler.PRED, Workers: 16, Tick: 200 * time.Microsecond,
			CheckpointEvery: 6, CompactOnCheckpoint: seed%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(context.Background(), w.Jobs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.Metrics.CommittedProcs + res.Metrics.AbortedProcs; got < p.Processes {
			t.Fatalf("seed %d: only %d of %d processes terminated", seed, got, p.Processes)
		}
		ok, at, _, err := res.Schedule.PRED()
		if err != nil {
			t.Fatalf("seed %d: PRED check: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: non-PRED schedule (prefix %d):\n%s", seed, at, res.Schedule)
		}
		for item, v := range w.Fed.Snapshot() {
			if v < 0 {
				t.Fatalf("seed %d: %s negative (%d)", seed, item, v)
			}
		}
		if n := len(w.Fed.InDoubt()); n != 0 {
			t.Fatalf("seed %d: %d in-doubt transactions remain", seed, n)
		}
	}
}
