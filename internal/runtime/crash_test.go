package runtime_test

import (
	"context"
	"errors"
	"testing"

	"transproc/internal/fault"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// TestRuntimeKillRecover sweeps kill points through the concurrent
// runtime's dispatch gate: the run is crashed at the K-th dispatch, the
// surviving WAL and subsystem state are handed to the sequential
// scheduler.Recover, and the result must satisfy every recovery
// guarantee of the paper (prefix-reducible combined schedule, all
// processes terminal, Lemma-2 compensation order, exactly-once effects,
// idempotent recovery) — the differential-style check across the
// engine boundary: a concurrent execution, recovered sequentially.
func TestRuntimeKillRecover(t *testing.T) {
	t.Parallel()
	kills := []int{1, 2, 3, 5, 8, 13, 21}
	if testing.Short() {
		kills = []int{1, 3, 8}
	}
	for seed := int64(1); seed <= 4; seed++ {
		for _, k := range kills {
			p := workload.DefaultProfile(seed)
			p.Processes = 8
			p.ConflictProb = 0.4
			p.PermFailureProb = 0
			p.TransientFailureProb = 0.1
			w := workload.MustGenerate(p)
			defs := make([]*process.Process, 0, len(w.Jobs))
			for _, j := range w.Jobs {
				defs = append(defs, j.Proc)
			}
			log := wal.NewMemLog()
			inj := fault.NewInjector(fault.Plan{KillAtDispatch: k})
			rt, err := runtime.New(w.Fed, runtime.Config{
				Mode: scheduler.PRED, Log: log, MaxRestarts: 64, Inject: inj.Point,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, err = rt.Run(context.Background(), w.Jobs)
			if err != nil && !errors.Is(err, scheduler.ErrCrashed) {
				t.Fatalf("seed %d kill %d: run: %v", seed, k, err)
			}
			crashed := err != nil
			recs, err := log.Records()
			if err != nil {
				t.Fatal(err)
			}
			pre := len(recs)
			if _, err := scheduler.Recover(w.Fed, log, defs); err != nil {
				t.Fatalf("seed %d kill %d: recover: %v", seed, k, err)
			}
			if err := fault.CheckRecovered(fault.CheckInput{
				Fed: w.Fed, Log: log, Defs: defs, PreCrashRecords: pre,
			}); err != nil {
				t.Fatalf("seed %d kill %d (crashed=%v): %v", seed, k, crashed, err)
			}
		}
	}
}
