package runtime_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// The differential test validates the concurrent runtime against the
// sequential engine as an oracle. Both engines share the identical
// policy layer, so any admissible-schedule divergence is a concurrency
// bug in the runtime. Probabilistic failures would make outcomes
// interleaving-dependent, so the workloads here use zero failure
// probability plus deterministic per-(process, service) failure rules:
// a rule persists across restarts (the subsystem keys it by the origin
// process name), which makes each origin's terminal fate — committed or
// aborted — a pure function of the workload, not of the interleaving.
//
// Assertions per workload:
//  1. the runtime's observed schedule is prefix-reducible (PRED), and
//  2. per-origin terminal outcomes match the sequential oracle's.

// diffSeeds is the number of seeded workloads (the issue demands >= 50).
const diffSeeds = 60

type failRule struct {
	origin  string
	service string
}

func diffProfile(seed int64) workload.Profile {
	p := workload.DefaultProfile(seed)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0
	return p
}

// chooseRules deterministically picks, for roughly a third of the
// processes, one compensatable or pivot service that will permanently
// fail for that process. Retriable services are never failed (their
// failures are transient by contract) and neither are compensations
// (the paper's perfect-compensation assumption — a persistent
// compensation failure would retry forever in either engine).
func chooseRules(w *workload.Workload, seed int64) []failRule {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	var rules []failRule
	for _, j := range w.Jobs {
		if rng.Float64() >= 0.35 {
			continue
		}
		var candidates []string
		for _, svc := range scheduler.Footprint(j.Proc) {
			spec, ok := w.Fed.Spec(svc)
			if ok && (spec.Kind == activity.Compensatable || spec.Kind == activity.Pivot) {
				candidates = append(candidates, svc)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rules = append(rules, failRule{
			origin:  string(j.Proc.ID),
			service: candidates[rng.Intn(len(candidates))],
		})
	}
	return rules
}

func injectRules(t *testing.T, fed *subsystem.Federation, rules []failRule) {
	t.Helper()
	for _, r := range rules {
		sub, ok := fed.Owner(r.service)
		if !ok {
			t.Fatalf("no owner for service %s", r.service)
		}
		sub.FailService(r.origin, r.service)
	}
}

// foldOutcomes reduces per-incarnation outcomes (W3, W3+r1, ...) to a
// per-origin terminal fate: an origin committed iff any incarnation
// committed.
func foldOutcomes(out map[process.ID]*scheduler.Outcome) map[string]bool {
	m := make(map[string]bool)
	for id, o := range out {
		origin := string(id)
		if i := strings.IndexByte(origin, '+'); i >= 0 {
			origin = origin[:i]
		}
		if o.Committed {
			m[origin] = true
		} else if _, seen := m[origin]; !seen {
			m[origin] = false
		}
	}
	return m
}

func runDifferential(t *testing.T, seed int64, mode scheduler.Mode) (committed, aborted int) {
	t.Helper()
	p := diffProfile(seed)

	// Two identically generated copies of the workload: the oracle and
	// the runtime must not share mutable subsystem state.
	oracleW := workload.MustGenerate(p)
	rtW := workload.MustGenerate(p)
	rules := chooseRules(oracleW, seed)
	injectRules(t, oracleW.Fed, rules)
	injectRules(t, rtW.Fed, rules)

	eng, err := scheduler.New(oracleW.Fed, scheduler.Config{Mode: mode, MaxRestarts: 64})
	if err != nil {
		t.Fatal(err)
	}
	oracleRes, err := eng.RunJobs(oracleW.Jobs)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}

	// The runtime side runs with group commit on so every differential
	// seed also exercises the batching appender's ack semantics (the
	// oracle is single-threaded; batching there would never coalesce).
	r, err := runtime.New(rtW.Fed, runtime.Config{
		Mode: mode, MaxRestarts: 64,
		GroupCommit: wal.GroupCommit{MaxBatch: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtRes, err := r.Run(context.Background(), rtW.Jobs)
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}

	// 1. Every concurrently observed schedule is prefix-reducible.
	ok, at, _, err := rtRes.Schedule.PRED()
	if err != nil {
		t.Fatalf("PRED check: %v", err)
	}
	if !ok {
		t.Fatalf("runtime schedule not PRED (prefix %d):\n%s", at, rtRes.Schedule)
	}

	// 2. Terminal per-origin outcomes match the sequential oracle.
	want := foldOutcomes(oracleRes.Outcomes)
	got := foldOutcomes(rtRes.Outcomes)
	if len(want) != len(got) {
		t.Fatalf("origin sets differ: oracle %d, runtime %d", len(want), len(got))
	}
	for origin, w := range want {
		g, okG := got[origin]
		if !okG {
			t.Fatalf("origin %s missing from runtime outcomes", origin)
		}
		if g != w {
			t.Fatalf("origin %s: oracle committed=%v, runtime committed=%v\nrules: %v",
				origin, w, g, rules)
		}
		if g {
			committed++
		} else {
			aborted++
		}
	}
	return committed, aborted
}

// TestDifferentialPRED runs the full battery of seeded workloads through
// both engines under the PRED policy and cross-checks them.
func TestDifferentialPRED(t *testing.T) {
	seeds := int64(diffSeeds)
	if testing.Short() {
		seeds = 12
	}
	var committed, aborted int
	var mu sync.Mutex
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			c, a := runDifferential(t, seed, scheduler.PRED)
			mu.Lock()
			committed += c
			aborted += a
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		// The failure rules must actually bite: across the battery both
		// terminal fates have to occur, otherwise the differential
		// compares trivial all-commit runs.
		if committed == 0 || aborted == 0 {
			t.Errorf("degenerate battery: %d committed, %d aborted origins", committed, aborted)
		}
	})
}

// TestDifferentialCascade cross-checks a slice of the battery under
// PREDCascade, whose cascading aborts restart through different paths.
func TestDifferentialCascade(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, seed, scheduler.PREDCascade)
		})
	}
}
