package runtime_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/workload"
)

// BenchmarkRuntimeThroughput measures end-to-end process throughput of
// the concurrent runtime at different admission caps. Each iteration
// runs a freshly generated 24-process workload to completion; the Tick
// gives every service invocation a real duration, so the benchmark
// rewards overlap across subsystems rather than raw loop speed. The
// procs/sec metric is what BENCH_runtime.json records as the baseline:
// throughput should scale from 1 worker to 4 workers (the workload has
// 4 subsystems) and not collapse at 16.
func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var procs int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				p := workload.DefaultProfile(int64(i)*31 + 7)
				p.Processes = 24
				p.ConflictProb = 0.3
				p.PermFailureProb = 0
				p.TransientFailureProb = 0
				w := workload.MustGenerate(p)
				r, err := runtime.New(w.Fed, runtime.Config{
					Mode:    scheduler.PRED,
					Workers: workers,
					Tick:    200 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(context.Background(), w.Jobs)
				if err != nil {
					b.Fatal(err)
				}
				procs += res.Metrics.CommittedProcs + res.Metrics.AbortedProcs
			}
			b.ReportMetric(float64(procs)/time.Since(start).Seconds(), "procs/sec")
		})
	}
}
