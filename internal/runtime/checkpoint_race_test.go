package runtime_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"transproc/internal/fault"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// ackLog wraps a log and remembers every append the caller got an LSN
// back for — the set of acknowledged records a fuzzy checkpoint racing
// the writer must never lose.
type ackLog struct {
	inner wal.Log
	mu    sync.Mutex
	acked []wal.Record
}

func (a *ackLog) Append(r wal.Record) (int64, error) {
	lsn, err := a.inner.Append(r)
	if err != nil {
		return lsn, err
	}
	r.LSN = lsn
	a.mu.Lock()
	a.acked = append(a.acked, r)
	a.mu.Unlock()
	return lsn, nil
}

func (a *ackLog) Records() ([]wal.Record, error) { return a.inner.Records() }
func (a *ackLog) Close() error                   { return a.inner.Close() }

func (a *ackLog) Acked() []wal.Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]wal.Record(nil), a.acked...)
}

// TestCheckpointConcurrentWithAppends runs an external checkpointer —
// TakeCheckpoint plus physical compaction in a tight loop — against the
// concurrent runtime's live appends (the fuzzy-window race, meant for
// -race). Afterwards, every acknowledged append must still be reachable
// through the expanded view: in the post-horizon tail verbatim, or
// covered by the checkpoint (its process summarized only once
// terminated). Recovery over the compacted survivor must satisfy every
// recovery guarantee.
func TestCheckpointConcurrentWithAppends(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := workload.DefaultProfile(seed)
		p.Processes = 10
		p.ConflictProb = 0.4
		p.PermFailureProb = 0
		p.TransientFailureProb = 0.1
		w := workload.MustGenerate(p)
		defs := make([]*process.Process, 0, len(w.Jobs))
		for _, j := range w.Jobs {
			defs = append(defs, j.Proc)
		}
		table, err := w.Fed.ConflictTable()
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "race.log")
		fl, err := wal.OpenFile(path, false)
		if err != nil {
			t.Fatal(err)
		}
		log := &ackLog{inner: fl}

		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := wal.TakeCheckpoint(fl, table.Conflicts, nil, nil); err != nil {
					t.Errorf("concurrent TakeCheckpoint: %v", err)
					return
				}
				if err := fl.Compact(nil); err != nil {
					t.Errorf("concurrent Compact: %v", err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()

		r, err := runtime.New(w.Fed, runtime.Config{
			Mode: scheduler.PRED, Log: log, MaxRestarts: 16, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, runErr := r.Run(context.Background(), w.Jobs)
		close(stop)
		<-done
		if runErr != nil {
			t.Fatalf("seed %d: run: %v", seed, runErr)
		}

		recs, err := fl.Records()
		if err != nil {
			t.Fatal(err)
		}
		exp := wal.Expand(recs)
		images, err := wal.Analyze(exp.Records)
		if err == wal.ErrNoLog {
			images = nil // final checkpoint summarized the whole history
		} else if err != nil {
			t.Fatalf("seed %d: analyzing expansion: %v", seed, err)
		}
		inTail := make(map[int64]bool)
		horizon := int64(0)
		if exp.Checkpoint != nil {
			horizon = exp.Checkpoint.Horizon
		}
		for _, r := range exp.Records {
			inTail[r.LSN] = true
		}
		for _, a := range log.Acked() {
			if inTail[a.LSN] {
				continue
			}
			// Not replayed verbatim: only legal when the checkpoint
			// covers it and its process was summarized as terminated
			// (or the record carried no process at all).
			if a.LSN > horizon {
				t.Fatalf("seed %d: acked record past the horizon lost by expansion: %+v", seed, a)
			}
			if img := images[a.Proc]; img != nil {
				t.Fatalf("seed %d: record of live process %s summarized away: %+v", seed, a.Proc, a)
			}
		}

		if _, err := scheduler.Recover(w.Fed, fl, defs); err != nil {
			t.Fatalf("seed %d: recovery: %v", seed, err)
		}
		if err := fault.CheckRecovered(fault.CheckInput{
			Fed: w.Fed, Log: fl, Defs: defs,
			PreCrashRecords: len(exp.Records), Compacted: true,
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fl.Close()
	}
}
