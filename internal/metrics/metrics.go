// Package metrics is the scheduler's observability layer: atomic
// counters, bounded histograms and a ring-buffer decision trace,
// aggregated behind a Registry that the engine, the subsystems, the
// 2PC coordinator and the write-ahead log all record into.
//
// The package is dependency-free and safe for concurrent use. A nil
// *Registry is a valid no-op sink: every method nil-checks first and
// performs no work and no allocation, so an uninstrumented hot path
// pays only a predictable-branch pointer test (guarded by
// TestNoopRegistryZeroAlloc).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterID enumerates the fixed counter set. Counters are pre-declared
// rather than looked up by name so recording is a single array-indexed
// atomic add.
type CounterID int

const (
	// Process lifecycle (scheduler engine).
	ProcsAdmitted CounterID = iota
	ProcsCommitted
	ProcsAborted
	ProcsRestarted

	// Invocation admission decisions.
	InvokeDispatched
	InvokeLockBlocked
	InvokePolicyBlocked
	RetriesTransient

	// Commit decisions: immediate vs deferred (Lemma 1), and how each
	// deferred prepare eventually resolved. After a completed run,
	// CommitsDeferred == DeferredCommitted2PC + DeferredRolledBack.
	CommitsImmediate
	CommitsDeferred
	DeferredCommitted2PC
	DeferredRolledBack
	RollbacksOrphaned
	TwoPCDecisions

	// Recovery paths.
	CompensationsIssued
	BackwardRecoveries
	ForwardRecoveries
	CascadeAborts
	VictimAborts
	GroupAborts
	RecoveryCompensations
	RecoveryForwardInvokes

	// Weak order (Section 3.6).
	WeakDeps
	WeakOrderWaits
	WeakRestarts

	// Subsystem-level.
	SubInvocations
	SubAborts
	SubLockDenials
	IdemReplays

	// Resilience layer (internal/chaos): injected transport faults,
	// typed retries and reply recovery through the idempotency table.
	ChaosTransient
	ChaosTimeouts
	ChaosDuplicates
	ChaosSlow
	TransportRetries
	RetryBudgetExhausted
	RepliesRecovered

	// Circuit breakers: state transitions and open-state fast failures.
	BreakerOpened
	BreakerHalfOpen
	BreakerClosed
	BreakerFastFails

	// Write-ahead log.
	WALAppends
	WALBytes
	WALFsyncs
	// Group commit: flushed batches and the fsyncs the batching saved
	// over a sync-per-append log (sum of batchSize-1 per synced batch).
	WALGroupBatches
	WALFsyncsSaved

	// Checkpointing and compaction: checkpoints taken, physical log
	// rewrites, and recoveries that found a corrupt checkpoint and
	// fell back to a wider replay.
	Checkpoints
	Compactions
	CheckpointFallbacks

	// Storage engine (internal/store): page I/O and buffer-pool
	// traffic, torn pages detected/repaired at open, and the logical
	// page redo/undo applied while reconciling durable subsystem state
	// against the WAL during composed recovery.
	StorePageReads
	StorePageWrites
	StorePageFsyncs
	StorePoolHits
	StorePoolMisses
	StoreEvictions
	StoreAllocs
	StoreTornDetected
	StoreTornRepaired
	StoreRedoItems
	StoreUndoItems

	// Federation (internal/federation): hub RPCs served, duplicate
	// requests absorbed by the hub's dedup table, wire-level faults
	// injected by the transport plan, stall victims designated by the
	// hub, scheduler-node deaths observed, hub kills and reopens,
	// membership-lease expiries, orphan adoptions, node re-attachments,
	// stale-epoch bounces and lease heartbeats.
	FedRPCs
	FedDedupReplays
	FedWireDrops
	FedWireDuplicates
	FedRPCRetries
	FedVictims
	FedNodeDeaths
	FedHubKills
	FedHubReopens
	FedLeaseExpiries
	FedAdoptions
	FedReattaches
	FedStaleBounces
	FedHeartbeats

	// Ingestion server (internal/serve): submissions offered, accepted
	// into the admission queue, shed with 429 (queue full, in-flight cap
	// or tenant rate budget), deduplicated by idempotency key, resumed
	// or re-run after a restart, and drains completed.
	ServeSubmitted
	ServeAccepted
	ServeShedQueue
	ServeShedTenant
	ServeDeduped
	ServeBatches
	ServeResumed
	ServeReruns
	ServeDrains

	numCounters
)

var counterNames = [numCounters]string{
	ProcsAdmitted:          "procs.admitted",
	ProcsCommitted:         "procs.committed",
	ProcsAborted:           "procs.aborted",
	ProcsRestarted:         "procs.restarted",
	InvokeDispatched:       "sched.invocations.dispatched",
	InvokeLockBlocked:      "sched.invocations.lock_blocked",
	InvokePolicyBlocked:    "sched.invocations.policy_blocked",
	RetriesTransient:       "sched.retries",
	CommitsImmediate:       "sched.commits.immediate",
	CommitsDeferred:        "sched.commits.deferred",
	DeferredCommitted2PC:   "twopc.commits",
	DeferredRolledBack:     "twopc.rollbacks",
	RollbacksOrphaned:      "sched.rollbacks.orphaned",
	TwoPCDecisions:         "twopc.decisions",
	CompensationsIssued:    "sched.compensations",
	BackwardRecoveries:     "sched.recovery.backward",
	ForwardRecoveries:      "sched.recovery.forward",
	CascadeAborts:          "sched.cascade_aborts",
	VictimAborts:           "sched.victim_aborts",
	GroupAborts:            "recovery.group_aborts",
	RecoveryCompensations:  "recovery.compensations",
	RecoveryForwardInvokes: "recovery.forward_invocations",
	WeakDeps:               "sched.weak.deps",
	WeakOrderWaits:         "sched.weak.order_waits",
	WeakRestarts:           "sched.weak.restarts",
	SubInvocations:         "subsystem.invocations",
	SubAborts:              "subsystem.aborts",
	SubLockDenials:         "subsystem.lock_denials",
	IdemReplays:            "subsystem.idem_replays",
	ChaosTransient:         "chaos.injected.transient",
	ChaosTimeouts:          "chaos.injected.timeouts",
	ChaosDuplicates:        "chaos.injected.duplicates",
	ChaosSlow:              "chaos.injected.slow",
	TransportRetries:       "chaos.retries",
	RetryBudgetExhausted:   "chaos.retry_budget_exhausted",
	RepliesRecovered:       "chaos.replies_recovered",
	BreakerOpened:          "breaker.opened",
	BreakerHalfOpen:        "breaker.half_open",
	BreakerClosed:          "breaker.closed",
	BreakerFastFails:       "breaker.fast_fails",
	WALAppends:             "wal.appends",
	WALBytes:               "wal.bytes",
	WALFsyncs:              "wal.fsyncs",
	WALGroupBatches:        "wal.group_batches",
	WALFsyncsSaved:         "wal.fsyncs_saved",
	Checkpoints:            "wal.checkpoints",
	Compactions:            "wal.compactions",
	CheckpointFallbacks:    "recovery.checkpoint_fallbacks",
	StorePageReads:         "store.page_reads",
	StorePageWrites:        "store.page_writes",
	StorePageFsyncs:        "store.page_fsyncs",
	StorePoolHits:          "store.pool_hits",
	StorePoolMisses:        "store.pool_misses",
	StoreEvictions:         "store.evictions",
	StoreAllocs:            "store.allocs",
	StoreTornDetected:      "store.torn_detected",
	StoreTornRepaired:      "store.torn_repaired",
	StoreRedoItems:         "recovery.store_redo_items",
	StoreUndoItems:         "recovery.store_undo_items",
	FedRPCs:                "fed.rpcs",
	FedDedupReplays:        "fed.dedup_replays",
	FedWireDrops:           "fed.wire_drops",
	FedWireDuplicates:      "fed.wire_duplicates",
	FedRPCRetries:          "fed.rpc_retries",
	FedVictims:             "fed.victims",
	FedNodeDeaths:          "fed.node_deaths",
	FedHubKills:            "fed.hub_kills",
	FedHubReopens:          "fed.hub_reopens",
	FedLeaseExpiries:       "fed.lease_expiries",
	FedAdoptions:           "fed.adoptions",
	FedReattaches:          "fed.reattaches",
	FedStaleBounces:        "fed.stale_bounces",
	FedHeartbeats:          "fed.heartbeats",
	ServeSubmitted:         "serve.submitted",
	ServeAccepted:          "serve.accepted",
	ServeShedQueue:         "serve.shed.queue",
	ServeShedTenant:        "serve.shed.tenant",
	ServeDeduped:           "serve.deduped",
	ServeBatches:           "serve.batches",
	ServeResumed:           "serve.resumed",
	ServeReruns:            "serve.reruns",
	ServeDrains:            "serve.drains",
}

// String returns the dotted counter name.
func (c CounterID) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// HistID enumerates the fixed histogram set.
type HistID int

const (
	// HistProcDuration is the virtual-tick lifetime of a process,
	// admission to termination.
	HistProcDuration HistID = iota
	// HistProcBlocked is the time a finished process waited for its
	// deferred 2PC commit (Lemma-1 blocking) — the metric that
	// distinguishes the protocols under contention.
	HistProcBlocked
	// HistPreparedSet is the participant count per atomic 2PC commit.
	HistPreparedSet
	// HistInDoubt is the subsystem in-doubt set size observed after
	// each prepare.
	HistInDoubt
	// HistRetryLatency is the extra virtual latency (backoff + spikes)
	// a resilient invocation accumulated before it resolved.
	HistRetryLatency
	// HistRetryAttempts is the transport attempts per resilient
	// invocation (1 = first try succeeded).
	HistRetryAttempts
	// HistReplayRecords is the number of records each recovery pass
	// actually replayed (checkpoint live set + tail); bounded by the
	// tail length once checkpointing is on.
	HistReplayRecords
	// HistReplaySkipped is the number of summarized records each
	// recovery pass did NOT have to replay thanks to the checkpoint.
	HistReplaySkipped
	// HistWALBatch is the record count of each group-commit batch.
	HistWALBatch
	// HistCheckpointLive is the live-record count captured per
	// checkpoint (the checkpoint's own size driver).
	HistCheckpointLive
	// HistStoreFlushPages is the dirty-page count written per store
	// flush (checkpoint-driven flushes bound redo work).
	HistStoreFlushPages
	// HistServeAdmit is the wall-clock admission latency in
	// microseconds: request received to 202/429 written.
	HistServeAdmit
	// HistServeQueueDepth samples the admission-queue depth at each
	// submission.
	HistServeQueueDepth
	// HistServeBatch is the submission count per runner micro-batch.
	HistServeBatch

	numHists
)

var histNames = [numHists]string{
	HistProcDuration:    "proc.duration_ticks",
	HistProcBlocked:     "proc.blocked_commit_ticks",
	HistPreparedSet:     "twopc.prepared_set_size",
	HistInDoubt:         "subsystem.in_doubt_size",
	HistRetryLatency:    "chaos.retry_latency_ticks",
	HistRetryAttempts:   "chaos.attempts_per_invoke",
	HistReplayRecords:   "recovery.replay_records",
	HistReplaySkipped:   "recovery.replay_skipped",
	HistWALBatch:        "wal.batch_size",
	HistCheckpointLive:  "wal.checkpoint_live_records",
	HistStoreFlushPages: "store.flush_pages",
	HistServeAdmit:      "serve.admit_latency_us",
	HistServeQueueDepth: "serve.queue_depth",
	HistServeBatch:      "serve.batch_size",
}

// String returns the dotted histogram name.
func (h HistID) String() string {
	if h < 0 || h >= numHists {
		return fmt.Sprintf("hist(%d)", int(h))
	}
	return histNames[h]
}

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. power-of-two ranges
// [2^(i-1), 2^i). Values ≥ 2^62 land in the last bucket.
const histBuckets = 64

// Histogram is a bounded, lock-free histogram over non-negative int64
// observations with power-of-two buckets. The zero value is ready.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minPlus1 stores min+1 so that 0 can mean "no observation yet"
	// (zero-value readiness without a constructor).
	minPlus1 atomic.Int64
	// maxPlus1 likewise, so an all-zero observation stream still
	// distinguishes "max is 0" from "unset".
	maxPlus1 atomic.Int64
	buckets  [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.maxPlus1.Load()
		if cur >= v+1 {
			break
		}
		if h.maxPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Bucket is one non-empty histogram bucket: Count observations were
// ≤ Le (and greater than the previous bucket's bound).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramData is an immutable histogram snapshot.
type HistogramData struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramData {
	d := HistogramData{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if d.Count > 0 {
		d.Mean = float64(d.Sum) / float64(d.Count)
		if m := h.minPlus1.Load(); m > 0 {
			d.Min = m - 1
		}
		if m := h.maxPlus1.Load(); m > 0 {
			d.Max = m - 1
		}
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			// Bucket i holds values with bit length i: [2^(i-1), 2^i).
			le := int64(0)
			if i > 0 {
				le = (int64(1) << i) - 1
			}
			d.Buckets = append(d.Buckets, Bucket{Le: le, Count: n})
		}
	}
	return d
}

// TraceKind classifies decision-trace events.
type TraceKind uint8

const (
	TAdmit TraceKind = iota
	TDispatch
	TLockWait
	TPolicyWait
	TFail
	TCommit
	TDeferCommit
	TTwoPCDecision
	TTwoPCCommit
	TRollback
	TCompensate
	TRecoveryStep
	TRetry
	TBackward
	TForward
	TCascade
	TVictim
	TTerminate
	TGroupAbort
	TWeakWait
	TWeakRestart

	numTraceKinds
)

var traceKindNames = [numTraceKinds]string{
	TAdmit:         "admit",
	TDispatch:      "dispatch",
	TLockWait:      "lock-wait",
	TPolicyWait:    "policy-wait",
	TFail:          "fail",
	TCommit:        "commit",
	TDeferCommit:   "defer-commit",
	TTwoPCDecision: "2pc-decision",
	TTwoPCCommit:   "2pc-commit",
	TRollback:      "rollback",
	TCompensate:    "compensate",
	TRecoveryStep:  "recovery-step",
	TRetry:         "retry",
	TBackward:      "backward-recovery",
	TForward:       "forward-recovery",
	TCascade:       "cascade-abort",
	TVictim:        "victim-abort",
	TTerminate:     "terminate",
	TGroupAbort:    "group-abort",
	TWeakWait:      "weak-order-wait",
	TWeakRestart:   "weak-restart",
}

// String returns the kind label.
func (k TraceKind) String() string {
	if int(k) >= int(numTraceKinds) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return traceKindNames[k]
}

// MarshalJSON emits the label rather than the raw byte.
func (k TraceKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one structured decision-trace entry.
type Event struct {
	Seq     int64     `json:"seq"`
	Clock   int64     `json:"clock"`
	Kind    TraceKind `json:"kind"`
	Proc    string    `json:"proc,omitempty"`
	Local   int       `json:"local,omitempty"`
	Service string    `json:"service,omitempty"`
	// Other carries the decision's counterpart: the conflicting
	// predecessor a commit was deferred on, the denial reason of a
	// policy wait, the cascading aborter, or the terminal outcome.
	Other string `json:"other,omitempty"`
}

// String renders one trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d @%-6d %-17s %s", e.Seq, e.Clock, e.Kind, e.Proc)
	if e.Service != "" {
		fmt.Fprintf(&b, "/%d %s", e.Local, e.Service)
	}
	if e.Other != "" {
		fmt.Fprintf(&b, " (%s)", e.Other)
	}
	return b.String()
}

// trace is a bounded ring buffer of Events.
type trace struct {
	mu    sync.Mutex
	buf   []Event
	next  int64 // total events ever recorded
	limit int
}

func (t *trace) record(ev Event) {
	t.mu.Lock()
	t.next++
	ev.Seq = t.next
	if len(t.buf) < t.limit {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[(t.next-1)%int64(t.limit)] = ev
	}
	t.mu.Unlock()
}

// events returns the retained window in chronological order.
func (t *trace) events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.next > int64(len(t.buf)) && len(t.buf) == t.limit {
		start := t.next % int64(t.limit)
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// DefaultTraceCap is the decision-trace ring size of New.
const DefaultTraceCap = 4096

// Registry aggregates all instruments of one run (or one long-lived
// engine). The zero value is NOT ready; use New or NewSized. A nil
// *Registry is the no-op sink.
type Registry struct {
	counters [numCounters]atomic.Int64
	hists    [numHists]Histogram

	svcMu sync.RWMutex
	svc   map[string]*Histogram

	tr trace
}

// New returns a Registry with the default decision-trace capacity.
func New() *Registry { return NewSized(DefaultTraceCap) }

// NewSized returns a Registry whose decision trace retains the last
// traceCap events (traceCap < 1 disables the trace).
func NewSized(traceCap int) *Registry {
	if traceCap < 0 {
		traceCap = 0
	}
	return &Registry{
		svc: make(map[string]*Histogram),
		tr:  trace{limit: traceCap},
	}
}

// Inc adds one to a counter.
func (r *Registry) Inc(c CounterID) {
	if r == nil {
		return
	}
	r.counters[c].Add(1)
}

// Add adds n to a counter.
func (r *Registry) Add(c CounterID, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// Counter reads a counter (0 on a nil registry).
func (r *Registry) Counter(c CounterID) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// Observe records a histogram observation.
func (r *Registry) Observe(h HistID, v int64) {
	if r == nil {
		return
	}
	r.hists[h].Observe(v)
}

// Hist reads a histogram snapshot (zero on a nil registry).
func (r *Registry) Hist(h HistID) HistogramData {
	if r == nil {
		return HistogramData{}
	}
	return r.hists[h].snapshot()
}

// ObserveService records a per-service latency observation (virtual
// ticks).
func (r *Registry) ObserveService(service string, v int64) {
	if r == nil {
		return
	}
	r.svcMu.RLock()
	h := r.svc[service]
	r.svcMu.RUnlock()
	if h == nil {
		r.svcMu.Lock()
		h = r.svc[service]
		if h == nil {
			h = &Histogram{}
			r.svc[service] = h
		}
		r.svcMu.Unlock()
	}
	h.Observe(v)
}

// Trace records one decision event. Seq is assigned by the trace.
func (r *Registry) Trace(kind TraceKind, clock int64, proc string, local int, service, other string) {
	if r == nil || r.tr.limit == 0 {
		return
	}
	r.tr.record(Event{Clock: clock, Kind: kind, Proc: proc, Local: local, Service: service, Other: other})
}

// Events returns the retained decision-trace window in order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.tr.events()
}

// TraceTotal returns how many events were ever recorded (including ones
// the ring has since overwritten).
func (r *Registry) TraceTotal() int64 {
	if r == nil {
		return 0
	}
	r.tr.mu.Lock()
	defer r.tr.mu.Unlock()
	return r.tr.next
}

// CountTrace counts retained trace events of one kind.
func (r *Registry) CountTrace(kind TraceKind) int64 {
	var n int64
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// Snapshot is a point-in-time copy of every instrument, ready for JSON
// marshalling or text rendering.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Histograms map[string]HistogramData `json:"histograms"`
	Services   map[string]HistogramData `json:"services"`
	TraceTotal int64                    `json:"trace_total"`
	Trace      []Event                  `json:"trace,omitempty"`
}

// Snapshot captures the registry. On a nil registry it returns an empty
// (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64, int(numCounters)),
		Histograms: make(map[string]HistogramData, int(numHists)),
		Services:   make(map[string]HistogramData),
	}
	if r == nil {
		return s
	}
	for c := CounterID(0); c < numCounters; c++ {
		s.Counters[c.String()] = r.counters[c].Load()
	}
	for h := HistID(0); h < numHists; h++ {
		s.Histograms[h.String()] = r.hists[h].snapshot()
	}
	r.svcMu.RLock()
	for name, h := range r.svc {
		s.Services[name] = h.snapshot()
	}
	r.svcMu.RUnlock()
	s.TraceTotal = r.TraceTotal()
	s.Trace = r.Events()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as an aligned human-readable report.
// traceTail limits how many trailing trace events are printed (0 for
// none, negative for all retained).
func (s *Snapshot) WriteText(w io.Writer, traceTail int) {
	fmt.Fprintln(w, "== counters ==")
	names := make([]string, 0, len(s.Counters))
	width := 0
	for name := range s.Counters {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-*s %d\n", width, name, s.Counters[name])
	}

	writeHist := func(name string, d HistogramData) {
		fmt.Fprintf(w, "  %-28s count=%d mean=%.1f min=%d max=%d", name, d.Count, d.Mean, d.Min, d.Max)
		if len(d.Buckets) > 0 {
			fmt.Fprint(w, "  [")
			for i, b := range d.Buckets {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprintf(w, "≤%d:%d", b.Le, b.Count)
			}
			fmt.Fprint(w, "]")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "== histograms ==")
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeHist(name, s.Histograms[name])
	}
	if len(s.Services) > 0 {
		fmt.Fprintln(w, "== service latency (virtual ticks) ==")
		names = names[:0]
		for name := range s.Services {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			writeHist(name, s.Services[name])
		}
	}
	if traceTail != 0 && len(s.Trace) > 0 {
		tail := s.Trace
		if traceTail > 0 && len(tail) > traceTail {
			tail = tail[len(tail)-traceTail:]
		}
		fmt.Fprintf(w, "== decision trace (%d/%d events) ==\n", len(tail), s.TraceTotal)
		for _, ev := range tail {
			fmt.Fprintf(w, "  %s\n", ev)
		}
	}
}
