package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	t.Parallel()
	r := New()
	r.Inc(CommitsDeferred)
	r.Add(CommitsDeferred, 2)
	r.Inc(WALAppends)
	if got := r.Counter(CommitsDeferred); got != 3 {
		t.Fatalf("CommitsDeferred = %d, want 3", got)
	}
	if got := r.Counter(WALAppends); got != 1 {
		t.Fatalf("WALAppends = %d, want 1", got)
	}
	if got := r.Counter(ProcsAdmitted); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestCounterNamesComplete(t *testing.T) {
	t.Parallel()
	seen := make(map[string]bool)
	for c := CounterID(0); c < numCounters; c++ {
		name := c.String()
		if name == "" {
			t.Fatalf("counter %d has no name", int(c))
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	for h := HistID(0); h < numHists; h++ {
		if h.String() == "" {
			t.Fatalf("histogram %d has no name", int(h))
		}
	}
	for k := TraceKind(0); k < numTraceKinds; k++ {
		if k.String() == "" {
			t.Fatalf("trace kind %d has no name", int(k))
		}
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	r := New()
	for _, v := range []int64{0, 1, 1, 3, 8, 100} {
		r.Observe(HistProcDuration, v)
	}
	d := r.Hist(HistProcDuration)
	if d.Count != 6 || d.Sum != 113 || d.Min != 0 || d.Max != 100 {
		t.Fatalf("histogram = %+v", d)
	}
	if want := 113.0 / 6; d.Mean != want {
		t.Fatalf("mean = %f, want %f", d.Mean, want)
	}
	// Buckets: 0 -> ≤0, 1,1 -> ≤1, 3 -> ≤3, 8 -> ≤15, 100 -> ≤127.
	want := []Bucket{{0, 1}, {1, 2}, {3, 1}, {15, 1}, {127, 1}}
	if len(d.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", d.Buckets, want)
	}
	for i, b := range want {
		if d.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, d.Buckets[i], b)
		}
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	t.Parallel()
	r := New()
	r.Observe(HistInDoubt, -5)
	d := r.Hist(HistInDoubt)
	if d.Count != 1 || d.Sum != 0 || d.Min != 0 || d.Max != 0 {
		t.Fatalf("histogram = %+v", d)
	}
}

func TestServiceHistogram(t *testing.T) {
	t.Parallel()
	r := New()
	r.ObserveService("book", 2)
	r.ObserveService("book", 4)
	r.ObserveService("pay", 1)
	s := r.Snapshot()
	if d := s.Services["book"]; d.Count != 2 || d.Sum != 6 {
		t.Fatalf("book = %+v", d)
	}
	if d := s.Services["pay"]; d.Count != 1 {
		t.Fatalf("pay = %+v", d)
	}
}

func TestTraceRingWraps(t *testing.T) {
	t.Parallel()
	r := NewSized(4)
	for i := 0; i < 10; i++ {
		r.Trace(TDispatch, int64(i), "P1", i, "svc", "")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if r.TraceTotal() != 10 {
		t.Fatalf("total = %d, want 10", r.TraceTotal())
	}
	for i, ev := range evs {
		if want := int64(6 + i + 1); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (chronological tail)", i, ev.Seq, want)
		}
		if ev.Clock != int64(6+i) {
			t.Fatalf("event %d clock = %d, want %d", i, ev.Clock, 6+i)
		}
	}
}

func TestTraceDisabled(t *testing.T) {
	t.Parallel()
	r := NewSized(0)
	r.Trace(TCommit, 1, "P1", 0, "", "")
	if n := len(r.Events()); n != 0 {
		t.Fatalf("disabled trace retained %d events", n)
	}
}

func TestCountTrace(t *testing.T) {
	t.Parallel()
	r := New()
	r.Trace(TCompensate, 1, "P1", 1, "a", "")
	r.Trace(TCompensate, 2, "P2", 1, "b", "")
	r.Trace(TCommit, 3, "P1", 2, "c", "")
	if n := r.CountTrace(TCompensate); n != 2 {
		t.Fatalf("CountTrace(TCompensate) = %d, want 2", n)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	t.Parallel()
	r := New()
	r.Inc(CommitsDeferred)
	r.Observe(HistPreparedSet, 3)
	r.ObserveService("svc", 7)
	r.Trace(TDeferCommit, 5, "P1", 2, "svc", "P0")
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"counters", "histograms", "services", "trace"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("snapshot JSON missing %q:\n%s", key, buf.String())
		}
	}
	if !strings.Contains(buf.String(), `"defer-commit"`) {
		t.Fatalf("trace kind not labelled in JSON:\n%s", buf.String())
	}
}

func TestSnapshotText(t *testing.T) {
	t.Parallel()
	r := New()
	r.Inc(CommitsDeferred)
	r.Inc(CompensationsIssued)
	r.Observe(HistProcBlocked, 12)
	r.ObserveService("svc", 3)
	r.Trace(TCompensate, 9, "P2", 1, "svc", "")
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf, -1)
	out := buf.String()
	for _, want := range []string{
		"sched.commits.deferred", "sched.compensations",
		"proc.blocked_commit_ticks", "service latency", "svc",
		"decision trace", "compensate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	t.Parallel()
	var r *Registry
	r.Inc(CommitsDeferred)
	r.Add(WALBytes, 10)
	r.Observe(HistProcDuration, 5)
	r.ObserveService("svc", 1)
	r.Trace(TCommit, 1, "P1", 0, "svc", "")
	if r.Counter(CommitsDeferred) != 0 || r.TraceTotal() != 0 || len(r.Events()) != 0 {
		t.Fatal("nil registry recorded something")
	}
	if d := r.Hist(HistProcDuration); d.Count != 0 {
		t.Fatal("nil registry histogram non-empty")
	}
	s := r.Snapshot()
	if s == nil || s.Counters == nil {
		t.Fatal("nil registry snapshot not usable")
	}
}

// TestNoopRegistryZeroAlloc guards the acceptance criterion: a nil
// registry must add zero allocations to the scheduler hot path.
func TestNoopRegistryZeroAlloc(t *testing.T) {
	t.Parallel()
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.Inc(InvokeDispatched)
		r.Add(WeakDeps, 3)
		r.Observe(HistProcDuration, 42)
		r.ObserveService("svc", 7)
		r.Trace(TDeferCommit, 99, "P1", 4, "svc", "P2")
	})
	if allocs != 0 {
		t.Fatalf("no-op registry allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	t.Parallel()
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc(SubInvocations)
				r.Observe(HistInDoubt, int64(i%17))
				r.ObserveService("s", int64(i%5))
				r.Trace(TDispatch, int64(i), "P", i, "s", "")
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(SubInvocations); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if d := r.Hist(HistInDoubt); d.Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", d.Count)
	}
	if got := r.TraceTotal(); got != 8000 {
		t.Fatalf("trace total = %d, want 8000", got)
	}
}
