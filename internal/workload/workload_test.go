package workload

import (
	"testing"

	"transproc/internal/process"
	"transproc/internal/scheduler"
)

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultProfile(42)
	w1 := MustGenerate(p)
	w2 := MustGenerate(p)
	if len(w1.Jobs) != len(w2.Jobs) {
		t.Fatal("same profile must generate the same job count")
	}
	for i := range w1.Jobs {
		if w1.Jobs[i].Proc.String() != w2.Jobs[i].Proc.String() {
			t.Fatalf("job %d differs between generations", i)
		}
	}
}

func TestGeneratedProcessesHaveGuaranteedTermination(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := DefaultProfile(seed)
		p.Processes = 8
		w := MustGenerate(p)
		for _, j := range w.Jobs {
			if err := process.ValidateGuaranteedTermination(j.Proc); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultProfile(1)
	bad.Processes = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero processes must be rejected")
	}
	bad = DefaultProfile(1)
	bad.MinActivities = 1
	if _, err := Generate(bad); err == nil {
		t.Fatal("too-short processes must be rejected")
	}
	bad = DefaultProfile(1)
	bad.MaxActivities = bad.MinActivities - 1
	if _, err := Generate(bad); err == nil {
		t.Fatal("inverted bounds must be rejected")
	}
}

func TestArrivalSpacing(t *testing.T) {
	p := DefaultProfile(1)
	p.Processes = 4
	p.ArrivalSpacing = 10
	w := MustGenerate(p)
	for i, j := range w.Jobs {
		if j.Arrival != int64(i)*10 {
			t.Fatalf("job %d arrival = %d", i, j.Arrival)
		}
	}
}

func TestGeneratedWorkloadRunsUnderAllModes(t *testing.T) {
	for _, mode := range []scheduler.Mode{
		scheduler.PRED, scheduler.PREDCascade, scheduler.Serial,
		scheduler.Conservative, scheduler.CCOnly,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			p := DefaultProfile(7)
			p.Processes = 8
			w := MustGenerate(p)
			eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunJobs(w.Jobs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.CommittedProcs+res.Metrics.AbortedProcs < p.Processes {
				t.Fatalf("not all processes terminated: %+v", res.Metrics)
			}
			if res.Metrics.Makespan <= 0 {
				t.Fatal("makespan must advance")
			}
		})
	}
}

func TestPREDWorkloadSchedulesArePRED(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := DefaultProfile(seed)
		p.Processes = 6
		p.ConflictProb = 0.5
		p.PermFailureProb = 0.1
		w := MustGenerate(p)
		eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunJobs(w.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		ok, at, _, err := res.Schedule.PRED()
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, res.Schedule)
		}
		if !ok {
			t.Fatalf("seed %d: scheduler produced a non-PRED schedule (prefix %d):\n%s", seed, at, res.Schedule)
		}
	}
}

func TestHighConflictWorkload(t *testing.T) {
	p := DefaultProfile(3)
	p.Processes = 10
	p.ConflictProb = 0.9
	p.PermFailureProb = 0.15
	w := MustGenerate(p)
	eng, _ := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade})
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CommittedProcs == 0 {
		t.Fatal("even under high conflict some processes must commit")
	}
}

func TestParallelBranchGeneration(t *testing.T) {
	p := DefaultProfile(5)
	p.Processes = 30
	p.ParallelProb = 1.0
	p.MinActivities = 7
	p.MaxActivities = 9
	w := MustGenerate(p)
	parallel := 0
	for _, j := range w.Jobs {
		if err := process.ValidateGuaranteedTermination(j.Proc); err != nil {
			t.Fatalf("%s: %v", j.Proc.ID, err)
		}
		// Parallel structure: some activity has two or more direct
		// successors via separate chains.
		for _, a := range j.Proc.Activities() {
			if len(j.Proc.Chains(a.Local)) >= 2 {
				parallel++
				break
			}
		}
	}
	if parallel == 0 {
		t.Fatal("no parallel processes generated at ParallelProb=1")
	}
	// And they run correctly.
	eng, err := scheduler.New(w.Fed, scheduler.Config{Mode: scheduler.PREDCascade})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(w.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	ok, at, _, err := res.Schedule.PRED()
	if err != nil || !ok {
		t.Fatalf("PRED=%v at=%d err=%v", ok, at, err)
	}
}
