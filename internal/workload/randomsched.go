package workload

import (
	"fmt"
	"math/rand"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/process"
	"transproc/internal/schedule"
)

// RandomWellFormed builds a random well-formed chain process over the
// given service-name universe: an optional compensatable prefix, a
// pivot, a retriable tail, and optionally a nested structure after the
// pivot with the retriable tail as its lowest-priority alternative. The
// result has guaranteed termination by construction; it is used by the
// Theorem-1 property tests and by tpsim's e9 experiment.
func RandomWellFormed(rng *rand.Rand, id process.ID, services []string) *process.Process {
	b := process.NewBuilder(id)
	local := 0
	add := func(kind activity.Kind) int {
		local++
		b.Add(local, services[rng.Intn(len(services))], kind)
		return local
	}
	nComp := rng.Intn(3)
	var prev int
	for i := 0; i < nComp; i++ {
		n := add(activity.Compensatable)
		if prev != 0 {
			b.Seq(prev, n)
		}
		prev = n
	}
	p := add(activity.Pivot)
	if prev != 0 {
		b.Seq(prev, p)
	}
	nRet := 1 + rng.Intn(2)
	var retHead, retPrev int
	for i := 0; i < nRet; i++ {
		n := add(activity.Retriable)
		if i == 0 {
			retHead = n
		} else {
			b.Seq(retPrev, n)
		}
		retPrev = n
	}
	if rng.Intn(2) == 0 {
		c := add(activity.Compensatable)
		b.Chain(p, c, retHead)
		p2 := add(activity.Pivot)
		b.Seq(c, p2)
	} else {
		b.Seq(p, retHead)
	}
	return b.MustBuild()
}

// RandomSchedule interleaves the processes randomly for up to `steps`
// events, injecting permanent failures (~10%) and aborts (~5%), and
// returns the resulting legal process schedule. The recovery steps of
// failures and aborts are themselves replayed into the schedule, so the
// result exercises compensations, alternatives and completions.
func RandomSchedule(rng *rand.Rand, tab *conflict.Table, procs []*process.Process, steps int) *schedule.Schedule {
	s := schedule.MustNew(tab, procs...)
	insts := make(map[process.ID]*process.Instance, len(procs))
	aborting := make(map[process.ID][]process.Step)
	for _, p := range procs {
		insts[p.ID] = process.NewInstance(p)
	}
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("workload: random schedule generation: %v", err))
		}
	}
	for i := 0; i < steps; i++ {
		var cands []process.ID
		for id, in := range insts {
			if in.Terminated() {
				continue
			}
			if len(aborting[id]) > 0 || len(in.Frontier()) > 0 || in.Done() || in.Aborting() {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			break
		}
		id := cands[rng.Intn(len(cands))]
		in := insts[id]
		switch {
		case len(aborting[id]) > 0:
			st := aborting[id][0]
			aborting[id] = aborting[id][1:]
			switch st.Kind {
			case process.StepCompensate:
				must(s.Compensate(id, st.Local))
			case process.StepInvoke:
				must(s.Invoke(id, st.Local))
			}
			must(in.ApplyStep(st))
			if len(aborting[id]) == 0 && in.Aborting() {
				must(s.FinishAbort(id))
				in.MarkTerminated(false)
			}
		case in.Aborting():
			must(s.FinishAbort(id))
			in.MarkTerminated(false)
		case in.Done():
			must(s.Commit(id))
			in.MarkTerminated(true)
		default:
			f := in.Frontier()
			a := f[rng.Intn(len(f))]
			kind := in.Process().Activity(a).Kind
			r := rng.Float64()
			switch {
			case r < 0.10 && !kind.GuaranteedToCommit():
				must(s.Fail(id, a))
				plan, err := in.MarkFailed(a)
				must(err)
				aborting[id] = plan.Steps
				if plan.Abort && len(plan.Steps) == 0 {
					must(s.FinishAbort(id))
					in.MarkTerminated(false)
				}
			case r < 0.15:
				steps, err := in.Abort()
				must(err)
				must(s.BeginAbort(id))
				if len(steps) == 0 {
					must(s.FinishAbort(id))
					in.MarkTerminated(false)
				} else {
					aborting[id] = steps
				}
			default:
				must(s.Invoke(id, a))
				must(in.MarkCommitted(a))
			}
		}
	}
	return s
}
