// Package workload generates synthetic federations and transactional
// processes for the benchmark harness: well-formed flex processes
// (guaranteed termination by construction) over a pool of services with
// a controllable conflict rate, failure probabilities and costs.
//
// The paper evaluates no concrete workload (it is a theory paper); this
// generator provides the CIM-like mixes its motivation describes so the
// scheduler protocols can be compared quantitatively.
package workload

import (
	"fmt"
	"math/rand"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
)

// Profile parameterizes a generated workload.
type Profile struct {
	Seed int64
	// Processes is the number of processes to generate.
	Processes int
	// Subsystems is the number of simulated resource managers.
	Subsystems int
	// ServicesPerSubsystem controls the service pool size (per kind).
	ServicesPerSubsystem int
	// MinActivities and MaxActivities bound the process length.
	MinActivities, MaxActivities int
	// ConflictProb is the probability that a service writes its
	// subsystem's shared hot item (two hot writers conflict); the
	// remaining services write private items and commute.
	ConflictProb float64
	// NestedProb is the probability that a process has a nested
	// well-formed structure after its pivot (with an all-retriable
	// lowest-priority alternative).
	NestedProb float64
	// ParallelProb is the probability that the compensatable prefix
	// fans out into two parallel (AND) branches that join at the pivot
	// — the general partial orders of Definition 5.
	ParallelProb float64
	// PermFailureProb is the per-invocation failure probability of
	// compensatable and pivot services (permanent failures driving
	// alternatives and backward recovery).
	PermFailureProb float64
	// TransientFailureProb is the per-invocation abort probability of
	// retriable services (transient, retried).
	TransientFailureProb float64
	// MinCost and MaxCost bound per-service virtual execution cost.
	MinCost, MaxCost int
	// ArrivalSpacing is the inter-arrival gap in virtual ticks (0 means
	// all processes arrive at time zero).
	ArrivalSpacing int64
}

// DefaultProfile returns a moderate baseline profile.
func DefaultProfile(seed int64) Profile {
	return Profile{
		Seed:                 seed,
		Processes:            16,
		Subsystems:           4,
		ServicesPerSubsystem: 4,
		MinActivities:        4,
		MaxActivities:        8,
		ConflictProb:         0.3,
		NestedProb:           0.3,
		ParallelProb:         0.25,
		PermFailureProb:      0.05,
		TransientFailureProb: 0.10,
		MinCost:              1,
		MaxCost:              4,
		ArrivalSpacing:       0,
	}
}

// Workload is a generated federation plus jobs.
type Workload struct {
	Fed  *subsystem.Federation
	Jobs []scheduler.Job
	// Pool lists the generated service names by kind.
	Pool Pool
}

// Pool holds the generated service names.
type Pool struct {
	Compensatable []string
	Pivot         []string
	Retriable     []string
}

// Generate builds the federation and processes of a profile. The same
// profile (including seed) generates the identical workload, so
// scheduler modes can be compared on equal terms by regenerating it.
func Generate(p Profile) (*Workload, error) {
	if p.Processes <= 0 || p.Subsystems <= 0 || p.ServicesPerSubsystem <= 0 {
		return nil, fmt.Errorf("workload: profile needs positive counts")
	}
	if p.MinActivities < 2 || p.MaxActivities < p.MinActivities {
		return nil, fmt.Errorf("workload: activity bounds invalid (min %d, max %d)", p.MinActivities, p.MaxActivities)
	}
	if p.MinCost < 1 {
		p.MinCost = 1
	}
	if p.MaxCost < p.MinCost {
		p.MaxCost = p.MinCost
	}
	rng := rand.New(rand.NewSource(p.Seed))
	fed := subsystem.NewFederation()
	var pool Pool

	cost := func() int { return p.MinCost + rng.Intn(p.MaxCost-p.MinCost+1) }
	for s := 0; s < p.Subsystems; s++ {
		name := fmt.Sprintf("rm%d", s)
		sub := subsystem.New(name, p.Seed+int64(s)+1)
		hot := fmt.Sprintf("%s/hot", name)
		// A service either writes the subsystem's shared hot item (it
		// then conflicts with every other hot writer including itself)
		// or its private counter, which it updates commutatively
		// (increments commute — the semantically rich commutativity the
		// unified theory is built for), so it conflicts with nothing.
		item := func(svc string) (string, bool) {
			if rng.Float64() < p.ConflictProb {
				return hot, false
			}
			return fmt.Sprintf("%s/%s", name, svc), true
		}
		for i := 0; i < p.ServicesPerSubsystem; i++ {
			c := fmt.Sprintf("c%d_%d", s, i)
			it, commutes := item(c)
			sub.MustRegister(activity.Spec{
				Name: c, Kind: activity.Compensatable, Subsystem: name,
				Compensation: process.DefaultCompensationName(c),
				WriteSet:     []string{it}, Commutative: commutes,
				FailureProb: p.PermFailureProb, Cost: cost(),
			})
			pool.Compensatable = append(pool.Compensatable, c)

			pv := fmt.Sprintf("p%d_%d", s, i)
			it, commutes = item(pv)
			sub.MustRegister(activity.Spec{
				Name: pv, Kind: activity.Pivot, Subsystem: name,
				WriteSet: []string{it}, Commutative: commutes,
				FailureProb: p.PermFailureProb, Cost: cost(),
			})
			pool.Pivot = append(pool.Pivot, pv)

			r := fmt.Sprintf("r%d_%d", s, i)
			it, commutes = item(r)
			sub.MustRegister(activity.Spec{
				Name: r, Kind: activity.Retriable, Subsystem: name,
				WriteSet: []string{it}, Commutative: commutes,
				FailureProb: p.TransientFailureProb, Cost: cost(),
			})
			pool.Retriable = append(pool.Retriable, r)
		}
		fed.MustAdd(sub)
	}

	jobs := make([]scheduler.Job, 0, p.Processes)
	for i := 0; i < p.Processes; i++ {
		id := process.ID(fmt.Sprintf("W%d", i+1))
		proc, err := buildProcess(rng, id, pool, p)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, scheduler.Job{Proc: proc, Arrival: int64(i) * p.ArrivalSpacing})
	}
	return &Workload{Fed: fed, Jobs: jobs, Pool: pool}, nil
}

// MustGenerate is Generate that panics on error, for benchmarks.
func MustGenerate(p Profile) *Workload {
	w, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return w
}

// buildProcess assembles a well-formed flex process:
//
//	c* p r*                         (plain)
//	c* p (c p r*) | r*              (nested, with retriable alternative)
//
// The generated structure has guaranteed termination by construction.
func buildProcess(rng *rand.Rand, id process.ID, pool Pool, p Profile) (*process.Process, error) {
	n := p.MinActivities + rng.Intn(p.MaxActivities-p.MinActivities+1)
	b := process.NewBuilder(id)
	local := 0
	add := func(kind activity.Kind, pool []string) int {
		local++
		b.Add(local, pool[rng.Intn(len(pool))], kind)
		return local
	}

	// Compensatable prefix (at least one when n allows), optionally
	// fanning out into two parallel branches that join at the pivot.
	nComp := n / 2
	if nComp < 1 {
		nComp = 1
	}
	pivot := 0
	if nComp >= 3 && rng.Float64() < p.ParallelProb {
		root := add(activity.Compensatable, pool.Compensatable)
		rest := nComp - 1
		left := rest / 2
		right := rest - left
		if right == 0 {
			right = 1
		}
		branch := func(n int) int {
			prev := root
			first := true
			for i := 0; i < n; i++ {
				cur := add(activity.Compensatable, pool.Compensatable)
				if first {
					b.Seq(root, cur)
					first = false
				} else {
					b.Seq(prev, cur)
				}
				prev = cur
			}
			return prev
		}
		lEnd := branch(left)
		rEnd := branch(right)
		pivot = add(activity.Pivot, pool.Pivot)
		if lEnd != root {
			b.Seq(lEnd, pivot)
		}
		b.Seq(rEnd, pivot)
	} else {
		prev := 0
		for i := 0; i < nComp; i++ {
			cur := add(activity.Compensatable, pool.Compensatable)
			if prev != 0 {
				b.Seq(prev, cur)
			}
			prev = cur
		}
		pivot = add(activity.Pivot, pool.Pivot)
		b.Seq(prev, pivot)
	}

	nRet := n - nComp - 1
	if nRet < 1 {
		nRet = 1
	}
	// Retriable tail (the guaranteed continuation).
	retHead := add(activity.Retriable, pool.Retriable)
	rprev := retHead
	for i := 1; i < nRet; i++ {
		cur := add(activity.Retriable, pool.Retriable)
		b.Seq(rprev, cur)
		rprev = cur
	}

	if rng.Float64() < p.NestedProb {
		// Nested structure: pivot -> (c p) preferred, retriable tail as
		// the lowest-priority alternative.
		c2 := add(activity.Compensatable, pool.Compensatable)
		p2 := add(activity.Pivot, pool.Pivot)
		b.Chain(pivot, c2, retHead)
		b.Seq(c2, p2)
	} else {
		b.Seq(pivot, retHead)
	}
	proc, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: building %s: %w", id, err)
	}
	return proc, nil
}
