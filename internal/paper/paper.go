// Package paper provides the running examples of the PODS'99 paper as
// reusable fixtures: the processes P1 (Figure 2), P2 (Figure 4) and P3
// (Figure 9), their conflict relation, and the concrete process schedules
// of Figures 4, 7, 8 and 9. They are shared by the test suite, the
// benchmark harness and the tpsim command.
package paper

import (
	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/process"
)

// Service names of the paper's activities. The paper uses abstract
// a_{i_k}; we name services after them so traces read like the paper.
const (
	SvcA11 = "a11" // compensatable
	SvcA12 = "a12" // pivot
	SvcA13 = "a13" // compensatable
	SvcA14 = "a14" // pivot
	SvcA15 = "a15" // retriable
	SvcA16 = "a16" // retriable

	SvcA21 = "a21" // compensatable
	SvcA22 = "a22" // compensatable
	SvcA23 = "a23" // pivot
	SvcA24 = "a24" // retriable
	SvcA25 = "a25" // retriable

	SvcA31 = "a31" // compensatable
	SvcA32 = "a32" // pivot
	SvcA33 = "a33" // retriable
)

// P1 builds the paper's process P1 (Figure 2):
//
//	a11^c ≪ a12^p ≪ a13^c ≪ a14^p
//	with (a12 ≪ a13) ◁ (a12 ≪ a15) and a15^r ≪ a16^r.
//
// a15 (and then a16) is executed only after a13 failed, or after a14
// failed and a13 was compensated.
func P1() *process.Process {
	return process.NewBuilder("P1").
		Add(1, SvcA11, activity.Compensatable).
		Add(2, SvcA12, activity.Pivot).
		Add(3, SvcA13, activity.Compensatable).
		Add(4, SvcA14, activity.Pivot).
		Add(5, SvcA15, activity.Retriable).
		Add(6, SvcA16, activity.Retriable).
		Seq(1, 2).
		Chain(2, 3, 5). // preferred a13, alternative a15
		Seq(3, 4).
		Seq(5, 6).
		MustBuild()
}

// P2 builds the paper's process P2 (Figure 4): the linear process
// a21^c ≪ a22^c ≪ a23^p ≪ a24^r ≪ a25^r.
func P2() *process.Process {
	return process.NewBuilder("P2").
		Add(1, SvcA21, activity.Compensatable).
		Add(2, SvcA22, activity.Compensatable).
		Add(3, SvcA23, activity.Pivot).
		Add(4, SvcA24, activity.Retriable).
		Add(5, SvcA25, activity.Retriable).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).Seq(4, 5).
		MustBuild()
}

// P3 builds the process P3 of Figure 9: a31^c ≪ a32^p ≪ a33^r, where a31
// conflicts with a11 of P1.
func P3() *process.Process {
	return process.NewBuilder("P3").
		Add(1, SvcA31, activity.Compensatable).
		Add(2, SvcA32, activity.Pivot).
		Add(3, SvcA33, activity.Retriable).
		Seq(1, 2).Seq(2, 3).
		MustBuild()
}

// Conflicts returns the conflict relation of the paper's Figures 4 and 9:
// the pairs (a11, a21), (a12, a24), (a15, a25) and (a11, a31) do not
// commute; everything else commutes. Perfect commutativity lifts each
// conflict to the compensating activities.
func Conflicts() *conflict.Table {
	t := conflict.NewTable()
	for _, svc := range []string{SvcA11, SvcA13, SvcA21, SvcA22, SvcA31} {
		t.MapBase(process.DefaultCompensationName(svc), svc)
	}
	t.AddConflict(SvcA11, SvcA21)
	t.AddConflict(SvcA12, SvcA24)
	t.AddConflict(SvcA15, SvcA25)
	t.AddConflict(SvcA11, SvcA31)
	return t
}
