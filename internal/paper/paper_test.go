package paper

import (
	"testing"

	"transproc/internal/process"
)

// TestFixturesMatchPaper pins the fixtures to the paper's definitions.
func TestFixturesMatchPaper(t *testing.T) {
	p1, p2, p3 := P1(), P2(), P3()
	if p1.Len() != 6 || p2.Len() != 5 || p3.Len() != 3 {
		t.Fatalf("sizes: %d %d %d", p1.Len(), p2.Len(), p3.Len())
	}
	for _, p := range []*process.Process{p1, p2, p3} {
		if err := process.ValidateGuaranteedTermination(p); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
		if ok, why := process.IsWellFormedFlex(p); !ok {
			t.Errorf("%s not well formed: %s", p.ID, why)
		}
	}
	// s_{1_0} = a12, s_{2_0} = a23, s_{3_0} = a32.
	for _, c := range []struct {
		p    *process.Process
		want int
	}{{p1, 2}, {p2, 3}, {p3, 2}} {
		sd, ok := c.p.StateDetermining()
		if !ok || sd != c.want {
			t.Errorf("%s: s_0 = %d, want %d", c.p.ID, sd, c.want)
		}
	}
}

// TestConflictsExactlyThePapers verifies the conflict relation contains
// exactly the pairs of Figures 4 and 9.
func TestConflictsExactlyThePapers(t *testing.T) {
	tab := Conflicts()
	svcs := []string{
		SvcA11, SvcA12, SvcA13, SvcA14, SvcA15, SvcA16,
		SvcA21, SvcA22, SvcA23, SvcA24, SvcA25,
		SvcA31, SvcA32, SvcA33,
	}
	want := map[[2]string]bool{
		{SvcA11, SvcA21}: true,
		{SvcA12, SvcA24}: true,
		{SvcA15, SvcA25}: true,
		{SvcA11, SvcA31}: true,
	}
	for i, a := range svcs {
		for j := i + 1; j < len(svcs); j++ {
			b := svcs[j]
			key := [2]string{a, b}
			if tab.Conflicts(a, b) != want[key] {
				t.Errorf("Conflicts(%s, %s) = %v, want %v", a, b, tab.Conflicts(a, b), want[key])
			}
		}
	}
	// Perfect commutativity reaches the inverses.
	if !tab.Conflicts(process.DefaultCompensationName(SvcA11), SvcA21) {
		t.Error("a11⁻¹ must conflict a21")
	}
}

// TestFederationInducesSameConflicts checks that the simulated
// subsystems' read/write sets derive the paper's conflict relation.
func TestFederationInducesSameConflicts(t *testing.T) {
	fed := Federation(1)
	tab, err := fed.ConflictTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{
		{SvcA11, SvcA21}, {SvcA12, SvcA24}, {SvcA15, SvcA25}, {SvcA11, SvcA31},
	} {
		if !tab.Conflicts(pair[0], pair[1]) {
			t.Errorf("federation table misses conflict %v", pair)
		}
	}
	if tab.Conflicts(SvcA21, SvcA31) {
		t.Error("a21 and a31 must commute (they share no item)")
	}
	if tab.Conflicts(SvcA13, SvcA22) {
		t.Error("a13 and a22 must commute")
	}
}

// TestCIMFixtures validates the Figure-1 processes.
func TestCIMFixtures(t *testing.T) {
	c := CIMConstruction("Pc")
	p := CIMProduction("Pp")
	for _, proc := range []*process.Process{c, p} {
		if err := process.ValidateGuaranteedTermination(proc); err != nil {
			t.Errorf("%s: %v", proc.ID, err)
		}
	}
	fed := CIMFederation(1)
	tab, err := fed.ConflictTable()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Conflicts(SvcEnterBOM, SvcReadBOM) {
		t.Error("the two PDM activities must conflict (Figure 1)")
	}
	if tab.Conflicts(SvcDesign, SvcProduce) {
		t.Error("CAD and production floor commute")
	}
}
