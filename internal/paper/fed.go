package paper

import (
	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/subsystem"
)

// Federation builds a federation of simulated subsystems providing the
// services of P1, P2 and P3 with read/write sets that induce exactly the
// paper's conflict relation: (a11,a21), (a12,a24), (a15,a25), (a11,a31)
// conflict; everything else commutes.
func Federation(seed int64) *subsystem.Federation {
	fed := subsystem.NewFederation()

	subA := subsystem.New("subA", seed)
	subA.MustRegister(activity.Spec{
		Name: SvcA11, Kind: activity.Compensatable, Subsystem: "subA",
		Compensation: process.DefaultCompensationName(SvcA11), WriteSet: []string{"i1", "i2"}, Cost: 2,
	})
	subA.MustRegister(activity.Spec{
		Name: SvcA21, Kind: activity.Compensatable, Subsystem: "subA",
		Compensation: process.DefaultCompensationName(SvcA21), WriteSet: []string{"i1"}, Cost: 2,
	})
	subA.MustRegister(activity.Spec{
		Name: SvcA31, Kind: activity.Compensatable, Subsystem: "subA",
		Compensation: process.DefaultCompensationName(SvcA31), WriteSet: []string{"i2"}, Cost: 2,
	})
	fed.MustAdd(subA)

	subB := subsystem.New("subB", seed+1)
	subB.MustRegister(activity.Spec{
		Name: SvcA12, Kind: activity.Pivot, Subsystem: "subB", WriteSet: []string{"j"}, Cost: 3,
	})
	subB.MustRegister(activity.Spec{
		Name: SvcA24, Kind: activity.Retriable, Subsystem: "subB", WriteSet: []string{"j"}, Cost: 1,
	})
	fed.MustAdd(subB)

	subC := subsystem.New("subC", seed+2)
	subC.MustRegister(activity.Spec{
		Name: SvcA15, Kind: activity.Retriable, Subsystem: "subC", WriteSet: []string{"k"}, Cost: 1,
	})
	subC.MustRegister(activity.Spec{
		Name: SvcA25, Kind: activity.Retriable, Subsystem: "subC", WriteSet: []string{"k"}, Cost: 1,
	})
	fed.MustAdd(subC)

	subD := subsystem.New("subD", seed+3)
	subD.MustRegister(activity.Spec{
		Name: SvcA13, Kind: activity.Compensatable, Subsystem: "subD",
		Compensation: process.DefaultCompensationName(SvcA13), WriteSet: []string{"d13"}, Cost: 2,
	})
	subD.MustRegister(activity.Spec{
		Name: SvcA14, Kind: activity.Pivot, Subsystem: "subD", WriteSet: []string{"d14"}, Cost: 2,
	})
	subD.MustRegister(activity.Spec{
		Name: SvcA16, Kind: activity.Retriable, Subsystem: "subD", WriteSet: []string{"d16"}, Cost: 1,
	})
	subD.MustRegister(activity.Spec{
		Name: SvcA22, Kind: activity.Compensatable, Subsystem: "subD",
		Compensation: process.DefaultCompensationName(SvcA22), WriteSet: []string{"d22"}, Cost: 2,
	})
	subD.MustRegister(activity.Spec{
		Name: SvcA23, Kind: activity.Pivot, Subsystem: "subD", WriteSet: []string{"d23"}, Cost: 2,
	})
	subD.MustRegister(activity.Spec{
		Name: SvcA32, Kind: activity.Pivot, Subsystem: "subD", WriteSet: []string{"d32"}, Cost: 2,
	})
	subD.MustRegister(activity.Spec{
		Name: SvcA33, Kind: activity.Retriable, Subsystem: "subD", WriteSet: []string{"d33"}, Cost: 1,
	})
	fed.MustAdd(subD)

	return fed
}

// CIM service names (Figure 1).
const (
	SvcDesign    = "design"    // CAD, compensatable
	SvcEnterBOM  = "enterBOM"  // PDM, compensatable
	SvcTest      = "test"      // test DB, pivot (can fail)
	SvcTechDoc   = "techdoc"   // documentation repository, retriable
	SvcDocCAD    = "docCAD"    // alternative: document drawing for reuse
	SvcReadBOM   = "readBOM"   // PDM, production side (conflicts enterBOM)
	SvcOrderMat  = "orderMat"  // business application, compensatable
	SvcScheduleP = "scheduleP" // program repository, compensatable
	SvcProduce   = "produce"   // production floor, pivot, no inverse
	SvcUpdatePDB = "updatePDB" // product DBMS, retriable
)

// CIMFederation builds the subsystems of the computer-integrated
// manufacturing scenario of Section 2 / Figure 1: CAD, PDM, test
// database, documentation repository, business application, program
// repository, production floor and product DBMS.
func CIMFederation(seed int64) *subsystem.Federation {
	fed := subsystem.NewFederation()

	cad := subsystem.New("cad", seed)
	cad.MustRegister(activity.Spec{
		Name: SvcDesign, Kind: activity.Compensatable, Subsystem: "cad",
		Compensation: process.DefaultCompensationName(SvcDesign), WriteSet: []string{"drawing"}, Cost: 8,
	})
	fed.MustAdd(cad)

	pdm := subsystem.New("pdm", seed+1)
	pdm.MustRegister(activity.Spec{
		Name: SvcEnterBOM, Kind: activity.Compensatable, Subsystem: "pdm",
		Compensation: process.DefaultCompensationName(SvcEnterBOM), WriteSet: []string{"bom"}, Cost: 2,
	})
	pdm.MustRegister(activity.Spec{
		Name: SvcReadBOM, Kind: activity.Compensatable, Subsystem: "pdm",
		Compensation: process.DefaultCompensationName(SvcReadBOM),
		ReadSet:      []string{"bom"}, WriteSet: []string{"bomCopy"}, Cost: 1,
	})
	fed.MustAdd(pdm)

	testdb := subsystem.New("testdb", seed+2)
	testdb.MustRegister(activity.Spec{
		Name: SvcTest, Kind: activity.Pivot, Subsystem: "testdb", WriteSet: []string{"testResult"}, Cost: 4,
	})
	fed.MustAdd(testdb)

	docs := subsystem.New("docs", seed+3)
	docs.MustRegister(activity.Spec{
		Name: SvcTechDoc, Kind: activity.Retriable, Subsystem: "docs", WriteSet: []string{"techdoc"}, Cost: 2,
	})
	docs.MustRegister(activity.Spec{
		Name: SvcDocCAD, Kind: activity.Retriable, Subsystem: "docs", WriteSet: []string{"caddoc"}, Cost: 2,
	})
	fed.MustAdd(docs)

	biz := subsystem.New("biz", seed+4)
	biz.MustRegister(activity.Spec{
		Name: SvcOrderMat, Kind: activity.Compensatable, Subsystem: "biz",
		Compensation: process.DefaultCompensationName(SvcOrderMat), WriteSet: []string{"orders"}, Cost: 2,
	})
	fed.MustAdd(biz)

	progs := subsystem.New("progs", seed+5)
	progs.MustRegister(activity.Spec{
		Name: SvcScheduleP, Kind: activity.Compensatable, Subsystem: "progs",
		Compensation: process.DefaultCompensationName(SvcScheduleP), WriteSet: []string{"plan"}, Cost: 2,
	})
	fed.MustAdd(progs)

	floor := subsystem.New("floor", seed+6)
	floor.MustRegister(activity.Spec{
		Name: SvcProduce, Kind: activity.Pivot, Subsystem: "floor", WriteSet: []string{"parts"}, Cost: 6,
	})
	fed.MustAdd(floor)

	pdb := subsystem.New("pdb", seed+7)
	pdb.MustRegister(activity.Spec{
		Name: SvcUpdatePDB, Kind: activity.Retriable, Subsystem: "pdb", WriteSet: []string{"productdb"}, Cost: 1,
	})
	fed.MustAdd(pdb)

	return fed
}

// CIMConstruction builds the construction process of Figure 1:
//
//	design^c ≪ enterBOM^c ≪ test^p ≪ techdoc^r,
//
// with the alternative that a failed test compensates the PDM entry and
// documents the CAD drawing for later reuse instead (Section 2.1).
func CIMConstruction(id process.ID) *process.Process {
	return process.NewBuilder(id).
		Add(1, SvcDesign, activity.Compensatable).
		Add(2, SvcEnterBOM, activity.Compensatable).
		Add(3, SvcTest, activity.Pivot).
		Add(4, SvcTechDoc, activity.Retriable).
		Add(5, SvcDocCAD, activity.Retriable).
		Chain(1, 2, 5). // preferred: enter BOM and continue; alternative: document drawing
		Seq(2, 3).
		Seq(3, 4).
		MustBuild()
}

// CIMProduction builds the production process of Figure 1:
//
//	readBOM^c ≪ orderMat^c ≪ scheduleP^c ≪ produce^p ≪ updatePDB^r.
//
// readBOM conflicts with the construction process's enterBOM (both touch
// the PDM's bill of materials); produce has no inverse.
func CIMProduction(id process.ID) *process.Process {
	return process.NewBuilder(id).
		Add(1, SvcReadBOM, activity.Compensatable).
		Add(2, SvcOrderMat, activity.Compensatable).
		Add(3, SvcScheduleP, activity.Compensatable).
		Add(4, SvcProduce, activity.Pivot).
		Add(5, SvcUpdatePDB, activity.Retriable).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).Seq(4, 5).
		MustBuild()
}
