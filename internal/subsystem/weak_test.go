package subsystem

import (
	"errors"
	"testing"

	"transproc/internal/activity"
)

func weakSub(t *testing.T) *Subsystem {
	t.Helper()
	s := New("rm", 1)
	s.MustRegister(activity.Spec{
		Name: "w", Kind: activity.Pivot, Subsystem: "rm", WriteSet: []string{"x"},
	})
	s.MustRegister(activity.Spec{
		Name: "r", Kind: activity.Retriable, Subsystem: "rm", ReadSet: []string{"x"}, WriteSet: []string{"out"},
	})
	s.MustRegister(activity.Spec{
		Name: "other", Kind: activity.Retriable, Subsystem: "rm", WriteSet: []string{"z"},
	})
	return s
}

func TestInvokeWeakOverlapsConflicts(t *testing.T) {
	s := weakSub(t)
	r1, deps1, err := s.InvokeWeak("P1", "w")
	if err != nil || len(deps1) != 0 {
		t.Fatalf("first weak invoke: %v deps=%v", err, deps1)
	}
	// A strong invoke would be lock-blocked... weak one records a dep.
	r2, deps2, err := s.InvokeWeak("P2", "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps2) != 1 || deps2[0] != r1.Tx {
		t.Fatalf("deps2 = %v, want [%d]", deps2, r1.Tx)
	}
	// Commit order enforced: the dependent cannot commit first.
	if err := s.CommitPreparedWeak(r2.Tx); !errors.Is(err, ErrOrder) {
		t.Fatalf("dependent commit must be refused: %v", err)
	}
	if err := s.CommitPreparedWeak(r1.Tx); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitPreparedWeak(r2.Tx); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 2 {
		t.Fatalf("x = %d", s.Get("x"))
	}
}

func TestInvokeWeakIndependentNoDeps(t *testing.T) {
	s := weakSub(t)
	_, _, err := s.InvokeWeak("P1", "w")
	if err != nil {
		t.Fatal(err)
	}
	_, deps, err := s.InvokeWeak("P2", "other")
	if err != nil || len(deps) != 0 {
		t.Fatalf("independent weak invoke: %v deps=%v", err, deps)
	}
}

func TestInvokeWeakReadWriteDependency(t *testing.T) {
	s := weakSub(t)
	rw, _, err := s.InvokeWeak("P1", "w")
	if err != nil {
		t.Fatal(err)
	}
	_, deps, err := s.InvokeWeak("P2", "r")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0] != rw.Tx {
		t.Fatalf("reader must depend on writer: %v", deps)
	}
}

func TestWeakDependencyAbortCascades(t *testing.T) {
	s := weakSub(t)
	r1, _, err := s.InvokeWeak("P1", "w")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := s.InvokeWeak("P2", "w")
	if err != nil {
		t.Fatal(err)
	}
	// The predecessor aborts (e.g. a transient retriable abort after
	// partial execution, Section 3.6).
	if err := s.AbortPrepared(r1.Tx); err != nil {
		t.Fatal(err)
	}
	// The dependent must be rolled back and re-invoked.
	if err := s.CommitPreparedWeak(r2.Tx); !errors.Is(err, ErrDependencyAborted) {
		t.Fatalf("dependent must be restarted: %v", err)
	}
	if s.Get("x") != 0 {
		t.Fatal("nothing may be applied")
	}
	// Re-invocation succeeds with no dependencies left.
	r3, deps, err := s.InvokeWeak("P2", "w")
	if err != nil || len(deps) != 0 {
		t.Fatalf("re-invoke: %v deps=%v", err, deps)
	}
	if err := s.CommitPreparedWeak(r3.Tx); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 1 {
		t.Fatalf("x = %d", s.Get("x"))
	}
}

func TestWeakFailureInjection(t *testing.T) {
	s := weakSub(t)
	s.ForceFail("w", 1)
	_, _, err := s.InvokeWeak("P1", "w")
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := s.InvokeWeak("P1", "nope"); err == nil {
		t.Fatal("unknown service must fail")
	}
}

func TestWeakTransactionsVisibleInInDoubt(t *testing.T) {
	s := weakSub(t)
	r1, _, _ := s.InvokeWeak("P1", "w")
	recs := s.InDoubt()
	if len(recs) != 1 || recs[0].Tx != r1.Tx {
		t.Fatalf("in doubt = %v", recs)
	}
	if err := s.AbortPrepared(r1.Tx); err != nil {
		t.Fatal(err)
	}
	if len(s.InDoubt()) != 0 {
		t.Fatal("rollback must clear in-doubt state")
	}
	if s.Get("x") != 0 {
		t.Fatal("aborted weak transaction must leave no effects")
	}
}
