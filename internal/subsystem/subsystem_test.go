package subsystem

import (
	"errors"
	"testing"

	"transproc/internal/activity"
)

func newSub(t *testing.T) *Subsystem {
	t.Helper()
	s := New("pdm", 1)
	s.MustRegister(activity.Spec{
		Name: "enter", Kind: activity.Compensatable, Subsystem: "pdm",
		Compensation: "remove", WriteSet: []string{"bom"},
	})
	s.MustRegister(activity.Spec{
		Name: "readBOM", Kind: activity.Retriable, Subsystem: "pdm",
		ReadSet: []string{"bom"},
	})
	s.MustRegister(activity.Spec{
		Name: "produce", Kind: activity.Pivot, Subsystem: "pdm",
		ReadSet: []string{"bom"}, WriteSet: []string{"parts"},
	})
	return s
}

func TestRegisterAutoCompensation(t *testing.T) {
	s := newSub(t)
	spec, ok := s.Lookup("remove")
	if !ok {
		t.Fatal("compensating service not auto-registered")
	}
	if spec.Kind != activity.Compensation {
		t.Fatalf("kind = %v", spec.Kind)
	}
	svcs := s.Services()
	if len(svcs) != 4 {
		t.Fatalf("services = %v", svcs)
	}
}

func TestRegisterErrors(t *testing.T) {
	s := newSub(t)
	if err := s.Register(activity.Spec{Name: "enter", Kind: activity.Retriable, Subsystem: "pdm"}); err == nil {
		t.Fatal("duplicate must fail")
	}
	if err := s.Register(activity.Spec{Name: "x", Kind: activity.Retriable, Subsystem: "other"}); err == nil {
		t.Fatal("wrong subsystem must fail")
	}
	if err := s.Register(activity.Spec{}); err == nil {
		t.Fatal("invalid spec must fail")
	}
	if err := s.Register(activity.Spec{
		Name: "e2", Kind: activity.Compensatable, Subsystem: "pdm", Compensation: "remove",
	}); err == nil {
		t.Fatal("clashing compensation name must fail")
	}
}

func TestInvokeAutoCommitAppliesEffects(t *testing.T) {
	s := newSub(t)
	res, err := s.Invoke("P1", "enter", AutoCommit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != activity.Committed {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if got := s.Get("bom"); got != 1 {
		t.Fatalf("bom = %d, want 1", got)
	}
	if j := s.Journal(); len(j) != 1 || j[0].Service != "enter" || j[0].Delta != 1 {
		t.Fatalf("journal = %v", j)
	}
}

func TestCompensationIsEffectFree(t *testing.T) {
	s := newSub(t)
	base := s.Snapshot()
	if _, err := s.Invoke("P1", "enter", AutoCommit); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke("P1", "remove", AutoCommit); err != nil {
		t.Fatal(err)
	}
	after := s.Snapshot()
	for k, v := range after {
		if base[k] != v {
			t.Fatalf("⟨a a⁻¹⟩ not effect-free: %s = %d", k, v)
		}
	}
}

func TestInvokeReadsReturnValues(t *testing.T) {
	s := newSub(t)
	s.Set("bom", 7)
	res, err := s.Invoke("P1", "readBOM", AutoCommit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads["bom"] != 7 {
		t.Fatalf("reads = %v", res.Reads)
	}
}

func TestInvokeUnknownService(t *testing.T) {
	s := newSub(t)
	if _, err := s.Invoke("P1", "nope", AutoCommit); err == nil {
		t.Fatal("unknown service must fail")
	}
}

func TestForceFailAborts(t *testing.T) {
	s := newSub(t)
	s.ForceFail("enter", 1)
	res, err := s.Invoke("P1", "enter", AutoCommit)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if res.Outcome != activity.Aborted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if got := s.Get("bom"); got != 0 {
		t.Fatal("aborted transaction must leave no effects (atomicity)")
	}
	// Next invocation succeeds.
	if _, err := s.Invoke("P1", "enter", AutoCommit); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilisticFailure(t *testing.T) {
	s := New("x", 42)
	s.MustRegister(activity.Spec{
		Name: "flaky", Kind: activity.Retriable, Subsystem: "x", FailureProb: 0.5,
	})
	aborted, committed := 0, 0
	for i := 0; i < 200; i++ {
		_, err := s.Invoke("P", "flaky", AutoCommit)
		if errors.Is(err, ErrAborted) {
			aborted++
		} else if err == nil {
			committed++
		} else {
			t.Fatal(err)
		}
	}
	if aborted < 50 || committed < 50 {
		t.Fatalf("failure injection skewed: %d aborted, %d committed", aborted, committed)
	}
	inv, ab, _ := s.Stats()
	if inv != 200 || ab != int64(aborted) {
		t.Fatalf("stats = %d, %d", inv, ab)
	}
}

func TestPreparedHoldsLocks(t *testing.T) {
	s := newSub(t)
	res, err := s.Invoke("P1", "produce", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != activity.Prepared {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if got := s.Get("parts"); got != 0 {
		t.Fatal("prepared transaction must not be visible")
	}
	// Another process conflicts on "parts" (and on reading "bom"? produce
	// writes parts, reads bom; enter writes bom -> X(bom) vs S(bom)).
	if _, err := s.Invoke("P2", "produce", AutoCommit); !errors.Is(err, ErrLocked) {
		t.Fatalf("conflicting invocation should be lock-denied, got %v", err)
	}
	// enter writes bom; produce holds S(bom) -> denied.
	if _, err := s.Invoke("P2", "enter", AutoCommit); !errors.Is(err, ErrLocked) {
		t.Fatalf("write against read lock should be denied, got %v", err)
	}
	// Same process shares locks.
	if _, err := s.Invoke("P1", "readBOM", AutoCommit); err != nil {
		t.Fatalf("same-process invocation must not self-block: %v", err)
	}
	if len(s.InDoubt()) != 1 {
		t.Fatal("expected one in-doubt transaction")
	}
	if err := s.CommitPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("parts"); got != 1 {
		t.Fatal("commit must apply prepared writes")
	}
	if _, err := s.Invoke("P2", "enter", AutoCommit); err != nil {
		t.Fatalf("locks must be released after commit: %v", err)
	}
}

func TestAbortPreparedLeavesNoEffects(t *testing.T) {
	s := newSub(t)
	res, err := s.Invoke("P1", "produce", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AbortPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("parts"); got != 0 {
		t.Fatal("aborted prepared transaction must leave no effects")
	}
	if _, err := s.Invoke("P2", "produce", AutoCommit); err != nil {
		t.Fatalf("locks must be released after abort: %v", err)
	}
	if err := s.AbortPrepared(res.Tx); err == nil {
		t.Fatal("double resolution must fail")
	}
	if err := s.CommitPrepared(9999); err == nil {
		t.Fatal("unknown transaction must fail")
	}
}

func TestReadersShareLocks(t *testing.T) {
	s := newSub(t)
	r1, err := s.Invoke("P1", "readBOM", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke("P2", "readBOM", AutoCommit); err != nil {
		t.Fatalf("two readers must not conflict: %v", err)
	}
	if err := s.CommitPrepared(r1.Tx); err != nil {
		t.Fatal(err)
	}
}

func TestLockDenialStats(t *testing.T) {
	s := newSub(t)
	res, _ := s.Invoke("P1", "enter", Prepare)
	s.Invoke("P2", "enter", AutoCommit) // denied
	_, _, denials := s.Stats()
	if denials != 1 {
		t.Fatalf("denials = %d", denials)
	}
	s.AbortPrepared(res.Tx)
}

func TestFederationRoutingAndTables(t *testing.T) {
	f := NewFederation()
	pdm := newSub(t)
	bank := New("bank", 2)
	bank.MustRegister(activity.Spec{
		Name: "pay", Kind: activity.Pivot, Subsystem: "bank", WriteSet: []string{"acct"},
	})
	f.MustAdd(pdm)
	f.MustAdd(bank)

	if _, ok := f.Owner("pay"); !ok {
		t.Fatal("owner lookup failed")
	}
	if _, ok := f.Subsystem("pdm"); !ok {
		t.Fatal("subsystem lookup failed")
	}
	if got := len(f.Subsystems()); got != 2 {
		t.Fatalf("subsystems = %d", got)
	}
	if _, err := f.Invoke("P1", "pay", AutoCommit); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Invoke("P1", "ghost", AutoCommit); err == nil {
		t.Fatal("unknown service must fail")
	}
	reg, err := f.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 5 {
		t.Fatalf("registry len = %d", reg.Len())
	}
	tab, err := f.ConflictTable()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Conflicts("enter", "readBOM") {
		t.Fatal("enter/readBOM share item bom and must conflict")
	}
	if !tab.Conflicts("remove", "readBOM") {
		t.Fatal("perfect commutativity must lift the conflict to the compensation")
	}
	if tab.Conflicts("pay", "enter") {
		t.Fatal("disjoint subsystems must commute")
	}
	snap := f.Snapshot()
	if snap["bank/acct"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestFederationDuplicates(t *testing.T) {
	f := NewFederation()
	f.MustAdd(New("a", 1))
	if err := f.Add(New("a", 2)); err == nil {
		t.Fatal("duplicate subsystem must fail")
	}
	b := New("b", 3)
	b.MustRegister(activity.Spec{Name: "svc", Kind: activity.Retriable, Subsystem: "b"})
	f.MustAdd(b)
	c := New("c", 4)
	c.MustRegister(activity.Spec{Name: "svc", Kind: activity.Retriable, Subsystem: "c"})
	if err := f.Add(c); err == nil {
		t.Fatal("duplicate service across subsystems must fail")
	}
}

func TestFederationInDoubt(t *testing.T) {
	f := NewFederation()
	pdm := newSub(t)
	f.MustAdd(pdm)
	res, err := f.Invoke("P1", "produce", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	all := f.InDoubt()
	if len(all["pdm"]) != 1 || all["pdm"][0].Tx != res.Tx || all["pdm"][0].Proc != "P1" {
		t.Fatalf("in doubt = %v", all)
	}
	pdm.CommitPrepared(res.Tx)
	if len(f.InDoubt()) != 0 {
		t.Fatal("no in-doubt transactions expected")
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() []int {
		s := New("x", 99)
		s.MustRegister(activity.Spec{Name: "f", Kind: activity.Retriable, Subsystem: "x", FailureProb: 0.3})
		var outcomes []int
		for i := 0; i < 50; i++ {
			_, err := s.Invoke("P", "f", AutoCommit)
			if err != nil {
				outcomes = append(outcomes, 1)
			} else {
				outcomes = append(outcomes, 0)
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce outcomes")
		}
	}
}
