package subsystem

import (
	"testing"

	"transproc/internal/activity"
	"transproc/internal/store"
)

func durableSub(t *testing.T, st *store.Store) *Subsystem {
	t.Helper()
	s := New("DB", 1)
	s.MustRegister(activity.Spec{
		Name: "book", Kind: activity.Compensatable, Compensation: "cancel",
		Subsystem: "DB", WriteSet: []string{"seats"},
	})
	s.MustRegister(activity.Spec{
		Name: "pay", Kind: activity.Pivot, Subsystem: "DB", WriteSet: []string{"balance"},
	})
	if err := s.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableRoundTrip commits work, reopens the store into a fresh
// subsystem, and expects items, baselines, tx floor and fates back.
func TestDurableRoundTrip(t *testing.T) {
	dev := store.NewMemDevice()
	st, err := store.Open(dev, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := durableSub(t, st)
	s.Set("seats", 100)
	if _, err := s.Invoke("P1", "book", AutoCommit); err != nil {
		t.Fatal(err)
	}
	res, err := s.Invoke("P2", "pay", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CommitPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FlushStore(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dev, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := durableSub(t, st2)
	if got := s2.Get("seats"); got != 101 {
		t.Fatalf("seats = %d, want 101", got)
	}
	if got := s2.Get("balance"); got != 1 {
		t.Fatalf("balance = %d, want 1", got)
	}
	if got := s2.Baselines()["seats"]; got != 100 {
		t.Fatalf("baseline seats = %d, want 100", got)
	}
	if fate, ok := s2.Fates()[res.Tx]; !ok || !fate.Committed || fate.Proc != "P2" || fate.Service != "pay" {
		t.Fatalf("fate[%d] = %+v, %v", res.Tx, fate, ok)
	}
	if committed, known := s2.TxFate(res.Tx); !known || !committed {
		t.Fatalf("TxFate(%d) = (%v,%v), want committed", res.Tx, committed, known)
	}
	// The tx counter must not recycle pre-crash ids.
	r2, err := s2.Invoke("P3", "pay", AutoCommit)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tx <= res.Tx {
		t.Fatalf("fresh tx %d not above restored floor %d", r2.Tx, res.Tx)
	}
}

// TestDurableIntentRestored prepares a transaction, "crashes", reopens
// and expects the transaction back in doubt with its locks held.
func TestDurableIntentRestored(t *testing.T) {
	dev := store.NewMemDevice()
	st, err := store.Open(dev, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := durableSub(t, st)
	res, err := s.Invoke("P1", "book", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.FlushStore(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dev, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := durableSub(t, st2)
	ind := s2.InDoubt()
	if len(ind) != 1 || ind[0].Tx != res.Tx || ind[0].Proc != "P1" || ind[0].Service != "book" {
		t.Fatalf("in-doubt after restore = %+v", ind)
	}
	// The restored transaction holds its write lock against others.
	if s2.Lockable("P2", "book") {
		t.Fatal("conflicting lock not restored")
	}
	if err := s2.CommitPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
	if got := s2.Get("seats"); got != 1 {
		t.Fatalf("seats = %d after restored commit, want 1", got)
	}
}

// TestDurableFateWinsOverStaleIntent simulates a crash between a 2PC
// resolution and the intent cleanup reaching disk: both records exist,
// and the fate must win (no resurrected in-doubt transaction).
func TestDurableFateWinsOverStaleIntent(t *testing.T) {
	dev := store.NewMemDevice()
	st, err := store.Open(dev, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := durableSub(t, st)
	res, err := s.Invoke("P1", "book", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CommitPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
	// Re-plant the stale intent the crash failed to delete.
	if err := st.Put("i/"+txKey(res.Tx, "P1", "book"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FlushStore(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dev, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := durableSub(t, st2)
	if ind := s2.InDoubt(); len(ind) != 0 {
		t.Fatalf("stale intent resurrected: %+v", ind)
	}
	if committed, known := s2.TxFate(res.Tx); !known || !committed {
		t.Fatalf("TxFate = (%v,%v), want committed", committed, known)
	}
	if keys := st2.Keys("i/"); len(keys) != 0 {
		t.Fatalf("stale intent not cleaned: %v", keys)
	}
}

// TestRestorePreparedFromLog restores an in-doubt transaction the log
// knows about but the durable intent never reached disk for.
func TestRestorePreparedFromLog(t *testing.T) {
	st := store.OpenMem(store.Options{})
	s := durableSub(t, st)
	if err := s.RestorePrepared(7, "P4", "book"); err != nil {
		t.Fatal(err)
	}
	ind := s.InDoubt()
	if len(ind) != 1 || ind[0].Tx != 7 {
		t.Fatalf("in-doubt = %+v", ind)
	}
	// Idempotent, and resolved ids are refused silently.
	if err := s.RestorePrepared(7, "P4", "book"); err != nil {
		t.Fatal(err)
	}
	if len(s.InDoubt()) != 1 {
		t.Fatal("double restore duplicated the transaction")
	}
	if err := s.AbortPrepared(7); err != nil {
		t.Fatal(err)
	}
	if err := s.RestorePrepared(7, "P4", "book"); err != nil {
		t.Fatal(err)
	}
	if len(s.InDoubt()) != 0 {
		t.Fatal("resolved transaction resurrected")
	}
	// Fresh invocations must mint ids above the restored one.
	r, err := s.Invoke("P5", "pay", AutoCommit)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tx <= 7 {
		t.Fatalf("tx %d not above restored id 7", r.Tx)
	}
}

// TestReconcileDurable forces redo and undo edges and checks the store
// image lands exactly on the expected state.
func TestReconcileDurable(t *testing.T) {
	st := store.OpenMem(store.Options{})
	s := durableSub(t, st)
	s.Set("seats", 50)
	if _, err := s.Invoke("P1", "book", AutoCommit); err != nil {
		t.Fatal(err)
	}
	// seats=51 on pages. Log says seats should be 53 (redo two) and
	// balance should be 0 with no baseline (undo: delete the record).
	if _, err := s.Invoke("P1", "pay", AutoCommit); err != nil {
		t.Fatal(err)
	}
	redo, undo, err := s.ReconcileDurable(map[string]int64{"seats": 53})
	if err != nil {
		t.Fatal(err)
	}
	if redo != 1 || undo != 1 {
		t.Fatalf("redo=%d undo=%d, want 1,1", redo, undo)
	}
	if got := s.Get("seats"); got != 53 {
		t.Fatalf("seats = %d, want 53", got)
	}
	if _, ok := st.Get("d/balance"); ok {
		t.Fatal("undone record survived on pages")
	}
	// Baseline item forced to zero keeps its record (value 0).
	if _, _, err := s.ReconcileDurable(map[string]int64{"seats": 0}); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get("d/seats"); !ok || v != 0 {
		t.Fatalf("d/seats = (%d,%v), want (0,true)", v, ok)
	}
}
