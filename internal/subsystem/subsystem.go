// Package subsystem simulates the transactional subsystems of the paper
// (Section 2.3): autonomous resource managers that execute service
// invocations as local ACID transactions and provide either compensation
// for committed services or a two phase commit interface (prepared,
// in-doubt transactions) — the functionality a transactional
// coordination agent wraps around an application system.
//
// The simulated resource manager stores int64-valued data items. A
// service reads its read set and applies per-item deltas to its write
// set; the compensating service applies the inverse deltas, making the
// pair ⟨a a⁻¹⟩ effect-free by construction (Definition 2). Local
// transactions use strict two phase locking at data-item granularity;
// transactions of the same process share locks (a process's activities
// never block each other). Lock conflicts are reported immediately with
// ErrLocked instead of blocking, so a discrete-event scheduler can queue
// the invocation and retry when the holder releases.
package subsystem

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"transproc/internal/activity"
	"transproc/internal/metrics"
	"transproc/internal/store"
)

// TxID identifies a local transaction within a subsystem.
type TxID int64

// Mode selects the commit behaviour of an invocation.
type Mode int

const (
	// AutoCommit commits the local transaction immediately on success.
	AutoCommit Mode = iota
	// Prepare leaves the successful local transaction in the prepared
	// (in-doubt) state, holding its locks, until CommitPrepared or
	// AbortPrepared is called (the deferred commit of Lemma 1).
	Prepare
)

// Result describes a completed invocation.
type Result struct {
	Tx      TxID
	Outcome activity.Outcome
	// Reads holds the values of the service's read set at execution
	// time; commutativity is defined over such return values
	// (Definition 6).
	Reads map[string]int64
}

// Mutation is one applied write, kept in the subsystem journal.
type Mutation struct {
	Seq     int64
	Tx      TxID
	Proc    string
	Service string
	Item    string
	Delta   int64
}

// txn is a local transaction.
type txn struct {
	id       TxID
	proc     string
	service  string
	writes   map[string]int64 // buffered deltas
	reads    map[string]int64
	prepared bool
	// weakDeps holds commit-order dependencies of a weakly invoked
	// transaction (Section 3.6); empty for strongly locked ones.
	weakDeps []TxID
}

// lockState tracks item locks, keyed by owning process (activities of
// one process share ownership). Readers are shared; write locks are
// exclusive across processes UNLESS every current holder acquired the
// item through the same Commutative lock family (a service and its
// compensation — increments and their inverse decrements commute, so
// prepared transactions of different processes may hold the item
// concurrently, exactly the pairs Definition 6's conflict relation
// exempts). commFam records that family; "" means the exclusive
// regime (some holder wrote through a different or non-commutative
// service). A degraded regime stays exclusive until all write locks
// drain — conservative, never unsound.
type lockState struct {
	readers map[string]int // proc -> count
	writers map[string]int // proc -> write-lock count
	commFam string
}

func (ls *lockState) otherWriter(proc string) (string, bool) {
	for w := range ls.writers {
		if w != proc {
			return w, true
		}
	}
	return "", false
}

// Subsystem is a simulated transactional resource manager. It is safe
// for concurrent use.
type Subsystem struct {
	name string

	mu       sync.Mutex
	rng      *rand.Rand
	store    map[string]int64
	journal  []Mutation
	seq      int64
	nextTx   TxID
	services map[string]*svc
	locks    map[string]*lockState
	inDoubt  map[TxID]*txn
	// resolved records, for transactions that were once in doubt,
	// whether they committed (true) or aborted (false); weak-order
	// dependents consult it to learn their dependencies' outcomes, and
	// crash recovery consults it (TxFate) to tolerate a crash between a
	// resolution's subsystem-side apply and its log record.
	resolved map[TxID]bool
	// forced failure outcomes per service (deterministic injection).
	forceFail map[string]int
	// failRules makes every invocation of a service by a given process
	// abort, keyed proc+"/"+service. Unlike forceFail it is persistent
	// (restarted incarnations fail identically), which makes terminal
	// process fates independent of interleaving — the property the
	// differential runtime-vs-engine tests rely on.
	failRules map[string]bool
	// idem is the idempotency (dedup) table: successful executions
	// recorded by invocation key. A redelivery under the same key
	// replays the recorded outcome instead of executing again, keeping
	// at-least-once transports exactly-once. Aborted executions are not
	// recorded — atomicity left no effects, so re-executing is safe.
	idem        map[string]*Result
	idemReplays int64
	// stats
	invocations int64
	aborts      int64
	lockDenials int64
	// m is the optional observability registry (nil = no-op); it
	// receives invocation counters and in-doubt set-size observations.
	m *metrics.Registry
	// durable, when non-nil, is the heap-file store this subsystem
	// writes its state through to; see durable.go for the key layout
	// and crash-recovery contract.
	durable    *store.Store
	durableErr error
	// baselines records items initialized via Set, so recovery can
	// distinguish "value returned to zero" from "never existed".
	baselines map[string]int64
	// fates holds durable 2PC resolutions loaded by AttachStore.
	fates map[TxID]FateRecord
}

type svc struct {
	spec   activity.Spec
	deltas map[string]int64 // write item -> delta
	// family is the lock-compatibility family: the service's own name,
	// or the base service's name for an auto-registered compensation
	// (by perfect commutativity, a commutative service's inverse
	// commutes with it and with itself).
	family string
}

// New returns an empty subsystem. The seed drives probabilistic failure
// injection; subsystems with the same seed and call sequence behave
// identically.
func New(name string, seed int64) *Subsystem {
	return &Subsystem{
		name:      name,
		rng:       rand.New(rand.NewSource(seed)),
		store:     make(map[string]int64),
		services:  make(map[string]*svc),
		locks:     make(map[string]*lockState),
		inDoubt:   make(map[TxID]*txn),
		resolved:  make(map[TxID]bool),
		forceFail: make(map[string]int),
		failRules: make(map[string]bool),
		idem:      make(map[string]*Result),
		baselines: make(map[string]int64),
		fates:     make(map[TxID]FateRecord),
	}
}

// Name returns the subsystem name.
func (s *Subsystem) Name() string { return s.name }

// SetMetrics attaches an observability registry (nil detaches).
func (s *Subsystem) SetMetrics(m *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
}

// Register adds a service to the subsystem. The service's writes apply
// +1 per write-set item; if the spec declares a compensation, the
// compensating service is registered automatically with the inverse
// deltas and kind activity.Compensation.
func (s *Subsystem) Register(spec activity.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.Subsystem != s.name {
		return fmt.Errorf("subsystem %s: spec %q belongs to subsystem %q", s.name, spec.Name, spec.Subsystem)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.services[spec.Name]; dup {
		return fmt.Errorf("subsystem %s: duplicate service %q", s.name, spec.Name)
	}
	deltas := make(map[string]int64, len(spec.WriteSet))
	for _, item := range spec.WriteSet {
		deltas[item] = 1
	}
	s.services[spec.Name] = &svc{spec: spec, deltas: deltas, family: spec.Name}
	if spec.Kind == activity.Compensatable {
		inv := make(map[string]int64, len(deltas))
		for item, d := range deltas {
			inv[item] = -d
		}
		compSpec := activity.Spec{
			Name:        spec.Compensation,
			Kind:        activity.Compensation,
			Subsystem:   s.name,
			ReadSet:     append([]string(nil), spec.ReadSet...),
			WriteSet:    append([]string(nil), spec.WriteSet...),
			Cost:        spec.Cost,
			Commutative: spec.Commutative,
		}
		if _, dup := s.services[compSpec.Name]; dup {
			return fmt.Errorf("subsystem %s: compensation %q already registered", s.name, compSpec.Name)
		}
		s.services[compSpec.Name] = &svc{spec: compSpec, deltas: inv, family: spec.Name}
	}
	return nil
}

// MustRegister is Register that panics on error.
func (s *Subsystem) MustRegister(spec activity.Spec) {
	if err := s.Register(spec); err != nil {
		panic(err)
	}
}

// Services returns the registered service names, sorted.
func (s *Subsystem) Services() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.services))
	for n := range s.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ForceFail makes the next n invocations of the service abort,
// regardless of its failure probability. Deterministic test hook.
func (s *Subsystem) ForceFail(service string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forceFail[service] += n
}

// FailService makes every invocation of the service by the process
// abort, persistently (ForceFail's counted variant expires; this rule
// does not, so restarts replay the same failure). Deterministic test
// hook; proc must match the name passed to Invoke (engines pass the
// process origin).
func (s *Subsystem) FailService(proc, service string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRules[proc+"/"+service] = true
}

// Lockable reports whether proc could currently acquire the service's
// strict-2PL item locks (a snapshot; no state changes). Schedulers use
// it to park a process instead of burning an invocation attempt that
// would return ErrLocked; a racing acquisition between the probe and
// the Invoke still yields ErrLocked, so the probe is advisory.
func (s *Subsystem) Lockable(proc, service string) bool {
	_, free := s.LockBlocker(proc, service)
	return free
}

// LockBlocker is Lockable plus the identity of one process currently
// holding a conflicting item lock (the first found; "" when the service
// is lockable or unknown). Schedulers use the holder as a wait-for edge:
// the probe can only stop failing after that holder releases its locks
// by committing or rolling back, so parking on the holder is sound even
// though the probe is advisory.
func (s *Subsystem) LockBlocker(proc, service string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.services[service]
	if !ok {
		return "", false
	}
	return s.canLock(proc, sv)
}

// Invoke executes one invocation of the service on behalf of a process
// as a local transaction.
//
//   - If the locks cannot be acquired (another process holds conflicting
//     item locks, possibly through a prepared transaction), it returns
//     ErrLocked and nothing changes.
//   - If the transaction aborts (forced or probabilistic failure), it
//     returns a Result with Outcome Aborted and ErrAborted; atomicity of
//     the local transaction guarantees no effects.
//   - On success with AutoCommit the writes are applied and locks
//     released; with Prepare the transaction stays in-doubt, holding
//     locks, until CommitPrepared/AbortPrepared.
func (s *Subsystem) Invoke(proc, service string, mode Mode) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invokeLocked(proc, service, mode)
}

// InvokeIdem is Invoke with an idempotency key: a redelivery under a
// key whose execution already succeeded replays the recorded Result
// (replayed=true) without executing anything, so at-least-once
// transports stay exactly-once. Distinct logical invocations must use
// distinct keys; retries of the same logical invocation must reuse the
// key. Failed executions (lock conflicts, aborts) are not recorded —
// atomicity guarantees they left no effects.
func (s *Subsystem) InvokeIdem(key, proc, service string, mode Mode) (res *Result, replayed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.idem[key]; ok {
		s.idemReplays++
		s.m.Inc(metrics.IdemReplays)
		cp := *rec
		return &cp, true, nil
	}
	res, err = s.invokeLocked(proc, service, mode)
	if err == nil {
		cp := *res
		s.idem[key] = &cp
	}
	return res, false, err
}

// LookupIdem reports the recorded outcome of an idempotency key: the
// Result of its successful execution, or ok=false when the key never
// executed successfully here. An unreliable transport's caller uses it
// to resolve ErrTimeout ambiguity — a recorded Result means the
// invocation did execute and only its reply was lost.
func (s *Subsystem) LookupIdem(key string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.idem[key]
	if !ok {
		return nil, false
	}
	cp := *rec
	return &cp, true
}

// IdemStats reports the dedup table size and replay count.
func (s *Subsystem) IdemStats() (entries int, replays int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idem), s.idemReplays
}

// invokeLocked is the body of Invoke; the caller holds s.mu.
func (s *Subsystem) invokeLocked(proc, service string, mode Mode) (*Result, error) {
	sv, ok := s.services[service]
	if !ok {
		return nil, fmt.Errorf("subsystem %s: unknown service %q", s.name, service)
	}
	s.invocations++
	s.m.Inc(metrics.SubInvocations)

	// Acquire strict-2PL item locks (all-or-nothing; no partial holds).
	if holder, ok := s.canLock(proc, sv); !ok {
		s.lockDenials++
		s.m.Inc(metrics.SubLockDenials)
		return nil, &SubsystemError{
			Subsystem: s.name, Service: service, Kind: ErrLocked,
			Detail: "held by " + holder,
		}
	}

	// Decide the outcome: deterministic rules first, then probability.
	fail := false
	if s.failRules[proc+"/"+service] {
		fail = true
	} else if s.forceFail[service] > 0 {
		s.forceFail[service]--
		fail = true
	} else if sv.spec.FailureProb > 0 && s.rng.Float64() < sv.spec.FailureProb {
		fail = true
	}
	if fail {
		s.aborts++
		s.m.Inc(metrics.SubAborts)
		return &Result{Outcome: activity.Aborted},
			&SubsystemError{Subsystem: s.name, Service: service, Kind: ErrAborted}
	}

	s.nextTx++
	s.dPut(durNextTx, int64(s.nextTx))
	t := &txn{
		id:      s.nextTx,
		proc:    proc,
		service: service,
		writes:  make(map[string]int64, len(sv.deltas)),
		reads:   make(map[string]int64, len(sv.spec.ReadSet)),
	}
	for _, item := range sv.spec.ReadSet {
		t.reads[item] = s.store[item]
	}
	for item, d := range sv.deltas {
		t.writes[item] = d
	}

	if mode == AutoCommit {
		s.applyLocked(t)
		return &Result{Tx: t.id, Outcome: activity.Committed, Reads: t.reads}, nil
	}
	// Prepared: take the locks durably until 2PC resolution.
	s.lock(proc, sv)
	t.prepared = true
	s.inDoubt[t.id] = t
	s.dPut(durIntent+txKey(t.id, proc, service), 1)
	s.m.Observe(metrics.HistInDoubt, int64(len(s.inDoubt)))
	return &Result{Tx: t.id, Outcome: activity.Prepared, Reads: t.reads}, nil
}

// canLock reports whether proc could acquire the service's locks, and
// when not, names a blocking process. Write-write compatibility is
// semantic: holders of the same Commutative lock family do not block
// each other (their writes are deltas that commute in any order).
func (s *Subsystem) canLock(proc string, sv *svc) (string, bool) {
	for _, item := range sv.spec.ReadSet {
		if ls := s.locks[item]; ls != nil {
			if w, blocked := ls.otherWriter(proc); blocked {
				return w, false
			}
		}
	}
	commOK := sv.spec.Commutative
	for item := range sv.deltas {
		ls := s.locks[item]
		if ls == nil {
			continue
		}
		if w, blocked := ls.otherWriter(proc); blocked {
			if !(commOK && ls.commFam == sv.family) {
				return w, false
			}
		}
		for r := range ls.readers {
			if r != proc {
				return r, false
			}
		}
	}
	return "", true
}

// lock records the locks of a prepared transaction.
func (s *Subsystem) lock(proc string, sv *svc) {
	for _, item := range sv.spec.ReadSet {
		ls := s.lockState(item)
		if ls.readers == nil {
			ls.readers = make(map[string]int)
		}
		ls.readers[proc]++
	}
	for item := range sv.deltas {
		ls := s.lockState(item)
		if ls.writers == nil {
			ls.writers = make(map[string]int)
		}
		switch {
		case len(ls.writers) == 0:
			if sv.spec.Commutative {
				ls.commFam = sv.family
			} else {
				ls.commFam = ""
			}
		case !sv.spec.Commutative || ls.commFam != sv.family:
			// Mixing families (only possible when all holders are this
			// same proc) degrades the item to the exclusive regime.
			ls.commFam = ""
		}
		ls.writers[proc]++
	}
}

// unlock releases the locks of a prepared transaction.
func (s *Subsystem) unlock(t *txn) {
	sv := s.services[t.service]
	for _, item := range sv.spec.ReadSet {
		if ls := s.locks[item]; ls != nil && ls.readers != nil {
			ls.readers[t.proc]--
			if ls.readers[t.proc] <= 0 {
				delete(ls.readers, t.proc)
			}
		}
	}
	for item := range sv.deltas {
		if ls := s.locks[item]; ls != nil && ls.writers[t.proc] > 0 {
			ls.writers[t.proc]--
			if ls.writers[t.proc] <= 0 {
				delete(ls.writers, t.proc)
			}
			if len(ls.writers) == 0 {
				ls.commFam = ""
			}
		}
	}
}

func (s *Subsystem) lockState(item string) *lockState {
	ls := s.locks[item]
	if ls == nil {
		ls = &lockState{}
		s.locks[item] = ls
	}
	return ls
}

// applyLocked applies a transaction's writes to the store and journal.
func (s *Subsystem) applyLocked(t *txn) {
	for item, d := range t.writes {
		s.store[item] += d
		s.dPut(durData+item, s.store[item])
		s.seq++
		s.journal = append(s.journal, Mutation{
			Seq: s.seq, Tx: t.id, Proc: t.proc, Service: t.service, Item: item, Delta: d,
		})
	}
}

// CommitPrepared commits an in-doubt transaction (second phase of 2PC):
// its writes are applied and its locks released.
func (s *Subsystem) CommitPrepared(id TxID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.inDoubt[id]
	if !ok {
		return fmt.Errorf("subsystem %s: transaction %d is not in doubt", s.name, id)
	}
	if err := s.weakCommittableLocked(t); err != nil {
		// Weak-order dependencies must have committed first (Section
		// 3.6); strongly locked transactions have none and pass.
		return err
	}
	s.applyLocked(t)
	if len(t.weakDeps) == 0 {
		s.unlock(t)
	}
	s.resolved[id] = true
	s.recordFateLocked(t, true)
	delete(s.inDoubt, id)
	return nil
}

// AbortPrepared rolls an in-doubt transaction back: nothing is applied
// and its locks are released. Atomicity guarantees no effects.
func (s *Subsystem) AbortPrepared(id TxID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.inDoubt[id]
	if !ok {
		return fmt.Errorf("subsystem %s: transaction %d is not in doubt", s.name, id)
	}
	s.aborts++
	s.m.Inc(metrics.SubAborts)
	if len(t.weakDeps) == 0 {
		s.unlock(t)
	}
	s.resolved[id] = false
	s.recordFateLocked(t, false)
	delete(s.inDoubt, id)
	return nil
}

// TxFate reports the durable fate of a transaction that was once in
// doubt here: committed (true) or rolled back (false). known is false
// for transactions still in doubt or never prepared at this subsystem.
// Crash recovery consults it when a presumed resolution finds the
// transaction already gone — the crash hit the window between the
// subsystem-side resolution and its log record, and the log must record
// the fate that actually happened.
func (s *Subsystem) TxFate(id TxID) (committed, known bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, inDoubt := s.inDoubt[id]; inDoubt {
		return false, false
	}
	committed, known = s.resolved[id]
	return committed, known
}

// InDoubtRecord describes a prepared transaction awaiting 2PC
// resolution; exposed for crash recovery.
type InDoubtRecord struct {
	Tx      TxID
	Proc    string
	Service string
}

// InDoubt returns the prepared transactions, sorted by id.
func (s *Subsystem) InDoubt() []InDoubtRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]InDoubtRecord, 0, len(s.inDoubt))
	for _, t := range s.inDoubt {
		out = append(out, InDoubtRecord{Tx: t.id, Proc: t.proc, Service: t.service})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tx < out[j].Tx })
	return out
}

// Get returns the committed value of an item.
func (s *Subsystem) Get(item string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store[item]
}

// Set initializes an item's value (test/setup hook). The value is
// recorded as the item's baseline, which durable recovery adds beneath
// the log-derived deltas.
func (s *Subsystem) Set(item string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store[item] = v
	s.baselines[item] = v
	s.dPut(durBase+item, v)
	s.dPut(durData+item, v)
}

// Snapshot returns a copy of the committed store.
func (s *Subsystem) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.store))
	for k, v := range s.store {
		out[k] = v
	}
	return out
}

// Journal returns a copy of the applied-mutation journal.
func (s *Subsystem) Journal() []Mutation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Mutation(nil), s.journal...)
}

// Stats reports counters: total invocations, aborted invocations and
// lock denials.
func (s *Subsystem) Stats() (invocations, aborts, lockDenials int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invocations, s.aborts, s.lockDenials
}

// Lookup returns the spec of a registered service.
func (s *Subsystem) Lookup(service string) (activity.Spec, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.services[service]
	if !ok {
		return activity.Spec{}, false
	}
	return sv.spec, true
}
