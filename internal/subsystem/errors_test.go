package subsystem

import (
	"errors"
	"testing"
)

// TestErrorTaxonomy pins that every boundary failure is distinguishable
// via errors.Is and carries its context via errors.As.
func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		kind  error
		other []error
	}{
		{ErrLocked, []error{ErrAborted, ErrTransient, ErrTimeout}},
		{ErrAborted, []error{ErrLocked, ErrTransient, ErrTimeout}},
		{ErrTransient, []error{ErrLocked, ErrAborted, ErrTimeout}},
		{ErrTimeout, []error{ErrLocked, ErrAborted, ErrTransient}},
	}
	for _, c := range cases {
		err := error(&SubsystemError{Subsystem: "pdm", Service: "enter", Kind: c.kind, Detail: "d"})
		if !errors.Is(err, c.kind) {
			t.Errorf("wrapped %v not matched by errors.Is", c.kind)
		}
		for _, o := range c.other {
			if errors.Is(err, o) {
				t.Errorf("wrapped %v wrongly matches %v", c.kind, o)
			}
		}
		var se *SubsystemError
		if !errors.As(err, &se) || se.Subsystem != "pdm" || se.Service != "enter" {
			t.Errorf("errors.As lost the context of %v", c.kind)
		}
		if FailureKind(err) != c.kind {
			t.Errorf("FailureKind(%v) = %v", err, FailureKind(err))
		}
	}
	if FailureKind(errors.New("unrelated")) != nil {
		t.Error("FailureKind invented a kind for an unrelated error")
	}
	if IsInvocationFailure(&SubsystemError{Kind: ErrLocked}) {
		t.Error("a lock conflict is not an invocation failure")
	}
	for _, k := range []error{ErrAborted, ErrTransient, ErrTimeout} {
		if !IsInvocationFailure(&SubsystemError{Kind: k}) {
			t.Errorf("%v not recognized as invocation failure", k)
		}
	}
}

// TestInvokeReturnsTypedErrors pins that Invoke's failures carry the
// subsystem and service.
func TestInvokeReturnsTypedErrors(t *testing.T) {
	s := newSub(t)
	res, err := s.Invoke("P1", "enter", Prepare)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	// A second process hits the write lock.
	_, err = s.Invoke("P2", "enter", Prepare)
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("want ErrLocked, got %v", err)
	}
	var se *SubsystemError
	if !errors.As(err, &se) || se.Subsystem != "pdm" || se.Service != "enter" || se.Detail == "" {
		t.Fatalf("lock error %v lacks context", err)
	}
	if err := s.AbortPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
}

// TestInvokeIdem pins the idempotent invoke: the first call executes,
// replays return the recorded outcome without re-executing, and lookups
// resolve the ambiguity of lost replies.
func TestInvokeIdem(t *testing.T) {
	s := newSub(t)

	if _, ok := s.LookupIdem("k1"); ok {
		t.Fatal("lookup hit before any invocation")
	}
	res1, replayed, err := s.InvokeIdem("k1", "P1", "enter", Prepare)
	if err != nil || replayed {
		t.Fatalf("first call: res=%v replayed=%v err=%v", res1, replayed, err)
	}
	res2, replayed, err := s.InvokeIdem("k1", "P1", "enter", Prepare)
	if err != nil || !replayed {
		t.Fatalf("second call not replayed (err=%v)", err)
	}
	if res2.Tx != res1.Tx {
		t.Fatalf("replay returned a different transaction (%d vs %d)", res2.Tx, res1.Tx)
	}
	rec, ok := s.LookupIdem("k1")
	if !ok || rec.Tx != res1.Tx {
		t.Fatalf("lookup: ok=%v rec=%v", ok, rec)
	}
	entries, replays := s.IdemStats()
	if entries != 1 || replays != 1 {
		t.Fatalf("idem stats entries=%d replays=%d", entries, replays)
	}
	// Exactly one local transaction exists: only one prepared tx to
	// commit, and the effect applies once.
	if err := s.CommitPrepared(res1.Tx); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["bom"]; got != 1 {
		t.Fatalf("bom = %d, want 1 (exactly-once)", got)
	}
	// A fresh key executes a fresh transaction.
	res3, replayed, err := s.InvokeIdem("k2", "P1", "enter", Prepare)
	if err != nil || replayed || res3.Tx == res1.Tx {
		t.Fatalf("fresh key reused the old outcome: res=%v replayed=%v err=%v", res3, replayed, err)
	}
	if err := s.AbortPrepared(res3.Tx); err != nil {
		t.Fatal(err)
	}
}

// TestInvokeIdemFailuresNotRecorded pins that failed executions leave
// no dedup record: an abort has no effects, so re-execution under the
// same key must be a real execution.
func TestInvokeIdemFailuresNotRecorded(t *testing.T) {
	s := newSub(t)
	// Occupy the lock so the keyed invoke fails with ErrLocked.
	res, err := s.Invoke("P1", "enter", Prepare)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.InvokeIdem("k1", "P2", "enter", Prepare); !errors.Is(err, ErrLocked) {
		t.Fatalf("want ErrLocked, got %v", err)
	}
	if _, ok := s.LookupIdem("k1"); ok {
		t.Fatal("failed execution was recorded in the idempotency table")
	}
	if err := s.AbortPrepared(res.Tx); err != nil {
		t.Fatal(err)
	}
	// Now the same key executes for real.
	res2, replayed, err := s.InvokeIdem("k1", "P2", "enter", Prepare)
	if err != nil || replayed {
		t.Fatalf("retry under same key after failure: replayed=%v err=%v", replayed, err)
	}
	if err := s.AbortPrepared(res2.Tx); err != nil {
		t.Fatal(err)
	}
}
