package subsystem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"transproc/internal/activity"
)

// Property: for any random sequence of invocations, commits, rollbacks
// and compensations, every item's value equals the net sum of applied
// deltas, and after resolving all in-doubt transactions no locks remain.
func TestPropertyCounterAccounting(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New("rm", seed)
		s.MustRegister(activity.Spec{
			Name: "inc", Kind: activity.Compensatable, Subsystem: "rm",
			Compensation: "dec", WriteSet: []string{"x"},
		})
		s.MustRegister(activity.Spec{
			Name: "piv", Kind: activity.Pivot, Subsystem: "rm", WriteSet: []string{"y"},
		})

		var want int64
		var inDoubt []TxID
		ops := int(opsRaw % 64)
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0: // committed increment
				if _, err := s.Invoke("P", "inc", AutoCommit); err == nil {
					want++
				}
			case 1: // compensation (only meaningful if something to undo)
				if want > 0 {
					if _, err := s.Invoke("P", "dec", AutoCommit); err == nil {
						want--
					}
				}
			case 2: // prepared pivot, resolved randomly
				res, err := s.Invoke("P", "piv", Prepare)
				if err == nil {
					inDoubt = append(inDoubt, res.Tx)
				}
			case 3: // resolve one in-doubt
				if len(inDoubt) > 0 {
					tx := inDoubt[0]
					inDoubt = inDoubt[1:]
					if rng.Intn(2) == 0 {
						s.CommitPrepared(tx)
					} else {
						s.AbortPrepared(tx)
					}
				}
			}
		}
		if s.Get("x") != want {
			t.Logf("seed %d: x = %d, want %d", seed, s.Get("x"), want)
			return false
		}
		// Resolve the rest; afterwards nothing is in doubt and another
		// process can lock everything.
		for _, tx := range inDoubt {
			s.AbortPrepared(tx)
		}
		if len(s.InDoubt()) != 0 {
			return false
		}
		if _, err := s.Invoke("Q", "piv", AutoCommit); err != nil {
			t.Logf("seed %d: residual lock: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the journal's net delta per item always equals the stored
// value.
func TestPropertyJournalConsistency(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New("rm", seed)
		s.MustRegister(activity.Spec{
			Name: "a", Kind: activity.Compensatable, Subsystem: "rm",
			Compensation: "a⁻¹", WriteSet: []string{"i", "j"},
		})
		s.MustRegister(activity.Spec{
			Name: "b", Kind: activity.Retriable, Subsystem: "rm",
			WriteSet: []string{"j"}, FailureProb: 0.3,
		})
		for i := 0; i < int(opsRaw%40); i++ {
			svc := []string{"a", "a⁻¹", "b"}[rng.Intn(3)]
			s.Invoke("P", svc, AutoCommit)
		}
		net := map[string]int64{}
		for _, m := range s.Journal() {
			net[m.Item] += m.Delta
		}
		for item, v := range s.Snapshot() {
			if net[item] != v {
				t.Logf("seed %d: %s journal %d vs store %d", seed, item, net[item], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a prepared transaction blocks exactly conflicting work and
// nothing else, and resolution is idempotent-error (second resolve
// fails).
func TestPropertyPreparedIsolation(t *testing.T) {
	f := func(seed int64) bool {
		s := New("rm", seed)
		s.MustRegister(activity.Spec{
			Name: "w1", Kind: activity.Pivot, Subsystem: "rm", WriteSet: []string{"k1"},
		})
		s.MustRegister(activity.Spec{
			Name: "w2", Kind: activity.Pivot, Subsystem: "rm", WriteSet: []string{"k2"},
		})
		res, err := s.Invoke("P", "w1", Prepare)
		if err != nil {
			return false
		}
		// Disjoint service unaffected.
		if _, err := s.Invoke("Q", "w2", AutoCommit); err != nil {
			return false
		}
		// Conflicting service blocked.
		if _, err := s.Invoke("Q", "w1", AutoCommit); !errors.Is(err, ErrLocked) {
			return false
		}
		if err := s.CommitPrepared(res.Tx); err != nil {
			return false
		}
		if err := s.CommitPrepared(res.Tx); err == nil {
			return false
		}
		return s.Get("k1") == 1 && s.Get("k2") == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
