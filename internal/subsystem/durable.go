package subsystem

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"transproc/internal/metrics"
	"transproc/internal/store"
)

// Durable subsystem state. With a store attached (AttachStore), the
// resource manager's ACID state is written through to slotted heap
// pages, so a crash kills the in-memory maps but a restart can rebuild
// them from disk and reconcile any torn edge against the scheduler's
// WAL (scheduler.RecoverDurable). The record-key layout:
//
//	d/<item>            committed value of a data item
//	b/<item>            baseline set via Set (distinguishes an item
//	                    whose value returned to zero from one that
//	                    never existed)
//	i/<tx>/<proc>/<svc> intent: transaction <tx> is prepared (in
//	                    doubt) here, invoked by <proc> on <svc>
//	f/<tx>/<proc>/<svc> fate: 1 = committed, 0 = rolled back
//	m/nexttx            transaction-id floor
//
// Process names must not contain '/' (service names may — the intent
// and fate keys are parsed positionally: tx, then proc, then the rest).
//
// The store is a cache of applied state plus 2PC bookkeeping; the WAL
// stays the source of truth. Durability of any individual record is
// only guaranteed after FlushStore — the composed recovery re-derives
// whatever a crash took (or tore) from the log. Weak-order commit
// dependencies (weakDeps) are deliberately not persisted: a restored
// intent re-enters the strict-2PL regime, which is conservative.

const (
	durData   = "d/"
	durBase   = "b/"
	durIntent = "i/"
	durFate   = "f/"
	durNextTx = "m/nexttx"
)

// FateRecord is the durable resolution of a once-prepared transaction.
type FateRecord struct {
	Committed bool
	Proc      string
	Service   string
}

// AttachStore binds a durable store and loads its contents into the
// in-memory state: data items, baselines, the transaction-id floor,
// resolution fates, and prepared intents (restored as in-doubt
// transactions holding their locks — unless a fate record proves the
// crash hit after resolution, in which case the fate wins and the
// stale intent is dropped).
func (s *Subsystem) AttachStore(st *store.Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.durable = st
	s.baselines = make(map[string]int64)
	s.fates = make(map[TxID]FateRecord)

	st.Scan(durData, func(key string, v int64) bool {
		s.store[key[len(durData):]] = v
		return true
	})
	st.Scan(durBase, func(key string, v int64) bool {
		s.baselines[key[len(durBase):]] = v
		return true
	})
	if v, ok := st.Get(durNextTx); ok && TxID(v) > s.nextTx {
		s.nextTx = TxID(v)
	}

	var err error
	st.Scan(durFate, func(key string, v int64) bool {
		tx, proc, svc, perr := parseTxKey(key, durFate)
		if perr != nil {
			err = perr
			return false
		}
		s.resolved[tx] = v != 0
		s.fates[tx] = FateRecord{Committed: v != 0, Proc: proc, Service: svc}
		if tx > s.nextTx {
			s.nextTx = tx
		}
		return true
	})
	if err != nil {
		return err
	}

	type intent struct {
		tx        TxID
		proc, svc string
	}
	var intents []intent
	st.Scan(durIntent, func(key string, _ int64) bool {
		tx, proc, svc, perr := parseTxKey(key, durIntent)
		if perr != nil {
			err = perr
			return false
		}
		intents = append(intents, intent{tx: tx, proc: proc, svc: svc})
		return true
	})
	if err != nil {
		return err
	}
	sort.Slice(intents, func(i, j int) bool { return intents[i].tx < intents[j].tx })
	for _, in := range intents {
		if _, resolved := s.resolved[in.tx]; resolved {
			// Crash between resolution and intent cleanup: the fate wins.
			st.Delete(durIntent + txKey(in.tx, in.proc, in.svc))
			continue
		}
		if rerr := s.restorePreparedLocked(in.tx, in.proc, in.svc); rerr != nil {
			return rerr
		}
	}
	return nil
}

func txKey(tx TxID, proc, svc string) string {
	return strconv.FormatInt(int64(tx), 10) + "/" + proc + "/" + svc
}

func parseTxKey(key, prefix string) (TxID, string, string, error) {
	rest := key[len(prefix):]
	parts := strings.SplitN(rest, "/", 3)
	if len(parts) != 3 {
		return 0, "", "", fmt.Errorf("subsystem: malformed durable key %q", key)
	}
	tx, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, "", "", fmt.Errorf("subsystem: malformed durable key %q: %w", key, err)
	}
	return TxID(tx), parts[1], parts[2], nil
}

// DurableStore returns the attached store (nil when none).
func (s *Subsystem) DurableStore() *store.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// FlushStore flushes the attached store's dirty pages (no-op without
// one). It returns the number of pages written and the first deferred
// write-through error, if any.
func (s *Subsystem) FlushStore() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durable == nil {
		return 0, nil
	}
	if s.durableErr != nil {
		return 0, s.durableErr
	}
	return s.durable.Flush()
}

// Baselines returns the items initialized via Set and their values.
func (s *Subsystem) Baselines() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.baselines))
	for k, v := range s.baselines {
		out[k] = v
	}
	return out
}

// Fates returns the durable resolutions loaded by AttachStore, keyed
// by transaction id. Composed recovery uses them to account for
// transactions the subsystem resolved in the window before the crash
// cut off their log record.
func (s *Subsystem) Fates() map[TxID]FateRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[TxID]FateRecord, len(s.fates))
	for k, v := range s.fates {
		out[k] = v
	}
	return out
}

// EnsureTxFloor raises the transaction-id counter to at least floor, so
// ids the log already mentions are never recycled after a restart.
func (s *Subsystem) EnsureTxFloor(floor TxID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if floor > s.nextTx {
		s.nextTx = floor
		s.dPut(durNextTx, int64(floor))
	}
}

// RestorePrepared re-creates an in-doubt transaction after a restart:
// the write-ahead log shows <tx> prepared at this subsystem but the
// crash took the in-memory transaction (and possibly its durable
// intent). The restored transaction holds its strict-2PL locks again
// and awaits 2PC resolution. Restoring an already in-doubt or already
// resolved transaction is a no-op.
func (s *Subsystem) RestorePrepared(id TxID, proc, service string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, resolved := s.resolved[id]; resolved {
		return nil
	}
	return s.restorePreparedLocked(id, proc, service)
}

func (s *Subsystem) restorePreparedLocked(id TxID, proc, service string) error {
	if _, inDoubt := s.inDoubt[id]; inDoubt {
		return nil
	}
	sv, ok := s.services[service]
	if !ok {
		return fmt.Errorf("subsystem %s: restoring tx %d: unknown service %q", s.name, id, service)
	}
	t := &txn{
		id:      id,
		proc:    proc,
		service: service,
		writes:  make(map[string]int64, len(sv.deltas)),
		reads:   map[string]int64{},
	}
	for item, d := range sv.deltas {
		t.writes[item] = d
	}
	// Re-acquire unconditionally: the pre-crash acquisition proved the
	// locks compatible, and restarts restore intents before any new
	// invocation runs.
	s.lock(proc, sv)
	t.prepared = true
	s.inDoubt[t.id] = t
	if id > s.nextTx {
		s.nextTx = id
		s.dPut(durNextTx, int64(id))
	}
	s.dPut(durIntent+txKey(id, proc, service), 1)
	return nil
}

// ReconcileDurable forces the data items to the expected image the
// composed recovery derived from the WAL: page-level redo for items
// the log committed but a crash kept off the pages, and undo for items
// the pages show but the log never committed (an applied local
// transaction whose record the crash cut off). Items whose expected
// value is zero with no baseline are deleted, so the page image is a
// pure function of the logical state. Returns the redo/undo item
// counts.
func (s *Subsystem) ReconcileDurable(expected map[string]int64) (redo, undo int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durable == nil {
		return 0, 0, fmt.Errorf("subsystem %s: reconcile without a durable store", s.name)
	}
	items := make(map[string]bool, len(expected)+len(s.store))
	for item := range expected {
		items[item] = true
	}
	for item := range s.store {
		items[item] = true
	}
	sorted := make([]string, 0, len(items))
	for item := range items {
		sorted = append(sorted, item)
	}
	sort.Strings(sorted)
	for _, item := range sorted {
		want := expected[item]
		cur, have := s.store[item]
		_, hasBase := s.baselines[item]
		if want == 0 && !hasBase {
			if have {
				delete(s.store, item)
				if derr := s.durable.Delete(durData + item); derr != nil {
					return redo, undo, derr
				}
				if cur != 0 {
					undo++
					s.m.Inc(metrics.StoreUndoItems)
				}
			}
			continue
		}
		if have && cur == want {
			continue
		}
		s.store[item] = want
		if derr := s.durable.Put(durData+item, want); derr != nil {
			return redo, undo, derr
		}
		if !have || cur < want {
			redo++
			s.m.Inc(metrics.StoreRedoItems)
		} else {
			undo++
			s.m.Inc(metrics.StoreUndoItems)
		}
	}
	return redo, undo, nil
}

// dPut writes through to the durable store (no-op without one). Write
// errors are deferred to FlushStore — the WAL remains the source of
// truth, so a lost write-through is repaired by the next recovery.
func (s *Subsystem) dPut(key string, v int64) {
	if s.durable == nil {
		return
	}
	if err := s.durable.Put(key, v); err != nil && s.durableErr == nil {
		s.durableErr = err
	}
}

// dDelete removes a durable record (no-op without a store).
func (s *Subsystem) dDelete(key string) {
	if s.durable == nil {
		return
	}
	if err := s.durable.Delete(key); err != nil && s.durableErr == nil {
		s.durableErr = err
	}
}

// recordFateLocked persists a transaction's resolution and drops its
// intent.
func (s *Subsystem) recordFateLocked(t *txn, committed bool) {
	if s.durable == nil {
		return
	}
	v := int64(0)
	if committed {
		v = 1
	}
	s.dPut(durFate+txKey(t.id, t.proc, t.service), v)
	s.dDelete(durIntent + txKey(t.id, t.proc, t.service))
	if s.fates != nil {
		s.fates[t.id] = FateRecord{Committed: committed, Proc: t.proc, Service: t.service}
	}
}

// FlushStores flushes every attached store in the federation.
func (f *Federation) FlushStores() error {
	for _, name := range f.order {
		if _, err := f.subs[name].FlushStore(); err != nil {
			return fmt.Errorf("federation: flushing %s: %w", name, err)
		}
	}
	return nil
}

// Durable reports whether any subsystem in the federation has a store
// attached.
func (f *Federation) Durable() bool {
	for _, name := range f.order {
		if f.subs[name].DurableStore() != nil {
			return true
		}
	}
	return false
}
