package subsystem

import (
	"fmt"
	"sort"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/metrics"
)

// Federation is the set of transactional subsystems a process scheduler
// coordinates (Â, the union of all provided services). It routes service
// invocations to the owning subsystem and derives the activity registry
// and conflict table the scheduler works with.
type Federation struct {
	subs  map[string]*Subsystem
	route map[string]*Subsystem // service -> subsystem
	order []string
}

// NewFederation returns an empty federation.
func NewFederation() *Federation {
	return &Federation{
		subs:  make(map[string]*Subsystem),
		route: make(map[string]*Subsystem),
	}
}

// Add registers a subsystem and indexes its services. Service names must
// be unique across the federation.
func (f *Federation) Add(s *Subsystem) error {
	if _, dup := f.subs[s.Name()]; dup {
		return fmt.Errorf("federation: duplicate subsystem %q", s.Name())
	}
	for _, svc := range s.Services() {
		if owner, dup := f.route[svc]; dup {
			return fmt.Errorf("federation: service %q provided by both %q and %q", svc, owner.Name(), s.Name())
		}
	}
	f.subs[s.Name()] = s
	f.order = append(f.order, s.Name())
	for _, svc := range s.Services() {
		f.route[svc] = s
	}
	return nil
}

// MustAdd is Add that panics on error.
func (f *Federation) MustAdd(s *Subsystem) {
	if err := f.Add(s); err != nil {
		panic(err)
	}
}

// Subsystem returns a subsystem by name.
func (f *Federation) Subsystem(name string) (*Subsystem, bool) {
	s, ok := f.subs[name]
	return s, ok
}

// Subsystems returns the subsystems in registration order.
func (f *Federation) Subsystems() []*Subsystem {
	out := make([]*Subsystem, 0, len(f.order))
	for _, n := range f.order {
		out = append(out, f.subs[n])
	}
	return out
}

// SetMetrics attaches an observability registry to every subsystem of
// the federation (nil detaches).
func (f *Federation) SetMetrics(m *metrics.Registry) {
	for _, name := range f.order {
		f.subs[name].SetMetrics(m)
	}
}

// Owner returns the subsystem providing a service.
func (f *Federation) Owner(service string) (*Subsystem, bool) {
	s, ok := f.route[service]
	return s, ok
}

// Lockable reports whether proc could currently acquire the item locks
// of the named service (false for unknown services).
func (f *Federation) Lockable(proc, service string) bool {
	s, ok := f.route[service]
	if !ok {
		return false
	}
	return s.Lockable(proc, service)
}

// LockBlocker routes Subsystem.LockBlocker to the owning subsystem:
// whether proc could acquire the service's item locks, and if not, one
// process currently holding a conflicting lock.
func (f *Federation) LockBlocker(proc, service string) (string, bool) {
	s, ok := f.route[service]
	if !ok {
		return "", false
	}
	return s.LockBlocker(proc, service)
}

// Invoke routes an invocation to the owning subsystem.
func (f *Federation) Invoke(proc, service string, mode Mode) (*Result, error) {
	s, ok := f.route[service]
	if !ok {
		return nil, fmt.Errorf("federation: unknown service %q", service)
	}
	return s.Invoke(proc, service, mode)
}

// InvokeIdem routes an idempotency-keyed invocation to the owning
// subsystem (see Subsystem.InvokeIdem).
func (f *Federation) InvokeIdem(key, proc, service string, mode Mode) (*Result, bool, error) {
	s, ok := f.route[service]
	if !ok {
		return nil, false, fmt.Errorf("federation: unknown service %q", service)
	}
	return s.InvokeIdem(key, proc, service, mode)
}

// LookupIdem resolves an idempotency key at the service's owning
// subsystem (see Subsystem.LookupIdem).
func (f *Federation) LookupIdem(service, key string) (*Result, bool) {
	s, ok := f.route[service]
	if !ok {
		return nil, false
	}
	return s.LookupIdem(key)
}

// Spec returns the spec of a service anywhere in the federation.
func (f *Federation) Spec(service string) (activity.Spec, bool) {
	s, ok := f.route[service]
	if !ok {
		return activity.Spec{}, false
	}
	return s.Lookup(service)
}

// Services returns all service names across the federation, sorted.
func (f *Federation) Services() []string {
	out := make([]string, 0, len(f.route))
	for svc := range f.route {
		out = append(out, svc)
	}
	sort.Strings(out)
	return out
}

// Registry builds the activity registry Â of the federation.
func (f *Federation) Registry() (*activity.Registry, error) {
	reg := activity.NewRegistry()
	for _, name := range f.order {
		s := f.subs[name]
		for _, svc := range s.Services() {
			spec, _ := s.Lookup(svc)
			if err := reg.Register(spec); err != nil {
				return nil, err
			}
		}
	}
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	return reg, nil
}

// ConflictTable derives the conflict relation from the declared
// read/write sets of all services (plus perfect commutativity for
// compensations).
func (f *Federation) ConflictTable() (*conflict.Table, error) {
	reg, err := f.Registry()
	if err != nil {
		return nil, err
	}
	return conflict.FromRegistry(reg), nil
}

// Snapshot returns the committed stores of all subsystems, keyed
// "subsystem/item".
func (f *Federation) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for _, name := range f.order {
		for item, v := range f.subs[name].Snapshot() {
			out[name+"/"+item] = v
		}
	}
	return out
}

// InDoubt returns all prepared transactions across subsystems, keyed by
// subsystem name.
func (f *Federation) InDoubt() map[string][]InDoubtRecord {
	out := make(map[string][]InDoubtRecord)
	for _, name := range f.order {
		if recs := f.subs[name].InDoubt(); len(recs) > 0 {
			out[name] = recs
		}
	}
	return out
}
