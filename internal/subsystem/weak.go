package subsystem

import (
	"errors"
	"fmt"

	"transproc/internal/activity"
	"transproc/internal/metrics"
)

// Weak-order support (Section 3.6 of the paper): under the weak order,
// two conflicting activities may execute in parallel inside the
// subsystem as long as the overall effect equals the strong order. The
// subsystem realizes this with commit-order serializability: a weakly
// invoked transaction records the in-doubt transactions it conflicts
// with as commit-order dependencies; its commit is refused until they
// have committed, and if one of them aborts, the dependent must abort
// (and be re-invoked) as well — without this counting as a failure of
// its process.

// ErrOrder is returned by CommitPrepared when a weak-order dependency
// has not committed yet; the caller retries once it has.
var ErrOrder = fmt.Errorf("subsystem: weak-order dependency not yet committed")

// ErrDependencyAborted is returned when a weak-order dependency aborted:
// the dependent transaction has been rolled back and must be re-invoked.
var ErrDependencyAborted = fmt.Errorf("subsystem: weak-order dependency aborted; re-invoke")

// InvokeWeak executes an invocation under the weak order: lock conflicts
// with in-doubt transactions of other processes do not block; instead
// they become commit-order dependencies of the new transaction. The
// transaction is always left in the prepared state; resolve it with
// CommitPrepared (which enforces the commit order) or AbortPrepared.
func (s *Subsystem) InvokeWeak(proc, service string) (*Result, []TxID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.services[service]
	if !ok {
		return nil, nil, fmt.Errorf("subsystem %s: unknown service %q", s.name, service)
	}
	s.invocations++
	s.m.Inc(metrics.SubInvocations)

	// Outcome decision (deterministic rules, forced failures,
	// probability) as in Invoke.
	fail := false
	if s.failRules[proc+"/"+service] {
		fail = true
	} else if s.forceFail[service] > 0 {
		s.forceFail[service]--
		fail = true
	} else if sv.spec.FailureProb > 0 && s.rng.Float64() < sv.spec.FailureProb {
		fail = true
	}
	if fail {
		s.aborts++
		s.m.Inc(metrics.SubAborts)
		return &Result{Outcome: activity.Aborted}, nil,
			&SubsystemError{Subsystem: s.name, Service: service, Kind: ErrAborted}
	}

	// Commit-order dependencies: every in-doubt transaction of another
	// process whose service conflicts on data items.
	var deps []TxID
	for id, t := range s.inDoubt {
		if t.proc == proc {
			continue
		}
		if s.itemConflictLocked(sv, s.services[t.service]) {
			deps = append(deps, id)
		}
	}

	s.nextTx++
	s.dPut(durNextTx, int64(s.nextTx))
	t := &txn{
		id:      s.nextTx,
		proc:    proc,
		service: service,
		writes:  make(map[string]int64, len(sv.deltas)),
		reads:   make(map[string]int64, len(sv.spec.ReadSet)),
	}
	for _, item := range sv.spec.ReadSet {
		t.reads[item] = s.store[item]
	}
	for item, d := range sv.deltas {
		t.writes[item] = d
	}
	t.prepared = true
	t.weakDeps = append(t.weakDeps, deps...)
	s.inDoubt[t.id] = t
	s.dPut(durIntent+txKey(t.id, proc, service), 1)
	s.m.Observe(metrics.HistInDoubt, int64(len(s.inDoubt)))
	return &Result{Tx: t.id, Outcome: activity.Prepared, Reads: t.reads}, deps, nil
}

// itemConflictLocked reports whether two services touch conflicting data
// items (write/write or read/write overlap).
func (s *Subsystem) itemConflictLocked(a, b *svc) bool {
	if a == nil || b == nil {
		return false
	}
	for item := range a.deltas {
		if _, w := b.deltas[item]; w {
			return true
		}
		for _, r := range b.spec.ReadSet {
			if r == item {
				return true
			}
		}
	}
	for item := range b.deltas {
		for _, r := range a.spec.ReadSet {
			if r == item {
				return true
			}
		}
	}
	return false
}

// CommitPreparedWeak commits a weakly invoked transaction while
// enforcing the commit order: it fails with ErrOrder while a dependency
// is still in doubt, and with ErrDependencyAborted (after rolling the
// transaction back) when a dependency aborted.
func (s *Subsystem) CommitPreparedWeak(id TxID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.inDoubt[id]
	if !ok {
		return fmt.Errorf("subsystem %s: transaction %d is not in doubt", s.name, id)
	}
	if err := s.weakCommittableLocked(t); err != nil {
		if errors.Is(err, ErrDependencyAborted) {
			s.aborts++
			s.m.Inc(metrics.SubAborts)
			s.resolved[id] = false
			s.recordFateLocked(t, false)
			delete(s.inDoubt, id)
		}
		return err
	}
	s.applyLocked(t)
	s.resolved[id] = true
	s.recordFateLocked(t, true)
	delete(s.inDoubt, id)
	return nil
}

// TxService returns the service an in-doubt transaction executes.
func (s *Subsystem) TxService(id TxID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.inDoubt[id]
	if !ok {
		return "", false
	}
	return t.service, true
}

// WeakCommittable reports whether a weakly invoked transaction could
// commit right now: nil when all dependencies committed, ErrOrder while
// one is still in doubt, ErrDependencyAborted when one aborted (the
// transaction is NOT rolled back by this check; CommitPreparedWeak or
// AbortPrepared does that).
func (s *Subsystem) WeakCommittable(id TxID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.inDoubt[id]
	if !ok {
		return fmt.Errorf("subsystem %s: transaction %d is not in doubt", s.name, id)
	}
	return s.weakCommittableLocked(t)
}

func (s *Subsystem) weakCommittableLocked(t *txn) error {
	for _, dep := range t.weakDeps {
		if _, still := s.inDoubt[dep]; still {
			return ErrOrder
		}
		if !s.resolved[dep] {
			return ErrDependencyAborted
		}
	}
	return nil
}
