package subsystem

import (
	"errors"
	"fmt"
)

// ErrLocked is returned when an invocation cannot acquire its locks
// because a transaction of another process holds them (possibly a
// prepared, in-doubt transaction whose commit is deferred).
var ErrLocked = errors.New("subsystem: lock conflict")

// ErrAborted is returned when the invocation's local transaction aborted
// (forced failure or injected failure probability).
var ErrAborted = errors.New("subsystem: local transaction aborted")

// ErrTransient is returned by an unreliable transport (internal/chaos)
// when an invocation could not be delivered to the subsystem at all:
// the local transaction provably never executed, so redelivery is safe
// for any activity kind.
var ErrTransient = errors.New("subsystem: transient delivery failure")

// ErrTimeout is returned by an unreliable transport when no reply
// arrived in time. Unlike ErrTransient the invocation may or may not
// have executed; callers must resolve the ambiguity through the
// idempotency table (LookupIdem) before treating it as a failure.
var ErrTimeout = errors.New("subsystem: invocation timed out")

// SubsystemError is the typed error every subsystem-boundary failure is
// wrapped in: it names the subsystem and service and carries the error
// kind (one of the sentinels above, plus the weak-order sentinels), so
// call sites can route on errors.Is(err, ErrX) and still recover the
// failing service via errors.As.
type SubsystemError struct {
	// Subsystem is the owning resource manager ("" when routing failed
	// before an owner was known).
	Subsystem string
	// Service is the invoked service.
	Service string
	// Kind is the failure class: ErrLocked, ErrAborted, ErrTransient,
	// ErrTimeout, ErrOrder or ErrDependencyAborted.
	Kind error
	// Detail is an optional human-readable qualifier (e.g. the lock
	// holder, or "circuit open").
	Detail string
}

// Error formats "kind: subsystem/service (detail)".
func (e *SubsystemError) Error() string {
	msg := fmt.Sprintf("%v: %s/%s", e.Kind, e.Subsystem, e.Service)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Unwrap exposes the kind sentinel to errors.Is.
func (e *SubsystemError) Unwrap() error { return e.Kind }

// FailureKind extracts the kind sentinel of a subsystem-boundary error
// (nil when err carries none of the known sentinels).
func FailureKind(err error) error {
	for _, kind := range []error{ErrLocked, ErrAborted, ErrTransient, ErrTimeout, ErrOrder, ErrDependencyAborted} {
		if errors.Is(err, kind) {
			return kind
		}
	}
	return nil
}

// IsInvocationFailure reports whether err means "this invocation did
// not produce a prepared local transaction": a genuine local abort or a
// transport-level loss. Both engines treat such completions as failed
// invocations (transient for retriable activities, permanent
// otherwise); lock conflicts are not failures.
func IsInvocationFailure(err error) bool {
	return errors.Is(err, ErrAborted) || errors.Is(err, ErrTransient) || errors.Is(err, ErrTimeout)
}
