package subsystem

import "transproc/internal/activity"

// ResilientInvoker is the seam through which an engine reaches the
// subsystems when a resilience layer is configured (internal/chaos):
// the layer owns transport-level failure handling — typed retries with
// backoff for retriable activities, idempotent redelivery, circuit
// breakers — and surfaces to the engine only outcomes the scheduler
// already knows how to handle:
//
//   - (res, lat, nil): the invocation executed; res is its Result and
//     lat the extra virtual latency (spikes, backoff) the transport
//     added on top of the service cost.
//   - errors.Is(err, ErrLocked): a lock conflict at the subsystem; the
//     engine parks the activity as usual.
//   - IsInvocationFailure(err): the invocation failed — a genuine
//     local abort (ErrAborted) or a transport failure that exhausted
//     the typed retry policy (ErrTransient/ErrTimeout, both resolved
//     to provably-not-executed via the idempotency table first). The
//     engine re-invokes retriable activities and takes the ◁
//     alternative / backward-recovery path for everything else.
//
// key identifies the logical invocation for idempotent redelivery: the
// caller must use a fresh key per logical invocation (including each
// engine-level retry of a retriable activity, which is a new execution
// per the paper) and the layer reuses it across transport attempts.
type ResilientInvoker interface {
	InvokeResilient(proc, service string, kind activity.Kind, mode Mode, key string) (res *Result, lat int64, err error)
}
