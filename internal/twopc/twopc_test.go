package twopc

import (
	"testing"

	"transproc/internal/activity"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

func setup(t *testing.T) (*subsystem.Federation, *subsystem.Subsystem, *subsystem.Subsystem) {
	t.Helper()
	a := subsystem.New("a", 1)
	a.MustRegister(activity.Spec{Name: "pa", Kind: activity.Pivot, Subsystem: "a", WriteSet: []string{"x"}})
	b := subsystem.New("b", 2)
	b.MustRegister(activity.Spec{Name: "rb", Kind: activity.Retriable, Subsystem: "b", WriteSet: []string{"y"}})
	fed := subsystem.NewFederation()
	fed.MustAdd(a)
	fed.MustAdd(b)
	return fed, a, b
}

func prepareBoth(t *testing.T, a, b *subsystem.Subsystem) []Participant {
	t.Helper()
	ra, err := a.Invoke("P1", "pa", subsystem.Prepare)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Invoke("P1", "rb", subsystem.Prepare)
	if err != nil {
		t.Fatal(err)
	}
	return []Participant{
		{Sub: a, Tx: ra.Tx, Proc: "P1", Local: 2, Service: "pa"},
		{Sub: b, Tx: rb.Tx, Proc: "P1", Local: 3, Service: "rb"},
	}
}

func TestCommitAll(t *testing.T) {
	_, a, b := setup(t)
	log := wal.NewMemLog()
	c := New(log)
	parts := prepareBoth(t, a, b)
	if err := c.CommitAll("P1", parts); err != nil {
		t.Fatal(err)
	}
	if a.Get("x") != 1 || b.Get("y") != 1 {
		t.Fatal("both participants must be committed")
	}
	recs, _ := log.Records()
	if len(recs) != 3 { // decision + 2 resolutions
		t.Fatalf("log = %v", recs)
	}
	if recs[0].Type != wal.RecDecision {
		t.Fatal("decision must be logged before resolutions")
	}
}

func TestCommitAllEmpty(t *testing.T) {
	log := wal.NewMemLog()
	if err := New(log).CommitAll("P1", nil); err != nil {
		t.Fatal(err)
	}
	if recs, _ := log.Records(); len(recs) != 0 {
		t.Fatal("no decision for empty participant set")
	}
}

func TestAbortAll(t *testing.T) {
	_, a, b := setup(t)
	log := wal.NewMemLog()
	c := New(log)
	parts := prepareBoth(t, a, b)
	if err := c.AbortAll("P1", parts); err != nil {
		t.Fatal(err)
	}
	if a.Get("x") != 0 || b.Get("y") != 0 {
		t.Fatal("aborted participants must leave no effects")
	}
	recs, _ := log.Records()
	for _, r := range recs {
		if r.Type == wal.RecDecision {
			t.Fatal("presumed abort: no decision record")
		}
	}
}

func TestCrashAfterDecisionThenResolve(t *testing.T) {
	fed, a, b := setup(t)
	log := wal.NewMemLog()
	c := New(log)
	c.CrashAfterDecision = true
	parts := prepareBoth(t, a, b)
	// Record the prepared outcomes like the scheduler would.
	for _, p := range parts {
		log.Append(wal.Record{
			Type: wal.RecOutcome, Proc: "P1", Local: p.Local,
			Service: p.Service, Subsystem: p.Sub.Name(), Tx: int64(p.Tx), Outcome: "prepared",
		})
	}
	if err := c.CommitAll("P1", parts); err != ErrCrashed {
		t.Fatalf("err = %v", err)
	}
	if a.Get("x") != 0 {
		t.Fatal("nothing committed before crash")
	}
	// Recovery: presumed commit because the decision is durable.
	recs, _ := log.Records()
	images, err := wal.Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(log)
	committed, aborted, err := c2.Resolve(fed, images["P1"])
	if err != nil {
		t.Fatal(err)
	}
	if committed != 2 || aborted != 0 {
		t.Fatalf("resolve = %d committed, %d aborted", committed, aborted)
	}
	if a.Get("x") != 1 || b.Get("y") != 1 {
		t.Fatal("recovery must finish the commit")
	}
}

func TestCrashAfterFirstResolve(t *testing.T) {
	fed, a, b := setup(t)
	log := wal.NewMemLog()
	c := New(log)
	c.CrashAfterFirstResolve = true
	parts := prepareBoth(t, a, b)
	for _, p := range parts {
		log.Append(wal.Record{
			Type: wal.RecOutcome, Proc: "P1", Local: p.Local,
			Service: p.Service, Subsystem: p.Sub.Name(), Tx: int64(p.Tx), Outcome: "prepared",
		})
	}
	if err := c.CommitAll("P1", parts); err != ErrCrashed {
		t.Fatalf("err = %v", err)
	}
	recs, _ := log.Records()
	images, _ := wal.Analyze(recs)
	committed, _, err := New(log).Resolve(fed, images["P1"])
	if err != nil {
		t.Fatal(err)
	}
	if committed != 1 {
		t.Fatalf("exactly the unresolved participant must be committed, got %d", committed)
	}
	if a.Get("x") != 1 || b.Get("y") != 1 {
		t.Fatal("idempotent completion failed")
	}
}

func TestResolvePresumedAbort(t *testing.T) {
	fed, a, b := setup(t)
	log := wal.NewMemLog()
	parts := prepareBoth(t, a, b)
	for _, p := range parts {
		log.Append(wal.Record{
			Type: wal.RecOutcome, Proc: "P1", Local: p.Local,
			Service: p.Service, Subsystem: p.Sub.Name(), Tx: int64(p.Tx), Outcome: "prepared",
		})
	}
	// No decision logged: crash before the decision → presumed abort.
	recs, _ := log.Records()
	images, _ := wal.Analyze(recs)
	committed, aborted, err := New(log).Resolve(fed, images["P1"])
	if err != nil {
		t.Fatal(err)
	}
	if committed != 0 || aborted != 2 {
		t.Fatalf("resolve = %d, %d", committed, aborted)
	}
	if a.Get("x") != 0 || b.Get("y") != 0 {
		t.Fatal("presumed abort must leave no effects")
	}
}
