// Package twopc implements the atomic commitment of all
// non-compensatable activities of a process. Lemma 1 of the paper
// requires the commits of non-compensatable activities to be deferred
// until every conflicting predecessor process has committed, and
// Section 3.5 requires "the commitment of all non-compensatable
// activities of P_j … to be performed atomically by exploiting a two
// phase commit protocol in order to ensure that either all activities
// commit or none of them".
//
// The first phase (prepare) already happened when the subsystems
// executed the activities into the prepared state (subsystem.Prepare);
// the coordinator here implements the decision and the second phase,
// writing the decision to the scheduler's write-ahead log first so that
// a crash between decision and completion is resolved by presumed
// commit during recovery.
package twopc

import (
	"fmt"
	"sort"

	"transproc/internal/metrics"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// Participant is one prepared local transaction taking part in the
// atomic commit.
type Participant struct {
	Sub     *subsystem.Subsystem
	Tx      subsystem.TxID
	Proc    string
	Local   int
	Service string
}

// Coordinator drives the second phase of 2PC against the subsystems,
// journaling to the write-ahead log.
type Coordinator struct {
	log wal.Log
	// Metrics is the optional observability registry (nil = no-op): it
	// receives decision counts, per-participant resolution counters and
	// the prepared-set size histogram.
	Metrics *metrics.Registry
	// CrashAfterDecision, when set, makes CommitAll stop right after
	// logging the decision and before resolving any participant — a
	// deterministic crash-injection point for recovery tests.
	CrashAfterDecision bool
	// CrashAfterFirstResolve stops after resolving exactly one
	// participant.
	CrashAfterFirstResolve bool
	// Inject, when non-nil, is called at named crash points:
	// "twopc:after-decision" right after the decision record is forced,
	// and "twopc:mid-resolve" after the first participant's resolution
	// — the window between prepare and commit of the remaining
	// participants. A fault plan (internal/fault) may panic through it
	// with a crash sentinel the calling engine recovers; no-op when nil.
	Inject func(point string)
}

// ErrCrashed is returned when an injected crash point stopped the
// protocol; the decision is durable and recovery must finish the job.
var ErrCrashed = fmt.Errorf("twopc: injected crash")

// New returns a coordinator writing to the given log.
func New(log wal.Log) *Coordinator { return &Coordinator{log: log} }

func (c *Coordinator) inject(point string) {
	if c.Inject != nil {
		c.Inject(point)
	}
}

// CommitAll atomically commits the prepared transactions of one
// process. All participants must already be prepared (phase one); the
// decision record makes the outcome durable, after which every
// participant is committed (presumed commit). Partial failures after
// the decision are repaired by Resolve during recovery.
func (c *Coordinator) CommitAll(proc string, parts []Participant) error {
	if len(parts) == 0 {
		return nil
	}
	c.Metrics.Inc(metrics.TwoPCDecisions)
	c.Metrics.Observe(metrics.HistPreparedSet, int64(len(parts)))
	if _, err := c.log.Append(wal.Record{Type: wal.RecDecision, Proc: proc}); err != nil {
		return fmt.Errorf("twopc: logging decision for %s: %w", proc, err)
	}
	if c.CrashAfterDecision {
		return ErrCrashed
	}
	c.inject("twopc:after-decision")
	for i, p := range parts {
		if err := p.Sub.CommitPrepared(p.Tx); err != nil {
			return fmt.Errorf("twopc: committing %s tx %d at %s: %w", proc, p.Tx, p.Sub.Name(), err)
		}
		if _, err := c.log.Append(wal.Record{
			Type: wal.RecResolved, Proc: proc, Local: p.Local,
			Service: p.Service, Subsystem: p.Sub.Name(), Tx: int64(p.Tx), Commit: true,
		}); err != nil {
			return fmt.Errorf("twopc: logging resolution: %w", err)
		}
		if c.CrashAfterFirstResolve && i == 0 {
			return ErrCrashed
		}
		if i == 0 {
			c.inject("twopc:mid-resolve")
		}
	}
	return nil
}

// AbortAll rolls back the prepared transactions of a process (no
// decision record needed: presumed abort when no decision was logged).
func (c *Coordinator) AbortAll(proc string, parts []Participant) error {
	for _, p := range parts {
		if err := p.Sub.AbortPrepared(p.Tx); err != nil {
			return fmt.Errorf("twopc: aborting %s tx %d at %s: %w", proc, p.Tx, p.Sub.Name(), err)
		}
		c.Metrics.Inc(metrics.DeferredRolledBack)
		if _, err := c.log.Append(wal.Record{
			Type: wal.RecResolved, Proc: proc, Local: p.Local,
			Service: p.Service, Subsystem: p.Sub.Name(), Tx: int64(p.Tx), Commit: false,
		}); err != nil {
			return fmt.Errorf("twopc: logging resolution: %w", err)
		}
	}
	return nil
}

// Resolve finishes in-doubt transactions after a crash: if a decision
// was logged for the process, unresolved prepared transactions are
// committed (presumed commit); otherwise they are rolled back (presumed
// abort). It returns the number of transactions committed and aborted.
//
// Participants are resolved in ascending local order so that recovery
// writes the same log for the same crash image on every run. If the
// subsystem already resolved a transaction (a crash fell between the
// subsystem commit/abort and its resolution record), the subsystem's
// journaled fate wins over the presumption and only the log record is
// replayed — resolution stays idempotent across repeated recoveries.
func (c *Coordinator) Resolve(fed *subsystem.Federation, img *wal.ProcImage) (committed, aborted int, err error) {
	locals := make([]int, 0, len(img.Prepared))
	for local := range img.Prepared {
		if !img.Resolved[local] {
			locals = append(locals, local)
		}
	}
	sort.Ints(locals)
	for _, local := range locals {
		ptx := img.Prepared[local]
		sub, ok := fed.Subsystem(ptx.Subsystem)
		if !ok {
			return committed, aborted, fmt.Errorf("twopc: unknown subsystem %q during resolution", ptx.Subsystem)
		}
		tx := subsystem.TxID(ptx.Tx)
		commit := img.Decided
		var rerr error
		if commit {
			rerr = sub.CommitPrepared(tx)
		} else {
			rerr = sub.AbortPrepared(tx)
		}
		if rerr != nil {
			fate, known := sub.TxFate(tx)
			if !known {
				return committed, aborted, rerr
			}
			commit = fate
		}
		if commit {
			c.Metrics.Inc(metrics.DeferredCommitted2PC)
			committed++
		} else {
			c.Metrics.Inc(metrics.DeferredRolledBack)
			aborted++
		}
		if _, err := c.log.Append(wal.Record{
			Type: wal.RecResolved, Proc: img.Proc, Local: local,
			Service: ptx.Service, Subsystem: ptx.Subsystem, Tx: ptx.Tx, Commit: commit,
		}); err != nil {
			return committed, aborted, err
		}
	}
	return committed, aborted, nil
}
