package process_test

import (
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/paper"
	"transproc/internal/process"
)

func TestBuilderP1Structure(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	if p.Len() != 6 {
		t.Fatalf("P1 has %d activities, want 6", p.Len())
	}
	if got := p.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("roots = %v, want [1]", got)
	}
	if !p.Before(1, 2) || !p.Before(2, 6) || !p.Before(3, 4) {
		t.Error("precedence reachability wrong")
	}
	if p.Before(3, 5) || p.Before(4, 5) {
		t.Error("alternatives are not ordered by ≪ with the preferred branch")
	}
	if p.Before(2, 1) {
		t.Error("≪ must be antisymmetric")
	}
	chains := p.Chains(2)
	if len(chains) != 1 || len(chains[0]) != 2 || chains[0][0] != 3 || chains[0][1] != 5 {
		t.Fatalf("chains(2) = %v, want [[3 5]]", chains)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name  string
		build func() (*process.Process, error)
		want  string
	}{
		{"empty", func() (*process.Process, error) {
			return process.NewBuilder("P").Build()
		}, "no activities"},
		{"duplicate id", func() (*process.Process, error) {
			return process.NewBuilder("P").
				Add(1, "a", activity.Retriable).
				Add(1, "b", activity.Retriable).Build()
		}, "duplicate local id"},
		{"nonpositive id", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(0, "a", activity.Retriable).Build()
		}, "must be positive"},
		{"empty service", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(1, "", activity.Retriable).Build()
		}, "empty service"},
		{"direct compensation", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(1, "a", activity.Compensation).Build()
		}, "cannot be declared directly"},
		{"compensation on pivot", func() (*process.Process, error) {
			return process.NewBuilder("P").AddComp(1, "a", activity.Pivot, "undo").Build()
		}, "cannot have a compensation"},
		{"edge to undeclared", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(1, "a", activity.Retriable).Seq(1, 2).Build()
		}, "undeclared"},
		{"edge from undeclared", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(1, "a", activity.Retriable).Seq(2, 1).Build()
		}, "undeclared"},
		{"self edge", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(1, "a", activity.Retriable).Seq(1, 1).Build()
		}, "self edge"},
		{"duplicate edge", func() (*process.Process, error) {
			return process.NewBuilder("P").
				Add(1, "a", activity.Retriable).Add(2, "b", activity.Retriable).
				Seq(1, 2).Seq(1, 2).Build()
		}, "duplicate edge"},
		{"cycle", func() (*process.Process, error) {
			return process.NewBuilder("P").
				Add(1, "a", activity.Retriable).Add(2, "b", activity.Retriable).
				Seq(1, 2).Seq(2, 1).Build()
		}, "cycle"},
		{"empty chain", func() (*process.Process, error) {
			return process.NewBuilder("P").Add(1, "a", activity.Retriable).Chain(1).Build()
		}, "empty chain"},
		{"node twice in chain", func() (*process.Process, error) {
			return process.NewBuilder("P").
				Add(1, "a", activity.Retriable).Add(2, "b", activity.Retriable).
				Chain(1, 2, 2).Build()
		}, "duplicate edge"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build()
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestBuilderExternalPredecessorIntoAlternative(t *testing.T) {
	t.Parallel()
	// A node inside an alternative branch must not be entered from
	// outside the branch.
	_, err := process.NewBuilder("P").
		Add(1, "a", activity.Compensatable).
		Add(2, "b", activity.Compensatable).
		Add(3, "c", activity.Retriable).
		Add(4, "d", activity.Retriable).
		Chain(1, 2, 3). // 2 preferred, 3 alternative
		Seq(3, 4).
		Seq(2, 4). // external edge into the alternative's subtree
		Build()
	if err == nil || !strings.Contains(err.Error(), "external predecessor") {
		t.Fatalf("expected external-predecessor error, got %v", err)
	}
}

func TestStateDetermining(t *testing.T) {
	t.Parallel()
	p1 := paper.P1()
	s, ok := p1.StateDetermining()
	if !ok || s != 2 {
		t.Fatalf("s_{1_0} = %d, %v; want 2 (the pivot a12, Example 2)", s, ok)
	}
	allComp := process.NewBuilder("PC").
		Add(1, "x", activity.Compensatable).
		Add(2, "y", activity.Compensatable).
		Seq(1, 2).MustBuild()
	if _, ok := allComp.StateDetermining(); ok {
		t.Fatal("all-compensatable process has no state-determining activity")
	}
	allRet := process.NewBuilder("PR").
		Add(1, "x", activity.Retriable).MustBuild()
	if s, ok := allRet.StateDetermining(); !ok || s != 1 {
		t.Fatal("first retriable is the state-determining activity")
	}
}

func TestSubtree(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	got := p.Subtree(3)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("Subtree(3) = %v, want [3 4]", got)
	}
	got = p.Subtree(2)
	if len(got) != 5 { // 2,3,4,5,6
		t.Fatalf("Subtree(2) = %v", got)
	}
}

func TestServices(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	got := p.Services()
	want := []string{"a21", "a22", "a23", "a24", "a25"}
	if len(got) != len(want) {
		t.Fatalf("Services = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Services = %v, want %v", got, want)
		}
	}
}

func TestProcessString(t *testing.T) {
	t.Parallel()
	s := paper.P3().String()
	for _, frag := range []string{"P3", "a_1^c(a31)", "a_2^p(a32)", "a_3^r(a33)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestDefaultCompensationName(t *testing.T) {
	t.Parallel()
	if got := process.DefaultCompensationName("x"); got != "x⁻¹" {
		t.Fatalf("DefaultCompensationName = %q", got)
	}
	p := paper.P1()
	if p.Activity(1).Compensation != "a11⁻¹" {
		t.Fatalf("a11 compensation = %q", p.Activity(1).Compensation)
	}
	if p.Activity(2).Compensation != "" {
		t.Fatal("pivot must not have a compensation")
	}
}

// --- Instance: happy path -------------------------------------------------

func TestInstanceHappyPath(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	if in.Mode() != process.BREC {
		t.Fatal("fresh process is B-REC")
	}
	steps := []int{1, 2, 3, 4}
	for _, want := range steps {
		f := in.Frontier()
		if len(f) != 1 || f[0] != want {
			t.Fatalf("frontier = %v, want [%d]", f, want)
		}
		if err := in.MarkCommitted(want); err != nil {
			t.Fatal(err)
		}
	}
	if in.Mode() != process.FREC {
		t.Fatal("after committing the pivot the process is F-REC")
	}
	if !in.Done() {
		t.Fatal("P1 preferred path a11 a12 a13 a14 is complete")
	}
	if len(in.Frontier()) != 0 {
		t.Fatal("done process has empty frontier")
	}
	in.MarkTerminated(true)
	if !in.Terminated() || !in.CommittedOutcome() {
		t.Fatal("terminated state wrong")
	}
}

func TestInstanceModeSwitchOnPivot(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	if in.Mode() != process.BREC {
		t.Fatal("still B-REC before the pivot commits")
	}
	in.MarkCommitted(3)
	if in.Mode() != process.FREC {
		t.Fatal("F-REC after s_{2_0} = a23 committed")
	}
}

func TestPreparedDefersSuccessors(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	if err := in.MarkPrepared(3); err != nil {
		t.Fatal(err)
	}
	if in.Mode() != process.BREC {
		t.Fatal("a prepared (not committed) pivot keeps the process B-REC")
	}
	// A prepared pivot does not enable its successors: it may still be
	// rolled back, and rolled-back activities must never have committed
	// successors.
	if f := in.Frontier(); len(f) != 0 {
		t.Fatalf("frontier after prepared pivot = %v, want empty", f)
	}
	if in.Done() {
		t.Fatal("process with pending successors is not done")
	}
	if got := in.PreparedSet(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("PreparedSet = %v", got)
	}
	if err := in.MarkCommitted(3); err != nil {
		t.Fatal(err)
	}
	if in.Mode() != process.FREC {
		t.Fatal("2PC commit of the pivot moves the process to F-REC")
	}
	if f := in.Frontier(); len(f) != 1 || f[0] != 4 {
		t.Fatalf("frontier after 2PC commit = %v, want [4]", f)
	}
}

// --- Instance: failures and alternatives (Figure 2 semantics) -------------

func TestFailureOfA13SwitchesToAlternative(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	plan, err := in.MarkFailed(3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Abort || plan.NextAlt != 5 || len(plan.Steps) != 0 {
		t.Fatalf("plan = %+v, want switch to a15 with no compensations", plan)
	}
	f := in.Frontier()
	if len(f) != 1 || f[0] != 5 {
		t.Fatalf("frontier = %v, want [5]", f)
	}
	in.MarkCommitted(5)
	in.MarkCommitted(6)
	if !in.Done() {
		t.Fatal("alternative path complete")
	}
	if in.Status(4) != process.Abandoned {
		t.Fatalf("a14 should be abandoned, is %v", in.Status(4))
	}
}

func TestFailureOfA14CompensatesA13(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	for _, a := range []int{1, 2, 3} {
		in.MarkCommitted(a)
	}
	plan, err := in.MarkFailed(4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Abort || plan.NextAlt != 5 {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Kind != process.StepCompensate || plan.Steps[0].Local != 3 {
		t.Fatalf("steps = %v, want compensate a13", plan.Steps)
	}
	if plan.Steps[0].Service != "a13⁻¹" {
		t.Fatalf("compensation service = %q", plan.Steps[0].Service)
	}
	// The alternative must not be executable before the compensation is
	// applied (Section 3.1).
	if f := in.Frontier(); len(f) != 0 {
		t.Fatalf("frontier before compensation applied = %v, want empty", f)
	}
	if err := in.ApplyStep(plan.Steps[0]); err != nil {
		t.Fatal(err)
	}
	if f := in.Frontier(); len(f) != 1 || f[0] != 5 {
		t.Fatalf("frontier after compensation = %v, want [5]", f)
	}
	if in.Status(3) != process.Compensated {
		t.Fatal("a13 should be compensated")
	}
}

func TestFailureOfPivotA12Aborts(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	plan, err := in.MarkFailed(2)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Abort {
		t.Fatal("failure of the state-determining pivot in B-REC aborts the process")
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Local != 1 || plan.Steps[0].Kind != process.StepCompensate {
		t.Fatalf("steps = %v, want compensate a11", plan.Steps)
	}
	if !in.Aborting() {
		t.Fatal("instance must be aborting")
	}
	if err := in.ApplyStep(plan.Steps[0]); err != nil {
		t.Fatal(err)
	}
	in.MarkTerminated(false)
	if in.CommittedOutcome() {
		t.Fatal("aborted process has no committed outcome")
	}
}

func TestFailureOfA11AbortsEmpty(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	plan, err := in.MarkFailed(1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Abort || len(plan.Steps) != 0 {
		t.Fatalf("plan = %+v, want empty abort", plan)
	}
}

func TestRetriableCannotFail(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	in.MarkFailed(3)
	in.MarkCommitted(5)
	if _, err := in.MarkFailed(6); err == nil {
		t.Fatal("retriable activities cannot fail permanently (Definition 3)")
	}
}

func TestCompensationsReverseOrder(t *testing.T) {
	t.Parallel()
	// Linear chain of three compensatables then a pivot; pivot failure
	// aborts, compensations must be in reverse order (Lemma 2,
	// intra-process part).
	p := process.NewBuilder("P").
		Add(1, "x", activity.Compensatable).
		Add(2, "y", activity.Compensatable).
		Add(3, "z", activity.Compensatable).
		Add(4, "w", activity.Pivot).
		Seq(1, 2).Seq(2, 3).Seq(3, 4).MustBuild()
	in := process.NewInstance(p)
	for _, a := range []int{1, 2, 3} {
		in.MarkCommitted(a)
	}
	plan, err := in.MarkFailed(4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Abort || len(plan.Steps) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
	for i, want := range []int{3, 2, 1} {
		if plan.Steps[i].Local != want {
			t.Fatalf("compensation order = %v, want reverse [3 2 1]", plan.Steps)
		}
	}
}

func TestFailedPreparedRollbackInAbandonedBranch(t *testing.T) {
	t.Parallel()
	// a1^c ≪ (a2^c preferred | a4^r alt), a2 ≪ a3^p; prepare a3, then
	// fail... a3 is prepared so cannot fail; instead fail nothing —
	// test the rollback path by failing a2's sibling scenario: build
	// chain where preferred branch holds a prepared pivot and a later
	// compensatable fails.
	p := process.NewBuilder("P").
		Add(1, "a1", activity.Compensatable).
		Add(2, "a2", activity.Pivot).
		Add(3, "a3", activity.Compensatable).
		Add(5, "a5", activity.Retriable).
		Seq(1, 2).
		Chain(2, 3, 5).
		MustBuild()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2) // F-REC
	// Prefer branch a3; it fails -> switch to a5; nothing to compensate.
	plan, err := in.MarkFailed(3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Abort || plan.NextAlt != 5 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestCommittedPivotPinsBranch(t *testing.T) {
	t.Parallel()
	// Preferred branch contains a committed pivot; a later compensatable
	// in the same branch fails; the branch cannot be abandoned, and
	// since the process is F-REC with no deeper alternative this is a
	// guaranteed-termination violation the instance must surface.
	p := process.NewBuilder("P").
		Add(1, "s", activity.Compensatable).
		Add(2, "p1", activity.Pivot).
		Add(3, "c1", activity.Compensatable).
		Add(4, "r1", activity.Retriable).
		Seq(1, 2).
		Chain(2, 3, 4). // alternative exists at the pivot
		MustBuild()
	// Now nest: inside branch 3, a pivot commits and then a compensatable fails.
	p2 := process.NewBuilder("Q").
		Add(1, "s", activity.Compensatable).
		Add(2, "p1", activity.Pivot).
		Add(3, "p2", activity.Pivot).
		Add(4, "c2", activity.Compensatable).
		Add(5, "r1", activity.Retriable).
		Seq(1, 2).
		Chain(2, 3, 5). // branch head 3 (contains pivot p2), alternative r1
		Seq(3, 4).
		MustBuild()
	in := process.NewInstance(p2)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	in.MarkCommitted(3) // pivot inside branch commits: branch pinned
	if _, err := in.MarkFailed(4); err == nil {
		t.Fatal("failing past a committed pivot with no deeper alternative must be reported")
	}
	_ = p
}

func TestPreparedBranchCanBeAbandoned(t *testing.T) {
	t.Parallel()
	// Same shape as above but the inner pivot is only prepared: the
	// branch is not pinned, so the alternative is taken and the
	// prepared pivot rolled back.
	p := process.NewBuilder("Q").
		Add(1, "s", activity.Compensatable).
		Add(2, "p1", activity.Pivot).
		Add(3, "p2", activity.Pivot).
		Add(4, "c2", activity.Compensatable).
		Add(5, "r1", activity.Retriable).
		Seq(1, 2).
		Chain(2, 3, 5).
		Seq(3, 4).
		MustBuild()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	in.MarkPrepared(3)
	plan, err := in.MarkFailed(4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Abort || plan.NextAlt != 5 {
		t.Fatalf("plan = %+v", plan)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Kind != process.StepAbortPrepared || plan.Steps[0].Local != 3 {
		t.Fatalf("steps = %v, want abort-prepared a3", plan.Steps)
	}
	if in.Status(3) != process.AbortedPrepared {
		t.Fatalf("status(3) = %v", in.Status(3))
	}
}

// --- Completion C(P): Example 2 -------------------------------------------

func TestExample2CompletionBREC(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	in.MarkCommitted(1) // a11 executed correctly, pivot not yet
	steps, err := in.Completion()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Kind != process.StepCompensate || steps[0].Local != 1 {
		t.Fatalf("C(P1) in B-REC = %v, want {a11⁻¹} (Example 2)", steps)
	}
}

func TestExample2CompletionFREC(t *testing.T) {
	t.Parallel()
	p := paper.P1()
	in := process.NewInstance(p)
	for _, a := range []int{1, 2, 3} {
		in.MarkCommitted(a)
	}
	steps, err := in.Completion()
	if err != nil {
		t.Fatal(err)
	}
	// C(P1) = {a13⁻¹ ≪ a15 ≪ a16} (Example 2).
	if len(steps) != 3 {
		t.Fatalf("C(P1) = %v, want 3 steps", steps)
	}
	if steps[0].Kind != process.StepCompensate || steps[0].Local != 3 {
		t.Fatalf("first step = %v, want compensate a13", steps[0])
	}
	if steps[1].Kind != process.StepInvoke || steps[1].Local != 5 {
		t.Fatalf("second step = %v, want invoke a15", steps[1])
	}
	if steps[2].Kind != process.StepInvoke || steps[2].Local != 6 {
		t.Fatalf("third step = %v, want invoke a16", steps[2])
	}
}

func TestCompletionAfterPivotOnlyForwardPath(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	for _, a := range []int{1, 2, 3} {
		in.MarkCommitted(a)
	}
	steps, err := in.Completion()
	if err != nil {
		t.Fatal(err)
	}
	// Forward recovery: finish a24, a25; nothing to compensate (a21,
	// a22 precede the committed pivot).
	if len(steps) != 2 || steps[0].Local != 4 || steps[1].Local != 5 {
		t.Fatalf("C(P2) = %v, want invoke a24, a25", steps)
	}
	for _, s := range steps {
		if s.Kind != process.StepInvoke {
			t.Fatalf("step %v should be invoke", s)
		}
	}
}

func TestCompletionFullPathEmpty(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	for a := 1; a <= 5; a++ {
		in.MarkCommitted(a)
	}
	steps, err := in.Completion()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("completion of a finished process = %v, want empty", steps)
	}
}

func TestCompletionWithPreparedPivot(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	in.MarkPrepared(3)
	steps, err := in.Completion()
	if err != nil {
		t.Fatal(err)
	}
	// B-REC (pivot only prepared): roll back the prepared pivot, then
	// compensate a22, a21 in reverse order.
	if len(steps) != 3 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0].Kind != process.StepAbortPrepared || steps[0].Local != 3 {
		t.Fatalf("first step = %v, want abort-prepared a23", steps[0])
	}
	if steps[1].Local != 2 || steps[2].Local != 1 {
		t.Fatalf("compensations = %v, want a22⁻¹ then a21⁻¹", steps[1:])
	}
}

func TestAbortMarksTerminalAndCompletionEmptyAfter(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	steps, err := in.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Local != 1 {
		t.Fatalf("abort steps = %v", steps)
	}
	if !in.Aborting() {
		t.Fatal("instance should be aborting")
	}
	for _, s := range steps {
		if err := in.ApplyStep(s); err != nil {
			t.Fatal(err)
		}
	}
	in.MarkTerminated(false)
	if steps, _ := in.Completion(); len(steps) != 0 {
		t.Fatal("terminated process has empty completion")
	}
	if _, err := in.Abort(); err == nil {
		t.Fatal("double abort must fail")
	}
}

func TestInstanceTransitionErrors(t *testing.T) {
	t.Parallel()
	p := paper.P2()
	in := process.NewInstance(p)
	if err := in.MarkCommitted(99); err == nil {
		t.Fatal("unknown activity must error")
	}
	if err := in.MarkCompensated(1); err == nil {
		t.Fatal("compensating a pending activity must error")
	}
	in.MarkCommitted(1)
	if err := in.MarkCommitted(1); err == nil {
		t.Fatal("double commit must error")
	}
	if err := in.MarkPrepared(1); err == nil {
		t.Fatal("preparing a committed activity must error")
	}
	if err := in.MarkAbortedPrepared(1); err == nil {
		t.Fatal("rolling back a committed activity must error")
	}
	if _, err := in.MarkFailed(99); err == nil {
		t.Fatal("failing unknown activity must error")
	}
	if _, err := in.MarkFailed(1); err == nil {
		t.Fatal("failing a committed activity must error")
	}
}

func TestSnapshotIndependent(t *testing.T) {
	t.Parallel()
	in := process.NewInstance(paper.P2())
	snap := in.Snapshot()
	snap[1] = process.Committed
	if in.Status(1) != process.Pending {
		t.Fatal("snapshot must be a copy")
	}
}

func TestCloneIndependent(t *testing.T) {
	t.Parallel()
	in := process.NewInstance(paper.P1())
	in.MarkCommitted(1)
	cp := in.Clone()
	cp.MarkCommitted(2)
	if in.Status(2) != process.Pending {
		t.Fatal("clone is not independent")
	}
	if cp.Status(1) != process.Committed {
		t.Fatal("clone lost state")
	}
}

func TestParallelBranchesFrontier(t *testing.T) {
	t.Parallel()
	// Two parallel chains from a root; both heads in the frontier.
	p := process.NewBuilder("PAR").
		Add(1, "root", activity.Compensatable).
		Add(2, "left", activity.Compensatable).
		Add(3, "right", activity.Compensatable).
		Add(4, "join", activity.Pivot).
		Seq(1, 2).Seq(1, 3).
		Seq(2, 4).Seq(3, 4).
		MustBuild()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	f := in.Frontier()
	if len(f) != 2 || f[0] != 2 || f[1] != 3 {
		t.Fatalf("frontier = %v, want [2 3]", f)
	}
	in.MarkCommitted(2)
	if f := in.Frontier(); len(f) != 1 || f[0] != 3 {
		t.Fatalf("frontier = %v, want [3] (join waits for both)", f)
	}
	in.MarkCommitted(3)
	if f := in.Frontier(); len(f) != 1 || f[0] != 4 {
		t.Fatalf("frontier = %v, want [4]", f)
	}
}

func TestParallelBranchFailureAbortsWhole(t *testing.T) {
	t.Parallel()
	p := process.NewBuilder("PAR").
		Add(1, "root", activity.Compensatable).
		Add(2, "left", activity.Compensatable).
		Add(3, "right", activity.Compensatable).
		Seq(1, 2).Seq(1, 3).
		MustBuild()
	in := process.NewInstance(p)
	in.MarkCommitted(1)
	in.MarkCommitted(2)
	plan, err := in.MarkFailed(3)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Abort {
		t.Fatal("no alternatives: process aborts")
	}
	if len(plan.Steps) != 2 || plan.Steps[0].Local != 2 || plan.Steps[1].Local != 1 {
		t.Fatalf("compensations = %v, want [2 1] (reverse order)", plan.Steps)
	}
}
