package process_test

import (
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/paper"
	"transproc/internal/process"
)

func TestEffectiveKind(t *testing.T) {
	t.Parallel()
	allC := process.NewBuilder("C").
		Add(1, "a", activity.Compensatable).
		Add(2, "b", activity.Compensatable).
		Seq(1, 2).MustBuild()
	if got := process.EffectiveKind(allC); got != "c" {
		t.Fatalf("EffectiveKind(all-compensatable) = %q", got)
	}
	allR := process.NewBuilder("R").
		Add(1, "a", activity.Retriable).MustBuild()
	if got := process.EffectiveKind(allR); got != "r" {
		t.Fatalf("EffectiveKind(all-retriable) = %q", got)
	}
	if got := process.EffectiveKind(paper.P1()); got != "p" {
		t.Fatalf("EffectiveKind(P1) = %q, want p", got)
	}
}

func TestEmbedWiring(t *testing.T) {
	t.Parallel()
	sub := process.NewBuilder("SUB").
		Add(1, "x", activity.Compensatable).
		Add(2, "y", activity.Compensatable).
		Seq(1, 2).MustBuild()
	b := process.NewBuilder("PARENT").
		Add(1, "start", activity.Compensatable)
	entries, exits := b.Embed(sub, 10)
	if len(entries) != 1 || entries[0] != 11 {
		t.Fatalf("entries = %v", entries)
	}
	if len(exits) != 1 || exits[0] != 12 {
		t.Fatalf("exits = %v", exits)
	}
	b.Seq(1, entries[0])
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("len = %d", p.Len())
	}
	if !p.Before(1, 12) {
		t.Fatal("precedence not wired through the subprocess")
	}
	if p.Activity(11).Compensation != "x⁻¹" {
		t.Fatalf("compensation not preserved: %q", p.Activity(11).Compensation)
	}
}

func TestComposePipeline(t *testing.T) {
	t.Parallel()
	// booking (all compensatable) → payment (pivot + retriable tail):
	// a valid sequential composition per the flex grammar.
	booking := process.NewBuilder("BOOK").
		Add(1, "reserveA", activity.Compensatable).
		Add(2, "reserveB", activity.Compensatable).
		Seq(1, 2).MustBuild()
	payment := process.NewBuilder("PAY").
		Add(1, "charge", activity.Pivot).
		Add(2, "receipt", activity.Retriable).
		Seq(1, 2).MustBuild()
	p, err := process.Compose("Trip", booking, payment)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d", p.Len())
	}
	if err := process.ValidateGuaranteedTermination(p); err != nil {
		t.Fatal(err)
	}
	// The whole booking precedes the whole payment.
	if !p.Before(1, 4) {
		t.Fatal("composition order broken")
	}
	sd, ok := p.StateDetermining()
	if !ok || p.Activity(sd).Service != "charge" {
		t.Fatalf("state-determining = %d", sd)
	}
	// Executions behave like the grammar prescribes: a charge failure
	// compensates both reservations.
	execs, err := process.Executions(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range execs {
		if strings.Contains(e.String(), "a3✗ a2⁻¹ a1⁻¹") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected backward recovery execution, got %v", execs)
	}
}

func TestComposeRejectsIllFormed(t *testing.T) {
	t.Parallel()
	// pivot-first then compensatable-only: the second subprocess cannot
	// follow a pivot without an alternative.
	pay := process.NewBuilder("PAY").
		Add(1, "charge", activity.Pivot).MustBuild()
	book := process.NewBuilder("BOOK").
		Add(1, "reserve", activity.Compensatable).MustBuild()
	if _, err := process.Compose("BAD", pay, book); err == nil {
		t.Fatal("composition violating guaranteed termination must be rejected")
	}
	if !strings.Contains(strings.ToLower(mustErr(process.Compose("BAD", pay, book)).Error()), "guaranteed termination") {
		t.Fatal("error should name the violated property")
	}
}

func TestComposeEmpty(t *testing.T) {
	t.Parallel()
	if _, err := process.Compose("E"); err == nil {
		t.Fatal("empty composition must be rejected")
	}
}

func TestComposeThreeStages(t *testing.T) {
	t.Parallel()
	c := func(id process.ID, svc string) *process.Process {
		return process.NewBuilder(id).Add(1, svc, activity.Compensatable).MustBuild()
	}
	r := process.NewBuilder("TAIL").
		Add(1, "notify", activity.Retriable).MustBuild()
	p, err := process.Compose("Chain", c("A", "s1"), c("B", "s2"), r)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || !p.Before(1, 3) {
		t.Fatalf("composition wrong: %s", p)
	}
}

func mustErr(_ *process.Process, err error) error { return err }
