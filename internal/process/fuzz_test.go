package process_test

import (
	"fmt"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/process"
)

// decodeProcess builds a process from fuzz bytes: a byte-driven mix of
// activity kinds, sequential (AND) edges and alternative (preference)
// chains over a small service pool. Returns nil when the bytes do not
// encode a buildable process (cycles, duplicate edges, bad alternative
// structure — the builder rejects those).
func decodeProcess(data []byte) *process.Process {
	if len(data) < 3 {
		return nil
	}
	n := int(data[0]%9) + 2 // 2..10 activities
	idx := 1
	next := func() byte {
		v := data[idx]
		idx++
		if idx >= len(data) {
			idx = 1
		}
		return v
	}
	kinds := []activity.Kind{activity.Compensatable, activity.Pivot, activity.Retriable}
	b := process.NewBuilder("F")
	for i := 1; i <= n; i++ {
		b.Add(i, fmt.Sprintf("s%d", int(next())%6), kinds[int(next())%3])
	}
	for i := 2; i <= n; {
		v := next()
		h := int(v)%(i-1) + 1
		if v%5 == 0 && i < n {
			b.Chain(h, i, i+1) // alternative branch in preference order
			i += 2
		} else {
			b.Seq(h, i)
			i++
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil
	}
	return p
}

// FuzzProcessValidate cross-checks the paper's structural guarantee on
// random process graphs: any process the well-formed flex grammar
// accepts (IsWellFormedFlex, the [ZNBB94] shape) must also pass the
// exhaustive guaranteed-termination exploration, and its execution tree
// must be enumerable. A divergence means either the grammar admits a
// non-terminating structure or the explorer is broken — both are
// protocol-level bugs.
func FuzzProcessValidate(f *testing.F) {
	// c -> p -> r chain (the canonical well-formed shape).
	f.Add([]byte{1, 0, 0, 1, 1, 2, 2, 1, 1})
	// Longer mixed chain.
	f.Add([]byte{4, 0, 0, 3, 0, 1, 1, 2, 2, 5, 2, 1, 1, 1})
	// Alternative branch (byte divisible by five triggers Chain).
	f.Add([]byte{3, 0, 0, 1, 1, 2, 2, 4, 2, 5, 10})
	// Parallel joins (multiple Seq edges from one head).
	f.Add([]byte{6, 0, 0, 1, 0, 2, 0, 3, 1, 4, 2, 1, 1, 2, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProcess(data)
		if p == nil {
			t.Skip("unbuildable byte encoding")
		}
		wf, why := process.IsWellFormedFlex(p)
		err := process.ValidateGuaranteedTermination(p)
		if wf && err != nil {
			t.Fatalf("grammar accepts (%s) but termination is not guaranteed: %v\n%s", why, err, p)
		}
		if wf {
			if _, err := process.Executions(p); err != nil {
				t.Fatalf("well-formed flex but executions not enumerable: %v\n%s", err, p)
			}
		}
	})
}
