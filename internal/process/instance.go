package process

import (
	"fmt"
	"sort"

	"transproc/internal/activity"
)

// Status is the runtime state of one activity within a process instance.
type Status int

const (
	// Pending: not yet invoked.
	Pending Status = iota
	// Prepared: the local transaction executed successfully but its
	// commit is deferred (two phase commit, Lemma 1). Prepared
	// activities satisfy intra-process precedence but are revocable.
	Prepared
	// Committed: the activity (local transaction) committed.
	Committed
	// Failed: the activity failed permanently (Definition 4).
	Failed
	// Compensated: the activity committed and was later compensated.
	Compensated
	// AbortedPrepared: the activity was prepared and then rolled back.
	AbortedPrepared
	// Abandoned: the activity was on an execution path that was given
	// up in favour of an alternative, and was never invoked.
	Abandoned
)

// String returns a short status label.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Prepared:
		return "prepared"
	case Committed:
		return "committed"
	case Failed:
		return "failed"
	case Compensated:
		return "compensated"
	case AbortedPrepared:
		return "aborted-prepared"
	case Abandoned:
		return "abandoned"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Mode is the recovery state of a process (Section 3.1): a process with
// guaranteed termination is backward-recoverable until its
// state-determining activity s_{i_0} has committed, and
// forward-recoverable afterwards.
type Mode int

const (
	// BREC: backward recovery applies; the completion consists only of
	// compensating activities.
	BREC Mode = iota
	// FREC: forward recovery is guaranteed; the completion consists of
	// local backward recovery to a state-determining element plus
	// retriable activities.
	FREC
)

// String returns the paper's notation for the mode.
func (m Mode) String() string {
	if m == BREC {
		return "B-REC"
	}
	return "F-REC"
}

// StepKind classifies a recovery step.
type StepKind int

const (
	// StepCompensate executes the compensating activity a⁻¹ of a
	// committed compensatable activity.
	StepCompensate StepKind = iota
	// StepAbortPrepared rolls back a prepared (not yet committed) local
	// transaction; by atomicity of subsystem transactions this leaves
	// no effects and needs no compensation.
	StepAbortPrepared
	// StepInvoke invokes an activity of the forward recovery path
	// (always retriable in a process with guaranteed termination).
	StepInvoke
)

// String returns a short step-kind label.
func (k StepKind) String() string {
	switch k {
	case StepCompensate:
		return "compensate"
	case StepAbortPrepared:
		return "abort-prepared"
	case StepInvoke:
		return "invoke"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one element of a recovery plan or completion C(P). Steps are
// ordered: compensations in reverse precedence order of their base
// activities, forward invocations in precedence order.
type Step struct {
	Kind    StepKind
	Local   int    // the activity the step refers to
	Service string // service to invoke (compensating service for StepCompensate)
}

// String renders the step.
func (s Step) String() string {
	return fmt.Sprintf("%s(a_%d:%s)", s.Kind, s.Local, s.Service)
}

// chainKey addresses one alternative chain: the idx-th chain leaving node.
type chainKey struct {
	node, idx int
}

// Instance is the mutable execution state of a single process. It is the
// control-flow oracle shared by schedulers, the schedule checker (for
// replay) and the validators. Instance is not safe for concurrent use;
// callers serialize access.
type Instance struct {
	p      *Process
	status map[int]Status
	altIdx map[chainKey]int

	// pendingAdvance holds, while a failure recovery is in progress, the
	// chain to advance once the branch's compensations have been applied.
	pendingAdvance *chainKey
	pendingComp    map[int]bool // locals whose compensation is outstanding

	aborting   bool // Abort was requested; completion in progress
	terminated bool
	committed  bool // terminated with (overall) commit of the chosen path
}

// NewInstance returns a fresh instance for the process.
func NewInstance(p *Process) *Instance {
	in := &Instance{
		p:           p,
		status:      make(map[int]Status, p.Len()),
		altIdx:      make(map[chainKey]int),
		pendingComp: make(map[int]bool),
	}
	for _, id := range p.order {
		in.status[id] = Pending
	}
	return in
}

// Process returns the process definition.
func (in *Instance) Process() *Process { return in.p }

// Status returns the status of an activity.
func (in *Instance) Status(local int) Status { return in.status[local] }

// Terminated reports whether the process has reached a terminal state.
func (in *Instance) Terminated() bool { return in.terminated }

// Aborting reports whether an abort (completion) is in progress.
func (in *Instance) Aborting() bool { return in.aborting }

// CommittedOutcome reports whether the terminated process ended with C_i
// after a regular (non-abort) execution path.
func (in *Instance) CommittedOutcome() bool { return in.terminated && in.committed }

// Mode returns B-REC or F-REC: the process is forward-recoverable once a
// non-compensatable activity has committed (the state-determining
// activity s_{i_0} is by construction the first such activity).
func (in *Instance) Mode() Mode {
	for id, st := range in.status {
		if st == Committed && in.p.byID[id].Kind.NonCompensatable() {
			return FREC
		}
	}
	return BREC
}

// selected computes the set of activities on the currently chosen
// execution path.
func (in *Instance) selected() map[int]bool {
	sel := make(map[int]bool, in.p.Len())
	var visit func(n int)
	visit = func(n int) {
		if sel[n] {
			return
		}
		sel[n] = true
		for ci, chain := range in.p.chains[n] {
			k := in.altIdx[chainKey{n, ci}]
			if k < len(chain) {
				visit(chain[k])
			}
		}
	}
	for _, r := range in.p.roots {
		visit(r)
	}
	return sel
}

// Frontier returns the local ids of activities that are ready to be
// invoked: pending, on the selected path, with every predecessor
// committed, and with no recovery outstanding on their selecting chain.
// A merely *prepared* predecessor does not enable its successors: its
// commit is deferred and it may still be rolled back, and a rolled-back
// activity must never have committed successors. The result is sorted.
func (in *Instance) Frontier() []int {
	if in.terminated || in.aborting {
		return nil
	}
	sel := in.selected()
	var out []int
	for _, id := range in.p.order {
		if in.status[id] != Pending || !sel[id] {
			continue
		}
		ready := true
		for _, h := range in.p.preds[id] {
			if in.status[h] != Committed {
				ready = false
				break
			}
		}
		if ready && !in.blockedByRecovery(id) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// blockedByRecovery reports whether id is the alternative that is waiting
// for compensations of the abandoned sibling branch to finish: all
// activities succeeding the abandoned alternative must have been
// compensated before the next alternative executes (Section 3.1).
func (in *Instance) blockedByRecovery(id int) bool {
	return len(in.pendingComp) > 0
}

// Done reports whether the selected path has fully executed (nothing
// pending on it and no recovery outstanding). A done, non-aborting
// process is ready for its commit C_i.
func (in *Instance) Done() bool {
	if in.terminated {
		return true
	}
	if len(in.pendingComp) > 0 || in.pendingAdvance != nil {
		return false
	}
	sel := in.selected()
	for id, isSel := range sel {
		if isSel && in.status[id] == Pending {
			return false
		}
	}
	return true
}

// PreparedSet returns the prepared (deferred-commit) activities, sorted.
func (in *Instance) PreparedSet() []int {
	var out []int
	for id, st := range in.status {
		if st == Prepared {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// MarkPrepared records that the activity's local transaction executed
// successfully with its commit deferred (non-compensatable activities
// under Lemma 1).
func (in *Instance) MarkPrepared(local int) error {
	return in.transition(local, Pending, Prepared)
}

// MarkCommitted records the commit of the activity's local transaction.
// Pending activities commit directly (no deferral); prepared activities
// commit when the two phase commit protocol completes.
func (in *Instance) MarkCommitted(local int) error {
	st, ok := in.status[local]
	if !ok {
		return fmt.Errorf("process %s: unknown activity %d", in.p.ID, local)
	}
	if st != Pending && st != Prepared && !((st == Abandoned || st == AbortedPrepared) && in.aborting) {
		// Abandoned and rolled-back activities may still commit during
		// an abort: the forward recovery path re-activates the
		// lowest-priority retriable alternative and re-invokes
		// rolled-back retriables.
		return fmt.Errorf("process %s: activity %d cannot commit from %v", in.p.ID, local, st)
	}
	in.status[local] = Committed
	return nil
}

// MarkCompensated records that the compensating activity of local has
// committed. When all compensations of an abandoned branch have been
// applied, the next alternative becomes executable.
func (in *Instance) MarkCompensated(local int) error {
	if err := in.transition(local, Committed, Compensated); err != nil {
		return err
	}
	if in.pendingComp[local] {
		delete(in.pendingComp, local)
		if len(in.pendingComp) == 0 && in.pendingAdvance != nil {
			in.altIdx[*in.pendingAdvance]++
			in.pendingAdvance = nil
		}
	}
	return nil
}

// MarkAbortedPrepared records the rollback of a prepared activity.
func (in *Instance) MarkAbortedPrepared(local int) error {
	return in.transition(local, Prepared, AbortedPrepared)
}

// ResetPrepared returns a prepared activity to pending: its local
// transaction was rolled back for reasons that are not a failure of the
// process (e.g. a weak-order dependency aborted, Section 3.6) and it
// will simply be re-invoked.
func (in *Instance) ResetPrepared(local int) error {
	return in.transition(local, Prepared, Pending)
}

// MarkTerminated records the terminal event of the process. committed is
// true for C_i after a regular path, false only for pure backward
// recovery (in the completed schedule even aborts end as C_i, Def. 8.2c).
func (in *Instance) MarkTerminated(committed bool) {
	in.terminated = true
	in.committed = committed
}

func (in *Instance) transition(local int, from, to Status) error {
	st, ok := in.status[local]
	if !ok {
		return fmt.Errorf("process %s: unknown activity %d", in.p.ID, local)
	}
	if st != from {
		return fmt.Errorf("process %s: activity %d is %v, want %v", in.p.ID, local, st, from)
	}
	in.status[local] = to
	return nil
}

// FailurePlan is the reaction to the permanent failure of an activity
// (or to an abort): compensations and rollbacks to perform, and either
// the head of the alternative path that becomes executable afterwards,
// or the fact that the process aborts.
type FailurePlan struct {
	// Steps to execute, in order: compensations of committed activities
	// of the abandoned branch in reverse precedence order, and rollbacks
	// of prepared activities.
	Steps []Step
	// NextAlt is the activity that heads the alternative execution path
	// (0 when the process aborts instead).
	NextAlt int
	// Abort is true when no alternative exists and the process performs
	// backward recovery (only possible in B-REC).
	Abort bool
}

// MarkFailed records the permanent failure of a compensatable or pivot
// activity and computes the recovery plan per the preference order ◁: the
// nearest enclosing choice point with an untried alternative is located,
// every committed activity of the abandoned branch is scheduled for
// compensation (they are all compensatable in a process with guaranteed
// termination), and the next alternative is activated once those
// compensations have been applied. Without such a choice point, a B-REC
// process aborts; for an F-REC process this would violate guaranteed
// termination and is reported as an error.
func (in *Instance) MarkFailed(local int) (FailurePlan, error) {
	a := in.p.byID[local]
	if a == nil {
		return FailurePlan{}, fmt.Errorf("process %s: unknown activity %d", in.p.ID, local)
	}
	if a.Kind.GuaranteedToCommit() {
		return FailurePlan{}, fmt.Errorf("process %s: retriable activity %d cannot fail permanently (Definition 3)", in.p.ID, local)
	}
	if st := in.status[local]; st != Pending {
		return FailurePlan{}, fmt.Errorf("process %s: activity %d is %v, cannot fail", in.p.ID, local, st)
	}
	in.status[local] = Failed

	key, branchHead, ok := in.findChoicePoint(local)
	if !ok {
		if in.Mode() == FREC {
			return FailurePlan{}, fmt.Errorf("process %s: activity %d failed in F-REC with no alternative: guaranteed termination violated", in.p.ID, local)
		}
		plan := in.backwardRecoveryPlan()
		in.beginAbort()
		return plan, nil
	}

	// Abandon the branch rooted at branchHead: compensate its committed
	// activities (reverse precedence order), roll back its prepared
	// ones, abandon its pending ones.
	branch := in.p.Subtree(branchHead)
	steps, err := in.abandonNodes(branch)
	if err != nil {
		return FailurePlan{}, err
	}
	next := in.p.chains[key.node][key.idx][in.altIdx[key]+1]
	if len(in.pendingComp) == 0 {
		in.altIdx[key]++
	} else {
		k := key
		in.pendingAdvance = &k
	}
	return FailurePlan{Steps: steps, NextAlt: next}, nil
}

// findChoicePoint locates the nearest enclosing (node, chain) whose
// current alternative's branch contains the failed activity and which has
// an untried later alternative not blocked by a committed
// non-compensatable activity inside the branch. "Nearest" means the
// branch head is maximal in the precedence order.
func (in *Instance) findChoicePoint(failed int) (chainKey, int, bool) {
	type cand struct {
		key  chainKey
		head int
	}
	var cands []cand
	for node, chains := range in.p.chains {
		for ci, chain := range chains {
			key := chainKey{node, ci}
			k := in.altIdx[key]
			if k >= len(chain)-1 {
				continue // no later alternative
			}
			head := chain[k]
			if head != failed && !in.p.Before(head, failed) {
				continue // failed activity not inside this branch
			}
			// A committed non-compensatable inside the branch pins it:
			// the branch cannot be abandoned (compensation unavailable).
			pinned := false
			for _, n := range in.p.Subtree(head) {
				if in.status[n] == Committed && in.p.byID[n].Kind.NonCompensatable() {
					pinned = true
					break
				}
			}
			if !pinned {
				cands = append(cands, cand{key, head})
			}
		}
	}
	if len(cands) == 0 {
		return chainKey{}, 0, false
	}
	// Nearest: branch head maximal in ≪; ties broken by id for
	// determinism.
	sort.Slice(cands, func(i, j int) bool {
		if in.p.Before(cands[j].head, cands[i].head) {
			return true
		}
		if in.p.Before(cands[i].head, cands[j].head) {
			return false
		}
		return cands[i].head > cands[j].head
	})
	return cands[0].key, cands[0].head, true
}

// abandonNodes marks the given nodes abandoned/compensating and returns
// the recovery steps (compensations in reverse precedence order first,
// then rollbacks of prepared activities).
func (in *Instance) abandonNodes(nodes []int) ([]Step, error) {
	var comp, rollback []int
	for _, n := range nodes {
		switch in.status[n] {
		case Committed:
			a := in.p.byID[n]
			if a.Kind.NonCompensatable() {
				return nil, fmt.Errorf("process %s: cannot abandon committed non-compensatable activity %d", in.p.ID, n)
			}
			comp = append(comp, n)
		case Prepared:
			rollback = append(rollback, n)
		case Pending:
			in.status[n] = Abandoned
		}
	}
	in.sortReverseOrder(comp)
	steps := make([]Step, 0, len(comp)+len(rollback))
	for _, n := range comp {
		in.pendingComp[n] = true
		steps = append(steps, Step{Kind: StepCompensate, Local: n, Service: in.p.byID[n].Compensation})
	}
	for _, n := range rollback {
		in.status[n] = AbortedPrepared
		steps = append(steps, Step{Kind: StepAbortPrepared, Local: n, Service: in.p.byID[n].Service})
	}
	return steps, nil
}

// sortReverseOrder sorts locals so that ≪-later activities come first
// (compensating activities must be executed in reverse order of the
// original activities, Lemma 2).
func (in *Instance) sortReverseOrder(locals []int) {
	sort.Slice(locals, func(i, j int) bool {
		a, b := locals[i], locals[j]
		if in.p.Before(b, a) {
			return true
		}
		if in.p.Before(a, b) {
			return false
		}
		return a > b
	})
}

// backwardRecoveryPlan compensates every committed activity (all
// compensatable in B-REC) in reverse precedence order and rolls back
// every prepared activity.
func (in *Instance) backwardRecoveryPlan() FailurePlan {
	var comp, rollback []int
	for _, id := range in.p.order {
		switch in.status[id] {
		case Committed:
			comp = append(comp, id)
		case Prepared:
			rollback = append(rollback, id)
		}
	}
	in.sortReverseOrder(comp)
	in.sortReverseOrder(rollback)
	steps := make([]Step, 0, len(comp)+len(rollback))
	// Prepared activities are rolled back first: they may be
	// non-compensatable activities whose locks would otherwise block the
	// compensations, and rollback is always safe (atomicity).
	for _, n := range rollback {
		in.status[n] = AbortedPrepared
		steps = append(steps, Step{Kind: StepAbortPrepared, Local: n, Service: in.p.byID[n].Service})
	}
	for _, n := range comp {
		in.pendingComp[n] = true
		steps = append(steps, Step{Kind: StepCompensate, Local: n, Service: in.p.byID[n].Compensation})
	}
	return FailurePlan{Abort: true, Steps: steps}
}

func (in *Instance) beginAbort() {
	in.aborting = true
	for _, id := range in.p.order {
		if in.status[id] == Pending {
			in.status[id] = Abandoned
		}
	}
}

// Completion computes C(P): the set of activities to be executed for
// recovery purposes from the current state (Section 3.1). In B-REC it
// consists only of compensating activities (plus rollbacks of prepared
// activities); in F-REC it consists of local backward recovery to the
// latest committed state-determining element followed by the retriable
// activities of the forward recovery path (the alternative with lowest
// priority, which consists only of retriable activities).
func (in *Instance) Completion() ([]Step, error) {
	if in.terminated {
		return nil, nil
	}
	if in.Mode() == BREC {
		plan := in.completionBackward()
		return plan, nil
	}
	return in.completionForward()
}

func (in *Instance) completionBackward() []Step {
	var comp, rollback []int
	for _, id := range in.p.order {
		switch in.status[id] {
		case Committed:
			comp = append(comp, id)
		case Prepared:
			rollback = append(rollback, id)
		}
	}
	in.sortReverseOrder(comp)
	in.sortReverseOrder(rollback)
	steps := make([]Step, 0, len(comp)+len(rollback))
	for _, n := range rollback {
		steps = append(steps, Step{Kind: StepAbortPrepared, Local: n, Service: in.p.byID[n].Service})
	}
	for _, n := range comp {
		steps = append(steps, Step{Kind: StepCompensate, Local: n, Service: in.p.byID[n].Compensation})
	}
	return steps
}

// completionForward computes the F-REC completion: determine the forward
// recovery path (continuing past committed non-compensatable anchors and
// otherwise switching to the lowest-priority alternative at every choice
// point), compensate committed compensatable activities that are not
// needed by that path, and invoke the path's remaining activities.
func (in *Instance) completionForward() ([]Step, error) {
	keep := make(map[int]bool) // committed work the path builds on
	var invoke []int           // pending activities of the forward path
	var rollback []int         // prepared activities to roll back
	visited := make(map[int]bool)

	var walk func(n int) error
	walk = func(n int) error {
		if visited[n] {
			return nil
		}
		visited[n] = true
		for ci, chain := range in.p.chains[n] {
			key := chainKey{n, ci}
			k := in.altIdx[key]
			if k >= len(chain) {
				continue
			}
			// The current alternative is pinned if its branch contains a
			// committed non-compensatable activity; otherwise the abort
			// jumps to the lowest-priority alternative.
			j := len(chain) - 1
			if in.branchPinned(chain[k]) {
				j = k
			}
			m := chain[j]
			switch in.status[m] {
			case Committed:
				keep[m] = true
			case Prepared:
				// Prepared work beyond the anchors is rolled back unless
				// it is itself pinned below (it cannot be: pinning only
				// considers committed activities). Roll it back and
				// re-invoke if it is retriable and on the path.
				rollback = append(rollback, m)
				if in.p.byID[m].Kind == activity.Retriable {
					invoke = append(invoke, m)
				} else {
					return fmt.Errorf("process %s: prepared non-retriable activity %d on forward recovery path", in.p.ID, m)
				}
			case Pending, Abandoned:
				if in.p.byID[m].Kind != activity.Retriable {
					return fmt.Errorf("process %s: forward recovery path contains non-retriable activity %d: guaranteed termination violated", in.p.ID, m)
				}
				invoke = append(invoke, m)
			case Failed, Compensated, AbortedPrepared:
				return fmt.Errorf("process %s: forward recovery path reaches activity %d in state %v", in.p.ID, m, in.status[m])
			}
			if err := walk(m); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range in.p.roots {
		switch in.status[r] {
		case Committed:
			keep[r] = true
		case Prepared:
			rollback = append(rollback, r)
		case Pending:
			// Root never ran: in F-REC this means a parallel root branch
			// has not started; it is not required for the completion.
			continue
		}
		if in.status[r] == Committed || in.status[r] == Prepared {
			if err := walk(r); err != nil {
				return nil, err
			}
		}
	}

	// keep must be closed under predecessors: committed work the path's
	// activities depend on is retained.
	keepClosed := make(map[int]bool)
	var closeUp func(n int)
	closeUp = func(n int) {
		for _, h := range in.p.preds[n] {
			if in.status[h] == Committed && !keepClosed[h] {
				keepClosed[h] = true
				closeUp(h)
			}
		}
	}
	for n := range keep {
		keepClosed[n] = true
		closeUp(n)
	}
	for _, n := range invoke {
		closeUp(n)
	}

	var comp []int
	for _, id := range in.p.order {
		switch in.status[id] {
		case Committed:
			if !keepClosed[id] {
				if in.p.byID[id].Kind.NonCompensatable() {
					return nil, fmt.Errorf("process %s: committed non-compensatable activity %d off the forward recovery path", in.p.ID, id)
				}
				comp = append(comp, id)
			}
		case Prepared:
			found := false
			for _, r := range rollback {
				if r == id {
					found = true
					break
				}
			}
			if !found {
				rollback = append(rollback, id)
			}
		}
	}
	in.sortReverseOrder(comp)
	in.sortReverseOrder(rollback)
	// Order the invocations in precedence order.
	sort.Slice(invoke, func(i, j int) bool {
		a, b := invoke[i], invoke[j]
		if in.p.Before(a, b) {
			return true
		}
		if in.p.Before(b, a) {
			return false
		}
		return a < b
	})

	steps := make([]Step, 0, len(comp)+len(rollback)+len(invoke))
	for _, n := range rollback {
		steps = append(steps, Step{Kind: StepAbortPrepared, Local: n, Service: in.p.byID[n].Service})
	}
	for _, n := range comp {
		steps = append(steps, Step{Kind: StepCompensate, Local: n, Service: in.p.byID[n].Compensation})
	}
	for _, n := range invoke {
		steps = append(steps, Step{Kind: StepInvoke, Local: n, Service: in.p.byID[n].Service})
	}
	return steps, nil
}

// branchPinned reports whether the branch rooted at head contains a
// committed non-compensatable activity (which makes the branch impossible
// to abandon).
func (in *Instance) branchPinned(head int) bool {
	for _, n := range in.p.Subtree(head) {
		if in.status[n] == Committed && in.p.byID[n].Kind.NonCompensatable() {
			return true
		}
	}
	return false
}

// Abort requests the termination of the process for recovery purposes
// (the abort A_i, or the group abort of Definition 8.2b for an active
// process). It returns the completion C(P_i) as an executable plan and
// moves the instance into the aborting state; the caller executes the
// steps and finally calls MarkTerminated.
func (in *Instance) Abort() ([]Step, error) {
	if in.terminated {
		return nil, fmt.Errorf("process %s: already terminated", in.p.ID)
	}
	steps, err := in.Completion()
	if err != nil {
		return nil, err
	}
	in.beginAbort()
	return steps, nil
}

// ApplyStep records the effect of an executed recovery step on the
// instance state.
func (in *Instance) ApplyStep(s Step) error {
	switch s.Kind {
	case StepCompensate:
		return in.MarkCompensated(s.Local)
	case StepAbortPrepared:
		if in.status[s.Local] == AbortedPrepared {
			return nil // already recorded by the plan computation
		}
		return in.MarkAbortedPrepared(s.Local)
	case StepInvoke:
		return in.MarkCommitted(s.Local)
	default:
		return fmt.Errorf("process %s: unknown step kind %v", in.p.ID, s.Kind)
	}
}

// PotentialRecoveryServices returns the set of services that might still
// be invoked by or for this process: services of activities not yet
// committed (on any alternative path) and compensating services of
// committed compensatable activities that could appear in some future
// completion (those not strictly before every committed
// non-compensatable anchor). A scheduler uses this set to decide whether
// another process may safely conflict with this one while it is active:
// if none of these services conflicts with the other activity, no
// completion of this process can ever close a conflict cycle through it
// (the "quasi commit" exploitation of Example 10).
func (in *Instance) PotentialRecoveryServices() map[string]bool {
	out := make(map[string]bool)
	// Anchors: committed non-compensatable activities.
	var anchors []int
	for _, id := range in.p.order {
		if in.status[id] == Committed && in.p.byID[id].Kind.NonCompensatable() {
			anchors = append(anchors, id)
		}
	}
	for _, id := range in.p.order {
		a := in.p.byID[id]
		switch in.status[id] {
		case Pending, Abandoned, Prepared, AbortedPrepared, Failed:
			// Might (re-)execute on some path or during completion.
			if in.status[id] != Failed {
				out[a.Service] = true
			}
		case Committed:
			if a.Kind != activity.Compensatable {
				continue
			}
			// Compensation possible unless the activity is locked in
			// before a committed non-compensatable anchor.
			locked := false
			for _, anc := range anchors {
				if in.p.Before(id, anc) {
					locked = true
					break
				}
			}
			if !locked {
				out[a.Compensation] = true
			}
		}
	}
	return out
}

// PotentialForwardServices returns the services of retriable activities
// that are not yet committed: the set of services that can appear on a
// *forward* recovery path of this process. Unlike compensations (which a
// cascading scheduler can order correctly by aborting dependents first),
// forward-path activities cannot be cancelled — another process must not
// be allowed to conflict-precede them unless it can never need to.
func (in *Instance) PotentialForwardServices() map[string]bool {
	out := make(map[string]bool)
	for _, id := range in.p.order {
		a := in.p.byID[id]
		if a.Kind != activity.Retriable {
			continue
		}
		if st := in.status[id]; st != Committed && st != Compensated {
			out[a.Service] = true
		}
	}
	return out
}

// UncommittedServices returns the services of activities that have not
// (yet) committed — pending, abandoned, prepared or rolled back, on any
// path. A scheduler uses this as the set of service classes the process
// may still touch.
func (in *Instance) UncommittedServices() map[string]bool {
	out := make(map[string]bool)
	for _, id := range in.p.order {
		switch in.status[id] {
		case Pending, Abandoned, Prepared, AbortedPrepared:
			out[in.p.byID[id].Service] = true
		}
	}
	return out
}

// Snapshot returns a copy of the per-activity statuses, for reporting.
func (in *Instance) Snapshot() map[int]Status {
	out := make(map[int]Status, len(in.status))
	for k, v := range in.status {
		out[k] = v
	}
	return out
}

// Clone returns a deep copy of the instance (used by exhaustive
// validators).
func (in *Instance) Clone() *Instance {
	cp := &Instance{
		p:           in.p,
		status:      make(map[int]Status, len(in.status)),
		altIdx:      make(map[chainKey]int, len(in.altIdx)),
		pendingComp: make(map[int]bool, len(in.pendingComp)),
		aborting:    in.aborting,
		terminated:  in.terminated,
		committed:   in.committed,
	}
	for k, v := range in.status {
		cp.status[k] = v
	}
	for k, v := range in.altIdx {
		cp.altIdx[k] = v
	}
	for k, v := range in.pendingComp {
		cp.pendingComp[k] = v
	}
	if in.pendingAdvance != nil {
		k := *in.pendingAdvance
		cp.pendingAdvance = &k
	}
	return cp
}
