package process_test

import (
	"strings"
	"testing"

	"transproc/internal/activity"
	"transproc/internal/paper"
	"transproc/internal/process"
)

// TestExample1ValidExecutions reproduces Figure 3: the four valid
// executions of P1 (plus the degenerate execution where a11 itself fails
// and the process terminates without ever having effects).
func TestExample1ValidExecutions(t *testing.T) {
	t.Parallel()
	execs, err := process.Executions(paper.P1())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(execs))
	for _, e := range execs {
		got[e.String()] = true
	}
	want := []string{
		"⟨a1 a2 a3 a4⟩C",             // all succeed
		"⟨a1 a2 a3✗ a5 a6⟩C",         // a13 fails -> alternative
		"⟨a1 a2 a3 a4✗ a3⁻¹ a5 a6⟩C", // a14 fails -> compensate a13 -> alternative
		"⟨a1 a2✗ a1⁻¹⟩A",             // pivot fails -> backward recovery
		"⟨a1✗⟩A",                     // a11 fails immediately
	}
	if len(execs) != len(want) {
		t.Fatalf("got %d executions %v, want %d", len(execs), execs, len(want))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing execution %s (have %v)", w, execs)
		}
	}
	// Figure 3 shows the four executions that involve the pivot a12
	// being reached; exactly four of ours do.
	n := 0
	for _, e := range execs {
		if strings.Contains(e.String(), "a2") {
			n++
		}
	}
	if n != 4 {
		t.Errorf("expected 4 executions reaching a12 (Figure 3), got %d", n)
	}
}

func TestExecutionsLinearP2(t *testing.T) {
	t.Parallel()
	execs, err := process.Executions(paper.P2())
	if err != nil {
		t.Fatal(err)
	}
	// Scenarios: success; a23 fails; a22 fails; a21 fails.
	want := map[string]bool{
		"⟨a1 a2 a3 a4 a5⟩C":      true,
		"⟨a1 a2 a3✗ a2⁻¹ a1⁻¹⟩A": true,
		"⟨a1 a2✗ a1⁻¹⟩A":         true,
		"⟨a1✗⟩A":                 true,
	}
	if len(execs) != len(want) {
		t.Fatalf("executions = %v", execs)
	}
	for _, e := range execs {
		if !want[e.String()] {
			t.Errorf("unexpected execution %s", e)
		}
	}
}

func TestExecutionsEffectiveFlag(t *testing.T) {
	t.Parallel()
	execs, err := process.Executions(paper.P2())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range execs {
		if e.Completed && !e.Effective {
			t.Errorf("completed execution %s must be effective", e)
		}
		if !e.Completed && e.Effective {
			t.Errorf("aborted execution %s must be effect-free (guaranteed termination)", e)
		}
	}
}

func TestValidateGuaranteedTerminationPaperProcesses(t *testing.T) {
	t.Parallel()
	for _, p := range []*process.Process{paper.P1(), paper.P2(), paper.P3()} {
		if err := process.ValidateGuaranteedTermination(p); err != nil {
			t.Errorf("%s: %v", p.ID, err)
		}
	}
}

func TestValidateGuaranteedTerminationViolation(t *testing.T) {
	t.Parallel()
	// Pivot followed by a compensatable with no alternative: the
	// compensatable's failure in F-REC cannot be recovered.
	bad := process.NewBuilder("BAD").
		Add(1, "p", activity.Pivot).
		Add(2, "c", activity.Compensatable).
		Seq(1, 2).
		MustBuild()
	if err := process.ValidateGuaranteedTermination(bad); err == nil {
		t.Fatal("violating process accepted")
	}
}

func TestValidateGuaranteedTerminationTwoPivotsNoAlt(t *testing.T) {
	t.Parallel()
	bad := process.NewBuilder("BAD2").
		Add(1, "p1", activity.Pivot).
		Add(2, "p2", activity.Pivot).
		Seq(1, 2).
		MustBuild()
	if err := process.ValidateGuaranteedTermination(bad); err == nil {
		t.Fatal("two pivots without an all-retriable alternative must be rejected")
	}
}

func TestValidateGuaranteedTerminationTwoPivotsWithAlt(t *testing.T) {
	t.Parallel()
	ok := process.NewBuilder("OK2").
		Add(1, "p1", activity.Pivot).
		Add(2, "p2", activity.Pivot).
		Add(3, "r", activity.Retriable).
		Chain(1, 2, 3).
		MustBuild()
	if err := process.ValidateGuaranteedTermination(ok); err != nil {
		t.Fatalf("pivot chain with retriable alternative rejected: %v", err)
	}
}

func TestValidateGuaranteedTerminationAllCompensatable(t *testing.T) {
	t.Parallel()
	p := process.NewBuilder("C3").
		Add(1, "x", activity.Compensatable).
		Add(2, "y", activity.Compensatable).
		Add(3, "z", activity.Compensatable).
		Seq(1, 2).Seq(2, 3).
		MustBuild()
	if err := process.ValidateGuaranteedTermination(p); err != nil {
		t.Fatalf("all-compensatable chain rejected: %v", err)
	}
}

func TestValidateGuaranteedTerminationAllRetriable(t *testing.T) {
	t.Parallel()
	p := process.NewBuilder("R3").
		Add(1, "x", activity.Retriable).
		Add(2, "y", activity.Retriable).
		Seq(1, 2).
		MustBuild()
	if err := process.ValidateGuaranteedTermination(p); err != nil {
		t.Fatalf("all-retriable chain rejected: %v", err)
	}
}

func TestIsWellFormedFlexAccepts(t *testing.T) {
	t.Parallel()
	cases := []*process.Process{
		paper.P1(),
		paper.P2(),
		paper.P3(),
		process.NewBuilder("CPR").
			Add(1, "c", activity.Compensatable).
			Add(2, "p", activity.Pivot).
			Add(3, "r", activity.Retriable).
			Seq(1, 2).Seq(2, 3).MustBuild(),
		process.NewBuilder("C").
			Add(1, "c", activity.Compensatable).MustBuild(),
		process.NewBuilder("R").
			Add(1, "r", activity.Retriable).MustBuild(),
		process.NewBuilder("P").
			Add(1, "p", activity.Pivot).MustBuild(),
	}
	for _, p := range cases {
		if ok, why := process.IsWellFormedFlex(p); !ok {
			t.Errorf("%s rejected: %s", p.ID, why)
		}
	}
}

func TestIsWellFormedFlexRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		p    *process.Process
		frag string
	}{
		{
			"pivot then compensatable no alternative",
			process.NewBuilder("B1").
				Add(1, "p", activity.Pivot).
				Add(2, "c", activity.Compensatable).
				Seq(1, 2).MustBuild(),
			"without an alternative",
		},
		{
			"two pivots no alternative",
			process.NewBuilder("B2").
				Add(1, "p1", activity.Pivot).
				Add(2, "p2", activity.Pivot).
				Seq(1, 2).MustBuild(),
			"without an alternative",
		},
		{
			"alternative not all-retriable",
			process.NewBuilder("B3").
				Add(1, "p1", activity.Pivot).
				Add(2, "p2", activity.Pivot).
				Add(3, "c", activity.Compensatable).
				Chain(1, 2, 3).MustBuild(),
			"not all-retriable",
		},
		{
			"parallel successors",
			process.NewBuilder("B4").
				Add(1, "c", activity.Compensatable).
				Add(2, "x", activity.Retriable).
				Add(3, "y", activity.Retriable).
				Seq(1, 2).Seq(1, 3).MustBuild(),
			"parallel successors",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ok, why := process.IsWellFormedFlex(c.p)
			if ok {
				t.Fatalf("accepted ill-formed process")
			}
			if c.frag != "" && !strings.Contains(why, c.frag) {
				t.Fatalf("reason %q missing %q", why, c.frag)
			}
		})
	}
}

// Structural checker and exhaustive validator must agree on chains.
func TestWellFormedConsistency(t *testing.T) {
	t.Parallel()
	type tc struct {
		name string
		p    *process.Process
	}
	cases := []tc{
		{"P1", paper.P1()},
		{"P2", paper.P2()},
		{"P3", paper.P3()},
		{"bad pivot-comp", process.NewBuilder("X").
			Add(1, "p", activity.Pivot).
			Add(2, "c", activity.Compensatable).
			Seq(1, 2).MustBuild()},
		{"nested ok", process.NewBuilder("N").
			Add(1, "c1", activity.Compensatable).
			Add(2, "p1", activity.Pivot).
			Add(3, "c2", activity.Compensatable).
			Add(4, "p2", activity.Pivot).
			Add(5, "r2", activity.Retriable).
			Add(6, "r3", activity.Retriable).
			Seq(1, 2).
			Chain(2, 3, 6). // nested structure with retriable alternative
			Seq(3, 4).
			Seq(4, 5).
			MustBuild()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			structural, _ := process.IsWellFormedFlex(c.p)
			exhaustive := process.ValidateGuaranteedTermination(c.p) == nil
			if structural != exhaustive {
				t.Fatalf("structural=%v exhaustive=%v disagree", structural, exhaustive)
			}
		})
	}
}
