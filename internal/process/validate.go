package process

import (
	"fmt"
	"sort"
	"strings"

	"transproc/internal/activity"
)

// ExecEvent is one event of a single-process execution trace, used by the
// enumeration of valid executions (Figure 3 of the paper).
type ExecEvent struct {
	Local   int
	Service string
	// Kind of the event: "commit", "fail", "compensate".
	What string
}

// String renders the event in the paper's notation.
func (e ExecEvent) String() string {
	switch e.What {
	case "commit":
		return fmt.Sprintf("a%d", e.Local)
	case "fail":
		return fmt.Sprintf("a%d✗", e.Local)
	case "compensate":
		return fmt.Sprintf("a%d⁻¹", e.Local)
	default:
		return fmt.Sprintf("a%d?%s", e.Local, e.What)
	}
}

// Execution is one terminal execution of a process: its event trace and
// whether it ended with the process performing effective work (at least
// one activity remains committed) or as an effect-free backward recovery.
type Execution struct {
	Events    []ExecEvent
	Completed bool // finished a full execution path (C_i after forward work)
	Effective bool // at least one activity remains committed
}

// String renders the execution as ⟨e1 e2 …⟩.
func (e Execution) String() string {
	parts := make([]string, len(e.Events))
	for i, ev := range e.Events {
		parts[i] = ev.String()
	}
	suffix := "A"
	if e.Completed {
		suffix = "C"
	}
	return "⟨" + strings.Join(parts, " ") + "⟩" + suffix
}

// Key returns a canonical identity for deduplication.
func (e Execution) Key() string { return e.String() }

// Executions enumerates all terminal executions of the process under
// every failure scenario: each compensatable or pivot activity either
// commits or fails permanently on its invocation; retriable activities
// always (eventually) commit. Activities are dispatched in canonical
// (smallest-local-id-first) order. The result is sorted and
// deduplicated. It returns an error if any scenario violates guaranteed
// termination.
func Executions(p *Process) ([]Execution, error) {
	var out []Execution
	seen := make(map[string]bool)
	var explore func(in *Instance, trace []ExecEvent) error
	explore = func(in *Instance, trace []ExecEvent) error {
		if in.Terminated() || (in.Done() && !in.Aborting()) {
			effective := false
			for local, st := range in.Snapshot() {
				_ = local
				if st == Committed {
					effective = true
					break
				}
			}
			ex := Execution{
				Events:    append([]ExecEvent(nil), trace...),
				Completed: !in.Aborting(),
				Effective: effective,
			}
			if !seen[ex.Key()] {
				seen[ex.Key()] = true
				out = append(out, ex)
			}
			return nil
		}
		frontier := in.Frontier()
		if len(frontier) == 0 {
			return fmt.Errorf("process %s: stuck state with no frontier and not done", p.ID)
		}
		next := frontier[0]
		a := p.Activity(next)

		// Branch 1: the invocation commits.
		{
			c := in.Clone()
			if err := c.MarkCommitted(next); err != nil {
				return err
			}
			t := append(append([]ExecEvent(nil), trace...), ExecEvent{next, a.Service, "commit"})
			if err := explore(c, t); err != nil {
				return err
			}
		}
		// Branch 2: the invocation fails permanently (not possible for
		// retriable activities, Definition 3).
		if !a.Kind.GuaranteedToCommit() {
			c := in.Clone()
			plan, err := c.MarkFailed(next)
			if err != nil {
				return err
			}
			t := append(append([]ExecEvent(nil), trace...), ExecEvent{next, a.Service, "fail"})
			for _, s := range plan.Steps {
				switch s.Kind {
				case StepCompensate:
					if err := c.ApplyStep(s); err != nil {
						return err
					}
					t = append(t, ExecEvent{s.Local, s.Service, "compensate"})
				case StepAbortPrepared:
					if err := c.ApplyStep(s); err != nil {
						return err
					}
				}
			}
			if plan.Abort {
				c.MarkTerminated(false)
			}
			if err := explore(c, t); err != nil {
				return err
			}
		}
		return nil
	}
	if err := explore(NewInstance(p), nil); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// ValidateGuaranteedTermination verifies the guaranteed termination
// property (the generalization of all-or-nothing atomicity, Section 3.1)
// by exhaustive exploration of failure scenarios:
//
//  1. Every failure scenario terminates: either a complete execution
//     path is effected, or backward recovery leaves the process
//     effect-free.
//  2. In every reachable state the completion C(P) is computable: an
//     abort (or a crash followed by the group abort) can always be
//     resolved by pure compensation (B-REC) or by local backward
//     recovery plus a retriable forward path (F-REC).
//  3. Backward recovery never needs to compensate a non-compensatable
//     activity.
//
// The exploration is exponential in the number of non-retriable
// activities and intended for process definitions of realistic size
// (tens of activities).
func ValidateGuaranteedTermination(p *Process) error {
	var explore func(in *Instance) error
	explore = func(in *Instance) error {
		if _, err := in.Clone().Completion(); err != nil {
			return fmt.Errorf("completion not computable: %w", err)
		}
		if in.Terminated() || (in.Done() && !in.Aborting()) {
			return nil
		}
		frontier := in.Frontier()
		if len(frontier) == 0 {
			return fmt.Errorf("process %s: stuck non-terminal state", p.ID)
		}
		next := frontier[0]
		a := p.Activity(next)
		{
			c := in.Clone()
			if err := c.MarkCommitted(next); err != nil {
				return err
			}
			if err := explore(c); err != nil {
				return err
			}
		}
		if !a.Kind.GuaranteedToCommit() {
			c := in.Clone()
			plan, err := c.MarkFailed(next)
			if err != nil {
				return err
			}
			for _, s := range plan.Steps {
				if err := c.ApplyStep(s); err != nil {
					return err
				}
			}
			if plan.Abort {
				// Backward recovery must leave no committed activities.
				for local, st := range c.Snapshot() {
					if st == Committed {
						return fmt.Errorf("process %s: backward recovery left activity %d committed", p.ID, local)
					}
				}
				c.MarkTerminated(false)
			}
			if err := explore(c); err != nil {
				return err
			}
		}
		return nil
	}
	return explore(NewInstance(p))
}

// IsWellFormedFlex structurally checks the recursive well-formed flex
// structure of [ZNBB94] on processes whose precedence order is a chain
// with alternative branches: a (possibly empty) prefix of compensatable
// activities, then a pivot, then either retriable activities only, or a
// nested well-formed structure provided an alternative consisting only
// of retriable activities exists for it. Processes consisting only of
// compensatable and retriable activities in c*·r* shape are accepted as
// the degenerate case. For structures beyond this grammar (parallel
// branches), use ValidateGuaranteedTermination.
func IsWellFormedFlex(p *Process) (bool, string) {
	// Reject non-chain precedence: a node with more than one chain or a
	// chain head with external joins.
	for _, id := range p.order {
		if len(p.chains[id]) > 1 {
			return false, fmt.Sprintf("activity %d has parallel successors; grammar check applies to chains only", id)
		}
		if len(p.preds[id]) > 1 {
			return false, fmt.Sprintf("activity %d has multiple predecessors; grammar check applies to chains only", id)
		}
	}
	if len(p.roots) != 1 {
		return false, "grammar check requires a single root"
	}
	ok, why := p.wellFormedFrom(p.roots[0], false)
	return ok, why
}

// wellFormedFrom checks the grammar starting at node n. afterPivot marks
// that a pivot committed earlier on this path.
func (p *Process) wellFormedFrom(n int, afterPivot bool) (bool, string) {
	for {
		a := p.byID[n]
		switch a.Kind {
		case activity.Compensatable:
			// fine in any position before the next pivot
		case activity.Retriable:
			// Once retriable activities start, only retriables may follow
			// on this branch (basic structure ...p r*). We simply require
			// the rest of the branch to be retriable.
			return p.allRetriableFrom(n)
		case activity.Pivot:
			// The pivot may be followed by retriables only, or by a
			// nested well-formed structure that has an all-retriable
			// lowest-priority alternative.
			chains := p.chains[n]
			if len(chains) == 0 {
				return true, "" // pivot terminates the process
			}
			chain := chains[0]
			if len(chain) == 1 {
				// Single continuation: must be all retriable.
				if ok, _ := p.allRetriableFrom(chain[0]); ok {
					return true, ""
				}
				return false, fmt.Sprintf("pivot %d is followed by a non-retriable continuation without an alternative", n)
			}
			// Alternatives exist: the last must be all-retriable, the
			// earlier ones nested well-formed structures.
			last := chain[len(chain)-1]
			if ok, why := p.allRetriableFrom(last); !ok {
				return false, fmt.Sprintf("lowest-priority alternative after pivot %d is not all-retriable: %s", n, why)
			}
			for _, alt := range chain[:len(chain)-1] {
				if ok, why := p.wellFormedFrom(alt, true); !ok {
					return false, why
				}
			}
			return true, ""
		case activity.Compensation:
			return false, fmt.Sprintf("activity %d is a compensation", n)
		}
		chains := p.chains[n]
		if len(chains) == 0 {
			// Path of compensatables only: effect-free abort is always
			// possible; accept.
			return true, ""
		}
		chain := chains[0]
		if len(chain) > 1 {
			// A choice point on a compensatable prefix: every alternative
			// must itself be well formed; the last one needs to be
			// all-retriable only if a pivot precedes it.
			last := chain[len(chain)-1]
			if afterPivot {
				if ok, why := p.allRetriableFrom(last); !ok {
					return false, fmt.Sprintf("lowest-priority alternative after %d must be all-retriable: %s", n, why)
				}
				for _, alt := range chain[:len(chain)-1] {
					if ok, why := p.wellFormedFrom(alt, true); !ok {
						return false, why
					}
				}
				return true, ""
			}
			for _, alt := range chain {
				if ok, why := p.wellFormedFrom(alt, afterPivot); !ok {
					return false, why
				}
			}
			return true, ""
		}
		n = chain[0]
	}
}

// allRetriableFrom checks that node n and everything reachable from it is
// retriable.
func (p *Process) allRetriableFrom(n int) (bool, string) {
	for _, m := range p.Subtree(n) {
		if p.byID[m].Kind != activity.Retriable {
			return false, fmt.Sprintf("activity %d is %v", m, p.byID[m].Kind)
		}
	}
	return true, ""
}
