package process_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/workload"
)

// randomInstanceWalk drives a random instance through commits, failures
// and an optional abort, returning the instance. It never performs an
// illegal transition.
func randomInstanceWalk(rng *rand.Rand, p *process.Process, steps int) *process.Instance {
	in := process.NewInstance(p)
	for i := 0; i < steps && !in.Terminated(); i++ {
		f := in.Frontier()
		if len(f) == 0 {
			if in.Done() && !in.Aborting() {
				in.MarkTerminated(true)
			}
			break
		}
		a := f[rng.Intn(len(f))]
		kind := p.Activity(a).Kind
		switch {
		case rng.Float64() < 0.15 && !kind.GuaranteedToCommit():
			plan, err := in.MarkFailed(a)
			if err != nil {
				panic(err)
			}
			for _, st := range plan.Steps {
				if err := in.ApplyStep(st); err != nil {
					panic(err)
				}
			}
			if plan.Abort {
				in.MarkTerminated(false)
			}
		case rng.Float64() < 0.15 && kind.NonCompensatable():
			if err := in.MarkPrepared(a); err != nil {
				panic(err)
			}
		default:
			if err := in.MarkCommitted(a); err != nil {
				panic(err)
			}
		}
	}
	return in
}

// Property: at every reachable state of a well-formed process, the
// completion C(P) is computable, its compensations appear in reverse
// precedence order, and its forward invocations are all retriable.
func TestPropertyCompletionAlwaysComputable(t *testing.T) {
	t.Parallel()
	services := []string{"s1", "s2", "s3", "s4"}
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomWellFormed(rng, "P", services)
		in := randomInstanceWalk(rng, p, int(steps%24))
		if in.Terminated() {
			return true
		}
		stepsC, err := in.Completion()
		if err != nil {
			t.Logf("seed %d: completion failed: %v", seed, err)
			return false
		}
		// Compensations in reverse precedence order.
		var lastComp = -1
		for _, st := range stepsC {
			if st.Kind != process.StepCompensate {
				continue
			}
			if lastComp >= 0 && p.Before(lastComp, st.Local) {
				t.Logf("seed %d: compensations out of reverse order: %v", seed, stepsC)
				return false
			}
			lastComp = st.Local
		}
		// Forward invocations are retriable.
		for _, st := range stepsC {
			if st.Kind == process.StepInvoke && p.Activity(st.Local).Kind != activity.Retriable {
				t.Logf("seed %d: non-retriable forward step %v", seed, st)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the frontier contains only pending activities whose
// predecessors are all satisfied, and Done implies an empty frontier.
func TestPropertyFrontierInvariants(t *testing.T) {
	t.Parallel()
	services := []string{"x", "y", "z"}
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomWellFormed(rng, "P", services)
		in := randomInstanceWalk(rng, p, int(steps%16))
		for _, a := range in.Frontier() {
			if in.Status(a) != process.Pending {
				return false
			}
			for _, h := range p.Preds(a) {
				if st := in.Status(h); st != process.Committed && st != process.Prepared {
					return false
				}
			}
		}
		if in.Done() && !in.Aborting() && len(in.Frontier()) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: an abort from any reachable state terminates with an
// executable plan, and applying the plan leaves no committed
// compensatable activity that is not ≪-before a committed
// non-compensatable anchor (everything else was compensated).
func TestPropertyAbortAlwaysTerminates(t *testing.T) {
	t.Parallel()
	services := []string{"u", "v", "w", "q"}
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomWellFormed(rng, "P", services)
		in := randomInstanceWalk(rng, p, int(steps%20))
		if in.Terminated() {
			return true
		}
		plan, err := in.Abort()
		if err != nil {
			t.Logf("seed %d: abort failed: %v", seed, err)
			return false
		}
		for _, st := range plan {
			if err := in.ApplyStep(st); err != nil {
				t.Logf("seed %d: applying %v failed: %v", seed, st, err)
				return false
			}
		}
		in.MarkTerminated(false)
		// Anchors: committed non-compensatables.
		var anchors []int
		for _, a := range p.Activities() {
			if in.Status(a.Local) == process.Committed && a.Kind.NonCompensatable() {
				anchors = append(anchors, a.Local)
			}
		}
		for _, a := range p.Activities() {
			if a.Kind != activity.Compensatable || in.Status(a.Local) != process.Committed {
				continue
			}
			covered := false
			for _, anc := range anchors {
				if p.Before(a.Local, anc) {
					covered = true
					break
				}
			}
			if !covered {
				t.Logf("seed %d: committed compensatable %d survives without anchor", seed, a.Local)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Executions never reports an aborted execution with effects
// and never a completed execution without effects (guaranteed
// termination, Section 3.1), across random well-formed processes.
func TestPropertyExecutionsEffectFreedom(t *testing.T) {
	t.Parallel()
	services := []string{"m", "n", "o"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomWellFormed(rng, "P", services)
		execs, err := process.Executions(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, e := range execs {
			if !e.Completed && e.Effective {
				t.Logf("seed %d: aborted execution with effects: %s", seed, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: PotentialRecoveryServices always contains every service of
// the current completion (the potential set is a sound over-
// approximation).
func TestPropertyPotentialCoversCompletion(t *testing.T) {
	t.Parallel()
	services := []string{"a", "b", "c", "d"}
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomWellFormed(rng, "P", services)
		in := randomInstanceWalk(rng, p, int(steps%20))
		if in.Terminated() {
			return true
		}
		pot := in.PotentialRecoveryServices()
		comp, err := in.Completion()
		if err != nil {
			return false
		}
		for _, st := range comp {
			if st.Kind == process.StepAbortPrepared {
				continue
			}
			if !pot[st.Service] {
				t.Logf("seed %d: completion step %v not in potential set %v", seed, st, pot)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
