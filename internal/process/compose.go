package process

import (
	"fmt"
	"sort"

	"transproc/internal/activity"
)

// Subprocess composition. The paper's conclusion names the extension of
// the framework to "transactional execution guarantees of subprocesses"
// as future work; this file provides the structural part: a process with
// guaranteed termination can be embedded as a subprocess of another,
// with its activities renumbered into the parent's id space and its
// entry/exit points wired into the parent's precedence order.
//
// The composition preserves guaranteed termination when used in the
// positions the flex grammar allows for an activity of the subprocess's
// *effective kind*:
//
//   - a subprocess whose activities are all compensatable behaves like a
//     compensatable activity (it can always be fully compensated);
//   - a subprocess with guaranteed termination that contains
//     non-compensatable activities behaves like a pivot: once its first
//     state-determining activity commits, it can only complete forward —
//     so the parent must treat it like a pivot (provide an all-retriable
//     alternative or place it last);
//   - a subprocess consisting only of retriable activities behaves like
//     a retriable activity.
//
// EffectiveKind reports this classification; Embed performs the wiring.
// Callers should re-validate the composed process with
// ValidateGuaranteedTermination, which remains the authoritative check.

// EffectiveKind classifies a process with guaranteed termination by the
// termination guarantee it offers when used as a subprocess: it returns
// activity.Compensatable semantics ("c") when every activity is
// compensatable, "r" when every activity is retriable, and "p"
// otherwise.
func EffectiveKind(p *Process) string {
	allComp, allRet := true, true
	for _, a := range p.Activities() {
		if a.Kind.NonCompensatable() {
			allComp = false
		}
		if !a.Kind.GuaranteedToCommit() {
			allRet = false
		}
	}
	switch {
	case allComp:
		return "c"
	case allRet:
		return "r"
	default:
		return "p"
	}
}

// Embed copies every activity and edge of sub into the builder,
// renumbering local ids by adding offset. The ids used by sub must all
// be small enough that offset+id does not collide with existing ids —
// Build reports collisions. It returns the renumbered entry (root) ids
// and exit (leaf) ids so the caller can wire the subprocess into the
// parent's precedence order with Seq/Chain.
func (b *Builder) Embed(sub *Process, offset int) (entries, exits []int) {
	for _, a := range sub.Activities() {
		if a.Kind == activity.Compensatable {
			b.AddComp(a.Local+offset, a.Service, a.Kind, a.Compensation)
		} else {
			b.Add(a.Local+offset, a.Service, a.Kind)
		}
	}
	for _, a := range sub.Activities() {
		for _, chain := range sub.Chains(a.Local) {
			shifted := make([]int, len(chain))
			for i, t := range chain {
				shifted[i] = t + offset
			}
			b.Chain(a.Local+offset, shifted...)
		}
	}
	for _, r := range sub.Roots() {
		entries = append(entries, r+offset)
	}
	for _, a := range sub.Activities() {
		if len(sub.Succs(a.Local)) == 0 {
			exits = append(exits, a.Local+offset)
		}
	}
	sort.Ints(entries)
	sort.Ints(exits)
	return entries, exits
}

// Compose builds a sequential composition of subprocesses: each
// subprocess's exits precede the next subprocess's entries. It is a
// convenience over Embed for the common pipeline case. The composed
// process is validated for guaranteed termination.
func Compose(id ID, subs ...*Process) (*Process, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("process: compose needs at least one subprocess")
	}
	b := NewBuilder(id)
	offset := 0
	var prevExits []int
	for _, sub := range subs {
		maxLocal := 0
		for _, a := range sub.Activities() {
			if a.Local > maxLocal {
				maxLocal = a.Local
			}
		}
		entries, exits := b.Embed(sub, offset)
		for _, pe := range prevExits {
			for _, en := range entries {
				b.Seq(pe, en)
			}
		}
		prevExits = exits
		offset += maxLocal
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("process: composing %s: %w", id, err)
	}
	if err := ValidateGuaranteedTermination(p); err != nil {
		return nil, fmt.Errorf("process: composition %s violates guaranteed termination: %w", id, err)
	}
	return p, nil
}
