// Package process implements the transactional process model of
// Definition 5 of the paper: a process P is a triple (A, ≪, ◁) where A is
// a set of activities, ≪ is a partial (precedence) order over A, and ◁ is
// a preference order over ≪ establishing alternative execution paths.
//
// Processes with well-formed flex structure have the guaranteed
// termination property (Section 3.1): at least one of the valid
// executions specified by the alternatives is effected, or the process
// aborts leaving no effects. The package provides the structure itself,
// validation of guaranteed termination (both structurally and by
// exhaustive failure exploration), the B-REC/F-REC process states, and
// the completion C(P) used to build completed process schedules.
package process

import (
	"fmt"
	"sort"

	"transproc/internal/activity"
)

// ID identifies a process, e.g. "P1".
type ID string

// Activity is one activity a_{i_k} of a process: an invocation of a
// service with a given termination guarantee. Local ids follow the
// paper's subscript notation and are unique within the process.
type Activity struct {
	Local   int
	Service string
	Kind    activity.Kind
	// Compensation names the compensating service for compensatable
	// activities. Defaults to Service + "⁻¹" when built via Builder.
	Compensation string
}

// String renders the activity in the paper's a_{i_k}^kind notation.
func (a *Activity) String() string {
	return fmt.Sprintf("a_%d^%s(%s)", a.Local, a.Kind, a.Service)
}

// Process is an immutable process definition P_i = (A, ≪, ◁). Build one
// with a Builder. The precedence order is a DAG over activities; the
// preference order is represented as "chains": for a node h, each chain
// is a ◁-totally-ordered list of alternative successors (the first is
// preferred; later entries are executed only after the earlier
// alternative failed and was compensated). A node may have several
// chains; the heads of all chains are activated in parallel (AND-split).
type Process struct {
	ID    ID
	byID  map[int]*Activity
	order []int // local ids in deterministic (sorted) order

	chains map[int][][]int // node -> list of alternative chains
	preds  map[int][]int   // direct precedence predecessors
	succs  map[int][]int   // direct precedence successors (all alternatives)
	roots  []int           // nodes with no predecessor

	// reach[a] is the set of nodes reachable from a via succs (excluding
	// a itself); precomputed for alternative-subtree bookkeeping.
	reach map[int]map[int]bool
}

// Activities returns the activities in ascending local-id order.
func (p *Process) Activities() []*Activity {
	out := make([]*Activity, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.byID[id])
	}
	return out
}

// Activity returns the activity with the given local id, or nil.
func (p *Process) Activity(local int) *Activity { return p.byID[local] }

// Len returns the number of activities.
func (p *Process) Len() int { return len(p.order) }

// Roots returns the local ids of activities without predecessors.
func (p *Process) Roots() []int { return append([]int(nil), p.roots...) }

// Chains returns the alternative chains leaving node h. The first entry
// of each chain is the preferred successor.
func (p *Process) Chains(h int) [][]int {
	out := make([][]int, len(p.chains[h]))
	for i, c := range p.chains[h] {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// Preds returns the direct precedence predecessors of a node.
func (p *Process) Preds(local int) []int { return append([]int(nil), p.preds[local]...) }

// Succs returns all direct precedence successors of a node, across all
// chains and chain positions.
func (p *Process) Succs(local int) []int { return append([]int(nil), p.succs[local]...) }

// Before reports whether a ≪ b in the precedence order (strictly).
func (p *Process) Before(a, b int) bool {
	return p.reach[a][b]
}

// Subtree returns a plus every node reachable from a, in ascending order.
func (p *Process) Subtree(a int) []int {
	out := []int{a}
	for n := range p.reach[a] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// StateDetermining returns the local id of the state-determining activity
// s_{i_0}: the first non-compensatable activity of the process in the
// precedence order (i.e., a non-compensatable activity all of whose
// proper ≪-predecessors are compensatable). For processes consisting
// only of compensatable activities it returns 0 and false.
func (p *Process) StateDetermining() (int, bool) {
	candidates := make([]int, 0, 2)
	for _, id := range p.order {
		a := p.byID[id]
		if a.Kind == activity.Compensatable {
			continue
		}
		first := true
		for other := range p.byID {
			if other != id && p.Before(other, id) && p.byID[other].Kind != activity.Compensatable {
				first = false
				break
			}
		}
		if first {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	sort.Ints(candidates)
	return candidates[0], true
}

// Subsystems returns the distinct service names used by the process,
// sorted; useful for conservative locking baselines.
func (p *Process) Services() []string {
	set := make(map[string]bool)
	for _, a := range p.byID {
		set[a.Service] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders the process compactly.
func (p *Process) String() string {
	s := fmt.Sprintf("%s{", p.ID)
	for i, id := range p.order {
		if i > 0 {
			s += " "
		}
		s += p.byID[id].String()
	}
	return s + "}"
}

// DefaultCompensationName derives the compensating service name used when
// none is given explicitly: the paper's a⁻¹ notation.
func DefaultCompensationName(service string) string { return service + "⁻¹" }

// WithID returns a view of the process under a different id. The
// structural data is shared (Process is immutable after Build), so the
// operation is cheap; it exists for process restarts, which re-enter a
// schedule as a fresh process.
func (p *Process) WithID(id ID) *Process {
	cp := *p
	cp.ID = id
	return &cp
}

// Builder assembles a Process. The zero value is not usable; use New.
type Builder struct {
	id     ID
	acts   map[int]*Activity
	chains map[int][][]int
	errs   []error
}

// NewBuilder returns a builder for process id.
func NewBuilder(id ID) *Builder {
	return &Builder{
		id:     id,
		acts:   make(map[int]*Activity),
		chains: make(map[int][][]int),
	}
}

// Add declares activity with the given local id, service and kind. For
// compensatable activities the compensating service defaults to
// DefaultCompensationName(service).
func (b *Builder) Add(local int, service string, kind activity.Kind) *Builder {
	return b.AddComp(local, service, kind, "")
}

// AddComp is Add with an explicit compensating service name.
func (b *Builder) AddComp(local int, service string, kind activity.Kind, compensation string) *Builder {
	switch {
	case local <= 0:
		b.errs = append(b.errs, fmt.Errorf("process %s: local id %d must be positive", b.id, local))
	case b.acts[local] != nil:
		b.errs = append(b.errs, fmt.Errorf("process %s: duplicate local id %d", b.id, local))
	case service == "":
		b.errs = append(b.errs, fmt.Errorf("process %s: activity %d has empty service", b.id, local))
	case kind == activity.Compensation:
		b.errs = append(b.errs, fmt.Errorf("process %s: activity %d: compensations cannot be declared directly", b.id, local))
	case !kind.Valid():
		b.errs = append(b.errs, fmt.Errorf("process %s: activity %d has invalid kind", b.id, local))
	default:
		if kind == activity.Compensatable && compensation == "" {
			compensation = DefaultCompensationName(service)
		}
		if kind != activity.Compensatable && compensation != "" {
			b.errs = append(b.errs, fmt.Errorf("process %s: activity %d (%v) cannot have a compensation", b.id, local, kind))
			return b
		}
		b.acts[local] = &Activity{Local: local, Service: service, Kind: kind, Compensation: compensation}
	}
	return b
}

// Seq declares the precedence a ≪ b with no alternatives: a single-entry
// chain from a containing b. Multiple Seq calls from the same node create
// parallel (AND) successors.
func (b *Builder) Seq(a, c int) *Builder { return b.Chain(a, c) }

// Chain declares a ◁-ordered alternative chain from node h: alt[0] is the
// preferred successor, alt[1] is executed only if the execution path via
// alt[0] failed (and its committed activities were compensated), and so
// on. A node may own several chains; their heads run in parallel.
func (b *Builder) Chain(h int, alts ...int) *Builder {
	if len(alts) == 0 {
		b.errs = append(b.errs, fmt.Errorf("process %s: empty chain from %d", b.id, h))
		return b
	}
	b.chains[h] = append(b.chains[h], append([]int(nil), alts...))
	return b
}

// Build validates the structure and returns the immutable process.
func (b *Builder) Build() (*Process, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.acts) == 0 {
		return nil, fmt.Errorf("process %s: no activities", b.id)
	}
	p := &Process{
		ID:     b.id,
		byID:   make(map[int]*Activity, len(b.acts)),
		chains: make(map[int][][]int, len(b.chains)),
		preds:  make(map[int][]int),
		succs:  make(map[int][]int),
		reach:  make(map[int]map[int]bool),
	}
	for id, a := range b.acts {
		cp := *a
		p.byID[id] = &cp
		p.order = append(p.order, id)
	}
	sort.Ints(p.order)

	seenEdge := make(map[[2]int]bool)
	for h, chains := range b.chains {
		if p.byID[h] == nil {
			return nil, fmt.Errorf("process %s: chain from undeclared activity %d", b.id, h)
		}
		for _, chain := range chains {
			for _, t := range chain {
				if p.byID[t] == nil {
					return nil, fmt.Errorf("process %s: chain from %d references undeclared activity %d", b.id, h, t)
				}
				if t == h {
					return nil, fmt.Errorf("process %s: self edge on %d", b.id, h)
				}
				e := [2]int{h, t}
				if seenEdge[e] {
					return nil, fmt.Errorf("process %s: duplicate edge %d->%d", b.id, h, t)
				}
				seenEdge[e] = true
				p.succs[h] = append(p.succs[h], t)
				p.preds[t] = append(p.preds[t], h)
			}
			p.chains[h] = append(p.chains[h], append([]int(nil), chain...))
		}
	}
	for _, id := range p.order {
		sort.Ints(p.succs[id])
		sort.Ints(p.preds[id])
		if len(p.preds[id]) == 0 {
			p.roots = append(p.roots, id)
		}
	}
	if err := p.computeReach(); err != nil {
		return nil, err
	}
	if err := p.validateAlternatives(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for fixtures.
func (b *Builder) MustBuild() *Process {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// computeReach computes transitive reachability and rejects cycles: both
// ≪ and ◁ are irreflexive, transitive and acyclic (Section 3.1).
func (p *Process) computeReach() error {
	// Kahn topological sort to detect cycles.
	indeg := make(map[int]int, len(p.order))
	for _, id := range p.order {
		indeg[id] = len(p.preds[id])
	}
	queue := append([]int(nil), p.roots...)
	var topo []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		topo = append(topo, n)
		for _, s := range p.succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != len(p.order) {
		return fmt.Errorf("process %s: precedence order ≪ contains a cycle", p.ID)
	}
	for _, id := range p.order {
		p.reach[id] = make(map[int]bool)
	}
	// Propagate reachability in reverse topological order.
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		for _, s := range p.succs[n] {
			p.reach[n][s] = true
			for r := range p.reach[s] {
				p.reach[n][r] = true
			}
		}
	}
	return nil
}

// validateAlternatives checks that alternative branches are well-scoped:
// every node inside the subtree of a non-preferred position of a chain is
// reachable only via nodes of that subtree (so the branch can be
// abandoned or compensated as a unit), and that a node does not appear in
// two positions of the same chain.
func (p *Process) validateAlternatives() error {
	for h, chains := range p.chains {
		for _, chain := range chains {
			seen := make(map[int]bool, len(chain))
			for _, t := range chain {
				if seen[t] {
					return fmt.Errorf("process %s: node %d appears twice in a chain from %d", p.ID, t, h)
				}
				seen[t] = true
			}
			if len(chain) == 1 {
				continue
			}
			for _, t := range chain {
				sub := make(map[int]bool)
				for _, n := range p.Subtree(t) {
					sub[n] = true
				}
				for n := range sub {
					if n == t {
						// The branch head is entered from h itself.
						for _, pr := range p.preds[n] {
							if pr != h && !sub[pr] {
								return fmt.Errorf("process %s: alternative branch head %d has external predecessor %d", p.ID, n, pr)
							}
						}
						continue
					}
					for _, pr := range p.preds[n] {
						if !sub[pr] {
							return fmt.Errorf("process %s: node %d inside alternative branch %d has external predecessor %d", p.ID, n, t, pr)
						}
					}
				}
			}
		}
	}
	return nil
}
