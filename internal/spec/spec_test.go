package spec

import (
	"strings"
	"testing"

	"transproc/internal/scheduler"
)

const validDoc = `{
  "subsystems": [
    {"name": "hotel", "seed": 1, "services": [
      {"name": "book", "kind": "compensatable", "writes": ["rooms"], "cost": 2},
      {"name": "bookBudget", "kind": "compensatable", "writes": ["budgetRooms"], "cost": 1},
      {"name": "confirm", "kind": "retriable", "writes": ["mail"]}
    ]},
    {"name": "bank", "seed": 2, "services": [
      {"name": "charge", "kind": "pivot", "writes": ["ledger"], "cost": 3}
    ]}
  ],
  "processes": [
    {"id": "Trip1",
     "activities": [
       {"local": 1, "service": "book"},
       {"local": 2, "service": "bookBudget"},
       {"local": 3, "service": "charge"},
       {"local": 4, "service": "confirm"},
       {"local": 5, "service": "charge"},
       {"local": 6, "service": "confirm"}
     ],
     "chains": [{"from": 1, "alts": [3, 5]}],
     "seq": [[2, 1], [3, 4], [5, 6]]
    },
    {"id": "Trip2",
     "activities": [
       {"local": 1, "service": "book"},
       {"local": 2, "service": "charge"},
       {"local": 3, "service": "confirm"}
     ],
     "seq": [[1, 2], [2, 3]],
     "arrival": 5
    }
  ]
}`

func TestLoadAndRun(t *testing.T) {
	t.Parallel()
	fed, jobs, err := Load([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[1].Arrival != 5 {
		t.Fatalf("arrival = %d", jobs[1].Arrival)
	}
	// Default compensation name derived.
	spec, ok := fed.Spec("book⁻¹")
	if !ok {
		t.Fatalf("auto compensation not registered")
	}
	_ = spec
	eng, err := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CommittedProcs != 2 {
		t.Fatalf("both processes must commit: %+v", res.Metrics)
	}
	ok2, _, _, err := res.Schedule.PRED()
	if err != nil || !ok2 {
		t.Fatalf("PRED = %v, %v", ok2, err)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad json", `{`, "spec:"},
		{"unknown field", `{"subsystems": [{"nope": 1}], "processes": []}`, "unknown field"},
		{"no subsystems", `{"subsystems": [], "processes": [{"id": "x"}]}`, "no subsystems"},
		{"no processes", `{"subsystems": [{"name": "a"}], "processes": []}`, "no processes"},
		{"trailing", validDoc + `{"x": 1}`, "trailing data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.doc))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want fragment %q", err, c.want)
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"unknown kind",
			`{"subsystems": [{"name": "a", "services": [{"name": "s", "kind": "magic"}]}],
			  "processes": [{"id": "P", "activities": [{"local": 1, "service": "s"}]}]}`,
			"unknown kind",
		},
		{
			"unknown service",
			`{"subsystems": [{"name": "a", "services": [{"name": "s", "kind": "retriable"}]}],
			  "processes": [{"id": "P", "activities": [{"local": 1, "service": "ghost"}]}]}`,
			"unknown service",
		},
		{
			"missing id",
			`{"subsystems": [{"name": "a", "services": [{"name": "s", "kind": "retriable"}]}],
			  "processes": [{"id": "", "activities": [{"local": 1, "service": "s"}]}]}`,
			"without id",
		},
		{
			"ill-formed process",
			`{"subsystems": [{"name": "a", "services": [
			    {"name": "p", "kind": "pivot"},
			    {"name": "c", "kind": "compensatable"}]}],
			  "processes": [{"id": "P",
			    "activities": [{"local": 1, "service": "p"}, {"local": 2, "service": "c"}],
			    "seq": [[1, 2]]}]}`,
			"guaranteed termination",
		},
		{
			"duplicate subsystem",
			`{"subsystems": [{"name": "a", "services": [{"name": "s", "kind": "retriable"}]},
			                 {"name": "a", "services": []}],
			  "processes": [{"id": "P", "activities": [{"local": 1, "service": "s"}]}]}`,
			"duplicate subsystem",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := Parse([]byte(c.doc))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, _, err = f.Build()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want fragment %q", err, c.want)
			}
		})
	}
}

func TestAlternativeChainFromSpec(t *testing.T) {
	t.Parallel()
	fed, jobs, err := Load([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	// Force the preferred charge of Trip1 to fail once: the process
	// must take the alternative branch (5, 6).
	bank, _ := fed.Subsystem("bank")
	bank.ForceFail("charge", 1)
	eng, _ := scheduler.New(fed, scheduler.Config{Mode: scheduler.PRED})
	res, err := eng.RunJobs(jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcomes["Trip1"].Committed {
		t.Fatalf("Trip1 must commit via the alternative: %s", res.Schedule)
	}
}
