// Package spec provides a declarative JSON format for defining
// federations of transactional subsystems and transactional processes,
// so that deployments can be described in configuration instead of
// code. Activity kinds are declared once, on the services; processes
// reference services by name and inherit the termination guarantees.
//
// Example document:
//
//	{
//	  "subsystems": [
//	    {"name": "hotel", "seed": 1, "services": [
//	      {"name": "book", "kind": "compensatable", "compensation": "book⁻¹",
//	       "writes": ["rooms"], "cost": 2},
//	      {"name": "confirm", "kind": "retriable", "writes": ["mail"]}
//	    ]}
//	  ],
//	  "processes": [
//	    {"id": "Trip",
//	     "activities": [{"local": 1, "service": "book"},
//	                    {"local": 2, "service": "confirm"}],
//	     "seq": [[1, 2]],
//	     "arrival": 0}
//	  ]
//	}
//
// Chains (alternative execution paths, the preference order ◁) are
// declared as {"from": 2, "alts": [3, 5]}.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
)

// File is the root document.
type File struct {
	Subsystems []SubsystemSpec `json:"subsystems"`
	Processes  []ProcessSpec   `json:"processes"`
}

// SubsystemSpec declares one simulated resource manager.
type SubsystemSpec struct {
	Name     string        `json:"name"`
	Seed     int64         `json:"seed"`
	Services []ServiceSpec `json:"services"`
}

// ServiceSpec declares one service.
type ServiceSpec struct {
	Name         string   `json:"name"`
	Kind         string   `json:"kind"` // compensatable | pivot | retriable
	Compensation string   `json:"compensation,omitempty"`
	Reads        []string `json:"reads,omitempty"`
	Writes       []string `json:"writes,omitempty"`
	Commutative  bool     `json:"commutative,omitempty"`
	FailureProb  float64  `json:"failureProb,omitempty"`
	Cost         int      `json:"cost,omitempty"`
}

// ProcessSpec declares one process; activity kinds are inherited from
// the referenced services.
type ProcessSpec struct {
	ID         string         `json:"id"`
	Activities []ActivitySpec `json:"activities"`
	Seq        [][2]int       `json:"seq,omitempty"`
	Chains     []ChainSpec    `json:"chains,omitempty"`
	Arrival    int64          `json:"arrival,omitempty"`
}

// ActivitySpec declares one activity.
type ActivitySpec struct {
	Local   int    `json:"local"`
	Service string `json:"service"`
}

// ChainSpec declares a ◁-ordered alternative chain from an activity.
type ChainSpec struct {
	From int   `json:"from"`
	Alts []int `json:"alts"`
}

// Parse decodes a document and performs syntactic validation.
func Parse(data []byte) (*File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := checkEOF(dec); err != nil {
		return nil, err
	}
	if len(f.Subsystems) == 0 {
		return nil, fmt.Errorf("spec: no subsystems declared")
	}
	if len(f.Processes) == 0 {
		return nil, fmt.Errorf("spec: no processes declared")
	}
	return &f, nil
}

func checkEOF(dec *json.Decoder) error {
	if dec.More() {
		return fmt.Errorf("spec: trailing data after document")
	}
	return nil
}

// kindOf maps the textual kind.
func kindOf(s string) (activity.Kind, error) {
	switch s {
	case "compensatable":
		return activity.Compensatable, nil
	case "pivot":
		return activity.Pivot, nil
	case "retriable":
		return activity.Retriable, nil
	default:
		return 0, fmt.Errorf("spec: unknown kind %q (want compensatable|pivot|retriable)", s)
	}
}

// BuildFederation materializes only the subsystems section — the shape
// a long-running server needs, where the federation is fixed at boot
// and processes arrive later over the wire.
func BuildFederation(subs []SubsystemSpec) (*subsystem.Federation, error) {
	fed := subsystem.NewFederation()
	for _, ss := range subs {
		sub := subsystem.New(ss.Name, ss.Seed)
		for _, sv := range ss.Services {
			kind, err := kindOf(sv.Kind)
			if err != nil {
				return nil, fmt.Errorf("spec: subsystem %s service %s: %w", ss.Name, sv.Name, err)
			}
			comp := sv.Compensation
			if kind == activity.Compensatable && comp == "" {
				comp = process.DefaultCompensationName(sv.Name)
			}
			if err := sub.Register(activity.Spec{
				Name: sv.Name, Kind: kind, Subsystem: ss.Name,
				Compensation: comp,
				ReadSet:      sv.Reads, WriteSet: sv.Writes,
				Commutative: sv.Commutative,
				FailureProb: sv.FailureProb, Cost: sv.Cost,
			}); err != nil {
				return nil, fmt.Errorf("spec: %w", err)
			}
		}
		if err := fed.Add(sub); err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
	}
	return fed, nil
}

// BuildProcess materializes one process spec against an existing
// federation (kinds inherited from the registered services) and
// validates it for guaranteed termination.
func BuildProcess(fed *subsystem.Federation, ps ProcessSpec) (*process.Process, error) {
	if ps.ID == "" {
		return nil, fmt.Errorf("spec: process without id")
	}
	b := process.NewBuilder(process.ID(ps.ID))
	for _, as := range ps.Activities {
		svcSpec, ok := fed.Spec(as.Service)
		if !ok {
			return nil, fmt.Errorf("spec: process %s references unknown service %q", ps.ID, as.Service)
		}
		if svcSpec.Kind == activity.Compensatable {
			b.AddComp(as.Local, as.Service, svcSpec.Kind, svcSpec.Compensation)
		} else {
			b.Add(as.Local, as.Service, svcSpec.Kind)
		}
	}
	for _, e := range ps.Seq {
		b.Seq(e[0], e[1])
	}
	for _, c := range ps.Chains {
		b.Chain(c.From, c.Alts...)
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("spec: process %s: %w", ps.ID, err)
	}
	if err := process.ValidateGuaranteedTermination(p); err != nil {
		return nil, fmt.Errorf("spec: process %s: %w", ps.ID, err)
	}
	return p, nil
}

// FromProcess serializes a built process back into its declarative
// form, so generated workloads can be submitted over the wire. Kinds
// are dropped (they are re-inherited from the services on rebuild);
// the precedence/preference structure round-trips through Chains
// (a Seq edge is a single-element chain).
func FromProcess(p *process.Process) ProcessSpec {
	ps := ProcessSpec{ID: string(p.ID)}
	for _, a := range p.Activities() {
		ps.Activities = append(ps.Activities, ActivitySpec{Local: a.Local, Service: a.Service})
	}
	for _, a := range p.Activities() {
		for _, chain := range p.Chains(a.Local) {
			if len(chain) == 1 {
				ps.Seq = append(ps.Seq, [2]int{a.Local, chain[0]})
			} else {
				ps.Chains = append(ps.Chains, ChainSpec{From: a.Local, Alts: chain})
			}
		}
	}
	return ps
}

// Build materializes the document: subsystems with their services, and
// processes as scheduler jobs (kinds inherited from the services).
// Every process is validated for guaranteed termination.
func (f *File) Build() (*subsystem.Federation, []scheduler.Job, error) {
	fed, err := BuildFederation(f.Subsystems)
	if err != nil {
		return nil, nil, err
	}
	var jobs []scheduler.Job
	for _, ps := range f.Processes {
		p, err := BuildProcess(fed, ps)
		if err != nil {
			return nil, nil, err
		}
		jobs = append(jobs, scheduler.Job{Proc: p, Arrival: ps.Arrival})
	}
	return fed, jobs, nil
}

// Load parses and builds in one step.
func Load(data []byte) (*subsystem.Federation, []scheduler.Job, error) {
	f, err := Parse(data)
	if err != nil {
		return nil, nil, err
	}
	return f.Build()
}
