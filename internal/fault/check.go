package fault

import (
	"fmt"
	"reflect"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// CheckInput is everything CheckRecovered needs about a finished
// crash-recovery cycle.
type CheckInput struct {
	// Fed is the surviving federation recovery ran against.
	Fed *subsystem.Federation
	// Log is the (unwrapped) write-ahead log after recovery.
	Log wal.Log
	// Defs are the original process definitions (by origin id).
	Defs []*process.Process
	// PreCrashRecords is the number of log records that were durable
	// when the (final) crash hit; everything after is recovery's tail.
	// When the log carries checkpoints, the count is in *expanded*
	// coordinates (len(wal.Expand(preRecs).Records)) — every invariant
	// is evaluated over the expanded replay view.
	PreCrashRecords int
	// PreCrashFull is the same boundary in full-log coordinates (the
	// non-checkpoint record count at crash time); only the
	// checkpoint-vs-full differential sub-check needs it.
	PreCrashFull int
	// Compacted marks a log whose summarized history may have been
	// physically truncated; the full-replay differential is then
	// impossible and skipped (the checkpointed path is still fully
	// checked).
	Compacted bool
	// PriorCrashLSNs are the boundary LSNs of EARLIER crash/recovery
	// epochs the log carries (a server that crashed, recovered, re-ran
	// and crashed again). The schedule reconstruction needs them to
	// synthesize crash aborts for the earlier epochs' interrupted
	// processes too — the positional PreCrashRecords boundary only
	// describes the final crash. Empty for a single-crash log.
	PriorCrashLSNs []int64
}

// reconstruct builds the observed schedule from a record list with the
// final crash at positional boundary, folding in any earlier epochs'
// crash boundaries (PriorCrashLSNs). The positional boundary is mapped
// to its LSN so a single epoch-aware reconstruction covers both.
func (in CheckInput) reconstruct(table *conflict.Table, recs []wal.Record, boundary int) (*schedule.Schedule, error) {
	if len(in.PriorCrashLSNs) == 0 {
		return ScheduleFromWAL(table, in.Defs, recs, boundary)
	}
	lsns := append([]int64(nil), in.PriorCrashLSNs...)
	if boundary > 0 && boundary <= len(recs) {
		lsns = append(lsns, recs[boundary-1].LSN)
	}
	return ScheduleFromWALEpochs(table, in.Defs, recs, lsns)
}

// CheckRecovered asserts the paper's recovery guarantees over the
// post-recovery state:
//
//  1. every process the log mentions reached a terminal state (no lost
//     pivots, guaranteed termination through the group abort);
//  2. no in-doubt transaction survives at any subsystem;
//  3. the combined pre-crash + recovery schedule reconstructed from
//     the log is prefix-reducible (PRED, Theorem 1);
//  4. recovery's compensations ran in reverse global order of their
//     base activities (Lemma 2);
//  5. subsystem state equals the deltas of exactly the committed
//     activities in that schedule — nothing lost, nothing applied
//     twice (exactly-once across the crash);
//  6. a further Recover over the same state is a no-op (idempotent
//     recovery).
//
// The returned error describes the first violated invariant.
func CheckRecovered(in CheckInput) error {
	raw, err := in.Log.Records()
	if err != nil {
		return fmt.Errorf("reading log: %w", err)
	}
	// All invariants run over the expanded replay view — what recovery
	// itself saw: the latest checkpoint's live records plus the
	// post-horizon tail (identical to the raw log when no checkpoint
	// exists). Checkpoint-summarized terminated work enters invariant 5
	// through the checkpoint's per-service counts.
	exp := wal.Expand(raw)
	recs := exp.Records
	images, err := wal.Analyze(recs)
	if err == wal.ErrNoLog {
		images = nil
	} else if err != nil {
		return fmt.Errorf("analyzing log: %w", err)
	}

	// 1. Terminal states.
	for id, img := range images {
		if !img.Terminated {
			return fmt.Errorf("process %s not terminal after recovery", id)
		}
	}

	// 2. No in-doubt transactions.
	if doubt := in.Fed.InDoubt(); len(doubt) > 0 {
		return fmt.Errorf("in-doubt transactions survive recovery: %v", doubt)
	}

	// 3. PRED over the combined schedule.
	table, err := in.Fed.ConflictTable()
	if err != nil {
		return fmt.Errorf("conflict table: %w", err)
	}
	sched, err := in.reconstruct(table, recs, in.PreCrashRecords)
	if err != nil {
		return fmt.Errorf("reconstructing schedule: %w", err)
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		return fmt.Errorf("PRED check: %w", err)
	}
	if !ok {
		return fmt.Errorf("combined schedule not prefix-reducible (prefix %d):\n%s", at, sched)
	}

	// 4. Lemma 2 over recovery's tail: the group abort compensates in
	// strictly decreasing order of the base activities' commit
	// positions — also across interrupted recovery passes, since a
	// later pass only re-plans compensations whose bases precede the
	// last one the interrupted pass logged.
	base := make(map[string]int) // "proc/local" -> commit position
	for i, r := range recs {
		committed := (r.Type == wal.RecResolved && r.Commit) ||
			(r.Type == wal.RecOutcome && r.Outcome == "committed")
		if committed {
			base[fmt.Sprintf("%s/%d", r.Proc, r.Local)] = i
		}
	}
	last := -1
	for i := in.PreCrashRecords; i < len(recs); i++ {
		r := recs[i]
		if r.Type != wal.RecCompensate {
			continue
		}
		b, known := base[fmt.Sprintf("%s/%d", r.Proc, r.Local)]
		if !known {
			return fmt.Errorf("recovery compensated %s/%d whose base commit is not in the log", r.Proc, r.Local)
		}
		if last >= 0 && b >= last {
			return fmt.Errorf("Lemma 2 violated: recovery compensation of %s/%d (base @%d) after base @%d", r.Proc, r.Local, b, last)
		}
		last = b
	}

	// 5. Exactly-once effects: replay the committed invocations'
	// write-set deltas and compare with the subsystems' stores. Work
	// the checkpoint summarized away is accounted through its
	// per-service committed counts (compensations carry their own
	// service name, so the spec lookup assigns the -1 sign as usual).
	want := make(map[string]int64)
	if exp.Checkpoint != nil {
		for svc, n := range exp.Checkpoint.AppliedSvc {
			spec, ok := in.Fed.Spec(svc)
			if !ok {
				return fmt.Errorf("checkpoint summarizes unknown service %q", svc)
			}
			delta := n
			if spec.Kind == activity.Compensation {
				delta = -n
			}
			sub, _ := in.Fed.Owner(svc)
			for _, item := range spec.WriteSet {
				want[sub.Name()+"/"+item] += delta
			}
		}
	}
	for _, ev := range sched.Events() {
		if ev.Type != schedule.Invoke {
			continue
		}
		spec, ok := in.Fed.Spec(ev.Service)
		if !ok {
			return fmt.Errorf("schedule uses unknown service %q", ev.Service)
		}
		delta := int64(1)
		if spec.Kind == activity.Compensation {
			delta = -1
		}
		sub, _ := in.Fed.Owner(ev.Service)
		for _, item := range spec.WriteSet {
			want[sub.Name()+"/"+item] += delta
		}
	}
	got := in.Fed.Snapshot()
	for item, v := range got {
		if v < 0 {
			return fmt.Errorf("item %s negative after recovery (%d)", item, v)
		}
		if v != want[item] {
			return fmt.Errorf("item %s: subsystem has %d, log-committed work accounts for %d", item, v, want[item])
		}
	}
	for item, v := range want {
		if v != 0 && got[item] != v {
			return fmt.Errorf("item %s: log-committed work accounts for %d, subsystem has %d", item, v, got[item])
		}
	}

	// 6. Idempotence: a second recovery changes nothing. Counted over
	// the raw log — recovery never checkpoints, so any append shows up
	// there (the expanded view renumbers across a checkpoint and cannot
	// be compared directly).
	before := len(raw)
	report, err := scheduler.Recover(in.Fed, in.Log, in.Defs)
	if err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	after, err := in.Log.Records()
	if err != nil {
		return fmt.Errorf("re-reading log: %w", err)
	}
	if len(after) != before {
		return fmt.Errorf("second recovery appended %d records (want 0)", len(after)-before)
	}
	if report.Compensations != 0 || report.ForwardInvocations != 0 ||
		report.Resolved2PCCommitted != 0 || report.Resolved2PCAborted != 0 {
		return fmt.Errorf("second recovery did work: %+v", report)
	}

	// 7. Differential: when the full history is still on disk (a
	// checkpointed but uncompacted log), checkpoint-based recovery must
	// be state- and outcome-identical to a full-log replay — same
	// per-process images for every live process, terminated-only
	// summaries, a prefix-reducible full schedule and the same
	// exactly-once accounting without the checkpoint's summary counts.
	if exp.Checkpoint != nil && !in.Compacted {
		if err := checkFullReplayEquivalence(in, raw, images, got); err != nil {
			return fmt.Errorf("checkpoint/full-replay differential: %w", err)
		}
	}
	return nil
}

// checkFullReplayEquivalence replays the complete (checkpoint-free)
// history and cross-checks it against the expanded-view results: the
// checkpoint must be a lossless summary.
func checkFullReplayEquivalence(in CheckInput, raw []wal.Record, expImages map[string]*wal.ProcImage, got map[string]int64) error {
	var full []wal.Record
	for _, r := range raw {
		if r.Type != wal.RecCheckpoint {
			full = append(full, r)
		}
	}
	fullImages, err := wal.Analyze(full)
	if err != nil && err != wal.ErrNoLog {
		return fmt.Errorf("analyzing full log: %w", err)
	}
	// Every process the expanded view knows must have the exact same
	// image under full replay; processes only the full log knows must
	// be terminated (that is what licensed summarizing them away).
	for id, img := range expImages {
		fimg := fullImages[id]
		if fimg == nil {
			return fmt.Errorf("process %s exists in the expanded view but not under full replay", id)
		}
		if !reflect.DeepEqual(img, fimg) {
			return fmt.Errorf("process %s: expanded image %+v != full-replay image %+v", id, img, fimg)
		}
	}
	for id, fimg := range fullImages {
		if expImages[id] != nil {
			continue
		}
		if !fimg.Terminated {
			return fmt.Errorf("process %s was summarized by the checkpoint but is not terminated under full replay", id)
		}
	}
	// The full combined schedule is prefix-reducible too.
	table, err := in.Fed.ConflictTable()
	if err != nil {
		return fmt.Errorf("conflict table: %w", err)
	}
	fullSched, err := in.reconstruct(table, full, in.PreCrashFull)
	if err != nil {
		return fmt.Errorf("reconstructing full schedule: %w", err)
	}
	ok, at, _, err := fullSched.PRED()
	if err != nil {
		return fmt.Errorf("full PRED check: %w", err)
	}
	if !ok {
		return fmt.Errorf("full-replay schedule not prefix-reducible (prefix %d)", at)
	}
	// Exactly-once from the full history alone (no checkpoint counts)
	// must match the same subsystem state.
	want := make(map[string]int64)
	for _, ev := range fullSched.Events() {
		if ev.Type != schedule.Invoke {
			continue
		}
		spec, ok := in.Fed.Spec(ev.Service)
		if !ok {
			return fmt.Errorf("full schedule uses unknown service %q", ev.Service)
		}
		delta := int64(1)
		if spec.Kind == activity.Compensation {
			delta = -1
		}
		sub, _ := in.Fed.Owner(ev.Service)
		for _, item := range spec.WriteSet {
			want[sub.Name()+"/"+item] += delta
		}
	}
	for item, v := range got {
		if v != want[item] {
			return fmt.Errorf("item %s: subsystem has %d, full-replay committed work accounts for %d", item, v, want[item])
		}
	}
	for item, v := range want {
		if v != 0 && got[item] != v {
			return fmt.Errorf("item %s: full-replay committed work accounts for %d, subsystem has %d", item, v, got[item])
		}
	}
	return nil
}
