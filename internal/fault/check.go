package fault

import (
	"fmt"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// CheckInput is everything CheckRecovered needs about a finished
// crash-recovery cycle.
type CheckInput struct {
	// Fed is the surviving federation recovery ran against.
	Fed *subsystem.Federation
	// Log is the (unwrapped) write-ahead log after recovery.
	Log wal.Log
	// Defs are the original process definitions (by origin id).
	Defs []*process.Process
	// PreCrashRecords is the number of log records that were durable
	// when the (final) crash hit; everything after is recovery's tail.
	PreCrashRecords int
}

// CheckRecovered asserts the paper's recovery guarantees over the
// post-recovery state:
//
//  1. every process the log mentions reached a terminal state (no lost
//     pivots, guaranteed termination through the group abort);
//  2. no in-doubt transaction survives at any subsystem;
//  3. the combined pre-crash + recovery schedule reconstructed from
//     the log is prefix-reducible (PRED, Theorem 1);
//  4. recovery's compensations ran in reverse global order of their
//     base activities (Lemma 2);
//  5. subsystem state equals the deltas of exactly the committed
//     activities in that schedule — nothing lost, nothing applied
//     twice (exactly-once across the crash);
//  6. a further Recover over the same state is a no-op (idempotent
//     recovery).
//
// The returned error describes the first violated invariant.
func CheckRecovered(in CheckInput) error {
	recs, err := in.Log.Records()
	if err != nil {
		return fmt.Errorf("reading log: %w", err)
	}
	images, err := wal.Analyze(recs)
	if err == wal.ErrNoLog {
		images = nil
	} else if err != nil {
		return fmt.Errorf("analyzing log: %w", err)
	}

	// 1. Terminal states.
	for id, img := range images {
		if !img.Terminated {
			return fmt.Errorf("process %s not terminal after recovery", id)
		}
	}

	// 2. No in-doubt transactions.
	if doubt := in.Fed.InDoubt(); len(doubt) > 0 {
		return fmt.Errorf("in-doubt transactions survive recovery: %v", doubt)
	}

	// 3. PRED over the combined schedule.
	table, err := in.Fed.ConflictTable()
	if err != nil {
		return fmt.Errorf("conflict table: %w", err)
	}
	sched, err := ScheduleFromWAL(table, in.Defs, recs, in.PreCrashRecords)
	if err != nil {
		return fmt.Errorf("reconstructing schedule: %w", err)
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		return fmt.Errorf("PRED check: %w", err)
	}
	if !ok {
		return fmt.Errorf("combined schedule not prefix-reducible (prefix %d):\n%s", at, sched)
	}

	// 4. Lemma 2 over recovery's tail: the group abort compensates in
	// strictly decreasing order of the base activities' commit
	// positions — also across interrupted recovery passes, since a
	// later pass only re-plans compensations whose bases precede the
	// last one the interrupted pass logged.
	base := make(map[string]int) // "proc/local" -> commit position
	for i, r := range recs {
		committed := (r.Type == wal.RecResolved && r.Commit) ||
			(r.Type == wal.RecOutcome && r.Outcome == "committed")
		if committed {
			base[fmt.Sprintf("%s/%d", r.Proc, r.Local)] = i
		}
	}
	last := -1
	for i := in.PreCrashRecords; i < len(recs); i++ {
		r := recs[i]
		if r.Type != wal.RecCompensate {
			continue
		}
		b, known := base[fmt.Sprintf("%s/%d", r.Proc, r.Local)]
		if !known {
			return fmt.Errorf("recovery compensated %s/%d whose base commit is not in the log", r.Proc, r.Local)
		}
		if last >= 0 && b >= last {
			return fmt.Errorf("Lemma 2 violated: recovery compensation of %s/%d (base @%d) after base @%d", r.Proc, r.Local, b, last)
		}
		last = b
	}

	// 5. Exactly-once effects: replay the committed invocations'
	// write-set deltas and compare with the subsystems' stores.
	want := make(map[string]int64)
	for _, ev := range sched.Events() {
		if ev.Type != schedule.Invoke {
			continue
		}
		spec, ok := in.Fed.Spec(ev.Service)
		if !ok {
			return fmt.Errorf("schedule uses unknown service %q", ev.Service)
		}
		delta := int64(1)
		if spec.Kind == activity.Compensation {
			delta = -1
		}
		sub, _ := in.Fed.Owner(ev.Service)
		for _, item := range spec.WriteSet {
			want[sub.Name()+"/"+item] += delta
		}
	}
	got := in.Fed.Snapshot()
	for item, v := range got {
		if v < 0 {
			return fmt.Errorf("item %s negative after recovery (%d)", item, v)
		}
		if v != want[item] {
			return fmt.Errorf("item %s: subsystem has %d, log-committed work accounts for %d", item, v, want[item])
		}
	}
	for item, v := range want {
		if v != 0 && got[item] != v {
			return fmt.Errorf("item %s: log-committed work accounts for %d, subsystem has %d", item, v, got[item])
		}
	}

	// 6. Idempotence: a second recovery changes nothing.
	before := len(recs)
	report, err := scheduler.Recover(in.Fed, in.Log, in.Defs)
	if err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	after, err := in.Log.Records()
	if err != nil {
		return fmt.Errorf("re-reading log: %w", err)
	}
	if len(after) != before {
		return fmt.Errorf("second recovery appended %d records (want 0)", len(after)-before)
	}
	if report.Compensations != 0 || report.ForwardInvocations != 0 ||
		report.Resolved2PCCommitted != 0 || report.Resolved2PCAborted != 0 {
		return fmt.Errorf("second recovery did work: %+v", report)
	}
	return nil
}
