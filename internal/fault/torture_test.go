package fault

import (
	"flag"
	"testing"
)

var (
	tortureSeed  = flag.Int64("torture.seed", -1, "run only this torture seed (reproduce a failure)")
	tortureFirst = flag.Int64("torture.first", 0, "first torture seed of the battery")
	tortureCount = flag.Int64("torture.count", 200, "number of torture seeds to run")
	tortureCkpt  = flag.Bool("torture.ckpt", false, "force fuzzy checkpoints (every 6 appends, compacting) onto every scenario")
	tortureDur   = flag.Bool("torture.durable", false, "force file-backed subsystem stores onto every scenario")
)

// forcedOpts returns the battery-wide overlay selected by the flags:
// -torture.ckpt puts checkpoints live under every crash class
// (compacting whenever the class already checkpoints or the overlay
// arms it); -torture.durable backs every scenario's subsystems with
// file-backed heap stores, so every crash class also kills and
// recovers durable pages.
func forcedOpts() TortureOpts {
	var o TortureOpts
	if *tortureCkpt {
		o.CheckpointEvery = 6
		o.Compact = true
	}
	o.Durable = *tortureDur
	return o
}

// TestTortureBattery runs the crash-torture battery: for each seed a
// deterministic workload is run under a seeded fault plan (WAL-budget
// crashes, named crash points, torn file tails, runtime kills,
// crash-during-recovery double faults), recovered, and checked against
// every recovery guarantee (see CheckRecovered). A failure names the
// single seed that reproduces it:
//
//	go test ./internal/fault -run TortureBattery -torture.seed=N -v
func TestTortureBattery(t *testing.T) {
	opts := forcedOpts()
	if *tortureSeed >= 0 {
		sc := ScenarioFor(*tortureSeed)
		opts.Apply(&sc)
		t.Logf("seed %d: class=%s engine=%s mode=%v ckptEvery=%d compact=%v plan=%+v",
			sc.Seed, sc.Class, sc.Engine, sc.Mode, sc.CheckpointEvery, sc.CompactOnCheckpoint, sc.Plan)
		if err := RunScenario(sc, t.TempDir()); err != nil {
			t.Fatal(err)
		}
		return
	}
	first, count := *tortureFirst, *tortureCount
	if testing.Short() && count > 50 {
		count = 50
	}
	dir := t.TempDir()
	crashed, clean := 0, 0
	byClass := make(map[string]int)
	for seed := first; seed < first+count; seed++ {
		sc := ScenarioFor(seed)
		opts.Apply(&sc)
		byClass[sc.Class]++
		if err := RunScenario(sc, dir); err != nil {
			t.Errorf("torture scenario failed (reproduce: go test ./internal/fault -run TortureBattery -torture.seed=%d -torture.ckpt=%v -torture.durable=%v -v): %v",
				seed, *tortureCkpt, *tortureDur, err)
			continue
		}
		// Crash attribution is best-effort for the summary only; the
		// scenario itself verifies the invariants either way.
		if sc.Plan.CrashAfterWALRecords > 0 || sc.Plan.CrashAtPoint != "" || sc.Plan.KillAtDispatch > 0 {
			crashed++
		} else {
			clean++
		}
	}
	t.Logf("torture battery: %d scenarios (%d armed, %d unarmed), classes: %v",
		count, crashed, clean, byClass)
}
