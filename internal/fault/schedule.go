package fault

import (
	"fmt"
	"strings"

	"transproc/internal/activity"
	"transproc/internal/conflict"
	"transproc/internal/process"
	"transproc/internal/schedule"
	"transproc/internal/wal"
)

// ScheduleFromWAL reconstructs the observed process schedule — the
// pre-crash execution and everything recovery appended — from the
// write-ahead log. Only durably committed work becomes an event, and
// every event sits at its *commit* position: a 2PC-deferred local
// transaction (Lemma 1) joins the schedule at the record that durably
// decides its commit — the process's RecDecision if the transaction's
// next resolution commits it, otherwise its RecResolved record — not
// at its earlier "prepared" outcome. This mirrors the engines'
// tentative events (policy.FinalizeTentative), and the correctness
// argument carries over: the subsystem holds the transaction's locks
// between prepare and commit, so no conflicting activity ran in
// between and the late anchoring is conflict-order preserving, while a
// prefix cut inside that window must not contain the still-uncommitted
// event. Anchoring at the decision (not the resolution) matters for
// stitched multi-node histories: a node can die between force-logging
// its decision and committing the participants, after which survivors
// keep executing — correctly, past transactions whose fate is sealed —
// and recovery's redo-commit logs the RecResolved long after them. The
// anchoring is gated on the resolution's verdict because a decision
// record alone seals nothing: the hub grants mid-process deferred
// resolution too (pollDeferred), and a node that dies after logging
// the decision but before its still-running process finishes leaves a
// prepared set that recovery presumes aborted — such transactions
// contribute no event at all.
//
//	RecOutcome  "committed"  -> Invoke (immediate local commit)
//	RecDecision              -> Invoke per pending prepared outcome
//	                            whose next resolution commits
//	RecResolved Commit=true  -> Invoke (deferred 2PC commit, if not
//	                            already anchored at a decision)
//	RecCompensate            -> Invoke, Inverse
//	RecFailed                -> FailedInvoke
//	RecAbortBegin            -> AbortBegin
//	RecTerminate             -> Terminate
//
// Prepared-but-unresolved transactions (rolled back by recovery's
// presumed abort) contribute nothing, mirroring the atomicity of local
// transactions. Recovery aborts every process the crash interrupted
// without logging an abort record of its own (the crash is the abort
// trigger, Definition 8.2b), so an AbortBegin is synthesized at such a
// process's first record past the crash boundary preCrash (pass
// len(recs) for a crash-free log). Compensations logged by the running
// engine are failure-plan partial rollbacks and need no abort. The
// result can be checked with PRED() like any engine-built schedule.
func ScheduleFromWAL(table *conflict.Table, defs []*process.Process, recs []wal.Record, preCrash int) (*schedule.Schedule, error) {
	return scheduleFromWAL(table, defs, recs, func(i int, r wal.Record) bool {
		return i >= preCrash
	})
}

// ScheduleFromWALEpochs reconstructs the schedule of a log spanning any
// number of crash/recovery epochs, identified by the boundary LSNs (the
// highest LSN the log held at each crash). Positional boundaries as in
// ScheduleFromWAL break down here: a checkpoint taken after a crash
// summarizes dead processes' earlier records away and shifts every
// index, while LSNs are never renumbered. A process is crash-aborted at
// boundary b when it logged records at or before b and again after it —
// by the restart discipline an interrupted process never continues
// forward (it is terminated by recovery and re-run under a fresh
// incarnation id), so post-boundary step work of a pre-boundary process
// is always recovery's, and the abort is synthesized there. Processes
// whose first record lands after a boundary (fresh re-runs, resumed
// never-started admissions) are ordinary forward work.
func ScheduleFromWALEpochs(table *conflict.Table, defs []*process.Process, recs []wal.Record, crashLSNs []int64) (*schedule.Schedule, error) {
	firstLSN := make(map[string]int64)
	for _, r := range recs {
		if r.Proc == "" {
			continue
		}
		if _, ok := firstLSN[r.Proc]; !ok {
			firstLSN[r.Proc] = r.LSN
		}
	}
	return scheduleFromWAL(table, defs, recs, func(i int, r wal.Record) bool {
		for _, b := range crashLSNs {
			if firstLSN[r.Proc] <= b && r.LSN > b {
				return true
			}
		}
		return false
	})
}

// scheduleFromWAL is the shared reconstruction; recovering reports
// whether a record is past a crash boundary that interrupted its
// process (triggering the synthesized abort).
func scheduleFromWAL(table *conflict.Table, defs []*process.Process, recs []wal.Record, recovering func(i int, r wal.Record) bool) (*schedule.Schedule, error) {
	byOrigin := make(map[process.ID]*process.Process, len(defs))
	for _, p := range defs {
		byOrigin[p.ID] = p
	}

	// Instantiate a definition for every process id the log mentions
	// (restarts run under derived ids like "W3+r1").
	var procs []*process.Process
	seen := make(map[string]bool)
	for _, r := range recs {
		if r.Proc == "" || seen[r.Proc] {
			continue
		}
		seen[r.Proc] = true
		origin := r.Proc
		if i := strings.IndexByte(origin, '+'); i >= 0 {
			origin = origin[:i]
		}
		def := byOrigin[process.ID(origin)]
		if def == nil {
			return nil, fmt.Errorf("fault: log mentions unknown process %q", r.Proc)
		}
		if string(def.ID) != r.Proc {
			def = def.WithID(process.ID(r.Proc))
		}
		procs = append(procs, def)
	}

	s, err := schedule.New(table, procs...)
	if err != nil {
		return nil, err
	}
	kindOf := func(proc string, local int) (activity.Kind, error) {
		for _, p := range procs {
			if string(p.ID) == proc {
				a := p.Activity(local)
				if a == nil {
					return 0, fmt.Errorf("fault: process %s has no activity %d", proc, local)
				}
				return a.Kind, nil
			}
		}
		return 0, fmt.Errorf("fault: unknown process %q", proc)
	}
	aborting := make(map[string]bool)
	ensureAbort := func(proc string) {
		if aborting[proc] {
			return
		}
		aborting[proc] = true
		s.AppendUnchecked(schedule.Event{Type: schedule.AbortBegin, Proc: process.ID(proc)})
	}
	// invoked dedups forward commits: recovery's redo-commit path logs a
	// RecResolved for a transaction whose committed outcome already made
	// it to the log before the crash (the crash hit the window between
	// the force-log and the subsystem-side apply), and an interrupted
	// recovery pass may re-resolve what an earlier pass already logged.
	invoked := make(map[string]bool)
	invoke := func(r wal.Record) error {
		key := fmt.Sprintf("%s/%d", r.Proc, r.Local)
		if invoked[key] {
			return nil
		}
		invoked[key] = true
		k, err := kindOf(r.Proc, r.Local)
		if err != nil {
			return err
		}
		s.AppendUnchecked(schedule.Event{
			Type: schedule.Invoke, Proc: process.ID(r.Proc), Local: r.Local,
			Service: r.Service, Kind: k,
		})
		return nil
	}
	// willCommit[i] answers, for a prepared outcome at record index i,
	// whether its next resolution commits it — the lookahead that gates
	// anchoring the commit at a RecDecision.
	type ppKey struct {
		proc  string
		local int
	}
	willCommit := make([]bool, len(recs))
	nextResolve := make(map[ppKey]bool)
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		switch {
		case r.Type == wal.RecOutcome && r.Outcome == "prepared":
			willCommit[i] = nextResolve[ppKey{r.Proc, r.Local}]
		case r.Type == wal.RecResolved:
			nextResolve[ppKey{r.Proc, r.Local}] = r.Commit
		}
	}
	// pendingPrepared tracks each process's prepared-but-unresolved
	// outcomes so a RecDecision can anchor the commits of those that do
	// resolve to commit at the decision record.
	type preparedOutcome struct {
		rec     wal.Record
		commits bool
	}
	pendingPrepared := make(map[string][]preparedOutcome)
	for i, r := range recs {
		// Past the crash boundary, any step work for a process the crash
		// interrupted marks it as crash-aborted: recovery only
		// compensates, resolves and runs abort-completion activities
		// (phase 3 terminates it uncommitted).
		if recovering(i, r) {
			switch r.Type {
			case wal.RecCompensate, wal.RecOutcome, wal.RecFailed:
				ensureAbort(r.Proc)
			}
		}
		switch r.Type {
		case wal.RecDecision:
			pending := pendingPrepared[r.Proc]
			kept := pending[:0:0]
			for _, p := range pending {
				if !p.commits {
					kept = append(kept, p)
					continue
				}
				if err := invoke(p.rec); err != nil {
					return nil, err
				}
			}
			pendingPrepared[r.Proc] = kept
		case wal.RecResolved:
			pending := pendingPrepared[r.Proc]
			for j, p := range pending {
				if p.rec.Local == r.Local {
					pendingPrepared[r.Proc] = append(pending[:j:j], pending[j+1:]...)
					break
				}
			}
			if !r.Commit {
				continue
			}
			if err := invoke(r); err != nil {
				return nil, err
			}
		case wal.RecOutcome:
			if r.Outcome == "prepared" {
				pendingPrepared[r.Proc] = append(pendingPrepared[r.Proc],
					preparedOutcome{rec: r, commits: willCommit[i]})
				continue
			}
			if r.Outcome != "committed" {
				continue
			}
			if err := invoke(r); err != nil {
				return nil, err
			}
		case wal.RecCompensate:
			s.AppendUnchecked(schedule.Event{
				Type: schedule.Invoke, Proc: process.ID(r.Proc), Local: r.Local,
				Service: r.Service, Kind: activity.Compensation, Inverse: true,
			})
		case wal.RecFailed:
			k, err := kindOf(r.Proc, r.Local)
			if err != nil {
				return nil, err
			}
			s.AppendUnchecked(schedule.Event{
				Type: schedule.FailedInvoke, Proc: process.ID(r.Proc), Local: r.Local,
				Service: r.Service, Kind: k,
			})
		case wal.RecAbortBegin:
			ensureAbort(r.Proc)
		case wal.RecTerminate:
			if !r.Committed {
				ensureAbort(r.Proc)
			}
			s.AppendUnchecked(schedule.Event{
				Type: schedule.Terminate, Proc: process.ID(r.Proc), Committed: r.Committed,
			})
		}
	}
	return s, nil
}
