package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// Scenario is one fully determined crash-torture case: a seeded
// workload, a fault plan and the engine/log flavour to run it under.
// ScenarioFor(seed) is a pure function, so a failing seed reproduces
// the exact same scenario anywhere.
type Scenario struct {
	Seed  int64
	Class string
	Mode  scheduler.Mode
	// Engine selects the execution engine: "engine" (sequential
	// discrete-event scheduler) or "runtime" (concurrent).
	Engine string
	// FileWAL runs over a file-backed log that is closed and reopened
	// across the crash (exercising torn-tail handling).
	FileWAL bool
	// GarbageTail appends a partial junk record to the file after the
	// crash instead of tearing the final record.
	GarbageTail bool
	// CrashRecoveryAfter, when positive, crashes the first Recover
	// pass after that many appended records; a second pass then
	// finishes the job.
	CrashRecoveryAfter int
	// CheckpointEvery / CheckpointLimit / CompactOnCheckpoint are
	// passed through to the engine config: fuzzy checkpoints every N
	// force-log appends, at most Limit of them (0 = unlimited), with
	// optional physical compaction after each.
	CheckpointEvery     int
	CheckpointLimit     int
	CompactOnCheckpoint bool
	// GroupCommit, when enabled, wraps the scenario's log in the
	// batching appender so crashes land inside coalesced flushes.
	GroupCommit wal.GroupCommit
	Plan        Plan
}

// ScenarioFor derives the deterministic scenario of a seed. Fifteen
// scenario classes cycle by seed: WAL-budget crashes (mem and file,
// torn and garbage tails), every named crash point, concurrent-runtime
// kills, crash-during-recovery double faults, the checkpointing
// classes — crash mid-checkpoint, crash inside compaction's
// rename/dir-fsync window, a stale checkpoint under a long tail,
// crash during recovery-from-checkpoint — and a crash between a
// group-commit batch write and its shared fsync. Independently of the
// class, half of all scenarios run with group commit enabled so every
// crash flavour is also exercised through the batching appender.
func ScenarioFor(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
	sc := Scenario{Seed: seed, Engine: "engine", Mode: scheduler.PRED}
	if seed%3 == 0 {
		sc.Mode = scheduler.PREDCascade
	}
	if seed%2 == 1 {
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(15)}
	}
	budget := 5 + rng.Intn(140)
	hits := 1 + rng.Intn(40)
	sc.Plan.Seed = seed
	switch seed % 15 {
	case 0:
		sc.Class = "wal-budget"
		sc.Plan.CrashAfterWALRecords = budget
	case 1:
		sc.Class = "before-forcelog"
		sc.Plan.CrashAtPoint = PointBeforeForceLog
		sc.Plan.CrashAtCount = hits
	case 2:
		sc.Class = "after-forcelog"
		sc.Plan.CrashAtPoint = PointAfterForceLog
		sc.Plan.CrashAtCount = hits
	case 3:
		sc.Class = "2pc-after-decision"
		sc.Plan.CrashAtPoint = PointAfterDecision
		sc.Plan.CrashAtCount = 1 + rng.Intn(3)
	case 4:
		sc.Class = "2pc-mid-resolve"
		sc.Plan.CrashAtPoint = PointMidResolve
		sc.Plan.CrashAtCount = 1 + rng.Intn(3)
	case 5:
		sc.Class = "file-torn-tail"
		sc.FileWAL = true
		sc.Plan.CrashAfterWALRecords = budget
		sc.Plan.TornTailBytes = 1 + rng.Intn(30)
	case 6:
		sc.Class = "file-garbage-tail"
		sc.FileWAL = true
		sc.GarbageTail = true
		sc.Plan.CrashAfterWALRecords = budget
	case 7:
		sc.Class = "runtime-kill-dispatch"
		sc.Engine = "runtime"
		sc.Plan.KillAtDispatch = 1 + rng.Intn(30)
	case 8:
		sc.Class = "runtime-wal-budget"
		sc.Engine = "runtime"
		sc.Plan.CrashAfterWALRecords = budget
	case 9:
		sc.Class = "crash-during-recovery"
		sc.Plan.CrashAfterWALRecords = budget
		sc.CrashRecoveryAfter = 1 + rng.Intn(12)
	case 10:
		// Crash inside the checkpoint itself: either before the build's
		// log snapshot or right before the checkpoint record append
		// (the fuzzy window). Recovery must come up from whatever made
		// it to disk — the previous checkpoint or a full replay.
		sc.Class = "ckpt-mid-build"
		sc.CheckpointEvery = 4 + rng.Intn(8)
		sc.FileWAL = rng.Intn(2) == 0
		sc.Plan.CrashAtPoint = PointCheckpointBuild
		if rng.Intn(2) == 0 {
			sc.Plan.CrashAtPoint = PointCheckpointAppend
		}
		sc.Plan.CrashAtCount = 1 + rng.Intn(3)
	case 11:
		// Crash inside compaction's atomic-swap window: after the temp
		// file is durable but before the rename, or after the rename
		// but before the parent-dir fsync. Either the old or the new
		// complete log must be what recovery reopens.
		sc.Class = "compact-crash"
		sc.FileWAL = true
		sc.CheckpointEvery = 4 + rng.Intn(8)
		sc.CompactOnCheckpoint = true
		sc.Plan.CrashAtPoint = PointCompactRename
		if rng.Intn(2) == 0 {
			sc.Plan.CrashAtPoint = PointCompactDirSync
		}
		sc.Plan.CrashAtCount = 1 + rng.Intn(2)
	case 12:
		// A checkpoint taken early and never again (CheckpointLimit 1):
		// the crash hits under a long post-checkpoint tail, so recovery
		// replays a stale checkpoint plus many tail records.
		sc.Class = "stale-ckpt-long-tail"
		sc.CheckpointEvery = 4 + rng.Intn(4)
		sc.CheckpointLimit = 1
		sc.FileWAL = rng.Intn(2) == 0
		sc.CompactOnCheckpoint = sc.FileWAL && rng.Intn(2) == 0
		sc.Plan.CrashAfterWALRecords = 40 + rng.Intn(100)
		if sc.FileWAL && rng.Intn(2) == 0 {
			sc.Plan.TornTailBytes = 1 + rng.Intn(30)
		}
	case 13:
		// Crash during recovery-from-checkpoint: the run checkpoints
		// (and sometimes compacts), crashes on a WAL budget, and the
		// first Recover pass dies too; the second pass must finish from
		// checkpoint + tail + the interrupted pass's records.
		sc.Class = "ckpt-recovery-crash"
		if rng.Intn(2) == 0 {
			sc.Engine = "runtime"
		}
		sc.CheckpointEvery = 4 + rng.Intn(8)
		sc.CompactOnCheckpoint = rng.Intn(2) == 0
		sc.Plan.CrashAfterWALRecords = budget
		sc.CrashRecoveryAfter = 1 + rng.Intn(12)
	case 14:
		// Crash between a group-commit batch's buffered write and its
		// shared fsync: every record of the in-flight batch is lost,
		// but none of them was acknowledged (Append only returns after
		// the fsync), so recovery must see a merely shorter log. The
		// concurrent runtime drives real multi-record batches.
		sc.Class = "group-fsync"
		sc.Engine = "runtime"
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(15)}
		sc.FileWAL = rng.Intn(2) == 0
		sc.Plan.CrashAtPoint = wal.PointGroupFsync
		sc.Plan.CrashAtCount = 1 + rng.Intn(20)
	}
	// Deterministic permanent failures for roughly a third of the
	// processes (compensatable or pivot forward services only, like
	// the differential battery: retriables fail only transiently and
	// compensations never, per the paper's perfect-compensation
	// assumption).
	sc.Plan.SubsystemFail = chooseFailures(seed)
	return sc
}

// tortureProfile is the workload every scenario of a seed runs.
func tortureProfile(seed int64) workload.Profile {
	p := workload.DefaultProfile(seed)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.10
	return p
}

// chooseFailures picks the deterministic failure rules of a seed
// against its own workload.
func chooseFailures(seed int64) []SubsystemFail {
	w, err := workload.Generate(tortureProfile(seed))
	if err != nil {
		return nil
	}
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	var rules []SubsystemFail
	for _, j := range w.Jobs {
		if rng.Float64() >= 0.35 {
			continue
		}
		var candidates []string
		for _, svc := range scheduler.Footprint(j.Proc) {
			spec, ok := w.Fed.Spec(svc)
			if ok && (spec.Kind == activity.Compensatable || spec.Kind == activity.Pivot) {
				candidates = append(candidates, svc)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rules = append(rules, SubsystemFail{
			Proc:    string(j.Proc.ID),
			Service: candidates[rng.Intn(len(candidates))],
		})
	}
	return rules
}

// RunScenario executes one scenario end to end: run until the injected
// crash (or clean finish), mangle the log tail where the plan says so,
// recover — possibly crashing and re-recovering — and check every
// recovery guarantee. dir is where file-backed logs live (a temp dir
// is created under os.TempDir when empty). The returned error
// describes the violated invariant; nil means the scenario passed.
func RunScenario(sc Scenario, dir string) error {
	w, err := workload.Generate(tortureProfile(sc.Seed))
	if err != nil {
		return fmt.Errorf("seed %d: generating workload: %w", sc.Seed, err)
	}
	for _, r := range sc.Plan.SubsystemFail {
		sub, ok := w.Fed.Owner(r.Service)
		if !ok {
			return fmt.Errorf("seed %d: no owner for failed service %s", sc.Seed, r.Service)
		}
		sub.FailService(r.Proc, r.Service)
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}

	var inner wal.Log
	var path string
	if sc.FileWAL {
		if dir == "" {
			td, err := os.MkdirTemp("", "torture")
			if err != nil {
				return fmt.Errorf("seed %d: %w", sc.Seed, err)
			}
			defer os.RemoveAll(td)
			dir = td
		}
		path = filepath.Join(dir, fmt.Sprintf("wal-%d.log", sc.Seed))
		fl, err := wal.OpenFile(path, false)
		if err != nil {
			return fmt.Errorf("seed %d: opening log: %w", sc.Seed, err)
		}
		inner = fl
	} else {
		inner = wal.NewMemLog()
	}
	fw := WrapWAL(inner, sc.Plan.CrashAfterWALRecords)
	inj := NewInjector(sc.Plan)

	crashed, err := runUntilCrash(sc, w.Fed, fw, inj, w.Jobs)
	if err != nil {
		return fmt.Errorf("seed %d (%s): run: %w", sc.Seed, sc.Class, err)
	}

	// Reopen across the crash; torn and garbage tails only exist for
	// file-backed logs and only make sense when the run actually
	// crashed (a clean run's final append returned — tearing it would
	// simulate losing an acknowledged write, which no log survives).
	recLog := inner
	if sc.FileWAL {
		if err := inner.Close(); err != nil {
			return fmt.Errorf("seed %d: closing log: %w", sc.Seed, err)
		}
		if crashed {
			if sc.Plan.TornTailBytes > 0 {
				if err := tearTail(path, sc.Plan.TornTailBytes); err != nil {
					return fmt.Errorf("seed %d: tearing tail: %w", sc.Seed, err)
				}
			}
			if sc.GarbageTail {
				if err := appendGarbage(path); err != nil {
					return fmt.Errorf("seed %d: garbage tail: %w", sc.Seed, err)
				}
			}
		}
		fl, err := wal.OpenFile(path, false)
		if err != nil {
			return fmt.Errorf("seed %d: reopening log: %w", sc.Seed, err)
		}
		recLog = fl
		defer fl.Close()
	}
	preRecs, err := recLog.Records()
	if err != nil {
		return fmt.Errorf("seed %d: reading pre-recovery log: %w", sc.Seed, err)
	}
	// Invariants run in expanded coordinates (checkpoint live set +
	// post-horizon tail); the full-replay differential also needs the
	// boundary in raw non-checkpoint coordinates.
	pre := len(wal.Expand(preRecs).Records)
	preFull := 0
	for _, r := range preRecs {
		if r.Type != wal.RecCheckpoint {
			preFull++
		}
	}

	// First recovery, optionally crashed mid-way by a fresh WAL budget
	// (double-fault: the recovering system dies too).
	if crashed && sc.CrashRecoveryAfter > 0 {
		rw := WrapWAL(recLog, sc.CrashRecoveryAfter)
		rerr := Protect(func() error {
			_, e := scheduler.Recover(w.Fed, rw, defs)
			return e
		})
		if rerr != nil {
			if _, isCrash := AsCrash(rerr); !isCrash {
				return fmt.Errorf("seed %d (%s): interrupted recovery: %w", sc.Seed, sc.Class, rerr)
			}
		}
	}
	if _, err := scheduler.Recover(w.Fed, recLog, defs); err != nil {
		return fmt.Errorf("seed %d (%s): recovery: %w", sc.Seed, sc.Class, err)
	}

	if err := CheckRecovered(CheckInput{
		Fed: w.Fed, Log: recLog, Defs: defs, PreCrashRecords: pre,
		PreCrashFull: preFull, Compacted: sc.CompactOnCheckpoint,
	}); err != nil {
		return fmt.Errorf("seed %d (%s): %w", sc.Seed, sc.Class, err)
	}
	return nil
}

// tortureMaxRestarts bounds per-process restarts in torture runs.
// Permanently failed services (SubsystemFail rules) make their process
// retry until the budget is exhausted and then group-abort; a large
// budget turns that into a retry storm whose multi-thousand-record log
// makes the PRED invariant check (quadratic in prefixes) take minutes
// for a single seed. 24 keeps the exhaustion path exercised while
// bounding the schedule the checker must reduce.
const tortureMaxRestarts = 24

// runUntilCrash drives the scenario's engine until the injected crash
// or clean completion; crashed reports which.
func runUntilCrash(sc Scenario, fed *subsystem.Federation, log wal.Log, inj *Injector, jobs []scheduler.Job) (crashed bool, err error) {
	switch sc.Engine {
	case "runtime":
		r, err := runtime.New(fed, runtime.Config{
			Mode: sc.Mode, Log: log, MaxRestarts: tortureMaxRestarts, Inject: inj.Point,
			CheckpointEvery: sc.CheckpointEvery, CheckpointLimit: sc.CheckpointLimit,
			CompactOnCheckpoint: sc.CompactOnCheckpoint, GroupCommit: sc.GroupCommit,
		})
		if err != nil {
			return false, err
		}
		_, err = r.Run(context.Background(), jobs)
		if err == nil {
			return false, nil
		}
		if errors.Is(err, scheduler.ErrCrashed) {
			return true, nil
		}
		return false, err
	default:
		eng, err := scheduler.New(fed, scheduler.Config{
			Mode: sc.Mode, Log: log, MaxRestarts: tortureMaxRestarts, Inject: inj.Point,
			CheckpointEvery: sc.CheckpointEvery, CheckpointLimit: sc.CheckpointLimit,
			CompactOnCheckpoint: sc.CompactOnCheckpoint, GroupCommit: sc.GroupCommit,
		})
		if err != nil {
			return false, err
		}
		_, err = eng.RunJobs(jobs)
		if err == nil {
			return false, nil
		}
		if errors.Is(err, scheduler.ErrCrashed) {
			return true, nil
		}
		return false, err
	}
}

// tearTail truncates up to n bytes off the file's final record (never
// reaching into earlier, acknowledged records): the write that was in
// flight when the crash hit reached the disk only partially.
func tearTail(path string, n int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	// The final record spans from after the second-to-last newline to
	// the end (including its own terminating newline).
	end := len(data)
	body := data[:end-1] // strip the final '\n' before searching
	lastStart := 0
	for i := len(body) - 1; i >= 0; i-- {
		if body[i] == '\n' {
			lastStart = i + 1
			break
		}
	}
	lastLen := end - lastStart
	if n > lastLen {
		n = lastLen
	}
	return os.Truncate(path, int64(end-n))
}

// appendGarbage writes a partial junk record with no terminating
// newline — the torn write left arbitrary bytes behind.
func appendGarbage(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(`{"lsn":9999,"type":2,"pr`)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary aggregates a torture batch.
type Summary struct {
	Scenarios int            `json:"scenarios"`
	Crashed   int            `json:"crashed"`
	Clean     int            `json:"clean"`
	Failures  []string       `json:"failures,omitempty"`
	ByClass   map[string]int `json:"byClass"`
}

// TortureOpts force checkpointing onto every scenario of a batch (on
// top of whatever the scenario class already configures), so the whole
// battery can be re-run with checkpoints live under every crash class.
type TortureOpts struct {
	// CheckpointEvery forces fuzzy checkpoints every N force-log
	// appends on scenarios that don't already checkpoint.
	CheckpointEvery int
	// CheckpointLimit caps forced checkpoints (0 = unlimited).
	CheckpointLimit int
	// Compact compacts after every checkpoint on file-backed scenarios.
	Compact bool
}

// Apply overlays the forced options onto a scenario without disturbing
// classes that configure their own checkpoint cadence.
func (o TortureOpts) Apply(sc *Scenario) {
	if o.CheckpointEvery > 0 && sc.CheckpointEvery == 0 {
		sc.CheckpointEvery = o.CheckpointEvery
		sc.CheckpointLimit = o.CheckpointLimit
	}
	if o.Compact && sc.CheckpointEvery > 0 {
		sc.CompactOnCheckpoint = true
	}
}

// RunTorture runs the scenarios of seeds [first, first+n) and collects
// a summary; every failure message embeds the reproducing seed.
func RunTorture(first, n int64, dir string) Summary {
	return RunTortureOpts(first, n, dir, TortureOpts{})
}

// RunTortureOpts is RunTorture with forced checkpoint options overlaid
// on every scenario.
func RunTortureOpts(first, n int64, dir string, opts TortureOpts) Summary {
	sum := Summary{ByClass: make(map[string]int)}
	for seed := first; seed < first+n; seed++ {
		sc := ScenarioFor(seed)
		opts.Apply(&sc)
		sum.Scenarios++
		sum.ByClass[sc.Class]++
		// Armed-plan attribution (the scenario checks its invariants
		// either way; a plan can legitimately outlive the run, e.g. a
		// budget larger than the log).
		if sc.Plan.CrashAfterWALRecords > 0 || sc.Plan.CrashAtPoint != "" || sc.Plan.KillAtDispatch > 0 {
			sum.Crashed++
		} else {
			sum.Clean++
		}
		if err := RunScenario(sc, dir); err != nil {
			sum.Failures = append(sum.Failures, err.Error())
		}
	}
	return sum
}
