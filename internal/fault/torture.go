package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"transproc/internal/activity"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// Scenario is one fully determined crash-torture case: a seeded
// workload, a fault plan and the engine/log flavour to run it under.
// ScenarioFor(seed) is a pure function, so a failing seed reproduces
// the exact same scenario anywhere.
type Scenario struct {
	Seed  int64
	Class string
	Mode  scheduler.Mode
	// Engine selects the execution engine: "engine" (sequential
	// discrete-event scheduler) or "runtime" (concurrent).
	Engine string
	// FileWAL runs over a file-backed log that is closed and reopened
	// across the crash (exercising torn-tail handling).
	FileWAL bool
	// GarbageTail appends a partial junk record to the file after the
	// crash instead of tearing the final record.
	GarbageTail bool
	// CrashRecoveryAfter, when positive, crashes the first Recover
	// pass after that many appended records; a second pass then
	// finishes the job.
	CrashRecoveryAfter int
	// CheckpointEvery / CheckpointLimit / CompactOnCheckpoint are
	// passed through to the engine config: fuzzy checkpoints every N
	// force-log appends, at most Limit of them (0 = unlimited), with
	// optional physical compaction after each.
	CheckpointEvery     int
	CheckpointLimit     int
	CompactOnCheckpoint bool
	// GroupCommit, when enabled, wraps the scenario's log in the
	// batching appender so crashes land inside coalesced flushes.
	GroupCommit wal.GroupCommit
	// Durable backs every subsystem with a file-backed heap store
	// (internal/store): the crash kills scheduler state AND the
	// subsystems' in-memory state, recovery reopens the pages and runs
	// scheduler.RecoverDurable, and CheckDurableStores verifies the
	// storage-level guarantees on top of CheckRecovered.
	Durable bool
	// StorePoolPages sets the buffer-pool size (0 = store default); a
	// tiny pool forces constant eviction traffic.
	StorePoolPages int
	// StoreFlushEach flushes the stores after every mutation,
	// maximizing the pages-ahead-of-log window recovery must undo.
	StoreFlushEach bool
	// TornStorePage flips one byte of one heap page after the crash —
	// a torn page write the reopened store must detect and repair.
	TornStorePage bool
	// StoreRecoveryPoint / StoreRecoveryCount arm a store crash point
	// for the FIRST recovery pass only (crash during
	// recovery-of-pages); a second pass must finish the job.
	StoreRecoveryPoint string
	StoreRecoveryCount int
	// StoreStress concentrates the workload (single subsystem, double
	// the processes) so its heap file spans multiple pages and a tiny
	// buffer pool must constantly evict.
	StoreStress bool
	Plan        Plan
}

// ScenarioFor derives the deterministic scenario of a seed. Nineteen
// scenario classes cycle by seed: WAL-budget crashes (mem and file,
// torn and garbage tails), every named crash point, concurrent-runtime
// kills, crash-during-recovery double faults, the checkpointing
// classes — crash mid-checkpoint, crash inside compaction's
// rename/dir-fsync window, a stale checkpoint under a long tail,
// crash during recovery-from-checkpoint — a crash between a
// group-commit batch write and its shared fsync, and the durable-store
// classes: a torn heap page after the crash, a crash inside a buffer
// pool eviction, pages flushed ahead of the log, and a crash during
// the page-recovery pass itself. Independently of the class, half of
// all scenarios run with group commit enabled so every crash flavour
// is also exercised through the batching appender.
func ScenarioFor(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*6364136223846793005 + 1442695040888963407))
	sc := Scenario{Seed: seed, Engine: "engine", Mode: scheduler.PRED}
	if seed%3 == 0 {
		sc.Mode = scheduler.PREDCascade
	}
	if seed%2 == 1 {
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(15)}
	}
	budget := 5 + rng.Intn(140)
	hits := 1 + rng.Intn(40)
	sc.Plan.Seed = seed
	switch seed % 19 {
	case 0:
		sc.Class = "wal-budget"
		sc.Plan.CrashAfterWALRecords = budget
	case 1:
		sc.Class = "before-forcelog"
		sc.Plan.CrashAtPoint = PointBeforeForceLog
		sc.Plan.CrashAtCount = hits
	case 2:
		sc.Class = "after-forcelog"
		sc.Plan.CrashAtPoint = PointAfterForceLog
		sc.Plan.CrashAtCount = hits
	case 3:
		sc.Class = "2pc-after-decision"
		sc.Plan.CrashAtPoint = PointAfterDecision
		sc.Plan.CrashAtCount = 1 + rng.Intn(3)
	case 4:
		sc.Class = "2pc-mid-resolve"
		sc.Plan.CrashAtPoint = PointMidResolve
		sc.Plan.CrashAtCount = 1 + rng.Intn(3)
	case 5:
		sc.Class = "file-torn-tail"
		sc.FileWAL = true
		sc.Plan.CrashAfterWALRecords = budget
		sc.Plan.TornTailBytes = 1 + rng.Intn(30)
	case 6:
		sc.Class = "file-garbage-tail"
		sc.FileWAL = true
		sc.GarbageTail = true
		sc.Plan.CrashAfterWALRecords = budget
	case 7:
		sc.Class = "runtime-kill-dispatch"
		sc.Engine = "runtime"
		sc.Plan.KillAtDispatch = 1 + rng.Intn(30)
	case 8:
		sc.Class = "runtime-wal-budget"
		sc.Engine = "runtime"
		sc.Plan.CrashAfterWALRecords = budget
	case 9:
		sc.Class = "crash-during-recovery"
		sc.Plan.CrashAfterWALRecords = budget
		sc.CrashRecoveryAfter = 1 + rng.Intn(12)
	case 10:
		// Crash inside the checkpoint itself: either before the build's
		// log snapshot or right before the checkpoint record append
		// (the fuzzy window). Recovery must come up from whatever made
		// it to disk — the previous checkpoint or a full replay.
		sc.Class = "ckpt-mid-build"
		sc.CheckpointEvery = 4 + rng.Intn(8)
		sc.FileWAL = rng.Intn(2) == 0
		sc.Plan.CrashAtPoint = PointCheckpointBuild
		if rng.Intn(2) == 0 {
			sc.Plan.CrashAtPoint = PointCheckpointAppend
		}
		sc.Plan.CrashAtCount = 1 + rng.Intn(3)
	case 11:
		// Crash inside compaction's atomic-swap window: after the temp
		// file is durable but before the rename, or after the rename
		// but before the parent-dir fsync. Either the old or the new
		// complete log must be what recovery reopens.
		sc.Class = "compact-crash"
		sc.FileWAL = true
		sc.CheckpointEvery = 4 + rng.Intn(8)
		sc.CompactOnCheckpoint = true
		sc.Plan.CrashAtPoint = PointCompactRename
		if rng.Intn(2) == 0 {
			sc.Plan.CrashAtPoint = PointCompactDirSync
		}
		sc.Plan.CrashAtCount = 1 + rng.Intn(2)
	case 12:
		// A checkpoint taken early and never again (CheckpointLimit 1):
		// the crash hits under a long post-checkpoint tail, so recovery
		// replays a stale checkpoint plus many tail records.
		sc.Class = "stale-ckpt-long-tail"
		sc.CheckpointEvery = 4 + rng.Intn(4)
		sc.CheckpointLimit = 1
		sc.FileWAL = rng.Intn(2) == 0
		sc.CompactOnCheckpoint = sc.FileWAL && rng.Intn(2) == 0
		sc.Plan.CrashAfterWALRecords = 40 + rng.Intn(100)
		if sc.FileWAL && rng.Intn(2) == 0 {
			sc.Plan.TornTailBytes = 1 + rng.Intn(30)
		}
	case 13:
		// Crash during recovery-from-checkpoint: the run checkpoints
		// (and sometimes compacts), crashes on a WAL budget, and the
		// first Recover pass dies too; the second pass must finish from
		// checkpoint + tail + the interrupted pass's records.
		sc.Class = "ckpt-recovery-crash"
		if rng.Intn(2) == 0 {
			sc.Engine = "runtime"
		}
		sc.CheckpointEvery = 4 + rng.Intn(8)
		sc.CompactOnCheckpoint = rng.Intn(2) == 0
		sc.Plan.CrashAfterWALRecords = budget
		sc.CrashRecoveryAfter = 1 + rng.Intn(12)
	case 14:
		// Crash between a group-commit batch's buffered write and its
		// shared fsync: every record of the in-flight batch is lost,
		// but none of them was acknowledged (Append only returns after
		// the fsync), so recovery must see a merely shorter log. The
		// concurrent runtime drives real multi-record batches.
		sc.Class = "group-fsync"
		sc.Engine = "runtime"
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(15)}
		sc.FileWAL = rng.Intn(2) == 0
		sc.Plan.CrashAtPoint = wal.PointGroupFsync
		sc.Plan.CrashAtCount = 1 + rng.Intn(20)
	case 15:
		// Crash on a WAL budget, then flip one byte of a subsystem heap
		// page: the torn page must be detected by its checksum at
		// reopen, repaired, and its lost records redone from the WAL.
		// Eager flushing guarantees the heap files hold real pages at
		// crash time — otherwise there is nothing to tear.
		sc.Class = "store-torn-page"
		sc.Durable = true
		sc.StoreFlushEach = true
		sc.Plan.CrashAfterWALRecords = budget
		sc.TornStorePage = true
		sc.FileWAL = rng.Intn(2) == 0
	case 16:
		// Crash inside the buffer pool under eviction pressure: with a
		// single frame, every fetch of a second page must first write
		// back the dirty resident one (eviction is the only way pages
		// reach the device here — no eager flushing), and the crash hits
		// an eviction write-back, a page write, or a fresh-page
		// allocation.
		sc.Class = "store-evict-crash"
		sc.Durable = true
		sc.StorePoolPages = 1
		sc.StoreStress = true
		pts := []string{PointStoreEvict, PointStorePageWrite, PointStoreAlloc}
		sc.Plan.CrashAtPoint = pts[rng.Intn(len(pts))]
		sc.Plan.CrashAtCount = 1 + rng.Intn(12)
		if sc.Plan.CrashAtPoint == PointStoreAlloc {
			// The heap grows by a page only a couple of times per run.
			sc.Plan.CrashAtCount = 1 + rng.Intn(2)
		}
	case 17:
		// Pages ahead of the log: every store mutation flushes eagerly
		// and the crash lands right before a force-log append, so the
		// pages can carry effects whose log record never made it — the
		// page-level undo path.
		sc.Class = "store-flush-vs-wal"
		sc.Durable = true
		sc.StoreFlushEach = true
		sc.Plan.CrashAtPoint = PointBeforeForceLog
		sc.Plan.CrashAtCount = hits
	case 18:
		// Double fault during the page-recovery pass: the first
		// RecoverDurable dies at a store crash point (mid-reconcile or
		// mid-flush); the second pass must finish from whatever state
		// reached the disk. Eager flushing during the run leaves real
		// pre-crash pages for the interrupted pass to reconcile against.
		sc.Class = "store-recovery-crash"
		sc.Durable = true
		sc.StoreFlushEach = true
		sc.Plan.CrashAfterWALRecords = budget
		sc.StoreRecoveryPoint = PointStorePageWrite
		if rng.Intn(2) == 0 {
			sc.StoreRecoveryPoint = PointStorePageFsync
		}
		sc.StoreRecoveryCount = 1 + rng.Intn(4)
	}
	// Deterministic permanent failures for roughly a third of the
	// processes (compensatable or pivot forward services only, like
	// the differential battery: retriables fail only transiently and
	// compensations never, per the paper's perfect-compensation
	// assumption).
	sc.Plan.SubsystemFail = chooseFailures(sc)
	return sc
}

// tortureProfile is the workload a scenario runs. Store-stress
// scenarios concentrate everything into a single subsystem with twice
// the processes, so one heap file accumulates enough records (2PC
// fates, data items) to span multiple pages.
func tortureProfile(sc Scenario) workload.Profile {
	p := workload.DefaultProfile(sc.Seed)
	p.Processes = 12
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.10
	if sc.StoreStress {
		p.Subsystems = 1
		p.Processes = 48
	}
	return p
}

// chooseFailures picks the deterministic failure rules of a seed
// against its own workload.
func chooseFailures(sc Scenario) []SubsystemFail {
	w, err := workload.Generate(tortureProfile(sc))
	if err != nil {
		return nil
	}
	seed := sc.Seed
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	var rules []SubsystemFail
	for _, j := range w.Jobs {
		if rng.Float64() >= 0.35 {
			continue
		}
		var candidates []string
		for _, svc := range scheduler.Footprint(j.Proc) {
			spec, ok := w.Fed.Spec(svc)
			if ok && (spec.Kind == activity.Compensatable || spec.Kind == activity.Pivot) {
				candidates = append(candidates, svc)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		rules = append(rules, SubsystemFail{
			Proc:    string(j.Proc.ID),
			Service: candidates[rng.Intn(len(candidates))],
		})
	}
	return rules
}

// tortureWorld regenerates a scenario's deterministic world: the
// seeded workload with its failure rules applied and the process
// definitions recovery needs. Durable scenarios rebuild it after every
// simulated crash — a crash kills the subsystems' in-memory state too,
// so recovery starts from a factory-fresh federation plus whatever the
// heap files retained.
func tortureWorld(sc Scenario) (*subsystem.Federation, []scheduler.Job, []*process.Process, error) {
	w, err := workload.Generate(tortureProfile(sc))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("seed %d: generating workload: %w", sc.Seed, err)
	}
	for _, r := range sc.Plan.SubsystemFail {
		sub, ok := w.Fed.Owner(r.Service)
		if !ok {
			return nil, nil, nil, fmt.Errorf("seed %d: no owner for failed service %s", sc.Seed, r.Service)
		}
		sub.FailService(r.Proc, r.Service)
	}
	defs := make([]*process.Process, 0, len(w.Jobs))
	for _, j := range w.Jobs {
		defs = append(defs, j.Proc)
	}
	return w.Fed, w.Jobs, defs, nil
}

// RunScenario executes one scenario end to end: run until the injected
// crash (or clean finish), mangle the log tail where the plan says so,
// recover — possibly crashing and re-recovering — and check every
// recovery guarantee. dir is where file-backed logs and heap files
// live (a temp dir is created under os.TempDir when empty). The
// returned error describes the violated invariant; nil means the
// scenario passed.
func RunScenario(sc Scenario, dir string) error {
	fed, jobs, defs, err := tortureWorld(sc)
	if err != nil {
		return err
	}

	if dir == "" && (sc.FileWAL || sc.Durable) {
		td, err := os.MkdirTemp("", "torture")
		if err != nil {
			return fmt.Errorf("seed %d: %w", sc.Seed, err)
		}
		defer os.RemoveAll(td)
		dir = td
	}
	var inner wal.Log
	var path string
	if sc.FileWAL {
		path = filepath.Join(dir, fmt.Sprintf("wal-%d.log", sc.Seed))
		fl, err := wal.OpenFile(path, false)
		if err != nil {
			return fmt.Errorf("seed %d: opening log: %w", sc.Seed, err)
		}
		inner = fl
	} else {
		inner = wal.NewMemLog()
	}
	fw := WrapWAL(inner, sc.Plan.CrashAfterWALRecords)
	inj := NewInjector(sc.Plan)
	if sc.Durable {
		if err := attachStores(fed, sc, dir, fw, inj); err != nil {
			return fmt.Errorf("seed %d (%s): %w", sc.Seed, sc.Class, err)
		}
	}

	crashed, err := runUntilCrash(sc, fed, fw, inj, jobs)
	if err != nil {
		return fmt.Errorf("seed %d (%s): run: %w", sc.Seed, sc.Class, err)
	}
	if sc.Durable {
		// The crash (or shutdown) drops every dirty pool page: only what
		// reached the device survives into recovery. A clean finish is
		// treated the same way — an unflushed shutdown — so every durable
		// scenario recovers pages, not memory.
		abandonStores(fed)
		if crashed && sc.TornStorePage {
			if err := tearStorePage(fed, sc, dir); err != nil {
				return fmt.Errorf("seed %d (%s): tearing store page: %w", sc.Seed, sc.Class, err)
			}
		}
	}

	// Reopen across the crash; torn and garbage tails only exist for
	// file-backed logs and only make sense when the run actually
	// crashed (a clean run's final append returned — tearing it would
	// simulate losing an acknowledged write, which no log survives).
	recLog := inner
	if sc.FileWAL {
		if err := inner.Close(); err != nil {
			return fmt.Errorf("seed %d: closing log: %w", sc.Seed, err)
		}
		if crashed {
			if sc.Plan.TornTailBytes > 0 {
				if err := tearTail(path, sc.Plan.TornTailBytes); err != nil {
					return fmt.Errorf("seed %d: tearing tail: %w", sc.Seed, err)
				}
			}
			if sc.GarbageTail {
				if err := appendGarbage(path); err != nil {
					return fmt.Errorf("seed %d: garbage tail: %w", sc.Seed, err)
				}
			}
		}
		fl, err := wal.OpenFile(path, false)
		if err != nil {
			return fmt.Errorf("seed %d: reopening log: %w", sc.Seed, err)
		}
		recLog = fl
		defer fl.Close()
	}
	preRecs, err := recLog.Records()
	if err != nil {
		return fmt.Errorf("seed %d: reading pre-recovery log: %w", sc.Seed, err)
	}
	// Invariants run in expanded coordinates (checkpoint live set +
	// post-horizon tail); the full-replay differential also needs the
	// boundary in raw non-checkpoint coordinates.
	pre := len(wal.Expand(preRecs).Records)
	preFull := 0
	for _, r := range preRecs {
		if r.Type != wal.RecCheckpoint {
			preFull++
		}
	}

	// First recovery, optionally crashed mid-way by a fresh WAL budget
	// (double-fault: the recovering system dies too) and/or — durable
	// scenarios only — by an armed store crash point inside the
	// page-recovery pass.
	if crashed && (sc.CrashRecoveryAfter > 0 || (sc.Durable && sc.StoreRecoveryCount > 0)) {
		var rw wal.Log = recLog
		if sc.CrashRecoveryAfter > 0 {
			rw = WrapWAL(recLog, sc.CrashRecoveryAfter)
		}
		rfed, rdefs := fed, defs
		// The armed store crash point can fire anywhere in the pass —
		// including inside AttachStore's own write-throughs while the
		// pages are being reopened — so the whole reopen+recover runs
		// under Protect.
		rerr := Protect(func() error {
			if sc.Durable {
				ffed, _, fdefs, err := tortureWorld(sc)
				if err != nil {
					return err
				}
				rfed, rdefs = ffed, fdefs
				recInj := NewInjector(Plan{CrashAtPoint: sc.StoreRecoveryPoint, CrashAtCount: sc.StoreRecoveryCount})
				if err := reopenStores(rfed, sc, dir, rw, recInj); err != nil {
					return fmt.Errorf("reopening stores for interrupted recovery: %w", err)
				}
				_, e := scheduler.RecoverDurable(rfed, rw, rdefs, nil)
				return e
			}
			_, e := scheduler.Recover(rfed, rw, rdefs)
			return e
		})
		if rerr != nil {
			if _, isCrash := AsCrash(rerr); !isCrash {
				return fmt.Errorf("seed %d (%s): interrupted recovery: %w", sc.Seed, sc.Class, rerr)
			}
		}
		if sc.Durable {
			abandonStores(rfed)
		}
	}
	if sc.Durable {
		// Final recovery on a fresh federation over the surviving pages;
		// no injector this time — the system finally stays up.
		ffed, _, fdefs, err := tortureWorld(sc)
		if err != nil {
			return err
		}
		if err := reopenStores(ffed, sc, dir, recLog, nil); err != nil {
			return fmt.Errorf("seed %d (%s): reopening stores: %w", sc.Seed, sc.Class, err)
		}
		fed, defs = ffed, fdefs
		if _, err := scheduler.RecoverDurable(fed, recLog, defs, nil); err != nil {
			return fmt.Errorf("seed %d (%s): recovery: %w", sc.Seed, sc.Class, err)
		}
	} else if _, err := scheduler.Recover(fed, recLog, defs); err != nil {
		return fmt.Errorf("seed %d (%s): recovery: %w", sc.Seed, sc.Class, err)
	}

	if err := CheckRecovered(CheckInput{
		Fed: fed, Log: recLog, Defs: defs, PreCrashRecords: pre,
		PreCrashFull: preFull, Compacted: sc.CompactOnCheckpoint,
	}); err != nil {
		return fmt.Errorf("seed %d (%s): %w", sc.Seed, sc.Class, err)
	}
	if sc.Durable {
		if err := CheckDurableStores(fed); err != nil {
			return fmt.Errorf("seed %d (%s): %w", sc.Seed, sc.Class, err)
		}
	}
	return nil
}

// tortureMaxRestarts bounds per-process restarts in torture runs.
// Permanently failed services (SubsystemFail rules) make their process
// retry until the budget is exhausted and then group-abort; a large
// budget turns that into a retry storm whose multi-thousand-record log
// makes the PRED invariant check (quadratic in prefixes) take minutes
// for a single seed. 24 keeps the exhaustion path exercised while
// bounding the schedule the checker must reduce.
const tortureMaxRestarts = 24

// runUntilCrash drives the scenario's engine until the injected crash
// or clean completion; crashed reports which.
func runUntilCrash(sc Scenario, fed *subsystem.Federation, log wal.Log, inj *Injector, jobs []scheduler.Job) (crashed bool, err error) {
	switch sc.Engine {
	case "runtime":
		r, err := runtime.New(fed, runtime.Config{
			Mode: sc.Mode, Log: log, MaxRestarts: tortureMaxRestarts, Inject: inj.Point,
			CheckpointEvery: sc.CheckpointEvery, CheckpointLimit: sc.CheckpointLimit,
			CompactOnCheckpoint: sc.CompactOnCheckpoint, GroupCommit: sc.GroupCommit,
		})
		if err != nil {
			return false, err
		}
		_, err = r.Run(context.Background(), jobs)
		if err == nil {
			return false, nil
		}
		if errors.Is(err, scheduler.ErrCrashed) {
			return true, nil
		}
		return false, err
	default:
		eng, err := scheduler.New(fed, scheduler.Config{
			Mode: sc.Mode, Log: log, MaxRestarts: tortureMaxRestarts, Inject: inj.Point,
			CheckpointEvery: sc.CheckpointEvery, CheckpointLimit: sc.CheckpointLimit,
			CompactOnCheckpoint: sc.CompactOnCheckpoint, GroupCommit: sc.GroupCommit,
		})
		if err != nil {
			return false, err
		}
		_, err = eng.RunJobs(jobs)
		if err == nil {
			return false, nil
		}
		if errors.Is(err, scheduler.ErrCrashed) {
			return true, nil
		}
		return false, err
	}
}

// tearTail truncates up to n bytes off the file's final record (never
// reaching into earlier, acknowledged records): the write that was in
// flight when the crash hit reached the disk only partially.
func tearTail(path string, n int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	// The final record spans from after the second-to-last newline to
	// the end (including its own terminating newline).
	end := len(data)
	body := data[:end-1] // strip the final '\n' before searching
	lastStart := 0
	for i := len(body) - 1; i >= 0; i-- {
		if body[i] == '\n' {
			lastStart = i + 1
			break
		}
	}
	lastLen := end - lastStart
	if n > lastLen {
		n = lastLen
	}
	return os.Truncate(path, int64(end-n))
}

// appendGarbage writes a partial junk record with no terminating
// newline — the torn write left arbitrary bytes behind.
func appendGarbage(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(`{"lsn":9999,"type":2,"pr`)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Summary aggregates a torture batch.
type Summary struct {
	Scenarios int            `json:"scenarios"`
	Crashed   int            `json:"crashed"`
	Clean     int            `json:"clean"`
	Failures  []string       `json:"failures,omitempty"`
	ByClass   map[string]int `json:"byClass"`
}

// TortureOpts force checkpointing onto every scenario of a batch (on
// top of whatever the scenario class already configures), so the whole
// battery can be re-run with checkpoints live under every crash class.
type TortureOpts struct {
	// CheckpointEvery forces fuzzy checkpoints every N force-log
	// appends on scenarios that don't already checkpoint.
	CheckpointEvery int
	// CheckpointLimit caps forced checkpoints (0 = unlimited).
	CheckpointLimit int
	// Compact compacts after every checkpoint on file-backed scenarios.
	Compact bool
	// Durable forces file-backed subsystem stores onto every scenario,
	// so the whole battery also runs with durable pages under every
	// crash class.
	Durable bool
	// Progress, when set, is called with each seed before its scenario
	// runs; the CLI uses it to report the in-flight reproducing seed
	// when the battery is interrupted.
	Progress func(seed int64, class string)
}

// Apply overlays the forced options onto a scenario without disturbing
// classes that configure their own checkpoint cadence.
func (o TortureOpts) Apply(sc *Scenario) {
	if o.CheckpointEvery > 0 && sc.CheckpointEvery == 0 {
		sc.CheckpointEvery = o.CheckpointEvery
		sc.CheckpointLimit = o.CheckpointLimit
	}
	if o.Compact && sc.CheckpointEvery > 0 {
		sc.CompactOnCheckpoint = true
	}
	if o.Durable {
		sc.Durable = true
	}
}

// RunTorture runs the scenarios of seeds [first, first+n) and collects
// a summary; every failure message embeds the reproducing seed.
func RunTorture(first, n int64, dir string) Summary {
	return RunTortureOpts(first, n, dir, TortureOpts{})
}

// RunTortureOpts is RunTorture with forced checkpoint options overlaid
// on every scenario.
func RunTortureOpts(first, n int64, dir string, opts TortureOpts) Summary {
	sum := Summary{ByClass: make(map[string]int)}
	for seed := first; seed < first+n; seed++ {
		sc := ScenarioFor(seed)
		opts.Apply(&sc)
		if opts.Progress != nil {
			opts.Progress(seed, sc.Class)
		}
		sum.Scenarios++
		sum.ByClass[sc.Class]++
		// Armed-plan attribution (the scenario checks its invariants
		// either way; a plan can legitimately outlive the run, e.g. a
		// budget larger than the log).
		if sc.Plan.CrashAfterWALRecords > 0 || sc.Plan.CrashAtPoint != "" || sc.Plan.KillAtDispatch > 0 {
			sum.Crashed++
		} else {
			sum.Clean++
		}
		if err := RunScenario(sc, dir); err != nil {
			sum.Failures = append(sum.Failures, err.Error())
		}
	}
	return sum
}
