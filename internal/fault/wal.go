package fault

import (
	"sync"

	"transproc/internal/metrics"
	"transproc/internal/wal"
)

// WAL is a fault-injectable write-ahead-log wrapper: it delegates to a
// real backend and crashes the run (panics with the Crash sentinel)
// from inside the append that exhausts its record budget. The panic
// fires after the record reached the backend — the write is on disk
// (or in memory) but the caller never observes the append returning,
// exactly the window a torn write lives in; a file-backed scenario can
// then mangle that final record's bytes (Plan.TornTailBytes) before
// recovery reopens the log.
//
// After the trip every further append is dropped: the crashed system
// must not write. Reads pass through so the harness can inspect the
// log; recovery should run against the unwrapped backend (Inner).
type WAL struct {
	inner wal.Log

	mu       sync.Mutex
	budget   int // crash when accepted reaches budget; 0 = never
	accepted int
	tripped  bool
}

// WrapWAL wraps a backend with a crash budget of n accepted records
// (0 disables the budget; the wrapper is then transparent).
func WrapWAL(inner wal.Log, n int) *WAL {
	return &WAL{inner: inner, budget: n}
}

// Inner returns the wrapped backend (for recovery after the crash).
func (w *WAL) Inner() wal.Log { return w.inner }

// Tripped reports whether the budget crash fired.
func (w *WAL) Tripped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tripped
}

// Release disarms the wrapper: no further crash, appends pass through
// again (used by harnesses that reuse the wrapper across run phases).
func (w *WAL) Release() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.budget = 0
	w.tripped = false
}

// Append delegates to the backend, panicking with the crash sentinel
// on the budget-exhausting record; post-crash appends are dropped.
func (w *WAL) Append(rec wal.Record) (int64, error) {
	w.mu.Lock()
	if w.tripped {
		w.mu.Unlock()
		return 0, nil // the crashed system's writes go nowhere
	}
	lsn, err := w.inner.Append(rec)
	if err != nil {
		w.mu.Unlock()
		return lsn, err
	}
	w.accepted++
	if w.budget > 0 && w.accepted >= w.budget {
		w.tripped = true
		w.mu.Unlock()
		panic(Crash{Point: PointWALAppend})
	}
	w.mu.Unlock()
	return lsn, nil
}

// AppendNoSync implements wal.BatchBackend through the injection seam:
// same budget accounting and crash window as Append, but the record is
// only buffered — a group-commit leader syncs the batch afterwards.
// When the backend has no batch support it degrades to Append.
func (w *WAL) AppendNoSync(rec wal.Record) (int64, error) {
	w.mu.Lock()
	if w.tripped {
		w.mu.Unlock()
		return 0, nil
	}
	var (
		lsn int64
		err error
	)
	if bb, ok := w.inner.(wal.BatchBackend); ok {
		lsn, err = bb.AppendNoSync(rec)
	} else {
		lsn, err = w.inner.Append(rec)
	}
	if err != nil {
		w.mu.Unlock()
		return lsn, err
	}
	w.accepted++
	if w.budget > 0 && w.accepted >= w.budget {
		w.tripped = true
		w.mu.Unlock()
		panic(Crash{Point: PointWALAppend})
	}
	w.mu.Unlock()
	return lsn, nil
}

// Sync delegates to the backend's batch support; a tripped wrapper
// syncs nothing (the crashed system must not touch the disk).
func (w *WAL) Sync() error {
	w.mu.Lock()
	tripped := w.tripped
	w.mu.Unlock()
	if tripped {
		return nil
	}
	if bb, ok := w.inner.(wal.BatchBackend); ok {
		return bb.Sync()
	}
	return nil
}

// Records delegates to the backend.
func (w *WAL) Records() ([]wal.Record, error) { return w.inner.Records() }

// Close delegates to the backend.
func (w *WAL) Close() error { return w.inner.Close() }

// SetMetrics forwards the registry to an instrumented backend.
func (w *WAL) SetMetrics(m *metrics.Registry) {
	if il, ok := w.inner.(wal.Instrumented); ok {
		il.SetMetrics(m)
	}
}

// Compact forwards to a compaction-capable backend (the engines see
// the wrapper as their log, so checkpoint-driven compaction must pass
// through the injection seam); a backend without compaction support
// makes it a no-op.
func (w *WAL) Compact(inject func(string)) error {
	if c, ok := w.inner.(wal.Compactor); ok {
		return c.Compact(inject)
	}
	return nil
}
