package fault

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"transproc/internal/wal"
)

func TestInjectorCountsAndTripsOnce(t *testing.T) {
	inj := NewInjector(Plan{CrashAtPoint: PointAfterForceLog, CrashAtCount: 3})
	if inj == nil {
		t.Fatal("armed plan returned nil injector")
	}
	// Hits at other points never count.
	inj.Point(PointBeforeForceLog)
	inj.Point(PointDispatch)
	// First two hits of the armed point pass.
	inj.Point(PointAfterForceLog)
	inj.Point(PointAfterForceLog)
	if inj.Tripped() {
		t.Fatal("tripped before the armed count")
	}
	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok {
				t.Fatal("third hit did not panic with the crash sentinel")
			}
			if c.Point != PointAfterForceLog {
				t.Fatalf("crash point = %q, want %q", c.Point, PointAfterForceLog)
			}
		}()
		inj.Point(PointAfterForceLog)
	}()
	if !inj.Tripped() {
		t.Fatal("Tripped() false after firing")
	}
	// Inert afterwards.
	inj.Point(PointAfterForceLog)
}

func TestInjectorNilSafe(t *testing.T) {
	var inj *Injector
	inj.Point(PointDispatch) // must not panic
	if inj.Tripped() {
		t.Fatal("nil injector reports tripped")
	}
	if NewInjector(Plan{}) != nil {
		t.Fatal("unarmed plan should yield a nil injector")
	}
}

func TestNewInjectorKillAtDispatchShorthand(t *testing.T) {
	inj := NewInjector(Plan{KillAtDispatch: 2})
	inj.Point(PointDispatch)
	func() {
		defer func() {
			if _, ok := AsCrash(recover()); !ok {
				t.Fatal("second dispatch hit did not crash")
			}
		}()
		inj.Point(PointDispatch)
	}()
}

func TestWALWrapperBudgetCrash(t *testing.T) {
	mem := wal.NewMemLog()
	w := WrapWAL(mem, 2)
	if _, err := w.Append(wal.Record{Type: wal.RecStart, Proc: "W1"}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if _, ok := AsCrash(recover()); !ok {
				t.Fatal("budget-exhausting append did not crash")
			}
		}()
		w.Append(wal.Record{Type: wal.RecStart, Proc: "W2"})
	}()
	if !w.Tripped() {
		t.Fatal("Tripped() false after the budget crash")
	}
	// The crashing append still reached the backend (the write was in
	// flight, not rejected) ...
	recs, err := mem.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("backend has %d records, want 2", len(recs))
	}
	// ... and post-crash appends are dropped.
	if _, err := w.Append(wal.Record{Type: wal.RecStart, Proc: "W3"}); err != nil {
		t.Fatal(err)
	}
	recs, _ = mem.Records()
	if len(recs) != 2 {
		t.Fatalf("post-crash append reached the backend (%d records)", len(recs))
	}
	// Release disarms: appends pass through again.
	w.Release()
	if _, err := w.Append(wal.Record{Type: wal.RecStart, Proc: "W4"}); err != nil {
		t.Fatal(err)
	}
	recs, _ = mem.Records()
	if len(recs) != 3 {
		t.Fatalf("released wrapper dropped an append (%d records)", len(recs))
	}
}

type otherCrash struct{}

func (otherCrash) InjectedCrash() string { return "other:point" }

func TestAsCrash(t *testing.T) {
	if c, ok := AsCrash(Crash{Point: "x"}); !ok || c.Point != "x" {
		t.Fatalf("AsCrash(Crash) = %v, %v", c, ok)
	}
	if c, ok := AsCrash(otherCrash{}); !ok || c.Point != "other:point" {
		t.Fatalf("AsCrash(foreign sentinel) = %v, %v", c, ok)
	}
	if _, ok := AsCrash(errors.New("boom")); ok {
		t.Fatal("AsCrash accepted a plain error")
	}
	if _, ok := AsCrash(nil); ok {
		t.Fatal("AsCrash accepted nil")
	}
}

func TestProtect(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	sentinel := errors.New("regular failure")
	if err := Protect(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("regular error not passed through: %v", err)
	}
	err := Protect(func() error { panic(Crash{Point: PointWALAppend}) })
	var c Crash
	if !errors.As(err, &c) || c.Point != PointWALAppend {
		t.Fatalf("crash panic not converted: %v", err)
	}
	// Non-crash panics propagate.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign panic swallowed")
			}
		}()
		Protect(func() error { panic("not a crash") })
	}()
}

func TestScenarioForDeterministicAndCovering(t *testing.T) {
	classes := make(map[string]bool)
	for seed := int64(0); seed < 20; seed++ {
		a, b := ScenarioFor(seed), ScenarioFor(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: ScenarioFor not deterministic:\n%+v\n%+v", seed, a, b)
		}
		classes[a.Class] = true
	}
	for _, want := range []string{
		"wal-budget", "before-forcelog", "after-forcelog", "2pc-after-decision",
		"2pc-mid-resolve", "file-torn-tail", "file-garbage-tail",
		"runtime-kill-dispatch", "runtime-wal-budget", "crash-during-recovery",
	} {
		if !classes[want] {
			t.Errorf("class %q never generated in 20 seeds", want)
		}
	}
}

func TestRunTortureSummary(t *testing.T) {
	sum := RunTorture(0, 4, t.TempDir())
	if sum.Scenarios != 4 {
		t.Fatalf("Scenarios = %d, want 4", sum.Scenarios)
	}
	if len(sum.Failures) != 0 {
		t.Fatalf("failures: %v", sum.Failures)
	}
	total := 0
	for _, n := range sum.ByClass {
		total += n
	}
	if total != 4 {
		t.Fatalf("ByClass sums to %d, want 4", total)
	}
	if sum.Crashed+sum.Clean != 4 {
		t.Fatalf("Crashed(%d)+Clean(%d) != 4", sum.Crashed, sum.Clean)
	}
}

func TestTornTailNeverEatsAcknowledgedRecords(t *testing.T) {
	// Regardless of how large the tear is, only the final record may be
	// affected.
	dir := t.TempDir()
	path := dir + "/wal.log"
	fl, err := wal.OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := fl.Append(wal.Record{Type: wal.RecStart, Proc: fmt.Sprintf("W%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	fl.Close()
	if err := tearTail(path, 1<<20); err != nil {
		t.Fatal(err)
	}
	re, err := wal.OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("after max tear %d records survive, want 4 (all but the last)", len(recs))
	}
}
