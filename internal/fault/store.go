package fault

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"transproc/internal/store"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// storePath names a subsystem's heap file within a scenario.
func storePath(dir string, seed int64, sub string) string {
	return filepath.Join(dir, fmt.Sprintf("store-%d-%s.pages", seed, sub))
}

// storeOptions builds the store configuration of a scenario: the
// scenario's pool size and flush mode, the fault injector as the crash
// hook, and the scenario WAL's Sync as the write-ahead barrier (a dirty
// page never reaches the device before the log it depends on).
func storeOptions(sc Scenario, log wal.Log, inj *Injector) store.Options {
	opts := store.Options{
		PoolPages: sc.StorePoolPages,
		FlushEach: sc.StoreFlushEach,
		Inject:    inj.Point,
	}
	// wal.Log deliberately omits Sync; every real log (MemLog, FileLog,
	// the fault wrapper) has it, so the barrier is wired by assertion.
	if s, ok := log.(interface{ Sync() error }); ok {
		opts.Barrier = s.Sync
	}
	return opts
}

// attachStores opens a fresh heap file per subsystem (removing any
// leftover from an earlier run of the same seed) and attaches it.
func attachStores(fed *subsystem.Federation, sc Scenario, dir string, log wal.Log, inj *Injector) error {
	for _, sub := range fed.Subsystems() {
		path := storePath(dir, sc.Seed, sub.Name())
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("removing stale store %s: %w", path, err)
		}
		st, err := store.OpenFile(path, storeOptions(sc, log, inj))
		if err != nil {
			return fmt.Errorf("opening store %s: %w", path, err)
		}
		if err := sub.AttachStore(st); err != nil {
			return fmt.Errorf("attaching store %s: %w", path, err)
		}
	}
	return nil
}

// reopenStores reopens the scenario's heap files — whatever the crash
// left on disk — into a (fresh) federation's subsystems.
func reopenStores(fed *subsystem.Federation, sc Scenario, dir string, log wal.Log, inj *Injector) error {
	for _, sub := range fed.Subsystems() {
		path := storePath(dir, sc.Seed, sub.Name())
		st, err := store.OpenFile(path, storeOptions(sc, log, inj))
		if err != nil {
			return fmt.Errorf("reopening store %s: %w", path, err)
		}
		if err := sub.AttachStore(st); err != nil {
			return fmt.Errorf("attaching reopened store %s: %w", path, err)
		}
	}
	return nil
}

// abandonStores closes every attached store crash-style: dirty pool
// pages are dropped, only what reached the device survives.
func abandonStores(fed *subsystem.Federation) {
	for _, sub := range fed.Subsystems() {
		if st := sub.DurableStore(); st != nil {
			st.Abandon()
		}
	}
}

// tearStorePage simulates a torn page write: one byte of one page of
// one subsystem's heap file is flipped (seed-deterministic choice), so
// the page's checksum fails at the next Open and the store must repair
// it and recovery must redo its lost records from the WAL. Files with
// no pages are skipped.
func tearStorePage(fed *subsystem.Federation, sc Scenario, dir string) error {
	rng := rand.New(rand.NewSource(sc.Seed*2654435761 + 97))
	subs := fed.Subsystems()
	for _, off := range rng.Perm(len(subs)) {
		path := storePath(dir, sc.Seed, subs[off].Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("reading store for tear: %w", err)
		}
		if len(data) < store.PageSize {
			continue
		}
		page := rng.Intn(len(data) / store.PageSize)
		at := int64(page*store.PageSize + rng.Intn(store.PageSize))
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		b := []byte{data[at] ^ 0xff}
		if _, err := f.WriteAt(b, at); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil // no store has a full page yet — nothing to tear
}

// CheckDurableStores asserts the storage-level recovery guarantees
// after a durable scenario's recovery completed (run it after
// CheckRecovered, whose invariant 5 ties the in-memory state to the
// log):
//
//  1. every store flushes cleanly and its on-disk pages all pass their
//     checksums — no torn page survives recovery undetected;
//  2. directory, free-space map and pages are mutually consistent;
//  3. no 2PC intent records linger (every in-doubt transaction was
//     resolved and its intent cleaned up);
//  4. the page image is byte-equal to a sequential oracle: a fresh
//     store fed the recovered logical state (baselines + data items)
//     in canonical order. Combined with invariant 5 this makes the
//     durable image a pure function of the log's committed work.
func CheckDurableStores(fed *subsystem.Federation) error {
	for _, sub := range fed.Subsystems() {
		st := sub.DurableStore()
		if st == nil {
			continue
		}
		if _, err := sub.FlushStore(); err != nil {
			return fmt.Errorf("store %s: flush after recovery: %w", sub.Name(), err)
		}
		if _, err := st.VerifyDisk(); err != nil {
			return fmt.Errorf("store %s: torn page survives recovery: %w", sub.Name(), err)
		}
		if err := st.CheckConsistency(); err != nil {
			return fmt.Errorf("store %s: %w", sub.Name(), err)
		}
		if intents := st.Keys("i/"); len(intents) != 0 {
			return fmt.Errorf("store %s: %d intent records survive recovery: %v", sub.Name(), len(intents), intents)
		}
		oracle := store.OpenMem(store.Options{})
		for item, v := range sub.Baselines() {
			if err := oracle.Put("b/"+item, v); err != nil {
				return fmt.Errorf("store %s: oracle: %w", sub.Name(), err)
			}
		}
		for item, v := range sub.Snapshot() {
			if err := oracle.Put("d/"+item, v); err != nil {
				return fmt.Errorf("store %s: oracle: %w", sub.Name(), err)
			}
		}
		want, err := oracle.CanonicalBytes("b/", "d/")
		if err != nil {
			return fmt.Errorf("store %s: oracle canonical bytes: %w", sub.Name(), err)
		}
		got, err := st.CanonicalBytes("b/", "d/")
		if err != nil {
			return fmt.Errorf("store %s: canonical bytes: %w", sub.Name(), err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("store %s: page image diverges from the sequential oracle (%d vs %d canonical bytes)",
				sub.Name(), len(got), len(want))
		}
	}
	return nil
}
