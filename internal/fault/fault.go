// Package fault is a deterministic fault-injection subsystem for
// torturing the recovery path: seedable fault plans crash a scheduler
// or runtime run at named points (around force-log writes, mid-2PC,
// at dispatch), after a WAL-record budget, or with a torn tail on a
// file-backed log — then the crash-torture battery recovers the
// surviving state and checks the paper's guarantees (prefix-reducible
// combined schedule, every process terminal, compensations in reverse
// base order per Lemma 2, idempotent recovery, exactly-once subsystem
// effects).
//
// Crashes are simulated by panicking with the Crash sentinel. The
// engines recognize it structurally (interface{ InjectedCrash() string
// }) without importing this package, convert it into
// scheduler.ErrCrashed, and return the partial result; log and
// subsystem state survive for scheduler.Recover.
package fault

import (
	"fmt"
	"sync"

	"transproc/internal/store"
	"transproc/internal/wal"
)

// Crash point names threaded through the engines.
const (
	// PointBeforeForceLog / PointAfterForceLog bracket every force-log
	// write of the sequential scheduler.
	PointBeforeForceLog = "sched:before-forcelog"
	PointAfterForceLog  = "sched:after-forcelog"
	// PointAfterDecision fires right after the 2PC decision record,
	// before any participant commits; PointMidResolve between the first
	// and second participant commit.
	PointAfterDecision = "twopc:after-decision"
	PointMidResolve    = "twopc:mid-resolve"
	// PointDispatch fires in the concurrent runtime's dispatch gate,
	// just before an invocation is registered and issued.
	PointDispatch = "runtime:dispatch"
	// PointWALAppend is reported by the fault WAL wrapper when its
	// record budget trips.
	PointWALAppend = "wal:append"
	// Federation crash points (fired by scheduler nodes,
	// internal/federation): before a frontier dispatch RPC is sent, and
	// in the window after the node force-logged a prepared outcome but
	// before the hub was asked to commit it (the orphan-prepared
	// window that recovery resolves by presumed abort). Node-side 2PC
	// reuses PointAfterDecision and PointMidResolve.
	PointFedDispatch      = "fed:dispatch"
	PointFedAfterPrepared = "fed:after-prepared"
	// Hub crash points (fired inside the federation hub's serial
	// section, internal/federation): after a frontier dispatch prepared
	// its subsystem transaction but before the node learns the stamp
	// (the response is lost with the hub), after the Lemma-1 gate
	// granted a 2PC decision stamp, and after a prepared participant
	// was committed during resolution. Each models kill -9 of the
	// coordination agent with mutated in-memory state the reopen must
	// rebuild from the stitched WALs plus the hub journal.
	PointHubDispatch = "hub:dispatch"
	PointHubDecision = "hub:decision"
	PointHubResolve  = "hub:resolve"
	// Checkpoint/compaction crash points (defined in internal/wal and
	// re-exported here): before the checkpoint build, before the
	// checkpoint record append, between the compacted temp file and the
	// rename, and between the rename and the parent-directory fsync.
	PointCheckpointBuild  = wal.PointCheckpointBuild
	PointCheckpointAppend = wal.PointCheckpointAppend
	PointCompactRename    = wal.PointCompactRename
	PointCompactDirSync   = wal.PointCompactDirSync
	// PointGroupFsync fires between a group-commit batch's buffered
	// write and its fsync; a crash there loses only unacked records.
	PointGroupFsync = wal.PointGroupFsync
	// Durable-store crash points (defined in internal/store): before a
	// buffer-pool page write, before the flush fsync, before a
	// dirty-victim eviction write-back, and before allocating a fresh
	// heap page.
	PointStorePageWrite = store.PointPageWrite
	PointStorePageFsync = store.PointPageFsync
	PointStoreEvict     = store.PointEvict
	PointStoreAlloc     = store.PointAlloc
	// Serve crash points (fired by the ingestion server, internal/serve):
	// after a submission was journaled but before it is enqueued for
	// execution (kill mid-request), after the batch runner picked the
	// submission up but before the HTTP acknowledgement window closes
	// (kill mid-ack — the client never learns whether the submission
	// landed, so dedupe by idempotency key must make the retry safe),
	// and inside the drain sequence after admission stopped but before
	// the final checkpoint (kill mid-drain).
	PointServeAdmit = "serve:admit"
	PointServeAck   = "serve:ack"
	PointServeDrain = "serve:drain"
)

// Crash is the sentinel an armed fault panics with. The engines
// recover it by its InjectedCrash method, so this package stays a leaf
// dependency.
type Crash struct {
	Point string // the crash point that tripped
}

// InjectedCrash names the crash point; its presence (not the package
// type) is what the engines test for.
func (c Crash) InjectedCrash() string { return c.Point }

// Error makes the sentinel printable when it escapes un-recovered.
func (c Crash) Error() string { return fmt.Sprintf("fault: injected crash at %s", c.Point) }

// AsCrash reports whether a recovered panic value is a crash sentinel.
func AsCrash(v any) (Crash, bool) {
	switch c := v.(type) {
	case Crash:
		return c, true
	case interface{ InjectedCrash() string }:
		return Crash{Point: c.InjectedCrash()}, true
	}
	return Crash{}, false
}

// SubsystemFail arms a deterministic permanent failure: every
// invocation of Service on behalf of (origin) process Proc fails. It
// mirrors the differential battery's failure rules, so a scenario's
// process fates are a function of the plan, not of interleaving.
type SubsystemFail struct {
	Proc    string
	Service string
}

// Plan is a deterministic, seedable fault scenario. The zero value
// injects nothing.
type Plan struct {
	// Seed identifies the scenario; RunScenario derives the workload
	// and every random choice from it.
	Seed int64
	// CrashAfterWALRecords crashes the run when the WAL has accepted
	// that many records (the fault WAL wrapper panics from inside the
	// append, so the caller never observes the write as durable).
	CrashAfterWALRecords int
	// TornTailBytes, for file-backed scenarios, mangles that many bytes
	// of the final (in-flight) record after the crash — a torn write.
	// Only the record whose append crashed is affected.
	TornTailBytes int
	// CrashAtPoint crashes at the CrashAtCount-th (1-based; 0 means
	// first) hit of the named crash point.
	CrashAtPoint string
	CrashAtCount int
	// KillAtDispatch crashes at the K-th dispatch gate
	// (PointDispatch); shorthand for CrashAtPoint/CrashAtCount.
	KillAtDispatch int
	// SubsystemFail arms deterministic permanent service failures.
	SubsystemFail []SubsystemFail
}

// Injector counts crash-point hits and panics with the Crash sentinel
// when the armed point's count is reached. Safe for concurrent use
// (the runtime fires points from many workers).
type Injector struct {
	mu      sync.Mutex
	point   string
	trigger int
	hits    int
	tripped bool
}

// NewInjector arms an injector from the plan's point-based fields; nil
// when the plan arms none (callers can pass nil Inject hooks through).
func NewInjector(p Plan) *Injector {
	point, trigger := p.CrashAtPoint, p.CrashAtCount
	if p.KillAtDispatch > 0 {
		point, trigger = PointDispatch, p.KillAtDispatch
	}
	if point == "" {
		return nil
	}
	if trigger < 1 {
		trigger = 1
	}
	return &Injector{point: point, trigger: trigger}
}

// Point is the hook to hand to Config.Inject. It panics with the
// sentinel at the armed occurrence and is inert afterwards (the
// engines stop the run at the first trip).
func (i *Injector) Point(point string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	if i.tripped || point != i.point {
		i.mu.Unlock()
		return
	}
	i.hits++
	if i.hits < i.trigger {
		i.mu.Unlock()
		return
	}
	i.tripped = true
	i.mu.Unlock()
	panic(Crash{Point: point})
}

// Tripped reports whether the injector fired.
func (i *Injector) Tripped() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.tripped
}

// Protect runs f, converting an escaped crash sentinel into an error —
// the harness's recover shim for code paths that do not recover the
// sentinel themselves (crashing a Recover pass mid-flight).
func Protect(f func() error) (err error) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		if c, ok := AsCrash(v); ok {
			err = c
			return
		}
		panic(v)
	}()
	return f()
}
