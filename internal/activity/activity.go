// Package activity implements the activity model of Schuldt, Alonso and
// Schek, "Concurrency Control and Recovery in Transactional Process
// Management" (PODS'99), Definitions 1-4.
//
// Activities are service invocations in underlying transactional
// subsystems. Each activity is itself a local transaction and therefore
// atomic: an invocation terminates either committing or aborting.
// Activities differ in their termination guarantees: they are
// compensatable, retriable, or pivot (flex transaction model).
package activity

import (
	"errors"
	"fmt"
)

// Kind classifies the termination guarantee of an activity
// (Definitions 2-4 of the paper, following the flex transaction model).
type Kind int

const (
	// Compensatable activities have a compensating activity a⁻¹ such
	// that ⟨a a⁻¹⟩ is effect-free (Definition 2).
	Compensatable Kind = iota
	// Pivot activities are neither compensatable nor retriable. Their
	// successful termination is the "quasi commit" of a process: once a
	// pivot commits, backward recovery is no longer possible.
	Pivot
	// Retriable activities are guaranteed to terminate with commit after
	// a finite number of invocations (Definition 3).
	Retriable
	// Compensation marks a compensating activity a⁻¹. Compensating
	// activities are themselves not compensatable but are retriable and
	// therefore guaranteed to commit (paper, Section 3.1).
	Compensation
)

// String returns the conventional superscript notation used in the paper.
func (k Kind) String() string {
	switch k {
	case Compensatable:
		return "c"
	case Pivot:
		return "p"
	case Retriable:
		return "r"
	case Compensation:
		return "-1"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool {
	return k >= Compensatable && k <= Compensation
}

// NonCompensatable reports whether an already-committed activity of this
// kind can no longer be undone by compensation. Pivot and retriable
// activities have no compensating activity in the flex transaction model;
// neither do compensating activities themselves.
func (k Kind) NonCompensatable() bool {
	return k != Compensatable
}

// GuaranteedToCommit reports whether an invocation of this kind can never
// fail permanently (Definition 4): retriable activities and compensating
// activities always eventually commit.
func (k Kind) GuaranteedToCommit() bool {
	return k == Retriable || k == Compensation
}

// Spec describes a service offered by a transactional subsystem. The set
// of all Specs across subsystems is the paper's Â.
type Spec struct {
	// Name uniquely identifies the service across all subsystems.
	Name string
	// Kind is the termination guarantee of invocations of this service.
	Kind Kind
	// Subsystem names the transactional subsystem providing the service.
	Subsystem string
	// Compensation is the name of the compensating service for
	// compensatable activities; it must be empty otherwise.
	Compensation string
	// ReadSet and WriteSet optionally declare the data items touched by
	// the service. When present they can be used to derive the conflict
	// relation (two services conflict if one writes an item the other
	// reads or writes). The formal conflict relation of the paper
	// (Definition 6) is based on return values; declared sets are the
	// practical approximation a scheduler works with.
	ReadSet  []string
	WriteSet []string
	// Commutative declares that two invocations of this service commute
	// with each other even though both write (e.g. increments or
	// appends): the return values are independent of their order. The
	// unified theory is defined over such semantically rich operations;
	// a derived conflict table then omits the self-conflict. Conflicts
	// with *other* services sharing data items are unaffected.
	Commutative bool
	// FailureProb is the probability in [0,1) that a single invocation
	// of this service aborts, used by the simulation substrate. Retriable
	// services with FailureProb > 0 abort transiently and are re-invoked;
	// compensatable and pivot services abort permanently (the activity
	// has failed in the sense of Definition 4).
	FailureProb float64
	// Cost is the simulated execution time of one invocation in abstract
	// virtual-time ticks (>= 1 after normalization).
	Cost int
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("activity: spec has empty name")
	}
	if !s.Kind.Valid() {
		return fmt.Errorf("activity: spec %q has invalid kind %d", s.Name, int(s.Kind))
	}
	if s.Subsystem == "" {
		return fmt.Errorf("activity: spec %q has empty subsystem", s.Name)
	}
	if s.Kind == Compensatable && s.Compensation == "" {
		return fmt.Errorf("activity: compensatable spec %q lacks a compensation service", s.Name)
	}
	if s.Kind != Compensatable && s.Compensation != "" {
		return fmt.Errorf("activity: %v spec %q must not declare a compensation service", s.Kind, s.Name)
	}
	if s.Compensation == s.Name && s.Name != "" && s.Compensation != "" {
		return fmt.Errorf("activity: spec %q compensates itself", s.Name)
	}
	if s.FailureProb < 0 || s.FailureProb >= 1 {
		return fmt.Errorf("activity: spec %q has failure probability %v outside [0,1)", s.Name, s.FailureProb)
	}
	if s.Cost < 0 {
		return fmt.Errorf("activity: spec %q has negative cost %d", s.Name, s.Cost)
	}
	return nil
}

// Outcome is the termination state of a single activity invocation. As
// activities are transactions in the underlying subsystems, they are by
// definition atomic and terminate either committing or aborting.
type Outcome int

const (
	// Committed means the invocation terminated with commit.
	Committed Outcome = iota
	// Aborted means the invocation terminated with abort. For a
	// retriable activity this is transient; for a compensatable or pivot
	// activity it means the activity has failed (Definition 4).
	Aborted
	// Prepared means the invocation has executed and entered the
	// prepared state of a two phase commit protocol: its commit is
	// deferred (Lemma 1 requires the commits of non-compensatable
	// activities to be deferred until conflicting predecessor processes
	// have committed).
	Prepared
)

// String returns a readable outcome label.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Prepared:
		return "prepared"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Invocation records the n-th invocation a_i(n) of an activity
// (Definition 3 labels invocations to define retriability).
type Invocation struct {
	Service string
	Attempt int
	Outcome Outcome
	// Return is the value returned by the subsystem; the commutativity
	// of activities is defined over return values (Definition 6).
	Return any
	Err    error
}

// String renders the invocation in the paper's a(n) notation.
func (inv Invocation) String() string {
	return fmt.Sprintf("%s(%d)=%s", inv.Service, inv.Attempt, inv.Outcome)
}

// Registry is the set Â of all services provided by all subsystems,
// indexed by name. The zero value is not usable; use NewRegistry.
type Registry struct {
	specs map[string]*Spec
}

// NewRegistry returns an empty service registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]*Spec)}
}

// Register validates and adds a spec. It rejects duplicate names.
func (r *Registry) Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("activity: duplicate service %q", s.Name)
	}
	cp := s
	r.specs[s.Name] = &cp
	return nil
}

// MustRegister is Register that panics on error; it is intended for
// statically known test and example fixtures.
func (r *Registry) MustRegister(s Spec) {
	if err := r.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the spec for a service name.
func (r *Registry) Lookup(name string) (*Spec, bool) {
	s, ok := r.specs[name]
	return s, ok
}

// Len returns the number of registered services.
func (r *Registry) Len() int { return len(r.specs) }

// Names returns all registered service names in unspecified order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	return out
}

// CompensationOf returns the spec of the compensating service of name, if
// name is registered, compensatable, and its compensation is registered.
func (r *Registry) CompensationOf(name string) (*Spec, error) {
	s, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("activity: unknown service %q", name)
	}
	if s.Kind != Compensatable {
		return nil, fmt.Errorf("activity: service %q (%v) is not compensatable", name, s.Kind)
	}
	c, ok := r.specs[s.Compensation]
	if !ok {
		return nil, fmt.Errorf("activity: compensation %q of %q is not registered", s.Compensation, name)
	}
	if c.Kind != Compensation {
		return nil, fmt.Errorf("activity: service %q is declared as compensation of %q but has kind %v", c.Name, name, c.Kind)
	}
	return c, nil
}

// Validate checks registry-wide invariants: every compensatable service
// has a registered Compensation-kind inverse on the same subsystem, and
// every Compensation-kind service is the inverse of some compensatable
// service.
func (r *Registry) Validate() error {
	inverseOf := make(map[string]string) // compensation name -> owner
	for name, s := range r.specs {
		if s.Kind != Compensatable {
			continue
		}
		c, err := r.CompensationOf(name)
		if err != nil {
			return err
		}
		if c.Subsystem != s.Subsystem {
			return fmt.Errorf("activity: compensation %q of %q lives on subsystem %q, want %q",
				c.Name, name, c.Subsystem, s.Subsystem)
		}
		if prev, dup := inverseOf[c.Name]; dup {
			return fmt.Errorf("activity: service %q is the compensation of both %q and %q", c.Name, prev, name)
		}
		inverseOf[c.Name] = name
	}
	for name, s := range r.specs {
		if s.Kind == Compensation {
			if _, used := inverseOf[name]; !used {
				return fmt.Errorf("activity: compensation service %q is not the inverse of any compensatable service", name)
			}
		}
	}
	return nil
}

// BaseOf returns, for a Compensation-kind service, the name of the
// compensatable service it inverts; for any other service it returns the
// service's own name. Perfect commutativity (Section 3.2) means a
// compensating activity has exactly the conflicts of its base activity,
// so conflict relations are keyed on base names.
func (r *Registry) BaseOf(name string) string {
	s, ok := r.specs[name]
	if !ok || s.Kind != Compensation {
		return name
	}
	for owner, os := range r.specs {
		if os.Kind == Compensatable && os.Compensation == name {
			return owner
		}
	}
	return name
}
