package activity

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	cases := []struct {
		k    Kind
		want string
	}{
		{Compensatable, "c"},
		{Pivot, "p"},
		{Retriable, "r"},
		{Compensation, "-1"},
		{Kind(42), "Kind(42)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	t.Parallel()
	for _, k := range []Kind{Compensatable, Pivot, Retriable, Compensation} {
		if !k.Valid() {
			t.Errorf("kind %v should be valid", k)
		}
	}
	if Kind(-1).Valid() || Kind(4).Valid() {
		t.Error("out-of-range kinds must be invalid")
	}
}

func TestKindNonCompensatable(t *testing.T) {
	t.Parallel()
	if Compensatable.NonCompensatable() {
		t.Error("compensatable activities are compensatable")
	}
	for _, k := range []Kind{Pivot, Retriable, Compensation} {
		if !k.NonCompensatable() {
			t.Errorf("%v must be non-compensatable (flex transaction model)", k)
		}
	}
}

func TestKindGuaranteedToCommit(t *testing.T) {
	t.Parallel()
	if Compensatable.GuaranteedToCommit() || Pivot.GuaranteedToCommit() {
		t.Error("compensatable and pivot activities can fail (Definition 4)")
	}
	if !Retriable.GuaranteedToCommit() {
		t.Error("retriable activities are guaranteed to commit (Definition 3)")
	}
	if !Compensation.GuaranteedToCommit() {
		t.Error("compensating activities are retriable and guaranteed to commit")
	}
}

func validSpec() Spec {
	return Spec{Name: "book", Kind: Compensatable, Subsystem: "hotel", Compensation: "cancel"}
}

func TestSpecValidateOK(t *testing.T) {
	t.Parallel()
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty name"},
		{"invalid kind", func(s *Spec) { s.Kind = Kind(9) }, "invalid kind"},
		{"empty subsystem", func(s *Spec) { s.Subsystem = "" }, "empty subsystem"},
		{"missing compensation", func(s *Spec) { s.Compensation = "" }, "lacks a compensation"},
		{"pivot with compensation", func(s *Spec) { s.Kind = Pivot }, "must not declare"},
		{"retriable with compensation", func(s *Spec) { s.Kind = Retriable }, "must not declare"},
		{"self compensation", func(s *Spec) { s.Compensation = s.Name }, "compensates itself"},
		{"bad failure prob low", func(s *Spec) { s.FailureProb = -0.1 }, "failure probability"},
		{"bad failure prob high", func(s *Spec) { s.FailureProb = 1.0 }, "failure probability"},
		{"negative cost", func(s *Spec) { s.Cost = -1 }, "negative cost"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestOutcomeString(t *testing.T) {
	t.Parallel()
	if Committed.String() != "committed" || Aborted.String() != "aborted" || Prepared.String() != "prepared" {
		t.Error("outcome labels wrong")
	}
	if got := Outcome(7).String(); got != "Outcome(7)" {
		t.Errorf("unknown outcome = %q", got)
	}
}

func TestInvocationString(t *testing.T) {
	t.Parallel()
	inv := Invocation{Service: "pay", Attempt: 3, Outcome: Aborted}
	if got := inv.String(); got != "pay(3)=aborted" {
		t.Errorf("invocation string = %q", got)
	}
}

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.MustRegister(Spec{Name: "book", Kind: Compensatable, Subsystem: "hotel", Compensation: "cancel"})
	r.MustRegister(Spec{Name: "cancel", Kind: Compensation, Subsystem: "hotel"})
	r.MustRegister(Spec{Name: "pay", Kind: Pivot, Subsystem: "bank"})
	r.MustRegister(Spec{Name: "notify", Kind: Retriable, Subsystem: "mail"})
	return r
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	t.Parallel()
	r := newTestRegistry(t)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	s, ok := r.Lookup("book")
	if !ok || s.Kind != Compensatable {
		t.Fatalf("lookup book: %+v, %v", s, ok)
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("lookup of missing service succeeded")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	t.Parallel()
	r := newTestRegistry(t)
	err := r.Register(Spec{Name: "book", Kind: Retriable, Subsystem: "x"})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate registration: %v", err)
	}
}

func TestRegistryRegisterInvalid(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	if err := r.Register(Spec{}); err == nil {
		t.Fatal("registering an invalid spec must fail")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister must panic on invalid spec")
		}
	}()
	NewRegistry().MustRegister(Spec{})
}

func TestCompensationOf(t *testing.T) {
	t.Parallel()
	r := newTestRegistry(t)
	c, err := r.CompensationOf("book")
	if err != nil || c.Name != "cancel" {
		t.Fatalf("CompensationOf(book) = %v, %v", c, err)
	}
	if _, err := r.CompensationOf("pay"); err == nil {
		t.Fatal("pivot has no compensation")
	}
	if _, err := r.CompensationOf("nope"); err == nil {
		t.Fatal("unknown service has no compensation")
	}
}

func TestCompensationOfUnregisteredInverse(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.MustRegister(Spec{Name: "a", Kind: Compensatable, Subsystem: "s", Compensation: "undo-a"})
	if _, err := r.CompensationOf("a"); err == nil {
		t.Fatal("missing inverse must be reported")
	}
}

func TestCompensationOfWrongKind(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.MustRegister(Spec{Name: "a", Kind: Compensatable, Subsystem: "s", Compensation: "b"})
	r.MustRegister(Spec{Name: "b", Kind: Retriable, Subsystem: "s"})
	if _, err := r.CompensationOf("a"); err == nil {
		t.Fatal("inverse with wrong kind must be reported")
	}
}

func TestRegistryValidateOK(t *testing.T) {
	t.Parallel()
	if err := newTestRegistry(t).Validate(); err != nil {
		t.Fatalf("valid registry rejected: %v", err)
	}
}

func TestRegistryValidateCrossSubsystem(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.MustRegister(Spec{Name: "a", Kind: Compensatable, Subsystem: "s1", Compensation: "undo"})
	r.MustRegister(Spec{Name: "undo", Kind: Compensation, Subsystem: "s2"})
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "subsystem") {
		t.Fatalf("cross-subsystem compensation not rejected: %v", err)
	}
}

func TestRegistryValidateSharedInverse(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.MustRegister(Spec{Name: "a", Kind: Compensatable, Subsystem: "s", Compensation: "undo"})
	r.MustRegister(Spec{Name: "b", Kind: Compensatable, Subsystem: "s", Compensation: "undo"})
	r.MustRegister(Spec{Name: "undo", Kind: Compensation, Subsystem: "s"})
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "compensation of both") {
		t.Fatalf("shared inverse not rejected: %v", err)
	}
}

func TestRegistryValidateOrphanCompensation(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.MustRegister(Spec{Name: "undo", Kind: Compensation, Subsystem: "s"})
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "not the inverse") {
		t.Fatalf("orphan compensation not rejected: %v", err)
	}
}

func TestBaseOf(t *testing.T) {
	t.Parallel()
	r := newTestRegistry(t)
	if got := r.BaseOf("cancel"); got != "book" {
		t.Errorf("BaseOf(cancel) = %q, want book", got)
	}
	if got := r.BaseOf("book"); got != "book" {
		t.Errorf("BaseOf(book) = %q, want book", got)
	}
	if got := r.BaseOf("unknown"); got != "unknown" {
		t.Errorf("BaseOf(unknown) = %q, want unknown", got)
	}
}

func TestRegistryNames(t *testing.T) {
	t.Parallel()
	r := newTestRegistry(t)
	names := r.Names()
	if len(names) != 4 {
		t.Fatalf("Names returned %d entries, want 4", len(names))
	}
	set := make(map[string]bool)
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"book", "cancel", "pay", "notify"} {
		if !set[want] {
			t.Errorf("Names missing %q", want)
		}
	}
}

// Property: a registered spec is always returned unchanged by Lookup
// (the registry stores a copy, so mutating the input later is harmless).
func TestRegistryCopiesSpec(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	s := Spec{Name: "a", Kind: Retriable, Subsystem: "s", Cost: 7}
	if err := r.Register(s); err != nil {
		t.Fatal(err)
	}
	s.Cost = 99
	got, _ := r.Lookup("a")
	if got.Cost != 7 {
		t.Fatalf("registry did not copy the spec: cost %d", got.Cost)
	}
}

// Property-based: Kind.String is injective over the valid kinds and
// NonCompensatable is the complement of being Compensatable.
func TestKindProperties(t *testing.T) {
	t.Parallel()
	f := func(raw uint8) bool {
		k := Kind(raw % 4)
		return k.NonCompensatable() == (k != Compensatable)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
