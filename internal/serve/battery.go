// The serve torture battery: seeded end-to-end crash scenarios against
// a real server over real HTTP. Each scenario generates a deterministic
// workload, submits it over the wire, kills the server at a seeded
// crash point (mid-request, mid-ack, mid-drain, mid-batch, inside the
// engines, inside a group-commit fsync, or under overload), restarts it
// over the same data directory, and judges the restart with
// fault.CheckRecovered over the server's WAL — then releases the resume
// set and asserts that every admitted submission settles to a terminal
// state with exactly-once effects and a prefix-reducible accumulated
// history. Every failure message embeds the reproducing seed.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"transproc/internal/activity"
	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/schedule"
	"transproc/internal/scheduler"
	"transproc/internal/spec"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
	"transproc/internal/workload"
)

// Scenario is one fully determined serve-torture case. ScenarioFor is a
// pure function of the seed, so a failing seed reproduces the exact
// same scenario anywhere.
type Scenario struct {
	Seed  int64
	Class string
	Mode  scheduler.Mode
	// Plan arms the first server incarnation's crash (the injected
	// kill -9); the WAL-budget field is applied via Config.WrapLog.
	Plan fault.Plan
	// RerunBudget arms a second WAL budget on the restarted server, so
	// the resumed work crashes again (double restart).
	RerunBudget int
	// Overload shrinks the admission window and submits concurrently,
	// so the scenario sheds load before it crashes.
	Overload bool
	// DrainCrash calls Drain mid-flight and crashes inside it.
	DrainCrash bool
	// Park drains cleanly with a tiny deadline mid-flight, parking
	// queued submissions for the restart to resume.
	Park bool
	// RetryIndex, when >= 0, re-submits that submission's idempotency
	// key after the restart and requires a deduplicated answer.
	RetryIndex int
	// CheckpointEvery / CompactOnCheckpoint pass through to the engine.
	CheckpointEvery     int
	CompactOnCheckpoint bool
	// GroupCommit batches server-WAL appends.
	GroupCommit wal.GroupCommit
	// Procs and Tenants size the workload.
	Procs   int
	Tenants int
	// Tick slows virtual service time so drains and overloads catch
	// work in flight.
	Tick time.Duration
	// FedNodes > 0 routes batches through a federation cluster;
	// FedHubPoint/FedHubCount arm a hub kill -9 inside the first batch
	// (the server must ride through the reopen), and the lease knobs
	// exercise the membership plumbing.
	FedNodes     int
	FedHubPoint  string
	FedHubCount  int
	FedLeaseTTL  time.Duration
	FedHeartbeat time.Duration
}

// serveClasses is the scenario-class cycle.
const serveClasses = 10

// ScenarioFor derives the deterministic scenario of a seed. Nine
// classes cycle by seed: a crash after the journal append but before
// the enqueue (mid-request), after the enqueue but before the 202
// (mid-ack, followed by an idempotent retry after restart), inside the
// drain sequence, on a WAL record budget under load, at the engines'
// own force-log and 2PC points, between a group-commit batch write and
// its fsync, under overload with live shedding, a clean mid-flight
// drain that parks work for the restart, and a double crash where the
// restarted server dies again while re-running the resume set.
func ScenarioFor(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed*2862933555777941757 + 3037000493))
	sc := Scenario{
		Seed: seed, Mode: scheduler.PRED, RetryIndex: -1,
		Procs: 10, Tenants: 1 + int(seed%3),
	}
	if seed%3 == 0 {
		sc.Mode = scheduler.PREDCascade
	}
	if seed%2 == 1 {
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(8)}
	}
	if seed%5 == 0 {
		sc.CheckpointEvery = 6 + rng.Intn(8)
		sc.CompactOnCheckpoint = seed%10 == 0
	}
	budget := 10 + rng.Intn(110)
	sc.Plan.Seed = seed
	switch seed % serveClasses {
	case 0:
		sc.Class = "admit-crash"
		sc.Plan.CrashAtPoint = fault.PointServeAdmit
		sc.Plan.CrashAtCount = 1 + rng.Intn(sc.Procs)
	case 1:
		sc.Class = "ack-crash"
		sc.Plan.CrashAtPoint = fault.PointServeAck
		sc.Plan.CrashAtCount = 1 + rng.Intn(sc.Procs)
		sc.RetryIndex = sc.Plan.CrashAtCount - 1
	case 2:
		sc.Class = "drain-crash"
		sc.DrainCrash = true
		sc.Plan.CrashAtPoint = fault.PointServeDrain
		sc.Plan.CrashAtCount = 1
		sc.Tick = 200 * time.Microsecond
	case 3:
		sc.Class = "wal-budget"
		sc.Plan.CrashAfterWALRecords = budget
	case 4:
		sc.Class = "engine-point"
		pts := []string{fault.PointBeforeForceLog, fault.PointAfterForceLog,
			fault.PointAfterDecision, fault.PointMidResolve}
		sc.Plan.CrashAtPoint = pts[rng.Intn(len(pts))]
		if sc.Plan.CrashAtPoint == fault.PointAfterDecision || sc.Plan.CrashAtPoint == fault.PointMidResolve {
			sc.Plan.CrashAtCount = 1 + rng.Intn(3)
		} else {
			sc.Plan.CrashAtCount = 1 + rng.Intn(25)
		}
	case 5:
		sc.Class = "group-fsync"
		sc.GroupCommit = wal.GroupCommit{MaxBatch: 2 + rng.Intn(8)}
		sc.Plan.CrashAtPoint = wal.PointGroupFsync
		sc.Plan.CrashAtCount = 1 + rng.Intn(10)
	case 6:
		sc.Class = "overload"
		sc.Overload = true
		sc.Tick = 300 * time.Microsecond
		sc.Procs = 16
		sc.Plan.CrashAfterWALRecords = 15 + rng.Intn(60)
	case 7:
		sc.Class = "drain-park"
		sc.Park = true
		sc.Tick = 300 * time.Microsecond
	case 8:
		sc.Class = "double-crash"
		sc.Plan.CrashAfterWALRecords = budget
		sc.RerunBudget = 5 + rng.Intn(40)
	case 9:
		// The coordination hub of a federated batch dies kill -9 style
		// mid-batch; the serve layer must ride through the reopen (its
		// readiness probe degrading in the window) and still settle every
		// acked submission exactly once. The generous lease keeps healthy
		// heartbeating nodes from spurious expiry — lease-expiry torture
		// proper lives in the federation hub battery.
		sc.Class = "fed-hub-bounce"
		sc.FedNodes = 2 + rng.Intn(2)
		// Dispatch kills are guaranteed to fire (any admitted work hits
		// them) so they carry double weight; the 2PC-window kills ride
		// along when the batch exercises those paths.
		pts := []string{fault.PointHubDispatch, fault.PointHubDispatch,
			fault.PointHubDecision, fault.PointHubResolve}
		sc.FedHubPoint = pts[rng.Intn(len(pts))]
		if sc.FedHubPoint == fault.PointHubDispatch {
			sc.FedHubCount = 1 + rng.Intn(4)
		} else {
			sc.FedHubCount = 1
		}
		sc.FedLeaseTTL = 200 * time.Millisecond
		sc.FedHeartbeat = 10 * time.Millisecond
		sc.Procs = 12
		sc.CheckpointEvery = 0 // LSN epoch boundaries must survive verbatim
		sc.CompactOnCheckpoint = false
	}
	return sc
}

// serveProfile is the workload a scenario runs: conflict-heavy, no
// probabilistic permanent failures (those are chosen deterministically
// below), mild transient noise.
func serveProfile(sc Scenario) workload.Profile {
	p := workload.DefaultProfile(sc.Seed)
	p.Processes = sc.Procs
	p.ConflictProb = 0.4
	p.PermFailureProb = 0
	p.TransientFailureProb = 0.10
	return p
}

// serveWorld generates a scenario's world: the federation, the
// submissions in wire form (tenant + declarative spec, in submission
// order) and the deterministic permanent-failure rules keyed by origin
// ("tenant/proc"), applied to the federation.
func serveWorld(sc Scenario) (*subsystem.Federation, []SubmitRequest, error) {
	return serveWorldFrom(sc, serveProfile(sc))
}

// serveWorldFrom is serveWorld over an explicit profile (the
// differential test zeroes transient noise so outcomes are a pure
// function of the world).
func serveWorldFrom(sc Scenario, p workload.Profile) (*subsystem.Federation, []SubmitRequest, error) {
	w, err := workload.Generate(p)
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: generating workload: %w", sc.Seed, err)
	}
	rng := rand.New(rand.NewSource(sc.Seed*7919 + 13))
	var reqs []SubmitRequest
	for i, j := range w.Jobs {
		tenant := fmt.Sprintf("t%d", i%sc.Tenants)
		ps := spec.FromProcess(j.Proc)
		reqs = append(reqs, SubmitRequest{
			Tenant: tenant, Key: fmt.Sprintf("key-%s", ps.ID), Proc: ps,
		})
		origin := tenant + "/" + ps.ID
		// Deterministic permanent failures for roughly a third of the
		// processes, forward compensatable/pivot services only (the
		// differential-battery idiom).
		if rng.Float64() >= 0.35 {
			continue
		}
		var candidates []string
		for _, svc := range scheduler.Footprint(j.Proc) {
			spec, ok := w.Fed.Spec(svc)
			if ok && (spec.Kind == activity.Compensatable || spec.Kind == activity.Pivot) {
				candidates = append(candidates, svc)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		sort.Strings(candidates)
		svc := candidates[rng.Intn(len(candidates))]
		sub, ok := w.Fed.Owner(svc)
		if !ok {
			return nil, nil, fmt.Errorf("seed %d: no owner for %s", sc.Seed, svc)
		}
		sub.FailService(origin, svc)
	}
	return w.Fed, reqs, nil
}

// scenarioConfig builds the server config of one incarnation.
func scenarioConfig(sc Scenario, dir string, plan fault.Plan, walBudget int, hold bool) Config {
	cfg := Config{
		Dir: dir, Mode: sc.Mode, NoSync: true,
		Tick:            sc.Tick,
		CheckpointEvery: sc.CheckpointEvery, CompactOnCheckpoint: sc.CompactOnCheckpoint,
		GroupCommit: sc.GroupCommit,
		HoldResume:  hold,
		BatchWait:   time.Millisecond,
	}
	if sc.Overload {
		cfg.QueueDepth = 2
		cfg.BatchMax = 2
	}
	if sc.Park {
		cfg.BatchMax = 2
		cfg.DrainTimeout = 25 * time.Millisecond
	}
	if sc.FedNodes > 0 {
		cfg.FedNodes = sc.FedNodes
		cfg.FedLeaseTTL = sc.FedLeaseTTL
		cfg.FedHeartbeat = sc.FedHeartbeat
		// One batch holds the whole workload, so the armed hub kill is
		// guaranteed to fire inside it.
		cfg.BatchMax = sc.Procs
		cfg.BatchWait = 30 * time.Millisecond
		if !hold {
			// Only the first incarnation arms the kill; a restart resumes
			// over a healthy hub.
			cfg.FedHubKillPoint = sc.FedHubPoint
			cfg.FedHubKillCount = sc.FedHubCount
		}
	}
	if plan.CrashAtPoint != "" {
		inj := fault.NewInjector(plan)
		cfg.Inject = inj.Point
	}
	if walBudget > 0 {
		cfg.WrapLog = func(l wal.Log) wal.Log { return fault.WrapWAL(l, walBudget) }
	}
	return cfg
}

// submitAll drives the submissions over HTTP. Sequential normally;
// overload scenarios submit concurrently against a tiny admission
// window. Returns per-request HTTP status (0 = connection died).
func submitAll(base string, reqs []SubmitRequest, concurrent bool) []int {
	codes := make([]int, len(reqs))
	post := func(i int) {
		data, err := json.Marshal(reqs[i])
		if err != nil {
			codes[i] = -1
			return
		}
		resp, err := http.Post(base+"/v1/processes", "application/json", bytes.NewReader(data))
		if err != nil {
			codes[i] = 0 // connection died mid-request (the crash)
			return
		}
		resp.Body.Close()
		codes[i] = resp.StatusCode
	}
	if !concurrent {
		for i := range reqs {
			post(i)
		}
		return codes
	}
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(i)
		}(i)
	}
	wg.Wait()
	return codes
}

// flushAbandoned pushes a crashed server's buffered WAL tail to its
// file. The battery runs with NoSync for speed, so an abandoned log can
// hold records only in the user-space buffer — but the surviving
// in-process federation models the paper's locally-recovering
// subsystems, and under the force-log discipline (append before
// effect) any effect the federation holds must have its record on
// disk; judging against a shorter log would be judging an impossible
// world. Production servers run with per-append fsync, where the
// buffer is always empty.
func flushAbandoned(s *Server) {
	if _, crashed := s.Crashed(); crashed {
		s.Log().Records()
	}
}

// preCrashBoundary reads the abandoned (or cleanly closed) server
// WAL from disk and returns the CheckRecovered boundary in expanded
// and full coordinates, plus the boundary LSN (the highest LSN in the
// log — stable across later checkpoints and compaction, unlike the
// positional coordinates).
func preCrashBoundary(dir string) (pre, preFull int, lsn int64, err error) {
	fl, err := wal.OpenFile(filepath.Join(dir, "wal.log"), false)
	if err != nil {
		return 0, 0, 0, err
	}
	recs, err := fl.Records()
	fl.Close()
	if err != nil {
		return 0, 0, 0, err
	}
	pre = len(wal.Expand(recs).Records)
	for _, r := range recs {
		if r.Type != wal.RecCheckpoint {
			preFull++
		}
		if r.LSN > lsn {
			lsn = r.LSN
		}
	}
	return pre, preFull, lsn, nil
}

// checkSettled asserts the battery's end-state invariants over a fully
// idle server: every journaled submission is terminal and sealed, the
// accumulated schedule (all incarnations folded by origin) is
// prefix-reducible, and subsystem state equals exactly the committed
// work in the log — nothing lost, nothing doubled across any number of
// crashes and restarts.
func checkSettled(s *Server, crashLSNs []int64) error {
	sts := s.Statuses("", "")
	for _, st := range sts {
		if !st.Final || (st.State != stateCommitted && st.State != stateAborted) {
			return fmt.Errorf("submission %s not terminal: %+v", st.ID, st)
		}
	}
	raw, err := s.Log().Records()
	if err != nil {
		return fmt.Errorf("reading final log: %w", err)
	}
	recs := wal.Expand(raw).Records
	table, err := s.Federation().ConflictTable()
	if err != nil {
		return err
	}
	// The accumulated log spans every crash epoch of the scenario: the
	// LSN boundaries tell the reconstruction which incarnations each
	// crash interrupted (their post-boundary records are recovery's and
	// synthesize the crash abort) while the re-run incarnations past
	// each boundary are ordinary forward work.
	sched, err := fault.ScheduleFromWALEpochs(table, s.Defs(), recs, crashLSNs)
	if err != nil {
		return fmt.Errorf("reconstructing final schedule: %w", err)
	}
	ok, at, _, err := sched.PRED()
	if err != nil {
		return fmt.Errorf("final PRED check: %w", err)
	}
	if !ok {
		return fmt.Errorf("final schedule not prefix-reducible (prefix %d)", at)
	}
	// Exactly-once accounting over the whole history (checkpoint
	// summaries included).
	fed := s.Federation()
	want := make(map[string]int64)
	if exp := wal.Expand(raw); exp.Checkpoint != nil {
		for svc, n := range exp.Checkpoint.AppliedSvc {
			spec, ok := fed.Spec(svc)
			if !ok {
				return fmt.Errorf("checkpoint summarizes unknown service %q", svc)
			}
			delta := n
			if spec.Kind == activity.Compensation {
				delta = -n
			}
			sub, _ := fed.Owner(svc)
			for _, item := range spec.WriteSet {
				want[sub.Name()+"/"+item] += delta
			}
		}
	}
	for _, ev := range sched.Events() {
		if ev.Type != schedule.Invoke {
			continue
		}
		spec, ok := fed.Spec(ev.Service)
		if !ok {
			return fmt.Errorf("final schedule uses unknown service %q", ev.Service)
		}
		delta := int64(1)
		if spec.Kind == activity.Compensation {
			delta = -1
		}
		sub, _ := fed.Owner(ev.Service)
		for _, item := range spec.WriteSet {
			want[sub.Name()+"/"+item] += delta
		}
	}
	got := fed.Snapshot()
	for item, v := range got {
		if v != want[item] {
			return fmt.Errorf("exactly-once: item %s has %d, committed work accounts for %d", item, v, want[item])
		}
	}
	for item, v := range want {
		if v != 0 && got[item] != v {
			return fmt.Errorf("exactly-once: item %s wants %d, subsystem has %d", item, v, got[item])
		}
	}
	return nil
}

// restartAndJudge opens a fresh server over the crashed incarnation's
// directory with the resume set held, runs CheckRecovered at the
// post-recovery point, then releases the resume set. walBudget > 0 arms
// the next crash.
func restartAndJudge(sc Scenario, fed *subsystem.Federation, dir string, pre, preFull, walBudget int, priorLSNs []int64) (*Server, error) {
	srv, err := Open(fed, scenarioConfig(sc, dir, fault.Plan{}, walBudget, true))
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	if err := fault.CheckRecovered(fault.CheckInput{
		Fed: fed, Log: srv.Log(), Defs: srv.Defs(),
		PreCrashRecords: pre, PreCrashFull: preFull,
		Compacted:      sc.CompactOnCheckpoint,
		PriorCrashLSNs: priorLSNs,
	}); err != nil {
		srv.Close()
		return nil, err
	}
	srv.Resume()
	return srv, nil
}

const serveWait = 30 * time.Second

// RunScenario executes one scenario end to end. dir must be an empty
// directory the scenario may fill (the server's data dir). The returned
// error describes the violated invariant; nil means the scenario
// passed.
func RunScenario(sc Scenario, dir string) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("seed %d (%s): %s", sc.Seed, sc.Class, fmt.Sprintf(format, args...))
	}
	fed, reqs, err := serveWorld(sc)
	if err != nil {
		return err
	}
	srv, err := Open(fed, scenarioConfig(sc, dir, sc.Plan, sc.Plan.CrashAfterWALRecords, false))
	if err != nil {
		return fail("open: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return fail("start: %v", err)
	}
	base := "http://" + addr

	codes := submitAll(base, reqs, sc.Overload)
	accepted, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
		}
	}

	switch {
	case sc.DrainCrash:
		// Drain mid-flight; the injected crash fires inside the drain
		// sequence and the call must report it.
		if _, err := srv.Drain(newTimeoutCtx(serveWait)); err == nil {
			return fail("drain crash scenario: Drain returned no error")
		}
		if _, crashed := srv.Crashed(); !crashed {
			return fail("drain crash scenario: server not crashed after drain")
		}
	case sc.Park:
		// Clean mid-flight drain with a tiny deadline: whatever misses
		// it parks in the journal.
		rep, err := srv.Drain(newTimeoutCtx(serveWait))
		if err != nil {
			return fail("park drain: %v", err)
		}
		if rep.Finished+rep.Parked != accepted {
			return fail("park drain lost work: finished %d + parked %d != accepted %d",
				rep.Finished, rep.Parked, accepted)
		}
	default:
		// Crash scenarios: wait until the armed crash fires or the work
		// finishes (a budget can legitimately outlive the run).
		srv.WaitIdle(serveWait)
		if _, crashed := srv.Crashed(); !crashed {
			if _, err := srv.Drain(newTimeoutCtx(serveWait)); err != nil {
				return fail("clean drain: %v", err)
			}
		}
	}
	srv.Close()
	flushAbandoned(srv)

	// Hub-bounce scenarios must actually have bounced: the armed kill
	// fired, the cluster reopened the hub, and the readiness probe is
	// back out of its degraded window.
	reopenLSNs := srv.ReopenBoundaries()
	if sc.FedNodes > 0 && sc.FedHubPoint != "" {
		// hub:dispatch fires on any admitted work, so its kill MUST have
		// been ridden out; decision/resolve points fire only when the
		// batch exercises cross-node 2PC windows (soft, as in the
		// federation hub battery).
		if got := srv.Metrics().Counter(metrics.FedHubReopens); got == 0 && sc.FedHubPoint == fault.PointHubDispatch {
			return fail("armed hub kill at %q never fired (no reopen)", sc.FedHubPoint)
		}
		if srv.hubDegraded.Load() {
			return fail("readiness still degraded after the batch settled")
		}
	}

	// The crash boundary, read from the abandoned WAL. Mid-batch hub
	// reopens are earlier crash epochs of the same history.
	pre, preFull, lsn, err := preCrashBoundary(dir)
	if err != nil {
		return fail("pre-crash boundary: %v", err)
	}
	crashLSNs := append(append([]int64(nil), reopenLSNs...), lsn)

	// Restart over the same directory; judge recovery, then release the
	// resume set.
	srv2, err := restartAndJudge(sc, fed, dir, pre, preFull, sc.RerunBudget, reopenLSNs)
	if err != nil {
		return fail("%v", err)
	}

	// Idempotent retry across the crash: the client whose ack was lost
	// re-submits with the same key and must get the original, not a
	// duplicate.
	if sc.RetryIndex >= 0 && sc.RetryIndex < len(reqs) && codes[sc.RetryIndex] != http.StatusTooManyRequests {
		addr2, err := srv2.Start("127.0.0.1:0")
		if err != nil {
			srv2.Close()
			return fail("restart http: %v", err)
		}
		data, _ := json.Marshal(reqs[sc.RetryIndex])
		resp, err := http.Post("http://"+addr2+"/v1/processes", "application/json", bytes.NewReader(data))
		if err != nil {
			srv2.Close()
			return fail("retry after restart: %v", err)
		}
		var sr SubmitResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			srv2.Close()
			return fail("retry decode: %v", err)
		}
		if resp.StatusCode != http.StatusOK || !sr.Deduped {
			srv2.Close()
			return fail("retry after restart not deduplicated: code %d, %+v", resp.StatusCode, sr)
		}
	}

	srv2.WaitIdle(serveWait)
	final := srv2
	if _, crashed := srv2.Crashed(); crashed {
		// Double crash: the resumed work died too. One more restart must
		// settle everything.
		srv2.Close()
		flushAbandoned(srv2)
		pre2, preFull2, lsn2, err := preCrashBoundary(dir)
		if err != nil {
			return fail("second boundary: %v", err)
		}
		crashLSNs = append(crashLSNs, lsn2)
		srv3, err := restartAndJudge(sc, fed, dir, pre2, preFull2, 0,
			append(append([]int64(nil), reopenLSNs...), lsn))
		if err != nil {
			return fail("second restart: %v", err)
		}
		if !srv3.WaitIdle(serveWait) {
			srv3.Close()
			return fail("third incarnation never settled")
		}
		final = srv3
	} else if sc.RerunBudget > 0 {
		// The second budget never fired — the resume set was smaller
		// than the budget. Fine: the invariants below still apply.
		if !srv2.WaitIdle(serveWait) {
			srv2.Close()
			return fail("second incarnation never settled")
		}
	}

	if _, crashed := final.Crashed(); crashed {
		final.Close()
		return fail("final incarnation crashed unexpectedly at %v", func() string { p, _ := final.Crashed(); return p }())
	}
	if !final.WaitIdle(serveWait) {
		final.Close()
		return fail("final incarnation never went idle")
	}
	// Every admitted submission must be terminal; sealed exactly once;
	// effects exactly once; PRED over the whole accumulated history.
	if err := checkSettled(final, crashLSNs); err != nil {
		final.Close()
		return fail("%v", err)
	}
	// Shed submissions were never admitted: the restarted server must
	// not know them.
	for i, c := range codes {
		if c != http.StatusTooManyRequests {
			continue
		}
		origin := reqs[i].Tenant + "/" + reqs[i].Proc.ID
		if _, ok := final.StatusOf(origin); ok {
			// A 429 whose journal append nonetheless happened would be a
			// double-admission bug — the shed decision precedes the
			// journal write.
			final.Close()
			return fail("shed submission %s known after restart", origin)
		}
	}
	if err := final.Close(); err != nil {
		return fail("final close: %v", err)
	}
	return nil
}

// newTimeoutCtx is context.WithTimeout without the cancel-leak
// boilerplate at call sites (the contexts are short-lived).
func newTimeoutCtx(d time.Duration) timeoutCtx { return timeoutCtx{time.Now().Add(d)} }

// timeoutCtx is a minimal deadline-only context.
type timeoutCtx struct{ deadline time.Time }

func (t timeoutCtx) Deadline() (time.Time, bool) { return t.deadline, true }
func (timeoutCtx) Done() <-chan struct{}         { return nil }
func (timeoutCtx) Err() error                    { return nil }
func (timeoutCtx) Value(any) any                 { return nil }

// Summary aggregates a serve-torture batch.
type Summary struct {
	Scenarios int            `json:"scenarios"`
	Failures  []string       `json:"failures,omitempty"`
	ByClass   map[string]int `json:"byClass"`
}

// RunBattery runs the scenarios of seeds [first, first+n). The progress
// hook (nil ok) fires before each seed — the CLI uses it to print the
// in-flight reproducing seed when interrupted.
func RunBattery(first, n int64, dirFor func(seed int64) string, progress func(seed int64, class string)) Summary {
	sum := Summary{ByClass: make(map[string]int)}
	for seed := first; seed < first+n; seed++ {
		sc := ScenarioFor(seed)
		if progress != nil {
			progress(seed, sc.Class)
		}
		sum.Scenarios++
		sum.ByClass[sc.Class]++
		if err := RunScenario(sc, dirFor(seed)); err != nil {
			sum.Failures = append(sum.Failures, err.Error())
		}
	}
	return sum
}
