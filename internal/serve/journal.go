// The intake journal is the server's durable record of *what was
// admitted*: the WAL records what the engines did, but its records
// carry no process structure, and scheduler.Recover needs the
// definition of every process mentioned in the log. The server
// therefore force-logs each accepted submission (tenant, idempotency
// key, declarative process spec) to an append-only JSONL journal —
// fsynced before the submission is enqueued, so by induction every
// process the WAL can mention is rebuildable after a crash. A second
// entry kind ("done") seals a submission once its fate is final; on
// restart, journaled submissions without a seal and without a
// committed WAL fold are the resume set.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"transproc/internal/spec"
)

// JournalEntry is one line of the intake journal.
type JournalEntry struct {
	Seq    int64  `json:"seq"`
	ID     string `json:"id"` // origin process id ("tenant/name")
	Tenant string `json:"tenant,omitempty"`
	Key    string `json:"key,omitempty"` // idempotency key
	// Proc is set on submission entries.
	Proc *spec.ProcessSpec `json:"proc,omitempty"`
	// Done seals the submission with its final fate.
	Done      bool `json:"done,omitempty"`
	Committed bool `json:"committed,omitempty"`
}

// journal is the append-only intake log. Appends under the mutex are
// written and (for submission entries) fsynced before they return —
// the force-log discipline of the WAL applied to admissions.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	next int64
}

// openJournal opens (creating if absent) the journal and replays its
// valid prefix. A torn tail — a partial or corrupt final line from a
// crash mid-append — is truncated away, mirroring wal.OpenFile.
func openJournal(path string) (*journal, []JournalEntry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var entries []JournalEntry
	var valid int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn or corrupt tail: keep the valid prefix
		}
		entries = append(entries, e)
		valid += int64(len(line)) + 1
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &journal{f: f}
	if n := len(entries); n > 0 {
		j.next = entries[n-1].Seq
	}
	return j, entries, nil
}

// append writes one entry; sync forces it to disk before returning.
// The assigned sequence number is stored into e.
func (j *journal) append(e *JournalEntry, sync bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	j.next++
	e.Seq = j.next
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(e); err != nil {
		return err
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("serve: journal fsync: %w", err)
		}
	}
	return nil
}

// close syncs and closes the file. A crashed server never calls this —
// the file descriptor is abandoned, as a kill -9 would leave it.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
