package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"transproc/internal/spec"
	"transproc/internal/subsystem"
)

// testWorld is a small fixed federation: a compensatable booking, a
// pivot charge and a retriable confirmation across two subsystems.
func testWorld(t *testing.T) *subsystem.Federation {
	t.Helper()
	fed, err := spec.BuildFederation([]spec.SubsystemSpec{
		{Name: "hotel", Seed: 1, Services: []spec.ServiceSpec{
			{Name: "book", Kind: "compensatable", Writes: []string{"rooms"}, Cost: 1},
			{Name: "confirm", Kind: "retriable", Writes: []string{"mail"}, Cost: 1},
		}},
		{Name: "pay", Seed: 2, Services: []spec.ServiceSpec{
			{Name: "charge", Kind: "pivot", Writes: []string{"ledger"}, Cost: 1},
			{Name: "refund", Kind: "retriable", Writes: []string{"ledger"}, Cost: 1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func tripSpec(id string) spec.ProcessSpec {
	return spec.ProcessSpec{
		ID: id,
		Activities: []spec.ActivitySpec{
			{Local: 1, Service: "book"},
			{Local: 2, Service: "charge"},
			{Local: 3, Service: "confirm"},
		},
		Seq: [][2]int{{1, 2}, {2, 3}},
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServeLifecycle drives the full happy path over real HTTP:
// submit, status, list, SSE, drain, restart with nothing to resume.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(testWorld(t), Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := getJSON(t, base+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}

	const n = 6
	for i := 0; i < n; i++ {
		resp, body := postJSON(t, base+"/v1/processes", SubmitRequest{
			Tenant: "acme", Key: fmt.Sprintf("k%d", i), Proc: tripSpec(fmt.Sprintf("trip%d", i)),
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
	}
	// Idempotent retry dedupes.
	resp, body := postJSON(t, base+"/v1/processes", SubmitRequest{
		Tenant: "acme", Key: "k0", Proc: tripSpec("trip0"),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedupe: %d %s", resp.StatusCode, body)
	}
	var dedup SubmitResponse
	if err := json.Unmarshal(body, &dedup); err != nil || !dedup.Deduped {
		t.Fatalf("dedupe response: %s (err %v)", body, err)
	}
	// Same id without a key conflicts.
	if resp, _ := postJSON(t, base+"/v1/processes", SubmitRequest{Tenant: "acme", Proc: tripSpec("trip0")}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: want 409, got %d", resp.StatusCode)
	}
	// Unknown service is a 400.
	bad := tripSpec("badproc")
	bad.Activities[0].Service = "no-such-service"
	if resp, _ := postJSON(t, base+"/v1/processes", SubmitRequest{Tenant: "acme", Proc: bad}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad service: want 400, got %d", resp.StatusCode)
	}

	if !srv.WaitIdle(10 * time.Second) {
		t.Fatal("server never went idle")
	}
	var st Status
	if code := getJSON(t, base+"/v1/processes/acme/trip0", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.State != stateCommitted || !st.Final {
		t.Fatalf("trip0 not committed: %+v", st)
	}

	var list ListResponse
	if code := getJSON(t, base+"/v1/processes?tenant=acme&limit=4", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if list.Total != n || len(list.Items) != 4 || list.NextOffset != 4 {
		t.Fatalf("list page 1: total=%d items=%d next=%d", list.Total, len(list.Items), list.NextOffset)
	}
	var page2 ListResponse
	getJSON(t, base+fmt.Sprintf("/v1/processes?tenant=acme&limit=4&offset=%d", list.NextOffset), &page2)
	if len(page2.Items) != n-4 || page2.NextOffset != 0 {
		t.Fatalf("list page 2: items=%d next=%d", len(page2.Items), page2.NextOffset)
	}

	// SSE stream of a finished process delivers status then done.
	sseResp, err := http.Get(base + "/v1/processes/acme/trip1/events")
	if err != nil {
		t.Fatal(err)
	}
	sseBuf := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	var sse strings.Builder
	for time.Now().Before(deadline) && !strings.Contains(sse.String(), "event: done") {
		n, rerr := sseResp.Body.Read(sseBuf)
		sse.Write(sseBuf[:n])
		if rerr != nil {
			break
		}
	}
	sseResp.Body.Close()
	if !strings.Contains(sse.String(), "event: status") || !strings.Contains(sse.String(), "event: done") {
		t.Fatalf("SSE stream missing events:\n%s", sse.String())
	}

	// Drain closes the WAL; admissions now bounce.
	var rep DrainReport
	respDrain, bodyDrain := postJSON(t, base+"/v1/drain", struct{}{})
	if respDrain.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d %s", respDrain.StatusCode, bodyDrain)
	}
	if err := json.Unmarshal(bodyDrain, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Finished != n || rep.Parked != 0 {
		t.Fatalf("drain report: %+v", rep)
	}

	// Restart on the same directory: everything was sealed, nothing to
	// resume, statuses answered from the journal.
	srv2, err := Open(testWorld(t), Config{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	fresh, reruns := srv2.Resumed()
	if fresh != 0 || reruns != 0 {
		t.Fatalf("clean restart resumed work: fresh=%d reruns=%d", fresh, reruns)
	}
	st2, ok := srv2.StatusOf("acme/trip0")
	if !ok || st2.State != stateCommitted {
		t.Fatalf("restart lost status: %+v (ok=%v)", st2, ok)
	}
}
