// Package serve is the long-running ingestion service over the
// transactional process engines: a dependency-free HTTP/JSON server
// that accepts declarative process specs (internal/spec), executes
// them on the concurrent runtime (or a federation cluster) against one
// durable write-ahead log, and streams per-process status and
// decision-trace events.
//
// Robustness is the design center:
//
//   - Admission control and backpressure: a bounded admission queue
//     sheds load with 429 + Retry-After when the queue or the in-flight
//     window fills; per-tenant namespaces carry deterministic
//     token-bucket rate budgets and retry budgets (tenant.go).
//   - Graceful drain: SIGTERM or POST /v1/drain stops admission, lets
//     in-flight work finish within a deadline (the remainder parks
//     durably in the intake journal), then checkpoints and closes the
//     WAL. /readyz flips unready during drain and overload.
//   - Crash-safe restart: every accepted submission is force-logged to
//     the intake journal before it can reach the WAL (journal.go), so
//     a kill -9 at any point is recoverable: reopening the same data
//     directory replays the journal, runs scheduler.Recover over the
//     WAL (settling in-flight processes backward or forward per
//     Definition 8.2b), and re-admits every non-final submission
//     exactly once — committed work is never re-run, interrupted work
//     is resumed as a fresh incarnation ("id+rN", the engines' own
//     restart notation, so origin resolution and the PRED checker
//     apply unchanged). Duplicate client submissions are absorbed by
//     idempotency keys.
//
// Execution is micro-batched: a runner goroutine drains the admission
// queue into small batches, each run to completion on a fresh runtime
// over the shared federation and WAL. Batches serialize against each
// other, so the accumulated log is one consistent history (LSNs
// continue across batches and restarts) and every 2PC resolves within
// its batch.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"transproc/internal/conflict"
	"transproc/internal/fault"
	"transproc/internal/federation"
	"transproc/internal/metrics"
	"transproc/internal/process"
	"transproc/internal/runtime"
	"transproc/internal/scheduler"
	"transproc/internal/scheduler/policy"
	"transproc/internal/spec"
	"transproc/internal/subsystem"
	"transproc/internal/wal"
)

// Config parameterizes a Server. The zero value of optional fields
// picks serviceable defaults; Dir is required.
type Config struct {
	// Dir is the data directory: wal.log + intake.journal.
	Dir string
	// Mode is the scheduling policy (default PRED).
	Mode scheduler.Mode
	// Workers caps concurrently admitted processes inside a batch
	// (0 = unlimited).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// shed with 429 (default 64).
	QueueDepth int
	// BatchMax is the in-flight window: the maximum submissions per
	// runner micro-batch (default 8).
	BatchMax int
	// BatchWait is how long the runner waits to fill a batch after the
	// first submission arrives (default 2ms).
	BatchWait time.Duration
	// Tick is the real duration of one virtual cost unit of service
	// time inside the engines (0 = no sleeping). Load tests use it to
	// hold the in-flight window busy.
	Tick time.Duration
	// MaxRestarts bounds engine-level restarts per process (default 8).
	MaxRestarts int
	// DrainTimeout bounds how long Drain waits for in-flight work
	// before parking the rest (default 10s).
	DrainTimeout time.Duration
	// NoSync disables the per-append WAL fsync (batteries use it for
	// speed; production keeps the force-log discipline).
	NoSync bool
	// CheckpointEvery takes a fuzzy WAL checkpoint after that many
	// engine force-log appends (0 disables); CompactOnCheckpoint
	// rewrites the log as checkpoint + tail afterwards.
	CheckpointEvery     int
	CompactOnCheckpoint bool
	// GroupCommit batches WAL appends (wal.GroupAppender) when
	// MaxBatch > 0.
	GroupCommit wal.GroupCommit
	// Tenant bounds each tenant namespace.
	Tenant TenantConfig
	// Metrics is the observability registry (default: a fresh one).
	Metrics *metrics.Registry
	// Inject is the crash-point hook (internal/fault); nil is a no-op.
	// The server fires serve:admit / serve:ack / serve:drain and hands
	// the hook to the engines for their own points.
	Inject func(point string)
	// WrapLog, when set, wraps the engine-visible WAL (the fault
	// batteries install record-budget crash wrappers here). Recovery
	// and checkpointing always use the raw file log.
	WrapLog func(wal.Log) wal.Log
	// Now is the clock for tenant buckets (default time.Now) —
	// injectable for deterministic battery runs.
	Now func() time.Time
	// HoldResume keeps restart-resumed submissions parked until Resume
	// is called. Batteries use it to judge the post-recovery state
	// (CheckRecovered's invariants speak about recovery's log tail)
	// before the resumed work starts appending records of its own.
	HoldResume bool
	// FedNodes > 0 routes batches through a federation cluster of that
	// many scheduler nodes instead of the in-process runtime; the
	// stitched per-node WALs are appended to the server log after each
	// batch as an audit copy (weaker mid-batch crash-safety: the
	// journal, not the server WAL, is what restarts resume from).
	FedNodes int
	// FedLeaseTTL / FedHeartbeat enable lease-based membership inside
	// the federation cluster (zero = disabled): a silent node's lease
	// expires and its safe orphans re-home to survivors mid-batch.
	FedLeaseTTL  time.Duration
	FedHeartbeat time.Duration
	// FedHubKillPoint arms a hub-side crash point (hub:dispatch,
	// hub:decision, hub:resolve) on the FIRST federated batch only —
	// the hub dies kill -9 style mid-batch and the cluster reopens it
	// from the stitched WALs plus its journal while /readyz reports
	// degraded. Battery use.
	FedHubKillPoint string
	FedHubKillCount int
}

// submission states.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateCommitted = "committed"
	stateAborted   = "aborted"
)

// submission is one admitted process, guarded by Server.mu.
type submission struct {
	id        string // origin id "tenant/name"
	tenant    string
	key       string
	seq       int64
	ps        spec.ProcessSpec
	runID     string // job id of the current/last attempt (origin or origin+rN)
	state     string
	final     bool // sealed in the journal
	restarts  int
	recovered bool // settled or resumed by restart recovery
	resumed   bool
	version   int64
	errMsg    string
}

// Status is the externally visible state of one submission.
type Status struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	Proc      string `json:"proc"`
	State     string `json:"state"`
	Committed bool   `json:"committed"`
	Final     bool   `json:"final"`
	Restarts  int    `json:"restarts,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`
	Resumed   bool   `json:"resumed,omitempty"`
	Seq       int64  `json:"seq"`
	RunID     string `json:"runId,omitempty"`
	Error     string `json:"error,omitempty"`
}

// DrainReport summarizes a completed drain.
type DrainReport struct {
	Finished int           `json:"finished"` // submissions terminal at drain end
	Parked   int           `json:"parked"`   // journaled but still queued (resume on restart)
	Elapsed  time.Duration `json:"elapsed"`
}

// Server is one ingestion service instance over a fixed federation.
type Server struct {
	cfg   Config
	fed   *subsystem.Federation
	reg   *metrics.Registry
	log   *wal.FileLog
	view  wal.Log // engine-visible log (possibly wrapped)
	jr    *journal
	table *conflict.Table
	tn    *tenants

	mu       sync.Mutex
	subs     map[string]*submission // by origin id
	order    []string               // origin ids in admission order
	byKey    map[string]string      // tenant+"\x00"+key -> origin id
	defs     map[string]*process.Process
	reserved int           // admitted but not yet enqueued (queue slots spoken for)
	held     []*submission // resume set parked by Config.HoldResume

	queue chan *submission
	// pending counts submissions from enqueue until their fate is
	// sealed. Counting at the enqueue side (not in the runner) leaves
	// no window where dequeued-but-unsealed work looks idle.
	pending atomic.Int64

	draining    atomic.Bool
	crashed     atomic.Bool
	closed      atomic.Bool
	hubDegraded atomic.Bool  // federation hub unreachable (reopen in progress)
	hubKillUsed atomic.Bool  // FedHubKillPoint armed once already
	crashPt     atomic.Value // string
	stopOnce    sync.Once
	stopCh      chan struct{}
	drainMu     sync.Mutex

	runnerWG sync.WaitGroup
	httpSrv  *http.Server
	httpLn   net.Listener

	report  *scheduler.RecoveryReport
	resumed int
	reruns  int

	// reopenLSNs are the server-log LSN boundaries of federation hub
	// reopens ridden through by this incarnation's batches (guarded by
	// mu; see ReopenBoundaries).
	reopenLSNs []int64
}

// Open creates or reopens a server over the federation and data
// directory. Reopening a directory left by a crash runs full restart
// recovery before the server accepts traffic: journal replay →
// scheduler.Recover over the WAL → re-admission of every non-final
// submission (fresh if it never reached the WAL, as a new incarnation
// otherwise, gated by the tenant's retry budget).
func Open(fed *subsystem.Federation, cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 8
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 2 * time.Millisecond
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 8
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	jr, entries, err := openJournal(filepath.Join(cfg.Dir, "intake.journal"))
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenFile(filepath.Join(cfg.Dir, "wal.log"), !cfg.NoSync)
	if err != nil {
		jr.close()
		return nil, err
	}
	log.SetMetrics(cfg.Metrics)
	table, err := fed.ConflictTable()
	if err != nil {
		jr.close()
		log.Close()
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		fed:    fed,
		reg:    cfg.Metrics,
		log:    log,
		jr:     jr,
		table:  table,
		tn:     newTenants(cfg.Tenant, cfg.Now),
		subs:   make(map[string]*submission),
		byKey:  make(map[string]string),
		defs:   make(map[string]*process.Process),
		stopCh: make(chan struct{}),
	}
	s.view = wal.Log(log)
	if cfg.WrapLog != nil {
		s.view = cfg.WrapLog(log)
	}
	pending, err := s.restore(entries)
	if err != nil {
		jr.close()
		log.Close()
		return nil, err
	}
	s.queue = make(chan *submission, cfg.QueueDepth+len(pending))
	for _, sub := range pending {
		sub.state = stateQueued
	}
	if cfg.HoldResume {
		s.held = pending
	} else {
		s.pending.Add(int64(len(pending)))
		for _, sub := range pending {
			s.queue <- sub
		}
	}
	s.runnerWG.Add(1)
	go s.runner()
	return s, nil
}

// Resume releases submissions held back by Config.HoldResume into the
// admission queue.
func (s *Server) Resume() {
	s.mu.Lock()
	held := s.held
	s.held = nil
	s.mu.Unlock()
	s.pending.Add(int64(len(held)))
	for _, sub := range held {
		s.queue <- sub
	}
}

// restore rebuilds in-memory state from the intake journal and the
// WAL, running crash recovery when the log is non-empty. It returns
// the resume set in admission order.
func (s *Server) restore(entries []JournalEntry) ([]*submission, error) {
	sealed := make(map[string]JournalEntry)
	for _, e := range entries {
		if e.Done {
			sealed[e.ID] = e
			continue
		}
		if _, dup := s.subs[e.ID]; dup {
			continue // idempotent journal replay
		}
		ps := *e.Proc
		ps.ID = e.ID
		def, err := spec.BuildProcess(s.fed, ps)
		if err != nil {
			return nil, fmt.Errorf("serve: journaled process %s no longer builds: %w", e.ID, err)
		}
		sub := &submission{id: e.ID, tenant: e.Tenant, key: e.Key, seq: e.Seq, ps: *e.Proc, runID: e.ID, state: stateQueued}
		s.subs[e.ID] = sub
		s.order = append(s.order, e.ID)
		s.defs[e.ID] = def
		if e.Key != "" {
			s.byKey[e.Tenant+"\x00"+e.Key] = e.ID
		}
	}
	recs, err := s.log.Records()
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		report, err := scheduler.RecoverWithMetrics(s.fed, s.log, s.defsList(), s.reg)
		if err != nil {
			return nil, fmt.Errorf("serve: restart recovery: %w", err)
		}
		s.report = report
		if recs, err = s.log.Records(); err != nil {
			return nil, err
		}
	}
	folded := map[string]fold{}
	if exp := wal.Expand(recs); len(exp.Records) > 0 {
		images, err := wal.Analyze(exp.Records)
		if err != nil {
			return nil, fmt.Errorf("serve: analyze restored log: %w", err)
		}
		folded = foldImages(images)
	}
	var pending []*submission
	for _, id := range s.order {
		sub := s.subs[id]
		if e, ok := sealed[id]; ok {
			sub.final = true
			sub.state = stateAborted
			if e.Committed {
				sub.state = stateCommitted
			}
			continue
		}
		f := folded[id]
		switch {
		case f.committed:
			// Terminal in the WAL but the seal was lost to the crash:
			// seal it now, never re-run committed work.
			sub.state = stateCommitted
			sub.recovered = true
			s.seal(sub, true)
		case f.incarnations == 0:
			// Journaled but never reached the WAL: parked by a drain or
			// lost mid-admission — resume as-is, exactly once.
			sub.resumed = true
			s.resumed++
			s.reg.Inc(metrics.ServeResumed)
			pending = append(pending, sub)
		default:
			// Crash-interrupted (settled backward by recovery) or
			// aborted without a seal (the batch never finished): re-run
			// once as a fresh incarnation, if the tenant budget allows.
			sub.recovered = true
			sub.restarts = f.incarnations - 1
			if s.tn.takeRetry(sub.tenant) {
				sub.runID = fmt.Sprintf("%s+r%d", id, f.maxSuffix+1)
				sub.resumed = true
				s.reruns++
				s.reg.Inc(metrics.ServeReruns)
				pending = append(pending, sub)
			} else {
				sub.state = stateAborted
				sub.errMsg = "retry budget exhausted after restart"
				s.seal(sub, false)
			}
		}
	}
	return pending, nil
}

// fold is the per-origin digest of WAL incarnations.
type fold struct {
	committed    bool
	incarnations int
	maxSuffix    int // highest +rN suffix seen (engine or server assigned)
}

// foldImages folds per-incarnation WAL images by origin: an origin
// committed iff any of its incarnations did (the differential
// battery's folding rule).
func foldImages(images map[string]*wal.ProcImage) map[string]fold {
	out := make(map[string]fold)
	for id, img := range images {
		origin := id
		suffix := 0
		if i := strings.IndexByte(id, '+'); i >= 0 {
			origin = id[:i]
			rest := strings.TrimPrefix(id[i+1:], "r")
			if j := strings.IndexByte(rest, '+'); j >= 0 {
				rest = rest[:j]
			}
			if n, err := strconv.Atoi(rest); err == nil {
				suffix = n
			}
		}
		f := out[origin]
		f.incarnations++
		if img.Terminated && img.TerminatedCommitted {
			f.committed = true
		}
		if suffix > f.maxSuffix {
			f.maxSuffix = suffix
		}
		out[origin] = f
	}
	return out
}

// seal writes the submission's final fate to the journal.
func (s *Server) seal(sub *submission, committed bool) {
	sub.final = true
	sub.version++
	if err := s.jr.append(&JournalEntry{ID: sub.id, Tenant: sub.tenant, Done: true, Committed: committed}, true); err != nil && !s.crashed.Load() {
		s.crashNow("journal:" + err.Error())
	}
}

func (s *Server) defsList() []*process.Process {
	out := make([]*process.Process, 0, len(s.defs))
	for _, id := range s.order {
		out = append(out, s.defs[id])
	}
	return out
}

// inject fires a named crash point through the configured hook.
func (s *Server) inject(point string) {
	if s.cfg.Inject != nil {
		s.cfg.Inject(point)
	}
}

// crashNow simulates the kill -9: admission and the runner stop, the
// HTTP listener dies, and the WAL and journal are abandoned un-closed
// exactly as the OS would leave them.
func (s *Server) crashNow(point string) {
	s.crashPt.CompareAndSwap(nil, point)
	s.crashed.Store(true)
	s.stopOnce.Do(func() { close(s.stopCh) })
	if srv := s.httpSrv; srv != nil {
		go srv.Close()
	}
}

// protect converts an escaped crash sentinel into server death.
func (s *Server) protect(f func()) (crashed bool) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		c, ok := fault.AsCrash(v)
		if !ok {
			panic(v)
		}
		s.crashNow(c.Point)
		crashed = true
	}()
	f()
	return false
}

// runner is the micro-batch execution loop.
func (s *Server) runner() {
	defer s.runnerWG.Done()
	for {
		var first *submission
		select {
		case first = <-s.queue:
		case <-s.stopCh:
			return
		}
		batch := []*submission{first}
		timer := time.NewTimer(s.cfg.BatchWait)
	fill:
		for len(batch) < s.cfg.BatchMax {
			select {
			case sub := <-s.queue:
				batch = append(batch, sub)
			case <-timer.C:
				break fill
			case <-s.stopCh:
				timer.Stop()
				return
			}
		}
		timer.Stop()
		s.runBatch(batch)
		if s.crashed.Load() {
			return
		}
	}
}

// runBatch executes one micro-batch to completion on a fresh engine
// over the shared federation and WAL, then folds outcomes, debits
// tenant retry budgets and seals fates in the journal.
func (s *Server) runBatch(batch []*submission) {
	s.reg.Inc(metrics.ServeBatches)
	s.reg.Observe(metrics.HistServeBatch, int64(len(batch)))
	jobs := make([]scheduler.Job, len(batch))
	s.mu.Lock()
	for i, sub := range batch {
		sub.state = stateRunning
		sub.version++
		def := s.defs[sub.id]
		if sub.runID != sub.id {
			def = def.WithID(process.ID(sub.runID))
		}
		jobs[i] = scheduler.Job{Proc: def, Arrival: int64(i)}
	}
	s.mu.Unlock()

	outcomes, err := s.execute(jobs)
	if err != nil {
		if errors.Is(err, scheduler.ErrCrashed) {
			s.crashNow(fmt.Sprintf("engine: %v", err))
			return
		}
		s.crashNow(fmt.Sprintf("batch: %v", err))
		return
	}

	folded := make(map[string]struct {
		committed bool
		restarts  int
	})
	for id, o := range outcomes {
		origin := string(id)
		if i := strings.IndexByte(origin, '+'); i >= 0 {
			origin = origin[:i]
		}
		f := folded[origin]
		if o.Committed {
			f.committed = true
		}
		f.restarts += o.Restarts
		folded[origin] = f
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range batch {
		f := folded[sub.id]
		s.tn.debitRestarts(sub.tenant, f.restarts)
		sub.restarts += f.restarts
		if f.committed {
			sub.state = stateCommitted
		} else {
			sub.state = stateAborted
		}
		s.seal(sub, f.committed)
	}
	// Sealed under the lock: idle() can't observe the drop before the
	// terminal states are visible.
	s.pending.Add(-int64(len(batch)))
}

// execute runs one batch on the configured engine flavor.
func (s *Server) execute(jobs []scheduler.Job) (map[process.ID]*scheduler.Outcome, error) {
	if s.cfg.FedNodes > 0 {
		return s.executeFed(jobs)
	}
	rt, err := runtime.New(s.fed, runtime.Config{
		Mode:                s.cfg.Mode,
		Log:                 s.view,
		Workers:             s.cfg.Workers,
		Tick:                s.cfg.Tick,
		MaxRestarts:         s.cfg.MaxRestarts,
		Metrics:             s.reg,
		Inject:              s.cfg.Inject,
		CheckpointEvery:     s.cfg.CheckpointEvery,
		CompactOnCheckpoint: s.cfg.CompactOnCheckpoint,
		GroupCommit:         s.cfg.GroupCommit,
	})
	if err != nil {
		return nil, err
	}
	res, err := rt.Run(context.Background(), jobs)
	if res == nil {
		return nil, err
	}
	return res.Outcomes, err
}

// executeFed routes the batch through a federation cluster; the
// stitched per-node WALs are appended to the server log afterwards as
// an audit copy.
func (s *Server) executeFed(jobs []scheduler.Job) (map[process.ID]*scheduler.Outcome, error) {
	defs := make([]*process.Process, len(jobs))
	for i, j := range jobs {
		defs[i] = j.Proc
	}
	mode := policy.PRED
	if s.cfg.Mode == scheduler.PREDCascade {
		mode = policy.PREDCascade
	}
	var bmu sync.Mutex
	var boundStamps []int64 // first re-stamped tail stamp per hub reopen
	fcfg := federation.Config{
		Nodes: s.cfg.FedNodes, Mode: mode, MaxRestarts: s.cfg.MaxRestarts, Metrics: s.reg,
		LeaseTTL: s.cfg.FedLeaseTTL, HeartbeatEvery: s.cfg.FedHeartbeat,
		OnHubDown: func() { s.hubDegraded.Store(true) },
		OnHubUp:   func() { s.hubDegraded.Store(false) },
		// A mid-batch hub reopen is judged at its boundary: the stitched
		// history plus the reopen's recovery tail must satisfy the same
		// invariants a single-node crash recovery is held to.
		OnReopen: func(rep *federation.ReopenReport) error {
			bmu.Lock()
			if len(rep.Tail) > 0 {
				boundStamps = append(boundStamps, rep.Tail[0].Stamp)
			}
			bmu.Unlock()
			return fault.CheckRecovered(fault.CheckInput{
				Fed: s.fed, Log: rep.Log, Defs: defs,
				PreCrashRecords: rep.Pre, PreCrashFull: rep.Pre,
			})
		},
	}
	if s.cfg.FedHubKillPoint != "" && s.hubKillUsed.CompareAndSwap(false, true) {
		fcfg.HubKill = federation.CrashSpec{Point: s.cfg.FedHubKillPoint, Count: s.cfg.FedHubKillCount}
	}
	c, err := federation.NewCluster(s.fed, defs, fcfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res := c.Run()
	if res.HubErr != nil {
		return nil, fmt.Errorf("hub reopen: %w", res.HubErr)
	}
	for i, nerr := range res.NodeErrs {
		if nerr != nil {
			return nil, fmt.Errorf("node %d: %w", i, nerr)
		}
	}
	recs, err := c.Stitched()
	if err != nil {
		return nil, err
	}
	// While copying the stitched batch history into the server log,
	// translate each reopen's stamp boundary into a server-log LSN (the
	// last record stamped before the reopen's re-stamped recovery tail).
	// The end-state judges need these: recovery-tail records replay in
	// recovering mode, not as ordinary forward work.
	bmu.Lock()
	bounds := append([]int64(nil), boundStamps...)
	bmu.Unlock()
	boundLSNs := make([]int64, len(bounds))
	for _, rec := range recs {
		if rec.Type == wal.RecCheckpoint {
			continue
		}
		lsn, err := s.log.Append(rec)
		if err != nil {
			return nil, err
		}
		for i, b := range bounds {
			if rec.Stamp < b {
				boundLSNs[i] = lsn
			}
		}
	}
	s.mu.Lock()
	s.reopenLSNs = append(s.reopenLSNs, boundLSNs...)
	s.mu.Unlock()
	return res.Outcomes, nil
}

// ReopenBoundaries returns the server-log LSN boundary of every
// federation hub reopen its batches rode through, in occurrence order —
// the crash-epoch boundaries the battery judges feed to
// fault.ScheduleFromWALEpochs / CheckRecovered.
func (s *Server) ReopenBoundaries() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.reopenLSNs...)
}

// idle reports whether no work is queued or running.
func (s *Server) idle() bool {
	if s.pending.Load() > 0 || len(s.queue) > 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved > 0 || len(s.held) > 0 {
		return false
	}
	for _, sub := range s.subs {
		if sub.state == stateRunning {
			return false
		}
	}
	return true
}

// WaitIdle blocks until all admitted work is terminal (or the timeout
// elapses), returning whether idleness was reached. Crash counts as
// idle: there is nothing left to wait for.
func (s *Server) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.crashed.Load() {
			return true
		}
		if s.idle() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// Drain performs the graceful shutdown sequence: stop admission, wait
// for in-flight work up to the deadline (the remainder stays parked in
// the journal), fire the serve:drain crash point, checkpoint and close
// the WAL and journal.
func (s *Server) Drain(ctx context.Context) (*DrainReport, error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.closed.Load() {
		return nil, fmt.Errorf("serve: already closed")
	}
	if s.crashed.Load() {
		return nil, fmt.Errorf("serve: crashed at %v", s.crashPt.Load())
	}
	start := time.Now()
	s.draining.Store(true)
	deadline := start.Add(s.cfg.DrainTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for time.Now().Before(deadline) && !s.crashed.Load() {
		if s.idle() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.runnerWG.Wait()
	if s.crashed.Load() {
		return nil, fmt.Errorf("serve: crashed during drain at %v", s.crashPt.Load())
	}
	if s.protect(func() { s.inject(fault.PointServeDrain) }) {
		return nil, fmt.Errorf("serve: crashed during drain at %v", s.crashPt.Load())
	}
	if recs, err := s.log.Records(); err == nil && len(recs) > 0 {
		if _, err := wal.TakeCheckpoint(s.log, s.table.Conflicts, nil, s.reg); err != nil {
			return nil, fmt.Errorf("serve: drain checkpoint: %w", err)
		}
	}
	if err := s.log.Close(); err != nil {
		return nil, err
	}
	if err := s.jr.close(); err != nil {
		return nil, err
	}
	s.closed.Store(true)
	s.reg.Inc(metrics.ServeDrains)
	rep := &DrainReport{Elapsed: time.Since(start)}
	s.mu.Lock()
	for _, sub := range s.subs {
		switch {
		case sub.final:
			rep.Finished++
		case sub.state == stateQueued:
			rep.Parked++
		}
	}
	s.mu.Unlock()
	if srv := s.httpSrv; srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}
	return rep, nil
}

// Close drains (with the configured timeout) unless the server already
// stopped; a crashed server's files stay abandoned.
func (s *Server) Close() error {
	if s.closed.Load() || s.crashed.Load() {
		s.stopOnce.Do(func() { close(s.stopCh) })
		s.runnerWG.Wait()
		if srv := s.httpSrv; srv != nil {
			srv.Close()
		}
		return nil
	}
	_, err := s.Drain(context.Background())
	return err
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves the HTTP API in a background goroutine, returning the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && !s.crashed.Load() {
			fmt.Fprintf(os.Stderr, "serve: http: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Accessors for batteries, tests and the CLI.

// Crashed reports whether an injected crash (or fatal internal error)
// killed the server, and at which point.
func (s *Server) Crashed() (string, bool) {
	if !s.crashed.Load() {
		return "", false
	}
	pt, _ := s.crashPt.Load().(string)
	return pt, true
}

// RecoveryReport returns the restart recovery report (nil on a fresh
// directory).
func (s *Server) RecoveryReport() *scheduler.RecoveryReport { return s.report }

// Resumed returns how many submissions restart re-admitted: parked
// ones resumed verbatim and crash-interrupted ones re-run as new
// incarnations.
func (s *Server) Resumed() (fresh, reruns int) { return s.resumed, s.reruns }

// Log exposes the raw file-backed WAL (battery judging).
func (s *Server) Log() wal.Log { return s.log }

// Federation exposes the surviving subsystem state (battery judging).
func (s *Server) Federation() *subsystem.Federation { return s.fed }

// Defs returns the process definitions of every journaled submission,
// in admission order (battery judging).
func (s *Server) Defs() []*process.Process {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.defsList()
}

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// StatusOf returns one submission's status.
func (s *Server) StatusOf(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.subs[id]
	if !ok {
		return Status{}, false
	}
	return sub.status(), true
}

func (sub *submission) status() Status {
	name := sub.id
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return Status{
		ID: sub.id, Tenant: sub.tenant, Proc: name,
		State: sub.state, Committed: sub.state == stateCommitted,
		Final: sub.final, Restarts: sub.restarts,
		Recovered: sub.recovered, Resumed: sub.resumed,
		Seq: sub.seq, RunID: sub.runID, Error: sub.errMsg,
	}
}

// Statuses returns every submission's status in admission order,
// optionally filtered by tenant and state.
func (s *Server) Statuses(tenant, state string) []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		sub := s.subs[id]
		if tenant != "" && sub.tenant != tenant {
			continue
		}
		if state != "" && sub.state != state {
			continue
		}
		out = append(out, sub.status())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
