package serve

import (
	"fmt"
	"net/http"
	"testing"

	"transproc/internal/fault"
	"transproc/internal/scheduler"
)

// TestRestartResumeDifferential is the restart-resume differential: a
// server killed at a seeded crash point and restarted must settle every
// admitted submission to the same per-origin outcome as an identical
// server that was never interrupted. Transient noise is zeroed so
// outcomes are a pure function of the world (its deterministic
// permanent-failure rules), which makes outcome equality a hard
// invariant rather than a statistical one. The crash run's accumulated
// history must also pass the settled-state invariants (PRED,
// exactly-once effects) — both properties hold under -race.
func TestRestartResumeDifferential(t *testing.T) {
	// Crash classes only (admit-crash, ack-crash, wal-budget,
	// engine-point, group-fsync, double-crash): overload sheds a
	// timing-dependent subset, drains park rather than kill, and
	// fed-hub-bounce kills a different process than the one being
	// differenced, so none of those compare 1:1 against an
	// uninterrupted run.
	seeds := []int64{0, 1, 3, 4, 5, 8, 10, 13, 14, 15, 18, 21}
	if testing.Short() {
		seeds = seeds[:6]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDifferential(t, seed)
		})
	}
}

func runDifferential(t *testing.T, seed int64) {
	sc := ScenarioFor(seed)
	// Plain PRED only: under PREDCascade a permanent failer's retries
	// cascade-abort conflicting neighbors, so their final outcome
	// depends on how the work happened to be batched — not a
	// world-determined quantity the differential can compare.
	sc.Mode = scheduler.PRED
	prof := serveProfile(sc)
	prof.TransientFailureProb = 0

	// Baseline: the same world, never interrupted.
	fedA, reqs, err := serveWorldFrom(sc, prof)
	if err != nil {
		t.Fatal(err)
	}
	dirA := t.TempDir()
	srvA, err := Open(fedA, scenarioConfig(sc, dirA, fault.Plan{}, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range submitAll("http://"+addrA, reqs, false) {
		if c != http.StatusAccepted {
			t.Fatalf("baseline submit %d: %d", i, c)
		}
	}
	if !srvA.WaitIdle(serveWait) {
		t.Fatal("baseline never idle")
	}
	if pt, crashed := srvA.Crashed(); crashed {
		t.Fatalf("baseline crashed at %v", pt)
	}
	want := make(map[string]bool)
	for _, st := range srvA.Statuses("", "") {
		if !st.Final {
			t.Fatalf("baseline %s not final: %+v", st.ID, st)
		}
		want[st.ID] = st.Committed
	}
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash run: identical world, killed at the scenario's seeded crash
	// point, restarted until settled.
	fedB, reqsB, err := serveWorldFrom(sc, prof)
	if err != nil {
		t.Fatal(err)
	}
	dirB := t.TempDir()
	srv, err := Open(fedB, scenarioConfig(sc, dirB, sc.Plan, sc.Plan.CrashAfterWALRecords, false))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	submitAll("http://"+addr, reqsB, false)
	srv.WaitIdle(serveWait)
	if _, crashed := srv.Crashed(); !crashed {
		// The seeded budget outlived the run; the differential still
		// holds (restart over a cleanly drained directory).
		if _, err := srv.Drain(newTimeoutCtx(serveWait)); err != nil {
			t.Fatalf("clean drain: %v", err)
		}
	}
	srv.Close()
	flushAbandoned(srv)

	var crashLSNs []int64
	if _, _, lsn, err := preCrashBoundary(dirB); err == nil {
		crashLSNs = append(crashLSNs, lsn)
	}
	var final *Server
	for attempt := 0; attempt < 4; attempt++ {
		rs, err := Open(fedB, scenarioConfig(sc, dirB, fault.Plan{}, 0, false))
		if err != nil {
			t.Fatalf("restart %d: %v", attempt, err)
		}
		if !rs.WaitIdle(serveWait) {
			rs.Close()
			t.Fatalf("restart %d never settled", attempt)
		}
		if _, crashed := rs.Crashed(); crashed {
			rs.Close()
			flushAbandoned(rs)
			if _, _, lsn, err := preCrashBoundary(dirB); err == nil {
				crashLSNs = append(crashLSNs, lsn)
			}
			continue
		}
		final = rs
		break
	}
	if final == nil {
		t.Fatal("crash run never settled within the restart budget")
	}
	defer final.Close()

	// Per-origin outcome equality over every submission the crash run
	// admitted (a kill mid-request may legitimately lose later ones).
	sts := final.Statuses("", "")
	if len(sts) == 0 {
		t.Fatal("crash run admitted nothing")
	}
	for _, st := range sts {
		if !st.Final {
			t.Fatalf("crash run %s not final: %+v", st.ID, st)
		}
		wantCommitted, ok := want[st.ID]
		if !ok {
			t.Fatalf("crash run admitted %s, baseline did not", st.ID)
		}
		if st.Committed != wantCommitted {
			t.Errorf("seed %d: origin %s: crash run committed=%v, uninterrupted run committed=%v",
				seed, st.ID, st.Committed, wantCommitted)
		}
	}
	// The crash run's accumulated history passes the settled-state
	// invariants: PRED and exactly-once effects across the crash.
	if err := checkSettled(final, crashLSNs); err != nil {
		t.Errorf("seed %d: %v", seed, err)
	}
}
