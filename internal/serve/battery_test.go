package serve

import (
	"fmt"
	"testing"
)

// TestServeBattery sweeps the first seeds of the serve torture battery:
// every class several times. The nightly run covers 200 seeds via
// tpsim serve-torture.
func TestServeBattery(t *testing.T) {
	n := int64(2 * serveClasses)
	if testing.Short() {
		n = serveClasses
	}
	sum := RunBattery(1, n, func(seed int64) string {
		return t.TempDir()
	}, nil)
	for _, f := range sum.Failures {
		t.Error(f)
	}
	if sum.Scenarios != int(n) {
		t.Fatalf("ran %d scenarios, want %d", sum.Scenarios, n)
	}
}

// TestServeScenarioClasses pins the class cycle so a reported seed
// reproduces the same scenario forever.
func TestServeScenarioClasses(t *testing.T) {
	want := map[int64]string{
		0: "admit-crash", 1: "ack-crash", 2: "drain-crash", 3: "wal-budget",
		4: "engine-point", 5: "group-fsync", 6: "overload", 7: "drain-park",
		8: "double-crash", 9: "fed-hub-bounce",
	}
	for seed, class := range want {
		if sc := ScenarioFor(seed); sc.Class != class {
			t.Errorf("seed %d: class %s, want %s", seed, sc.Class, class)
		}
		// Purity: the same seed derives the same scenario.
		a, b := ScenarioFor(seed+100), ScenarioFor(seed+100)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("seed %d: ScenarioFor not pure", seed+100)
		}
	}
}
