// Per-tenant budgets: a token-bucket rate limit on admissions and a
// retry budget consumed by restarts, mirroring the bounded-retry
// semantics of the resilience layer (internal/chaos) at the ingestion
// boundary. Both are deterministic given the injected clock, so
// batteries can drive them with a virtual clock and assert exact shed
// decisions.
package serve

import (
	"math"
	"sync"
	"time"
)

// TenantConfig bounds one tenant namespace. The zero value disables
// rate limiting and grants the default retry budget.
type TenantConfig struct {
	// Rate is the sustained admission rate in submissions per second
	// (token-bucket refill). 0 disables rate limiting.
	Rate float64
	// Burst is the bucket capacity (defaults to 8 when Rate > 0).
	Burst int
	// RetryBudget bounds restarts charged to the tenant: engine
	// restarts of its processes plus post-crash re-runs. When
	// exhausted, crash-interrupted work settles as aborted instead of
	// being re-run. 0 means the default of 64.
	RetryBudget int
}

const defaultRetryBudget = 64

// tenantState is one tenant's live budget state, guarded by tenants.mu.
type tenantState struct {
	tokens      float64
	last        time.Time
	retriesUsed int
}

// tenants tracks every namespace seen by the server.
type tenants struct {
	mu  sync.Mutex
	cfg TenantConfig
	now func() time.Time
	m   map[string]*tenantState
}

func newTenants(cfg TenantConfig, now func() time.Time) *tenants {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = 8
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = defaultRetryBudget
	}
	return &tenants{cfg: cfg, now: now, m: make(map[string]*tenantState)}
}

func (t *tenants) state(name string) *tenantState {
	st := t.m[name]
	if st == nil {
		st = &tenantState{tokens: float64(t.cfg.Burst), last: t.now()}
		t.m[name] = st
	}
	return st
}

// admit consumes one token, or reports how long until one refills.
func (t *tenants) admit(name string) (bool, time.Duration) {
	if t.cfg.Rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(name)
	now := t.now()
	if dt := now.Sub(st.last).Seconds(); dt > 0 {
		st.tokens = math.Min(float64(t.cfg.Burst), st.tokens+dt*t.cfg.Rate)
		st.last = now
	}
	if st.tokens >= 1 {
		st.tokens--
		return true, 0
	}
	wait := time.Duration((1 - st.tokens) / t.cfg.Rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// takeRetry reserves one re-run from the tenant's retry budget.
func (t *tenants) takeRetry(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(name)
	if st.retriesUsed >= t.cfg.RetryBudget {
		return false
	}
	st.retriesUsed++
	return true
}

// debitRestarts charges engine-level restarts to the tenant (clamped
// at the budget; exhaustion then gates future re-runs, not live work).
func (t *tenants) debitRestarts(name string, n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(name)
	st.retriesUsed += n
	if st.retriesUsed > t.cfg.RetryBudget {
		st.retriesUsed = t.cfg.RetryBudget
	}
}

// TenantStatus is the externally visible budget state.
type TenantStatus struct {
	Tokens      float64 `json:"tokens"`
	RetriesUsed int     `json:"retriesUsed"`
	RetryBudget int     `json:"retryBudget"`
}

// snapshot reports every tenant's budget state.
func (t *tenants) snapshot() map[string]TenantStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TenantStatus, len(t.m))
	for name, st := range t.m {
		out[name] = TenantStatus{Tokens: st.tokens, RetriesUsed: st.retriesUsed, RetryBudget: t.cfg.RetryBudget}
	}
	return out
}
