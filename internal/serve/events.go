// Server-sent events: one stream per submission carrying its status
// transitions and the decision-trace events the scheduler recorded for
// any of its incarnations. The stream tails the metrics registry's
// ring buffer by sequence number — the same trace the batch engines
// already populate — and closes itself once the submission is final.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"transproc/internal/metrics"
)

// traceOrigin resolves a decision-trace event's process id to its
// origin (incarnation suffixes stripped).
func traceOrigin(proc string) string {
	if i := strings.IndexByte(proc, '+'); i >= 0 {
		return proc[:i]
	}
	return proc
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("tenant") + "/" + r.PathValue("id")
	s.mu.Lock()
	sub, ok := s.subs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown process " + id})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	}

	var lastVersion int64 = -1
	var lastSeq int64
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		version := sub.version
		st := sub.status()
		s.mu.Unlock()
		changed := false
		if version != lastVersion {
			lastVersion = version
			send("status", st)
			changed = true
		}
		for _, ev := range s.reg.Events() {
			if ev.Seq <= lastSeq {
				continue
			}
			lastSeq = ev.Seq
			if traceOrigin(ev.Proc) != id {
				continue
			}
			send("trace", ev)
			changed = true
		}
		if changed {
			fl.Flush()
		}
		if st.Final || s.crashed.Load() || s.closed.Load() {
			send("done", st)
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// TraceTail returns the retained decision-trace events of one
// submission (origin-folded), for clients that prefer polling to SSE.
func (s *Server) TraceTail(id string) []metrics.Event {
	var out []metrics.Event
	for _, ev := range s.reg.Events() {
		if traceOrigin(ev.Proc) == id {
			out = append(out, ev)
		}
	}
	return out
}
