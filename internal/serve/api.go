// HTTP/JSON surface of the ingestion server (net/http only).
//
//	POST /v1/processes                     submit a process spec
//	GET  /v1/processes                     list (tenant/state filters, offset+limit pagination)
//	GET  /v1/processes/{tenant}/{id}       status of one submission
//	GET  /v1/processes/{tenant}/{id}/events  SSE status + decision-trace stream
//	POST /v1/drain                         graceful drain
//	GET  /healthz                          liveness
//	GET  /readyz                           readiness (unready during drain/overload)
//	GET  /metricz                          metrics snapshot
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"transproc/internal/fault"
	"transproc/internal/metrics"
	"transproc/internal/spec"
)

// SubmitRequest is the POST /v1/processes body.
type SubmitRequest struct {
	// Tenant is the namespace ("default" when empty); budgets are
	// per-tenant.
	Tenant string `json:"tenant,omitempty"`
	// Key is the idempotency key: retries with the same (tenant, key)
	// return the original submission instead of a duplicate.
	Key string `json:"key,omitempty"`
	// Proc is the declarative process (services must exist on the
	// server's federation).
	Proc spec.ProcessSpec `json:"proc"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Deduped bool   `json:"deduped,omitempty"`
	Status  string `json:"status"` // status URL
}

type apiError struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retryAfterSeconds,omitempty"`
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/processes", s.guard(s.handleSubmit))
	mux.HandleFunc("GET /v1/processes", s.guard(s.handleList))
	mux.HandleFunc("GET /v1/processes/{tenant}/{id}", s.guard(s.handleStatus))
	mux.HandleFunc("GET /v1/processes/{tenant}/{id}/events", s.guard(s.handleEvents))
	mux.HandleFunc("POST /v1/drain", s.guard(s.handleDrain))
	mux.HandleFunc("GET /healthz", s.guard(s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.guard(s.handleReadyz))
	mux.HandleFunc("GET /metricz", s.guard(s.handleMetricz))
	return mux
}

// guard converts an escaped crash sentinel into server death — the
// injected kill -9 may fire inside a request handler, and the client
// must simply see the connection die.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			c, ok := fault.AsCrash(v)
			if !ok {
				panic(v)
			}
			s.crashNow(c.Point)
		}()
		if s.crashed.Load() {
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server crashed"})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func shed(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, apiError{Error: msg, RetryAfter: secs})
}

func validName(sv string) bool {
	if sv == "" {
		return false
	}
	return !strings.ContainsAny(sv, "+/\x00 \t\n")
}

// handleSubmit is the admission path: validate → dedupe → backpressure
// → tenant budget → journal force-log → enqueue → ack. The serve:admit
// point fires after the journal append (the submission is durable but
// not yet enqueued); serve:ack after the enqueue (the submission will
// run but the client never hears so).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	admitLatency := func() {
		s.reg.Observe(metrics.HistServeAdmit, time.Since(start).Microseconds())
	}
	s.reg.Inc(metrics.ServeSubmitted)
	if s.draining.Load() || s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "draining"})
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if !validName(req.Tenant) || !validName(req.Proc.ID) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "tenant and proc.id must be non-empty and free of '+', '/' and whitespace"})
		return
	}
	origin := req.Tenant + "/" + req.Proc.ID

	s.mu.Lock()
	if req.Key != "" {
		if id, ok := s.byKey[req.Tenant+"\x00"+req.Key]; ok {
			sub := s.subs[id]
			st := sub.state
			s.mu.Unlock()
			s.reg.Inc(metrics.ServeDeduped)
			admitLatency()
			writeJSON(w, http.StatusOK, SubmitResponse{ID: id, State: st, Deduped: true, Status: statusURL(id)})
			return
		}
	}
	if _, dup := s.subs[origin]; dup {
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("process %s already submitted (use an idempotency key to retry safely)", origin)})
		return
	}
	// Backpressure: shed when the admission queue (plus slots already
	// spoken for) is full, or when the in-flight window and the queue
	// are jointly saturated.
	queued := len(s.queue) + s.reserved
	outstanding := int(s.pending.Load()) + s.reserved
	s.reg.Observe(metrics.HistServeQueueDepth, int64(queued))
	if queued >= s.cfg.QueueDepth || outstanding >= s.cfg.QueueDepth+s.cfg.BatchMax {
		s.mu.Unlock()
		s.reg.Inc(metrics.ServeShedQueue)
		admitLatency()
		shed(w, s.cfg.BatchWait*time.Duration(1+queued/s.cfg.BatchMax), "admission queue full")
		return
	}
	if ok, wait := s.tn.admit(req.Tenant); !ok {
		s.mu.Unlock()
		s.reg.Inc(metrics.ServeShedTenant)
		admitLatency()
		shed(w, wait, "tenant rate budget exhausted")
		return
	}
	ps := req.Proc
	ps.ID = origin
	def, err := spec.BuildProcess(s.fed, ps)
	if err != nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	entry := &JournalEntry{ID: origin, Tenant: req.Tenant, Key: req.Key, Proc: &req.Proc}
	if err := s.jr.append(entry, true); err != nil {
		s.mu.Unlock()
		s.crashNow("journal:" + err.Error())
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	sub := &submission{
		id: origin, tenant: req.Tenant, key: req.Key, seq: entry.Seq,
		ps: req.Proc, runID: origin, state: stateQueued,
	}
	s.subs[origin] = sub
	s.order = append(s.order, origin)
	s.defs[origin] = def
	if req.Key != "" {
		s.byKey[req.Tenant+"\x00"+req.Key] = origin
	}
	s.reserved++
	s.mu.Unlock()

	// Durable but not yet enqueued: a crash here is the lost-admission
	// window restart recovery must close (resume from the journal).
	s.inject(fault.PointServeAdmit)
	s.pending.Add(1)
	s.queue <- sub
	s.mu.Lock()
	s.reserved--
	s.mu.Unlock()
	// Enqueued but unacknowledged: a crash here leaves the client
	// uncertain — its retry with the same key must dedupe.
	s.inject(fault.PointServeAck)
	s.reg.Inc(metrics.ServeAccepted)
	admitLatency()
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: origin, State: stateQueued, Status: statusURL(origin)})
}

func statusURL(origin string) string { return "/v1/processes/" + origin }

// ListResponse is the paginated GET /v1/processes body.
type ListResponse struct {
	Total      int      `json:"total"`
	Offset     int      `json:"offset"`
	NextOffset int      `json:"nextOffset,omitempty"`
	Items      []Status `json:"items"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	all := s.Statuses(q.Get("tenant"), q.Get("state"))
	offset, _ := strconv.Atoi(q.Get("offset"))
	limit, _ := strconv.Atoi(q.Get("limit"))
	if limit <= 0 || limit > 500 {
		limit = 100
	}
	if offset < 0 {
		offset = 0
	}
	resp := ListResponse{Total: len(all), Offset: offset, Items: []Status{}}
	if offset < len(all) {
		end := offset + limit
		if end > len(all) {
			end = len(all)
		}
		resp.Items = all[offset:end]
		if end < len(all) {
			resp.NextOffset = end
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("tenant") + "/" + r.PathValue("id")
	st, ok := s.StatusOf(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown process " + id})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Drain(r.Context())
	if err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}
	reason := ""
	switch {
	case s.crashed.Load():
		reason = "crashed"
	case s.closed.Load():
		reason = "closed"
	case s.draining.Load():
		reason = "draining"
	case s.hubDegraded.Load():
		reason = "federation hub unreachable"
	default:
		s.mu.Lock()
		queued := len(s.queue) + s.reserved
		s.mu.Unlock()
		if queued >= s.cfg.QueueDepth {
			reason = "overloaded"
		}
	}
	if reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, readiness{Ready: false, Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, readiness{Ready: true})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	snap.Trace = nil // the SSE stream carries the trace; keep this light
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	snap.WriteJSON(w)
}
